// mirror_sync — distributing a software release tree to mirrors (§2's
// "software distribution" application).
//
// A distribution of several packages moves from release N to release N+1.
// The master computes one in-place delta per package; each mirror applies
// the deltas into the storage its current copies occupy. The example
// reports per-package and aggregate compression, in the same units as the
// paper's §7 (delta size as % of the new version).
//
// Run:  ./examples/mirror_sync
#include <cstdio>
#include <vector>

#include "corpus/workload.hpp"
#include "delta/stats.hpp"
#include "ipdelta.hpp"

int main() {
  using namespace ipd;

  CorpusOptions corpus;
  corpus.seed = 0x5EED;
  corpus.packages = 8;
  corpus.releases_per_package = 2;  // one pair per package
  corpus.min_file_size = 32 << 10;
  corpus.max_file_size = 128 << 10;
  const std::vector<VersionPair> release = standard_corpus(corpus);

  std::printf("%-24s %10s %10s %8s %7s %7s\n", "package", "new size",
              "delta", "ratio", "cycles", "conv");

  CompressionAggregate raw_bytes;   // shipping whole files
  CompressionAggregate delta_bytes; // shipping in-place deltas
  bool all_ok = true;

  const Pipeline pipeline;
  for (const VersionPair& pkg : release) {
    BuildResult built = pipeline.build_inplace(pkg.reference, pkg.version);
    const ConvertReport& report = built.report;
    const Bytes delta = std::move(built.delta);

    // Mirror side: rebuild in place and verify.
    Bytes storage = pkg.reference;
    storage.resize(std::max(pkg.reference.size(), pkg.version.size()));
    const length_t n = apply_delta_inplace(delta, storage);
    const bool ok =
        n == pkg.version.size() &&
        std::equal(pkg.version.begin(), pkg.version.end(), storage.begin());
    all_ok = all_ok && ok;

    const CompressionSample sample{pkg.reference.size(), pkg.version.size(),
                                   delta.size()};
    delta_bytes.add(sample);
    raw_bytes.add(CompressionSample{pkg.reference.size(), pkg.version.size(),
                                    pkg.version.size()});

    std::printf("%-24s %10s %10s %8s %7zu %7zu%s\n", pkg.name.c_str(),
                format_bytes(pkg.version.size()).c_str(),
                format_bytes(delta.size()).c_str(),
                format_percent(sample.percent()).c_str(),
                report.cycles_found, report.copies_converted,
                ok ? "" : "  ** VERIFY FAILED **");
  }

  std::printf(
      "\naggregate: %s of new releases shipped as %s of deltas "
      "(%s of original size; %.1fx bandwidth saving)\n",
      format_bytes(delta_bytes.total_version_bytes()).c_str(),
      format_bytes(delta_bytes.total_delta_bytes()).c_str(),
      format_percent(delta_bytes.weighted_percent()).c_str(),
      static_cast<double>(delta_bytes.total_version_bytes()) /
          static_cast<double>(delta_bytes.total_delta_bytes()));
  std::printf("all mirrors verified: %s\n", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
