// firmware_update — the paper's motivating scenario end to end (§1).
//
// A set-top-box-class device holds firmware v1 in flash, has a few KiB of
// RAM, and hangs off a slow link. The server diffs v1 -> v2, converts the
// delta for in-place reconstruction, and ships it; the device rebuilds v2
// in the flash pages v1 occupies, inside its RAM budget.
//
// Run:  ./examples/firmware_update
#include <cstdio>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "device/updater.hpp"
#include "ipdelta.hpp"

int main() {
  using namespace ipd;

  // -- build a firmware pair ---------------------------------------------
  Rng rng(0xF1A5);
  const length_t image_size = 192 << 10;  // 192 KiB firmware
  const Bytes v1 = generate_file(rng, image_size, FileProfile::kBinary);
  MutationModel model;
  model.max_edit_fraction = 0.03;
  const Bytes v2 = mutate(v1, rng, 40, model);  // one release worth of edits

  std::printf("firmware v1: %zu bytes, v2: %zu bytes\n", v1.size(),
              v2.size());

  // -- server side: make the in-place delta -------------------------------
  BuildResult built = Pipeline().build_inplace(v1, v2);
  const ConvertReport& report = built.report;
  const Bytes& delta = built.delta;
  std::printf(
      "in-place delta: %zu bytes (%.1f%% of v2)\n"
      "  conversion: %zu/%zu copies re-encoded as adds, %zu cycles broken, "
      "%llu bytes of compression given up\n",
      delta.size(), 100.0 * static_cast<double>(delta.size()) /
                        static_cast<double>(v2.size()),
      report.copies_converted, report.copies_in, report.cycles_found,
      static_cast<unsigned long long>(report.conversion_cost));

  // -- how long would the download take? ----------------------------------
  std::printf("\n%-14s %14s %14s %9s\n", "channel", "full image", "delta",
              "speedup");
  for (const ChannelModel& ch :
       {channel_9600(), channel_28k(), channel_56k(), channel_isdn(),
        channel_t1()}) {
    const double full = ch.transfer_seconds(v2.size());
    const double inc = ch.transfer_seconds(delta.size());
    std::printf("%-14s %12.1f s %12.1f s %8.1fx\n", ch.name.c_str(), full,
                inc, full / inc);
  }

  // -- device side: apply inside the RAM budget ----------------------------
  const std::size_t ram_budget = delta.size() + (8 << 10);
  FlashDevice device(/*storage=*/256 << 10, /*page=*/4096, ram_budget);
  device.load_image(v1);

  UpdaterOptions updater;
  updater.window_bytes = 4096;
  const UpdateResult result =
      apply_update(device, delta, channel_28k(), updater);

  std::printf(
      "\ndevice update: new image %llu bytes, CRC %s\n"
      "  RAM high-water: %zu bytes (budget %zu)\n"
      "  flash: %llu bytes written across %llu page touches\n"
      "  download over %s: %.1f s\n",
      static_cast<unsigned long long>(result.new_image_length),
      result.crc_verified ? "verified" : "NOT verified",
      result.ram_high_water, ram_budget,
      static_cast<unsigned long long>(result.storage_bytes_written),
      static_cast<unsigned long long>(result.storage_pages_written),
      channel_28k().name.c_str(), result.download_seconds);

  const bool ok =
      std::equal(v2.begin(), v2.end(), device.inspect().begin());
  std::printf("flash contents %s firmware v2\n",
              ok ? "MATCH" : "DO NOT MATCH");
  return ok ? 0 : 1;
}
