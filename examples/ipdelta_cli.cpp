// ipdelta — command-line delta tool over the library.
//
//   ipdelta diff  <reference> <version> <delta>  [--in-place]
//                 [--differ greedy|onepass] [--policy constant|localmin|exact]
//                 [--format paper|varint] [--no-write-offsets]
//   ipdelta apply <delta> <reference> <output>
//   ipdelta patch <delta> <file>          # in-place: rewrites <file>
//   ipdelta lint  <delta> [--json]        # static safety verification
//   ipdelta info  <delta>
//   ipdelta serve <releases...>           # delta service over a history
//   ipdelta serve <releases...> --port P  # ... exported over TCP
//   ipdelta fetch <host:port> <image> ... # streaming OTA client
//   ipdelta stats <host:port>             # live Prometheus-style stats
//   ipdelta campaign [--devices N] ...    # fleet-scale OTA simulation
//   ipdelta trace <cmd> [args...]         # run any command traced,
//                                         # write Chrome trace JSON
//
// Exit status: 0 on success, 1 on usage error, 2 on processing error,
// 3 when `lint` found error-severity defects (or a self-check mismatch).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apply/oracle.hpp"
#include "campaign/campaign.hpp"
#include "core/hexdump.hpp"
#include "core/io.hpp"
#include "core/rng.hpp"
#include "corpus/workload.hpp"
#include "delta/compose.hpp"
#include "delta/stats.hpp"
#include "inplace/analysis.hpp"
#include "ipdelta.hpp"
#include "net/delta_server.hpp"
#include "net/ota_client.hpp"
#include "net/tcp_transport.hpp"
#include "obs/event_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "server/delta_service.hpp"
#include "store/artifact_store.hpp"
#include "store/store_backed_version_store.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace ipd;

// Defined after every cmd_* so `trace` can re-dispatch the wrapped
// command through the same table main() uses.
int run_command(const std::string& command,
                const std::vector<std::string>& args);

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ipdelta diff  <reference> <version> <delta> [--in-place]\n"
      "                [--differ greedy|onepass|suffix|block]\n"
      "                [--policy constant|localmin|exact|scc]\n"
      "                [--format paper|varint] [--no-write-offsets]\n"
      "                [--compress] [--jobs N]     # N=0: all cores\n"
      "  ipdelta apply <delta> <reference> <output>\n"
      "  ipdelta patch <delta> <file>\n"
      "  ipdelta verify <delta> <reference>\n"
      "  ipdelta lint  <delta> [--json] [--require-in-place]\n"
      "  ipdelta lint  --self-check [--seed S]    # verifier vs oracle\n"
      "  ipdelta compose <deltaAB> <deltaBC> <deltaAC>\n"
      "  ipdelta info  <delta> [--deep]\n"
      "  ipdelta serve <release files, oldest first...>\n"
      "                [--requests N] [--threads T] [--budget BYTES]\n"
      "                [--seed S]\n"
      "                [--port P [--sessions N]]   # export over TCP;\n"
      "                                            # runs until stdin closes\n"
      "                [--trace-out FILE]  # per-request tracing on; write\n"
      "                                    # Chrome trace JSON at shutdown\n"
      "                [--stall-ms MS]     # watchdog deadline per transfer\n"
      "  ipdelta serve --store-dir DIR [more release files...]\n"
      "                # serve a durable on-disk store (files, if any,\n"
      "                # are published first); stored chain deltas are\n"
      "                # preloaded into the cache\n"
      "  ipdelta store init <dir>\n"
      "  ipdelta store publish <dir> <release files, oldest first...>\n"
      "  ipdelta store list <dir>         # releases, chains, metrics\n"
      "  ipdelta store gc <dir>           # drop superseded artifacts\n"
      "  ipdelta store check <dir>        # deep integrity check\n"
      "  ipdelta fetch <host:port> <image file> --to B\n"
      "                [--from A] [--out FILE] [--chunk BYTES] [--verbose]\n"
      "                [--stall-ms MS]     # watchdog deadline per transfer\n"
      "  ipdelta fetch <host:port> --metrics\n"
      "  ipdelta stats <host:port>        # Prometheus-style live stats\n"
      "  ipdelta campaign [--devices N] [--releases N] [--seed S]\n"
      "                [--image-bytes B] [--drop R] [--truncate R]\n"
      "                [--flip R] [--grace N] [--power-cuts R]\n"
      "                [--max-cuts N] [--staged R] [--waves F,F,...]\n"
      "                [--concurrency N] [--attempts N] [--json]\n"
      "                [--slo [--slo-target R] [--slo-p99-ms MS]\n"
      "                 --slo-burn R] [--slo-min-attempts N]\n"
      "                # simulate a staged fleet rollout in-process;\n"
      "                # exit 2 if any device bricked or the ramp aborted\n"
      "                # (--slo: abort on error-budget burn / p99 breach)\n"
      "  ipdelta trace <command> [args...] [--trace-out FILE]\n"
      "                [--trace-pid N]\n"
      "                # run any command with stage tracing enabled and\n"
      "                # write Chrome trace-event JSON (default trace.json)\n"
      "  ipdelta trace --merge <trace.json...> [--trace-out FILE]\n"
      "                # merge per-process traces into one cross-process\n"
      "                # timeline (pid lane per input, flow arrows join\n"
      "                # spans sharing a trace id); also validates inputs\n");
  return 1;
}

/// Split "<host>:<port>" (or a bare port, meaning localhost) and
/// validate the port range.
void parse_endpoint(const std::string& endpoint, std::string* host,
                    std::uint16_t* port) {
  const std::size_t colon = endpoint.rfind(':');
  *host = colon == std::string::npos ? "127.0.0.1" : endpoint.substr(0, colon);
  const std::string port_text =
      colon == std::string::npos ? endpoint : endpoint.substr(colon + 1);
  try {
    std::size_t used = 0;
    const std::uint64_t n = std::stoull(port_text, &used);
    if (used != port_text.size() || n == 0 || n > 65535) {
      throw std::invalid_argument(port_text);
    }
    *port = static_cast<std::uint16_t>(n);
  } catch (const std::exception&) {
    throw Error("bad endpoint (want host:port): " + endpoint);
  }
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  bool in_place = false;
  bool write_offsets = true;
  PipelineOptions options;
  for (std::size_t i = 3; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw Error("missing value for " + a);
      return args[++i];
    };
    if (a == "--in-place") {
      in_place = true;
    } else if (a == "--compress") {
      options.compress_payload = true;
    } else if (a == "--no-write-offsets") {
      write_offsets = false;
    } else if (a == "--differ") {
      const std::string& v = next();
      if (v == "greedy") options.differ = DifferKind::kGreedy;
      else if (v == "onepass") options.differ = DifferKind::kOnePass;
      else if (v == "suffix") options.differ = DifferKind::kSuffixGreedy;
      else if (v == "block") options.differ = DifferKind::kBlockAligned;
      else throw Error("unknown differ: " + v);
    } else if (a == "--policy") {
      const std::string& v = next();
      if (v == "constant") options.convert.policy = BreakPolicy::kConstantTime;
      else if (v == "localmin") options.convert.policy = BreakPolicy::kLocalMin;
      else if (v == "exact") options.convert.policy = BreakPolicy::kExactOptimal;
      else if (v == "scc") options.convert.policy = BreakPolicy::kSccGlobalMin;
      else throw Error("unknown policy: " + v);
    } else if (a == "--format") {
      const std::string& v = next();
      if (v == "paper") options.format.codeword = Codeword::kPaperByte;
      else if (v == "varint") options.format.codeword = Codeword::kVarint;
      else throw Error("unknown format: " + v);
    } else if (a == "--jobs") {
      options.parallelism = std::stoull(next());
    } else {
      throw Error("unknown option: " + a);
    }
  }
  options.format.offsets =
      write_offsets ? WriteOffsets::kExplicit : WriteOffsets::kImplicit;

  const Bytes reference = read_file(args[0]);
  const Bytes version = read_file(args[1]);

  const Pipeline pipeline(options);
  const BuildResult result = in_place ? pipeline.build_inplace(reference, version)
                                      : pipeline.build_delta(reference, version);
  if (in_place) {
    const ConvertReport& report = result.report;
    std::printf(
        "in-place delta: %zu commands in, %zu cycles broken, %zu copies "
        "converted (%llu bytes of compression given up)\n",
        report.copies_in + report.adds_in, report.cycles_found,
        report.copies_converted,
        static_cast<unsigned long long>(report.conversion_cost));
  }
  if (result.timing.diff_segments > 1) {
    std::printf("built on %zu segments (%zu-way), %.1f ms diff\n",
                result.timing.diff_segments, pipeline.parallelism(),
                static_cast<double>(result.timing.diff_ns) / 1e6);
  }
  const Bytes& delta = result.delta;
  write_file(args[2], delta);
  std::printf("%s -> %s: %zu bytes (%s of version)\n", args[0].c_str(),
              args[2].c_str(), delta.size(),
              format_percent(version.empty()
                                 ? 0.0
                                 : 100.0 * static_cast<double>(delta.size()) /
                                       static_cast<double>(version.size()))
                  .c_str());
  return 0;
}

int cmd_apply(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  const Bytes delta = read_file(args[0]);
  const Bytes reference = read_file(args[1]);
  const Bytes version = apply_delta(delta, reference);
  write_file(args[2], version);
  std::printf("reconstructed %zu bytes into %s (CRC verified)\n",
              version.size(), args[2].c_str());
  return 0;
}

int cmd_patch(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const Bytes delta = read_file(args[0]);
  const DeltaFile parsed = deserialize_delta(delta);
  Bytes buffer = read_file(args[1]);
  if (buffer.size() != parsed.reference_length) {
    throw Error("file size does not match the delta's reference length");
  }
  buffer.resize(std::max<std::size_t>(parsed.reference_length,
                                      parsed.version_length));
  const length_t new_len = apply_delta_inplace(delta, buffer);
  buffer.resize(static_cast<std::size_t>(new_len));
  write_file(args[1], buffer);
  std::printf("patched %s in place: now %llu bytes (CRC verified)\n",
              args[1].c_str(), static_cast<unsigned long long>(new_len));
  return 0;
}

int cmd_compose(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  const DeltaFile d1 = deserialize_delta(read_file(args[0]));
  const DeltaFile d2 = deserialize_delta(read_file(args[1]));
  if (d1.version_length != d2.reference_length) {
    throw Error("deltas do not chain: first produces " +
                std::to_string(d1.version_length) +
                " bytes, second expects " +
                std::to_string(d2.reference_length));
  }
  ComposeReport report;
  DeltaFile out;
  out.script = compose_scripts(d1.script, d2.script, &report);
  out.format = kVarintExplicit;
  out.in_place = satisfies_equation2(out.script);
  out.reference_length = d1.reference_length;
  out.version_length = d2.version_length;
  out.version_crc = d2.version_crc;
  out.compress_payload = d1.compress_payload || d2.compress_payload;
  const Bytes wire = serialize_delta(out);
  write_file(args[2], wire);
  std::printf(
      "composed %s o %s -> %s: %zu bytes, %zu commands (%llu literal "
      "bytes)%s\n",
      args[1].c_str(), args[0].c_str(), args[2].c_str(), wire.size(),
      out.script.size(),
      static_cast<unsigned long long>(report.literal_bytes),
      out.in_place ? ", in-place safe" : "");
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const Bytes delta = read_file(args[0]);
  const Bytes reference = read_file(args[1]);
  const VerifyResult r = verify_delta(delta, reference);
  if (!r.ok) {
    std::printf("FAIL: %s\n", r.failure.c_str());
    return 2;
  }
  std::printf("OK: reconstructs %llu bytes%s\n",
              static_cast<unsigned long long>(r.version_length),
              r.in_place_capable ? " (in-place capable)" : "");
  return 0;
}

/// Differential self-check: for every corpus pair and a spread of
/// pipeline configurations, the static verifier's verdict must agree
/// with the dynamic ground truth — the scratch-space appliers and the
/// conflict oracle. Any disagreement is a bug in one of them.
int lint_self_check(std::uint64_t seed) {
  struct Config {
    const char* name;
    bool in_place;
    DeltaFormat format;
    bool compress;
  };
  const Config configs[] = {
      {"scratch/paper", false, kPaperSequential, false},
      {"scratch/varint", false, kVarintSequential, false},
      {"inplace/paper", true, kPaperExplicit, false},
      {"inplace/varint", true, kVarintExplicit, false},
      {"inplace/varint+lzss", true, kVarintExplicit, true},
  };

  std::size_t checked = 0, disagreements = 0;
  const Verifier verifier;
  for (const VersionPair& pair : small_corpus(seed)) {
    for (const Config& config : configs) {
      PipelineOptions options;
      options.format = config.format;
      options.compress_payload = config.compress;
      const Pipeline pipeline(options);
      const Bytes delta =
          config.in_place
              ? pipeline.build_inplace(pair.reference, pair.version).delta
              : pipeline.build_delta(pair.reference, pair.version).delta;

      const Report report = verifier.check(delta);
      const DeltaFile parsed = deserialize_delta(delta);
      const ConflictAnalysis oracle = analyze_conflicts(parsed.script);
      const Bytes applied = apply_delta(delta, pair.reference);

      std::string complaint;
      if (!report.well_formed || !report.ok()) {
        complaint = "verifier rejected pipeline output";
      } else if (report.in_place_safe != oracle.in_place_safe()) {
        complaint = "verifier and conflict oracle disagree on in-place "
                    "safety";
      } else if (applied != pair.version) {
        complaint = "applier did not reproduce the version";
      } else if (config.in_place && !report.in_place_safe) {
        complaint = "converter output not in-place safe";
      }
      ++checked;
      if (!complaint.empty()) {
        ++disagreements;
        std::printf("DISAGREE %s %s: %s\n", pair.name.c_str(), config.name,
                    complaint.c_str());
        for (const Finding& f : report.findings) {
          std::printf("  %s [%s] %s\n", severity_name(f.severity),
                      check_name(f.check), f.message.c_str());
        }
      }
    }
  }
  std::printf("self-check: %zu delta(s), %zu disagreement(s)\n", checked,
              disagreements);
  return disagreements == 0 ? 0 : 3;
}

int cmd_lint(const std::vector<std::string>& args) {
  bool json = false;
  bool self_check = false;
  VerifyOptions options;
  std::uint64_t seed = 7;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--require-in-place") {
      options.require_in_place = true;
    } else if (a == "--self-check") {
      self_check = true;
    } else if (a == "--seed") {
      if (i + 1 >= args.size()) return usage();
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      positional.push_back(a);
    }
  }
  if (self_check) {
    if (!positional.empty()) return usage();
    return lint_self_check(seed);
  }
  if (positional.size() != 1) return usage();

  const Bytes delta = read_file(positional[0]);
  const Report report = Verifier(options).check(delta);
  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s", report.to_text().c_str());
  }
  return report.ok() ? 0 : 3;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  bool deep = false;
  if (args.size() == 2) {
    if (args[1] != "--deep") return usage();
    deep = true;
  }
  const Bytes delta = read_file(args[0]);
  const DeltaFile file = deserialize_delta(delta);
  const ScriptSummary sum = file.script.summary();
  std::printf(
      "%s\n"
      "  format:            %s\n"
      "  in-place safe:     %s\n"
      "  payload lzss:      %s\n"
      "  reference length:  %llu\n"
      "  version length:    %llu\n"
      "  version crc32c:    %08x\n"
      "  commands:          %zu copies (%llu bytes), %zu adds (%llu bytes)\n"
      "  delta size:        %zu bytes (%s of version)\n",
      args[0].c_str(), format_name(file.format),
      file.in_place ? "yes" : "no",
      file.compress_payload ? "yes" : "no",
      static_cast<unsigned long long>(file.reference_length),
      static_cast<unsigned long long>(file.version_length),
      file.version_crc, sum.copy_count,
      static_cast<unsigned long long>(sum.copied_bytes), sum.add_count,
      static_cast<unsigned long long>(sum.added_bytes), delta.size(),
      format_percent(file.version_length == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(delta.size()) /
                               static_cast<double>(file.version_length))
          .c_str());
  std::printf("  first commands:\n%s", file.script.to_text(10).c_str());
  if (deep) {
    std::printf("\nstructural analysis:\n%s",
                render_analysis(
                    analyze_delta(file.script, file.reference_length))
                    .c_str());
  }
  return 0;
}

// Stand up a DeltaService over the given release history and replay a
// mixed-version fleet against it from `--threads` client threads: every
// request picks a random (older, newer) pair, is served, applied to the
// old body, and verified against the new one. Prints the service metrics
// snapshot — the smallest end-to-end exercise of src/server/.
int cmd_serve(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::size_t requests = 32;
  std::size_t threads = 4;
  std::uint64_t budget = 64ull << 20;
  std::uint64_t seed = 1;
  std::uint64_t port = 0;
  bool port_set = false;
  std::uint64_t sessions = 32;
  std::uint64_t stall_ms = 0;
  std::string store_dir;
  std::string trace_out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw Error("missing value for " + a);
      return args[++i];
    };
    const auto number = [&]() -> std::uint64_t {
      const std::string& value = next();
      try {
        std::size_t used = 0;
        const std::uint64_t n = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return n;
      } catch (const std::exception&) {
        throw Error("expected a number for " + a + ", got: " + value);
      }
    };
    if (a == "--store-dir") {
      store_dir = next();
    } else if (a == "--requests") {
      requests = number();
    } else if (a == "--threads") {
      threads = number();
    } else if (a == "--budget") {
      budget = number();
    } else if (a == "--seed") {
      seed = number();
    } else if (a == "--port") {
      port = number();
      port_set = true;
      if (port > 65535) throw Error("--port out of range");
    } else if (a == "--sessions") {
      sessions = number();
    } else if (a == "--stall-ms") {
      stall_ms = number();
    } else if (a == "--trace-out") {
      trace_out = next();
    } else if (!a.empty() && a[0] == '-') {
      throw Error("unknown option: " + a);
    } else {
      files.push_back(a);
    }
  }
  if ((store_dir.empty() && files.size() < 2) || requests == 0 ||
      threads == 0) {
    return usage();
  }

  // Either the in-memory embedded history (non-durable; gone at exit) or
  // a durable on-disk artifact store behind the same interface.
  std::shared_ptr<ArtifactStore> artifacts;
  std::unique_ptr<VersionStore> owned_store;
  if (store_dir.empty()) {
    owned_store = std::make_unique<VersionStore>();
  } else {
    artifacts = std::make_shared<ArtifactStore>(store_dir);
    owned_store = std::make_unique<StoreBackedVersionStore>(artifacts);
  }
  VersionStore& store = *owned_store;
  for (const std::string& file : files) {
    store.publish(read_file(file));
  }
  if (store.release_count() < 2) {
    throw Error("serve: need at least 2 releases (store has " +
                std::to_string(store.release_count()) + ")");
  }
  ServiceOptions options;
  options.cache_budget = budget;
  DeltaService service(store, options);
  if (artifacts) {
    const std::size_t warmed = preload_stored_edges(*artifacts, service);
    std::printf("store: %zu releases from %s, %zu chain deltas preloaded\n",
                store.release_count(), store_dir.c_str(), warmed);
  }

  if (port_set) {
    // Export the service over TCP (src/net/) instead of replaying a
    // synthetic fleet. Release ids are the publish order of the files.
    if (!trace_out.empty()) {
      // Per-request tracing for the whole server lifetime, exported at
      // shutdown. pid lane 2 so a client's own export (lane 1) and this
      // file merge into distinct lanes even before `trace --merge`
      // re-lanes them.
      obs::set_trace_pid(2);
      obs::clear_trace_events();
      obs::set_tracing(true);
    }
    ServerConfig net;
    net.port = static_cast<std::uint16_t>(port);
    net.max_connections = static_cast<std::size_t>(sessions);
    net.stall_deadline_ms = stall_ms;
    DeltaServer server(service, net);
    server.start();
    std::printf("serving %zu releases on 127.0.0.1:%u "
                "(close stdin to stop)\n",
                store.release_count(), server.port());
    std::fflush(stdout);
    // Periodic one-line stats heartbeat while the server runs, so an
    // operator tailing the log sees load and latency without polling
    // `ipdelta stats`.
    std::mutex ticker_mutex;
    std::condition_variable ticker_cv;
    bool ticker_stop = false;
    std::thread ticker([&] {
      std::unique_lock<std::mutex> lock(ticker_mutex);
      while (!ticker_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return ticker_stop; })) {
        const ServiceMetrics& m = service.metrics();
        const obs::HistogramSnapshot serve_lat =
            service.histograms().serve_ns.snapshot();
        std::printf(
            "stats: %llu requests (%.0f%% cache hits), %llu wire bytes, "
            "serve %s\n",
            static_cast<unsigned long long>(
                m.requests.load(std::memory_order_relaxed)),
            100.0 * m.hit_rate(),
            static_cast<unsigned long long>(
                m.net_bytes_sent.load(std::memory_order_relaxed)),
            serve_lat.latency_line().c_str());
        std::fflush(stdout);
      }
    });
    for (int c; (c = std::getchar()) != EOF;) {
    }
    {
      const std::lock_guard<std::mutex> lock(ticker_mutex);
      ticker_stop = true;
    }
    ticker_cv.notify_all();
    ticker.join();
    server.stop();
    if (!trace_out.empty()) {
      obs::set_tracing(false);
      const std::string json = obs::trace_events_json();
      write_file(trace_out, Bytes(json.begin(), json.end()));
      std::printf("trace: %zu span(s) -> %s\n", obs::trace_event_count(),
                  trace_out.c_str());
    }
    std::printf("%s", service.metrics_text().c_str());
    const std::string events = obs::global_events().dump();
    if (!events.empty()) {
      std::printf("recent events:\n%s", events.c_str());
    }
    return 0;
  }

  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) {
    // Thread 0 absorbs the remainder so exactly `requests` are issued.
    const std::size_t quota =
        requests / threads + (t == 0 ? requests % threads : 0);
    clients.emplace_back([&, t, quota] {
      Rng rng(seed + t);
      const std::size_t n = store.release_count();
      for (std::size_t i = 0; i < quota; ++i) {
        const auto from = static_cast<ReleaseId>(rng.below(n - 1));
        const auto to =
            from + 1 + static_cast<ReleaseId>(rng.below(n - 1 - from));
        try {
          const ServeResult result = service.serve(from, to);
          const Bytes rebuilt = apply_served(result, *store.body(from));
          if (rebuilt != *store.body(to)) ++failures;
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  std::printf("%s", service.metrics_text().c_str());
  if (failures.load() != 0) {
    std::printf("serve: %llu of %zu reconstructions FAILED\n",
                static_cast<unsigned long long>(failures.load()), requests);
    return 2;
  }
  std::printf("serve: %zu releases, %zu requests, %zu threads — "
              "all reconstructions verified\n",
              store.release_count(), requests, threads);
  return 0;
}

// Durable artifact-store administration: init/publish/list/gc/check over
// a store directory (src/store/). `publish` appends releases through the
// chain policy exactly as `serve --store-dir` would; `list` is the
// operator's view of the chain layout and recovery/metrics state.
int cmd_store(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string& verb = args[0];
  const std::string& dir = args[1];

  if (verb == "init") {
    ArtifactStore::init(dir);
    std::printf("store: initialized empty store in %s\n", dir.c_str());
    return 0;
  }

  if (verb == "publish") {
    if (args.size() < 3) return usage();
    ArtifactStore store(dir);
    for (std::size_t i = 2; i < args.size(); ++i) {
      Bytes body = read_file(args[i]);
      const std::uint64_t body_bytes = body.size();
      const ReleaseId id = store.publish(std::move(body));
      const StoredRelease rel = store.record(id);
      std::printf(
          "store: release %u  %-8s  %llu bytes stored (%.1f%% of body)"
          "  chain %zu\n",
          id, rel.kind == StoredKind::kBaseline ? "baseline" : "delta",
          static_cast<unsigned long long>(rel.stored_bytes),
          body_bytes == 0 ? 100.0 : 100.0 * rel.stored_bytes / body_bytes,
          store.chain_stats(id).chain_length);
    }
    return 0;
  }

  if (verb == "list") {
    ArtifactStore store(dir);
    const RecoveryReport& rec = store.recovery();
    std::printf("store: %zu releases in %s (%llu segment bytes)\n",
                store.release_count(), dir.c_str(),
                static_cast<unsigned long long>(store.segment_bytes()));
    if (rec.manifest_truncated || rec.segment_orphan_bytes != 0) {
      std::printf(
          "recovery: dropped %llu torn manifest bytes, "
          "%llu orphan segment bytes\n",
          static_cast<unsigned long long>(rec.manifest_bytes_dropped),
          static_cast<unsigned long long>(rec.segment_orphan_bytes));
    }
    for (const StoredRelease& rel : store.releases()) {
      if (rel.kind == StoredKind::kBaseline) {
        std::printf("  %4u  baseline  %10llu bytes  crc %08x\n", rel.id,
                    static_cast<unsigned long long>(rel.stored_bytes),
                    rel.key.crc);
      } else {
        std::printf(
            "  %4u  delta <- %-4u %7llu bytes  crc %08x  chain %zu\n",
            rel.id, rel.base,
            static_cast<unsigned long long>(rel.stored_bytes), rel.key.crc,
            store.chain_stats(rel.id).chain_length);
      }
    }
    std::printf("%s", store.metrics().snapshot().c_str());
    return 0;
  }

  if (verb == "gc") {
    ArtifactStore store(dir);
    const std::uint64_t reclaimed = store.gc();
    std::printf("store: gc reclaimed %llu bytes (%llu segment bytes live)\n",
                static_cast<unsigned long long>(reclaimed),
                static_cast<unsigned long long>(store.segment_bytes()));
    return 0;
  }

  if (verb == "check") {
    ArtifactStore store(dir);
    store.check();
    std::printf("store: %zu releases verified clean\n",
                store.release_count());
    return 0;
  }

  std::fprintf(stderr, "unknown store verb: %s\n", verb.c_str());
  return usage();
}

// Streaming OTA client against a `serve --port` endpoint: upgrade a
// local image file release A -> B over TCP, applying each hop's delta
// in place as it arrives (peak RAM: one command). With --metrics, just
// print the server's counter snapshot.
int cmd_fetch(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  ReleaseId from = 0;
  ReleaseId to = 0;
  bool to_set = false;
  bool metrics = false;
  bool verbose = false;
  std::string out;
  std::uint64_t chunk = 64u << 10;
  std::uint64_t stall_ms = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw Error("missing value for " + a);
      return args[++i];
    };
    const auto number = [&]() -> std::uint64_t {
      const std::string& value = next();
      try {
        std::size_t used = 0;
        const std::uint64_t n = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return n;
      } catch (const std::exception&) {
        throw Error("expected a number for " + a + ", got: " + value);
      }
    };
    if (a == "--from") {
      from = static_cast<ReleaseId>(number());
    } else if (a == "--to") {
      to = static_cast<ReleaseId>(number());
      to_set = true;
    } else if (a == "--out") {
      out = next();
    } else if (a == "--chunk") {
      chunk = number();
    } else if (a == "--stall-ms") {
      stall_ms = number();
    } else if (a == "--metrics") {
      metrics = true;
    } else if (a == "--verbose") {
      verbose = true;
    } else if (!a.empty() && a[0] == '-') {
      throw Error("unknown option: " + a);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.empty()) return usage();

  const std::string& endpoint = positional[0];
  std::string host;
  std::uint16_t port = 0;
  parse_endpoint(endpoint, &host, &port);

  OtaClientOptions client_options;
  client_options.max_chunk = static_cast<std::uint32_t>(chunk);
  client_options.stall_deadline_ms = stall_ms;
  OtaClient client(
      [host, port] { return TcpTransport::connect(host, port); },
      client_options);

  if (metrics) {
    std::printf("%s", client.fetch_metrics().c_str());
    return 0;
  }
  if (positional.size() != 2 || !to_set) return usage();
  const std::string& image_file = positional[1];
  Bytes image = read_file(image_file);
  const OtaReport report = client.update_streaming(image, from, to);
  const std::string& dest = out.empty() ? image_file : out;
  write_file(dest, image);
  std::printf("%s: release %u -> %u in %zu hop%s (%llu wire bytes, "
              "%zu retr%s) -> %s (%zu bytes)\n",
              endpoint.c_str(), from, report.final_release, report.hops,
              report.hops == 1 ? "" : "s",
              static_cast<unsigned long long>(report.bytes_received),
              report.retries, report.retries == 1 ? "y" : "ies",
              dest.c_str(), image.size());
  if (verbose) {
    std::printf("  session: %zu retries, %zu resumes, %.1f ms in backoff\n",
                report.retries, report.resumes,
                static_cast<double>(report.backoff_ns) / 1e6);
    const std::string events = obs::global_events().dump();
    if (!events.empty()) {
      std::printf("  client events:\n%s", events.c_str());
    }
  }
  return 0;
}

// Poll a running `serve --port` endpoint for its Prometheus-style stats
// exposition: every ServiceMetrics counter, the latency/size histogram
// quantiles, cache gauges and per-stage pipeline time.
int cmd_stats(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  std::string host;
  std::uint16_t port = 0;
  parse_endpoint(args[0], &host, &port);
  OtaClient client(
      [host, port] { return TcpTransport::connect(host, port); });
  std::printf("%s", client.fetch_stats().c_str());
  return 0;
}

// Fleet-scale OTA campaign simulation (src/campaign/): publish a seeded
// release history, drive a fleet of simulated flash devices through the
// wire protocol over fault-injected in-memory links with power cuts at
// arbitrary apply offsets, and report the rollout outcome. The exit
// status encodes the two operator-facing disasters: a bricked device or
// an aborted ramp is exit 2.
int cmd_campaign(const std::vector<std::string>& args) {
  CampaignOptions options;
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw Error("missing value for " + a);
      return args[++i];
    };
    const auto number = [&]() -> std::uint64_t {
      const std::string& value = next();
      try {
        std::size_t used = 0;
        const std::uint64_t n = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return n;
      } catch (const std::exception&) {
        throw Error("expected a number for " + a + ", got: " + value);
      }
    };
    const auto rate = [&]() -> double {
      const std::string& value = next();
      try {
        std::size_t used = 0;
        const double r = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return r;
      } catch (const std::exception&) {
        throw Error("expected a rate for " + a + ", got: " + value);
      }
    };
    if (a == "--devices") {
      options.devices = static_cast<std::size_t>(number());
    } else if (a == "--releases") {
      options.releases = static_cast<std::size_t>(number());
    } else if (a == "--seed") {
      options.seed = number();
    } else if (a == "--image-bytes") {
      options.image_bytes = static_cast<length_t>(number());
    } else if (a == "--drop") {
      options.drop_rate = rate();
    } else if (a == "--truncate") {
      options.truncate_rate = rate();
    } else if (a == "--flip") {
      options.flip_rate = rate();
    } else if (a == "--grace") {
      options.grace_ops = static_cast<std::size_t>(number());
    } else if (a == "--power-cuts") {
      options.power_cut_rate = rate();
    } else if (a == "--max-cuts") {
      options.max_power_cuts = static_cast<std::size_t>(number());
    } else if (a == "--staged") {
      options.staged_fraction = rate();
    } else if (a == "--waves") {
      options.rollout.waves.clear();
      const std::string list = next();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string part = list.substr(pos, comma - pos);
        try {
          std::size_t used = 0;
          const double f = std::stod(part, &used);
          if (used != part.size()) throw std::invalid_argument(part);
          options.rollout.waves.push_back(f);
        } catch (const std::exception&) {
          throw Error("bad wave fraction in --waves: " + part);
        }
        pos = comma + 1;
      }
    } else if (a == "--concurrency") {
      options.rollout.max_concurrency = static_cast<std::size_t>(number());
    } else if (a == "--attempts") {
      options.client.max_attempts = static_cast<std::size_t>(number());
    } else if (a == "--slo") {
      options.slo.enabled = true;
    } else if (a == "--slo-target") {
      options.slo.enabled = true;
      options.slo.target_success_rate = rate();
    } else if (a == "--slo-p99-ms") {
      options.slo.enabled = true;
      options.slo.p99_latency_budget_ns = number() * 1'000'000;
    } else if (a == "--slo-burn") {
      options.slo.enabled = true;
      options.slo.max_burn_rate = rate();
    } else if (a == "--slo-min-attempts") {
      options.slo.min_attempts = static_cast<std::size_t>(number());
    } else if (a == "--json") {
      json = true;
    } else {
      throw Error("unknown option: " + a);
    }
  }

  const CampaignReport report = run_campaign(options);
  if (json) {
    std::printf("%s\n", report.json().c_str());
  } else {
    std::printf("%s", report.render().c_str());
  }
  return report.bricked != 0 || report.aborted ? 2 : 0;
}

// Run any other command with stage tracing enabled and export the
// captured spans as Chrome trace-event JSON (chrome://tracing,
// Perfetto, speedscope). The wrapped command's exit status is preserved.
// With --merge, instead fold several per-process trace files into one
// cross-process timeline (obs/trace_merge): a pid lane per input, flow
// arrows joining spans that share a trace id. Malformed input JSON is a
// hard error, so --merge doubles as a trace validator.
int cmd_trace(const std::vector<std::string>& args) {
  std::string trace_out;
  bool merge = false;
  std::uint64_t pid = 0;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--trace-out") {
      if (i + 1 >= args.size()) throw Error("missing value for --trace-out");
      trace_out = args[++i];
    } else if (args[i] == "--merge") {
      merge = true;
    } else if (args[i] == "--trace-pid") {
      if (i + 1 >= args.size()) throw Error("missing value for --trace-pid");
      pid = std::strtoull(args[++i].c_str(), nullptr, 10);
      if (pid == 0) throw Error("--trace-pid must be >= 1");
    } else {
      rest.push_back(args[i]);
    }
  }
  if (rest.empty()) return usage();

  if (merge) {
    std::vector<obs::NamedTrace> inputs;
    for (const std::string& file : rest) {
      const Bytes body = read_file(file);
      // Lane label: the file's basename, sans .json — "client.json"
      // becomes lane "client" in the merged view.
      std::string name = file;
      const std::size_t slash = name.find_last_of('/');
      if (slash != std::string::npos) name.erase(0, slash + 1);
      if (name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
        name.erase(name.size() - 5);
      }
      inputs.push_back(obs::NamedTrace{name, std::string(body.begin(),
                                                         body.end())});
    }
    obs::MergeStats stats;
    const std::string merged = obs::merge_traces(inputs, &stats);
    if (trace_out.empty()) trace_out = "merged.json";
    write_file(trace_out, Bytes(merged.begin(), merged.end()));
    std::printf("merged %zu trace(s): %zu event(s), %zu flow arrow(s), "
                "%zu trace id(s) joined -> %s\n",
                stats.processes, stats.events, stats.flow_events,
                stats.traces_joined, trace_out.c_str());
    return 0;
  }

  const std::string inner = rest.front();
  if (inner == "trace") throw Error("trace: cannot trace itself");
  rest.erase(rest.begin());

  if (pid != 0) obs::set_trace_pid(static_cast<std::uint32_t>(pid));
  obs::clear_trace_events();
  obs::set_tracing(true);
  const int rc = run_command(inner, rest);
  obs::set_tracing(false);
  const std::string json = obs::trace_events_json();
  if (trace_out.empty()) trace_out = "trace.json";
  write_file(trace_out, Bytes(json.begin(), json.end()));
  std::fprintf(stderr, "trace: %zu span(s) -> %s\n", obs::trace_event_count(),
               trace_out.c_str());
  return rc;
}

int run_command(const std::string& command,
                const std::vector<std::string>& args) {
  if (command == "diff") return cmd_diff(args);
  if (command == "apply") return cmd_apply(args);
  if (command == "patch") return cmd_patch(args);
  if (command == "verify") return cmd_verify(args);
  if (command == "lint") return cmd_lint(args);
  if (command == "compose") return cmd_compose(args);
  if (command == "info") return cmd_info(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "store") return cmd_store(args);
  if (command == "fetch") return cmd_fetch(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "campaign") return cmd_campaign(args);
  if (command == "trace") return cmd_trace(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    return run_command(command, args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ipdelta: %s\n", e.what());
    // Crash-path flight record: whatever notable events led up to the
    // failure (verify rejects, net errors, poisoned journals).
    const std::string events = obs::global_events().dump();
    if (!events.empty()) {
      std::fprintf(stderr, "recent events:\n%s", events.c_str());
    }
    // Per-session flight recorders dumped on the way down: print each
    // failed session's timeline, keyed by trace id, so one bad device's
    // story survives the process.
    for (const obs::FlightDump& dump : obs::flight_dumps()) {
      std::fprintf(stderr, "flight record [%s] %s (%s):\n%s",
                   dump.trace_id.empty() ? "untraced" : dump.trace_id.c_str(),
                   dump.label.c_str(), dump.reason.c_str(),
                   dump.text.c_str());
    }
    return 2;
  }
}
