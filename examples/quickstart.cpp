// quickstart — the paper's Figure 1 walk-through, live.
//
// Builds a delta between two small "files", shows the copy/add commands,
// demonstrates the write-before-read conflict that breaks naive in-place
// application, converts the delta with the paper's algorithm, and applies
// it in place.
//
// Run:  ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "apply/oracle.hpp"
#include "core/hexdump.hpp"
#include "ipdelta.hpp"

namespace {

void banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace

int main() {
  using namespace ipd;

  // Two versions of a little config "file". The new version moves the
  // trailing block to the front — the classic case where in-place
  // reconstruction conflicts.
  const Bytes reference = to_bytes(
      "name=ipdelta\nversion=1\nfeatures=delta,codec\n"
      "# trailer: checksum tables and constants #");
  const Bytes version = to_bytes(
      "# trailer: checksum tables and constants #\n"
      "name=ipdelta\nversion=2\nfeatures=delta,codec,inplace\n");

  banner("reference (old version)");
  std::cout << hexdump(reference);
  banner("version (new version)");
  std::cout << hexdump(version);

  // -- Figure 1: the delta encoding -------------------------------------
  banner("delta commands (greedy differencer)");
  PipelineOptions options;
  options.differ = DifferKind::kGreedy;
  options.differ_options.seed_length = 8;
  options.differ_options.min_match = 8;
  const Script script = diff_bytes(options.differ, reference, version,
                                   options.differ_options);
  std::cout << script.to_text();
  const ScriptSummary sum = script.summary();
  std::printf("%zu copies (%llu bytes), %zu adds (%llu bytes)\n",
              sum.copy_count,
              static_cast<unsigned long long>(sum.copied_bytes),
              sum.add_count,
              static_cast<unsigned long long>(sum.added_bytes));

  // -- §4.1: why naive in-place application corrupts ---------------------
  banner("write-before-read conflicts in the raw delta");
  const ConflictAnalysis conflicts = analyze_conflicts(script);
  if (conflicts.in_place_safe()) {
    std::printf("none — this delta happens to be in-place safe already\n");
  } else {
    for (const Conflict& c : conflicts.conflicts) {
      std::cout << "  command #" << c.reader_index
                << " reads bytes " << c.overlap << " that command #"
                << c.writer_index << " already overwrote\n";
    }
    std::printf("  -> %llu bytes would be reconstructed corrupt\n",
                static_cast<unsigned long long>(conflicts.corrupt_bytes));
  }

  // -- §4.2: the in-place conversion -------------------------------------
  banner("converted (in-place reconstructible) delta");
  const ConvertResult converted =
      convert_to_inplace(script, reference, options.convert);
  std::cout << converted.script.to_text();
  std::printf(
      "digraph: %zu copies, %zu edges; cycles broken: %zu; copies "
      "converted to adds: %zu (cost %llu bytes)\n",
      converted.report.copies_in, converted.report.edges,
      converted.report.cycles_found, converted.report.copies_converted,
      static_cast<unsigned long long>(converted.report.conversion_cost));

  // -- §1: reconstruct in the space the old version occupies -------------
  banner("in-place reconstruction");
  Bytes buffer = reference;
  buffer.resize(std::max(reference.size(), version.size()));
  apply_inplace(converted.script, buffer, reference.size(), version.size());
  buffer.resize(version.size());
  std::cout << hexdump(buffer);
  std::printf("reconstruction %s\n",
              buffer == version ? "MATCHES the new version" : "FAILED");

  // -- the Pipeline API ---------------------------------------------------
  // One configured handle does the whole chain — diff, convert, encode —
  // and returns the artifact next to its conversion report, size stats
  // and per-stage timing. (Large inputs additionally fan the diff and
  // CRWI stages across a thread pool; output is byte-identical at any
  // PipelineOptions::parallelism.)
  banner("Pipeline API");
  const Pipeline pipeline(options);
  const BuildResult built = pipeline.build_inplace(reference, version);
  Bytes device = reference;
  device.resize(std::max(reference.size(), version.size()));
  const length_t new_len = apply_delta_inplace(built.delta, device);
  std::printf(
      "serialized in-place delta: %zu bytes (%.1f%% of the %zu-byte "
      "version, %.2f ms); apply_delta_inplace -> %llu bytes, %s\n",
      built.delta.size(), built.stats.compression.percent(), version.size(),
      static_cast<double>(built.timing.total_ns) / 1e6,
      static_cast<unsigned long long>(new_len),
      std::equal(version.begin(), version.end(), device.begin())
          ? "verified"
          : "MISMATCH");
  // The server-side apply helper round-trips the same artifact.
  const Bytes replayed = pipeline.apply(built.delta, reference);
  std::printf("Pipeline::apply round-trip %s\n",
              replayed == version ? "verified" : "MISMATCH");
  return buffer == version ? 0 : 1;
}
