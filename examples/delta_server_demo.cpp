// delta_server_demo — the paper's §1 vendor, at fleet scale.
//
// A publisher evolves one package through 10 releases, stands up the
// delta distribution service (src/server/), and lets a mixed-version
// fleet of 48 simulated devices — stragglers on old releases, most near
// the tip — upgrade to the latest release from 8 concurrent client
// threads. Every device applies its served artifacts in place and
// verifies the result; the service's metrics snapshot then shows the
// machinery that made it cheap: cache hits, coalesced builds, and the
// route mix (direct delta / per-hop chain / full image).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "server/delta_service.hpp"

using namespace ipd;

int main() {
  // --- publisher: a drifting 10-release history -----------------------
  Rng rng(0x5E12'FEED);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, 96 << 10, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 64;
  for (int i = 1; i < 10; ++i) {
    history.push_back(mutate(history.back(), rng, 60, model));
  }
  VersionStore store;
  for (const Bytes& release : history) store.publish(release);
  std::printf("published %zu releases (%zu KiB each)\n",
              store.release_count(), history[0].size() >> 10);

  // --- the service ----------------------------------------------------
  ServiceOptions options;
  options.cache_budget = 16 << 20;
  options.workers = 4;
  DeltaService service(store, options);

  // --- a mixed-version fleet ------------------------------------------
  // Device version skew: most devices track recent releases, a long tail
  // of stragglers sits far behind — the worst case for naive per-request
  // differencing and exactly what the cache + singleflight amortize.
  struct Device {
    ReleaseId at;
    Bytes image;
  };
  std::vector<Device> fleet;
  Rng fleet_rng(42);
  for (int d = 0; d < 48; ++d) {
    const std::uint64_t n = store.release_count() - 1;
    ReleaseId at = static_cast<ReleaseId>(n - 1 - fleet_rng.below(2));
    if (fleet_rng.chance(0.25)) {  // straggler
      at = static_cast<ReleaseId>(fleet_rng.below(n));
    }
    fleet.push_back(Device{at, history[at]});
  }

  const ReleaseId target = store.latest();
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t d = next.fetch_add(1);
        if (d >= fleet.size()) return;
        Device& device = fleet[d];
        const ServeResult result = service.serve(device.at, target);
        device.image = apply_served(result, device.image);
        if (device.image == history[target]) ++ok;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  std::printf("upgraded %zu/%zu devices to release %u\n\n", ok.load(),
              fleet.size(), target);
  std::printf("%s", service.metrics_text().c_str());
  return ok.load() == fleet.size() ? 0 : 1;
}
