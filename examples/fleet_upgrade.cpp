// fleet_upgrade — a publisher upgrading a fleet of devices scattered
// across a release history.
//
// The server holds releases v0..v7 of a firmware. Devices check in
// running anything from v0 to v6 and must reach v7 over a slow link. For
// each device the UpgradePlanner picks the byte-cheapest route: direct
// in-place delta, a chain of cached release-to-release deltas, or the
// full image — and we execute the plan to prove it lands byte-perfect.
//
// Run:  ./examples/fleet_upgrade
#include <cstdio>

#include "archive/upgrade_planner.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "delta/stats.hpp"

int main() {
  using namespace ipd;

  // Build an 8-release history with realistic drift.
  Rng rng(0xF1EE7);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, 160 << 10, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 64;
  for (int i = 1; i < 8; ++i) {
    history.push_back(mutate(history.back(), rng, 80, model));
  }
  const std::size_t latest = history.size() - 1;

  PlannerOptions options;
  options.max_hop_span = 7;
  UpgradePlanner planner(
      std::vector<ByteView>(history.begin(), history.end()), options);

  const ChannelModel link = channel_28k();
  std::printf(
      "release history: 8 versions of a %s firmware; fleet reaches v7 over "
      "%s\n\n",
      format_bytes(history[0].size()).c_str(), link.name.c_str());
  std::printf("%6s %28s %12s %10s %12s %10s\n", "device", "plan", "download",
              "time", "vs direct", "vs full");

  bool all_ok = true;
  const Pipeline pipeline;
  for (std::size_t from = 0; from < latest; ++from) {
    const UpgradePlan plan = planner.plan(from, latest);

    std::string route = "v" + std::to_string(from);
    for (const UpgradeStep& step : plan.steps) {
      route += step.full_image ? "=>v" : "->v";
      route += std::to_string(step.to);
    }

    const Bytes direct =
        pipeline.build_inplace(history[from], history[latest]).delta;
    Bytes image = history[from];
    planner.execute(plan, image);
    const bool ok = image == history[latest];
    all_ok = all_ok && ok;

    std::printf("%6zu %28s %12s %9.1fs %11.2fx %9.2fx%s\n", from,
                route.c_str(), format_bytes(plan.total_bytes).c_str(),
                plan.download_seconds(link),
                static_cast<double>(direct.size()) /
                    static_cast<double>(plan.total_bytes),
                static_cast<double>(history[latest].size()) /
                    static_cast<double>(plan.total_bytes),
                ok ? "" : "  ** VERIFY FAILED **");
  }

  std::printf(
      "\n%zu deltas were built to serve the whole fleet (lazy cache; the "
      "naive all-pairs build would need %zu)\n",
      planner.deltas_built(), latest * (latest + 1) / 2);
  std::printf("all devices verified: %s\n", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
