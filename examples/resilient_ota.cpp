// resilient_ota — the failure modes the basic flow ignores, handled.
//
// 1. Streaming: the device applies the delta while it downloads, so it
//    never stages the whole delta in RAM.
// 2. Power loss: the journaled updater is interrupted at random points
//    (simulated write tearing) and resumes until the update lands, with
//    the flash verified byte-perfect afterwards.
//
// Run:  ./examples/resilient_ota
#include <cstdio>

#include "apply/stream_applier.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "device/resumable_updater.hpp"
#include "ipdelta.hpp"

int main() {
  using namespace ipd;

  // Firmware pair with a shifted region (forces self-overlapping copies,
  // the non-idempotent case the journal exists for).
  Rng rng(0x07A);
  Bytes v1 = generate_file(rng, 128 << 10, FileProfile::kBinary);
  Bytes v2 = v1;
  std::copy(v2.begin() + 4096, v2.begin() + 90000, v2.begin() + 6000);
  v2 = mutate(v2, rng, 25);
  const Bytes delta = Pipeline().build_inplace(v1, v2).delta;
  std::printf("firmware: %zu B -> %zu B, in-place delta %zu B\n", v1.size(),
              v2.size(), delta.size());

  // --- part 1: streaming application ------------------------------------
  {
    Bytes image = v1;
    image.resize(std::max(v1.size(), v2.size()));
    StreamingInplaceApplier applier(image);
    std::size_t chunks = 0;
    for (std::size_t pos = 0; pos < delta.size(); pos += 1400) {  // ~MTU
      applier.feed(ByteView(delta).subspan(
          pos, std::min<std::size_t>(1400, delta.size() - pos)));
      ++chunks;
    }
    std::printf(
        "\nstreaming: %zu network chunks, %zu commands applied on the fly,\n"
        "  parser RAM high-water %zu B (vs %zu B to stage the delta); %s\n",
        chunks, applier.commands_applied(), applier.peak_buffered(),
        delta.size(),
        applier.finished() && std::equal(v2.begin(), v2.end(), image.begin())
            ? "image verified"
            : "FAILED");
  }

  // --- part 2: power-failure storm --------------------------------------
  {
    const std::size_t image_area = 192 << 10;
    const JournalRegion journal{image_area, 16 << 10};
    FlashDevice device(image_area + journal.size, 4096,
                       delta.size() + (32 << 10));
    device.load_image(v1);
    clear_journal(device, journal);

    Rng chaos(0xDEAD);
    int failures = 0;
    ResumableUpdateResult result;
    for (;;) {
      // Pull the plug after a random 4-40 KiB of flash writes.
      device.inject_power_failure_after(chaos.range(4 << 10, 40 << 10));
      try {
        result = apply_update_resumable(device, delta, channel_28k(), journal);
        break;
      } catch (const FlashDevice::PowerFailure&) {
        ++failures;
        std::printf("  power failed mid-update (#%d) — rebooting...\n",
                    failures);
      }
    }
    device.clear_power_failure();

    const bool ok =
        std::equal(v2.begin(), v2.end(), device.inspect().begin());
    std::printf(
        "\njournaled update survived %d power failures; resumed from step "
        "%zu on the final run;\n  %zu journal records, CRC %s, flash %s\n",
        failures, result.steps_replayed, result.journal_records,
        result.update.crc_verified ? "verified" : "NOT verified",
        ok ? "matches v2" : "DOES NOT match v2");
    return ok ? 0 : 1;
  }
}
