// ota_over_tcp — the whole distribution story on one machine.
//
// A publisher stands up a DeltaServer on a localhost TCP port over a
// 6-release firmware history. A fleet of straggler devices — every one
// starting from a different old release, and every one behind a
// deliberately unreliable link (drops, truncations, bit flips) — streams
// its way to the latest release. Each hop's delta is applied in place
// while it downloads (peak RAM: one command), every fault is absorbed by
// reconnect + RESUME at the exact byte already applied, and every device
// ends bit-identical to the published release.
//
// Run:  ./examples/ota_over_tcp
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "net/delta_server.hpp"
#include "net/faulty_transport.hpp"
#include "net/ota_client.hpp"
#include "net/tcp_transport.hpp"
#include "server/delta_service.hpp"

int main() {
  using namespace ipd;

  // --- publisher: 6 releases of evolving firmware -----------------------
  Rng rng(0x07A7C9);
  std::vector<Bytes> releases;
  releases.push_back(generate_file(rng, 96 << 10, FileProfile::kBinary));
  for (int r = 1; r < 6; ++r) {
    releases.push_back(mutate(releases.back(), rng, 40));
  }
  VersionStore store;
  for (const Bytes& release : releases) store.publish(release);

  DeltaService service(store, ServiceOptions{});
  DeltaServer server(service, ServerConfig{});
  try {
    server.start();
  } catch (const TransportError& e) {
    std::printf("no localhost sockets available (%s) — nothing to demo\n",
                e.what());
    return 0;
  }
  const std::uint16_t port = server.port();
  std::printf("publisher: %zu releases of %zu KiB firmware on "
              "127.0.0.1:%u\n\n",
              releases.size(), releases[0].size() >> 10, port);

  // --- the straggler fleet, each behind a bad link ----------------------
  const auto latest = static_cast<ReleaseId>(releases.size() - 1);
  FaultStats faults_seen;
  struct Outcome {
    ReleaseId start = 0;
    OtaReport report;
    bool ok = false;
  };
  std::vector<Outcome> outcomes(5);
  std::vector<std::thread> fleet;
  for (std::size_t d = 0; d < outcomes.size(); ++d) {
    fleet.emplace_back([&, d] {
      const auto start = static_cast<ReleaseId>(d % latest);
      outcomes[d].start = start;
      Bytes image = releases[start];

      std::uint64_t attempt = 0;
      OtaClientOptions options;
      options.max_chunk = 1u << 10;  // small frames: more fault exposure
      options.max_attempts = 64;
      options.backoff_initial_ms = 1;
      options.backoff_max_ms = 20;
      OtaClient client(
          [&, d]() -> std::unique_ptr<Transport> {
            FaultOptions faults;
            faults.seed = 0xD00D + 100 * d + attempt;
            if (attempt == 0) {
              // First connection always dies mid-transfer: every device
              // demonstrably exercises the retry + RESUME path.
              faults.kill_after_bytes = 700 + 150 * d;
            } else {
              faults.drop_rate = 0.08;
              faults.truncate_rate = 0.08;
              faults.flip_rate = 0.08;
              faults.grace_ops = 2;  // only the HELLO gets a free pass
            }
            ++attempt;
            return std::make_unique<FaultyTransport>(
                TcpTransport::connect("127.0.0.1", port), faults,
                &faults_seen);
          },
          options);
      outcomes[d].report = client.update_streaming(image, start, latest);
      outcomes[d].ok = image == releases[latest];
    });
  }
  for (std::thread& t : fleet) t.join();
  server.stop();

  std::printf("device  from  hops  retries  resumes  wire KiB  verified\n");
  bool all_ok = true;
  for (std::size_t d = 0; d < outcomes.size(); ++d) {
    const Outcome& o = outcomes[d];
    std::printf("  %-5zu  %-4u  %-4zu  %-7zu  %-7zu  %-8llu  %s\n", d,
                o.start, o.report.hops, o.report.retries, o.report.resumes,
                static_cast<unsigned long long>(o.report.bytes_received >> 10),
                o.ok ? "bit-identical" : "MISMATCH");
    all_ok = all_ok && o.ok;
  }
  std::printf("\nlink faults injected: %llu drops, %llu truncations, "
              "%llu bit flips — all absorbed\n",
              static_cast<unsigned long long>(faults_seen.drops.load()),
              static_cast<unsigned long long>(faults_seen.truncations.load()),
              static_cast<unsigned long long>(faults_seen.flips.load()));
  std::printf("\nserver metrics:\n%s", service.metrics_text().c_str());
  return all_ok ? 0 : 1;
}
