// bench_server — load generator for the delta distribution service.
//
// Drives DeltaService over a standard_corpus()-style release history and
// reports, for the warm-cache serving path, throughput vs. client thread
// count (the scaling claim: request handling is sharded-lock + atomic
// work only), plus hit rate and eviction behaviour vs. cache byte
// budget. The cold section measures build amortization: first-touch
// requests pay create_inplace_delta() once per distinct (from, to) pair,
// everyone after rides the cache or coalesces.
//
// Runs standalone with no arguments (CI smoke); IPDELTA_BENCH_SERVE_OPS
// scales the warm-phase request count for serious runs.
//
// Prints a human table, then one `JSON {...}` line for the tracked
// trend file:
//   bench_server | grep '^JSON ' | cut -c6- > BENCH_SERVER.json
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/trace.hpp"
#include "server/delta_service.hpp"

namespace {

using namespace ipd;

// One package evolved through 12 releases: 66 distinct (from, to) pairs,
// the natural key population for a single-history service.
std::vector<Bytes> make_history() {
  CorpusOptions options;
  options.packages = 1;
  options.releases_per_package = 12;
  options.min_file_size = 48 << 10;
  options.max_file_size = 48 << 10;
  options.edits_per_64k = 60;
  options.mutation_model.length_scale = 64;
  const std::vector<VersionPair> pairs = standard_corpus(options);
  // Consecutive pairs of one package chain: reference of pair k+1 is the
  // version of pair k, so the full history is the first reference plus
  // every version in order.
  std::vector<Bytes> history;
  history.push_back(pairs.front().reference);
  for (const VersionPair& pair : pairs) history.push_back(pair.version);
  return history;
}

struct LoadResult {
  double seconds = 0;
  std::uint64_t requests = 0;
};

/// Fire `total` random (from < to) requests at `service` from `threads`
/// client threads; returns wall time for the whole volley. Per-request
/// serve() latency accumulates into `latency` — the histogram is
/// thread-safe, so all client threads record into it directly.
LoadResult run_load(DeltaService& service, std::size_t releases,
                    std::size_t threads, std::size_t total,
                    std::uint64_t seed, obs::Histogram& latency) {
  std::vector<std::thread> clients;
  LoadResult result;
  result.requests = total;
  result.seconds = bench::time_seconds([&] {
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t quota = total / threads + (t == 0 ? total % threads : 0);
      clients.emplace_back([&service, &latency, releases, quota, seed, t] {
        Rng rng(seed + t);
        for (std::size_t i = 0; i < quota; ++i) {
          const auto from = static_cast<ReleaseId>(rng.below(releases - 1));
          const auto to =
              from + 1 +
              static_cast<ReleaseId>(rng.below(releases - 1 - from));
          bench::time_into(latency, [&] { (void)service.serve(from, to); });
        }
      });
    }
    for (std::thread& client : clients) client.join();
  });
  return result;
}

/// CI gate: the stats exposition must name every registered metric.
/// Re-runs the same X-macro iterations the renderer consumed, against
/// the rendered text — a counter or histogram added to the registry but
/// dropped from the exposition fails the bench (and the smoke job).
int check_stats_exposition(const DeltaService& service) {
  const std::string text = service.stats_text();
  int missing = 0;
  const auto require = [&](const std::string& needle, const char* what) {
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "stats exposition MISSING %s: %s\n", what,
                   needle.c_str());
      ++missing;
    }
  };
  service.metrics().for_each([&](const char* name, std::uint64_t) {
    require("ipdelta_" + std::string(name) + " ", "counter");
  });
  service.histograms().for_each([&](const char* name, const obs::Histogram&) {
    require("ipdelta_" + std::string(name) + "{quantile=", "histogram");
  });
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    for (const char* series : {"stage_ns", "stage_bytes", "stage_ops"}) {
      require(std::string("ipdelta_") + series + "{stage=\"" +
                  obs::stage_name(stage) + "\"}",
              "stage series");
    }
  }
  // Spelled out (not just via the registry loop above) so the smoke job
  // fails loudly if the parallel-build stages are ever renamed/dropped.
  require("ipdelta_stage_ns{stage=\"diff.parallel\"}", "parallel stage");
  require("ipdelta_stage_ns{stage=\"crwi.parallel\"}", "parallel stage");
  require("ipdelta_diff_fanout{quantile=", "fan-out histogram");
  require("ipdelta_crwi_fanout{quantile=", "fan-out histogram");
  if (missing == 0) {
    std::printf("stats exposition: every registered metric present\n");
  }
  return missing;
}

}  // namespace

int main() {
  const std::vector<Bytes> history = make_history();
  VersionStore store;
  for (const Bytes& release : history) store.publish(release);
  const std::size_t releases = store.release_count();

  std::size_t warm_ops = 40'000;
  if (const char* env = std::getenv("IPDELTA_BENCH_SERVE_OPS")) {
    warm_ops = std::strtoull(env, nullptr, 10);
  }

  std::printf("bench_server: %zu releases x %zu KiB, %u hardware threads\n",
              releases, history[0].size() >> 10,
              std::thread::hardware_concurrency());
  bench::rule('=');

  std::string json = "{\"bench\":\"server\",\"releases\":" +
                     std::to_string(releases) +
                     ",\"warm_ops\":" + std::to_string(warm_ops);

  // ---- cold start: build amortization --------------------------------
  {
    ServiceOptions options;
    options.cache_budget = 64ull << 20;
    options.workers = 4;
    DeltaService service(store, options);
    obs::Histogram latency;
    LoadResult cold = run_load(service, releases, 8, 512, 0xC01D, latency);
    const ServiceMetrics& m = service.metrics();
    std::printf(
        "cold start: 512 requests / 8 threads in %.2fs\n"
        "  builds %llu (each distinct delta at most once), coalesced %llu, "
        "hits %llu\n"
        "  serve latency: %s\n",
        cold.seconds,
        static_cast<unsigned long long>(m.builds.load()),
        static_cast<unsigned long long>(m.coalesced_waits.load()),
        static_cast<unsigned long long>(m.cache_hits.load()),
        bench::latency_summary(latency).c_str());
    json += ",\"cold_seconds\":" + std::to_string(cold.seconds) +
            ",\"cold_builds\":" + std::to_string(m.builds.load()) +
            ",\"cold_p99_serve_us\":" +
            std::to_string(latency.snapshot().quantile(0.99) / 1e3);
  }
  bench::rule();

  // ---- warm cache: throughput vs. client threads ---------------------
  // One service, fully warmed, then each thread count fires the same
  // request volume. The serving path never builds: it is store lookup +
  // sharded LRU + atomics, which is what has to scale.
  int exposition_missing = 0;
  {
    ServiceOptions options;
    options.cache_budget = 64ull << 20;
    options.workers = 4;
    DeltaService service(store, options);
    obs::Histogram latency;
    run_load(service, releases, 4, 2048, 0x3A3A, latency);  // warm every pair

    std::printf("warm cache, %zu requests per thread count:\n", warm_ops);
    std::printf("  %-8s %12s %12s %10s   %s\n", "threads", "req/s", "MiB/s",
                "hit rate", "serve latency");
    double base = 0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      service.metrics().reset();
      latency.reset();
      LoadResult warm = run_load(service, releases, threads, warm_ops,
                                 0xBEEF + threads, latency);
      const ServiceMetrics& m = service.metrics();
      const double rate =
          static_cast<double>(warm.requests) / warm.seconds;
      const double mib =
          static_cast<double>(m.bytes_served.load()) / warm.seconds / 1048576.0;
      if (threads == 1) base = rate;
      std::printf("  %-8zu %12.0f %12.1f %9.1f%%   %s  (%.2fx vs 1 thread)\n",
                  threads, rate, mib, 100.0 * m.hit_rate(),
                  bench::latency_summary(latency).c_str(), rate / base);
      if (threads == 8) {
        json += ",\"warm_req_per_sec_1t\":" + std::to_string(base) +
                ",\"warm_req_per_sec_8t\":" + std::to_string(rate) +
                ",\"warm_scaling_8v1\":" + std::to_string(rate / base) +
                ",\"warm_hit_rate\":" + std::to_string(m.hit_rate()) +
                ",\"warm_p99_serve_us\":" +
                std::to_string(latency.snapshot().quantile(0.99) / 1e3);
      }
    }
    exposition_missing = check_stats_exposition(service);
  }
  bench::rule();

  // ---- tracing overhead: the span plumbing's cost on the warm path ---
  // Three identical volleys against one warm service: tracing off
  // (baseline), tracing on (Chrome-trace capture live), tracing off
  // again. on-vs-off is the capture cost; the off/off delta bounds what
  // the disabled-tracing branch costs — the number that must stay under
  // 2% for tracing to be safe to ship enabled-but-dormant fleet-wide.
  {
    ServiceOptions options;
    options.cache_budget = 64ull << 20;
    options.workers = 4;
    DeltaService service(store, options);
    obs::Histogram latency;
    run_load(service, releases, 4, 2048, 0x7A3A, latency);  // warm every pair
    // Interleaved best-of-seven, single client thread: every round
    // measures off / on / off back-to-back, so a burst of competing
    // load lands on all three configurations instead of skewing
    // whichever one it overlapped, and the best round approximates the
    // uncontended cost. One thread keeps scheduler noise out of what is
    // a per-call-overhead measurement, not a scaling one.
    const std::size_t volley_ops = warm_ops;
    const auto volley = [&](std::uint64_t seed) {
      latency.reset();
      const LoadResult r =
          run_load(service, releases, 1, volley_ops, seed, latency);
      return static_cast<double>(r.requests) / r.seconds;
    };
    double off_rate = 0, on_rate = 0, off_again_rate = 0;
    std::size_t captured = 0;
    for (std::uint64_t rep = 0; rep < 7; ++rep) {
      obs::set_tracing(false);
      off_rate = std::max(off_rate, volley(0x0FF1 + rep));
      obs::clear_trace_events();
      obs::set_tracing(true);
      on_rate = std::max(on_rate, volley(0x0A11 + rep));
      obs::set_tracing(false);
      captured = obs::trace_event_count();
      obs::clear_trace_events();
      off_again_rate = std::max(off_again_rate, volley(0x0FF2 + rep));
    }
    const double on_overhead_pct = (off_rate / on_rate - 1.0) * 100.0;
    const double off_overhead_pct =
        (std::max(off_rate, off_again_rate) /
             std::min(off_rate, off_again_rate) -
         1.0) *
        100.0;
    std::printf(
        "tracing overhead (1 thread, best of 7 x %zu requests):\n"
        "  off %.0f req/s, on %.0f req/s (%zu span events captured)\n"
        "  capture cost %.2f%%; off-path run-to-run delta %.2f%%\n",
        volley_ops, off_rate, on_rate, captured, on_overhead_pct,
        off_overhead_pct);
    json += ",\"trace_off_req_per_sec\":" + std::to_string(off_rate) +
            ",\"trace_on_req_per_sec\":" + std::to_string(on_rate) +
            ",\"trace_on_overhead_pct\":" + std::to_string(on_overhead_pct) +
            ",\"trace_off_overhead_pct\":" + std::to_string(off_overhead_pct);
  }
  bench::rule();

  // ---- hit rate & evictions vs. cache budget -------------------------
  {
    std::printf("cache budget sweep (4 threads, 600 requests):\n");
    std::printf("  %-12s %10s %10s %10s %8s\n", "budget", "hit rate",
                "builds", "evictions", "rejects");
    std::size_t repetition = 0;
    for (const std::uint64_t budget :
         {std::uint64_t{64} << 10, std::uint64_t{512} << 10,
          std::uint64_t{8} << 20}) {
      ServiceOptions options;
      options.cache_budget = budget;
      options.workers = 4;
      DeltaService service(store, options);
      obs::Histogram latency;
      // Distinct request stream per repetition (bench_util.hpp).
      run_load(service, releases, 4, 600,
               bench::repetition_seed(0xCAFE, repetition++), latency);
      const ServiceMetrics& m = service.metrics();
      const DeltaCache::Stats stats = service.cache().stats();
      char label[32];
      std::snprintf(label, sizeof label, "%llu KiB",
                    static_cast<unsigned long long>(budget >> 10));
      std::printf("  %-12s %9.1f%% %10llu %10llu %8llu\n", label,
                  100.0 * m.hit_rate(),
                  static_cast<unsigned long long>(m.builds.load()),
                  static_cast<unsigned long long>(stats.evictions),
                  static_cast<unsigned long long>(stats.rejected));
    }
  }
  json += "}";
  bench::rule('=');
  std::printf("JSON %s\n", json.c_str());
  return exposition_missing == 0 ? 0 : 1;
}
