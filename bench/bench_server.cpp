// bench_server — load generator for the delta distribution service.
//
// Drives DeltaService over a standard_corpus()-style release history and
// reports, for the warm-cache serving path, throughput vs. client thread
// count (the scaling claim: request handling is sharded-lock + atomic
// work only), plus hit rate and eviction behaviour vs. cache byte
// budget. The cold section measures build amortization: first-touch
// requests pay Pipeline::build_inplace once per distinct (from, to) pair,
// everyone after rides the cache or coalesces.
//
// Runs standalone with no arguments (CI smoke); IPDELTA_BENCH_SERVE_OPS
// scales the warm-phase request count for serious runs.
//
// Prints a human table, then one `JSON {...}` line for the tracked
// trend file:
//   bench_server | grep '^JSON ' | cut -c6- > BENCH_SERVER.json
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/delta_server.hpp"
#include "net/tcp_transport.hpp"
#include "obs/trace.hpp"
#include "server/delta_service.hpp"

namespace {

using namespace ipd;

// One package evolved through 12 releases: 66 distinct (from, to) pairs,
// the natural key population for a single-history service.
std::vector<Bytes> make_history() {
  CorpusOptions options;
  options.packages = 1;
  options.releases_per_package = 12;
  options.min_file_size = 48 << 10;
  options.max_file_size = 48 << 10;
  options.edits_per_64k = 60;
  options.mutation_model.length_scale = 64;
  const std::vector<VersionPair> pairs = standard_corpus(options);
  // Consecutive pairs of one package chain: reference of pair k+1 is the
  // version of pair k, so the full history is the first reference plus
  // every version in order.
  std::vector<Bytes> history;
  history.push_back(pairs.front().reference);
  for (const VersionPair& pair : pairs) history.push_back(pair.version);
  return history;
}

struct LoadResult {
  double seconds = 0;
  std::uint64_t requests = 0;
};

/// Fire `total` random (from < to) requests at `service` from `threads`
/// client threads; returns wall time for the whole volley. Per-request
/// serve() latency accumulates into `latency` — the histogram is
/// thread-safe, so all client threads record into it directly.
LoadResult run_load(DeltaService& service, std::size_t releases,
                    std::size_t threads, std::size_t total,
                    std::uint64_t seed, obs::Histogram& latency) {
  std::vector<std::thread> clients;
  LoadResult result;
  result.requests = total;
  result.seconds = bench::time_seconds([&] {
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t quota = total / threads + (t == 0 ? total % threads : 0);
      clients.emplace_back([&service, &latency, releases, quota, seed, t] {
        Rng rng(seed + t);
        for (std::size_t i = 0; i < quota; ++i) {
          const auto from = static_cast<ReleaseId>(rng.below(releases - 1));
          const auto to =
              from + 1 +
              static_cast<ReleaseId>(rng.below(releases - 1 - from));
          bench::time_into(latency, [&] { (void)service.serve(from, to); });
        }
      });
    }
    for (std::thread& client : clients) client.join();
  });
  return result;
}

/// CI gate: the stats exposition must name every registered metric.
/// Re-runs the same X-macro iterations the renderer consumed, against
/// the rendered text — a counter or histogram added to the registry but
/// dropped from the exposition fails the bench (and the smoke job).
int check_stats_exposition(const DeltaService& service) {
  const std::string text = service.stats_text();
  int missing = 0;
  const auto require = [&](const std::string& needle, const char* what) {
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "stats exposition MISSING %s: %s\n", what,
                   needle.c_str());
      ++missing;
    }
  };
  service.metrics().for_each([&](const char* name, std::uint64_t) {
    require("ipdelta_" + std::string(name) + " ", "counter");
  });
  service.histograms().for_each([&](const char* name, const obs::Histogram&) {
    require("ipdelta_" + std::string(name) + "{quantile=", "histogram");
  });
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    for (const char* series : {"stage_ns", "stage_bytes", "stage_ops"}) {
      require(std::string("ipdelta_") + series + "{stage=\"" +
                  obs::stage_name(stage) + "\"}",
              "stage series");
    }
  }
  // Spelled out (not just via the registry loop above) so the smoke job
  // fails loudly if the parallel-build stages are ever renamed/dropped.
  require("ipdelta_stage_ns{stage=\"diff.parallel\"}", "parallel stage");
  require("ipdelta_stage_ns{stage=\"crwi.parallel\"}", "parallel stage");
  require("ipdelta_diff_fanout{quantile=", "fan-out histogram");
  require("ipdelta_crwi_fanout{quantile=", "fan-out histogram");
  if (missing == 0) {
    std::printf("stats exposition: every registered metric present\n");
  }
  return missing;
}

/// Per-request wire latency over `conns` connections held open against
/// a server on `port`: every connection handshakes up front, then each
/// fires `rounds` warm GET_DELTA requests in lockstep (request -> END
/// timed into `latency`) while the other conns - 1 sessions stay live.
/// Returns false when the run failed (a connection refused or timed
/// out), which for the front-end comparison is itself the result.
bool drive_front_end(std::uint16_t port, std::size_t conns,
                     std::size_t rounds, std::size_t releases,
                     obs::Histogram& latency) {
  std::vector<std::unique_ptr<TcpTransport>> sockets;
  std::vector<std::unique_ptr<FramedConnection>> framed;
  try {
    for (std::size_t i = 0; i < conns; ++i) {
      sockets.push_back(TcpTransport::connect("127.0.0.1", port));
      sockets.back()->set_read_timeout(30'000);
      framed.push_back(std::make_unique<FramedConnection>(*sockets.back()));
      framed.back()->send(HelloMsg{kProtocolVersion, 64u << 10});
      const std::optional<Message> ack = framed.back()->receive();
      if (!ack || !std::holds_alternative<HelloAckMsg>(*ack)) return false;
    }
    Rng rng(0xF00D + conns);
    for (std::size_t round = 0; round < rounds; ++round) {
      for (std::size_t i = 0; i < conns; ++i) {
        const auto from = static_cast<ReleaseId>(rng.below(releases - 1));
        bool complete = false;
        bench::time_into(latency, [&] {
          framed[i]->send(GetDeltaMsg{from, from + 1});
          for (;;) {
            const std::optional<Message> msg = framed[i]->receive();
            if (!msg || std::holds_alternative<ErrorMsg>(*msg)) return;
            if (std::holds_alternative<DeltaEndMsg>(*msg)) {
              complete = true;
              return;
            }
          }
        });
        if (!complete) return false;
      }
    }
  } catch (const Error&) {
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<Bytes> history = make_history();
  VersionStore store;
  for (const Bytes& release : history) store.publish(release);
  const std::size_t releases = store.release_count();

  std::size_t warm_ops = 40'000;
  if (const char* env = std::getenv("IPDELTA_BENCH_SERVE_OPS")) {
    warm_ops = std::strtoull(env, nullptr, 10);
  }

  std::printf("bench_server: %zu releases x %zu KiB, %u hardware threads\n",
              releases, history[0].size() >> 10,
              std::thread::hardware_concurrency());
  bench::rule('=');

  std::string json = "{\"bench\":\"server\",\"releases\":" +
                     std::to_string(releases) +
                     ",\"warm_ops\":" + std::to_string(warm_ops);

  // ---- cold start: build amortization --------------------------------
  {
    ServiceOptions options;
    options.cache_budget = 64ull << 20;
    options.workers = 4;
    DeltaService service(store, options);
    obs::Histogram latency;
    LoadResult cold = run_load(service, releases, 8, 512, 0xC01D, latency);
    const ServiceMetrics& m = service.metrics();
    std::printf(
        "cold start: 512 requests / 8 threads in %.2fs\n"
        "  builds %llu (each distinct delta at most once), coalesced %llu, "
        "hits %llu\n"
        "  serve latency: %s\n",
        cold.seconds,
        static_cast<unsigned long long>(m.builds.load()),
        static_cast<unsigned long long>(m.coalesced_waits.load()),
        static_cast<unsigned long long>(m.cache_hits.load()),
        bench::latency_summary(latency).c_str());
    json += ",\"cold_seconds\":" + std::to_string(cold.seconds) +
            ",\"cold_builds\":" + std::to_string(m.builds.load()) +
            ",\"cold_p99_serve_us\":" +
            std::to_string(latency.snapshot().quantile(0.99) / 1e3);
  }
  bench::rule();

  // ---- warm cache: throughput vs. client threads ---------------------
  // One service, fully warmed, then each thread count fires the same
  // request volume. The serving path never builds: it is store lookup +
  // sharded LRU + atomics, which is what has to scale.
  int exposition_missing = 0;
  {
    ServiceOptions options;
    options.cache_budget = 64ull << 20;
    options.workers = 4;
    DeltaService service(store, options);
    obs::Histogram latency;
    run_load(service, releases, 4, 2048, 0x3A3A, latency);  // warm every pair

    std::printf("warm cache, %zu requests per thread count:\n", warm_ops);
    std::printf("  %-8s %12s %12s %10s   %s\n", "threads", "req/s", "MiB/s",
                "hit rate", "serve latency");
    double base = 0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      service.metrics().reset();
      latency.reset();
      LoadResult warm = run_load(service, releases, threads, warm_ops,
                                 0xBEEF + threads, latency);
      const ServiceMetrics& m = service.metrics();
      const double rate =
          static_cast<double>(warm.requests) / warm.seconds;
      const double mib =
          static_cast<double>(m.bytes_served.load()) / warm.seconds / 1048576.0;
      if (threads == 1) base = rate;
      std::printf("  %-8zu %12.0f %12.1f %9.1f%%   %s  (%.2fx vs 1 thread)\n",
                  threads, rate, mib, 100.0 * m.hit_rate(),
                  bench::latency_summary(latency).c_str(), rate / base);
      if (threads == 8) {
        json += ",\"warm_req_per_sec_1t\":" + std::to_string(base) +
                ",\"warm_req_per_sec_8t\":" + std::to_string(rate) +
                ",\"warm_scaling_8v1\":" + std::to_string(rate / base) +
                ",\"warm_hit_rate\":" + std::to_string(m.hit_rate()) +
                ",\"warm_p99_serve_us\":" +
                std::to_string(latency.snapshot().quantile(0.99) / 1e3);
      }
    }
    exposition_missing = check_stats_exposition(service);
  }
  bench::rule();

  // ---- front end: held-open connections, reactor vs thread-per-conn --
  // The scaling claim of the epoll front end: one reactor thread carries
  // an order of magnitude more live connections than the retired
  // thread-per-connection loop afforded threads, with per-request p99
  // no worse. The baseline is serve_session() itself — the exact
  // blocking session loop the old front end ran on every thread —
  // behind a hand-rolled accept loop.
  {
    constexpr std::size_t kThreadedConns = 32;
    constexpr std::size_t kReactorConns = 320;
    constexpr std::size_t kRounds = 4;
    ServiceOptions options;
    options.cache_budget = 64ull << 20;
    options.workers = 4;
    DeltaService service(store, options);
    // Warm every adjacent pair once so both front ends serve pure cache
    // hits: the numbers compare wire paths, not build scheduling luck.
    for (std::size_t from = 0; from + 1 < releases; ++from) {
      (void)service.serve(static_cast<ReleaseId>(from),
                          static_cast<ReleaseId>(from + 1));
    }
    bool net_ok = true;
    obs::Histogram threaded_latency;
    obs::Histogram reactor_latency;
    try {
      {
        TcpListener listener(0);
        DeltaServer sessions(service);  // session loop only, never started
        std::vector<std::thread> per_conn;
        std::thread acceptor([&] {
          while (std::unique_ptr<TcpTransport> t = listener.accept()) {
            per_conn.emplace_back(
                [&sessions, conn = std::move(t)]() mutable {
                  try {
                    sessions.serve_session(*conn);
                  } catch (const Error&) {
                  }
                });
          }
        });
        net_ok = drive_front_end(listener.port(), kThreadedConns, kRounds,
                                 releases, threaded_latency);
        listener.close();
        acceptor.join();
        for (std::thread& t : per_conn) t.join();
      }
      {
        ServerConfig net;
        net.max_connections = kReactorConns + 16;
        net.idle_timeout_ms = 60'000;
        DeltaServer reactor(service, net);
        reactor.start();
        net_ok = net_ok && drive_front_end(reactor.port(), kReactorConns,
                                           kRounds, releases,
                                           reactor_latency);
        reactor.stop();
      }
    } catch (const TransportError&) {
      net_ok = false;
    }
    if (net_ok) {
      const double threaded_p99 =
          threaded_latency.snapshot().quantile(0.99) / 1e3;
      const double reactor_p99 =
          reactor_latency.snapshot().quantile(0.99) / 1e3;
      const double scaling = static_cast<double>(kReactorConns) /
                             static_cast<double>(kThreadedConns);
      std::printf(
          "front end (%zu warm requests per connection):\n"
          "  thread-per-conn %4zu live connections, request p99 %8.1f us\n"
          "  epoll reactor   %4zu live connections, request p99 %8.1f us "
          "(%.0fx connections)\n",
          kRounds, kThreadedConns, threaded_p99, kReactorConns, reactor_p99,
          scaling);
      json += ",\"conns_threaded\":" + std::to_string(kThreadedConns) +
              ",\"conns_reactor\":" + std::to_string(kReactorConns) +
              ",\"conn_scaling_x\":" + std::to_string(scaling) +
              ",\"threaded_p99_us\":" + std::to_string(threaded_p99) +
              ",\"reactor_p99_us\":" + std::to_string(reactor_p99);
    } else {
      std::printf("front end: localhost sockets unavailable, skipped\n");
      json += ",\"net_skipped\":true";
    }
  }
  bench::rule();

  // ---- tracing overhead: the span plumbing's cost on the warm path ---
  // Three identical volleys against one warm service: tracing off
  // (baseline), tracing on (Chrome-trace capture live), tracing off
  // again. on-vs-off is the capture cost; the off/off delta bounds what
  // the disabled-tracing branch costs — the number that must stay under
  // 2% for tracing to be safe to ship enabled-but-dormant fleet-wide.
  {
    ServiceOptions options;
    options.cache_budget = 64ull << 20;
    options.workers = 4;
    DeltaService service(store, options);
    obs::Histogram latency;
    run_load(service, releases, 4, 2048, 0x7A3A, latency);  // warm every pair
    // Interleaved best-of-seven, single client thread: every round
    // measures off / on / off back-to-back, so a burst of competing
    // load lands on all three configurations instead of skewing
    // whichever one it overlapped, and the best round approximates the
    // uncontended cost. One thread keeps scheduler noise out of what is
    // a per-call-overhead measurement, not a scaling one.
    const std::size_t volley_ops = warm_ops;
    const auto volley = [&](std::uint64_t seed) {
      latency.reset();
      const LoadResult r =
          run_load(service, releases, 1, volley_ops, seed, latency);
      return static_cast<double>(r.requests) / r.seconds;
    };
    double off_rate = 0, on_rate = 0, off_again_rate = 0;
    std::size_t captured = 0;
    for (std::uint64_t rep = 0; rep < 7; ++rep) {
      obs::set_tracing(false);
      off_rate = std::max(off_rate, volley(0x0FF1 + rep));
      obs::clear_trace_events();
      obs::set_tracing(true);
      on_rate = std::max(on_rate, volley(0x0A11 + rep));
      obs::set_tracing(false);
      captured = obs::trace_event_count();
      obs::clear_trace_events();
      off_again_rate = std::max(off_again_rate, volley(0x0FF2 + rep));
    }
    const double on_overhead_pct = (off_rate / on_rate - 1.0) * 100.0;
    const double off_overhead_pct =
        (std::max(off_rate, off_again_rate) /
             std::min(off_rate, off_again_rate) -
         1.0) *
        100.0;
    std::printf(
        "tracing overhead (1 thread, best of 7 x %zu requests):\n"
        "  off %.0f req/s, on %.0f req/s (%zu span events captured)\n"
        "  capture cost %.2f%%; off-path run-to-run delta %.2f%%\n",
        volley_ops, off_rate, on_rate, captured, on_overhead_pct,
        off_overhead_pct);
    json += ",\"trace_off_req_per_sec\":" + std::to_string(off_rate) +
            ",\"trace_on_req_per_sec\":" + std::to_string(on_rate) +
            ",\"trace_on_overhead_pct\":" + std::to_string(on_overhead_pct) +
            ",\"trace_off_overhead_pct\":" + std::to_string(off_overhead_pct);
  }
  bench::rule();

  // ---- hit rate & evictions vs. cache budget -------------------------
  {
    std::printf("cache budget sweep (4 threads, 600 requests):\n");
    std::printf("  %-12s %10s %10s %10s %8s\n", "budget", "hit rate",
                "builds", "evictions", "rejects");
    std::size_t repetition = 0;
    for (const std::uint64_t budget :
         {std::uint64_t{64} << 10, std::uint64_t{512} << 10,
          std::uint64_t{8} << 20}) {
      ServiceOptions options;
      options.cache_budget = budget;
      options.workers = 4;
      DeltaService service(store, options);
      obs::Histogram latency;
      // Distinct request stream per repetition (bench_util.hpp).
      run_load(service, releases, 4, 600,
               bench::repetition_seed(0xCAFE, repetition++), latency);
      const ServiceMetrics& m = service.metrics();
      const DeltaCache::Stats stats = service.cache().stats();
      char label[32];
      std::snprintf(label, sizeof label, "%llu KiB",
                    static_cast<unsigned long long>(budget >> 10));
      std::printf("  %-12s %9.1f%% %10llu %10llu %8llu\n", label,
                  100.0 * m.hit_rate(),
                  static_cast<unsigned long long>(m.builds.load()),
                  static_cast<unsigned long long>(stats.evictions),
                  static_cast<unsigned long long>(stats.rejected));
    }
  }
  json += "}";
  bench::rule('=');
  std::printf("JSON %s\n", json.c_str());
  return exposition_missing == 0 ? 0 : 1;
}
