// E4 — Figure 2: the binary-tree CRWI adversary on which the locally-
// minimum policy is arbitrarily worse than the global optimum.
//
// The paper: local-min walks each cycle (root..leaf, length log|V|) and
// deletes the leaf at cost C, for all k leaves — total k*C — while
// deleting the root alone costs ~C. The gap k grows without bound. The
// cycle-walk column also verifies the O(|V| log |V|) work bound for
// local-min on this family.
#include <cstdio>

#include "adversary/constructions.hpp"
#include "bench_util.hpp"
#include "inplace/converter.hpp"

namespace {

using namespace ipd;

}  // namespace

int main() {
  std::printf(
      "Figure 2 — binary-tree adversary: locally-minimum vs optimal\n");
  bench::rule('=');
  std::printf("%6s %8s %8s | %12s %12s %12s | %8s %10s\n", "depth", "nodes",
              "leaves", "local-min", "constant", "optimal", "gap", "cyclewalk");
  bench::rule();

  for (std::size_t depth = 2; depth <= 14; ++depth) {
    const Fig2Instance inst = make_fig2_tree(depth);
    const std::size_t nodes = (std::size_t{1} << depth) - 1;

    ConvertOptions local;
    local.policy = BreakPolicy::kLocalMin;
    const ConvertResult r_local =
        convert_to_inplace(inst.script, inst.reference, local);

    ConvertOptions constant;
    constant.policy = BreakPolicy::kConstantTime;
    const ConvertResult r_const =
        convert_to_inplace(inst.script, inst.reference, constant);

    // Exact search is exponential; cap it at small trees. The optimum is
    // known analytically (delete the root) for every size, so report the
    // root's conversion cost directly above the cap.
    std::uint64_t optimal_cost;
    if (nodes <= 63) {
      ConvertOptions exact;
      exact.policy = BreakPolicy::kExactOptimal;
      optimal_cost = convert_to_inplace(inst.script, inst.reference, exact)
                         .report.conversion_cost;
    } else {
      const CodewordCostModel model(kPaperExplicit, inst.version.size());
      optimal_cost = model.conversion_cost(
          CopyCommand{0, 0, inst.root_copy_length});
    }

    std::printf("%6zu %8zu %8zu | %10llu B %10llu B %10llu B | %7.1fx %10zu\n",
                depth, nodes, inst.leaf_count,
                static_cast<unsigned long long>(r_local.report.conversion_cost),
                static_cast<unsigned long long>(r_const.report.conversion_cost),
                static_cast<unsigned long long>(optimal_cost),
                static_cast<double>(r_local.report.conversion_cost) /
                    static_cast<double>(optimal_cost),
                r_local.report.cycle_length_sum);
  }

  bench::rule();
  std::printf(
      "expected shape: both heuristics pay ~leaves x leaf-cost; the gap\n"
      "to optimal grows linearly in the leaf count (unbounded, as the\n"
      "paper argues); cyclewalk ~ leaves x tree depth = O(|V| log |V|).\n");
  return 0;
}
