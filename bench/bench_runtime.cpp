// E2 — the paper's §7 run-time comparison:
//
//   "Over all inputs, the in-place conversion algorithm completed in 56%
//    the amount of total time used by the delta compression algorithm.
//    The run-time of the in-place conversion algorithm only exceeded the
//    delta compression run-time on 0.1% of all inputs and never took more
//    than twice as much time."
//
// We time both phases per corpus pair, for both differencers and both
// cycle policies, and report the same three statistics.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "inplace/converter.hpp"
#include "ipdelta.hpp"

namespace {

using namespace ipd;

struct Stats {
  double compress_total = 0;
  double convert_total = 0;
  std::size_t pairs = 0;
  std::size_t convert_slower = 0;
  double worst_ratio = 0;
};

Stats run(const std::vector<VersionPair>& corpus, DifferKind differ,
          BreakPolicy policy) {
  Stats stats;
  for (const VersionPair& pair : corpus) {
    Script script;
    const double t_compress = bench::time_seconds([&] {
      script = diff_bytes(differ, pair.reference, pair.version);
    });
    ConvertOptions copts;
    copts.policy = policy;
    const double t_convert = bench::time_seconds([&] {
      const ConvertResult r = convert_to_inplace(script, pair.reference, copts);
      (void)r;
    });
    stats.compress_total += t_compress;
    stats.convert_total += t_convert;
    ++stats.pairs;
    if (t_convert > t_compress) ++stats.convert_slower;
    if (t_compress > 0) {
      stats.worst_ratio = std::max(stats.worst_ratio, t_convert / t_compress);
    }
  }
  return stats;
}

void report(const char* label, const Stats& s) {
  std::printf(
      "%-34s %8.3f s %8.3f s %7.1f%% %9.1f%% %8.2fx\n", label,
      s.compress_total, s.convert_total,
      100.0 * s.convert_total / s.compress_total,
      100.0 * static_cast<double>(s.convert_slower) /
          static_cast<double>(s.pairs),
      s.worst_ratio);
}

}  // namespace

int main() {
  const auto corpus = bench::evaluation_corpus();
  std::printf(
      "Runtime — in-place conversion vs delta compression (§7)\n"
      "corpus: %zu pairs; paper: conversion = 56%% of compression time,\n"
      "slower on 0.1%% of inputs, never more than 2x\n",
      corpus.size());
  bench::rule('=');
  std::printf("%-34s %10s %10s %8s %10s %9s\n", "configuration", "compress",
              "convert", "ratio", "conv>comp", "worst");
  bench::rule();

  report("one-pass + local-min (paper setup)",
         run(corpus, DifferKind::kOnePass, BreakPolicy::kLocalMin));
  report("one-pass + constant",
         run(corpus, DifferKind::kOnePass, BreakPolicy::kConstantTime));
  report("greedy   + local-min",
         run(corpus, DifferKind::kGreedy, BreakPolicy::kLocalMin));
  report("greedy   + constant",
         run(corpus, DifferKind::kGreedy, BreakPolicy::kConstantTime));

  bench::rule();
  // The other side of §2's trade: the exact (suffix-array) greedy pays
  // for its optimal encodings with construction time the linear
  // algorithms avoid. Sampled — that cost is the point.
  {
    double t_exact = 0, t_onepass = 0;
    std::size_t sampled = 0;
    for (std::size_t i = 0; i < corpus.size(); i += 13) {
      const VersionPair& pair = corpus[i];
      t_exact += bench::time_seconds([&] {
        (void)diff_bytes(DifferKind::kSuffixGreedy, pair.reference,
                         pair.version);
      });
      t_onepass += bench::time_seconds([&] {
        (void)diff_bytes(DifferKind::kOnePass, pair.reference, pair.version);
      });
      ++sampled;
    }
    std::printf(
        "differencer speed, %zu-pair sample (§2's time/compression trade):\n"
        "  suffix-greedy (exact)  %8.3f s\n"
        "  one-pass (linear)      %8.3f s   (%.1fx faster)\n",
        sampled, t_exact, t_onepass, t_exact / t_onepass);
  }

  bench::rule();
  // Parallel pipeline scaling: one large pair (big enough to clear the
  // default 4 MiB segmentation cutoff), built through ipd::Pipeline at
  // increasing parallelism. The contract under test is twofold: the
  // deltas are byte-identical at every width, and parallelism=4 beats
  // serial by >= 2x wall clock on this input class (ISSUE 5 acceptance).
  bool scaling_ok = true;
  {
    Rng rng(0x8A11E7);
    const std::size_t size = 12 << 20;
    const Bytes ref = generate_file(rng, size, FileProfile::kBinary);
    MutationModel model;
    model.length_scale = 256;
    const Bytes ver = mutate(ref, rng, 2048, model);

    std::printf("parallel pipeline scaling, %zu MiB binary pair:\n",
                size >> 20);
    std::printf("  %-12s %12s %10s %10s %10s %10s %10s\n", "parallelism",
                "build", "speedup", "segments", "diff", "convert", "encode");
    Bytes baseline;
    double serial_seconds = 0;
    double p4_seconds = 0;
    for (const std::size_t parallelism : {1ul, 2ul, 4ul}) {
      PipelineOptions options;
      options.parallelism = parallelism;
      const Pipeline pipeline(options);
      BuildResult result;
      // Warm once (page cache, lazy pool), then time the better of two
      // runs to damp scheduler noise.
      (void)pipeline.build_inplace(ref, ver);
      double seconds = 1e30;
      for (int run = 0; run < 2; ++run) {
        seconds = std::min(seconds, bench::time_seconds([&] {
                            result = pipeline.build_inplace(ref, ver);
                          }));
      }
      if (parallelism == 1) {
        baseline = result.delta;
        serial_seconds = seconds;
      } else if (result.delta != baseline) {
        std::printf("  DETERMINISM VIOLATION at parallelism=%zu\n",
                    parallelism);
        scaling_ok = false;
      }
      if (parallelism == 4) p4_seconds = seconds;
      std::printf("  %-12zu %10.3f s %9.2fx %10zu %8.0f ms %8.0f ms %8.0f ms\n",
                  parallelism, seconds, serial_seconds / seconds,
                  result.timing.diff_segments,
                  static_cast<double>(result.timing.diff_ns) / 1e6,
                  static_cast<double>(result.timing.convert_ns) / 1e6,
                  static_cast<double>(result.timing.encode_ns) / 1e6);
    }
    const double speedup = serial_seconds / p4_seconds;
    // The >= 2x gate only means something where 4 threads can actually
    // run: on hosts with fewer than 4 cores the byte-identity assertion
    // above still holds (that is the contract), but wall clock cannot.
    if (effective_parallelism(0) < 4) {
      std::printf(
          "  parallelism=4 speedup %.2fx — gate skipped, host has %zu "
          "core(s)\n",
          speedup, effective_parallelism(0));
    } else if (speedup < 2.0) {
      std::printf("  FAIL: parallelism=4 speedup %.2fx < 2x\n", speedup);
      scaling_ok = false;
    } else {
      std::printf("  parallelism=4 speedup %.2fx (>= 2x required)\n", speedup);
    }
  }

  bench::rule();
  std::printf(
      "expected shape: conversion takes a fraction of compression time\n"
      "(the ratio column), is almost never slower per input, and the two\n"
      "cycle policies are indistinguishable on run-time (§7).\n");
  return scaling_ok ? 0 : 1;
}
