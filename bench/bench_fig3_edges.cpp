// E5 — Figure 3 and Lemma 1: the size of the CRWI digraph.
//
// The Figure-3 file pair realises Θ(|C|²) edges, showing the quadratic
// vertex bound is tight; Lemma 1 shows |E| <= L_V always. We sweep the
// construction, verify both bounds, and time digraph construction to show
// it scales with |C| log |C| + |E| (§4.3).
#include <algorithm>
#include <cstdio>

#include "adversary/constructions.hpp"
#include "bench_util.hpp"
#include "inplace/crwi_graph.hpp"
#include "ipdelta.hpp"

namespace {

using namespace ipd;

CrwiGraph build_graph(const Script& script, length_t version_length) {
  auto copies = script.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  return CrwiGraph::build(copies, version_length);
}

}  // namespace

int main() {
  std::printf(
      "Figure 3 / Lemma 1 — CRWI digraph size bounds\n"
      "quadratic construction: sqrt(L) unit copies + sqrt(L)-1 block "
      "copies of block b1\n");
  bench::rule('=');
  std::printf("%10s %8s %12s %12s %10s %9s %12s\n", "L = |V|", "|C|", "|E|",
              "(√L-1)·√L", "|E|/|C|²", "E<=L_V", "build time");
  bench::rule();

  for (length_t block = 4; block <= 1024; block *= 2) {
    const Fig3Instance inst = make_fig3_quadratic(block);
    const length_t version_length = block * block;

    CrwiGraph graph;
    const double seconds = bench::time_seconds(
        [&] { graph = build_graph(inst.script, version_length); });

    const double c = static_cast<double>(graph.vertex_count());
    std::printf("%10llu %8zu %12zu %12zu %10.3f %9s %9.3f ms\n",
                static_cast<unsigned long long>(version_length),
                graph.vertex_count(), graph.edge_count(),
                inst.expected_edges, static_cast<double>(graph.edge_count()) /
                                         (c * c),
                graph.edge_count() <= version_length ? "yes" : "NO",
                seconds * 1e3);
  }

  bench::rule();
  std::printf(
      "corpus sanity: Lemma 1 on real diff output (one-pass differencer)\n");
  std::printf("%-26s %8s %10s %12s %9s\n", "pair", "|C|", "|E|", "L_V",
              "E<=L_V");
  const auto corpus = bench::evaluation_corpus();
  for (std::size_t i = 0; i < corpus.size(); i += 16) {
    const VersionPair& pair = corpus[i];
    const Script script =
        diff_bytes(DifferKind::kOnePass, pair.reference, pair.version);
    const CrwiGraph graph = build_graph(script, pair.version.size());
    std::printf("%-26s %8zu %10zu %12zu %9s\n", pair.name.c_str(),
                graph.vertex_count(), graph.edge_count(),
                pair.version.size(),
                graph.edge_count() <= pair.version.size() ? "yes" : "NO");
  }

  bench::rule();
  std::printf(
      "expected shape: on the Fig-3 family |E| equals (√L-1)·√L exactly\n"
      "(quadratic in |C|, tight against Lemma 1's L_V ceiling); on real\n"
      "diffs |E| sits far below L_V; build time grows near-linearly in L.\n");
  return 0;
}
