// bench_store — cost model of the durable artifact store (src/store/).
//
// Three sections:
//
//   1. publish throughput: releases/s and the storage ratio (segment
//      bytes appended vs logical history bytes) with durable fsyncs on
//      and off — the gap is the price of the sync-before-manifest
//      durability invariant;
//   2. cold start: time to reopen a populated store (manifest replay +
//      orphan-tail scan), and with verify_on_open=true the full
//      deep-verification pass `store check` runs;
//   3. reconstruct latency vs chain policy: body() percentiles at the
//      chain tip for several max_chain_length settings with the disk
//      cache disabled, showing the chain-length/baseline-spacing knob
//      the ChainPolicy trades storage against.
//
// Prints a human table, then one `JSON {...}` line for the tracked
// trajectory: redirect with
//   bench_store | grep '^JSON ' | cut -c6- > BENCH_STORE.json
// Runs standalone with no arguments (CI smoke);
// IPDELTA_BENCH_STORE_RELEASES scales the history length.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.hpp"
#include "store/artifact_store.hpp"

namespace {

using namespace ipd;

std::vector<Bytes> make_history(std::size_t releases) {
  CorpusOptions options;
  options.seed = 0x57025;  // "STORE"
  options.packages = 1;
  options.releases_per_package = static_cast<int>(releases);
  options.min_file_size = 48 << 10;
  options.max_file_size = 48 << 10;
  options.edits_per_64k = 60;
  options.mutation_model.length_scale = 64;
  const std::vector<VersionPair> pairs = standard_corpus(options);
  std::vector<Bytes> history;
  history.push_back(pairs.front().reference);
  for (const VersionPair& pair : pairs) history.push_back(pair.version);
  return history;
}

std::uint64_t logical_bytes(const std::vector<Bytes>& history) {
  std::uint64_t total = 0;
  for (const Bytes& body : history) total += body.size();
  return total;
}

struct PublishRun {
  double seconds = 0;
  std::uint64_t segment_bytes = 0;
};

PublishRun publish_all(const std::filesystem::path& dir,
                       const std::vector<Bytes>& history, bool sync) {
  std::filesystem::remove_all(dir);
  ArtifactStore::init(dir);
  StoreOptions options;
  options.sync_writes = sync;
  ArtifactStore store(dir, options);
  PublishRun run;
  run.seconds = ipd::bench::time_seconds([&] {
    for (const Bytes& body : history) store.publish(body);
  });
  run.segment_bytes = store.segment_bytes();
  return run;
}

}  // namespace

int main() {
  std::size_t releases = 24;
  if (const char* env = std::getenv("IPDELTA_BENCH_STORE_RELEASES")) {
    releases = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  const std::vector<Bytes> history = make_history(releases);
  const std::uint64_t logical = logical_bytes(history);
  const auto root = std::filesystem::temp_directory_path() /
                    ("ipd_bench_store_" + std::to_string(::getpid()));
  std::string json = "{\"bench\":\"store\",\"releases\":" +
                     std::to_string(history.size()) +
                     ",\"logical_bytes\":" + std::to_string(logical);

  // ---- 1. publish throughput --------------------------------------
  ipd::bench::rule('=');
  std::printf("publish throughput  (%zu releases, %.1f MiB logical)\n",
              history.size(), static_cast<double>(logical) / (1 << 20));
  ipd::bench::rule();
  for (const bool sync : {true, false}) {
    const PublishRun run = publish_all(root / "publish", history, sync);
    const double per_sec =
        static_cast<double>(history.size()) / run.seconds;
    const double ratio = static_cast<double>(run.segment_bytes) /
                         static_cast<double>(logical);
    std::printf("  sync=%-5s  %6.1f publishes/s   segment %.2f MiB"
                "   storage ratio %.3f\n",
                sync ? "true" : "false", per_sec,
                static_cast<double>(run.segment_bytes) / (1 << 20), ratio);
    json += std::string(",\"publish_per_sec_sync_") +
            (sync ? "on" : "off") + "\":" + std::to_string(per_sec);
    if (sync) {
      json += ",\"storage_ratio\":" + std::to_string(ratio);
    }
  }

  // ---- 2. cold start ----------------------------------------------
  // The sync=true store from section 1 is still on disk; reopen it.
  ipd::bench::rule('=');
  std::printf("cold start  (manifest replay over the published store)\n");
  ipd::bench::rule();
  publish_all(root / "publish", history, true);
  for (const bool verify : {false, true}) {
    obs::Histogram open_ns;
    for (int rep = 0; rep < 5; ++rep) {
      StoreOptions options;
      options.verify_on_open = verify;
      ipd::bench::time_into(open_ns,
                            [&] { ArtifactStore store(root / "publish",
                                                      options); });
    }
    const double ms = open_ns.snapshot().quantile(0.5) / 1e6;
    std::printf("  verify_on_open=%-5s  median %8.3f ms\n",
                verify ? "true" : "false", ms);
    json += std::string(",\"open_ms_verify_") + (verify ? "on" : "off") +
            "\":" + std::to_string(ms);
  }

  // ---- 3. reconstruct latency vs chain length ---------------------
  ipd::bench::rule('=');
  std::printf("tip reconstruct latency vs max_chain_length"
              "  (disk cache off)\n");
  ipd::bench::rule();
  json += ",\"reconstruct\":[";
  bool first = true;
  for (const std::size_t chain_len : {2u, 4u, 8u, 16u}) {
    const auto dir = root / ("chain" + std::to_string(chain_len));
    std::filesystem::remove_all(dir);
    ArtifactStore::init(dir);
    StoreOptions options;
    options.chain.max_chain_length = chain_len;
    options.cache_budget = 0;  // every body() walks the chain
    ArtifactStore store(dir, options);
    for (const Bytes& body : history) store.publish(body);
    const ReleaseId tip = store.latest();
    const ChainStats stats = store.chain_stats(tip);

    obs::Histogram reconstruct_ns;
    for (int rep = 0; rep < 20; ++rep) {
      ipd::bench::time_into(reconstruct_ns, [&] { (void)store.body(tip); });
    }
    const auto snapshot = reconstruct_ns.snapshot();
    std::printf("  max_chain_length %2zu  tip chain %2zu hops   %s\n",
                chain_len, stats.chain_length,
                snapshot.latency_line().c_str());
    json += std::string(first ? "" : ",") +
            "{\"max_chain_length\":" + std::to_string(chain_len) +
            ",\"tip_hops\":" + std::to_string(stats.chain_length) +
            ",\"p50_us\":" + std::to_string(snapshot.quantile(0.5) / 1e3) +
            ",\"p99_us\":" + std::to_string(snapshot.quantile(0.99) / 1e3) +
            "}";
    first = false;
  }
  json += "]}";

  ipd::bench::rule('=');
  std::printf("JSON %s\n", json.c_str());
  std::filesystem::remove_all(root);
  return 0;
}
