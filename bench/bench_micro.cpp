// E7 — google-benchmark micro suite for the §4.3 asymptotics: digraph
// construction, topological sort + cycle breaking, full conversion, the
// differencers, the appliers, and the codec.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "adversary/constructions.hpp"
#include "apply/stream_applier.hpp"
#include "core/lzss.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "inplace/converter.hpp"
#include "inplace/scc.hpp"
#include "ipdelta.hpp"

namespace {

using namespace ipd;

std::vector<CopyCommand> sorted_copies(const Script& s) {
  auto copies = s.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  return copies;
}

// A reusable versioned pair sized by the benchmark argument.
struct Pair {
  Bytes ref;
  Bytes ver;
};

Pair make_pair_bytes(std::size_t size) {
  Rng rng(size * 2654435761u + 1);
  Pair p;
  p.ref = generate_file(rng, size, FileProfile::kBinary);
  p.ver = mutate(p.ref, rng, std::max<std::size_t>(2, size >> 14));
  return p;
}

void BM_DiffOnePass(benchmark::State& state) {
  const Pair p = make_pair_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diff_bytes(DifferKind::kOnePass, p.ref, p.ver));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * p.ver.size()));
}
BENCHMARK(BM_DiffOnePass)->Range(1 << 12, 1 << 20);

void BM_DiffGreedy(benchmark::State& state) {
  const Pair p = make_pair_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff_bytes(DifferKind::kGreedy, p.ref, p.ver));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * p.ver.size()));
}
BENCHMARK(BM_DiffGreedy)->Range(1 << 12, 1 << 18);

void BM_CrwiGraphBuild(benchmark::State& state) {
  // Block permutations give |C| = n vertices and |E| = n edges.
  Rng rng(7);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const AdversaryInstance inst =
      make_block_permutation(64, random_permutation(rng, n));
  const auto copies = sorted_copies(inst.script);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CrwiGraph::build(copies, n * 64));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CrwiGraphBuild)->Range(1 << 6, 1 << 14);

void BM_TopoSort(benchmark::State& state) {
  Rng rng(8);
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const AdversaryInstance inst =
      make_block_permutation(64, random_permutation(rng, n));
  const auto copies = sorted_copies(inst.script);
  const CrwiGraph g = CrwiGraph::build(copies, n * 64);
  const CodewordCostModel model(kPaperExplicit, n * 64);
  const auto costs = conversion_costs(copies, model);
  const BreakPolicy policy = static_cast<BreakPolicy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo_sort_breaking_cycles(g, policy, costs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_TopoSort)
    ->ArgsProduct({{0 /*constant*/, 1 /*local-min*/}, {1 << 8, 1 << 12}});

void BM_ConvertCorpusPair(benchmark::State& state) {
  const Pair p = make_pair_bytes(static_cast<std::size_t>(state.range(0)));
  const Script script = diff_bytes(DifferKind::kOnePass, p.ref, p.ver);
  for (auto _ : state) {
    benchmark::DoNotOptimize(convert_to_inplace(script, p.ref, {}));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * p.ver.size()));
}
BENCHMARK(BM_ConvertCorpusPair)->Range(1 << 12, 1 << 20);

void BM_ApplyScratch(benchmark::State& state) {
  const Pair p = make_pair_bytes(static_cast<std::size_t>(state.range(0)));
  const Script script = diff_bytes(DifferKind::kOnePass, p.ref, p.ver);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply_script(script, p.ref));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * p.ver.size()));
}
BENCHMARK(BM_ApplyScratch)->Range(1 << 12, 1 << 20);

void BM_ApplyInplace(benchmark::State& state) {
  const Pair p = make_pair_bytes(static_cast<std::size_t>(state.range(0)));
  const Script script = diff_bytes(DifferKind::kOnePass, p.ref, p.ver);
  const ConvertResult converted = convert_to_inplace(script, p.ref, {});
  Bytes buffer(std::max(p.ref.size(), p.ver.size()));
  for (auto _ : state) {
    std::copy(p.ref.begin(), p.ref.end(), buffer.begin());
    apply_inplace(converted.script, buffer, p.ref.size(), p.ver.size());
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * p.ver.size()));
}
BENCHMARK(BM_ApplyInplace)->Range(1 << 12, 1 << 20);

void BM_SerializeDelta(benchmark::State& state) {
  const Pair p = make_pair_bytes(1 << 16);
  const Script script = diff_bytes(DifferKind::kOnePass, p.ref, p.ver);
  DeltaFile file;
  file.format = state.range(0) == 0 ? kPaperExplicit : kVarintExplicit;
  file.reference_length = p.ref.size();
  file.version_length = p.ver.size();
  file.script = script;
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_delta(file));
  }
}
BENCHMARK(BM_SerializeDelta)->Arg(0)->Arg(1);

void BM_DeserializeDelta(benchmark::State& state) {
  const Pair p = make_pair_bytes(1 << 16);
  const Bytes delta = Pipeline().build_inplace(p.ref, p.ver).delta;
  for (auto _ : state) {
    benchmark::DoNotOptimize(deserialize_delta(delta));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * delta.size()));
}
BENCHMARK(BM_DeserializeDelta);

void BM_LzssEncode(benchmark::State& state) {
  Rng rng(11);
  const Bytes input = generate_file(rng, static_cast<std::size_t>(state.range(0)),
                                    FileProfile::kText);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lzss_encode(input));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_LzssEncode)->Range(1 << 12, 1 << 20);

void BM_LzssDecode(benchmark::State& state) {
  Rng rng(12);
  const Bytes input = generate_file(rng, static_cast<std::size_t>(state.range(0)),
                                    FileProfile::kText);
  const Bytes encoded = lzss_encode(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lzss_decode(encoded, input.size()));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_LzssDecode)->Range(1 << 12, 1 << 20);

void BM_SccDecomposition(benchmark::State& state) {
  Rng rng(13);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const AdversaryInstance inst =
      make_block_permutation(64, random_permutation(rng, n));
  const auto copies = sorted_copies(inst.script);
  const CrwiGraph g = CrwiGraph::build(copies, n * 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strongly_connected_components(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SccDecomposition)->Range(1 << 8, 1 << 14);

void BM_StreamingApply(benchmark::State& state) {
  const Pair p = make_pair_bytes(1 << 17);
  const Bytes delta = Pipeline().build_inplace(p.ref, p.ver).delta;
  Bytes buffer(std::max(p.ref.size(), p.ver.size()));
  for (auto _ : state) {
    std::copy(p.ref.begin(), p.ref.end(), buffer.begin());
    benchmark::DoNotOptimize(
        apply_delta_inplace_streaming(delta, buffer, 1400));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * p.ver.size()));
}
BENCHMARK(BM_StreamingApply);

void BM_Fig2LocalMin(benchmark::State& state) {
  const Fig2Instance inst =
      make_fig2_tree(static_cast<std::size_t>(state.range(0)));
  const auto copies = sorted_copies(inst.script);
  const CrwiGraph g = CrwiGraph::build(copies, inst.version.size());
  const CodewordCostModel model(kPaperExplicit, inst.version.size());
  const auto costs = conversion_costs(copies, model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo_sort_breaking_cycles(g, BreakPolicy::kLocalMin, costs));
  }
}
BENCHMARK(BM_Fig2LocalMin)->DenseRange(6, 14, 4);

}  // namespace

BENCHMARK_MAIN();
