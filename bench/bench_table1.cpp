// E1 — reproduces Table 1 of the paper: compression of the delta
// algorithm without and with write offsets, and of the two in-place
// conversion policies, with lost compression split into encoding loss and
// cycle loss.
//
// Paper values (per the §7 prose): 15.3% / 17.2% / 21.2% (constant) /
// 17.7% (local-min); encoding loss 1.9%; cycle loss 4.0% (constant) vs
// 0.5% (local-min).
//
// We measure the same four columns over the synthetic corpus, for both
// differencing algorithms and (as the ablation the paper suggests in §7)
// for the redesigned varint codewords.
#include <cstdio>

#include "bench_util.hpp"
#include "delta/stats.hpp"
#include "inplace/converter.hpp"
#include "ipdelta.hpp"

namespace {

using namespace ipd;
using bench::evaluation_corpus;
using bench::rule;

struct Row {
  CompressionAggregate no_offsets;
  CompressionAggregate offsets;
  CompressionAggregate inplace_constant;
  CompressionAggregate inplace_localmin;
};

Row measure(const std::vector<VersionPair>& corpus, DifferKind differ,
            Codeword codeword) {
  Row row;
  const DeltaFormat sequential{codeword, WriteOffsets::kImplicit};
  const DeltaFormat explicit_fmt{codeword, WriteOffsets::kExplicit};

  for (const VersionPair& pair : corpus) {
    const Script script = diff_bytes(differ, pair.reference, pair.version);
    const auto sample = [&](std::uint64_t delta_size) {
      return CompressionSample{pair.reference.size(), pair.version.size(),
                               delta_size};
    };

    DeltaFile file;
    file.reference_length = pair.reference.size();
    file.version_length = pair.version.size();
    file.script = script;

    file.format = sequential;
    row.no_offsets.add(sample(serialize_delta(file).size()));
    file.format = explicit_fmt;
    row.offsets.add(sample(serialize_delta(file).size()));

    for (const BreakPolicy policy :
         {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin}) {
      ConvertOptions copts;
      copts.policy = policy;
      copts.format = explicit_fmt;
      const ConvertResult converted =
          convert_to_inplace(script, pair.reference, copts);
      DeltaFile out = file;
      out.in_place = true;
      out.script = converted.script;
      const std::uint64_t size = serialize_delta(out).size();
      (policy == BreakPolicy::kConstantTime ? row.inplace_constant
                                            : row.inplace_localmin)
          .add(sample(size));
    }
  }
  return row;
}

void print_row(const char* label, const Row& row) {
  const double base = row.no_offsets.weighted_percent();
  const double off = row.offsets.weighted_percent();
  const double cons = row.inplace_constant.weighted_percent();
  const double local = row.inplace_localmin.weighted_percent();

  std::printf("%s\n", label);
  std::printf("  %-18s %12s %12s %12s %12s\n", "", "no-offsets", "offsets",
              "inpl-const", "inpl-locmin");
  std::printf("  %-18s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n", "Compression",
              base, off, cons, local);
  std::printf("  %-18s %12s %11.1f%% %11.1f%% %11.1f%%\n", "Encoding Loss",
              "", off - base, off - base, off - base);
  std::printf("  %-18s %12s %12s %11.1f%% %11.1f%%\n", "Loss from Cycles",
              "", "", cons - off, local - off);
  std::printf("  %-18s %12s %11.1f%% %11.1f%% %11.1f%%\n", "Total Loss", "",
              off - base, cons - base, local - base);
}

}  // namespace

int main() {
  const auto corpus = evaluation_corpus();
  std::uint64_t total = 0;
  for (const auto& p : corpus) total += p.version.size();
  std::printf(
      "Table 1 — compression of delta and in-place conversion algorithms\n"
      "corpus: %zu version pairs, %.1f MiB of new versions "
      "(synthetic software releases; see DESIGN.md §5)\n",
      corpus.size(), static_cast<double>(total) / (1 << 20));
  rule('=');

  std::printf(
      "paper reports (GNU/BSD corpus): no-offsets 15.3%%, offsets 17.2%%,\n"
      "  in-place constant 21.2%% (cycle loss 4.0%%), in-place local-min\n"
      "  17.7%% (cycle loss 0.5%%); encoding loss 1.9%% in both\n"
      "  (per the §7 prose; the typeset table swaps the two in-place\n"
      "  columns — see EXPERIMENTS.md)\n");
  rule();

  print_row("one-pass differencer, paper byte codewords (paper setup):",
            measure(corpus, DifferKind::kOnePass, Codeword::kPaperByte));
  rule();
  print_row("greedy differencer, paper byte codewords:",
            measure(corpus, DifferKind::kGreedy, Codeword::kPaperByte));
  rule();
  print_row(
      "one-pass differencer, varint codewords (the paper's suggested "
      "codeword redesign):",
      measure(corpus, DifferKind::kOnePass, Codeword::kVarint));
  rule();
  std::printf(
      "expected shape: offsets > no-offsets by a small encoding loss;\n"
      "local-min recovers most of the cycle loss relative to constant;\n"
      "varint codewords shrink the encoding loss, as §7 predicts.\n");
  return 0;
}
