// Ablations for the design choices DESIGN.md §6 calls out:
//   A. matching granularity — block-aligned baseline (§2's pre-history)
//      vs the byte-granularity differencers;
//   B. cycle-breaking policy — constant / local-min / SCC-global-min;
//   C. add coalescing in the converter — on vs off;
//   D. pre-conversion script optimization — on vs off;
//   E. streaming vs batch application — parser RAM vs whole-delta RAM;
//   F. journaled (crash-tolerant) updates — flash-write overhead.
#include <cstdio>

#include "apply/stream_applier.hpp"
#include "bench_util.hpp"
#include "delta/block_differ.hpp"
#include "delta/optimize.hpp"
#include "delta/suffix_differ.hpp"
#include "delta/stats.hpp"
#include "device/resumable_updater.hpp"
#include "inplace/converter.hpp"
#include "ipdelta.hpp"

namespace {

using namespace ipd;
using bench::evaluation_corpus;
using bench::rule;

std::uint64_t encoded_size(const Script& script, length_t ref_len,
                           length_t ver_len, DeltaFormat format) {
  DeltaFile file;
  file.format = format;
  file.reference_length = ref_len;
  file.version_length = ver_len;
  file.script = script;
  return serialize_delta(file).size();
}

void ablation_granularity(const std::vector<VersionPair>& corpus) {
  std::printf("A. matching granularity (delta %% of version; lower wins)\n");
  struct Entry {
    const char* name;
    CompressionAggregate agg;
  };
  Entry entries[] = {{"block-aligned 4096", {}},
                     {"block-aligned 512", {}},
                     {"one-pass (byte)", {}},
                     {"greedy (byte)", {}}};
  for (const VersionPair& pair : corpus) {
    const Script scripts[] = {
        BlockDiffer(DifferOptions{.block_size = 4096})
            .diff(pair.reference, pair.version),
        BlockDiffer(DifferOptions{.block_size = 512})
            .diff(pair.reference, pair.version),
        diff_bytes(DifferKind::kOnePass, pair.reference, pair.version),
        diff_bytes(DifferKind::kGreedy, pair.reference, pair.version)};
    for (std::size_t i = 0; i < 4; ++i) {
      entries[i].agg.add(CompressionSample{
          pair.reference.size(), pair.version.size(),
          encoded_size(scripts[i], pair.reference.size(),
                       pair.version.size(), kPaperSequential)});
    }
  }
  for (const Entry& e : entries) {
    std::printf("  %-22s %8s\n", e.name,
                format_percent(e.agg.weighted_percent()).c_str());
  }

  // The suffix-array exact greedy ([11]/[9]-style, no hash shortcuts) is
  // the compression ceiling; sampled because its construction cost is
  // exactly the quadratic-era expense the linear-time algorithms avoid.
  {
    CompressionAggregate exact, onepass;
    for (std::size_t i = 0; i < corpus.size(); i += 9) {
      const VersionPair& pair = corpus[i];
      const Script s_exact =
          SuffixDiffer(DifferOptions{}).diff(pair.reference, pair.version);
      const Script s_onepass =
          diff_bytes(DifferKind::kOnePass, pair.reference, pair.version);
      exact.add(CompressionSample{
          pair.reference.size(), pair.version.size(),
          encoded_size(s_exact, pair.reference.size(), pair.version.size(),
                       kPaperSequential)});
      onepass.add(CompressionSample{
          pair.reference.size(), pair.version.size(),
          encoded_size(s_onepass, pair.reference.size(),
                       pair.version.size(), kPaperSequential)});
    }
    std::printf("  -- exact-greedy ceiling (12-pair sample):\n");
    std::printf("  %-22s %8s\n", "suffix-greedy (exact)",
                format_percent(exact.weighted_percent()).c_str());
    std::printf("  %-22s %8s\n", "one-pass (same sample)",
                format_percent(onepass.weighted_percent()).c_str());
  }

  // Record-aligned data ([13]-style databases) is the one workload where
  // alignment is harmless — length-preserving record updates keep every
  // untouched block in place.
  std::printf("  -- record-aligned corpus (alignment-friendly):\n");
  Entry rec_entries[] = {{"block-aligned 128", {}}, {"one-pass (byte)", {}}};
  Rng rng(0x2EC);
  for (int i = 0; i < 8; ++i) {
    const Bytes ref =
        generate_file(rng, 512 * kRecordSize, FileProfile::kRecords);
    const Bytes ver = mutate(ref, rng, 40, record_aligned_model());
    const Script scripts[] = {
        BlockDiffer(DifferOptions{.block_size = kRecordSize}).diff(ref, ver),
        diff_bytes(DifferKind::kOnePass, ref, ver)};
    for (std::size_t s = 0; s < 2; ++s) {
      rec_entries[s].agg.add(CompressionSample{
          ref.size(), ver.size(),
          encoded_size(scripts[s], ref.size(), ver.size(),
                       kPaperSequential)});
    }
  }
  for (const Entry& e : rec_entries) {
    std::printf("  %-22s %8s\n", e.name,
                format_percent(e.agg.weighted_percent()).c_str());
  }
  rule();
}

void ablation_policies(const std::vector<VersionPair>& corpus) {
  std::printf(
      "B. cycle-breaking policy (conversion cost over the corpus)\n");
  std::printf("  %-18s %12s %10s %12s\n", "policy", "cost (B)", "copies",
              "time");
  for (const BreakPolicy policy :
       {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin,
        BreakPolicy::kSccGlobalMin}) {
    std::uint64_t cost = 0;
    std::size_t converted = 0;
    double seconds = 0;
    for (const VersionPair& pair : corpus) {
      const Script script =
          diff_bytes(DifferKind::kOnePass, pair.reference, pair.version);
      ConvertOptions copts;
      copts.policy = policy;
      ConvertResult r;
      seconds += bench::time_seconds(
          [&] { r = convert_to_inplace(script, pair.reference, copts); });
      cost += r.report.conversion_cost;
      converted += r.report.copies_converted;
    }
    std::printf("  %-18s %12llu %10zu %9.3f s\n", policy_name(policy),
                static_cast<unsigned long long>(cost), converted, seconds);
  }
  rule();
}

void ablation_coalescing(const std::vector<VersionPair>& corpus) {
  std::printf("C. converter add coalescing (total in-place delta bytes)\n");
  for (const bool coalesce : {true, false}) {
    std::uint64_t total = 0;
    for (const VersionPair& pair : corpus) {
      PipelineOptions options;
      options.convert.coalesce_adds = coalesce;
      total += Pipeline(options).build_inplace(pair.reference, pair.version).delta
                   .size();
    }
    std::printf("  coalesce_adds=%-5s %12llu B\n", coalesce ? "on" : "off",
                static_cast<unsigned long long>(total));
  }
  rule();
}

void ablation_optimizer(const std::vector<VersionPair>& corpus) {
  // The byte-granularity differencers already emit canonical streams
  // (ScriptBuilder merges as it goes), so the optimizer's work shows on
  // producers with fragmented output — here the block-aligned differ,
  // whose per-block copies/adds merge into long runs.
  std::printf(
      "D. script optimizer on fragmented (block-differ) output "
      "(total explicit delta bytes)\n");
  std::uint64_t plain = 0, optimized = 0;
  std::uint64_t onepass_ref = 0;
  std::size_t merges = 0, demotions = 0;
  for (const VersionPair& pair : corpus) {
    const Script script = BlockDiffer(DifferOptions{.block_size = 512})
                              .diff(pair.reference, pair.version);
    plain += encoded_size(script, pair.reference.size(),
                          pair.version.size(), kPaperExplicit);
    OptimizeReport report;
    const Script opt = optimize_script(script, pair.reference, {}, &report);
    optimized += encoded_size(opt, pair.reference.size(),
                              pair.version.size(), kPaperExplicit);
    merges += report.adds_merged + report.copies_merged;
    demotions += report.copies_demoted;

    const Script canonical =
        diff_bytes(DifferKind::kOnePass, pair.reference, pair.version);
    OptimizeReport canon_report;
    optimize_script(canonical, pair.reference, {}, &canon_report);
    onepass_ref +=
        canon_report.adds_merged + canon_report.copies_merged +
        canon_report.copies_demoted;
  }
  std::printf(
      "  raw block-differ output %12llu B\n"
      "  optimized               %12llu B  (%zu merges, %zu demotions)\n"
      "  (one-pass differ output is already canonical: %llu rewrites "
      "found)\n",
      static_cast<unsigned long long>(plain),
      static_cast<unsigned long long>(optimized), merges, demotions,
      static_cast<unsigned long long>(onepass_ref));
  rule();
}

void ablation_streaming(const std::vector<VersionPair>& corpus) {
  std::printf(
      "E. streaming vs batch application (device RAM for the delta)\n");
  std::uint64_t delta_total = 0, peak_total = 0;
  std::size_t pairs = 0;
  for (const VersionPair& pair : corpus) {
    if (++pairs > 16) break;  // a sample is enough
    const Bytes delta = Pipeline().build_inplace(pair.reference, pair.version).delta;
    Bytes buffer = pair.reference;
    buffer.resize(std::max(pair.reference.size(), pair.version.size()));
    StreamingInplaceApplier applier(buffer);
    for (std::size_t pos = 0; pos < delta.size(); pos += 1024) {
      applier.feed(ByteView(delta).subspan(
          pos, std::min<std::size_t>(1024, delta.size() - pos)));
    }
    delta_total += delta.size();
    peak_total += applier.peak_buffered();
  }
  std::printf(
      "  batch RAM (whole delta)   %10llu B\n"
      "  streaming RAM (parser)    %10llu B  (%.1fx less)\n",
      static_cast<unsigned long long>(delta_total),
      static_cast<unsigned long long>(peak_total),
      static_cast<double>(delta_total) / static_cast<double>(peak_total));
  rule();
}

void ablation_compression(const std::vector<VersionPair>& corpus) {
  std::printf(
      "G. secondary (LZSS) payload compression (total in-place delta "
      "bytes)\n");
  std::uint64_t plain = 0, compressed = 0;
  double encode_seconds = 0;
  for (const VersionPair& pair : corpus) {
    PipelineOptions options;
    plain += Pipeline(options).build_inplace(pair.reference, pair.version).delta
                 .size();
    options.compress_payload = true;
    encode_seconds += bench::time_seconds([&] {
      compressed +=
          Pipeline(options).build_inplace(pair.reference, pair.version).delta.size();
    });
  }
  std::printf(
      "  uncompressed  %12llu B\n  lzss          %12llu B  (%.1f%% of "
      "plain; %0.2f s incl. diff+convert)\n",
      static_cast<unsigned long long>(plain),
      static_cast<unsigned long long>(compressed),
      100.0 * static_cast<double>(compressed) / static_cast<double>(plain),
      encode_seconds);
  rule();
}

void ablation_journal() {
  std::printf("F. crash-tolerant (journaled) update overhead\n");
  Rng rng(0xAB1A);
  const Bytes v1 = generate_file(rng, 96 << 10, FileProfile::kBinary);
  Bytes shifted = v1;
  std::copy(shifted.begin() + 2000, shifted.begin() + 60000,
            shifted.begin() + 2500);
  const Bytes v2 = mutate(shifted, rng, 20);
  const Bytes delta = Pipeline().build_inplace(v1, v2).delta;

  const std::size_t image_area = 128 << 10;
  const JournalRegion journal{image_area, 16 << 10};

  FlashDevice plain_dev(image_area + journal.size, 512, 1 << 20);
  plain_dev.load_image(v1);
  const UpdateResult plain = apply_update(plain_dev, delta, channel_28k());

  FlashDevice jdev(image_area + journal.size, 512, 1 << 20);
  jdev.load_image(v1);
  clear_journal(jdev, journal);
  jdev.reset_stats();
  const ResumableUpdateResult journaled =
      apply_update_resumable(jdev, delta, channel_28k(), journal);

  std::printf(
      "  plain updater:     %10llu B written, %6llu page touches\n"
      "  journaled updater: %10llu B written, %6llu page touches "
      "(%zu records)\n"
      "  write overhead: %.2fx\n",
      static_cast<unsigned long long>(plain.storage_bytes_written),
      static_cast<unsigned long long>(plain.storage_pages_written),
      static_cast<unsigned long long>(journaled.update.storage_bytes_written),
      static_cast<unsigned long long>(journaled.update.storage_pages_written),
      journaled.journal_records,
      static_cast<double>(journaled.update.storage_bytes_written) /
          static_cast<double>(plain.storage_bytes_written));
  rule();
}

}  // namespace

int main() {
  std::printf("Ablations for DESIGN.md §6 design choices\n");
  rule('=');
  const auto corpus = evaluation_corpus();
  ablation_granularity(corpus);
  ablation_policies(corpus);
  ablation_coalescing(corpus);
  ablation_optimizer(corpus);
  ablation_streaming(corpus);
  ablation_compression(corpus);
  ablation_journal();
  std::printf(
      "expected shape: byte granularity beats block alignment decisively\n"
      "(§2); local-min & scc-global-min beat constant on cost at similar\n"
      "time; coalescing and the optimizer both shrink deltas; streaming\n"
      "cuts delta-staging RAM by orders of magnitude; journaling costs a\n"
      "modest write overhead.\n");
  return 0;
}
