// E3 — cycle-breaking policy comparison (§5, §7): compression given up to
// cycles and run-time, for the constant-time and locally-minimum policies
// (and the exact optimum on instances small enough to solve), on:
//
//   * the software corpus (cycles are sparse — the common case);
//   * cycle-rich block-permutation deltas (every permutation cycle is a
//     digraph cycle);
//   * the Figure 2 tree adversary (local-min's worst case, exact shines).
#include <cstdio>
#include <vector>

#include "adversary/constructions.hpp"
#include "bench_util.hpp"
#include "inplace/converter.hpp"
#include "ipdelta.hpp"

namespace {

using namespace ipd;

struct PolicyStats {
  std::uint64_t conversion_cost = 0;
  length_t bytes_converted = 0;
  std::size_t copies_converted = 0;
  std::size_t cycles = 0;
  std::size_t cycle_walk = 0;
  double seconds = 0;
};

PolicyStats run_policy(const std::vector<const Script*>& scripts,
                       const std::vector<const Bytes*>& refs,
                       BreakPolicy policy) {
  PolicyStats stats;
  ConvertOptions copts;
  copts.policy = policy;
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    ConvertResult r;
    stats.seconds += bench::time_seconds(
        [&] { r = convert_to_inplace(*scripts[i], *refs[i], copts); });
    stats.conversion_cost += r.report.conversion_cost;
    stats.bytes_converted += r.report.bytes_converted;
    stats.copies_converted += r.report.copies_converted;
    stats.cycles += r.report.cycles_found;
    stats.cycle_walk += r.report.cycle_length_sum;
  }
  return stats;
}

void print_policy(const char* name, const PolicyStats& s) {
  std::printf("  %-16s %10llu %10llu %8zu %8zu %10zu %9.3f s\n", name,
              static_cast<unsigned long long>(s.conversion_cost),
              static_cast<unsigned long long>(s.bytes_converted),
              s.copies_converted, s.cycles, s.cycle_walk, s.seconds);
}

void header() {
  std::printf("  %-16s %10s %10s %8s %8s %10s %11s\n", "policy",
              "cost (B)", "conv (B)", "copies", "cycles", "cyclewalk",
              "time");
}

void run_workload(const char* title,
                  const std::vector<const Script*>& scripts,
                  const std::vector<const Bytes*>& refs,
                  bool include_exact) {
  std::printf("%s\n", title);
  header();
  print_policy("constant", run_policy(scripts, refs,
                                      BreakPolicy::kConstantTime));
  print_policy("local-min",
               run_policy(scripts, refs, BreakPolicy::kLocalMin));
  if (include_exact) {
    print_policy("exact",
                 run_policy(scripts, refs, BreakPolicy::kExactOptimal));
  }
  bench::rule();
}

}  // namespace

int main() {
  std::printf(
      "Cycle-breaking policies — compression cost and run-time (§5/§7)\n"
      "paper: local-min recovers the 4.0%% constant-time cycle loss down\n"
      "to 0.5%% at no run-time cost; worst-case slowdowns up to 25%% on\n"
      "cycle-heavy inputs\n");
  bench::rule('=');

  // Workload 1: the software corpus.
  {
    const auto corpus = bench::evaluation_corpus();
    std::vector<Script> scripts;
    scripts.reserve(corpus.size());
    for (const VersionPair& pair : corpus) {
      scripts.push_back(
          diff_bytes(DifferKind::kOnePass, pair.reference, pair.version));
    }
    std::vector<const Script*> sp;
    std::vector<const Bytes*> rp;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      sp.push_back(&scripts[i]);
      rp.push_back(&corpus[i].reference);
    }
    run_workload("software corpus (cycles sparse):", sp, rp,
                 /*include_exact=*/false);
  }

  // Workload 2: cycle-rich random block permutations.
  {
    Rng rng(404);
    std::vector<AdversaryInstance> instances;
    for (int i = 0; i < 24; ++i) {
      instances.push_back(
          make_block_permutation(512, random_permutation(rng, 256),
                                 rng.next()));
    }
    std::vector<const Script*> sp;
    std::vector<const Bytes*> rp;
    for (const auto& inst : instances) {
      sp.push_back(&inst.script);
      rp.push_back(&inst.reference);
    }
    run_workload("random block permutations (cycle-rich):", sp, rp,
                 /*include_exact=*/false);
  }

  // Workload 3: Figure 2 adversary (small enough for the exact solver).
  {
    const Fig2Instance fig2 = make_fig2_tree(5);  // 31 vertices, 16 leaves
    std::vector<const Script*> sp = {&fig2.script};
    std::vector<const Bytes*> rp = {&fig2.reference};
    std::printf("figure-2 tree adversary (depth 5, %zu leaves):\n",
                fig2.leaf_count);
    header();
    print_policy("constant",
                 run_policy(sp, rp, BreakPolicy::kConstantTime));
    print_policy("local-min", run_policy(sp, rp, BreakPolicy::kLocalMin));
    print_policy("exact", run_policy(sp, rp, BreakPolicy::kExactOptimal));
    bench::rule();
  }

  std::printf(
      "expected shape: on the corpus and permutations, local-min converts\n"
      "the same number of copies at lower byte cost and indistinguishable\n"
      "time; on the Figure-2 tree both heuristics pay per-leaf while the\n"
      "exact optimum deletes only the root.\n");
  return 0;
}
