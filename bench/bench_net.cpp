// bench_net — wire-path cost of the delta distribution service.
//
// bench_server measures DeltaService::serve() in-process; this bench adds
// the src/net/ stack on top: framing + CRC, TCP on localhost, the
// DeltaServer session loop, and the OTA client streaming the artifact
// into a StreamingInplaceApplier. Three sections:
//
//   1. per-hop OTA latency percentiles over TCP (warm server cache), the
//      number a fleet dashboard would alert on — same obs::Histogram as
//      bench_server so the two tables read side by side;
//   2. fleet throughput: concurrent clients running full chain upgrades,
//      upgrades/s and wire MiB/s;
//   3. fault tax: the same upgrade over a link with injected drops,
//      truncations and bit flips — wall-clock and retry overhead of the
//      resume machinery.
//
// Runs standalone with no arguments (CI smoke); IPDELTA_BENCH_NET_OPS
// scales the per-section operation counts. Exits 0 with a notice when
// the sandbox forbids localhost sockets.
//
// Prints a human table, then one `JSON {...}` line for the tracked
// trend file:
//   bench_net | grep '^JSON ' | cut -c6- > BENCH_NET.json
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/delta_server.hpp"
#include "net/faulty_transport.hpp"
#include "net/ota_client.hpp"
#include "net/tcp_transport.hpp"
#include "server/delta_service.hpp"

namespace {

using namespace ipd;

std::vector<Bytes> make_history(std::size_t releases) {
  CorpusOptions options;
  options.packages = 1;
  options.releases_per_package = static_cast<int>(releases);
  options.min_file_size = 48 << 10;
  options.max_file_size = 48 << 10;
  options.edits_per_64k = 60;
  options.mutation_model.length_scale = 64;
  const std::vector<VersionPair> pairs = standard_corpus(options);
  std::vector<Bytes> history;
  history.push_back(pairs.front().reference);
  for (const VersionPair& pair : pairs) history.push_back(pair.version);
  return history;
}

}  // namespace

int main() {
  const std::vector<Bytes> history = make_history(8);
  VersionStore store;
  for (const Bytes& release : history) store.publish(release);
  const ReleaseId latest = static_cast<ReleaseId>(store.release_count() - 1);

  std::size_t ops = 200;
  if (const char* env = std::getenv("IPDELTA_BENCH_NET_OPS")) {
    ops = std::strtoull(env, nullptr, 10);
  }

  ServiceOptions service_options;
  service_options.cache_budget = 64ull << 20;
  service_options.workers = 4;
  DeltaService service(store, service_options);
  ServerConfig net_options;
  net_options.max_connections = 64;
  DeltaServer server(service, net_options);
  try {
    server.start();
  } catch (const TransportError& e) {
    std::printf("bench_net: no localhost sockets here (%s); skipping\n",
                e.what());
    return 0;
  }
  const std::uint16_t port = server.port();
  const auto tcp_factory = [port] {
    return TcpTransport::connect("127.0.0.1", port);
  };

  std::printf("bench_net: %zu releases x %zu KiB over 127.0.0.1:%u\n",
              store.release_count(), history[0].size() >> 10, port);
  bench::rule('=');

  std::string json = "{\"bench\":\"net\",\"releases\":" +
                     std::to_string(store.release_count()) +
                     ",\"ops\":" + std::to_string(ops);

  // ---- 1. per-hop OTA latency (warm cache) ---------------------------
  {
    // Warm every single-hop artifact once, then measure.
    for (ReleaseId r = 0; r < latest; ++r) (void)service.serve(r, r + 1);

    obs::Histogram hop_latency;
    Rng rng(0x0E7A);
    for (std::size_t i = 0; i < ops; ++i) {
      const auto from = static_cast<ReleaseId>(rng.below(latest));
      Bytes image = history[from];
      OtaClient client(tcp_factory);
      bench::time_into(hop_latency, [&] {
        (void)client.update_streaming(image, from, from + 1);
      });
    }
    std::printf("single-hop OTA over TCP, %zu ops (connect + frame + "
                "stream + apply):\n  %s\n",
                ops, bench::latency_summary(hop_latency).c_str());
    const obs::HistogramSnapshot snap = hop_latency.snapshot();
    json += ",\"hop_p50_us\":" + std::to_string(snap.quantile(0.5) / 1e3) +
            ",\"hop_p99_us\":" + std::to_string(snap.quantile(0.99) / 1e3);
  }
  bench::rule();

  // ---- 2. fleet throughput -------------------------------------------
  {
    std::printf("full chain upgrade 0 -> %u, fleet throughput:\n", latest);
    std::printf("  %-8s %12s %12s   %s\n", "clients", "upgrades/s", "MiB/s",
                "upgrade latency");
    for (const std::size_t clients : {1u, 4u, 8u}) {
      service.metrics().reset();
      const std::size_t upgrades = std::max<std::size_t>(ops / 10, 2);
      obs::Histogram upgrade_latency;  // thread-safe: fleet records directly
      std::vector<std::thread> fleet;
      std::atomic<std::size_t> failures{0};
      const double seconds = bench::time_seconds([&] {
        for (std::size_t c = 0; c < clients; ++c) {
          const std::size_t quota =
              upgrades / clients + (c == 0 ? upgrades % clients : 0);
          fleet.emplace_back([&, c, quota] {
            for (std::size_t i = 0; i < quota; ++i) {
              Bytes image = history[0];
              OtaClient client(tcp_factory);
              try {
                bench::time_into(upgrade_latency, [&] {
                  (void)client.update_streaming(image, 0, latest);
                });
              } catch (const std::exception&) {
                failures.fetch_add(1);
              }
            }
          });
        }
        for (std::thread& t : fleet) t.join();
      });
      const double wire_mib =
          static_cast<double>(service.metrics().net_bytes_sent.load()) /
          seconds / 1048576.0;
      std::printf("  %-8zu %12.1f %12.1f   %s%s\n", clients,
                  static_cast<double>(upgrades) / seconds, wire_mib,
                  bench::latency_summary(upgrade_latency).c_str(),
                  failures.load() ? "  [FAILURES]" : "");
      if (clients == 8) {
        json += ",\"fleet_upgrades_per_sec_8c\":" +
                std::to_string(static_cast<double>(upgrades) / seconds) +
                ",\"fleet_wire_mib_per_sec_8c\":" + std::to_string(wire_mib) +
                ",\"fleet_failures\":" + std::to_string(failures.load());
      }
    }
  }
  bench::rule();

  // ---- 3. fault tax ---------------------------------------------------
  {
    std::printf("fault tax, single client, chain upgrade 0 -> %u:\n", latest);
    std::printf("  %-16s %10s %10s %10s\n", "link", "seconds", "retries",
                "resumes");
    std::size_t repetition = 0;
    for (const double rate : {0.0, 0.02, 0.08}) {
      FaultStats stats;
      std::atomic<std::uint64_t> conn{0};
      // Every rate repetition used to restart the fault-schedule seeds
      // at the same literal, replaying one schedule; derive a distinct
      // per-repetition base instead (bench_util.hpp).
      const std::uint64_t fault_seed_base =
          bench::repetition_seed(0xBADF, repetition++);
      OtaClientOptions client_options;
      client_options.max_attempts = 256;
      client_options.backoff_initial_ms = 0;
      client_options.backoff_max_ms = 0;
      client_options.max_chunk = 8u << 10;  // more frames, more exposure
      OtaClient client(
          [&, rate]() -> std::unique_ptr<Transport> {
            auto tcp = TcpTransport::connect("127.0.0.1", port);
            if (rate == 0.0) return tcp;
            FaultOptions faults;
            faults.seed = fault_seed_base + conn.fetch_add(1);
            faults.drop_rate = rate;
            faults.truncate_rate = rate;
            faults.flip_rate = rate;
            return std::make_unique<FaultyTransport>(std::move(tcp), faults,
                                                     &stats);
          },
          client_options);
      OtaReport total;
      const double seconds = bench::time_seconds([&] {
        for (std::size_t i = 0; i < std::max<std::size_t>(ops / 20, 1); ++i) {
          Bytes image = history[0];
          const OtaReport r = client.update_streaming(image, 0, latest);
          total.retries += r.retries;
          total.resumes += r.resumes;
        }
      });
      char label[32];
      std::snprintf(label, sizeof label, rate == 0.0 ? "clean" : "%.0f%% faulty",
                    rate * 100.0);
      std::printf("  %-16s %10.2f %10zu %10zu\n", label, seconds,
                  total.retries, total.resumes);
      if (rate == 0.0) {
        json += ",\"fault_clean_seconds\":" + std::to_string(seconds);
      } else if (rate == 0.08) {
        json += ",\"fault_8pct_seconds\":" + std::to_string(seconds) +
                ",\"fault_8pct_retries\":" + std::to_string(total.retries) +
                ",\"fault_8pct_resumes\":" + std::to_string(total.resumes);
      }
    }
  }
  server.stop();
  json += "}";
  bench::rule('=');
  std::printf("JSON %s\n", json.c_str());
  return 0;
}
