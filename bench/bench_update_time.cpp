// E8 — the paper's §1 motivation, quantified: time to update software on
// a network device over low-bandwidth channels, comparing
//
//   * shipping the full new image (what a device without delta support
//     does),
//   * shipping an ordinary delta (needs 2x storage on the device —
//     impossible on the constrained device, shown for reference),
//   * shipping an in-place delta (the paper's contribution: delta-sized
//     download, 1x storage, RAM = delta + window).
#include <cstdio>

#include "bench_util.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "device/updater.hpp"
#include "ipdelta.hpp"

namespace {

using namespace ipd;

}  // namespace

int main() {
  Rng rng(0x0E8);
  const length_t image_size = 256 << 10;
  const Bytes v1 = generate_file(rng, image_size, FileProfile::kBinary);
  MutationModel model;
  model.max_edit_fraction = 0.02;
  const Bytes v2 = mutate(v1, rng, 48, model);

  const Bytes plain =
      Pipeline({.format = kPaperSequential}).build_delta(v1, v2).delta;
  const Bytes inplace = Pipeline().build_inplace(v1, v2).delta;

  std::printf(
      "Software-update time over constrained channels (§1 scenario)\n"
      "firmware: v1 %zu B -> v2 %zu B; plain delta %zu B; in-place delta "
      "%zu B\n",
      v1.size(), v2.size(), plain.size(), inplace.size());
  bench::rule('=');

  std::printf("%-14s %12s %12s %12s %10s\n", "channel", "full image",
              "plain delta", "in-place", "speedup");
  for (const ChannelModel& ch :
       {channel_9600(), channel_28k(), channel_56k(), channel_isdn(),
        channel_t1()}) {
    const double full = ch.transfer_seconds(v2.size());
    const double d_plain = ch.transfer_seconds(plain.size());
    const double d_inplace = ch.transfer_seconds(inplace.size());
    std::printf("%-14s %10.1f s %10.1f s %10.1f s %9.1fx\n", ch.name.c_str(),
                full, d_plain, d_inplace, full / d_inplace);
  }

  bench::rule();
  std::printf("device resource requirements per method:\n");
  std::printf("  %-14s %16s %16s\n", "method", "storage needed", "RAM needed");
  std::printf("  %-14s %13zu KiB %16s\n", "full image",
              2 * v2.size() >> 10, "download buffer");
  std::printf("  %-14s %13zu KiB %13zu KiB\n", "plain delta",
              (v1.size() + v2.size()) >> 10, plain.size() >> 10);
  std::printf("  %-14s %13zu KiB %13zu KiB\n", "in-place",
              std::max(v1.size(), v2.size()) >> 10,
              (inplace.size() + 4096) >> 10);

  bench::rule();
  // Prove the in-place path actually runs on a device with 1x storage.
  FlashDevice device(image_size + (16 << 10), 4096,
                     inplace.size() + (8 << 10));
  device.load_image(v1);
  const UpdateResult result = apply_update(device, inplace, channel_28k());
  std::printf(
      "in-place update executed on simulated device: CRC %s, RAM "
      "high-water %zu B, %llu flash pages written, download %.1f s over "
      "%s\n",
      result.crc_verified ? "ok" : "FAIL", result.ram_high_water,
      static_cast<unsigned long long>(result.storage_pages_written),
      result.download_seconds, channel_28k().name.c_str());

  std::printf(
      "\nexpected shape: delta download is several times faster than the\n"
      "full image (paper: 4-10x compression); in-place costs only a small\n"
      "constant over the plain delta while halving device storage.\n");
  return result.crc_verified ? 0 : 1;
}
