// Shared helpers for the paper-table benches: wall-clock timing and the
// corpus E1-E3 use. Latency distributions go through obs::Histogram
// (src/obs/) — the same lock-free recorder production code uses — so
// bench_server and bench_net no longer carry their own percentile math.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "corpus/workload.hpp"
#include "obs/histogram.hpp"

namespace ipd::bench {

/// Wall-clock seconds spent in fn().
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// The evaluation corpus shared by bench_table1 / bench_runtime /
/// bench_cycle_policies: ~100 version pairs of synthetic software
/// releases (DESIGN.md §5 substitution for the paper's GNU/BSD data).
inline std::vector<VersionPair> evaluation_corpus() {
  CorpusOptions options;
  options.seed = 0x19980625;  // PODC '98
  options.packages = 26;
  options.releases_per_package = 5;  // 26 * 4 = 104 pairs
  options.min_file_size = 24 << 10;
  options.max_file_size = 192 << 10;
  // Heavy release-to-release churn, calibrated so the delta compressor
  // lands in the paper's compression regime (deltas ~10-20% of the new
  // version) with block moves frequent enough to exercise cycles.
  options.edits_per_64k = 80;
  options.mutation_model.move_weight = 1.2;
  options.mutation_model.duplicate_weight = 1.0;
  options.mutation_model.max_edit_fraction = 0.03;
  options.mutation_model.length_scale = 96;
  return standard_corpus(options);
}

/// Distinct deterministic seed for repetition `rep` of a bench section.
/// Repetitions that reuse one literal seed replay the identical request
/// stream, which makes a warmed-by-repetition-1 cache answer
/// repetition 2 — warm-up becomes indistinguishable from measurement.
/// Thin alias for the shared core helper (core/rng.hpp) so the benches,
/// the store recovery matrix, and the campaign harness all derive
/// per-stream seeds the same way.
inline std::uint64_t repetition_seed(std::uint64_t base,
                                     std::uint64_t rep) noexcept {
  return derive_seed(base, rep);
}

inline void rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Time fn() and record the elapsed nanoseconds into `histogram`.
/// The histogram is thread-safe, so every load thread records into the
/// same instance — no per-thread recorders, no merge step.
template <typename Fn>
void time_into(obs::Histogram& histogram, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  histogram.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count()));
}

/// "p50 420.1us  p95 1300.0us  p99 3870.5us" — one line for tables.
inline std::string latency_summary(const obs::Histogram& histogram) {
  return histogram.snapshot().latency_line();
}

}  // namespace ipd::bench
