// Shared helpers for the paper-table benches: wall-clock timing, the
// corpus E1-E3 use, and the latency-percentile recorder shared by
// bench_server and bench_net.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "corpus/workload.hpp"

namespace ipd::bench {

/// Wall-clock seconds spent in fn().
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// The evaluation corpus shared by bench_table1 / bench_runtime /
/// bench_cycle_policies: ~100 version pairs of synthetic software
/// releases (DESIGN.md §5 substitution for the paper's GNU/BSD data).
inline std::vector<VersionPair> evaluation_corpus() {
  CorpusOptions options;
  options.seed = 0x19980625;  // PODC '98
  options.packages = 26;
  options.releases_per_package = 5;  // 26 * 4 = 104 pairs
  options.min_file_size = 24 << 10;
  options.max_file_size = 192 << 10;
  // Heavy release-to-release churn, calibrated so the delta compressor
  // lands in the paper's compression regime (deltas ~10-20% of the new
  // version) with block moves frequent enough to exercise cycles.
  options.edits_per_64k = 80;
  options.mutation_model.move_weight = 1.2;
  options.mutation_model.duplicate_weight = 1.0;
  options.mutation_model.max_edit_fraction = 0.03;
  options.mutation_model.length_scale = 96;
  return standard_corpus(options);
}

inline void rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Per-operation latency samples with percentile readout. Not thread
/// safe: give each load thread its own recorder and merge() after join.
class LatencyRecorder {
 public:
  void record(double seconds) { samples_.push_back(seconds); }

  /// Time fn() and record the elapsed wall clock.
  template <typename Fn>
  void time(Fn&& fn) {
    record(time_seconds(static_cast<Fn&&>(fn)));
  }

  void merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  std::size_t count() const { return samples_.size(); }

  /// Nearest-rank percentile, p in [0, 100]. Sorts on demand.
  double percentile(double p) {
    if (samples_.empty()) return 0;
    std::sort(samples_.begin(), samples_.end());
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
  }

  /// "p50 420.1us  p95 1300.0us  p99 3870.5us" — one line for tables.
  /// Microseconds: warm serve() calls are sub-microsecond and would
  /// all round to 0.000 in ms.
  std::string summary() {
    char buf[96];
    std::snprintf(buf, sizeof buf, "p50 %9.1fus  p95 %9.1fus  p99 %9.1fus",
                  percentile(50) * 1e6, percentile(95) * 1e6,
                  percentile(99) * 1e6);
    return buf;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace ipd::bench
