// bench_campaign — cost model of the fleet-scale OTA campaign simulator
// (src/campaign/).
//
// Two sections:
//
//   1. clean fleet: devices/s through the full wire stack (loopback
//      transport, framing, streaming apply, journaling) with no faults —
//      the simulator's own overhead, and the server-side cache hit rate
//      a heterogeneous fleet produces;
//   2. chaos fleet: the same fleet with link drops/truncations/bit flips
//      and power cuts at arbitrary flash-write offsets — the price of
//      retries, byte-exact resumes, and journal-replay reboots, plus the
//      headline invariant (zero bricks) checked on every run.
//
// Prints a human table, then one `JSON {...}` line for the tracked
// trajectory: redirect with
//   bench_campaign | grep '^JSON ' | cut -c6- > BENCH_CAMPAIGN.json
// Runs standalone with no arguments (CI smoke);
// IPDELTA_BENCH_CAMPAIGN_DEVICES scales the fleet.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "campaign/campaign.hpp"

namespace {

using namespace ipd;

CampaignOptions base_options(std::size_t devices) {
  CampaignOptions o;
  o.devices = devices;
  o.releases = 4;
  o.image_bytes = 24u << 10;
  o.seed = 0xCA49;  // "CAMP"
  o.staged_fraction = 0.2;
  o.rollout.max_concurrency = 8;
  return o;
}

void print_report(const char* label, const CampaignReport& r) {
  std::printf("  %-6s  %6.0f devices/s   updated %zu/%zu  bricked %zu\n"
              "          retries %zu  resumes %zu  reboots %zu"
              "  link faults %llu\n"
              "          device update %s\n"
              "          server: %llu sessions, %llu builds,"
              " %llu cache hits\n",
              label,
              r.wall_seconds > 0
                  ? static_cast<double>(r.attempted) / r.wall_seconds
                  : 0.0,
              r.updated, r.devices, r.bricked, r.retries, r.resumes,
              r.reboots, static_cast<unsigned long long>(r.link_faults),
              r.device_update_ns.latency_line().c_str(),
              static_cast<unsigned long long>(r.server_sessions),
              static_cast<unsigned long long>(r.server_builds),
              static_cast<unsigned long long>(r.server_cache_hits));
}

}  // namespace

int main() {
  std::size_t devices = 500;
  if (const char* env = std::getenv("IPDELTA_BENCH_CAMPAIGN_DEVICES")) {
    devices = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }

  std::string json = "{\"bench\":\"campaign\",\"devices\":" +
                     std::to_string(devices);

  // ---- 1. clean fleet ---------------------------------------------
  ipd::bench::rule('=');
  std::printf("clean fleet  (%zu devices, 4 releases, no faults)\n",
              devices);
  ipd::bench::rule();
  const CampaignReport clean = run_campaign(base_options(devices));
  print_report("clean", clean);
  if (clean.updated != clean.devices || clean.bricked != 0) {
    std::fprintf(stderr, "bench_campaign: clean fleet did not converge\n%s",
                 clean.render().c_str());
    return 1;
  }
  json += ",\"clean_devices_per_sec\":" +
          std::to_string(static_cast<double>(clean.attempted) /
                         clean.wall_seconds) +
          ",\"clean_p99_device_update_us\":" +
          std::to_string(clean.device_update_ns.quantile(0.99) / 1e3);

  // ---- 2. chaos fleet ---------------------------------------------
  ipd::bench::rule('=');
  std::printf("chaos fleet  (2%% drop/truncate/flip per op, power cuts on"
              " 30%% of devices)\n");
  ipd::bench::rule();
  CampaignOptions chaos = base_options(devices);
  chaos.drop_rate = 0.02;
  chaos.truncate_rate = 0.02;
  chaos.flip_rate = 0.02;
  chaos.grace_ops = 1;
  chaos.power_cut_rate = 0.3;
  chaos.max_power_cuts = 2;
  chaos.client.max_attempts = 64;
  const CampaignReport faulty = run_campaign(chaos);
  print_report("chaos", faulty);
  if (faulty.updated != faulty.devices || faulty.bricked != 0) {
    std::fprintf(stderr,
                 "bench_campaign: chaos fleet broke the zero-brick "
                 "guarantee\n%s",
                 faulty.render().c_str());
    return 1;
  }
  const double slowdown =
      clean.attempted > 0 && faulty.wall_seconds > 0
          ? (static_cast<double>(clean.attempted) / clean.wall_seconds) /
                (static_cast<double>(faulty.attempted) / faulty.wall_seconds)
          : 0.0;
  std::printf("  chaos costs %.2fx wall time over clean\n", slowdown);
  json += ",\"chaos_devices_per_sec\":" +
          std::to_string(static_cast<double>(faulty.attempted) /
                         faulty.wall_seconds) +
          ",\"chaos_p99_device_update_us\":" +
          std::to_string(faulty.device_update_ns.quantile(0.99) / 1e3) +
          ",\"chaos_slowdown\":" + std::to_string(slowdown) +
          ",\"retries\":" + std::to_string(faulty.retries) +
          ",\"resumes\":" + std::to_string(faulty.resumes) +
          ",\"reboots\":" + std::to_string(faulty.reboots) +
          ",\"link_faults\":" + std::to_string(faulty.link_faults) +
          ",\"bricked\":" + std::to_string(faulty.bricked) + "}";

  ipd::bench::rule('=');
  std::printf("JSON %s\n", json.c_str());
  return 0;
}
