// E10 — software distribution at fleet scale: update archives across a
// multi-file release history, and upgrade planning for devices scattered
// over that history. Extends the paper's single-file evaluation to the
// artifact a publisher actually ships.
#include <cstdio>
#include <map>

#include "archive/archive.hpp"
#include "archive/upgrade_planner.hpp"
#include "bench_util.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "delta/stats.hpp"

namespace {

using namespace ipd;

std::vector<FileSet> make_distribution_history(std::size_t releases) {
  Rng rng(0xD157);
  std::vector<FileSet> history(1);
  MutationModel model;
  model.length_scale = 64;
  for (int f = 0; f < 10; ++f) {
    const FileProfile profile =
        f % 2 == 0 ? FileProfile::kText : FileProfile::kBinary;
    history[0]["file" + std::to_string(f)] =
        generate_file(rng, rng.range(16 << 10, 96 << 10), profile);
  }
  for (std::size_t r = 1; r < releases; ++r) {
    FileSet next;
    for (const auto& [name, content] : history.back()) {
      next[name] = mutate(content, rng, 30, model);
    }
    // Release churn: occasionally add or drop a file.
    if (r % 2 == 0) {
      next["file-new-r" + std::to_string(r)] =
          generate_file(rng, 20 << 10, FileProfile::kBinary);
    }
    if (r % 3 == 0 && !next.empty()) {
      next.erase(next.begin()->first);
    }
    history.push_back(std::move(next));
  }
  return history;
}

}  // namespace

int main() {
  constexpr std::size_t kReleases = 6;
  const auto history = make_distribution_history(kReleases);

  std::printf(
      "Distribution archives — release-to-release upgrade artifacts\n");
  bench::rule('=');
  std::printf("%10s %12s %12s %8s | %6s %6s %6s\n", "upgrade", "release",
              "archive", "ratio", "delta", "lit", "del");
  for (std::size_t r = 1; r < kReleases; ++r) {
    ArchiveBuildOptions options;
    options.pipeline.compress_payload = true;
    ArchiveBuildReport report;
    const Bytes wire =
        build_archive_bytes(history[r - 1], history[r], options, &report);

    // Prove it lands.
    FileSet mirror = history[r - 1];
    apply_archive(deserialize_archive(wire), mirror);
    if (mirror != history[r]) {
      std::printf("VERIFY FAILED at release %zu\n", r);
      return 1;
    }
    std::printf("%7zu->%zu %12s %12s %8s | %6zu %6zu %6zu\n", r - 1, r,
                format_bytes(report.new_release_bytes).c_str(),
                format_bytes(wire.size()).c_str(),
                format_percent(100.0 * static_cast<double>(wire.size()) /
                               static_cast<double>(report.new_release_bytes))
                    .c_str(),
                report.delta_entries, report.literal_entries,
                report.delete_entries);
  }

  bench::rule();
  std::printf(
      "Upgrade planner — per-device download to reach the latest release\n"
      "(single-file image distilled from the release history)\n");
  std::vector<Bytes> images;
  {
    // Concatenate each release's files into one image for the planner.
    for (const FileSet& release : history) {
      Bytes image;
      for (const auto& [name, content] : release) {
        (void)name;
        image.insert(image.end(), content.begin(), content.end());
      }
      images.push_back(std::move(image));
    }
  }
  UpgradePlanner planner(
      std::vector<ByteView>(images.begin(), images.end()));
  std::printf("%8s %12s %12s %10s %8s\n", "from", "plan bytes", "full image",
              "saving", "hops");
  for (std::size_t from = 0; from < kReleases - 1; ++from) {
    const UpgradePlan plan = planner.plan(from, kReleases - 1);
    Bytes image = images[from];
    planner.execute(plan, image);
    if (image != images.back()) {
      std::printf("PLAN VERIFY FAILED from %zu\n", from);
      return 1;
    }
    std::printf("%8zu %12s %12s %9.1fx %8zu\n", from,
                format_bytes(plan.total_bytes).c_str(),
                format_bytes(images.back().size()).c_str(),
                static_cast<double>(images.back().size()) /
                    static_cast<double>(plan.total_bytes),
                plan.steps.size());
  }
  std::printf("(deltas built lazily for the whole fleet: %zu)\n",
              planner.deltas_built());

  bench::rule();
  // Chain folding (delta composition): mint a direct v0->vN delta from
  // the cached per-hop deltas, never touching the endpoint files, and
  // compare against the differencer's direct delta.
  {
    PlannerOptions chain_only;
    chain_only.max_hop_span = 1;
    UpgradePlanner chained(
        std::vector<ByteView>(images.begin(), images.end()), chain_only);
    const UpgradePlan plan = chained.plan(0, kReleases - 1);
    const Bytes folded = chained.fold_plan(plan);
    const Bytes direct = Pipeline().build_inplace(images[0], images.back()).delta;

    Bytes image = images[0];
    image.resize(std::max(images[0].size(), images.back().size()));
    const length_t n = apply_delta_inplace(folded, image);
    const bool ok = n == images.back().size() &&
                    std::equal(images.back().begin(), images.back().end(),
                               image.begin());
    std::printf(
        "chain folding (compose %zu per-hop deltas into one, no "
        "re-diffing):\n"
        "  chain total %s -> folded %s; direct differ delta %s; %s\n",
        plan.steps.size(), format_bytes(plan.total_bytes).c_str(),
        format_bytes(folded.size()).c_str(),
        format_bytes(direct.size()).c_str(),
        ok ? "folded delta verified" : "VERIFY FAILED");
  }

  bench::rule();
  std::printf(
      "expected shape: archives ship a few percent of the release; older\n"
      "devices pay more but always far less than the full image; the\n"
      "planner builds only the deltas its plans touch.\n");
  return 0;
}
