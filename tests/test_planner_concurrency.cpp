// Publish-while-planning regression for the UpgradePlanner.
//
// The planner once borrowed ByteViews of the release bodies; a caller
// that published (reallocating its history vector) or simply returned
// while another thread was planning handed the Dijkstra loop dangling
// views. The planner now owns shared_ptr references, and this suite
// hammers exactly that interleaving — run it under TSan/ASan via
//   IPDELTA_SANITIZE=thread ctest -L stress
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "archive/upgrade_planner.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

std::vector<std::shared_ptr<const Bytes>> drifting_history(
    std::size_t releases, std::uint64_t seed) {
  std::vector<std::shared_ptr<const Bytes>> history;
  Bytes body = random_bytes(seed, 8 << 10);
  history.push_back(std::make_shared<const Bytes>(body));
  for (std::size_t i = 1; i < releases; ++i) {
    Rng rng(seed + i * 7919);
    for (int edit = 0; edit < 4; ++edit) {
      const std::size_t at = rng.below(body.size() - 40);
      for (std::size_t b = 0; b < 40; ++b) {
        body[at + b] = static_cast<std::uint8_t>(rng.next());
      }
    }
    history.push_back(std::make_shared<const Bytes>(body));
  }
  return history;
}

TEST(PlannerConcurrency, PublishWhilePlanning) {
  auto history = drifting_history(10, 42);
  UpgradePlanner planner(
      std::vector<std::shared_ptr<const Bytes>>(history.begin(),
                                                history.begin() + 6));

  // Publisher: appends the remaining releases while planners run.
  std::thread publisher([&] {
    for (std::size_t i = 6; i < history.size(); ++i) {
      planner.append_release(history[i]);
      std::this_thread::yield();
    }
  });

  // Planners: route, execute, and fold over the stable prefix while the
  // history grows underneath them.
  std::vector<std::thread> planners;
  for (int t = 0; t < 3; ++t) {
    planners.emplace_back([&, t] {
      for (int round = 0; round < 4; ++round) {
        const std::size_t to = 3 + static_cast<std::size_t>(t) % 3;
        const UpgradePlan plan = planner.plan(0, to);
        Bytes image = *history[0];
        planner.execute(plan, image);
        EXPECT_EQ(image, *history[to]) << "t" << t << " round " << round;
        const Bytes folded = planner.fold_plan(plan);
        EXPECT_FALSE(folded.empty());
      }
    });
  }
  publisher.join();
  for (std::thread& thread : planners) thread.join();

  // The appended tail is immediately plannable.
  ASSERT_EQ(planner.release_count(), history.size());
  Bytes image = *history[0];
  planner.execute(planner.plan(0, history.size() - 1), image);
  EXPECT_EQ(image, *history.back());
}

TEST(PlannerConcurrency, CallerHistoryCanDieMidPlan) {
  // The original hazard, concurrently: construct from views, destroy the
  // backing vector, then plan from several threads at once.
  std::unique_ptr<UpgradePlanner> planner;
  Bytes first;
  Bytes last;
  {
    std::vector<Bytes> bodies;
    Bytes body = random_bytes(7, 8 << 10);
    for (std::size_t i = 0; i < 6; ++i) {
      bodies.push_back(body);
      Rng rng(100 + i);
      for (int e = 0; e < 4; ++e) {
        const std::size_t at = rng.below(body.size() - 32);
        for (std::size_t b = 0; b < 32; ++b) {
          body[at + b] = static_cast<std::uint8_t>(rng.next());
        }
      }
    }
    first = bodies.front();
    last = bodies.back();
    std::vector<ByteView> views(bodies.begin(), bodies.end());
    planner = std::make_unique<UpgradePlanner>(views);
  }  // bodies destroyed; the planner's copies must be independent

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      const UpgradePlan plan = planner->plan(0, 5);
      Bytes image = first;
      planner->execute(plan, image);
      EXPECT_EQ(image, last);
    });
  }
  for (std::thread& thread : threads) thread.join();
}

TEST(PlannerConcurrency, ConcurrentSeedAndPlan) {
  auto history = drifting_history(8, 1234);
  PlannerOptions options;
  options.build_cost_penalty = 64 << 10;
  UpgradePlanner planner(history, options);

  // Pre-serialize the adjacent-hop deltas to seed from another thread.
  std::vector<Bytes> artifacts;
  for (std::size_t i = 0; i + 1 < history.size(); ++i) {
    artifacts.push_back(
        Pipeline().build_inplace(*history[i], *history[i + 1]).delta);
  }

  std::thread seeder([&] {
    for (std::size_t i = 0; i + 1 < history.size(); ++i) {
      planner.seed_edge(i, i + 1, artifacts[i]);
    }
  });
  std::vector<std::thread> planners;
  for (int t = 0; t < 2; ++t) {
    planners.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        Bytes image = *history[0];
        planner.execute(planner.plan(0, history.size() - 1), image);
        EXPECT_EQ(image, *history.back());
      }
    });
  }
  seeder.join();
  for (std::thread& thread : planners) thread.join();
  for (std::size_t i = 0; i + 1 < history.size(); ++i) {
    EXPECT_TRUE(planner.materialized(i, i + 1));
  }
}

}  // namespace
}  // namespace ipd
