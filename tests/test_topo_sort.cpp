#include "inplace/topo_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "adversary/constructions.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

CrwiGraph graph_from(const std::vector<CopyCommand>& copies,
                     length_t version_length) {
  auto sorted = copies;
  std::sort(sorted.begin(), sorted.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  return CrwiGraph::build(sorted, version_length);
}

std::vector<std::uint64_t> unit_costs(std::size_t n) {
  return std::vector<std::uint64_t>(n, 1);
}

class TopoPolicyTest : public ::testing::TestWithParam<BreakPolicy> {};
INSTANTIATE_TEST_SUITE_P(Policies, TopoPolicyTest,
                         ::testing::Values(BreakPolicy::kConstantTime,
                                           BreakPolicy::kLocalMin),
                         [](const auto& info) {
                           return info.param == BreakPolicy::kConstantTime
                                      ? "constant"
                                      : "localmin";
                         });

TEST_P(TopoPolicyTest, AcyclicGraphKeepsEverything) {
  // Chain 0 -> 1 -> 2 via read/write conflicts.
  const std::vector<CopyCommand> copies = {
      {10, 0, 10},   // reads [10,19] = writes of vertex 1
      {20, 10, 10},  // reads [20,29] = writes of vertex 2
      {40, 20, 10},
  };
  const CrwiGraph g = graph_from(copies, 50);
  const TopoSortResult r =
      topo_sort_breaking_cycles(g, GetParam(), unit_costs(3));
  EXPECT_TRUE(r.deleted.empty());
  EXPECT_EQ(r.cycles_found, 0u);
  EXPECT_EQ(r.passes, 1u);
  ASSERT_EQ(r.order.size(), 3u);
  EXPECT_TRUE(is_topological_order(g, r.order, r.deleted));
  // The chain forces the unique order 0, 1, 2.
  EXPECT_EQ(r.order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST_P(TopoPolicyTest, TwoCycleDeletesExactlyOne) {
  const std::vector<CopyCommand> copies = {{10, 0, 10}, {0, 10, 10}};
  const CrwiGraph g = graph_from(copies, 20);
  const TopoSortResult r =
      topo_sort_breaking_cycles(g, GetParam(), unit_costs(2));
  EXPECT_EQ(r.deleted.size(), 1u);
  EXPECT_EQ(r.cycles_found, 1u);
  EXPECT_EQ(r.order.size(), 1u);
  EXPECT_TRUE(is_topological_order(g, r.order, r.deleted));
}

TEST_P(TopoPolicyTest, SingleCyclePermutationsDeleteOneVertexEach) {
  for (const std::size_t n : {2ul, 3ul, 10ul, 100ul}) {
    const auto perm = single_cycle_permutation(n);
    const AdversaryInstance inst = make_block_permutation(4, perm);
    const CrwiGraph g = graph_from(inst.script.copies(), n * 4);
    const TopoSortResult r =
        topo_sort_breaking_cycles(g, GetParam(), unit_costs(n));
    EXPECT_EQ(r.deleted.size(), 1u) << "n=" << n;
    EXPECT_TRUE(is_topological_order(g, r.order, r.deleted));
  }
}

TEST_P(TopoPolicyTest, RandomPermutationDeletesOnePerNontrivialCycle) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 50;
    const auto perm = random_permutation(rng, n);
    // Count permutation cycles of length >= 2.
    std::vector<bool> seen(n, false);
    std::size_t nontrivial = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (seen[i]) continue;
      std::size_t len = 0;
      for (std::size_t j = i; !seen[j]; j = perm[j]) {
        seen[j] = true;
        ++len;
      }
      if (len >= 2) ++nontrivial;
    }
    const AdversaryInstance inst = make_block_permutation(4, perm);
    const CrwiGraph g = graph_from(inst.script.copies(), n * 4);
    const TopoSortResult r =
        topo_sort_breaking_cycles(g, GetParam(), unit_costs(n));
    EXPECT_EQ(r.deleted.size(), nontrivial);
    EXPECT_TRUE(is_topological_order(g, r.order, r.deleted));
  }
}

TEST(TopoSort, LocalMinPicksCheapestOnCycle) {
  // 3-cycle 0 -> 1 -> 2 -> 0 with distinct costs; local-min must delete
  // the cheapest vertex (1), constant-time deletes where detection
  // happened.
  const auto perm = single_cycle_permutation(3);
  const AdversaryInstance inst = make_block_permutation(4, perm);
  const CrwiGraph g = graph_from(inst.script.copies(), 12);
  const std::vector<std::uint64_t> costs = {10, 1, 10};
  const TopoSortResult r =
      topo_sort_breaking_cycles(g, BreakPolicy::kLocalMin, costs);
  ASSERT_EQ(r.deleted.size(), 1u);
  EXPECT_EQ(r.deleted[0], 1u);
  EXPECT_GE(r.cycle_length_sum, 3u);
}

TEST(TopoSort, ConstantTimeDoesNoCycleScanning) {
  const auto perm = single_cycle_permutation(64);
  const AdversaryInstance inst = make_block_permutation(4, perm);
  const CrwiGraph g = graph_from(inst.script.copies(), 64 * 4);
  const TopoSortResult r = topo_sort_breaking_cycles(
      g, BreakPolicy::kConstantTime, unit_costs(64));
  EXPECT_EQ(r.cycle_length_sum, 0u);
  EXPECT_EQ(r.deleted.size(), 1u);
}

TEST(TopoSort, Fig2LocalMinDeletesAllLeaves) {
  // The paper's adversary: local-min deletes every leaf where deleting
  // the root would have sufficed.
  const Fig2Instance inst = make_fig2_tree(5);  // 16 leaves
  auto copies = inst.script.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  const CrwiGraph g = CrwiGraph::build(copies, inst.version.size());
  // Cost = copy length (leaf=16 cheapest, root=24, inner larger).
  std::vector<std::uint64_t> costs;
  for (const auto& c : copies) costs.push_back(c.length);

  const TopoSortResult r =
      topo_sort_breaking_cycles(g, BreakPolicy::kLocalMin, costs);
  EXPECT_EQ(r.deleted.size(), inst.leaf_count);
  for (const std::uint32_t v : r.deleted) {
    EXPECT_EQ(copies[v].length, inst.leaf_copy_length);
  }
  EXPECT_TRUE(is_topological_order(g, r.order, r.deleted));
}

TEST(TopoSort, PreDeletedVerticesAreExcluded) {
  const auto perm = single_cycle_permutation(4);
  const AdversaryInstance inst = make_block_permutation(4, perm);
  const CrwiGraph g = graph_from(inst.script.copies(), 16);
  std::vector<bool> pre(4, false);
  pre[2] = true;  // breaks the only cycle up front
  const TopoSortResult r = topo_sort_breaking_cycles(
      g, BreakPolicy::kConstantTime, unit_costs(4), pre);
  EXPECT_EQ(r.cycles_found, 0u);
  EXPECT_TRUE(r.deleted.empty());  // pre-deleted are not re-reported
  EXPECT_EQ(r.order.size(), 3u);
  EXPECT_EQ(std::count(r.order.begin(), r.order.end(), 2u), 0);
}

TEST(TopoSort, RejectsExactPolicyAndBadSizes) {
  const CrwiGraph g = graph_from({{10, 0, 10}}, 20);
  EXPECT_THROW(topo_sort_breaking_cycles(g, BreakPolicy::kExactOptimal,
                                         unit_costs(1)),
               ValidationError);
  EXPECT_THROW(
      topo_sort_breaking_cycles(g, BreakPolicy::kConstantTime, unit_costs(2)),
      ValidationError);
  EXPECT_THROW(topo_sort_breaking_cycles(g, BreakPolicy::kConstantTime,
                                         unit_costs(1),
                                         std::vector<bool>(3, false)),
               ValidationError);
}

TEST(TopoSort, EmptyGraph) {
  const CrwiGraph g;
  const TopoSortResult r =
      topo_sort_breaking_cycles(g, BreakPolicy::kLocalMin, {});
  EXPECT_TRUE(r.order.empty());
  EXPECT_TRUE(r.deleted.empty());
  EXPECT_EQ(r.passes, 1u);
}

TEST(TopoSort, IsTopologicalOrderHelperRejectsBadInputs) {
  const std::vector<CopyCommand> copies = {{10, 0, 10}, {50, 10, 10}};
  const CrwiGraph g = graph_from(copies, 60);  // edge 0 -> 1
  EXPECT_TRUE(is_topological_order(g, std::vector<std::uint32_t>{0, 1}, {}));
  // Edge violated.
  EXPECT_FALSE(is_topological_order(g, std::vector<std::uint32_t>{1, 0}, {}));
  // Missing vertex.
  EXPECT_FALSE(is_topological_order(g, std::vector<std::uint32_t>{0}, {}));
  // Duplicate vertex.
  EXPECT_FALSE(
      is_topological_order(g, std::vector<std::uint32_t>{0, 0}, {}));
  // Deleted vertex also in order.
  EXPECT_FALSE(is_topological_order(g, std::vector<std::uint32_t>{0, 1},
                                    std::vector<std::uint32_t>{1}));
}

TEST(TopoSort, StressRandomDenseGraphsAllPoliciesStayConsistent) {
  Rng rng(1234);
  for (int trial = 0; trial < 15; ++trial) {
    // Random disjoint writes tiling [0, total), reads anywhere.
    std::vector<CopyCommand> copies;
    offset_t cursor = 0;
    const length_t total = 600;
    while (cursor < total) {
      const length_t len = rng.range(1, 20);
      copies.push_back(CopyCommand{rng.below(total), cursor,
                                   std::min<length_t>(len, total - cursor)});
      cursor += copies.back().length;
    }
    const CrwiGraph g = graph_from(copies, total);
    std::vector<std::uint64_t> costs;
    for (const auto& c : copies) costs.push_back(c.length);

    for (const BreakPolicy policy :
         {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin}) {
      const TopoSortResult r = topo_sort_breaking_cycles(g, policy, costs);
      ASSERT_TRUE(is_topological_order(g, r.order, r.deleted))
          << "trial " << trial << " policy " << policy_name(policy);
      EXPECT_EQ(r.order.size() + r.deleted.size(), g.vertex_count());
    }
  }
}

}  // namespace
}  // namespace ipd
