#include "apply/apply.hpp"

#include <gtest/gtest.h>

#include "core/checksum.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

TEST(Apply, CopiesAndAddsInterleaved) {
  const Bytes ref = to_bytes("ABCDEFGHIJ");
  const Script s = script_of({C(5, 0, 3), A(3, "xy"), C(0, 5, 2)});
  EXPECT_EQ(to_string(apply_script(s, ref)), "FGHxyAB");
}

TEST(Apply, OrderIndependenceForValidScripts) {
  // §3: any permutation of a valid script materialises the same version.
  const Bytes ref = test::random_bytes(1, 200);
  const Script s =
      script_of({C(100, 0, 50), A(50, "hello"), C(0, 55, 45)});
  const Bytes expected = apply_script(s, ref);
  Script shuffled = s;
  std::swap(shuffled.commands()[0], shuffled.commands()[2]);
  EXPECT_TRUE(test::bytes_equal(expected, apply_script(shuffled, ref)));
}

TEST(Apply, EmptyScriptEmptyVersion) {
  EXPECT_TRUE(apply_script(Script{}, to_bytes("ref")).empty());
}

TEST(Apply, ThrowsOnOutOfBoundsCopyRead) {
  const Bytes ref = test::random_bytes(2, 10);
  EXPECT_THROW(apply_script(script_of({C(5, 0, 10)}), ref),
               ValidationError);
}

TEST(Apply, IntoRespectsProvidedBuffer) {
  const Bytes ref = to_bytes("0123456789");
  const Script s = script_of({C(0, 0, 5)});
  Bytes out(5, '?');
  apply_script_into(s, ref, out);
  EXPECT_EQ(to_string(out), "01234");
  Bytes small(3);
  EXPECT_THROW(apply_script_into(s, ref, small), ValidationError);
}

TEST(ApplyDelta, EndToEndWithChecksums) {
  const Bytes ref = test::random_bytes(3, 1000);
  const Script s = script_of({C(500, 0, 400), A(400, "tail")});
  const Bytes expected = apply_script(s, ref);

  DeltaFile file;
  file.format = kVarintExplicit;
  file.reference_length = ref.size();
  file.version_length = expected.size();
  file.version_crc = crc32c(expected);
  file.script = s;

  const Bytes wire = serialize_delta(file);
  EXPECT_TRUE(test::bytes_equal(expected, apply_delta(wire, ref)));
}

TEST(ApplyDelta, RejectsWrongReferenceLength) {
  const Bytes ref = test::random_bytes(4, 100);
  DeltaFile file;
  file.format = kVarintExplicit;
  file.reference_length = 100;
  file.version_length = 10;
  file.version_crc = 0;
  file.script = script_of({C(0, 0, 10)});
  const Bytes wire = serialize_delta(file);
  const Bytes short_ref(50, 0);
  EXPECT_THROW(apply_delta(wire, short_ref), FormatError);
}

TEST(VerifyDelta, AcceptsGoodDelta) {
  const Bytes ref = test::random_bytes(10, 8000);
  Bytes ver = ref;
  for (int i = 0; i < 1000; ++i) std::swap(ver[i], ver[i + 4000]);
  const Bytes delta = Pipeline().build_inplace(ref, ver).delta;
  const VerifyResult r = verify_delta(delta, ref);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.in_place_capable);
  EXPECT_EQ(r.version_length, ver.size());
  EXPECT_TRUE(r.failure.empty());
}

TEST(VerifyDelta, ReportsWrongReference) {
  const Bytes ref = test::random_bytes(11, 5000);
  const Bytes ver = test::random_bytes(12, 5000);
  const Bytes delta = Pipeline().build_inplace(ref, ver).delta;

  const Bytes short_ref(100, 0);
  const VerifyResult wrong_len = verify_delta(delta, short_ref);
  EXPECT_FALSE(wrong_len.ok);
  EXPECT_NE(wrong_len.failure.find("length mismatch"), std::string::npos);

  Bytes tampered = ref;
  tampered[2500] ^= 1;
  const VerifyResult wrong_content = verify_delta(delta, tampered);
  // The tweak may land in a region the delta never copies; only assert
  // the negative case when the byte actually matters.
  if (!wrong_content.ok) {
    EXPECT_NE(wrong_content.failure.find("CRC"), std::string::npos);
  }
}

TEST(VerifyDelta, ReportsCorruptDeltaWithoutThrowing) {
  const Bytes ref = test::random_bytes(13, 2000);
  Bytes delta = Pipeline().build_inplace(ref, ref).delta;
  delta[delta.size() / 2] ^= 0xFF;
  const VerifyResult r = verify_delta(delta, ref);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.failure.empty());
}

TEST(VerifyDelta, DetectsLyingInPlaceFlag) {
  // Hand-build a delta whose flag claims safety but whose script
  // conflicts.
  const Bytes ref = test::random_bytes(14, 200);
  DeltaFile file;
  file.format = kVarintExplicit;
  file.in_place = true;  // lie
  file.reference_length = 200;
  file.version_length = 200;
  file.script = script_of({C(100, 0, 100), C(0, 100, 100)});
  file.version_crc = crc32c(apply_script(file.script, ref));
  const VerifyResult r = verify_delta(serialize_delta(file), ref);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("Equation 2"), std::string::npos);
}

TEST(ApplyDelta, RejectsCrcMismatch) {
  const Bytes ref = test::random_bytes(5, 100);
  DeltaFile file;
  file.format = kVarintExplicit;
  file.reference_length = 100;
  file.version_length = 10;
  file.version_crc = 0xDEADBEEF;  // wrong on purpose
  file.script = script_of({C(0, 0, 10)});
  EXPECT_THROW(apply_delta(serialize_delta(file), ref), FormatError);
}

}  // namespace
}  // namespace ipd
