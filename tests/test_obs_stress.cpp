// Concurrency hammering for src/obs/: many threads recording into one
// histogram, pushing into the event ring while readers scan it, and
// running spans that flush into the global stage totals. Run under
// IPDELTA_SANITIZE=thread via `ctest -L stress` — the lock-free claims
// in obs/ are exactly the claims TSan checks here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/event_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/watchdog.hpp"

namespace ipd::obs {
namespace {

constexpr std::size_t kThreads = 8;

TEST(ObsStress, ConcurrentHistogramRecordsNothingLost) {
  Histogram h;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i) {
        h.record(i + t);  // spread across buckets
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 1; i <= kPerThread; ++i) expected_sum += i + t;
  }
  EXPECT_EQ(snap.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsStress, ConcurrentSnapshotWhileRecording) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snap = h.snapshot();
      // Quantile must stay inside the recorded value range even on a
      // torn (count-lagging) snapshot.
      const double p99 = snap.quantile(0.99);
      EXPECT_GE(p99, 0.0);
      EXPECT_LE(p99, 4096.0);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < 50'000; ++i) h.record(1 + (i % 2048));
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(h.count(), kThreads * 50'000u);
}

TEST(ObsStress, ConcurrentEventPushesWithLiveReaders) {
  EventRing ring;
  constexpr std::uint64_t kPerThread = 5'000;
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Event& e : ring.recent(64)) {
        // Whatever survives the seqlock must decode to a real type and
        // a plausible payload; torn slots are dropped, not mangled.
        EXPECT_LT(static_cast<std::uint64_t>(e.type), kEventTypeCount);
        EXPECT_GE(e.seq, 1u);
        EXPECT_LE(e.detail.size(), EventRing::kDetailBytes);
      }
      (void)ring.dump(8);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.push(static_cast<EventType>(i % kEventTypeCount), t, i,
                  "stress detail");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scanner.join();

  EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
  // Quiescent: the ring holds the newest kSlots events, oldest first.
  // A slot two writers raced across a lap may retain the older ticket
  // and be dropped by recent() — lossy by design, so allow a few gaps
  // (at most one racing writer per thread at join time).
  const std::vector<Event> events = ring.recent();
  ASSERT_LE(events.size(), EventRing::kSlots);
  EXPECT_GE(events.size(), EventRing::kSlots - kThreads);
  EXPECT_GE(events.back().seq, kThreads * kPerThread - kThreads);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

TEST(ObsStress, RingWrapsManyLapsUnderLiveReaders) {
  // Wraparound focus: each writer laps the ring several times while two
  // readers scan continuously. recent() must stay strictly ordered and
  // bounded even when the slot a reader is copying is being re-used.
  EventRing ring;
  constexpr std::uint64_t kLaps = 6;
  constexpr std::uint64_t kPerThread = kLaps * EventRing::kSlots;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<Event> events = ring.recent();
        EXPECT_LE(events.size(), EventRing::kSlots);
        for (std::size_t i = 1; i < events.size(); ++i) {
          EXPECT_GT(events[i].seq, events[i - 1].seq);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.push(static_cast<EventType>(i % kEventTypeCount), t, i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
}

TEST(ObsStress, PerThreadFlightRecordersMirrorWithoutRacing) {
  // Each thread owns a recorder and installs it with a FlightScope; the
  // shared global ring mirrors every push into the pushing thread's
  // recorder. TSan checks the claim that mirroring is thread-local.
  constexpr std::uint64_t kPerThread = 2'000;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> recorded(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorded, t] {
      FlightRecorder flight("stress:" + std::to_string(t), mint_trace());
      const FlightScope scope(flight);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Span span(Stage::kNetTransfer, i);
        global_events().push(EventType::kNetRetry, t, i);
      }
      recorded[t] = flight.recorded();
      (void)flight.dump_text();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    // One span + one event per iteration, nothing lost or cross-wired.
    EXPECT_EQ(recorded[t], 2 * kPerThread) << "thread " << t;
  }
}

TEST(ObsStress, WatchdogSurvivesConcurrentTasksAndBackgroundChecks) {
  StallWatchdog dog;
  dog.start_thread(1);
  constexpr std::uint64_t kTasksPerThread = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dog, t] {
      for (std::uint64_t i = 0; i < kTasksPerThread; ++i) {
        // Tiny deadline on half the tasks: many stall and get flagged
        // while the background thread races register/progress/deregister.
        const std::uint64_t id =
            dog.register_task("stress " + std::to_string(t), mint_trace(),
                              (i % 2 == 0) ? 1 : 1'000'000'000);
        dog.progress(id, i);
        dog.progress(0, i);  // unknown id: must be ignored safely
        dog.deregister(id);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  dog.stop_thread();
  EXPECT_EQ(dog.watched(), 0u);
  (void)dog.check_now();
  EXPECT_TRUE(dog.stalled().empty());
}

TEST(ObsStress, ConcurrentSpansAggregateExactly) {
  reset_stage_totals();
  constexpr std::uint64_t kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Span outer(Stage::kServe, 10);
        Span inner(Stage::kVerify);
      }
      flush_thread_stats();
    });
  }
  for (std::thread& thread : threads) thread.join();

  const StageTotals totals = stage_totals();
  EXPECT_EQ(totals[Stage::kServe].count, kThreads * kPerThread);
  EXPECT_EQ(totals[Stage::kServe].bytes, kThreads * kPerThread * 10);
  EXPECT_EQ(totals[Stage::kVerify].count, kThreads * kPerThread);
  reset_stage_totals();
}

TEST(ObsStress, ConcurrentTracingCapturesEverySpan) {
  set_tracing(true);
  clear_trace_events();
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        Span span(Stage::kEncode, i);
      }
      flush_thread_stats();
    });
  }
  for (std::thread& thread : threads) thread.join();
  set_tracing(false);

  EXPECT_EQ(trace_event_count(), kThreads * kPerThread);
  const std::string json = trace_events_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  clear_trace_events();
  reset_stage_totals();
}

}  // namespace
}  // namespace ipd::obs
