// Concurrency hammering for src/obs/: many threads recording into one
// histogram, pushing into the event ring while readers scan it, and
// running spans that flush into the global stage totals. Run under
// IPDELTA_SANITIZE=thread via `ctest -L stress` — the lock-free claims
// in obs/ are exactly the claims TSan checks here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/event_ring.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace ipd::obs {
namespace {

constexpr std::size_t kThreads = 8;

TEST(ObsStress, ConcurrentHistogramRecordsNothingLost) {
  Histogram h;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i) {
        h.record(i + t);  // spread across buckets
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 1; i <= kPerThread; ++i) expected_sum += i + t;
  }
  EXPECT_EQ(snap.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsStress, ConcurrentSnapshotWhileRecording) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snap = h.snapshot();
      // Quantile must stay inside the recorded value range even on a
      // torn (count-lagging) snapshot.
      const double p99 = snap.quantile(0.99);
      EXPECT_GE(p99, 0.0);
      EXPECT_LE(p99, 4096.0);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < 50'000; ++i) h.record(1 + (i % 2048));
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(h.count(), kThreads * 50'000u);
}

TEST(ObsStress, ConcurrentEventPushesWithLiveReaders) {
  EventRing ring;
  constexpr std::uint64_t kPerThread = 5'000;
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Event& e : ring.recent(64)) {
        // Whatever survives the seqlock must decode to a real type and
        // a plausible payload; torn slots are dropped, not mangled.
        EXPECT_LT(static_cast<std::uint64_t>(e.type), 7u);
        EXPECT_GE(e.seq, 1u);
        EXPECT_LE(e.detail.size(), EventRing::kDetailBytes);
      }
      (void)ring.dump(8);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.push(static_cast<EventType>(i % 7), t, i, "stress detail");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scanner.join();

  EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
  // Quiescent: the ring holds the newest kSlots events, oldest first.
  // A slot two writers raced across a lap may retain the older ticket
  // and be dropped by recent() — lossy by design, so allow a few gaps
  // (at most one racing writer per thread at join time).
  const std::vector<Event> events = ring.recent();
  ASSERT_LE(events.size(), EventRing::kSlots);
  EXPECT_GE(events.size(), EventRing::kSlots - kThreads);
  EXPECT_GE(events.back().seq, kThreads * kPerThread - kThreads);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

TEST(ObsStress, ConcurrentSpansAggregateExactly) {
  reset_stage_totals();
  constexpr std::uint64_t kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Span outer(Stage::kServe, 10);
        Span inner(Stage::kVerify);
      }
      flush_thread_stats();
    });
  }
  for (std::thread& thread : threads) thread.join();

  const StageTotals totals = stage_totals();
  EXPECT_EQ(totals[Stage::kServe].count, kThreads * kPerThread);
  EXPECT_EQ(totals[Stage::kServe].bytes, kThreads * kPerThread * 10);
  EXPECT_EQ(totals[Stage::kVerify].count, kThreads * kPerThread);
  reset_stage_totals();
}

TEST(ObsStress, ConcurrentTracingCapturesEverySpan) {
  set_tracing(true);
  clear_trace_events();
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        Span span(Stage::kEncode, i);
      }
      flush_thread_stats();
    });
  }
  for (std::thread& thread : threads) thread.join();
  set_tracing(false);

  EXPECT_EQ(trace_event_count(), kThreads * kPerThread);
  const std::string json = trace_events_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  clear_trace_events();
  reset_stage_totals();
}

}  // namespace
}  // namespace ipd::obs
