#include "delta/suffix_differ.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "apply/apply.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "delta/greedy_differ.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

TEST(SuffixMatcher, SuffixArrayIsSorted) {
  const Bytes data = to_bytes("banana");
  const SuffixMatcher matcher(data);
  const auto& sa = matcher.suffix_array();
  ASSERT_EQ(sa.size(), 6u);
  // banana suffixes sorted: a, ana, anana, banana, na, nana.
  EXPECT_EQ(sa, (std::vector<std::uint32_t>{5, 3, 1, 0, 4, 2}));
}

TEST(SuffixMatcher, SuffixArraySortedOnRandomInput) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Bytes data = random_bytes(seed, 500);
    const SuffixMatcher matcher(data);
    const auto& sa = matcher.suffix_array();
    for (std::size_t i = 1; i < sa.size(); ++i) {
      const ByteView a = ByteView(data).subspan(sa[i - 1]);
      const ByteView b = ByteView(data).subspan(sa[i]);
      EXPECT_TRUE(std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                               b.end()))
          << "seed " << seed << " at " << i;
    }
  }
}

TEST(SuffixMatcher, FindsExactSubstring) {
  const Bytes data = to_bytes("the quick brown fox jumps");
  const SuffixMatcher matcher(data);
  const auto m = matcher.longest_match(to_bytes("brown fox stew"));
  EXPECT_EQ(m.position, 10u);
  EXPECT_EQ(m.length, 10u);  // "brown fox "
}

TEST(SuffixMatcher, MatchesLongestAgainstBruteForce) {
  Rng rng(9);
  const Bytes ref = random_bytes(10, 800);
  const SuffixMatcher matcher(ref);
  for (int trial = 0; trial < 200; ++trial) {
    // Queries built from reference slices + noise so matches exist.
    Bytes query;
    const std::size_t at = rng.below(ref.size());
    const std::size_t n = rng.below(ref.size() - at) % 60;
    query.insert(query.end(), ref.begin() + static_cast<std::ptrdiff_t>(at),
                 ref.begin() + static_cast<std::ptrdiff_t>(at + n));
    query.push_back(static_cast<std::uint8_t>(rng.below(256)));

    // Brute force longest prefix of query occurring in ref.
    std::size_t best = 0;
    for (std::size_t s = 0; s < ref.size(); ++s) {
      std::size_t k = 0;
      while (s + k < ref.size() && k < query.size() &&
             ref[s + k] == query[k]) {
        ++k;
      }
      best = std::max(best, k);
    }
    EXPECT_EQ(matcher.longest_match(query).length, best)
        << "trial " << trial;
  }
}

TEST(SuffixMatcher, EmptyInputs) {
  const SuffixMatcher empty(ByteView{});
  EXPECT_EQ(empty.longest_match(to_bytes("abc")).length, 0u);
  const SuffixMatcher nonempty(to_bytes("abc"));
  EXPECT_EQ(nonempty.longest_match({}).length, 0u);
}

TEST(SuffixDiffer, RoundTripsAcrossProfiles) {
  Rng rng(4);
  for (const FileProfile profile :
       {FileProfile::kText, FileProfile::kBinary, FileProfile::kRecords}) {
    const Bytes ref = generate_file(rng, 8000, profile);
    const Bytes ver = mutate(ref, rng, 10);
    const Script script = SuffixDiffer(DifferOptions{}).diff(ref, ver);
    ASSERT_NO_THROW(script.validate(ref.size(), ver.size()));
    EXPECT_TRUE(test::bytes_equal(ver, apply_script(script, ref)))
        << profile_name(profile);
  }
}

TEST(SuffixDiffer, NeverCopiesLessThanHashedGreedy) {
  // The exact longest-match greedy is the compression ceiling: on any
  // input it copies at least as many bytes as the chain-capped greedy
  // with the same min_match.
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Bytes ref = generate_file(rng, 12000, FileProfile::kText);
    const Bytes ver = mutate(ref, rng, 12);
    DifferOptions options;
    options.seed_length = 16;
    options.min_match = 16;
    const Script exact = SuffixDiffer(options).diff(ref, ver);
    const Script hashed = GreedyDiffer(options).diff(ref, ver);
    EXPECT_LE(exact.summary().added_bytes, hashed.summary().added_bytes)
        << "trial " << trial;
  }
}

TEST(SuffixDiffer, FindsShortMatchesHashDifferCannot) {
  // min_match below the hash differ's seed size: the suffix differ can
  // exploit 4-byte matches.
  const Bytes ref = to_bytes("abcdXXXXefghYYYYijkl");
  const Bytes ver = to_bytes("abcdefghijkl");
  DifferOptions options;
  options.min_match = 4;
  const Script script = SuffixDiffer(options).diff(ref, ver);
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(script, ref)));
  EXPECT_EQ(script.summary().added_bytes, 0u);
  EXPECT_EQ(script.summary().copy_count, 3u);
}

TEST(SuffixDiffer, IdenticalFilesSingleCopy) {
  const Bytes file = random_bytes(6, 5000);
  const Script script = SuffixDiffer(DifferOptions{}).diff(file, file);
  EXPECT_EQ(script.summary().copy_count, 1u);
  EXPECT_EQ(script.summary().added_bytes, 0u);
}

TEST(SuffixDiffer, EmptyAndDegenerate) {
  EXPECT_TRUE(SuffixDiffer(DifferOptions{}).diff({}, {}).empty());
  const Bytes ver = random_bytes(7, 100);
  const Script script = SuffixDiffer(DifferOptions{}).diff({}, ver);
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(script, {})));
}

}  // namespace
}  // namespace ipd
