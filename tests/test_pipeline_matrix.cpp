// Exhaustive configuration-matrix sweep: every combination of differ,
// cycle policy, codeword family, payload compression, add coalescing,
// and application path (batch / streaming / device updater / journaled
// updater) must reconstruct the version byte-for-byte on a fixed set of
// workloads. This is the widest net in the suite — any interaction bug
// between two knobs surfaces here.
#include <gtest/gtest.h>

#include "apply/stream_applier.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "device/resumable_updater.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

struct MatrixCase {
  DifferKind differ;
  BreakPolicy policy;
  Codeword codeword;
  bool compress;
  bool coalesce;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = std::string(differ_name(c.differ)) + "_" +
                     policy_name(c.policy) + "_" +
                     (c.codeword == Codeword::kPaperByte ? "paper" : "varint") +
                     (c.compress ? "_lzss" : "") +
                     (c.coalesce ? "_coal" : "_nocoal");
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

std::vector<MatrixCase> make_cases() {
  std::vector<MatrixCase> cases;
  for (const DifferKind differ :
       {DifferKind::kGreedy, DifferKind::kOnePass}) {
    for (const BreakPolicy policy :
         {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin,
          BreakPolicy::kSccGlobalMin}) {
      for (const Codeword codeword :
           {Codeword::kPaperByte, Codeword::kVarint}) {
        for (const bool compress : {false, true}) {
          // Coalescing varies only on one policy to bound the product.
          cases.push_back({differ, policy, codeword, compress, true});
          if (policy == BreakPolicy::kLocalMin && !compress) {
            cases.push_back({differ, policy, codeword, compress, false});
          }
        }
      }
    }
  }
  return cases;
}

class PipelineMatrix : public ::testing::TestWithParam<MatrixCase> {
 protected:
  PipelineOptions options() const {
    const MatrixCase& c = GetParam();
    PipelineOptions o;
    o.differ = c.differ;
    o.convert.policy = c.policy;
    o.format = DeltaFormat{c.codeword, WriteOffsets::kExplicit};
    o.convert.coalesce_adds = c.coalesce;
    o.compress_payload = c.compress;
    return o;
  }

  struct Workload {
    const char* name;
    Bytes ref;
    Bytes ver;
  };

  static std::vector<Workload> workloads() {
    std::vector<Workload> w;
    Rng rng(0x3A3);
    // Moved-block text file (cycles likely).
    {
      Bytes ref = generate_file(rng, 24000, FileProfile::kText);
      Bytes ver = ref;
      for (int i = 0; i < 4000; ++i) std::swap(ver[i], ver[i + 12000]);
      w.push_back({"text-swap", std::move(ref), std::move(ver)});
    }
    // Binary with mixed edits, growing.
    {
      Bytes ref = generate_file(rng, 30000, FileProfile::kBinary);
      Bytes ver = mutate(ref, rng, 20);
      w.push_back({"binary-mutate", std::move(ref), std::move(ver)});
    }
    // Shrinking version.
    {
      Bytes ref = generate_file(rng, 20000, FileProfile::kBinary);
      Bytes ver(ref.begin() + 3000, ref.begin() + 15000);
      w.push_back({"shrink", std::move(ref), std::move(ver)});
    }
    return w;
  }
};

INSTANTIATE_TEST_SUITE_P(Matrix, PipelineMatrix,
                         ::testing::ValuesIn(make_cases()), case_name);

TEST_P(PipelineMatrix, BatchApply) {
  for (const auto& load : workloads()) {
    const Bytes delta = Pipeline(options()).build_inplace(load.ref, load.ver).delta;
    Bytes buffer = load.ref;
    buffer.resize(std::max(load.ref.size(), load.ver.size()));
    const length_t n = apply_delta_inplace(delta, buffer);
    ASSERT_EQ(n, load.ver.size()) << load.name;
    ASSERT_TRUE(test::bytes_equal(load.ver, ByteView(buffer).first(n)))
        << load.name;
  }
}

TEST_P(PipelineMatrix, StreamingApplyWhenUncompressed) {
  if (GetParam().compress) {
    GTEST_SKIP() << "streaming rejects compressed payloads by design";
  }
  for (const auto& load : workloads()) {
    const Bytes delta = Pipeline(options()).build_inplace(load.ref, load.ver).delta;
    Bytes buffer = load.ref;
    buffer.resize(std::max(load.ref.size(), load.ver.size()));
    const length_t n = apply_delta_inplace_streaming(delta, buffer, 333);
    ASSERT_TRUE(test::bytes_equal(load.ver, ByteView(buffer).first(n)))
        << load.name;
  }
}

TEST_P(PipelineMatrix, DeviceUpdater) {
  const auto loads = workloads();
  const auto& load = loads[1];  // binary-mutate fits the device nicely
  const Bytes delta = Pipeline(options()).build_inplace(load.ref, load.ver).delta;
  FlashDevice dev(64 << 10, 1024, delta.size() + (16 << 10));
  dev.load_image(load.ref);
  const UpdateResult r = apply_update(dev, delta, channel_56k());
  ASSERT_TRUE(r.crc_verified);
  ASSERT_TRUE(test::bytes_equal(
      load.ver, ByteView(dev.inspect()).first(load.ver.size())));
}

TEST_P(PipelineMatrix, JournaledUpdaterWithMidwayCrash) {
  const auto loads = workloads();
  const auto& load = loads[0];  // text-swap: conversion-heavy
  const Bytes delta = Pipeline(options()).build_inplace(load.ref, load.ver).delta;

  const std::size_t image_area = 48 << 10;
  const JournalRegion journal{image_area, 16 << 10};
  FlashDevice dev(image_area + journal.size, 512,
                  delta.size() + (32 << 10));
  dev.load_image(load.ref);
  clear_journal(dev, journal);

  dev.inject_power_failure_after(10 << 10);
  try {
    apply_update_resumable(dev, delta, channel_56k(), journal);
  } catch (const FlashDevice::PowerFailure&) {
    dev.clear_power_failure();
    const ResumableUpdateResult r =
        apply_update_resumable(dev, delta, channel_56k(), journal);
    ASSERT_TRUE(r.resumed);
  }
  dev.clear_power_failure();
  ASSERT_TRUE(test::bytes_equal(
      load.ver, ByteView(dev.inspect()).first(load.ver.size())));
}

}  // namespace
}  // namespace ipd
