#include "core/varint.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/rng.hpp"

namespace ipd {
namespace {

TEST(Varint, EncodesZeroAsSingleByte) {
  Bytes out;
  append_varint(out, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(Varint, SmallValuesAreOneByte) {
  for (std::uint64_t v = 0; v < 128; ++v) {
    EXPECT_EQ(varint_size(v), 1u) << v;
  }
}

TEST(Varint, BoundaryLengths) {
  // Every 7-bit boundary adds a byte.
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 3u);
  EXPECT_EQ(varint_size(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 255, 256, 16383, 16384, 0xFFFF, 0x10000,
      0xFFFFFFFFull, 0x100000000ull, std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    Bytes out;
    append_varint(out, v);
    EXPECT_EQ(out.size(), varint_size(v)) << v;
    const VarintResult r = decode_varint(out);
    EXPECT_EQ(r.value, v);
    EXPECT_EQ(r.consumed, out.size());
  }
}

TEST(Varint, RoundTripRandom) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    // Vary magnitude so all lengths are exercised.
    const std::uint64_t v = rng.next() >> (rng.below(64));
    Bytes out;
    append_varint(out, v);
    const VarintResult r = decode_varint(out);
    EXPECT_EQ(r.value, v);
    EXPECT_EQ(r.consumed, out.size());
  }
}

TEST(Varint, DecodeConsumesOnlyItsBytes) {
  Bytes out;
  append_varint(out, 300);
  out.push_back(0xAB);  // trailing data
  const VarintResult r = decode_varint(out);
  EXPECT_EQ(r.value, 300u);
  EXPECT_EQ(r.consumed, 2u);
}

TEST(Varint, ThrowsOnEmptyInput) {
  EXPECT_THROW(decode_varint(ByteView{}), FormatError);
}

TEST(Varint, ThrowsOnTruncatedInput) {
  Bytes out;
  append_varint(out, 1u << 20);
  out.pop_back();  // drop terminator byte
  EXPECT_THROW(decode_varint(out), FormatError);
}

TEST(Varint, ThrowsOnOverlongEncoding) {
  // 11 continuation bytes can never terminate within the 10-byte cap.
  const Bytes overlong(11, 0x80);
  EXPECT_THROW(decode_varint(overlong), FormatError);
}

TEST(Varint, ThrowsOnOverflowIn10thByte) {
  // 9 continuation bytes then a 10th byte > 1 overflows 64 bits.
  Bytes bad(9, 0x80);
  bad.push_back(0x02);
  EXPECT_THROW(decode_varint(bad), FormatError);
}

TEST(Varint, TryDecodeReturnsNulloptInsteadOfThrowing) {
  EXPECT_FALSE(try_decode_varint(ByteView{}).has_value());
  Bytes ok;
  append_varint(ok, 7);
  ASSERT_TRUE(try_decode_varint(ok).has_value());
  EXPECT_EQ(try_decode_varint(ok)->value, 7u);
}

TEST(Varint, EncodeVarintMatchesAppendVarint) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next() >> rng.below(64);
    std::uint8_t buf[kMaxVarintBytes];
    const std::size_t n = encode_varint(buf, v);
    Bytes appended;
    append_varint(appended, v);
    ASSERT_EQ(n, appended.size());
    EXPECT_TRUE(std::equal(buf, buf + n, appended.begin()));
  }
}

}  // namespace
}  // namespace ipd
