#include "delta/optimize.hpp"

#include <gtest/gtest.h>

#include "apply/apply.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

void expect_same_version(const Script& before, const Script& after,
                         ByteView reference) {
  EXPECT_TRUE(test::bytes_equal(apply_script(before, reference),
                                apply_script(after, reference)));
}

TEST(Optimize, MergesAbuttingAdds) {
  const Script s = script_of({A(0, "ab"), A(2, "cd"), A(4, "ef")});
  OptimizeReport report;
  const Script out = optimize_script(s, {}, {}, &report);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(report.adds_merged, 2u);
  expect_same_version(s, out, {});
}

TEST(Optimize, MergesContinuingCopies) {
  const Bytes ref = test::ramp_bytes(100);
  const Script s = script_of({C(10, 0, 20), C(30, 20, 20), C(50, 40, 5)});
  OptimizeReport report;
  const Script out = optimize_script(s, ref, {}, &report);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(report.copies_merged, 2u);
  expect_same_version(s, out, ref);
}

TEST(Optimize, DoesNotMergeNonContinuingCopies) {
  const Bytes ref = test::ramp_bytes(100);
  // Adjacent writes but source jumps: must stay two commands.
  const Script s = script_of({C(10, 0, 20), C(50, 20, 20)});
  const Script out = optimize_script(s, ref);
  EXPECT_EQ(out.size(), 2u);
  expect_same_version(s, out, ref);
}

TEST(Optimize, DemotesCopiesWhoseAddIsSmaller) {
  const Bytes ref = test::ramp_bytes(0x20000);
  // 2-byte copy with a wide (3-byte-class) from offset: paper format
  // encodes the copy in 1+4+4+1 = 10 bytes vs add 1+4+1+2 = 8 bytes.
  const Script s = script_of({C(0x10000, 0, 2), A(2, "xyz")});
  OptimizeReport report;
  const Script out = optimize_script(s, ref, {}, &report);
  EXPECT_EQ(report.copies_demoted, 1u);
  EXPECT_EQ(out.summary().copy_count, 0u);
  expect_same_version(s, out, ref);
}

TEST(Optimize, DemotionDisabledWithoutReference) {
  const Script s = script_of({C(0x10000, 0, 2)});
  OptimizeReport report;
  const Script out = optimize_script(s, {}, {}, &report);
  EXPECT_EQ(report.copies_demoted, 0u);
  EXPECT_EQ(out.summary().copy_count, 1u);
}

TEST(Optimize, DemotedCopyMergesIntoNeighbouringAdds) {
  const Bytes ref = test::ramp_bytes(0x20000);
  const Script s = script_of({A(0, "ab"), C(0x10000, 2, 2), A(4, "cd")});
  const Script out = optimize_script(s, ref);
  EXPECT_EQ(out.size(), 1u);  // one merged add covering [0,6)
  expect_same_version(s, out, ref);
}

TEST(Optimize, SortsIntoWriteOrder) {
  const Bytes ref = test::ramp_bytes(100);
  const Script s = script_of({C(50, 40, 5), A(0, "ab"), C(10, 2, 38)});
  const Script out = optimize_script(s, ref);
  EXPECT_TRUE(out.in_write_order());
  expect_same_version(s, out, ref);
}

TEST(Optimize, OptionsDisableEachRewrite) {
  const Bytes ref = test::ramp_bytes(100);
  const Script s =
      script_of({A(0, "ab"), A(2, "cd"), C(10, 4, 20), C(30, 24, 20)});
  OptimizeOptions off;
  off.merge_adds = false;
  off.merge_copies = false;
  off.demote_short_copies = false;
  const Script out = optimize_script(s, ref, off);
  EXPECT_EQ(out.size(), s.size());
  expect_same_version(s, out, ref);
}

TEST(Optimize, DropsZeroLengthCommands) {
  Script s;
  s.push(CopyCommand{0, 0, 0});
  s.push(AddCommand{0, {}});
  s.push(AddCommand{0, to_bytes("ok")});
  const Script out = optimize_script(s, {});
  EXPECT_EQ(out.size(), 1u);
}

TEST(Optimize, EmptyScript) {
  OptimizeReport report;
  EXPECT_TRUE(optimize_script(Script{}, {}, {}, &report).empty());
  EXPECT_EQ(report.bytes_saved, 0u);
}

TEST(Optimize, ReportsBytesSavedConsistentWithEncoding) {
  const Bytes ref = test::ramp_bytes(4096);
  // Fragmented output typical of a differ on noisy input.
  Script s;
  offset_t to = 0;
  for (int i = 0; i < 50; ++i) {
    s.push(CopyCommand{static_cast<offset_t>(i * 40), to, 20});
    to += 20;
    s.push(AddCommand{to, Bytes(3, static_cast<std::uint8_t>(i))});
    to += 3;
    s.push(AddCommand{to, Bytes(3, static_cast<std::uint8_t>(i + 1))});
    to += 3;
  }
  OptimizeReport report;
  const Script out = optimize_script(s, ref, {}, &report);
  EXPECT_GT(report.adds_merged, 0u);
  expect_same_version(s, out, ref);

  DeltaFile before, after;
  before.format = after.format = kPaperExplicit;
  before.reference_length = after.reference_length = ref.size();
  before.version_length = after.version_length = s.version_length();
  before.script = s;
  after.script = out;
  EXPECT_LT(serialize_delta(after).size(), serialize_delta(before).size());
}

}  // namespace
}  // namespace ipd
