// Tests for core/io.hpp and core/hexdump.hpp.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/hexdump.hpp"
#include "core/io.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipdelta_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, RoundTrip) {
  const Bytes data = test::random_bytes(5, 10000);
  const auto path = dir_ / "blob.bin";
  write_file(path, data);
  EXPECT_TRUE(test::bytes_equal(data, read_file(path)));
}

TEST_F(IoTest, EmptyFile) {
  const auto path = dir_ / "empty.bin";
  write_file(path, ByteView{});
  EXPECT_TRUE(read_file(path).empty());
}

TEST_F(IoTest, OverwriteTruncates) {
  const auto path = dir_ / "blob.bin";
  write_file(path, test::random_bytes(6, 100));
  write_file(path, test::random_bytes(7, 10));
  EXPECT_EQ(read_file(path).size(), 10u);
}

TEST_F(IoTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_file(dir_ / "nope.bin"), IoError);
}

TEST_F(IoTest, WriteToMissingDirectoryThrows) {
  EXPECT_THROW(write_file(dir_ / "no_dir" / "f.bin", ByteView{}), IoError);
}

TEST(Hexdump, FormatsOffsetsHexAndAscii) {
  const Bytes data = to_bytes("Hi\x01");
  const std::string dump = hexdump(data);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("48 69 01"), std::string::npos);
  EXPECT_NE(dump.find("|Hi.|"), std::string::npos);
}

TEST(Hexdump, RespectsBaseOffset) {
  const Bytes data = {0xAA};
  const std::string dump = hexdump(data, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
}

TEST(Hexdump, TruncatesWithEllipsis) {
  const Bytes data(16 * 100, 0);
  const std::string dump = hexdump(data, 0, 4);
  EXPECT_NE(dump.find("more bytes"), std::string::npos);
  // 4 rows + ellipsis line.
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 5);
}

TEST(Hexdump, EmptyInputYieldsEmptyDump) {
  EXPECT_TRUE(hexdump(ByteView{}).empty());
}

}  // namespace
}  // namespace ipd
