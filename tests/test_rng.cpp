#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ipd {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(10);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, PowerLawRespectsCap) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const length_t len = rng.power_law_length(100);
    EXPECT_GE(len, 1u);
    EXPECT_LE(len, 100u);
  }
}

TEST(Rng, PowerLawIsHeavyTailed) {
  Rng rng(14);
  int small = 0, large = 0;
  for (int i = 0; i < 10000; ++i) {
    const length_t len = rng.power_law_length(1 << 20);
    if (len <= 2) ++small;
    if (len > 1024) ++large;
  }
  EXPECT_GT(small, 3000);  // ~half the draws stop at the first doubling
  EXPECT_GT(large, 1);     // but the tail reaches kilobytes
}

TEST(Rng, FillCoversPartialWords) {
  Rng rng(15);
  for (const std::size_t size : {0ul, 1ul, 7ul, 8ul, 9ul, 31ul}) {
    Bytes buf(size, 0xCC);
    rng.fill(buf);
    if (size >= 16) {
      // Vanishingly unlikely to stay all-0xCC.
      EXPECT_NE(std::count(buf.begin(), buf.end(), 0xCC),
                static_cast<std::ptrdiff_t>(size));
    }
  }
}

}  // namespace
}  // namespace ipd
