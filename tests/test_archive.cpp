#include "archive/archive.hpp"

#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

FileSet make_release(std::uint64_t seed, int files = 5) {
  Rng rng(seed);
  FileSet release;
  for (int i = 0; i < files; ++i) {
    const FileProfile profile =
        i % 2 == 0 ? FileProfile::kText : FileProfile::kBinary;
    release["pkg/file" + std::to_string(i)] =
        generate_file(rng, rng.range(2000, 20000), profile);
  }
  return release;
}

FileSet evolve(const FileSet& release, std::uint64_t seed) {
  Rng rng(seed);
  FileSet next;
  for (const auto& [name, content] : release) {
    next[name] = mutate(content, rng, 6);
  }
  return next;
}

TEST(Archive, RoundTripUpgradesRelease) {
  const FileSet v1 = make_release(1);
  const FileSet v2 = evolve(v1, 2);

  ArchiveBuildReport report;
  const Bytes wire = build_archive_bytes(v1, v2, {}, &report);
  EXPECT_EQ(report.delta_entries, v1.size());
  EXPECT_EQ(report.literal_entries, 0u);
  EXPECT_EQ(report.delete_entries, 0u);
  EXPECT_LT(wire.size(), report.new_release_bytes);
  EXPECT_EQ(report.archive_bytes, wire.size());

  FileSet mirror = v1;
  apply_archive(deserialize_archive(wire), mirror);
  EXPECT_EQ(mirror, v2);
}

TEST(Archive, HandlesAddedRemovedAndChangedFiles) {
  const FileSet v1 = make_release(3);
  FileSet v2 = evolve(v1, 4);
  v2.erase(v2.begin()->first);                  // one file removed
  v2["pkg/brand_new"] = test::random_bytes(5, 3000);  // one added

  ArchiveBuildReport report;
  const Bytes wire = build_archive_bytes(v1, v2, {}, &report);
  EXPECT_EQ(report.delete_entries, 1u);
  EXPECT_GE(report.literal_entries, 1u);

  FileSet mirror = v1;
  apply_archive(deserialize_archive(wire), mirror);
  EXPECT_EQ(mirror, v2);
}

TEST(Archive, UnrelatedContentFallsBackToLiteral) {
  FileSet v1, v2;
  v1["f"] = test::random_bytes(1, 10000);
  v2["f"] = test::random_bytes(2, 10000);  // nothing in common

  ArchiveBuildReport report;
  const Bytes wire = build_archive_bytes(v1, v2, {}, &report);
  EXPECT_EQ(report.delta_entries, 0u);
  EXPECT_EQ(report.literal_entries, 1u);

  FileSet mirror = v1;
  apply_archive(deserialize_archive(wire), mirror);
  EXPECT_EQ(mirror, v2);
}

TEST(Archive, FileSizeChangesBothWays) {
  FileSet v1, v2;
  Rng rng(9);
  v1["grows"] = generate_file(rng, 4000, FileProfile::kText);
  v1["shrinks"] = generate_file(rng, 9000, FileProfile::kBinary);
  v2["grows"] = v1["grows"];
  v2["grows"].insert(v2["grows"].end(), 3000, 'x');
  v2["shrinks"] = Bytes(v1["shrinks"].begin(), v1["shrinks"].begin() + 2500);

  FileSet mirror = v1;
  apply_archive(deserialize_archive(build_archive_bytes(v1, v2)), mirror);
  EXPECT_EQ(mirror, v2);
}

TEST(Archive, EmptyUpgrade) {
  const FileSet v1 = make_release(7, 2);
  const Bytes wire = build_archive_bytes(v1, v1);
  FileSet mirror = v1;
  apply_archive(deserialize_archive(wire), mirror);
  EXPECT_EQ(mirror, v1);
}

TEST(Archive, EmptyReleases) {
  const Bytes wire = build_archive_bytes({}, {});
  FileSet mirror;
  apply_archive(deserialize_archive(wire), mirror);
  EXPECT_TRUE(mirror.empty());
}

TEST(Archive, CorruptionRejected) {
  const FileSet v1 = make_release(11, 2);
  const FileSet v2 = evolve(v1, 12);
  Bytes wire = build_archive_bytes(v1, v2);
  for (const std::size_t at : {0ul, 4ul, wire.size() / 2, wire.size() - 1}) {
    Bytes bad = wire;
    bad[at] ^= 0x40;
    EXPECT_THROW(deserialize_archive(bad), FormatError) << "at " << at;
  }
  EXPECT_THROW(deserialize_archive(ByteView(wire).first(wire.size() - 1)),
               FormatError);
  EXPECT_THROW(deserialize_archive(ByteView(wire).first(3)), FormatError);
}

TEST(Archive, ApplyRejectsMismatchedRelease) {
  const FileSet v1 = make_release(13, 2);
  const FileSet v2 = evolve(v1, 14);
  const Archive archive = deserialize_archive(build_archive_bytes(v1, v2));

  // Missing target file.
  FileSet missing = v1;
  missing.erase(missing.begin()->first);
  EXPECT_THROW(apply_archive(archive, missing), ValidationError);

  // Wrong base content: caught by the per-file version CRC.
  FileSet tampered = v1;
  tampered.begin()->second[0] ^= 0xFF;
  EXPECT_THROW(apply_archive(archive, tampered), Error);
}

TEST(Archive, ChainOfReleases) {
  // v1 -> v2 -> v3 applied in sequence to one mirror.
  const FileSet v1 = make_release(21);
  const FileSet v2 = evolve(v1, 22);
  const FileSet v3 = evolve(v2, 23);

  FileSet mirror = v1;
  apply_archive(deserialize_archive(build_archive_bytes(v1, v2)), mirror);
  apply_archive(deserialize_archive(build_archive_bytes(v2, v3)), mirror);
  EXPECT_EQ(mirror, v3);
}

TEST(Archive, CompressedDeltasInsideArchive) {
  const FileSet v1 = make_release(31);
  const FileSet v2 = evolve(v1, 32);
  ArchiveBuildOptions options;
  options.pipeline.compress_payload = true;
  ArchiveBuildReport compressed_report;
  const Bytes compressed =
      build_archive_bytes(v1, v2, options, &compressed_report);
  ArchiveBuildReport plain_report;
  const Bytes plain = build_archive_bytes(v1, v2, {}, &plain_report);
  EXPECT_LE(compressed.size(), plain.size());

  FileSet mirror = v1;
  apply_archive(deserialize_archive(compressed), mirror);
  EXPECT_EQ(mirror, v2);
}

TEST(Archive, SerializeRejectsDeleteWithBody) {
  Archive archive;
  archive.entries.push_back(
      ArchiveEntry{EntryKind::kDelete, "f", to_bytes("junk")});
  EXPECT_THROW(serialize_archive(archive), ValidationError);
}

}  // namespace
}  // namespace ipd
