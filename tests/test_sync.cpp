// core/sync.hpp: annotated primitives behave like the std types they
// wrap, and — under IPDELTA_SANITIZE=lockorder — the lock-order
// validator catches inversions, recursive acquisition, and forgets
// destroyed mutexes (address reuse must not report phantom cycles).
#include "core/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace ipd {
namespace {

TEST(Sync, MutexLockGuardsACounter) {
  Mutex m("counter");
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(m);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4000);
}

TEST(Sync, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex m;
  m.lock();
  std::atomic<bool> grabbed{true};
  std::thread t([&] { grabbed = m.try_lock(); });
  t.join();
  EXPECT_FALSE(grabbed.load());
  m.unlock();
  ASSERT_TRUE(m.try_lock());
  m.unlock();
}

TEST(Sync, SharedMutexAllowsConcurrentReaders) {
  SharedMutex m("rw");
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ReaderLock lock(m);
        int now = ++readers_inside;
        int seen = max_readers.load();
        while (now > seen && !max_readers.compare_exchange_weak(seen, now)) {
        }
        --readers_inside;
      }
    });
  }
  for (auto& th : threads) th.join();
  // Not guaranteed by the API, but with 4 spinning readers on a
  // multi-core host overlap is effectively certain; the real assertion
  // is that nothing deadlocked or tripped the validator.
  EXPECT_GE(max_readers.load(), 1);
}

TEST(Sync, WriterLockExcludesReaders) {
  SharedMutex m;
  int value = 0;
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        WriterLock lock(m);
        ++value;
      }
    });
  }
  for (auto& th : threads) th.join();
  ReaderLock lock(m);
  EXPECT_EQ(value, 1500);
}

TEST(Sync, ConditionVariableWakesWaiter) {
  Mutex m("cv");
  ConditionVariable cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&] {
    UniqueLock lock(m);
    while (!ready) cv.wait(lock);
    observed = 42;
  });
  {
    MutexLock lock(m);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(Sync, ConditionVariableWaitUntilTimesOut) {
  Mutex m;
  ConditionVariable cv;
  UniqueLock lock(m);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(5);
  // Nothing ever notifies: the wait must come back with timeout and the
  // lock must still be held (unlock in the destructor must not abort).
  EXPECT_EQ(cv.wait_until(lock, deadline), std::cv_status::timeout);
}

TEST(Sync, UniqueLockSupportsMidScopeUnlockRelock) {
  Mutex m;
  int value = 0;
  UniqueLock lock(m);
  value = 1;
  lock.unlock();
  {
    MutexLock other(m);  // must not self-deadlock: lock is released
    value = 2;
  }
  lock.lock();
  EXPECT_EQ(value, 2);
}

// Regression: parallel_for once read the captured exception pointer
// WITHOUT the mutex after observing the done-counter, leaning on a
// release-sequence argument that lived only in a comment. The read now
// happens under the lock; a throwing chunk must reach the caller every
// time, at any interleaving, with every chunk still running exactly
// once.
TEST(Sync, ParallelForPropagatesChunkExceptionsUnderStress) {
  ThreadPool pool(4);
  ParallelContext ctx{&pool, 4};
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> ran{0};
    try {
      parallel_for(ctx, 16, [&](std::size_t chunk) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (chunk == 7) throw std::runtime_error("chunk 7 failed");
      });
      FAIL() << "parallel_for swallowed the chunk exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 7 failed");
    }
    EXPECT_EQ(ran.load(), 16);
  }
}

#if defined(IPDELTA_LOCK_ORDER)

TEST(LockOrderDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("order-a");
        Mutex b("order-b");
        {
          MutexLock la(a);
          MutexLock lb(b);  // records a -> b
        }
        {
          MutexLock lb(b);
          MutexLock la(a);  // b -> a closes the cycle: abort
        }
      },
      "lock-order inversion");
}

TEST(LockOrderDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex m("recursive");
        m.lock();
        m.lock();
      },
      "recursive acquisition");
}

TEST(LockOrderDeathTest, CrossThreadInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The validator flags the *order*, not an actual collision: thread 1
  // finishes completely before thread 2 starts, yet the inverse orders
  // are still a latent deadlock and must abort.
  EXPECT_DEATH(
      {
        Mutex a("xt-a");
        Mutex b("xt-b");
        std::thread t1([&] {
          MutexLock la(a);
          MutexLock lb(b);
        });
        t1.join();
        std::thread t2([&] {
          MutexLock lb(b);
          MutexLock la(a);
        });
        t2.join();
      },
      "lock-order inversion");
}

TEST(LockOrder, ConsistentOrderIsQuiet) {
  Mutex a("quiet-a");
  Mutex b("quiet-b");
  for (int i = 0; i < 100; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
}

TEST(LockOrder, TransitiveChainIsQuiet) {
  Mutex a("chain-a");
  Mutex b("chain-b");
  Mutex c("chain-c");
  {
    MutexLock la(a);
    MutexLock lb(b);
    MutexLock lc(c);
  }
  {
    MutexLock la(a);
    MutexLock lc(c);  // consistent with a ->* c
  }
}

TEST(LockOrderDeathTest, TransitiveInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("tr-a");
        Mutex b("tr-b");
        Mutex c("tr-c");
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);
        }
        {
          MutexLock lc(c);
          MutexLock la(a);  // c -> a inverts a -> b -> c
        }
      },
      "lock-order inversion");
}

TEST(LockOrder, DestroyedMutexEdgesAreForgotten) {
  // A destroyed mutex's graph node must vanish: the next allocation is
  // likely to reuse its address, and stale edges would report a phantom
  // inversion between unrelated locks.
  Mutex a("reuse-a");
  for (int i = 0; i < 32; ++i) {
    auto b = std::make_unique<Mutex>("reuse-b");
    MutexLock la(a);
    MutexLock lb(*b);  // a -> b(i); b(i) freed each iteration
  }
  auto c = std::make_unique<Mutex>("reuse-c");
  MutexLock lc(*c);
  MutexLock la(a);  // would cycle against a stale a -> (c's address) edge
}

TEST(LockOrder, ConditionVariableWaitKeepsHeldStackBalanced) {
  // cv.wait internally unlocks and relocks the mutex behind the
  // wrapper's back; the wrapper mirrors that into the validator. If it
  // failed to (pop on wait, push on wake), the waiter's held stack
  // would keep a stale entry for m after the UniqueLock dies, and every
  // later acquisition on that thread would record phantom m -> X edges
  // — making the x -> m order below a phantom inversion.
  Mutex m("cvw-m");
  Mutex x("cvw-x");
  ConditionVariable cv;
  bool ready = false;
  std::thread waiter([&] {
    {
      UniqueLock lock(m);
      while (!ready) cv.wait(lock);
    }
    MutexLock lx(x);  // held stack must be empty here: no m -> x edge
  });
  {
    MutexLock lm(m);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  MutexLock lx(x);
  MutexLock lm(m);  // x -> m is the only recorded order: quiet
}

#else

TEST(LockOrder, ValidatorCompiledOut) {
  GTEST_SKIP() << "build with -DIPDELTA_SANITIZE=lockorder";
}

#endif  // IPDELTA_LOCK_ORDER

}  // namespace
}  // namespace ipd
