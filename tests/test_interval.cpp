#include "core/interval.hpp"

#include <gtest/gtest.h>

namespace ipd {
namespace {

TEST(Interval, OfStartLength) {
  const Interval iv = Interval::of(10, 5);
  EXPECT_EQ(iv.first, 10u);
  EXPECT_EQ(iv.last, 14u);
  EXPECT_EQ(iv.length(), 5u);
}

TEST(Interval, SingleByte) {
  const Interval iv = Interval::of(7, 1);
  EXPECT_EQ(iv.first, 7u);
  EXPECT_EQ(iv.last, 7u);
  EXPECT_EQ(iv.length(), 1u);
  EXPECT_TRUE(iv.contains(7));
  EXPECT_FALSE(iv.contains(6));
  EXPECT_FALSE(iv.contains(8));
}

TEST(Interval, ContainsIsClosed) {
  const Interval iv{10, 20};
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(20));
  EXPECT_TRUE(iv.contains(15));
  EXPECT_FALSE(iv.contains(9));
  EXPECT_FALSE(iv.contains(21));
}

TEST(Interval, IntersectionIsSymmetricAndClosed) {
  const Interval a{0, 9};
  const Interval b{9, 20};   // touch at one byte — closed intervals meet
  const Interval c{10, 20};  // disjoint from a
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(c.intersects(a));
}

TEST(Interval, NestedIntervalsIntersect) {
  const Interval outer{0, 100};
  const Interval inner{40, 60};
  EXPECT_TRUE(outer.intersects(inner));
  EXPECT_TRUE(inner.intersects(outer));
}

TEST(Interval, PaperEquation1) {
  // copy_i = <f=_, t=4, l=4>  writes [4,7]; copy_j reads [6,9]: conflict.
  const Interval write_i = Interval::of(4, 4);
  const Interval read_j = Interval::of(6, 4);
  EXPECT_TRUE(write_i.intersects(read_j));
  // Reading [8,11] just misses the write.
  EXPECT_FALSE(write_i.intersects(Interval::of(8, 4)));
}

TEST(Interval, EqualityAndStreaming) {
  const Interval a{1, 2};
  EXPECT_EQ(a, (Interval{1, 2}));
  EXPECT_NE(a, (Interval{1, 3}));
  std::ostringstream os;
  os << a;
  EXPECT_EQ(os.str(), "[1, 2]");
}

}  // namespace
}  // namespace ipd
