#include "apply/oracle.hpp"

#include <gtest/gtest.h>

#include "adversary/constructions.hpp"
#include "inplace/converter.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

TEST(Oracle, CleanScriptHasNoConflicts) {
  const Script s = script_of({C(50, 0, 25), C(80, 25, 20), A(45, "xyz")});
  const ConflictAnalysis a = analyze_conflicts(s);
  EXPECT_TRUE(a.in_place_safe());
  EXPECT_EQ(a.corrupt_bytes, 0u);
}

TEST(Oracle, DetectsBasicWriteBeforeRead) {
  // Command 0 writes [0,9]; command 1 reads [5,14]: 5 corrupt bytes.
  const Script s = script_of({C(20, 0, 10), C(5, 10, 10)});
  const ConflictAnalysis a = analyze_conflicts(s);
  ASSERT_EQ(a.conflicts.size(), 1u);
  EXPECT_EQ(a.conflicts[0].reader_index, 1u);
  EXPECT_EQ(a.conflicts[0].writer_index, 0u);
  EXPECT_EQ(a.conflicts[0].overlap, (Interval{5, 9}));
  EXPECT_EQ(a.corrupt_bytes, 5u);
}

TEST(Oracle, OrderMatters) {
  // The same two commands in the safe order: no conflict.
  const Script s = script_of({C(5, 10, 10), C(20, 0, 10)});
  EXPECT_TRUE(analyze_conflicts(s).in_place_safe());
}

TEST(Oracle, AddsConflictAsWritersNotReaders) {
  // An add never reads, but a later copy may read what it wrote.
  const Script reader_after_add = script_of({A(0, "abcd"), C(2, 10, 4)});
  const ConflictAnalysis a = analyze_conflicts(reader_after_add);
  ASSERT_EQ(a.conflicts.size(), 1u);
  EXPECT_EQ(a.conflicts[0].writer_index, 0u);
  EXPECT_EQ(a.conflicts[0].overlap, (Interval{2, 3}));

  const Script add_last = script_of({C(2, 10, 4), A(0, "abcd")});
  EXPECT_TRUE(analyze_conflicts(add_last).in_place_safe());
}

TEST(Oracle, SelfOverlapIsNotAConflict) {
  const Script s = script_of({C(0, 5, 10)});
  EXPECT_TRUE(analyze_conflicts(s).in_place_safe());
}

TEST(Oracle, OneReadCanConflictWithManyWriters) {
  // Three 4-byte writes tile [0,11]; a later copy reads all of it.
  const Script s =
      script_of({C(20, 0, 4), C(24, 4, 4), C(28, 8, 4), C(0, 12, 12)});
  const ConflictAnalysis a = analyze_conflicts(s);
  EXPECT_EQ(a.conflicts.size(), 3u);
  EXPECT_EQ(a.corrupt_bytes, 12u);
  for (const Conflict& c : a.conflicts) {
    EXPECT_EQ(c.reader_index, 3u);
  }
}

TEST(Oracle, MaxConflictsTruncates) {
  const Script s =
      script_of({C(20, 0, 4), C(24, 4, 4), C(28, 8, 4), C(0, 12, 12)});
  EXPECT_EQ(analyze_conflicts(s, 2).conflicts.size(), 2u);
}

TEST(Oracle, RotationScriptConflictsUntilConverted) {
  const AdversaryInstance inst = make_rotation(1000, 250);
  EXPECT_FALSE(analyze_conflicts(inst.script).in_place_safe());
  const ConvertResult r = convert_to_inplace(inst.script, inst.reference, {});
  EXPECT_TRUE(analyze_conflicts(r.script).in_place_safe());
}

TEST(Oracle, AgreesWithEquation2CheckerOnRandomScripts) {
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    // Random valid-ish scripts: disjoint writes, random reads, random
    // order.
    Script s;
    offset_t cursor = 0;
    const int commands = static_cast<int>(rng.range(1, 12));
    for (int i = 0; i < commands; ++i) {
      const length_t len = rng.range(1, 30);
      if (rng.chance(0.3)) {
        Bytes data(len, static_cast<std::uint8_t>(i));
        s.push(AddCommand{cursor, std::move(data)});
      } else {
        s.push(CopyCommand{rng.below(300), cursor, len});
      }
      cursor += len;
    }
    // Shuffle the command order.
    auto& cmds = s.commands();
    for (std::size_t i = cmds.size(); i > 1; --i) {
      std::swap(cmds[i - 1], cmds[rng.below(i)]);
    }
    EXPECT_EQ(analyze_conflicts(s).in_place_safe(), satisfies_equation2(s))
        << "trial " << trial;
  }
}

TEST(Oracle, EmptyScript) {
  EXPECT_TRUE(analyze_conflicts(Script{}).in_place_safe());
}

}  // namespace
}  // namespace ipd
