#include "apply/apply_journal.hpp"

#include <gtest/gtest.h>

#include "core/checksum.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

constexpr ApplyJournalOptions kOpts{/*page_size=*/256, /*undo_capacity=*/512,
                                    /*header_capacity=*/128};

Bytes scratch_for(const ApplyJournalOptions& opts) {
  return Bytes(ApplyJournal::slot_bytes(opts), 0);
}

ApplyRecord sample_record() {
  ApplyRecord rec;
  rec.kind = ApplyRecordKind::kSubstep;
  rec.full_image = false;
  rec.artifact_crc = 0xDEADBEEF;
  rec.artifact_size = 123456;
  rec.meta_from = 3;
  rec.meta_hop = 4;
  rec.meta_target = 9;
  rec.command_index = 42;
  rec.substep = 7;
  rec.artifact_offset = 1000;
  rec.adler_state = 0x12345678;
  rec.undo_to = 2048;
  rec.undo = test::random_bytes(5, 300);
  rec.header = test::random_bytes(6, 64);
  return rec;
}

void expect_same(const ApplyRecord& a, const ApplyRecord& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.full_image, b.full_image);
  EXPECT_EQ(a.artifact_crc, b.artifact_crc);
  EXPECT_EQ(a.artifact_size, b.artifact_size);
  EXPECT_EQ(a.meta_from, b.meta_from);
  EXPECT_EQ(a.meta_hop, b.meta_hop);
  EXPECT_EQ(a.meta_target, b.meta_target);
  EXPECT_EQ(a.command_index, b.command_index);
  EXPECT_EQ(a.substep, b.substep);
  EXPECT_EQ(a.artifact_offset, b.artifact_offset);
  EXPECT_EQ(a.adler_state, b.adler_state);
  EXPECT_EQ(a.undo_to, b.undo_to);
  EXPECT_TRUE(test::bytes_equal(a.undo, b.undo));
  EXPECT_TRUE(test::bytes_equal(a.header, b.header));
}

TEST(ApplyJournal, SlotBytesIsPageAlignedAndCoversCapacities) {
  const std::size_t slot = ApplyJournal::slot_bytes(kOpts);
  EXPECT_EQ(slot % kOpts.page_size, 0u);
  EXPECT_GE(slot, kOpts.undo_capacity + kOpts.header_capacity);
}

TEST(ApplyJournal, RoundTripsAllFieldsAcrossReconstruction) {
  MemoryJournalStorage storage(2 * ApplyJournal::slot_bytes(kOpts));
  Bytes scratch = scratch_for(kOpts);
  {
    ApplyJournal aj(storage, MutByteView(scratch), kOpts);
    EXPECT_FALSE(aj.newest().has_value());
    aj.append(sample_record());
  }
  // A fresh journal (the "rebooted device") scans the same storage.
  ApplyJournal aj(storage, MutByteView(scratch), kOpts);
  ASSERT_TRUE(aj.newest().has_value());
  expect_same(sample_record(), *aj.newest());
  EXPECT_EQ(aj.newest()->seq, 0u);
}

TEST(ApplyJournal, AlternatesSlotsAndKeepsNewest) {
  MemoryJournalStorage storage(2 * ApplyJournal::slot_bytes(kOpts));
  Bytes scratch = scratch_for(kOpts);
  ApplyJournal aj(storage, MutByteView(scratch), kOpts);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ApplyRecord rec = sample_record();
    rec.command_index = i;
    rec.undo.clear();
    aj.append(std::move(rec));
  }
  EXPECT_EQ(aj.records_written(), 5u);
  ApplyJournal again(storage, MutByteView(scratch), kOpts);
  ASSERT_TRUE(again.newest().has_value());
  EXPECT_EQ(again.newest()->seq, 4u);
  EXPECT_EQ(again.newest()->command_index, 4u);
}

TEST(ApplyJournal, TornNewestSlotFallsBackToPrevious) {
  MemoryJournalStorage storage(2 * ApplyJournal::slot_bytes(kOpts));
  Bytes scratch = scratch_for(kOpts);
  const std::size_t slot = ApplyJournal::slot_bytes(kOpts);
  ApplyJournal aj(storage, MutByteView(scratch), kOpts);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ApplyRecord rec = sample_record();
    rec.command_index = i;
    aj.append(std::move(rec));
  }
  // Record seq 3 lives in slot 1; tear its tail (CRC no longer verifies).
  for (std::size_t b = slot + slot / 2; b < 2 * slot; ++b) {
    storage.bytes()[b] = 0;
  }
  ApplyJournal recovered(storage, MutByteView(scratch), kOpts);
  ASSERT_TRUE(recovered.newest().has_value());
  EXPECT_EQ(recovered.newest()->seq, 2u);
  EXPECT_EQ(recovered.newest()->command_index, 2u);
  // The next append must continue past the torn record's sequence so it
  // lands in the torn slot, never over the only intact record.
  ApplyRecord rec = sample_record();
  rec.command_index = 99;
  recovered.append(std::move(rec));
  ApplyJournal after(storage, MutByteView(scratch), kOpts);
  ASSERT_TRUE(after.newest().has_value());
  EXPECT_EQ(after.newest()->command_index, 99u);
  EXPECT_EQ(after.newest()->seq % 2, 1u) << "append must reuse the torn slot";
}

TEST(ApplyJournal, SingleBitFlipInvalidatesARecord) {
  MemoryJournalStorage storage(2 * ApplyJournal::slot_bytes(kOpts));
  Bytes scratch = scratch_for(kOpts);
  {
    ApplyJournal aj(storage, MutByteView(scratch), kOpts);
    aj.append(sample_record());
  }
  storage.bytes()[40] ^= 0x01;
  ApplyJournal aj(storage, MutByteView(scratch), kOpts);
  EXPECT_FALSE(aj.newest().has_value());
}

TEST(ApplyJournal, NewestForFiltersByArtifactIdentity) {
  MemoryJournalStorage storage(2 * ApplyJournal::slot_bytes(kOpts));
  Bytes scratch = scratch_for(kOpts);
  ApplyJournal aj(storage, MutByteView(scratch), kOpts);
  aj.append(sample_record());
  const ApplyRecord rec = sample_record();
  EXPECT_TRUE(aj.newest_for(rec.artifact_crc, rec.artifact_size).has_value());
  EXPECT_FALSE(aj.newest_for(rec.artifact_crc + 1, rec.artifact_size));
  EXPECT_FALSE(aj.newest_for(rec.artifact_crc, rec.artifact_size + 1));
}

TEST(ApplyJournal, ClearForgetsEverythingAndRestartsSequence) {
  MemoryJournalStorage storage(2 * ApplyJournal::slot_bytes(kOpts));
  Bytes scratch = scratch_for(kOpts);
  ApplyJournal aj(storage, MutByteView(scratch), kOpts);
  aj.append(sample_record());
  aj.append(sample_record());
  aj.clear();
  EXPECT_FALSE(aj.newest().has_value());
  aj.append(sample_record());
  EXPECT_EQ(aj.newest()->seq, 0u);
  ApplyJournal again(storage, MutByteView(scratch), kOpts);
  ASSERT_TRUE(again.newest().has_value());
  EXPECT_EQ(again.newest()->seq, 0u);
}

TEST(ApplyJournal, RejectsOverCapacityPayloads) {
  MemoryJournalStorage storage(2 * ApplyJournal::slot_bytes(kOpts));
  Bytes scratch = scratch_for(kOpts);
  ApplyJournal aj(storage, MutByteView(scratch), kOpts);
  ApplyRecord big_undo = sample_record();
  big_undo.undo = Bytes(kOpts.undo_capacity + 1, 0xAA);
  EXPECT_THROW(aj.append(std::move(big_undo)), ValidationError);
  ApplyRecord big_header = sample_record();
  big_header.header = Bytes(kOpts.header_capacity + 1, 0xBB);
  EXPECT_THROW(aj.append(std::move(big_header)), ValidationError);
}

TEST(ApplyJournal, RejectsUndersizedScratchAndStorage) {
  const std::size_t slot = ApplyJournal::slot_bytes(kOpts);
  {
    MemoryJournalStorage storage(2 * slot);
    Bytes small(slot - 1, 0);
    EXPECT_THROW(ApplyJournal(storage, MutByteView(small), kOpts),
                 DeviceError);
  }
  {
    MemoryJournalStorage storage(2 * slot - 1);
    Bytes scratch = scratch_for(kOpts);
    EXPECT_THROW(ApplyJournal(storage, MutByteView(scratch), kOpts),
                 DeviceError);
  }
}

TEST(ApplyJournal, StaleRecordSurvivesOneAppendThenRetires) {
  // A fresh artifact must not destroy the previous artifact's record
  // with its FIRST append: until the new record is durable, the old one
  // is the device's only memory. Slot alternation gives exactly that.
  MemoryJournalStorage storage(2 * ApplyJournal::slot_bytes(kOpts));
  Bytes scratch = scratch_for(kOpts);
  ApplyJournal aj(storage, MutByteView(scratch), kOpts);
  ApplyRecord old = sample_record();
  old.kind = ApplyRecordKind::kDone;
  aj.append(std::move(old));  // seq 0 -> slot 0

  ApplyJournal next(storage, MutByteView(scratch), kOpts);
  ApplyRecord fresh = sample_record();
  fresh.artifact_crc = 0x0BADF00D;  // different artifact
  next.append(std::move(fresh));  // seq 1 -> slot 1, old record intact

  ApplyJournal check(storage, MutByteView(scratch), kOpts);
  // Newest is the fresh artifact...
  ASSERT_TRUE(check.newest().has_value());
  EXPECT_EQ(check.newest()->artifact_crc, 0x0BADF00Du);
  // ...and if that first append had been torn by a power cut, recovery
  // would still find the old artifact's done record in the other slot.
  const std::size_t slot = ApplyJournal::slot_bytes(kOpts);
  for (std::size_t b = slot; b < 2 * slot; ++b) {
    storage.bytes()[b] = 0xFF;  // tear the fresh record (seq 1, slot 1)
  }
  ApplyJournal fallback(storage, MutByteView(scratch), kOpts);
  ASSERT_TRUE(fallback.newest().has_value());
  EXPECT_EQ(fallback.newest()->kind, ApplyRecordKind::kDone);
  EXPECT_EQ(fallback.newest()->artifact_crc, sample_record().artifact_crc);
}

}  // namespace
}  // namespace ipd
