#include "delta/greedy_differ.hpp"

#include <gtest/gtest.h>

#include "apply/apply.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

Script diff(ByteView ref, ByteView ver, DifferOptions opts = {}) {
  return GreedyDiffer(opts).diff(ref, ver);
}

void expect_roundtrip(ByteView ref, ByteView ver, const Script& script) {
  ASSERT_NO_THROW(script.validate(ref.size(), ver.size()));
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(script, ref)));
}

TEST(GreedyDiffer, IdenticalFilesOneCopy) {
  const Bytes file = random_bytes(1, 10000);
  const Script script = diff(file, file);
  expect_roundtrip(file, file, script);
  ASSERT_EQ(script.size(), 1u);
  const auto* copy = std::get_if<CopyCommand>(&script.commands()[0]);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->from, 0u);
  EXPECT_EQ(copy->length, 10000u);
}

TEST(GreedyDiffer, EmptyVersionEmptyScript) {
  const Bytes ref = random_bytes(2, 100);
  EXPECT_TRUE(diff(ref, {}).empty());
}

TEST(GreedyDiffer, EmptyReferenceAllAdds) {
  const Bytes ver = random_bytes(3, 500);
  const Script script = diff({}, ver);
  expect_roundtrip({}, ver, script);
  EXPECT_EQ(script.summary().copy_count, 0u);
}

TEST(GreedyDiffer, UnrelatedFilesMostlyAdds) {
  const Bytes ref = random_bytes(4, 5000);
  const Bytes ver = random_bytes(5, 5000);
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  // Random data shares essentially no 16-byte seeds.
  EXPECT_GT(script.summary().added_bytes, 4900u);
}

TEST(GreedyDiffer, InsertionSplitsIntoCopyAddCopy) {
  const Bytes ref = random_bytes(6, 4000);
  Bytes ver = ref;
  const Bytes inserted = random_bytes(7, 100);
  ver.insert(ver.begin() + 2000, inserted.begin(), inserted.end());
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  const ScriptSummary sum = script.summary();
  EXPECT_EQ(sum.copy_count, 2u);
  EXPECT_EQ(sum.add_count, 1u);
  EXPECT_EQ(sum.added_bytes, 100u);
}

TEST(GreedyDiffer, DeletionNeedsTwoCopies) {
  const Bytes ref = random_bytes(8, 4000);
  Bytes ver = ref;
  ver.erase(ver.begin() + 1000, ver.begin() + 1300);
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  EXPECT_EQ(script.summary().copy_count, 2u);
  EXPECT_EQ(script.summary().added_bytes, 0u);
}

TEST(GreedyDiffer, BlockMoveEncodedAsCopies) {
  const Bytes ref = random_bytes(9, 4096);
  // Swap the two halves — string-to-string correction with block move.
  Bytes ver(ref.begin() + 2048, ref.end());
  ver.insert(ver.end(), ref.begin(), ref.begin() + 2048);
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  EXPECT_EQ(script.summary().added_bytes, 0u);
  EXPECT_LE(script.summary().copy_count, 3u);
}

TEST(GreedyDiffer, FindsUnalignedMatches) {
  // A match at an arbitrary byte offset, the paper's §2 requirement.
  const Bytes ref = random_bytes(10, 3000);
  Bytes ver = random_bytes(11, 777);
  ver.insert(ver.end(), ref.begin() + 123, ref.begin() + 1456);
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  bool found = false;
  for (const CopyCommand& c : script.copies()) {
    if (c.from == 123 && c.length >= 1000) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GreedyDiffer, BackwardExtensionMergesLiterals) {
  // The version tweaks one byte; backward extension should re-absorb the
  // bytes after the tweak into the following copy.
  Bytes ref = random_bytes(12, 2048);
  Bytes ver = ref;
  ver[512] ^= 0xFF;
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  EXPECT_EQ(script.summary().added_bytes, 1u);
  EXPECT_EQ(script.summary().copy_count, 2u);
}

TEST(GreedyDiffer, PicksLongestOfRepeatedMatches) {
  // Reference holds a short and a long occurrence of the same prefix; the
  // greedy differ must chase the chain to the longer one.
  Bytes ref = random_bytes(13, 512);                 // noise
  const Bytes long_block = random_bytes(14, 900);
  Bytes short_block(long_block.begin(), long_block.begin() + 64);
  ref.insert(ref.end(), short_block.begin(), short_block.end());
  const Bytes separator = random_bytes(15, 64);
  ref.insert(ref.end(), separator.begin(), separator.end());
  ref.insert(ref.end(), long_block.begin(), long_block.end());

  const Bytes& ver = long_block;
  const Script script = diff(ref, ver, {.seed_length = 16, .min_match = 16});
  expect_roundtrip(ref, ver, script);
  EXPECT_EQ(script.summary().copy_count, 1u);
  EXPECT_EQ(script.copies()[0].length, 900u);
}

TEST(GreedyDiffer, VersionShorterThanSeedIsLiteral) {
  const Bytes ref = random_bytes(16, 100);
  const Bytes ver(ref.begin(), ref.begin() + 8);  // < default seed 16
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  EXPECT_EQ(script.summary().copy_count, 0u);
}

TEST(GreedyDiffer, MinMatchFiltersShortMatches) {
  Bytes ref = random_bytes(17, 64);
  Bytes ver = random_bytes(18, 500);
  // Plant a 20-byte shared region — below a min_match of 32.
  std::copy_n(ref.begin(), 20, ver.begin() + 100);
  const Script script =
      diff(ref, ver, {.seed_length = 16, .min_match = 32});
  expect_roundtrip(ref, ver, script);
  EXPECT_EQ(script.summary().copy_count, 0u);
}

TEST(GreedyDiffer, HighlyRepetitiveInputBoundedByMaxChain) {
  // All-zero files produce one giant chain bucket; max_chain keeps this
  // tractable and the output must still be correct.
  const Bytes ref(32768, 0);
  const Bytes ver(50000, 0);
  const Script script = diff(ref, ver, {.max_chain = 4});
  expect_roundtrip(ref, ver, script);
}

}  // namespace
}  // namespace ipd
