#!/bin/sh
# End-to-end exercise of the `ipdelta` CLI tool. Registered with CTest;
# $1 is the path to the ipdelta binary.
set -e

IPDELTA="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

# Fixture: a reference and a version sharing a large middle.
head -c 40000 /dev/urandom > ref.bin
{ head -c 700 /dev/urandom; tail -c +201 ref.bin; head -c 900 /dev/urandom; } \
  > new.bin

# diff + apply (scratch path, sequential format).
"$IPDELTA" diff ref.bin new.bin plain.ipd --no-write-offsets > /dev/null \
  || fail "diff plain"
"$IPDELTA" apply plain.ipd ref.bin out.bin > /dev/null || fail "apply"
cmp -s out.bin new.bin || fail "apply output mismatch"

# diff --in-place with every policy and differ; patch in place each time.
for policy in constant localmin scc; do
  for differ in greedy onepass; do
    "$IPDELTA" diff ref.bin new.bin d.ipd --in-place \
      --policy "$policy" --differ "$differ" > /dev/null \
      || fail "diff --in-place $policy/$differ"
    cp ref.bin patched.bin
    "$IPDELTA" patch d.ipd patched.bin > /dev/null \
      || fail "patch $policy/$differ"
    cmp -s patched.bin new.bin || fail "patch mismatch $policy/$differ"
  done
done

# verify: good and bad reference.
"$IPDELTA" diff ref.bin new.bin d.ipd --in-place > /dev/null
"$IPDELTA" verify d.ipd ref.bin > /dev/null || fail "verify good"
if "$IPDELTA" verify d.ipd new.bin > /dev/null 2>&1; then
  fail "verify accepted the wrong reference"
fi

# info and info --deep run and mention key fields.
"$IPDELTA" info d.ipd | grep -q "in-place safe:     yes" || fail "info"
"$IPDELTA" info d.ipd --deep | grep -q "CRWI digraph" || fail "info --deep"

# compressed delta round-trips.
"$IPDELTA" diff ref.bin new.bin c.ipd --in-place --compress > /dev/null \
  || fail "diff --compress"
cp ref.bin patched.bin
"$IPDELTA" patch c.ipd patched.bin > /dev/null || fail "patch compressed"
cmp -s patched.bin new.bin || fail "compressed patch mismatch"

# compose: fold a two-hop chain and apply the result directly.
{ head -c 300 /dev/urandom; tail -c +101 new.bin; } > newer.bin
"$IPDELTA" diff ref.bin new.bin ab.ipd > /dev/null || fail "diff ab"
"$IPDELTA" diff new.bin newer.bin bc.ipd > /dev/null || fail "diff bc"
"$IPDELTA" compose ab.ipd bc.ipd ac.ipd > /dev/null || fail "compose"
"$IPDELTA" apply ac.ipd ref.bin composed_out.bin > /dev/null \
  || fail "apply composed"
cmp -s composed_out.bin newer.bin || fail "composed output mismatch"
if "$IPDELTA" compose bc.ipd ab.ipd x.ipd > /dev/null 2>&1; then
  fail "compose accepted non-chaining deltas"
fi

# serve: spin up the delta service over the 3-release history and replay
# a small concurrent fleet against it; every reconstruction is verified.
"$IPDELTA" serve ref.bin new.bin newer.bin \
  --requests 24 --threads 4 --seed 7 > serve.out || fail "serve"
grep -q "all reconstructions verified" serve.out || fail "serve verify line"
grep -Eq "^requests: +24$" serve.out || fail "serve metrics"
if "$IPDELTA" serve ref.bin > /dev/null 2>&1; then
  fail "serve accepted a single-release history"
fi

# trace: wrap a subcommand and capture Chrome trace-event JSON.
"$IPDELTA" trace diff ref.bin new.bin traced.ipd --in-place \
  --trace-out trace.json > /dev/null 2> trace.err || fail "trace diff"
grep -q "traceEvents" trace.json || fail "trace JSON header"
grep -q '"name":"diff"' trace.json || fail "trace missing diff span"
grep -q '"name":"crwi_graph"' trace.json || fail "trace missing graph span"
grep -q "span(s)" trace.err || fail "trace summary line"
"$IPDELTA" apply traced.ipd ref.bin traced_out.bin > /dev/null \
  || fail "apply traced delta"
cmp -s traced_out.bin new.bin || fail "traced delta output mismatch"
if "$IPDELTA" trace trace diff ref.bin new.bin x.ipd > /dev/null 2>&1; then
  fail "trace accepted recursive trace"
fi

# store: durable publish across separate processes, list/check/gc, and
# serving straight from the store directory.
"$IPDELTA" store init repo.store > /dev/null || fail "store init"
if "$IPDELTA" store init repo.store > /dev/null 2>&1; then
  fail "store init overwrote an existing store"
fi
"$IPDELTA" store publish repo.store ref.bin new.bin > /dev/null \
  || fail "store publish"
"$IPDELTA" store publish repo.store newer.bin > /dev/null \
  || fail "store publish (second process)"
"$IPDELTA" store list repo.store > store.out || fail "store list"
grep -q "store: 3 releases" store.out || fail "store list release count"
"$IPDELTA" store check repo.store > /dev/null || fail "store check"
"$IPDELTA" store gc repo.store > /dev/null || fail "store gc"
"$IPDELTA" store check repo.store > /dev/null || fail "store check after gc"
"$IPDELTA" serve --store-dir repo.store \
  --requests 12 --threads 2 --seed 7 > serve_store.out \
  || fail "serve --store-dir"
grep -q "all reconstructions verified" serve_store.out \
  || fail "serve --store-dir verify line"

# campaign: a small clean fleet converges (exit 0), JSON mode emits the
# headline counters, and an undeliverable rollout aborts with exit 2
# while still bricking nobody.
"$IPDELTA" campaign --devices 12 --releases 3 --seed 7 \
  --image-bytes 8192 --staged 0.25 > campaign.out || fail "campaign"
grep -q "updated 12" campaign.out || fail "campaign updated count"
grep -q "bricked 0" campaign.out || fail "campaign bricked count"
"$IPDELTA" campaign --devices 6 --releases 2 --seed 7 \
  --image-bytes 4096 --json > campaign.json || fail "campaign --json"
grep -q '"bricked":0' campaign.json || fail "campaign json bricked"
if "$IPDELTA" campaign --devices 10 --releases 2 --seed 7 \
  --image-bytes 4096 --drop 1.0 --grace 0 --attempts 2 \
  --waves 0.2,1.0 > campaign_abort.out 2>&1; then
  fail "campaign ignored an aborted rollout"
fi
grep -q "ABORTED" campaign_abort.out || fail "campaign abort banner"
grep -q "bricked 0" campaign_abort.out || fail "campaign abort bricked"

# campaign --slo: a fully faulty canary wave burns the error budget and
# aborts with exit 2 and the breach reason; a clean fleet reports
# per-wave latency quantiles and a healthy verdict.
if "$IPDELTA" campaign --devices 60 --releases 2 --seed 7 \
  --image-bytes 4096 --drop 1.0 --grace 0 --attempts 2 \
  --waves 0.5,1.0 --slo --slo-burn 2.0 > campaign_slo.out 2>&1; then
  fail "campaign --slo ignored a burn-rate breach"
fi
grep -q "SLO BREACH" campaign_slo.out || fail "campaign slo breach banner"
grep -q "burn rate" campaign_slo.out || fail "campaign slo breach reason"
grep -q "bricked 0" campaign_slo.out || fail "campaign slo bricked"
"$IPDELTA" campaign --devices 16 --releases 3 --seed 7 \
  --image-bytes 8192 --waves 0.5,1.0 --slo --slo-min-attempts 4 \
  > campaign_healthy.out || fail "campaign --slo healthy"
grep -q "p99" campaign_healthy.out || fail "campaign slo p99 quantiles"
grep -q "slo: healthy" campaign_healthy.out || fail "campaign slo verdict"

# tracing over TCP: server and client each export a Chrome trace of the
# same fetch, and trace --merge joins them into one timeline with flow
# arrows linking the request span to the serve spans. Skipped when the
# sandbox forbids localhost sockets.
MERGE_PORT=39419
mkfifo hold
"$IPDELTA" serve ref.bin new.bin --port $MERGE_PORT \
  --trace-out server_trace.json > serve_traced.out 2>&1 < hold &
SERVE_PID=$!
exec 9>hold
sleep 1
if kill -0 $SERVE_PID 2>/dev/null; then
  cp ref.bin fetch_img.bin
  "$IPDELTA" trace fetch 127.0.0.1:$MERGE_PORT fetch_img.bin --to 1 \
    --trace-out client_trace.json > /dev/null 2>&1 || fail "traced fetch"
  cmp -s fetch_img.bin new.bin || fail "traced fetch output mismatch"
  exec 9>&-
  wait $SERVE_PID || fail "traced serve exit"
  "$IPDELTA" trace --merge client_trace.json server_trace.json \
    --trace-out merged_trace.json > merge.out || fail "trace --merge"
  grep -q "1 trace id(s) joined" merge.out || fail "merge joined no traces"
  grep -q '"ph":"s"' merged_trace.json || fail "merge missing flow start"
  grep -q '"ph":"f"' merged_trace.json || fail "merge missing flow finish"
  if "$IPDELTA" trace --merge ref.bin > /dev/null 2>&1; then
    fail "trace --merge accepted a non-trace file"
  fi
else
  exec 9>&-
  wait $SERVE_PID 2>/dev/null
  echo "skip: trace --merge over TCP (no sockets)"
fi

# corrupted delta is rejected with exit code 2.
cp d.ipd bad.ipd
dd if=/dev/zero of=bad.ipd bs=1 seek=100 count=4 conv=notrunc 2> /dev/null
if "$IPDELTA" apply bad.ipd ref.bin out2.bin > /dev/null 2>&1; then
  fail "apply accepted a corrupt delta"
fi

# usage errors exit 1.
if "$IPDELTA" bogus-subcommand > /dev/null 2>&1; then
  fail "bogus subcommand accepted"
fi

echo "cli tests passed"
