// src/obs/ unit tests: histogram quantile accuracy against a
// sorted-vector oracle, snapshot merging, the event ring, stage span
// aggregation, the Chrome trace JSON export, and the Prometheus
// renderer's text format. Concurrency hammering lives in
// test_obs_stress.cpp (label "stress", run under TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "obs/event_ring.hpp"
#include "obs/histogram.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace ipd::obs {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---- histogram ------------------------------------------------------

TEST(Histogram, BucketLayout) {
  // Bucket k holds exactly the values with bit_width == k.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_low(k)), k);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_high(k)), k);
  }
}

TEST(Histogram, CountSumAndReset) {
  Histogram h;
  for (std::uint64_t v : {5u, 10u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.snapshot().sum, 115u);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 115.0 / 3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.snapshot().sum, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, QuantileWithinFactorTwoOfOracle) {
  // Log-uniform samples spanning ~6 decades: the regime where a linear
  // histogram would be useless and the log-bucket error bound matters.
  Rng rng(0x0B5E);
  std::vector<std::uint64_t> samples;
  Histogram h;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t magnitude = 1 + rng.below(20);  // bit widths 1..20
    const std::uint64_t v =
        (std::uint64_t{1} << (magnitude - 1)) + rng.below(1u << (magnitude - 1));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot snap = h.snapshot();
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    const double truth = static_cast<double>(samples[rank]);
    const double est = snap.quantile(q);
    // Estimate and true sample share a power-of-two bucket, so the
    // ratio is bounded by 2 in both directions (histogram.hpp contract).
    EXPECT_LE(est, truth * 2.0) << "q=" << q;
    EXPECT_GE(est, truth / 2.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileExactForSingleBucketValues) {
  // All mass in one bucket with one entry: interpolation must return
  // the bucket floor, not invent spread.
  Histogram h;
  h.record(1024);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 1024.0);
}

TEST(Histogram, MergeIsOrderIndependent) {
  Histogram a;
  Histogram b;
  Rng rng(0x3E46E);
  for (int i = 0; i < 500; ++i) a.record(rng.below(1u << 20));
  for (int i = 0; i < 300; ++i) b.record(1 + rng.below(1u << 10));

  HistogramSnapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  HistogramSnapshot ba = b.snapshot();
  ba.merge(a.snapshot());

  EXPECT_EQ(ab.count, 800u);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum, ba.sum);
  EXPECT_EQ(ab.buckets, ba.buckets);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(ab.quantile(q), ba.quantile(q));
  }
}

TEST(Histogram, LatencyLineFormat) {
  Histogram h;
  h.record(500'000);  // 500us in ns
  const std::string line = h.snapshot().latency_line();
  EXPECT_NE(line.find("p50"), std::string::npos);
  EXPECT_NE(line.find("p95"), std::string::npos);
  EXPECT_NE(line.find("p99"), std::string::npos);
  EXPECT_NE(line.find("us"), std::string::npos);
}

// ---- event ring -----------------------------------------------------

TEST(EventRing, OrderAndPayload) {
  EventRing ring;
  ring.push(EventType::kNetRetry, 1, 250, "attempt 1");
  ring.push(EventType::kNetResume, 2, 4096);
  ring.push(EventType::kVerifyReject, 0, 0, "hop 3 -> 4");
  EXPECT_EQ(ring.pushed(), 3u);

  const std::vector<Event> events = ring.recent();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first, sequence numbers 1-based and contiguous.
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].type, EventType::kNetRetry);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 250u);
  EXPECT_EQ(events[0].detail, "attempt 1");
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].detail, "");
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(events[2].type, EventType::kVerifyReject);
  EXPECT_EQ(events[2].detail, "hop 3 -> 4");
}

TEST(EventRing, WrapsKeepingNewest) {
  EventRing ring;
  const std::size_t total = EventRing::kSlots + 40;
  for (std::size_t i = 1; i <= total; ++i) {
    ring.push(EventType::kCacheEvict, i);
  }
  EXPECT_EQ(ring.pushed(), total);
  const std::vector<Event> events = ring.recent();
  ASSERT_EQ(events.size(), EventRing::kSlots);
  // The oldest surviving event is total - kSlots + 1; order preserved.
  EXPECT_EQ(events.front().seq, total - EventRing::kSlots + 1);
  EXPECT_EQ(events.back().seq, total);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(EventRing, RecentHonoursMax) {
  EventRing ring;
  for (int i = 0; i < 10; ++i) ring.push(EventType::kNetError, i);
  const std::vector<Event> last3 = ring.recent(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3.back().seq, 10u);
  EXPECT_EQ(last3.front().seq, 8u);
}

TEST(EventRing, DetailTruncatedToSlotCapacity) {
  EventRing ring;
  const std::string longtail(200, 'x');
  ring.push(EventType::kJournalPoison, 0, 0, longtail);
  const std::vector<Event> events = ring.recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, longtail.substr(0, EventRing::kDetailBytes));
}

TEST(EventRing, DumpNamesEveryEventType) {
  EventRing ring;
  EXPECT_TRUE(ring.dump().empty());
#define IPD_TEST_PUSH(id, name) ring.push(EventType::id);
  IPD_OBS_EVENTS(IPD_TEST_PUSH)
#undef IPD_TEST_PUSH
  const std::string dump = ring.dump();
#define IPD_TEST_EXPECT(id, name) \
  EXPECT_NE(dump.find(name), std::string::npos) << name;
  IPD_OBS_EVENTS(IPD_TEST_EXPECT)
#undef IPD_TEST_EXPECT
}

TEST(EventRing, TypeNamesAreDistinct) {
  std::vector<std::string> names;
#define IPD_TEST_NAME(id, name) \
  names.emplace_back(event_type_name(EventType::id));
  IPD_OBS_EVENTS(IPD_TEST_NAME)
#undef IPD_TEST_NAME
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

// ---- stage spans ----------------------------------------------------

TEST(Trace, SpanAccumulatesIntoStageTotals) {
  reset_stage_totals();
  {
    Span outer(Stage::kDiff, 100);
    Span inner(Stage::kEncode);
    inner.add_bytes(42);
  }
  flush_thread_stats();
  const StageTotals totals = stage_totals();
  EXPECT_EQ(totals[Stage::kDiff].count, 1u);
  EXPECT_EQ(totals[Stage::kDiff].bytes, 100u);
  EXPECT_EQ(totals[Stage::kEncode].count, 1u);
  EXPECT_EQ(totals[Stage::kEncode].bytes, 42u);
  EXPECT_EQ(totals[Stage::kVerify].count, 0u);
  reset_stage_totals();
}

TEST(Trace, StageNamesCoverEnumAndAreDistinct) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    names.emplace_back(stage_name(static_cast<Stage>(i)));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Trace, JsonSchemaAndStageCoverage) {
  set_tracing(true);
  clear_trace_events();
  {
    Span s1(Stage::kDiff, 10);
  }
  {
    Span s2(Stage::kCrwiGraph);
  }
  {
    Span s3(Stage::kTopoSort);
  }
  {
    Span s4(Stage::kEncode);
  }
  {
    Span s5(Stage::kApplyInplace, 7);
  }
  set_tracing(false);

  EXPECT_EQ(trace_event_count(), 5u);
  const std::string json = trace_events_json();
  clear_trace_events();

  // Chrome trace-event envelope.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Five complete events, each with the required keys.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 5u);
  EXPECT_EQ(count_occurrences(json, "\"ts\":"), 5u);
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), 5u);
  EXPECT_EQ(count_occurrences(json, "\"pid\":1"), 5u);
  // All five distinct stages present by wire name.
  for (const char* name :
       {"diff", "crwi_graph", "topo_sort", "encode", "apply_inplace"}) {
    EXPECT_EQ(count_occurrences(json, std::string("\"name\":\"") + name + "\""),
              1u)
        << name;
  }
  EXPECT_NE(json.find("\"args\":{\"bytes\":10}"), std::string::npos);
}

TEST(Trace, DisabledByDefaultCapturesNothing) {
  clear_trace_events();
  ASSERT_FALSE(tracing_enabled());
  {
    Span span(Stage::kVerify);
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

// ---- prometheus renderer --------------------------------------------

TEST(PrometheusRenderer, CounterAndGaugeFormat) {
  PrometheusRenderer r;
  r.counter("requests", 1234);
  r.gauge("cache_bytes_held", 77);
  EXPECT_EQ(r.str(),
            "# TYPE ipdelta_requests counter\n"
            "ipdelta_requests 1234\n"
            "# TYPE ipdelta_cache_bytes_held gauge\n"
            "ipdelta_cache_bytes_held 77\n");
}

TEST(PrometheusRenderer, LabeledSeriesEmitTypeOnce) {
  PrometheusRenderer r;
  r.counter("stage_ns", "stage", "diff", 5);
  r.counter("stage_ns", "stage", "encode", 9);
  const std::string& text = r.str();
  EXPECT_EQ(count_occurrences(text, "# TYPE ipdelta_stage_ns counter"), 1u);
  EXPECT_NE(text.find("ipdelta_stage_ns{stage=\"diff\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_stage_ns{stage=\"encode\"} 9\n"),
            std::string::npos);
}

TEST(PrometheusRenderer, HistogramRendersSummary) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  PrometheusRenderer r;
  r.histogram("serve_ns", h.snapshot());
  const std::string& text = r.str();
  EXPECT_NE(text.find("# TYPE ipdelta_serve_ns summary"), std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns{quantile=\"0.9\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns_count 100\n"), std::string::npos);
}

}  // namespace
}  // namespace ipd::obs
