// src/obs/ unit tests: histogram quantile accuracy against a
// sorted-vector oracle, snapshot merging, the event ring, stage span
// aggregation, the Chrome trace JSON export, trace-context propagation,
// cross-process trace merging, the flight recorder, the stall watchdog,
// and the Prometheus renderer's text format. Concurrency hammering
// lives in test_obs_stress.cpp (label "stress", run under TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "obs/event_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/trace_merge.hpp"
#include "obs/watchdog.hpp"
#include "test_util.hpp"

namespace ipd::obs {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---- histogram ------------------------------------------------------

TEST(Histogram, BucketLayout) {
  // Bucket k holds exactly the values with bit_width == k.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_low(k)), k);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_high(k)), k);
  }
}

TEST(Histogram, CountSumAndReset) {
  Histogram h;
  for (std::uint64_t v : {5u, 10u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.snapshot().sum, 115u);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 115.0 / 3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.snapshot().sum, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, QuantileWithinFactorTwoOfOracle) {
  // Log-uniform samples spanning ~6 decades: the regime where a linear
  // histogram would be useless and the log-bucket error bound matters.
  Rng rng(0x0B5E);
  std::vector<std::uint64_t> samples;
  Histogram h;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t magnitude = 1 + rng.below(20);  // bit widths 1..20
    const std::uint64_t v =
        (std::uint64_t{1} << (magnitude - 1)) + rng.below(1u << (magnitude - 1));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot snap = h.snapshot();
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    const double truth = static_cast<double>(samples[rank]);
    const double est = snap.quantile(q);
    // Estimate and true sample share a power-of-two bucket, so the
    // ratio is bounded by 2 in both directions (histogram.hpp contract).
    EXPECT_LE(est, truth * 2.0) << "q=" << q;
    EXPECT_GE(est, truth / 2.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileExactForSingleBucketValues) {
  // All mass in one bucket with one entry: interpolation must return
  // the bucket floor, not invent spread.
  Histogram h;
  h.record(1024);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 1024.0);
}

TEST(Histogram, EmptySnapshotAnswersEveryQuantileWithZero) {
  const HistogramSnapshot snap = Histogram().snapshot();
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.quantile(q), 0.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  // latency_line over nothing must still render (the serve ticker calls
  // it before the first request lands).
  EXPECT_NE(snap.latency_line().find("p50"), std::string::npos);
}

TEST(Histogram, SingleEntryQuantilesStayInsideItsBucket) {
  Histogram h;
  h.record(7);  // bucket 3: [4, 7]
  const HistogramSnapshot snap = h.snapshot();
  const std::size_t bucket = Histogram::bucket_of(7);
  for (const double q : {0.0, 0.5, 1.0}) {
    const double est = snap.quantile(q);
    EXPECT_GE(est, static_cast<double>(Histogram::bucket_low(bucket)));
    EXPECT_LE(est, static_cast<double>(Histogram::bucket_high(bucket)));
  }
}

TEST(Histogram, SaturatingValuesLandInTheTopBucketAndStayFinite) {
  Histogram h;
  const std::uint64_t top = ~std::uint64_t{0};
  for (int i = 0; i < 3; ++i) h.record(top);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets[kHistogramBuckets - 1], 3u);
  for (const double q : {0.0, 0.5, 1.0}) {
    const double est = snap.quantile(q);
    EXPECT_TRUE(std::isfinite(est)) << "q=" << q;
    EXPECT_GE(est, static_cast<double>(
                       Histogram::bucket_low(kHistogramBuckets - 1)));
  }
}

TEST(Histogram, MergeIsOrderIndependent) {
  Histogram a;
  Histogram b;
  Rng rng(0x3E46E);
  for (int i = 0; i < 500; ++i) a.record(rng.below(1u << 20));
  for (int i = 0; i < 300; ++i) b.record(1 + rng.below(1u << 10));

  HistogramSnapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  HistogramSnapshot ba = b.snapshot();
  ba.merge(a.snapshot());

  EXPECT_EQ(ab.count, 800u);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum, ba.sum);
  EXPECT_EQ(ab.buckets, ba.buckets);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(ab.quantile(q), ba.quantile(q));
  }
}

TEST(Histogram, LatencyLineFormat) {
  Histogram h;
  h.record(500'000);  // 500us in ns
  const std::string line = h.snapshot().latency_line();
  EXPECT_NE(line.find("p50"), std::string::npos);
  EXPECT_NE(line.find("p95"), std::string::npos);
  EXPECT_NE(line.find("p99"), std::string::npos);
  EXPECT_NE(line.find("us"), std::string::npos);
}

// ---- event ring -----------------------------------------------------

TEST(EventRing, OrderAndPayload) {
  EventRing ring;
  ring.push(EventType::kNetRetry, 1, 250, "attempt 1");
  ring.push(EventType::kNetResume, 2, 4096);
  ring.push(EventType::kVerifyReject, 0, 0, "hop 3 -> 4");
  EXPECT_EQ(ring.pushed(), 3u);

  const std::vector<Event> events = ring.recent();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first, sequence numbers 1-based and contiguous.
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].type, EventType::kNetRetry);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 250u);
  EXPECT_EQ(events[0].detail, "attempt 1");
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].detail, "");
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(events[2].type, EventType::kVerifyReject);
  EXPECT_EQ(events[2].detail, "hop 3 -> 4");
}

TEST(EventRing, WrapsKeepingNewest) {
  EventRing ring;
  const std::size_t total = EventRing::kSlots + 40;
  for (std::size_t i = 1; i <= total; ++i) {
    ring.push(EventType::kCacheEvict, i);
  }
  EXPECT_EQ(ring.pushed(), total);
  const std::vector<Event> events = ring.recent();
  ASSERT_EQ(events.size(), EventRing::kSlots);
  // The oldest surviving event is total - kSlots + 1; order preserved.
  EXPECT_EQ(events.front().seq, total - EventRing::kSlots + 1);
  EXPECT_EQ(events.back().seq, total);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(EventRing, RecentHonoursMax) {
  EventRing ring;
  for (int i = 0; i < 10; ++i) ring.push(EventType::kNetError, i);
  const std::vector<Event> last3 = ring.recent(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3.back().seq, 10u);
  EXPECT_EQ(last3.front().seq, 8u);
}

TEST(EventRing, DetailTruncatedToSlotCapacity) {
  EventRing ring;
  const std::string longtail(200, 'x');
  ring.push(EventType::kJournalPoison, 0, 0, longtail);
  const std::vector<Event> events = ring.recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, longtail.substr(0, EventRing::kDetailBytes));
}

TEST(EventRing, DumpNamesEveryEventType) {
  EventRing ring;
  EXPECT_TRUE(ring.dump().empty());
#define IPD_TEST_PUSH(id, name) ring.push(EventType::id);
  IPD_OBS_EVENTS(IPD_TEST_PUSH)
#undef IPD_TEST_PUSH
  const std::string dump = ring.dump();
#define IPD_TEST_EXPECT(id, name) \
  EXPECT_NE(dump.find(name), std::string::npos) << name;
  IPD_OBS_EVENTS(IPD_TEST_EXPECT)
#undef IPD_TEST_EXPECT
}

TEST(EventRing, TypeNamesAreDistinct) {
  std::vector<std::string> names;
#define IPD_TEST_NAME(id, name) \
  names.emplace_back(event_type_name(EventType::id));
  IPD_OBS_EVENTS(IPD_TEST_NAME)
#undef IPD_TEST_NAME
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

// ---- stage spans ----------------------------------------------------

TEST(Trace, SpanAccumulatesIntoStageTotals) {
  reset_stage_totals();
  {
    Span outer(Stage::kDiff, 100);
    Span inner(Stage::kEncode);
    inner.add_bytes(42);
  }
  flush_thread_stats();
  const StageTotals totals = stage_totals();
  EXPECT_EQ(totals[Stage::kDiff].count, 1u);
  EXPECT_EQ(totals[Stage::kDiff].bytes, 100u);
  EXPECT_EQ(totals[Stage::kEncode].count, 1u);
  EXPECT_EQ(totals[Stage::kEncode].bytes, 42u);
  EXPECT_EQ(totals[Stage::kVerify].count, 0u);
  reset_stage_totals();
}

TEST(Trace, StageNamesCoverEnumAndAreDistinct) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    names.emplace_back(stage_name(static_cast<Stage>(i)));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Trace, JsonSchemaAndStageCoverage) {
  set_tracing(true);
  clear_trace_events();
  {
    Span s1(Stage::kDiff, 10);
  }
  {
    Span s2(Stage::kCrwiGraph);
  }
  {
    Span s3(Stage::kTopoSort);
  }
  {
    Span s4(Stage::kEncode);
  }
  {
    Span s5(Stage::kApplyInplace, 7);
  }
  set_tracing(false);

  EXPECT_EQ(trace_event_count(), 5u);
  const std::string json = trace_events_json();
  clear_trace_events();

  // Chrome trace-event envelope.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Five complete events, each with the required keys.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 5u);
  EXPECT_EQ(count_occurrences(json, "\"ts\":"), 5u);
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), 5u);
  EXPECT_EQ(count_occurrences(json, "\"pid\":1"), 5u);
  // All five distinct stages present by wire name.
  for (const char* name :
       {"diff", "crwi_graph", "topo_sort", "encode", "apply_inplace"}) {
    EXPECT_EQ(count_occurrences(json, std::string("\"name\":\"") + name + "\""),
              1u)
        << name;
  }
  EXPECT_NE(json.find("\"args\":{\"bytes\":10}"), std::string::npos);
}

TEST(Trace, DisabledByDefaultCapturesNothing) {
  clear_trace_events();
  ASSERT_FALSE(tracing_enabled());
  {
    Span span(Stage::kVerify);
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

// ---- trace context --------------------------------------------------

TEST(TraceContext, MintedRootsAreValidAndDistinct) {
  const TraceContext a = mint_trace();
  const TraceContext b = mint_trace();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.trace_hi == b.trace_hi && a.trace_lo == b.trace_lo);
  EXPECT_EQ(a.parent_span_id, 0u);
  EXPECT_EQ(a.trace_id_hex().size(), 32u);
  EXPECT_EQ(a.span_id_hex().size(), 16u);
}

TEST(TraceContext, ChildSharesTraceIdWithFreshSpan) {
  const TraceContext root = mint_trace();
  const TraceContext child = child_of(root);
  EXPECT_EQ(child.trace_hi, root.trace_hi);
  EXPECT_EQ(child.trace_lo, root.trace_lo);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
  // Propagating "no trace" stays "no trace" — the untraced fast path.
  EXPECT_FALSE(child_of(TraceContext{}).valid());
}

TEST(TraceContext, ScopeInstallsAndNestingRestores) {
  EXPECT_FALSE(current_trace().valid());
  const TraceContext outer = mint_trace();
  {
    const TraceScope outer_scope(outer);
    EXPECT_EQ(current_trace(), outer);
    const TraceContext inner = child_of(outer);
    {
      const TraceScope inner_scope(inner);
      EXPECT_EQ(current_trace(), inner);
    }
    EXPECT_EQ(current_trace(), outer);
  }
  EXPECT_FALSE(current_trace().valid());
}

TEST(TraceContext, SpansUnderAScopeCarryTheTraceIdInJson) {
  const TraceContext ctx = mint_trace();
  set_tracing(true);
  clear_trace_events();
  {
    const TraceScope scope(ctx);
    Span span(Stage::kServe, 5);
  }
  {
    Span untagged(Stage::kVerify);  // outside any scope: no args.trace
  }
  set_tracing(false);
  const std::string json = trace_events_json();
  clear_trace_events();
  EXPECT_NE(json.find("\"trace\":\"" + ctx.trace_id_hex() + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"span\":\"" + ctx.span_id_hex() + "\""),
            std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"trace\":"), 1u)
      << "the unscoped span must not carry a trace id";
}

TEST(TraceContext, UnsampledContextPropagatesButRecordsNoTaggedSpan) {
  TraceContext ctx = mint_trace();
  ctx.sampled = false;
  set_tracing(true);
  clear_trace_events();
  {
    const TraceScope scope(ctx);
    Span span(Stage::kServe);
  }
  set_tracing(false);
  const std::string json = trace_events_json();
  clear_trace_events();
  EXPECT_EQ(json.find("\"trace\":"), std::string::npos);
}

// ---- cross-process merge --------------------------------------------

// Hand-built per-process documents: in-process tests share one trace
// collector, so genuinely separate processes are simulated by separate
// JSON inputs here (and exercised for real in tests/test_cli.sh).
std::string one_span_doc(const std::string& name, double ts,
                         const std::string& trace_id,
                         const std::string& span_id) {
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":\"" + name +
         "\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":" + std::to_string(ts) +
         ",\"dur\":5.0,\"pid\":1,\"tid\":1,\"args\":{\"bytes\":0,\"trace\":\"" +
         trace_id + "\",\"span\":\"" + span_id + "\"}}]}";
}

TEST(TraceMerge, JoinsSharedTraceIdsAcrossLanesWithFlowEvents) {
  const std::string trace_id = "00112233445566778899aabbccddeeff";
  const std::vector<NamedTrace> inputs = {
      {"client", one_span_doc("net_request", 10.0, trace_id,
                              "0000000000000001")},
      {"server", one_span_doc("serve", 900.0, trace_id,
                              "0000000000000002")},
  };
  MergeStats stats;
  const std::string merged = merge_traces(inputs, &stats);
  EXPECT_EQ(stats.processes, 2u);
  EXPECT_EQ(stats.traces_joined, 1u);
  EXPECT_EQ(stats.flow_events, 2u);  // one "s", one "f"
  // Lanes: each input got its own pid and a process_name record.
  EXPECT_NE(merged.find("\"process_name\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"client\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"server\""), std::string::npos);
  EXPECT_EQ(count_occurrences(merged, "\"pid\":1"), 3u);  // meta + span + "s"
  EXPECT_EQ(count_occurrences(merged, "\"pid\":2"), 3u);
  // The flow pair is keyed on the trace id and spans the two lanes.
  EXPECT_NE(merged.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(merged.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(merged.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_EQ(count_occurrences(merged, "\"id\":\"" + trace_id + "\""), 2u);
}

TEST(TraceMerge, DisjointTracesProduceNoFlow) {
  const std::vector<NamedTrace> inputs = {
      {"a", one_span_doc("diff", 1.0, "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                         "0000000000000001")},
      {"b", one_span_doc("serve", 2.0, "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
                         "0000000000000002")},
  };
  MergeStats stats;
  merge_traces(inputs, &stats);
  EXPECT_EQ(stats.traces_joined, 0u);
  EXPECT_EQ(stats.flow_events, 0u);
}

TEST(TraceMerge, RoundTripsARealExport) {
  set_tracing(true);
  clear_trace_events();
  {
    const TraceScope scope(mint_trace());
    Span span(Stage::kEncode, 3);
  }
  set_tracing(false);
  const std::string doc = trace_events_json();
  clear_trace_events();
  MergeStats stats;
  const std::string merged =
      merge_traces({{"solo", doc}, {"again", doc}}, &stats);
  EXPECT_EQ(stats.processes, 2u);
  // The same trace id appears in both lanes, so the join fires.
  EXPECT_EQ(stats.traces_joined, 1u);
  EXPECT_NE(merged.find("\"name\":\"encode\""), std::string::npos);
}

TEST(TraceMerge, MalformedInputThrowsFormatError) {
  EXPECT_THROW(merge_traces({{"bad", "{\"traceEvents\":["}}), FormatError);
  EXPECT_THROW(merge_traces({{"bad", "not json at all"}}), FormatError);
  EXPECT_THROW(merge_traces({{"bad", "{\"traceEvents\":[]} trailing"}}),
               FormatError);
  EXPECT_THROW(merge_traces({{"bad", "{\"displayTimeUnit\":\"ms\"}"}}),
               FormatError);
  EXPECT_THROW(merge_traces({{"bad", "[1,2,3]"}}), FormatError);
}

// ---- flight recorder ------------------------------------------------

TEST(FlightRecorder, MirrorsSpansEventsAndNotesUnderScope) {
  FlightRecorder flight("test-session");
  {
    const FlightScope scope(flight);
    ASSERT_EQ(active_flight_recorder(), &flight);
    {
      Span span(Stage::kNetTransfer, 123);
    }
    global_events().push(EventType::kNetRetry, 2, 250, "attempt 2");
    flight.note("manual breadcrumb");
  }
  EXPECT_EQ(active_flight_recorder(), nullptr);
  EXPECT_EQ(flight.recorded(), 3u);
  const std::string text = flight.dump_text();
  EXPECT_NE(text.find("net_transfer"), std::string::npos);
  EXPECT_NE(text.find("net_retry"), std::string::npos);
  EXPECT_NE(text.find("manual breadcrumb"), std::string::npos);
}

TEST(FlightRecorder, RecordsIndependentlyOfGlobalTracing) {
  ASSERT_FALSE(tracing_enabled());
  FlightRecorder flight("untraced");
  {
    const FlightScope scope(flight);
    Span span(Stage::kServe);
  }
  EXPECT_EQ(flight.recorded(), 1u);
}

TEST(FlightRecorder, RingOverwritesOldestKeepingTheTail) {
  FlightRecorder flight("wrap");
  const FlightScope scope(flight);
  const std::size_t total = FlightRecorder::kMaxEntries + 10;
  for (std::size_t i = 0; i < total; ++i) {
    flight.note("note " + std::to_string(i));
  }
  EXPECT_EQ(flight.recorded(), total);
  const std::string text = flight.dump_text();
  EXPECT_EQ(text.find("note 0\n"), std::string::npos)
      << "oldest entry should have been overwritten";
  EXPECT_NE(text.find("note " + std::to_string(total - 1)),
            std::string::npos);
  // Oldest resident entry is exactly total - kMaxEntries.
  EXPECT_NE(
      text.find("note " + std::to_string(total - FlightRecorder::kMaxEntries)),
      std::string::npos);
}

TEST(FlightRecorder, DumpRegistryKeysOnTraceIdAndReason) {
  clear_flight_dumps();
  const TraceContext ctx = mint_trace();
  FlightRecorder flight("server:device-7", ctx);
  flight.note("resume at 8192");
  dump_flight(flight, "verify reject before flash write");
  const std::vector<FlightDump> dumps = flight_dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].trace_id, ctx.trace_id_hex());
  EXPECT_EQ(dumps[0].label, "server:device-7");
  EXPECT_EQ(dumps[0].reason, "verify reject before flash write");
  EXPECT_NE(dumps[0].text.find("resume at 8192"), std::string::npos);
  EXPECT_NE(dumps[0].json.find("\"trace_id\":\"" + ctx.trace_id_hex() + "\""),
            std::string::npos);
  EXPECT_NE(dumps[0].json.find("\"reason\":\"verify reject"),
            std::string::npos);
  clear_flight_dumps();
  EXPECT_TRUE(flight_dumps().empty());
}

// ---- stall watchdog -------------------------------------------------

TEST(StallWatchdog, FlagsOncePerEpisodeAndRearmsOnProgress) {
  StallWatchdog dog;
  const TraceContext ctx = mint_trace();
  const std::uint64_t id =
      dog.register_task("test transfer", ctx, 1'000'000 /* 1ms */);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(dog.watched(), 1u);

  // Not yet past the deadline: quiet.
  EXPECT_EQ(dog.check_now(now_ns()), 0u);
  EXPECT_EQ(dog.stalls_flagged(), 0u);

  // Way past the deadline: flagged exactly once, stays stalled.
  const std::uint64_t late = now_ns() + 1'000'000'000;
  EXPECT_EQ(dog.check_now(late), 1u);
  EXPECT_EQ(dog.stalls_flagged(), 1u);
  EXPECT_EQ(dog.check_now(late + 1), 1u);
  EXPECT_EQ(dog.stalls_flagged(), 1u) << "edge trigger re-fired";
  const std::vector<StalledTask> stalled = dog.stalled();
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0].label, "test transfer");
  EXPECT_EQ(stalled[0].trace, ctx);

  // Progress re-arms: no longer stalled, and a NEW silence flags again.
  dog.progress(id, 4096);
  EXPECT_EQ(dog.check_now(now_ns()), 0u);
  EXPECT_TRUE(dog.stalled().empty());
  EXPECT_EQ(dog.check_now(now_ns() + 1'000'000'000), 1u);
  EXPECT_EQ(dog.stalls_flagged(), 2u);
  const std::vector<StalledTask> again = dog.stalled();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].offset, 4096u) << "last-progress offset not carried";

  dog.deregister(id);
  EXPECT_EQ(dog.watched(), 0u);
  EXPECT_EQ(dog.check_now(now_ns() + 2'000'000'000), 0u);
}

TEST(StallWatchdog, StallEventCarriesTheTraceId) {
  StallWatchdog dog;
  const TraceContext ctx = mint_trace();
  dog.register_task("stalling hop", ctx, 1);
  const std::uint64_t before = global_events().pushed();
  dog.check_now(now_ns() + 1'000'000'000);
  ASSERT_EQ(global_events().pushed(), before + 1);
  const std::vector<Event> recent = global_events().recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].type, EventType::kStall);
  EXPECT_NE(recent[0].detail.find("stalling hop"), std::string::npos);
  // kDetailBytes truncation may clip the hex tail; the label plus the
  // id prefix must survive.
  const std::string expected =
      ("stalling hop " + ctx.trace_id_hex())
          .substr(0, EventRing::kDetailBytes);
  EXPECT_EQ(recent[0].detail, expected);
}

TEST(StallWatchdog, GuardWithZeroDeadlineRegistersNothing) {
  const std::size_t before = global_watchdog().watched();
  {
    WatchdogGuard guard("noop", mint_trace(), 0);
    guard.progress(10);  // must be a safe no-op
    EXPECT_EQ(global_watchdog().watched(), before);
  }
  EXPECT_EQ(global_watchdog().watched(), before);
}

TEST(StallWatchdog, GuardRegistersAndDeregistersAgainstTheGlobalDog) {
  const std::size_t before = global_watchdog().watched();
  {
    WatchdogGuard guard("guarded transfer", mint_trace(), 5'000'000'000);
    EXPECT_EQ(global_watchdog().watched(), before + 1);
    guard.progress(100);
  }
  EXPECT_EQ(global_watchdog().watched(), before);
}

// ---- prometheus renderer --------------------------------------------

TEST(PrometheusRenderer, CounterAndGaugeFormat) {
  PrometheusRenderer r;
  r.counter("requests", 1234);
  r.gauge("cache_bytes_held", 77);
  EXPECT_EQ(r.str(),
            "# TYPE ipdelta_requests counter\n"
            "ipdelta_requests 1234\n"
            "# TYPE ipdelta_cache_bytes_held gauge\n"
            "ipdelta_cache_bytes_held 77\n");
}

TEST(PrometheusRenderer, LabeledSeriesEmitTypeOnce) {
  PrometheusRenderer r;
  r.counter("stage_ns", "stage", "diff", 5);
  r.counter("stage_ns", "stage", "encode", 9);
  const std::string& text = r.str();
  EXPECT_EQ(count_occurrences(text, "# TYPE ipdelta_stage_ns counter"), 1u);
  EXPECT_NE(text.find("ipdelta_stage_ns{stage=\"diff\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_stage_ns{stage=\"encode\"} 9\n"),
            std::string::npos);
}

TEST(PrometheusRenderer, HistogramRendersSummary) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  PrometheusRenderer r;
  r.histogram("serve_ns", h.snapshot());
  const std::string& text = r.str();
  EXPECT_NE(text.find("# TYPE ipdelta_serve_ns summary"), std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns{quantile=\"0.9\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find("ipdelta_serve_ns_count 100\n"), std::string::npos);
}

}  // namespace
}  // namespace ipd::obs
