#include "inplace/analysis.hpp"

#include <gtest/gtest.h>

#include "adversary/constructions.hpp"
#include "inplace/converter.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

TEST(LengthHistogram, BucketsByLog2) {
  LengthHistogram h;
  h.add(1);    // bucket 0
  h.add(2);    // bucket 1
  h.add(3);    // bucket 1
  h.add(4);    // bucket 2
  h.add(255);  // bucket 7
  h.add(256);  // bucket 8
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 2u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[7], 1u);
  EXPECT_EQ(h.buckets[8], 1u);
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.max_length, 256u);
  EXPECT_EQ(h.top_bucket(), 8u);
}

TEST(Analysis, CountsAndHistograms) {
  const Script s = script_of({C(100, 0, 64), A(64, "abcd"), C(0, 68, 10)});
  const DeltaAnalysis a = analyze_delta(s, 200);
  EXPECT_EQ(a.summary.copy_count, 2u);
  EXPECT_EQ(a.summary.add_count, 1u);
  EXPECT_EQ(a.copy_lengths.count, 2u);
  EXPECT_EQ(a.copy_lengths.max_length, 64u);
  EXPECT_EQ(a.add_lengths.max_length, 4u);
}

TEST(Analysis, ConflictFreeScript) {
  // Pure left shift: no conflicts at all.
  const Script s = script_of({C(100, 0, 50), C(160, 50, 40)});
  const DeltaAnalysis a = analyze_delta(s, 200);
  EXPECT_EQ(a.edges, 0u);
  EXPECT_EQ(a.conflicting_copies, 0u);
  EXPECT_EQ(a.nontrivial_sccs, 0u);
  EXPECT_TRUE(a.inplace_safe_as_ordered);
  for (const PolicyProjection& p : a.projections) {
    EXPECT_EQ(p.copies_converted, 0u);
    EXPECT_EQ(p.conversion_cost, 0u);
  }
}

TEST(Analysis, RotationShowsOneTwoCycle) {
  const AdversaryInstance inst = make_rotation(1000, 400);
  const DeltaAnalysis a = analyze_delta(inst.script, 1000);
  EXPECT_EQ(a.edges, 2u);
  EXPECT_EQ(a.conflicting_copies, 2u);
  EXPECT_EQ(a.nontrivial_sccs, 1u);
  EXPECT_EQ(a.largest_scc, 2u);
  EXPECT_EQ(a.cyclic_vertices, 2u);
  EXPECT_FALSE(a.inplace_safe_as_ordered);
  for (const PolicyProjection& p : a.projections) {
    EXPECT_EQ(p.copies_converted, 1u);
    EXPECT_GT(p.conversion_cost, 0u);
  }
}

TEST(Analysis, ProjectionMatchesActualConversion) {
  Rng rng(5);
  const AdversaryInstance inst =
      make_block_permutation(64, random_permutation(rng, 30));
  const DeltaAnalysis a = analyze_delta(inst.script, inst.reference.size());

  for (const PolicyProjection& proj : a.projections) {
    ConvertOptions copts;
    copts.policy = proj.policy;
    const ConvertResult actual =
        convert_to_inplace(inst.script, inst.reference, copts);
    EXPECT_EQ(proj.copies_converted, actual.report.copies_converted)
        << policy_name(proj.policy);
    EXPECT_EQ(proj.conversion_cost, actual.report.conversion_cost)
        << policy_name(proj.policy);
    EXPECT_EQ(proj.bytes_converted, actual.report.bytes_converted)
        << policy_name(proj.policy);
  }
}

TEST(Analysis, EncodedSizesOnlyForLegalFormats) {
  // Write-order script: all four sizes present, sequential smaller.
  const Script ordered = script_of({C(100, 0, 50), A(50, "xy")});
  const DeltaAnalysis a1 = analyze_delta(ordered, 200);
  EXPECT_GT(a1.size_paper_sequential, 0u);
  EXPECT_LT(a1.size_paper_sequential, a1.size_paper_explicit);
  EXPECT_LT(a1.size_varint_sequential, a1.size_varint_explicit);

  // Permuted script: sequential formats unavailable.
  const Script permuted = script_of({C(100, 50, 50), C(0, 0, 50)});
  const DeltaAnalysis a2 = analyze_delta(permuted, 200);
  EXPECT_EQ(a2.size_paper_sequential, 0u);
  EXPECT_GT(a2.size_paper_explicit, 0u);
}

TEST(Analysis, RejectsInvalidScripts) {
  const Script bad = script_of({C(300, 0, 50)});  // reads past reference
  EXPECT_THROW(analyze_delta(bad, 200), ValidationError);
}

TEST(Analysis, EmptyScript) {
  const DeltaAnalysis a = analyze_delta(Script{}, 0);
  EXPECT_EQ(a.summary.copy_count, 0u);
  EXPECT_TRUE(a.inplace_safe_as_ordered);
  EXPECT_EQ(a.copy_lengths.count, 0u);
}

TEST(Analysis, RenderMentionsEveryBlock) {
  const AdversaryInstance inst = make_rotation(500, 200);
  const std::string text =
      render_analysis(analyze_delta(inst.script, 500));
  EXPECT_NE(text.find("CRWI digraph"), std::string::npos);
  EXPECT_NE(text.find("conversion projection [constant-time]"),
            std::string::npos);
  EXPECT_NE(text.find("conversion projection [locally-minimum]"),
            std::string::npos);
  EXPECT_NE(text.find("in-place safe as ordered: no"), std::string::npos);
  EXPECT_NE(text.find("encoded sizes"), std::string::npos);
}

}  // namespace
}  // namespace ipd
