#include "core/rolling_hash.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

TEST(RollingHash, RollMatchesInitAtEveryPosition) {
  const Bytes data = random_bytes(10, 4096);
  for (const std::size_t window : {4ul, 16ul, 64ul}) {
    RollingHash rh(window);
    std::uint64_t h = rh.init(data);
    for (std::size_t pos = 0; pos + window < data.size(); ++pos) {
      const std::uint64_t fresh = rh.init(ByteView(data).subspan(pos));
      ASSERT_EQ(h, fresh) << "window " << window << " pos " << pos;
      h = rh.roll(h, data[pos], data[pos + window]);
    }
  }
}

TEST(RollingHash, EqualWindowsHashEqual) {
  Bytes data = random_bytes(11, 1024);
  // Duplicate a 64-byte region elsewhere.
  std::copy_n(data.begin() + 100, 64, data.begin() + 700);
  RollingHash rh(64);
  EXPECT_EQ(rh.init(ByteView(data).subspan(100)),
            rh.init(ByteView(data).subspan(700)));
}

TEST(RollingHash, WindowOfOne) {
  RollingHash rh(1);
  const Bytes data = {10, 20, 30};
  std::uint64_t h = rh.init(data);
  EXPECT_EQ(h, 10u);
  h = rh.roll(h, 10, 20);
  EXPECT_EQ(h, 20u);
}

TEST(RollingHash, DistinctContentUsuallyDistinctHash) {
  // Not a cryptographic property, but 1000 random 16-byte windows should
  // essentially never collide in 64 bits.
  RollingHash rh(16);
  std::vector<std::uint64_t> hashes;
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    hashes.push_back(rh.init(random_bytes(seed, 16)));
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

TEST(RollingHash, MixChangesLowBits) {
  // Raw polynomial hashes of single-byte-different windows can share low
  // bits; mix() must spread the difference for bucketing.
  RollingHash rh(8);
  Bytes a = random_bytes(12, 8);
  Bytes b = a;
  b[7] ^= 1;  // last byte contributes *1 to the raw hash
  const std::uint64_t ha = RollingHash::mix(rh.init(a));
  const std::uint64_t hb = RollingHash::mix(rh.init(b));
  EXPECT_NE(ha & 0xFFFF, hb & 0xFFFF);
}

}  // namespace
}  // namespace ipd
