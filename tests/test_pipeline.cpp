// ipd::Pipeline (src/ipdelta.hpp): the unified build API — the ONLY
// build entry point since the legacy create_delta/create_inplace_delta
// wrappers were removed. Covers the BuildResult contract, format
// resolution (PipelineOptions::format is the single source of format
// truth; convert.format is never read from the caller), and the full
// determinism matrix — every differ × format × cycle policy builds
// byte-identical deltas at parallelism 1, 2 and 8.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <tuple>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

Bytes versioned_pair(std::uint64_t seed, std::size_t size, Bytes* ref_out) {
  Rng rng(seed);
  *ref_out = generate_file(rng, size, FileProfile::kBinary);
  return mutate(*ref_out, rng, size / 1024 + 8);
}

// Small thresholds so modest test inputs exercise the parallel path.
PipelineOptions parallel_options(std::size_t parallelism) {
  PipelineOptions options;
  options.parallelism = parallelism;
  options.min_parallel_input = 32 << 10;
  options.parallel_segment_bytes = 16 << 10;
  return options;
}

TEST(Pipeline, BuildDeltaRoundTripsAndReports) {
  Bytes ref;
  const Bytes ver = versioned_pair(1, 64 << 10, &ref);
  const Pipeline pipeline;
  const BuildResult r = pipeline.build_delta(ref, ver);

  EXPECT_TRUE(test::bytes_equal(ver, pipeline.apply(r.delta, ref)));
  EXPECT_EQ(r.stats.compression.reference_size, ref.size());
  EXPECT_EQ(r.stats.compression.version_size, ver.size());
  EXPECT_EQ(r.stats.compression.delta_size, r.delta.size());
  EXPECT_GT(r.stats.script.copy_count + r.stats.script.add_count, 0u);
  EXPECT_EQ(r.stats.script.version_bytes(), ver.size());
  EXPECT_EQ(r.timing.diff_segments, 1u) << "64 KiB is below the 4 MiB cutoff";
  EXPECT_GT(r.timing.total_ns, 0u);
  EXPECT_GE(r.timing.total_ns,
            r.timing.diff_ns + r.timing.convert_ns + r.timing.encode_ns);
  // build_delta performs no conversion.
  EXPECT_EQ(r.timing.convert_ns, 0u);
  EXPECT_EQ(r.report.copies_converted, 0u);
}

TEST(Pipeline, BuildInplaceRoundTripsAndReports) {
  Bytes ref;
  const Bytes ver = versioned_pair(2, 64 << 10, &ref);
  const Pipeline pipeline;
  const BuildResult r = pipeline.build_inplace(ref, ver);

  const auto parsed = try_parse_header(r.delta);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->first.in_place);
  EXPECT_TRUE(test::bytes_equal(ver, pipeline.apply(r.delta, ref)));
  EXPECT_GT(r.report.copies_in, 0u);
  EXPECT_EQ(r.timing.crwi_chunks, r.report.crwi_parallel_chunks);
  EXPECT_EQ(r.stats.compression.delta_size, r.delta.size());
}

TEST(Pipeline, ApplyDispatchesOnHeaderFlag) {
  Bytes ref;
  const Bytes ver = versioned_pair(3, 32 << 10, &ref);
  const Pipeline pipeline;
  // Scratch-space artifact through the same apply() entry point.
  const BuildResult plain = pipeline.build_delta(ref, ver);
  const BuildResult inplace = pipeline.build_inplace(ref, ver);
  EXPECT_TRUE(test::bytes_equal(ver, pipeline.apply(plain.delta, ref)));
  EXPECT_TRUE(test::bytes_equal(ver, pipeline.apply(inplace.delta, ref)));
  EXPECT_THROW(pipeline.apply(Bytes{0x00}, ref), FormatError);
}

TEST(Pipeline, FormatResolution) {
  Bytes ref;
  const Bytes ver = versioned_pair(5, 32 << 10, &ref);

  // Top-level format drives build_delta verbatim and build_inplace with
  // offsets forced explicit.
  Pipeline varint({.format = kVarintSequential});
  auto plain = try_parse_header(varint.build_delta(ref, ver).delta);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->first.format, kVarintSequential);
  auto inplace = try_parse_header(varint.build_inplace(ref, ver).delta);
  ASSERT_TRUE(inplace.has_value());
  EXPECT_EQ(inplace->first.format, kVarintExplicit);

  // The legacy convert.format shim is gone: a caller-set convert.format
  // is ignored — PipelineOptions::format alone picks the encoding, for
  // build_delta and build_inplace alike.
  PipelineOptions stale;
  stale.convert.format = kVarintExplicit;  // must have no effect
  auto unshimmed =
      try_parse_header(Pipeline(stale).build_inplace(ref, ver).delta);
  ASSERT_TRUE(unshimmed.has_value());
  EXPECT_EQ(unshimmed->first.format, kPaperExplicit)
      << "convert.format leaked into the emitted encoding";
}

TEST(Pipeline, SharedPoolCapsParallelism) {
  ThreadPool pool(2);
  const Pipeline pipeline(parallel_options(8), &pool);
  EXPECT_EQ(pipeline.parallelism(), 3u) << "pool width + participating caller";
  const Pipeline serial(parallel_options(1), &pool);
  EXPECT_EQ(serial.parallelism(), 1u);
}

TEST(Pipeline, ParallelBuildUsesSegmentsAndRoundTrips) {
  Bytes ref;
  const Bytes ver = versioned_pair(6, 160 << 10, &ref);
  const Pipeline pipeline(parallel_options(4));
  const BuildResult r = pipeline.build_inplace(ref, ver);
  EXPECT_GT(r.timing.diff_segments, 1u);
  EXPECT_TRUE(test::bytes_equal(ver, pipeline.apply(r.delta, ref)));
}

// ---- the determinism matrix ------------------------------------------
// ISSUE acceptance: every DifferKind × format × cycle policy, built at
// parallelism 1, 2 and 8, yields byte-identical deltas.

using MatrixCase = std::tuple<DifferKind, DeltaFormat, BreakPolicy>;

class PipelineMatrix : public ::testing::TestWithParam<MatrixCase> {};

std::string matrix_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  const auto& [differ, format, policy] = info.param;
  std::string name = std::string(differ_name(differ)) + "_";
  name += format.codeword == Codeword::kVarint ? "varint" : "paper";
  name += "_";
  switch (policy) {
    case BreakPolicy::kConstantTime: name += "constant"; break;
    case BreakPolicy::kLocalMin: name += "localmin"; break;
    case BreakPolicy::kExactOptimal: name += "exact"; break;
    case BreakPolicy::kSccGlobalMin: name += "scc"; break;
  }
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Full, PipelineMatrix,
    ::testing::Combine(
        ::testing::Values(DifferKind::kGreedy, DifferKind::kOnePass,
                          DifferKind::kSuffixGreedy, DifferKind::kBlockAligned),
        ::testing::Values(kPaperSequential, kVarintSequential),
        ::testing::Values(BreakPolicy::kConstantTime, BreakPolicy::kLocalMin,
                          BreakPolicy::kExactOptimal,
                          BreakPolicy::kSccGlobalMin)),
    matrix_name);

TEST_P(PipelineMatrix, ByteIdenticalAcrossParallelism) {
  const auto& [differ, format, policy] = GetParam();
  // The exact-greedy differ is quadratic-era machinery — smaller input.
  const std::size_t size =
      differ == DifferKind::kSuffixGreedy ? (48 << 10) : (128 << 10);
  Bytes ref;
  const Bytes ver = versioned_pair(7, size, &ref);

  Bytes baseline_plain;
  Bytes baseline_inplace;
  for (const std::size_t parallelism : {1ul, 2ul, 8ul}) {
    PipelineOptions options = parallel_options(parallelism);
    options.differ = differ;
    options.format = format;
    options.convert.policy = policy;
    if (policy == BreakPolicy::kExactOptimal) {
      // Real diffs have far more than 64 copy vertices; lift the guard
      // and bound the branch & bound instead. Best-found-so-far is a
      // deterministic function of the graph, which is all this matrix
      // asserts.
      options.convert.exact.max_vertices =
          std::numeric_limits<std::size_t>::max();
      options.convert.exact.max_search_nodes = 5'000;
    }
    const Pipeline pipeline(options);
    const BuildResult plain = pipeline.build_delta(ref, ver);
    const BuildResult inplace = pipeline.build_inplace(ref, ver);
    if (parallelism == 1) {
      baseline_plain = plain.delta;
      baseline_inplace = inplace.delta;
      // Prove the matrix exercises the segmented path, and the output.
      EXPECT_GT(plain.timing.diff_segments, 1u);
      EXPECT_TRUE(test::bytes_equal(ver, pipeline.apply(plain.delta, ref)));
      EXPECT_TRUE(test::bytes_equal(ver, pipeline.apply(inplace.delta, ref)));
    } else {
      EXPECT_EQ(plain.delta, baseline_plain)
          << "plain delta diverged at parallelism=" << parallelism;
      EXPECT_EQ(inplace.delta, baseline_inplace)
          << "in-place delta diverged at parallelism=" << parallelism;
    }
  }
}

}  // namespace
}  // namespace ipd
