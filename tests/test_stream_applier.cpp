#include "apply/stream_applier.hpp"

#include <gtest/gtest.h>

#include "adversary/constructions.hpp"
#include "core/checksum.hpp"
#include "corpus/workload.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

struct Fixture {
  Bytes ref;
  Bytes ver;
  Bytes delta;
};

Fixture make_fixture(std::uint64_t seed = 11) {
  Fixture f;
  f.ref = test::random_bytes(seed, 20000);
  f.ver = f.ref;
  // Swap two blocks to force conflicts/cycles, then tweak.
  for (int i = 0; i < 3000; ++i) std::swap(f.ver[i], f.ver[i + 10000]);
  f.ver[5000] ^= 0xFF;
  f.delta = Pipeline().build_inplace(f.ref, f.ver).delta;
  return f;
}

class ChunkSizes : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Sweep, ChunkSizes,
                         ::testing::Values(1, 7, 64, 1024, 1 << 20));

TEST_P(ChunkSizes, ReconstructsForEveryChunking) {
  const Fixture f = make_fixture();
  Bytes buffer = f.ref;
  buffer.resize(std::max(f.ref.size(), f.ver.size()));
  const length_t n =
      apply_delta_inplace_streaming(f.delta, buffer, GetParam());
  EXPECT_EQ(n, f.ver.size());
  EXPECT_TRUE(test::bytes_equal(f.ver, ByteView(buffer).first(n)));
}

TEST(StreamApplier, AppliesCommandsAsTheyArrive) {
  const Fixture f = make_fixture();
  Bytes buffer = f.ref;
  StreamingInplaceApplier applier(buffer);

  // Feed half the delta: some commands must already be applied, but the
  // applier must not claim completion.
  applier.feed(ByteView(f.delta).first(f.delta.size() / 2));
  EXPECT_TRUE(applier.header().has_value());
  EXPECT_FALSE(applier.finished());
  const std::size_t mid = applier.commands_applied();
  EXPECT_GT(mid, 0u);

  applier.feed(ByteView(f.delta).subspan(f.delta.size() / 2));
  EXPECT_TRUE(applier.finished());
  EXPECT_GT(applier.commands_applied(), mid);
  EXPECT_TRUE(test::bytes_equal(
      f.ver, ByteView(buffer).first(f.ver.size())));
}

TEST(StreamApplier, PeakBufferIsBoundedByLargestCommand) {
  const Fixture f = make_fixture();
  Bytes buffer = f.ref;
  StreamingInplaceApplier applier(buffer);
  for (std::size_t pos = 0; pos < f.delta.size(); pos += 64) {
    applier.feed(
        ByteView(f.delta).subspan(pos, std::min<std::size_t>(64, f.delta.size() - pos)));
  }
  ASSERT_TRUE(applier.finished());
  // Parser backlog never holds the whole delta.
  EXPECT_LT(applier.peak_buffered(), f.delta.size() / 2);
}

TEST(StreamApplier, HeaderAvailableBeforePayload) {
  const Fixture f = make_fixture();
  Bytes buffer = f.ref;
  StreamingInplaceApplier applier(buffer);
  std::size_t fed = 0;
  while (!applier.header() && fed < f.delta.size()) {
    applier.feed(ByteView(f.delta).subspan(fed, 1));
    ++fed;
  }
  ASSERT_TRUE(applier.header().has_value());
  EXPECT_LT(fed, 64u);  // header is a few dozen bytes at most
  EXPECT_EQ(applier.header()->reference_length, f.ref.size());
  EXPECT_EQ(applier.header()->version_length, f.ver.size());
  EXPECT_TRUE(applier.header()->in_place);
}

TEST(StreamApplier, RejectsNonInplaceDelta) {
  const Fixture f = make_fixture();
  const Bytes plain = Pipeline({.format = kPaperExplicit}).build_delta(f.ref, f.ver).delta;
  const DeltaFile parsed = deserialize_delta(plain);
  if (parsed.in_place) {
    GTEST_SKIP() << "delta happened to be conflict-free";
  }
  Bytes buffer = f.ref;
  StreamingInplaceApplier applier(buffer);
  EXPECT_THROW(applier.feed(plain), ValidationError);
}

TEST(StreamApplier, OptionAllowsUnflaggedConflictFreeDelta) {
  // An all-add delta is trivially safe; with the flag requirement off
  // and conflict checking on, it streams fine.
  const Bytes ver = test::random_bytes(3, 600);
  const Bytes delta = Pipeline({.format = kVarintExplicit}).build_delta({}, ver).delta;
  Bytes buffer(ver.size());
  StreamApplyOptions options;
  options.require_inplace_flag = false;
  const length_t n = apply_delta_inplace_streaming(delta, buffer, 32, options);
  EXPECT_TRUE(test::bytes_equal(ver, ByteView(buffer).first(n)));
}

TEST(StreamApplier, ConflictCheckingCatchesUnsafeOrder) {
  const AdversaryInstance inst = make_rotation(500, 100);
  DeltaFile file;
  file.format = kVarintExplicit;
  file.in_place = true;  // lie: the script has a WR conflict
  file.reference_length = 500;
  file.version_length = 500;
  file.version_crc = crc32c(inst.version);
  file.script = inst.script;
  const Bytes wire = serialize_delta(file);

  Bytes buffer = inst.reference;
  StreamingInplaceApplier applier(buffer);
  EXPECT_THROW(applier.feed(wire), ConflictError);
}

TEST(StreamApplier, BufferTooSmallRejectedAtHeader) {
  const Fixture f = make_fixture();
  Bytes buffer(100);  // far too small
  StreamingInplaceApplier applier(buffer);
  EXPECT_THROW(applier.feed(f.delta), ValidationError);
}

TEST(StreamApplier, CorruptPayloadFailsAdlerAtEnd) {
  // An all-add delta whose middle byte sits inside add data: the flipped
  // byte parses fine and applies, and the payload adler catches it at
  // completion.
  const Bytes ver = test::random_bytes(9, 4000);
  Bytes delta = Pipeline().build_inplace({}, ver).delta;
  delta[delta.size() / 2] ^= 0x01;
  Bytes buffer(ver.size());
  StreamingInplaceApplier applier(buffer);
  EXPECT_THROW(applier.feed(delta), FormatError);
}

TEST(StreamApplier, CorruptCommandFieldRejectedEagerly) {
  // Corruption landing in a command field is caught by per-command
  // validation before the stream even ends.
  Fixture f = make_fixture();
  f.delta[f.delta.size() - 3] ^= 0x01;
  Bytes buffer = f.ref;
  StreamingInplaceApplier applier(buffer);
  EXPECT_THROW(applier.feed(f.delta), Error);
  EXPECT_FALSE(applier.finished());
}

TEST(StreamApplier, TrailingGarbageRejected) {
  const Fixture f = make_fixture();
  Bytes with_garbage = f.delta;
  with_garbage.push_back(0xAB);
  Bytes buffer = f.ref;
  StreamingInplaceApplier applier(buffer);
  EXPECT_THROW(applier.feed(with_garbage), FormatError);
}

TEST(StreamApplier, TruncatedStreamNeverFinishes) {
  const Fixture f = make_fixture();
  Bytes buffer = f.ref;
  EXPECT_THROW(apply_delta_inplace_streaming(
                   ByteView(f.delta).first(f.delta.size() - 5), buffer, 64),
               FormatError);
}

TEST(StreamApplier, PoisonedAfterError) {
  const Fixture f = make_fixture();
  Bytes small(10);
  StreamingInplaceApplier applier(small);
  EXPECT_THROW(applier.feed(f.delta), ValidationError);
  EXPECT_THROW(applier.feed(ByteView{}), ValidationError);
}

TEST(StreamApplier, ZeroChunkSizeRejected) {
  Bytes buffer(1);
  EXPECT_THROW(apply_delta_inplace_streaming(buffer, buffer, 0),
               ValidationError);
}

TEST(StreamApplier, EmptyDeltaForEmptyFiles) {
  const Bytes delta = Pipeline().build_inplace({}, {}).delta;
  Bytes buffer;
  EXPECT_EQ(apply_delta_inplace_streaming(delta, buffer, 3), 0u);
}

TEST(StreamApplier, MatchesBatchApplierAcrossCorpus) {
  for (const VersionPair& pair : small_corpus(21)) {
    const Bytes delta = Pipeline().build_inplace(pair.reference, pair.version).delta;
    Bytes batch = pair.reference;
    batch.resize(std::max(pair.reference.size(), pair.version.size()));
    apply_delta_inplace(delta, batch);

    Bytes streamed = pair.reference;
    streamed.resize(batch.size());
    apply_delta_inplace_streaming(delta, streamed, 113);
    EXPECT_TRUE(test::bytes_equal(batch, streamed)) << pair.name;
  }
}

}  // namespace
}  // namespace ipd
