#include "delta/onepass_differ.hpp"

#include <gtest/gtest.h>

#include "apply/apply.hpp"
#include "delta/greedy_differ.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

Script diff(ByteView ref, ByteView ver, DifferOptions opts = {}) {
  return OnePassDiffer(opts).diff(ref, ver);
}

void expect_roundtrip(ByteView ref, ByteView ver, const Script& script) {
  ASSERT_NO_THROW(script.validate(ref.size(), ver.size()));
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(script, ref)));
}

TEST(OnePassDiffer, IdenticalFilesSingleCopy) {
  const Bytes file = random_bytes(21, 20000);
  const Script script = diff(file, file);
  expect_roundtrip(file, file, script);
  EXPECT_EQ(script.summary().copy_count, 1u);
  EXPECT_EQ(script.summary().added_bytes, 0u);
}

TEST(OnePassDiffer, EmptyInputs) {
  EXPECT_TRUE(diff({}, {}).empty());
  const Bytes ver = random_bytes(22, 300);
  const Script script = diff({}, ver);
  expect_roundtrip({}, ver, script);
  EXPECT_EQ(script.summary().copy_count, 0u);
}

TEST(OnePassDiffer, LocalEditPreservesMostBytesAsCopies) {
  const Bytes ref = random_bytes(23, 65536);
  Bytes ver = ref;
  // A realistic release edit: replace a 1 KiB region.
  const Bytes patch = random_bytes(24, 1024);
  std::copy(patch.begin(), patch.end(), ver.begin() + 30000);
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  EXPECT_GT(script.summary().copied_bytes, 63000u);
}

TEST(OnePassDiffer, InsertionRoundTrips) {
  const Bytes ref = random_bytes(25, 8192);
  Bytes ver = ref;
  const Bytes inserted = random_bytes(26, 333);
  ver.insert(ver.begin() + 4000, inserted.begin(), inserted.end());
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
  EXPECT_GT(script.summary().copied_bytes, 7800u);
}

TEST(OnePassDiffer, ConstantSpaceTableIsFixedSize) {
  // A tiny table still yields a correct (if less compact) delta on input
  // much larger than the table — the "constant space" property.
  const Bytes ref = random_bytes(27, 1 << 18);
  Bytes ver = ref;
  ver[1000] ^= 1;
  const Script script = diff(ref, ver, {.table_bits = 8});
  expect_roundtrip(ref, ver, script);
}

TEST(OnePassDiffer, CollisionsCostCompressionNotCorrectness) {
  // With a 256-slot table over 256 KiB, nearly every insert collides;
  // output must still reconstruct exactly.
  const Bytes ref = random_bytes(28, 1 << 18);
  const Bytes ver = [&] {
    Bytes v = ref;
    for (std::size_t i = 0; i < v.size(); i += 50000) v[i] ^= 0xA5;
    return v;
  }();
  const Script tiny_table = diff(ref, ver, {.table_bits = 8});
  const Script big_table = diff(ref, ver, {.table_bits = 20});
  expect_roundtrip(ref, ver, tiny_table);
  expect_roundtrip(ref, ver, big_table);
  // The bigger table should never compress worse.
  EXPECT_LE(big_table.summary().added_bytes,
            tiny_table.summary().added_bytes);
}

TEST(OnePassDiffer, CompressionCloseToGreedyOnVersionedData) {
  // The paper's claim for [5]: a small compression loss against greedy in
  // exchange for linear time. "Close" here = within 3x added bytes on a
  // realistic versioned pair.
  const Bytes ref = random_bytes(29, 1 << 16);
  Bytes ver = ref;
  Rng rng(30);
  for (int edit = 0; edit < 8; ++edit) {
    const std::size_t at = rng.below(ver.size() - 100);
    const Bytes patch = random_bytes(edit, 64);
    std::copy(patch.begin(), patch.end(),
              ver.begin() + static_cast<std::ptrdiff_t>(at));
  }
  const Script onepass = diff(ref, ver);
  const Script greedy = GreedyDiffer().diff(ref, ver);
  expect_roundtrip(ref, ver, onepass);
  expect_roundtrip(ref, ver, greedy);
  EXPECT_LE(onepass.summary().added_bytes,
            3 * greedy.summary().added_bytes + 512);
}

TEST(OnePassDiffer, TailShorterThanSeedBecomesLiterals) {
  const Bytes ref = random_bytes(31, 1000);
  Bytes ver(ref.begin(), ref.begin() + 500);
  ver.insert(ver.end(), {1, 2, 3});  // 3-byte tail, unmatched
  const Script script = diff(ref, ver);
  expect_roundtrip(ref, ver, script);
}

TEST(OnePassDiffer, FirstOccurrenceWinsSlot) {
  // Two identical blocks in the reference: matches must resolve to the
  // first (slot insertion policy), keeping `from` stable.
  Bytes ref = random_bytes(32, 256);
  const Bytes block = random_bytes(33, 512);
  ref.insert(ref.end(), block.begin(), block.end());
  ref.insert(ref.end(), block.begin(), block.end());
  const Script script = diff(ref, block);
  expect_roundtrip(ref, block, script);
  ASSERT_EQ(script.summary().copy_count, 1u);
  EXPECT_EQ(script.copies()[0].from, 256u);
}

}  // namespace
}  // namespace ipd
