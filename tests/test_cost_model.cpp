#include <gtest/gtest.h>

#include "core/varint.hpp"
#include "delta/codec.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

// The cost model must agree byte-for-byte with the encoder: encoding a
// single command and measuring the payload is the ground truth. The
// payload length is parsed out of the container header so header varint
// width changes cannot skew the measurement.
std::size_t measured_payload(const Command& cmd, DeltaFormat fmt,
                             length_t ref_len, length_t ver_len) {
  DeltaFile file;
  file.format = fmt;
  file.reference_length = ref_len;
  file.version_length = ver_len;
  file.script.push(cmd);
  const Bytes wire = serialize_delta(file);
  // Header: magic(4) format(1) flags(1) ref(varint) ver(varint) crc(4)
  // payload_len(varint) adler(4) payload.
  ByteView rest = ByteView(wire).subspan(6);
  rest = rest.subspan(decode_varint(rest).consumed);  // ref_len
  rest = rest.subspan(decode_varint(rest).consumed);  // ver_len
  rest = rest.subspan(4);                             // crc
  return static_cast<std::size_t>(decode_varint(rest).value);
}

class CostModelTest : public ::testing::TestWithParam<DeltaFormat> {};

INSTANTIATE_TEST_SUITE_P(ExplicitFormats, CostModelTest,
                         ::testing::Values(kPaperExplicit, kVarintExplicit,
                                           kPaperSequential,
                                           kVarintSequential));

TEST_P(CostModelTest, CopySizeMatchesEncoder) {
  const length_t ver_len = 1 << 20;
  const CodewordCostModel model(GetParam(), ver_len);
  const CopyCommand cases[] = {
      {0, 0, 1},           {100, 0, 255},       {0xFFFF, 0, 256},
      {0x10000, 0, 0xFFFF}, {0xFFFFFFFFull, 0, 0x10000},
      {0x1'0000'0000ull, 0, 12345},
  };
  for (const CopyCommand& c : cases) {
    EXPECT_EQ(model.copy_size(c),
              measured_payload(c, GetParam(), 0x2'0000'0000ull, ver_len))
        << c;
  }
}

TEST_P(CostModelTest, AddSizeMatchesEncoder) {
  const length_t ver_len = 1 << 20;
  const CodewordCostModel model(GetParam(), ver_len);
  for (const length_t len : {1ull, 100ull, 255ull, 256ull, 1000ull, 70000ull}) {
    const AddCommand a{0, test::random_bytes(len, len)};
    EXPECT_EQ(model.add_size(0, len),
              measured_payload(a, GetParam(), 0, ver_len))
        << "len " << len;
  }
}

TEST(CostModel, WideOffsetWidthForHugeVersions) {
  EXPECT_EQ(CodewordCostModel(kPaperExplicit, 1 << 20).offset_width(), 4u);
  EXPECT_EQ(
      CodewordCostModel(kPaperExplicit, 0x1'0000'0001ull).offset_width(), 8u);
}

TEST(CostModel, ConversionCostApproximatesPaperFormula) {
  // The paper: replacing a copy with an add grows the delta by l - |f|.
  const CodewordCostModel model(kPaperExplicit, 1 << 20);
  const CopyCommand c{1000, 2000, 500};
  // add: 2 chunks -> 2*(1+4+1) + 500; copy: 1+4+2+2 = 9.
  EXPECT_EQ(model.conversion_cost(c), model.add_size(c.to, c.length) -
                                          model.copy_size(c));
  EXPECT_GT(model.conversion_cost(c), 480u);
  EXPECT_LT(model.conversion_cost(c), 520u);
}

TEST(CostModel, ConversionCostClampedToPositive) {
  // A 1-byte copy with a huge `from` can encode larger than its add; the
  // policy cost must still be >= 1.
  const CodewordCostModel model(kVarintExplicit, 100);
  const CopyCommand tiny{0xFFFFFFFFFFFFull, 5, 1};
  EXPECT_GE(model.conversion_cost(tiny), 1u);
}

TEST(CostModel, LongerCopiesCostMoreToConvert) {
  const CodewordCostModel model(kPaperExplicit, 1 << 20);
  std::uint64_t prev = 0;
  for (const length_t len : {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
    const std::uint64_t cost = model.conversion_cost(CopyCommand{0, 0, len});
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

}  // namespace
}  // namespace ipd
