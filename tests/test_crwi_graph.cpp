#include "inplace/crwi_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/constructions.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

std::vector<CopyCommand> sorted_copies(const Script& s) {
  auto copies = s.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  return copies;
}

TEST(CrwiGraph, EmptyGraph) {
  const CrwiGraph g = CrwiGraph::build({}, 0);
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_cycle());
}

TEST(CrwiGraph, NoConflictsNoEdges) {
  // Copies that read ahead of everything they write (pure left shift).
  const std::vector<CopyCommand> copies = {{100, 0, 10}, {110, 10, 10}};
  const CrwiGraph g = CrwiGraph::build(copies, 120);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_cycle());
}

TEST(CrwiGraph, SingleEdgeDirection) {
  // u reads [10,19]; v writes [10,19]: edge u->v (u must run first).
  // Sorted by write offset: u (t=0) is vertex 0, v (t=10) is vertex 1.
  const std::vector<CopyCommand> copies = {{10, 0, 10}, {50, 10, 10}};
  const CrwiGraph g = CrwiGraph::build(copies, 60);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.successors(0)[0], 1u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_FALSE(g.has_cycle());
}

TEST(CrwiGraph, SelfOverlapIsNotAnEdge) {
  // A copy whose read and write intervals overlap conflicts only with
  // itself — no vertex self-edge (§4.1).
  const std::vector<CopyCommand> copies = {{5, 0, 10}};
  const CrwiGraph g = CrwiGraph::build(copies, 10);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(CrwiGraph, TwoCycle) {
  // Swap halves: each copy reads what the other writes.
  const std::vector<CopyCommand> copies = {{10, 0, 10}, {0, 10, 10}};
  const CrwiGraph g = CrwiGraph::build(copies, 20);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_cycle());
}

TEST(CrwiGraph, EdgesMatchDefinitionOnRandomScripts) {
  // Brute-force check of the §4.2 edge relation on random disjoint
  // layouts.
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<CopyCommand> copies;
    offset_t cursor = 0;
    const length_t total = 2000;
    while (cursor < total) {
      const length_t len = rng.range(1, 40);
      copies.push_back(
          CopyCommand{rng.below(total - len), cursor, len});
      cursor += len + rng.below(3);
    }
    const length_t version_length = cursor + 10;
    const CrwiGraph g = CrwiGraph::build(copies, version_length);

    std::size_t expected_edges = 0;
    for (std::uint32_t u = 0; u < copies.size(); ++u) {
      std::vector<std::uint32_t> expected;
      for (std::uint32_t v = 0; v < copies.size(); ++v) {
        if (u != v && copies[u].read_interval().intersects(
                          copies[v].write_interval())) {
          expected.push_back(v);
        }
      }
      expected_edges += expected.size();
      const auto succ = g.successors(u);
      ASSERT_TRUE(std::equal(succ.begin(), succ.end(), expected.begin(),
                             expected.end()))
          << "vertex " << u << " trial " << trial;
    }
    EXPECT_EQ(g.edge_count(), expected_edges);
    // Lemma 1.
    EXPECT_LE(g.edge_count(), version_length);
  }
}

TEST(CrwiGraph, Fig3RealizesQuadraticEdges) {
  for (const length_t block : {4ull, 8ull, 16ull, 32ull}) {
    const Fig3Instance inst = make_fig3_quadratic(block);
    const auto copies = sorted_copies(inst.script);
    const CrwiGraph g = CrwiGraph::build(copies, block * block);
    EXPECT_EQ(g.edge_count(), inst.expected_edges);
    // Θ(|C|²): with |C| = 2√L - 1, edges = (√L-1)√L > (|C|/2)²/2.
    const double c = static_cast<double>(g.vertex_count());
    EXPECT_GE(static_cast<double>(g.edge_count()), c * c / 8);
    // Lemma 1 stays tight but not violated.
    EXPECT_LE(g.edge_count(), block * block);
    EXPECT_FALSE(g.has_cycle());
  }
}

TEST(CrwiGraph, Fig2TreeShape) {
  const Fig2Instance inst = make_fig2_tree(4);  // 15 nodes, 8 leaves
  const auto copies = sorted_copies(inst.script);
  ASSERT_EQ(copies.size(), 15u);
  const CrwiGraph g = CrwiGraph::build(copies, inst.version.size());
  // 14 tree edges (each non-root child pointed at by its parent) + 8
  // leaf->root edges.
  EXPECT_EQ(g.edge_count(), 22u);
  EXPECT_TRUE(g.has_cycle());
  // Root (vertex 0 in write order) has out-degree 2; leaves point only at
  // the root.
  EXPECT_EQ(g.out_degree(0), 2u);
  std::size_t leaves = 0;
  for (std::uint32_t v = 0; v < g.vertex_count(); ++v) {
    if (g.out_degree(v) == 1 && g.successors(v)[0] == 0) ++leaves;
  }
  EXPECT_EQ(leaves, inst.leaf_count);
}

TEST(CrwiGraph, PermutationCyclesMatch) {
  // A single 6-cycle permutation -> one 6-cycle in the digraph.
  const auto perm = single_cycle_permutation(6);
  const AdversaryInstance inst = make_block_permutation(8, perm);
  const auto copies = sorted_copies(inst.script);
  const CrwiGraph g = CrwiGraph::build(copies, 48);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(g.has_cycle());
  for (std::uint32_t v = 0; v < 6; ++v) {
    ASSERT_EQ(g.out_degree(v), 1u);
    EXPECT_EQ(g.successors(v)[0], perm[v]);
  }
}

TEST(CrwiGraph, NoCompleteTripleExists) {
  // §5: "the CRWI class does not include any complete digraphs with more
  // than two vertices". Sweep many random instances and verify no three
  // vertices are pairwise connected in both directions. (A complete
  // triple needs each vertex's read interval to hit both others' disjoint
  // writes while all three writes stay disjoint — impossible.)
  Rng rng(0xC3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<CopyCommand> copies;
    offset_t cursor = 0;
    const length_t total = 400;
    while (cursor < total) {
      const length_t len = rng.range(1, 30);
      copies.push_back(CopyCommand{
          rng.below(total), cursor, std::min<length_t>(len, total - cursor)});
      cursor += copies.back().length;
    }
    const CrwiGraph g = CrwiGraph::build(copies, total);
    // Adjacency lookup.
    const auto has_edge = [&](std::uint32_t a, std::uint32_t b) {
      const auto succ = g.successors(a);
      return std::find(succ.begin(), succ.end(), b) != succ.end();
    };
    const std::size_t n = g.vertex_count();
    for (std::uint32_t a = 0; a < n; ++a) {
      for (const std::uint32_t b : g.successors(a)) {
        if (b <= a || !has_edge(b, a)) continue;
        // (a, b) is a 2-cycle; no third vertex may complete the triple.
        for (std::uint32_t c = 0; c < n; ++c) {
          if (c == a || c == b) continue;
          EXPECT_FALSE(has_edge(a, c) && has_edge(c, a) && has_edge(b, c) &&
                       has_edge(c, b))
              << "complete triple " << a << "," << b << "," << c
              << " in trial " << trial;
        }
      }
    }
  }
}

TEST(CrwiGraph, IdentityPermutationIsEdgeless) {
  std::vector<std::uint32_t> identity(5);
  for (std::uint32_t i = 0; i < 5; ++i) identity[i] = i;
  const AdversaryInstance inst = make_block_permutation(16, identity);
  const CrwiGraph g =
      CrwiGraph::build(sorted_copies(inst.script), 80);
  EXPECT_EQ(g.edge_count(), 0u);
}

}  // namespace
}  // namespace ipd
