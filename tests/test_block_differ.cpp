#include "delta/block_differ.hpp"

#include <gtest/gtest.h>

#include "apply/apply.hpp"
#include "delta/greedy_differ.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

Script diff(ByteView ref, ByteView ver, std::size_t block = 512) {
  return BlockDiffer(DifferOptions{.block_size = block}).diff(ref, ver);
}

void expect_roundtrip(ByteView ref, ByteView ver, const Script& script) {
  ASSERT_NO_THROW(script.validate(ref.size(), ver.size()));
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(script, ref)));
}

TEST(BlockDiffer, IdenticalFilesAllBlockCopies) {
  const Bytes file = random_bytes(1, 8192);
  const Script s = diff(file, file, 512);
  expect_roundtrip(file, file, s);
  EXPECT_EQ(s.summary().added_bytes, 0u);
  EXPECT_EQ(s.summary().copy_count, 16u);
}

TEST(BlockDiffer, AlignedBlockChangeCostsOneBlock) {
  const Bytes ref = random_bytes(2, 8192);
  Bytes ver = ref;
  ver[1024] ^= 1;  // inside block 2
  const Script s = diff(ref, ver, 512);
  expect_roundtrip(ref, ver, s);
  EXPECT_EQ(s.summary().added_bytes, 512u);
}

TEST(BlockDiffer, SingleInsertedByteDestroysAllDownstreamMatches) {
  // The §2 alignment pathology this baseline exists to demonstrate.
  const Bytes ref = random_bytes(3, 8192);
  Bytes ver = ref;
  ver.insert(ver.begin(), 0xAA);  // shift everything by one byte
  const Script s = diff(ref, ver, 512);
  expect_roundtrip(ref, ver, s);
  EXPECT_EQ(s.summary().copied_bytes, 0u);  // nothing aligns any more

  // The byte-granularity differ shrugs it off.
  const Script g = GreedyDiffer().diff(ref, ver);
  expect_roundtrip(ref, ver, g);
  EXPECT_GT(g.summary().copied_bytes, 8000u);
}

TEST(BlockDiffer, FindsMovedBlocksAtBlockGranularity) {
  const Bytes ref = random_bytes(4, 4096);
  // Version = blocks of the reference in reverse order.
  Bytes ver;
  for (int b = 7; b >= 0; --b) {
    ver.insert(ver.end(), ref.begin() + b * 512, ref.begin() + (b + 1) * 512);
  }
  const Script s = diff(ref, ver, 512);
  expect_roundtrip(ref, ver, s);
  EXPECT_EQ(s.summary().added_bytes, 0u);
}

TEST(BlockDiffer, TailShorterThanBlockIsLiteral) {
  const Bytes ref = random_bytes(5, 1000);
  const Bytes ver = ref;
  const Script s = diff(ref, ver, 512);
  expect_roundtrip(ref, ver, s);
  // 1000 = 512 + 488: one copy + 488 literal bytes.
  EXPECT_EQ(s.summary().copied_bytes, 512u);
  EXPECT_EQ(s.summary().added_bytes, 488u);
}

TEST(BlockDiffer, EmptyInputs) {
  EXPECT_TRUE(diff({}, {}).empty());
  const Bytes ver = random_bytes(6, 100);
  const Script s = diff({}, ver);
  expect_roundtrip({}, ver, s);
}

TEST(BlockDiffer, RejectsZeroBlockSize) {
  EXPECT_THROW(BlockDiffer(DifferOptions{.block_size = 0}), ValidationError);
}

TEST(BlockDiffer, NeverBeatsByteGranularityOnVersionedData) {
  // Quantifies the §2 claim on a realistic pair.
  Rng rng(7);
  const Bytes ref = random_bytes(8, 1 << 16);
  Bytes ver = ref;
  // Insertions at unaligned offsets.
  for (int i = 0; i < 4; ++i) {
    const Bytes ins = random_bytes(10 + i, 100 + i * 7);
    ver.insert(ver.begin() + static_cast<std::ptrdiff_t>(
                                 rng.below(ver.size())),
               ins.begin(), ins.end());
  }
  const Script block = diff(ref, ver, 512);
  const Script byte_level = GreedyDiffer().diff(ref, ver);
  expect_roundtrip(ref, ver, block);
  expect_roundtrip(ref, ver, byte_level);
  EXPECT_GT(block.summary().added_bytes,
            byte_level.summary().added_bytes);
}

}  // namespace
}  // namespace ipd
