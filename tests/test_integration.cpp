// Cross-module integration: every invariant of DESIGN.md §7 exercised over
// the synthetic corpus and the adversarial constructions, under every
// differ × policy × format combination.
#include <gtest/gtest.h>

#include "adversary/constructions.hpp"
#include "apply/apply.hpp"
#include "apply/inplace_apply.hpp"
#include "apply/oracle.hpp"
#include "corpus/workload.hpp"
#include "inplace/converter.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

struct EndToEndCase {
  DifferKind differ;
  BreakPolicy policy;
  DeltaFormat format;
};

std::string case_name(const ::testing::TestParamInfo<EndToEndCase>& info) {
  std::string n = std::string(differ_name(info.param.differ)) + "_" +
                  policy_name(info.param.policy) + "_" +
                  (info.param.format.codeword == Codeword::kPaperByte
                       ? "paper"
                       : "varint");
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class EndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

std::vector<EndToEndCase> make_cases() {
  std::vector<EndToEndCase> cases;
  for (const DifferKind differ :
       {DifferKind::kGreedy, DifferKind::kOnePass}) {
    for (const BreakPolicy policy :
         {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin}) {
      for (const DeltaFormat format : {kPaperExplicit, kVarintExplicit}) {
        cases.push_back({differ, policy, format});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EndToEnd, ::testing::ValuesIn(make_cases()),
                         case_name);

TEST_P(EndToEnd, CorpusSweepAllInvariants) {
  const EndToEndCase& param = GetParam();
  for (const VersionPair& pair : small_corpus()) {
    // Invariant 1: diff roundtrip.
    const Script script =
        diff_bytes(param.differ, pair.reference, pair.version);
    ASSERT_NO_THROW(script.validate(pair.reference.size(),
                                    pair.version.size()))
        << pair.name;
    ASSERT_TRUE(
        test::bytes_equal(pair.version, apply_script(script, pair.reference)))
        << pair.name;

    // Invariants 2-4: conversion yields a conflict-free topological order
    // that reconstructs in place.
    ConvertOptions copts;
    copts.policy = param.policy;
    copts.format = param.format;
    const ConvertResult converted =
        convert_to_inplace(script, pair.reference, copts);
    ASSERT_TRUE(satisfies_equation2(converted.script)) << pair.name;
    ASSERT_TRUE(analyze_conflicts(converted.script).in_place_safe())
        << pair.name;

    Bytes buffer = pair.reference;
    buffer.resize(std::max(pair.reference.size(), pair.version.size()));
    apply_inplace(converted.script, buffer, pair.reference.size(),
                  pair.version.size());
    ASSERT_TRUE(test::bytes_equal(
        pair.version, ByteView(buffer).first(pair.version.size())))
        << pair.name;

    // Invariant 6: size accounting. Serialized converted delta equals the
    // unconverted explicit-format delta plus the reported conversion cost
    // and minus coalescing savings; check the coalescing-off variant
    // exactly.
    ConvertOptions nocoalesce = copts;
    nocoalesce.coalesce_adds = false;
    const ConvertResult raw =
        convert_to_inplace(script, pair.reference, nocoalesce);

    DeltaFile before;
    before.format = param.format;
    before.reference_length = pair.reference.size();
    before.version_length = pair.version.size();
    before.script = script;
    DeltaFile after = before;
    after.script = raw.script;
    const std::size_t before_size = serialize_delta(before).size();
    const std::size_t after_size = serialize_delta(after).size();
    // Exact payload accounting; the container header's payload-length
    // varint may grow by a byte when the payload crosses a 7-bit boundary.
    ASSERT_GE(after_size, before_size + raw.report.conversion_cost)
        << pair.name;
    ASSERT_LE(after_size, before_size + raw.report.conversion_cost + 1)
        << pair.name;
  }
}

TEST_P(EndToEnd, WireFormatRoundTripOverCorpus) {
  const EndToEndCase& param = GetParam();
  PipelineOptions options;
  options.differ = param.differ;
  options.convert.policy = param.policy;
  options.format = param.format;

  for (const VersionPair& pair : small_corpus(3)) {
    const Bytes delta = Pipeline(options).build_inplace(pair.reference, pair.version).delta;
    Bytes buffer = pair.reference;
    buffer.resize(std::max(pair.reference.size(), pair.version.size()));
    const length_t n = apply_delta_inplace(delta, buffer);
    ASSERT_EQ(n, pair.version.size());
    ASSERT_TRUE(
        test::bytes_equal(pair.version, ByteView(buffer).first(n)))
        << pair.name;
  }
}

TEST(Integration, Lemma1HoldsAcrossCorpusAndAdversaries) {
  for (const VersionPair& pair : small_corpus(9)) {
    const Script script =
        diff_bytes(DifferKind::kOnePass, pair.reference, pair.version);
    auto copies = script.copies();
    std::sort(copies.begin(), copies.end(),
              [](const CopyCommand& a, const CopyCommand& b) {
                return a.to < b.to;
              });
    const CrwiGraph g = CrwiGraph::build(copies, pair.version.size());
    EXPECT_LE(g.edge_count(), pair.version.size()) << pair.name;
  }
  for (const length_t block : {4ull, 16ull, 64ull}) {
    const Fig3Instance inst = make_fig3_quadratic(block);
    auto copies = inst.script.copies();
    std::sort(copies.begin(), copies.end(),
              [](const CopyCommand& a, const CopyCommand& b) {
                return a.to < b.to;
              });
    const CrwiGraph g = CrwiGraph::build(copies, block * block);
    EXPECT_LE(g.edge_count(), block * block);
  }
}

TEST(Integration, ConversionGrowthIsBoundedByReportedCost) {
  // Conversion can only grow a delta, and by no more than the reported
  // cycle-breaking cost (coalescing may claw some back; the container's
  // payload-length varint may add a byte).
  for (const VersionPair& pair : small_corpus(5)) {
    const Bytes plain = Pipeline({.format = kPaperExplicit})
                            .build_delta(pair.reference, pair.version)
                            .delta;
    const BuildResult built =
        Pipeline().build_inplace(pair.reference, pair.version);
    const Bytes& inplace = built.delta;
    EXPECT_GE(inplace.size() + 2, plain.size()) << pair.name;
    EXPECT_LE(inplace.size(),
              plain.size() + built.report.conversion_cost + 1)
        << pair.name;
  }
}

TEST(Integration, VersionChainSurvivesRepeatedInplaceUpdates) {
  // Apply a whole release chain to one buffer, as a device would over its
  // lifetime: v0 -> v1 -> v2 -> v3.
  CorpusOptions options;
  options.packages = 1;
  options.releases_per_package = 5;
  options.min_file_size = 8 << 10;
  options.max_file_size = 16 << 10;
  const auto pairs = standard_corpus(options);
  ASSERT_EQ(pairs.size(), 4u);

  std::size_t max_size = pairs[0].reference.size();
  for (const VersionPair& p : pairs) {
    max_size = std::max(max_size, p.version.size());
  }
  Bytes buffer = pairs[0].reference;
  buffer.resize(max_size);

  for (const VersionPair& p : pairs) {
    const Bytes delta = Pipeline().build_inplace(p.reference, p.version).delta;
    const length_t n = apply_delta_inplace(delta, buffer);
    ASSERT_EQ(n, p.version.size());
    ASSERT_TRUE(test::bytes_equal(p.version, ByteView(buffer).first(n)))
        << p.name;
  }
}

TEST(Integration, AdversariesEndToEndThroughWireFormat) {
  std::vector<AdversaryInstance> instances;
  instances.push_back(make_rotation(3000, 1000));
  Rng rng(2);
  instances.push_back(make_block_permutation(64, random_permutation(rng, 30)));
  const Fig2Instance fig2 = make_fig2_tree(5);
  instances.push_back({fig2.script, fig2.reference, fig2.version});
  const Fig3Instance fig3 = make_fig3_quadratic(32);
  instances.push_back({fig3.script, fig3.reference, fig3.version});

  for (const AdversaryInstance& inst : instances) {
    const Bytes delta =
        make_inplace_delta(inst.script, inst.reference, inst.version, {});
    Bytes buffer = inst.reference;
    buffer.resize(std::max(inst.reference.size(), inst.version.size()));
    const length_t n = apply_delta_inplace(delta, buffer);
    ASSERT_EQ(n, inst.version.size());
    ASSERT_TRUE(test::bytes_equal(inst.version, ByteView(buffer).first(n)));
  }
}

TEST(Integration, RandomizedStress) {
  // 30 random (reference, version) pairs with aggressive edits, each run
  // through the full pipeline with randomized knobs.
  Rng rng(0xABCDEF);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t size = rng.range(0, 20000);
    const Bytes ref = test::random_bytes(trial * 2 + 1, size);
    Bytes ver = mutate(ref, rng, rng.below(40));

    PipelineOptions options;
    options.differ =
        rng.chance(0.5) ? DifferKind::kGreedy : DifferKind::kOnePass;
    options.convert.policy = rng.chance(0.5) ? BreakPolicy::kConstantTime
                                             : BreakPolicy::kLocalMin;
    options.format = rng.chance(0.5) ? kPaperExplicit : kVarintExplicit;
    options.convert.coalesce_adds = rng.chance(0.5);

    const Bytes delta = Pipeline(options).build_inplace(ref, ver).delta;
    Bytes buffer = ref;
    buffer.resize(std::max(ref.size(), ver.size()));
    const length_t n = apply_delta_inplace(delta, buffer);
    ASSERT_EQ(n, ver.size()) << "trial " << trial;
    ASSERT_TRUE(test::bytes_equal(ver, ByteView(buffer).first(n)))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace ipd
