#include "core/buffer.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace ipd {
namespace {

TEST(ByteWriter, FixedWidthLittleEndian) {
  ByteWriter w;
  w.write_u8(0x11);
  w.write_u16le(0x2233);
  w.write_u32le(0x44556677);
  w.write_u64le(0x8899AABBCCDDEEFFull);
  const Bytes expected = {0x11, 0x33, 0x22, 0x77, 0x66, 0x55, 0x44,
                          0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, 0x88};
  EXPECT_TRUE(test::bytes_equal(expected, w.bytes()));
}

TEST(ByteReaderWriter, RoundTripAllTypes) {
  ByteWriter w;
  w.write_u8(200);
  w.write_u16le(60000);
  w.write_u32le(4000000000u);
  w.write_u64le(0x0123456789ABCDEFull);
  w.write_varint(1234567);
  w.write_string("hello");
  const Bytes data = w.take();

  ByteReader r(data);
  EXPECT_EQ(r.read_u8(), 200);
  EXPECT_EQ(r.read_u16le(), 60000);
  EXPECT_EQ(r.read_u32le(), 4000000000u);
  EXPECT_EQ(r.read_u64le(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_varint(), 1234567u);
  EXPECT_EQ(to_string(r.read_bytes(5)), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, ThrowsPastEnd) {
  const Bytes data = {1, 2, 3};
  ByteReader r(data);
  r.skip(2);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.read_u16le(), FormatError);
  EXPECT_EQ(r.read_u8(), 3);
  EXPECT_THROW(r.read_u8(), FormatError);
}

TEST(ByteReader, SkipValidatesBounds) {
  const Bytes data = {1, 2, 3};
  ByteReader r(data);
  EXPECT_THROW(r.skip(4), FormatError);
  r.skip(3);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, ReadBytesAliasesInput) {
  const Bytes data = {9, 8, 7, 6};
  ByteReader r(data);
  const ByteView v = r.read_bytes(2);
  EXPECT_EQ(v.data(), data.data());
  EXPECT_EQ(r.position(), 2u);
}

TEST(ByteWriter, TakeLeavesWriterEmpty) {
  ByteWriter w;
  w.write_u32le(5);
  const Bytes first = w.take();
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
  w.write_u8(1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(ByteReader, EmptyInput) {
  ByteReader r(ByteView{});
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.read_u8(), FormatError);
}

}  // namespace
}  // namespace ipd
