// Unit tests for src/net/: framing, message codec, loopback transport,
// fault injection, and full protocol sessions driven over the loopback
// pair (no sockets — the TCP path is covered by test_net_e2e.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/checksum.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "delta/codec.hpp"
#include "net/delta_server.hpp"
#include "net/faulty_transport.hpp"
#include "net/loopback_transport.hpp"
#include "net/ota_client.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

std::vector<Bytes> make_history(std::size_t releases, std::uint64_t seed,
                                std::size_t edits_per_release = 25,
                                length_t size = 24 << 10) {
  Rng rng(seed);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, size, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 48;
  for (std::size_t i = 1; i < releases; ++i) {
    history.push_back(mutate(history.back(), rng, edits_per_release, model));
  }
  return history;
}

// ----------------------------------------------------------------- frame

TEST(Frame, RoundTripsThroughAnyChunking) {
  const Bytes payload = test::random_bytes(7, 1000);
  const Bytes wire = encode_frame(FrameType::kDeltaData, payload);
  for (const std::size_t step : {std::size_t{1}, std::size_t{7}, wire.size()}) {
    FrameReader reader;
    std::optional<Frame> frame;
    for (std::size_t pos = 0; pos < wire.size(); pos += step) {
      ASSERT_FALSE(frame.has_value());
      reader.feed(ByteView(wire).subspan(pos, std::min(step, wire.size() - pos)));
      if (!frame) frame = reader.next();
    }
    if (!frame) frame = reader.next();
    ASSERT_TRUE(frame.has_value()) << "step " << step;
    EXPECT_EQ(frame->type, FrameType::kDeltaData);
    EXPECT_TRUE(test::bytes_equal(payload, frame->payload));
    EXPECT_EQ(reader.buffered(), 0u);
    reader.finish();  // no partial frame left behind
  }
}

TEST(Frame, BackToBackFramesDecodeInOrder) {
  Bytes wire = encode_frame(FrameType::kHello, test::ramp_bytes(8));
  const Bytes second = encode_frame(FrameType::kMetricsReq, {});
  wire.insert(wire.end(), second.begin(), second.end());
  FrameReader reader;
  reader.feed(wire);
  ASSERT_EQ(reader.next()->type, FrameType::kHello);
  ASSERT_EQ(reader.next()->type, FrameType::kMetricsReq);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.frames_decoded(), 2u);
}

TEST(Frame, EveryFlippedBitIsCaughtSomewhere) {
  const Bytes wire = encode_frame(FrameType::kDeltaData, test::ramp_bytes(64));
  // Flip a bit in every byte of the frame. Most flips throw on next()
  // (bad magic / version / type / reserved / CRC); a flip in the length
  // field instead leaves the reader waiting for bytes that never come,
  // which finish() reports. No flip may yield a valid frame.
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    Bytes mangled = wire;
    mangled[byte] ^= 0x10;
    FrameReader reader;
    reader.feed(mangled);
    try {
      const std::optional<Frame> frame = reader.next();
      ASSERT_FALSE(frame.has_value()) << "byte " << byte
                                      << ": corrupt frame decoded";
      EXPECT_THROW(reader.finish(), FormatError) << "byte " << byte;
    } catch (const FormatError&) {
      // the common case: the corruption was detected outright
    }
  }
}

TEST(Frame, TruncatedStreamIsDetectedByFinish) {
  const Bytes wire = encode_frame(FrameType::kDeltaEnd, test::ramp_bytes(32));
  FrameReader reader;
  reader.feed(ByteView(wire).first(wire.size() - 3));
  EXPECT_FALSE(reader.next().has_value());  // waiting, not lying
  EXPECT_THROW(reader.finish(), FormatError);
}

TEST(Frame, OversizedPayloadLengthRejectedBeforeAllocation) {
  Bytes wire = encode_frame(FrameType::kDeltaData, test::ramp_bytes(8));
  wire[8] = 0xFF;  // payload length field -> far beyond kMaxFramePayload
  wire[9] = 0xFF;
  wire[10] = 0xFF;
  wire[11] = 0x7F;
  FrameReader reader;
  reader.feed(wire);
  EXPECT_THROW(reader.next(), FormatError);
  EXPECT_THROW(encode_frame(FrameType::kDeltaData,
                            Bytes(kMaxFramePayload + 1)),
               ValidationError);
}

// -------------------------------------------------------------- protocol

TEST(Protocol, EveryMessageRoundTrips) {
  DeltaBeginMsg begin;
  begin.from = 3;
  begin.to = 4;
  begin.full_image = 1;
  begin.last_hop = 1;
  begin.total_size = 123456789;
  begin.start_offset = 777;
  begin.reference_length = 1000;
  begin.version_length = 2000;
  begin.artifact_crc = 0xDEADBEEF;
  const Message messages[] = {
      HelloMsg{kProtocolVersion, 4096},
      HelloAckMsg{kProtocolVersion, 12, 11, 8192},
      GetDeltaMsg{2, 9},
      ResumeMsg{2, 3, 0x1'0000'0001ull, 0xCAFEF00D},
      begin,
      DeltaDataMsg{42, test::ramp_bytes(100)},
      DeltaEndMsg{100, 0x12345678},
      ErrorMsg{ErrorCode::kBadResume, "offset beyond artifact"},
      MetricsReqMsg{},
      MetricsMsg{"requests: 5\n"},
  };
  for (const Message& message : messages) {
    const Bytes wire = encode_message(message);
    FrameReader reader;
    reader.feed(wire);
    const std::optional<Frame> frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    const Message decoded = decode_message(*frame);
    EXPECT_EQ(decoded.index(), message.index());
  }
  // Spot-check field fidelity on the widest message.
  const Bytes wire = encode_message(begin);
  FrameReader reader;
  reader.feed(wire);
  const auto decoded = std::get<DeltaBeginMsg>(decode_message(*reader.next()));
  EXPECT_EQ(decoded.total_size, begin.total_size);
  EXPECT_EQ(decoded.start_offset, begin.start_offset);
  EXPECT_EQ(decoded.artifact_crc, begin.artifact_crc);
  EXPECT_EQ(decoded.version_length, begin.version_length);
}

TEST(Protocol, ShortPayloadRejected) {
  Frame frame;
  frame.type = FrameType::kGetDelta;
  frame.payload = test::ramp_bytes(3);  // needs 8
  EXPECT_THROW(decode_message(frame), FormatError);
}

// -------------------------------------------------------------- loopback

TEST(Loopback, BytesFlowBothWaysAndCloseMeansEof) {
  auto [a, b] = make_loopback_pair();
  a->write_all(test::ramp_bytes(10));
  Bytes buf(10);
  EXPECT_EQ(b->read_some(buf), 10u);
  b->write_all(ByteView(buf).first(4));
  Bytes back(16);
  EXPECT_EQ(a->read_some(back), 4u);
  a->close();
  EXPECT_EQ(b->read_some(buf), 0u);  // EOF after drain
  EXPECT_THROW(b->write_all(buf), TransportError);
}

TEST(Loopback, CloseWakesABlockedReader) {
  auto [a, b] = make_loopback_pair();
  std::thread reader([&] {
    Bytes buf(8);
    EXPECT_EQ(b->read_some(buf), 0u);
  });
  a->close();
  reader.join();
}

// ---------------------------------------------------------------- faulty

TEST(Faulty, FlippedWriteIsCaughtByFrameCrcOnTheOtherSide) {
  auto [a, b] = make_loopback_pair();
  FaultOptions faults;
  faults.seed = 99;
  faults.flip_rate = 1.0;
  faults.grace_ops = 0;
  FaultStats stats;
  FaultyTransport chaos(std::move(a), faults, &stats);
  chaos.write_all(encode_frame(FrameType::kHello, test::ramp_bytes(64)));
  EXPECT_EQ(stats.flips.load(), 1u);
  FramedConnection conn(*b);
  EXPECT_THROW(conn.receive(), FormatError);
}

TEST(Faulty, DropKillsTheConnectionAndPeerSeesTruncation) {
  auto [a, b] = make_loopback_pair();
  FaultOptions faults;
  faults.seed = 7;
  faults.drop_rate = 1.0;
  faults.grace_ops = 0;
  FaultStats stats;
  FaultyTransport chaos(std::move(a), faults, &stats);
  EXPECT_THROW(chaos.write_all(test::ramp_bytes(100)), TransportError);
  EXPECT_EQ(stats.drops.load(), 1u);
  // Connection stays dead.
  EXPECT_THROW(chaos.write_all(test::ramp_bytes(1)), TransportError);
  Bytes buf(8);
  EXPECT_EQ(b->read_some(buf), 0u);
}

TEST(Faulty, TruncationDeliversAPrefixThenEof) {
  auto [a, b] = make_loopback_pair();
  FaultOptions faults;
  faults.seed = 12;
  faults.truncate_rate = 1.0;
  faults.grace_ops = 0;
  FaultStats stats;
  FaultyTransport chaos(std::move(a), faults, &stats);
  const Bytes wire = encode_frame(FrameType::kDeltaData, test::ramp_bytes(500));
  EXPECT_THROW(chaos.write_all(wire), TransportError);
  EXPECT_EQ(stats.truncations.load(), 1u);
  // The receiver drains the prefix, hits EOF mid-frame, and the framing
  // layer reports the truncation instead of silently succeeding.
  FramedConnection conn(*b);
  EXPECT_THROW(conn.receive(), FormatError);
}

TEST(Faulty, GraceOpsLetTheHandshakeThrough) {
  auto [a, b] = make_loopback_pair();
  FaultOptions faults;
  faults.seed = 5;
  faults.drop_rate = 1.0;
  faults.grace_ops = 2;
  FaultyTransport chaos(std::move(a), faults, nullptr);
  chaos.write_all(test::ramp_bytes(4));  // op 1: safe
  chaos.write_all(test::ramp_bytes(4));  // op 2: safe
  EXPECT_THROW(chaos.write_all(test::ramp_bytes(4)), TransportError);
}

// ------------------------------------------------- session over loopback

struct LoopbackRig {
  VersionStore store;
  std::unique_ptr<DeltaService> service;
  std::unique_ptr<DeltaServer> server;
  std::vector<Bytes> history;

  explicit LoopbackRig(std::size_t releases, std::uint64_t seed = 33,
                       const ServerConfig& net = {}) {
    history = make_history(releases, seed);
    for (const Bytes& body : history) store.publish(body);
    service = std::make_unique<DeltaService>(store, ServiceOptions{});
    server = std::make_unique<DeltaServer>(*service, net);
  }

  /// Run one server session over a fresh loopback pair; returns the
  /// client end. Caller must close it before the rig dies.
  std::unique_ptr<Transport> connect(std::thread& session_thread) {
    auto [client_end, server_end] = make_loopback_pair();
    session_thread = std::thread(
        [this, server = std::move(server_end)]() mutable {
          this->server->serve_session(*server);
        });
    return std::move(client_end);
  }
};

TEST(Session, StreamingClientUpgradesOverLoopback) {
  LoopbackRig rig(4);
  std::vector<std::thread> sessions;
  OtaClientOptions options;
  options.max_chunk = 512;  // force many DELTA_DATA frames
  OtaClient client(
      [&] {
        sessions.emplace_back();
        return rig.connect(sessions.back());
      },
      options);
  Bytes image = rig.history[0];
  const OtaReport report = client.update_streaming(image, 0, 3);
  for (std::thread& t : sessions) t.join();
  EXPECT_TRUE(test::bytes_equal(rig.history[3], image));
  EXPECT_EQ(report.final_release, 3u);
  EXPECT_GE(report.hops, 1u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_GT(rig.service->metrics().net_sessions.load(), 0u);
  EXPECT_GT(rig.service->metrics().net_bytes_sent.load(), 0u);
}

TEST(Session, BadReleaseIdsGetTypedErrorsAndSessionSurvives) {
  LoopbackRig rig(3);
  std::thread session;
  auto transport = rig.connect(session);
  FramedConnection conn(*transport);
  conn.send(HelloMsg{});
  ASSERT_TRUE(std::holds_alternative<HelloAckMsg>(*conn.receive()));
  conn.send(GetDeltaMsg{2, 2});  // from == to
  auto err = std::get<ErrorMsg>(*conn.receive());
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  conn.send(GetDeltaMsg{0, 99});  // unknown release
  err = std::get<ErrorMsg>(*conn.receive());
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  // Session still alive and useful after both errors.
  conn.send(GetDeltaMsg{0, 1});
  EXPECT_TRUE(std::holds_alternative<DeltaBeginMsg>(*conn.receive()));
  transport->close();
  session.join();
  EXPECT_EQ(rig.service->metrics().net_errors.load(), 2u);
}

TEST(Session, ResumeSkipsAlreadyTransferredBytes) {
  LoopbackRig rig(2);
  ServiceMetrics& metrics = rig.service->metrics();

  // First session: take DELTA_BEGIN plus one chunk, then vanish.
  std::thread first_session;
  auto first = rig.connect(first_session);
  DeltaBeginMsg meta;
  std::uint64_t got = 0;
  {
    FramedConnection conn(*first);
    conn.send(HelloMsg{kProtocolVersion, 256});
    ASSERT_TRUE(std::holds_alternative<HelloAckMsg>(*conn.receive()));
    conn.send(GetDeltaMsg{0, 1});
    meta = std::get<DeltaBeginMsg>(*conn.receive());
    const auto chunk = std::get<DeltaDataMsg>(*conn.receive());
    got = chunk.data.size();
    ASSERT_LT(got, meta.total_size);  // multi-chunk transfer
  }
  first->close();
  first_session.join();

  // Second session: resume from where we died.
  std::thread second_session;
  auto second = rig.connect(second_session);
  {
    FramedConnection conn(*second);
    conn.send(HelloMsg{kProtocolVersion, 256});
    ASSERT_TRUE(std::holds_alternative<HelloAckMsg>(*conn.receive()));
    conn.send(ResumeMsg{0, meta.to, got, meta.artifact_crc});
    const auto begin = std::get<DeltaBeginMsg>(*conn.receive());
    EXPECT_EQ(begin.start_offset, got);
    EXPECT_EQ(begin.artifact_crc, meta.artifact_crc);
    std::uint64_t received = got;
    for (;;) {
      const Message message = *conn.receive();
      if (const auto* data = std::get_if<DeltaDataMsg>(&message)) {
        EXPECT_EQ(data->offset, received);
        received += data->data.size();
        continue;
      }
      const auto end = std::get<DeltaEndMsg>(message);
      EXPECT_EQ(end.total_size, received);
      break;
    }
    EXPECT_EQ(received, meta.total_size);
  }
  second->close();
  second_session.join();
  EXPECT_EQ(metrics.net_resumes.load(), 1u);

  // A resume whose CRC matches nothing is refused.
  std::thread third_session;
  auto third = rig.connect(third_session);
  {
    FramedConnection conn(*third);
    conn.send(HelloMsg{});
    ASSERT_TRUE(std::holds_alternative<HelloAckMsg>(*conn.receive()));
    conn.send(ResumeMsg{0, meta.to, 1, meta.artifact_crc ^ 0xFF});
    const auto err = std::get<ErrorMsg>(*conn.receive());
    EXPECT_EQ(err.code, ErrorCode::kBadResume);
  }
  third->close();
  third_session.join();
}

TEST(Session, FullImageOverrunIsRejectedBeforeTheCopy) {
  // A hostile (or broken) server that streams more bytes than its
  // DELTA_BEGIN announced must hit a typed protocol error, never the
  // raw memcpy past the image buffer it would have caused.
  auto [client_end, server_end] = make_loopback_pair();
  std::thread evil([server = std::move(server_end)]() mutable {
    try {
      FramedConnection conn(*server);
      (void)conn.receive();  // HELLO
      conn.send(HelloAckMsg{});
      (void)conn.receive();  // GET_DELTA
      DeltaBeginMsg begin;
      begin.from = 0;
      begin.to = 1;
      begin.full_image = 1;
      begin.total_size = 64;
      begin.version_length = 64;
      conn.send(begin);
      // Announce 64 bytes, stream 4096.
      conn.send(DeltaDataMsg{0, Bytes(4096, 0x5A)});
      conn.send(DeltaEndMsg{4096, 0});
    } catch (const Error&) {
      // the client hung up on us mid-lie — expected
    }
    server->close();
  });
  OtaClientOptions options;
  options.max_attempts = 1;
  OtaClient client(
      [&]() -> std::unique_ptr<Transport> { return std::move(client_end); },
      options);
  Bytes image(32, 0x00);
  try {
    client.update_streaming(image, 0, 1);
    FAIL() << "oversized stream was accepted";
  } catch (const Error& e) {
    // The overrun must be refused up front, not discovered later as a
    // checksum mismatch over a trampled heap.
    EXPECT_NE(std::string(e.what()).find("overruns"), std::string::npos)
        << e.what();
  }
  evil.join();
}

TEST(Session, RefusedResumeRestartsTheDownloadFromScratch) {
  LoopbackRig rig(2);
  std::vector<std::thread> sessions;
  OtaClientOptions options;
  options.backoff_initial_ms = 0;
  options.backoff_max_ms = 0;
  OtaClient client(
      [&] {
        sessions.emplace_back();
        return rig.connect(sessions.back());
      },
      options);

  constexpr std::size_t kImageArea = 64 << 10;
  constexpr JournalRegion kJournal{kImageArea, 16 << 10};
  FlashDevice device(kImageArea + kJournal.size, 512, 96 << 10);
  device.load_image(rig.history[0]);
  clear_journal(device, kJournal);

  // A journal from a previous life whose artifact no longer exists
  // anywhere on the server: the resume is answered with kBadResume
  // ("restart from GET_DELTA"), and the client must discard the stale
  // prefix and complete the update from scratch instead of failing.
  TransferJournal journal;
  journal.active = true;
  journal.from = 0;
  journal.hop_to = 1;
  journal.total_size = 4096;
  journal.artifact_crc = 0xBAD0BAD0;
  journal.received.assign(1024, 0x7E);

  const OtaReport report =
      client.update_device(device, kJournal, 0, 1, channel_28k(), &journal);
  for (std::thread& t : sessions) t.join();
  EXPECT_EQ(report.final_release, 1u);
  EXPECT_EQ(report.resumes, 1u);  // the refused attempt
  EXPECT_GE(report.retries, 1u);  // ... counted as an attempt
  EXPECT_TRUE(test::bytes_equal(
      rig.history[1],
      ByteView(device.inspect()).first(rig.history[1].size())));
}

TEST(Session, MetricsRequestReturnsTheSnapshot) {
  LoopbackRig rig(2);
  std::vector<std::thread> sessions;
  OtaClient client([&] {
    sessions.emplace_back();
    return rig.connect(sessions.back());
  });
  const std::string text = client.fetch_metrics();
  for (std::thread& t : sessions) t.join();
  EXPECT_NE(text.find("net_sessions:"), std::string::npos);
  EXPECT_NE(text.find("bytes cached:"), std::string::npos);
}

TEST(Session, StreamingClientSurvivesInjectedFaults) {
  LoopbackRig rig(4);
  FaultStats stats;
  std::vector<std::thread> sessions;
  OtaClientOptions options;
  options.max_chunk = 1024;
  options.max_attempts = 64;
  options.backoff_initial_ms = 0;  // loopback: no need to actually sleep
  options.backoff_max_ms = 0;
  OtaClient client(
      [&]() -> std::unique_ptr<Transport> {
        sessions.emplace_back();
        FaultOptions faults;
        faults.seed = 0xFA017 + sessions.size();  // new faults per attempt
        if (sessions.size() <= 2) {
          // The first two connections die mid-transfer at a fixed byte
          // count — a deterministic guarantee that recovery is exercised.
          faults.kill_after_bytes = 700;
        } else {
          faults.drop_rate = 0.05;
          faults.truncate_rate = 0.05;
          faults.flip_rate = 0.05;
          faults.grace_ops = 4;
        }
        return std::make_unique<FaultyTransport>(
            rig.connect(sessions.back()), faults, &stats);
      },
      options, &rig.service->metrics());
  Bytes image = rig.history[0];
  const OtaReport report = client.update_streaming(image, 0, 3);
  for (std::thread& t : sessions) t.join();
  EXPECT_TRUE(test::bytes_equal(rig.history[3], image));
  EXPECT_GT(stats.total(), 0u) << "fault injection never fired";
  EXPECT_GE(report.retries, 2u);  // the two deterministic kills
  EXPECT_EQ(report.retries, rig.service->metrics().net_retries.load());
}

TEST(Session, HostileInPlaceDeltaIsRefusedBeforeAnyFlashWrite) {
  // A server streaming a conflicting "in-place" delta: the frames and
  // the whole-artifact CRC all check out — the bytes arrive exactly as
  // sent — but applying the script in place would destroy reference
  // bytes before they are read. The device-side static verifier must
  // refuse it before the first flash write.
  Rng rng(0xEB11);
  const Bytes ref = generate_file(rng, 8 << 10, FileProfile::kBinary);
  const length_t half = ref.size() / 2;
  DeltaFile file;
  file.format = kVarintExplicit;
  file.in_place = true;  // the lie
  file.reference_length = ref.size();
  file.version_length = ref.size();
  file.script.push(CopyCommand{half, 0, half});  // writes what...
  file.script.push(CopyCommand{0, half, half});  // ...this one reads
  const Bytes evil = serialize_delta(file);

  auto [client_end, server_end] = make_loopback_pair();
  std::thread hostile([server = std::move(server_end),
                       evil = evil]() mutable {
    try {
      FramedConnection conn(*server);
      (void)conn.receive();  // HELLO
      conn.send(HelloAckMsg{});
      (void)conn.receive();  // GET_DELTA
      DeltaBeginMsg begin;
      begin.from = 0;
      begin.to = 1;
      begin.last_hop = 1;
      begin.total_size = evil.size();
      begin.reference_length = evil.size();
      begin.version_length = evil.size();
      begin.artifact_crc = crc32c(evil);
      conn.send(begin);
      conn.send(DeltaDataMsg{0, evil});
      conn.send(DeltaEndMsg{evil.size(), crc32c(evil)});
    } catch (const Error&) {
      // the client hung up on us — expected
    }
    server->close();
  });

  ServiceMetrics metrics;
  OtaClientOptions options;
  options.max_attempts = 1;
  OtaClient client(
      [&]() -> std::unique_ptr<Transport> { return std::move(client_end); },
      options, &metrics);

  constexpr std::size_t kImageArea = 16 << 10;
  constexpr JournalRegion kJournal{kImageArea, 16 << 10};
  FlashDevice device(kImageArea + kJournal.size, 512, 96 << 10);
  device.load_image(ref);
  clear_journal(device, kJournal);

  TransferJournal journal;
  try {
    client.update_device(device, kJournal, 0, 1, channel_28k(), &journal);
    FAIL() << "hostile in-place delta was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unsafe delta refused"),
              std::string::npos)
        << e.what();
  }
  hostile.join();
  EXPECT_EQ(metrics.verify_rejects.load(), 1u);
  // The artifact was refused before apply: the image is untouched, and
  // the poisoned download will never be resumed.
  EXPECT_TRUE(
      test::bytes_equal(ref, ByteView(device.inspect()).first(ref.size())));
  EXPECT_FALSE(journal.active);
}

TEST(Session, PoisonedPreloadIsRefusedAndCleanUpgradeStillServes) {
  // End-to-end across the trust boundary on the *server* side: an
  // operator preloads a conflicting artifact whose header matches the
  // hop endpoints exactly. The service must refuse to cache it, and the
  // next wire client must get a freshly built, safe delta.
  LoopbackRig rig(2);
  DeltaFile file;
  file.format = kVarintExplicit;
  file.in_place = true;
  file.reference_length = rig.history[0].size();
  file.version_length = rig.history[1].size();
  file.version_crc = rig.store.content_key(1).crc;
  const length_t half =
      std::min(file.reference_length, file.version_length) / 2;
  file.script.push(CopyCommand{half, 0, half});
  file.script.push(CopyCommand{0, half, file.version_length - half});
  EXPECT_FALSE(rig.service->preload(0, 1, serialize_delta(file)));
  EXPECT_EQ(rig.service->metrics().verify_rejects.load(), 1u);

  std::vector<std::thread> sessions;
  OtaClient client([&] {
    sessions.emplace_back();
    return rig.connect(sessions.back());
  });
  Bytes image = rig.history[0];
  const OtaReport report = client.update_streaming(image, 0, 1);
  for (std::thread& t : sessions) t.join();
  EXPECT_TRUE(test::bytes_equal(rig.history[1], image));
  EXPECT_EQ(report.final_release, 1u);
  // Still exactly one rejection: the refused preload, not the build.
  EXPECT_EQ(rig.service->metrics().verify_rejects.load(), 1u);
}

}  // namespace
}  // namespace ipd
