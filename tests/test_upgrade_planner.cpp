#include "archive/upgrade_planner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

/// A drifting release history: consecutive releases differ a little,
/// distant ones a lot.
std::vector<Bytes> make_history(std::size_t releases, std::uint64_t seed,
                                std::size_t edits_per_release = 25) {
  Rng rng(seed);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, 40 << 10, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 48;
  for (std::size_t i = 1; i < releases; ++i) {
    history.push_back(mutate(history.back(), rng, edits_per_release, model));
  }
  return history;
}

std::vector<ByteView> views(const std::vector<Bytes>& history) {
  return std::vector<ByteView>(history.begin(), history.end());
}

TEST(UpgradePlanner, AdjacentUpgradeIsOneStep) {
  const auto history = make_history(3, 1);
  UpgradePlanner planner(views(history));
  const UpgradePlan plan = planner.plan(0, 1);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].from, 0u);
  EXPECT_EQ(plan.steps[0].to, 1u);
  EXPECT_FALSE(plan.steps[0].full_image);
  EXPECT_EQ(plan.total_bytes, plan.steps[0].bytes);
}

TEST(UpgradePlanner, ExecuteReachesTarget) {
  const auto history = make_history(6, 2);
  UpgradePlanner planner(views(history));
  for (const std::size_t from : {0ul, 2ul, 4ul}) {
    const UpgradePlan plan = planner.plan(from, 5);
    Bytes image = history[from];
    planner.execute(plan, image);
    EXPECT_TRUE(test::bytes_equal(history[5], image)) << "from " << from;
  }
}

TEST(UpgradePlanner, StepsChainContiguously) {
  const auto history = make_history(8, 3);
  UpgradePlanner planner(views(history));
  const UpgradePlan plan = planner.plan(0, 7);
  ASSERT_FALSE(plan.steps.empty());
  EXPECT_EQ(plan.steps.front().from, 0u);
  EXPECT_EQ(plan.steps.back().to, 7u);
  for (std::size_t i = 1; i < plan.steps.size(); ++i) {
    EXPECT_EQ(plan.steps[i].from, plan.steps[i - 1].to);
  }
}

TEST(UpgradePlanner, NeverWorseThanDirectDelta) {
  const auto history = make_history(7, 4, /*edits_per_release=*/60);
  PlannerOptions options;
  options.max_hop_span = 6;  // direct 0->6 is a candidate edge
  UpgradePlanner planner(views(history), options);
  const UpgradePlan plan = planner.plan(0, 6);

  const Bytes direct = Pipeline().build_inplace(history[0], history[6]).delta;
  EXPECT_LE(plan.total_bytes,
            direct.size() + 7 * options.per_hop_overhead);
}

TEST(UpgradePlanner, NeverWorseThanFullImage) {
  // Completely unrelated "releases": every delta is ~file size, so the
  // plan must fall back to the full image (single hop).
  std::vector<Bytes> history;
  for (int i = 0; i < 4; ++i) {
    history.push_back(test::random_bytes(100 + i, 30000));
  }
  UpgradePlanner planner(views(history));
  const UpgradePlan plan = planner.plan(0, 3);
  EXPECT_LE(plan.total_bytes, history[3].size() + 3 * 512);
  Bytes image = history[0];
  planner.execute(plan, image);
  EXPECT_TRUE(test::bytes_equal(history[3], image));
}

TEST(UpgradePlanner, DeltaCacheIsLazyAndShared) {
  const auto history = make_history(10, 5);
  PlannerOptions options;
  options.max_hop_span = 2;
  UpgradePlanner planner(views(history), options);
  EXPECT_EQ(planner.deltas_built(), 0u);
  planner.plan(0, 3);
  const std::size_t after_first = planner.deltas_built();
  EXPECT_GT(after_first, 0u);
  // Bounded by the span-limited edge set, far below all O(n^2) pairs.
  EXPECT_LE(after_first, 2u * 4u);
  planner.plan(0, 3);  // fully cached
  EXPECT_EQ(planner.deltas_built(), after_first);
}

TEST(UpgradePlanner, HopSpanLimitsEdges) {
  const auto history = make_history(6, 6);
  PlannerOptions options;
  options.max_hop_span = 1;
  UpgradePlanner planner(views(history), options);
  const UpgradePlan plan = planner.plan(0, 5);
  // Either 5 adjacent hops or a full-image shortcut; never a span-2 delta.
  for (const UpgradeStep& step : plan.steps) {
    EXPECT_TRUE(step.full_image || step.to - step.from == 1);
  }
  Bytes image = history[0];
  planner.execute(plan, image);
  EXPECT_TRUE(test::bytes_equal(history[5], image));
}

TEST(UpgradePlanner, StepArtifactsApplyIndividually) {
  const auto history = make_history(4, 7);
  UpgradePlanner planner(views(history));
  const UpgradePlan plan = planner.plan(1, 3);
  Bytes image = history[1];
  for (const UpgradeStep& step : plan.steps) {
    const Bytes artifact = planner.step_artifact(step);
    if (step.full_image) {
      image = artifact;
    } else {
      image.resize(std::max(image.size(), history[step.to].size()));
      const length_t n = apply_delta_inplace(artifact, image);
      image.resize(static_cast<std::size_t>(n));
    }
  }
  EXPECT_TRUE(test::bytes_equal(history[3], image));
}

TEST(UpgradePlanner, FoldPlanMintsOneDirectDelta) {
  const auto history = make_history(6, 10);
  PlannerOptions options;
  options.max_hop_span = 1;  // force a genuine multi-hop chain
  UpgradePlanner planner(views(history), options);
  const UpgradePlan plan = planner.plan(0, 5);

  const Bytes folded = planner.fold_plan(plan);
  if (plan.steps.size() > 1 && !plan.steps.back().full_image) {
    // A real fold: one in-place delta straight from v0 to v5.
    const DeltaFile parsed = deserialize_delta(folded);
    EXPECT_TRUE(parsed.in_place);
    EXPECT_EQ(parsed.reference_length, history[0].size());
    EXPECT_EQ(parsed.version_length, history[5].size());
    Bytes image = history[0];
    image.resize(std::max(history[0].size(), history[5].size()));
    const length_t n = apply_delta_inplace(folded, image);
    EXPECT_TRUE(
        test::bytes_equal(history[5], ByteView(image).first(n)));
  }
}

TEST(UpgradePlanner, FoldPlanSingleHopReturnsThatDelta) {
  const auto history = make_history(3, 11);
  UpgradePlanner planner(views(history));
  const UpgradePlan plan = planner.plan(1, 2);
  ASSERT_EQ(plan.steps.size(), 1u);
  const Bytes folded = planner.fold_plan(plan);
  EXPECT_EQ(folded, planner.step_artifact(plan.steps[0]));
}

TEST(UpgradePlanner, FoldPlanRejectsEmptyPlan) {
  const auto history = make_history(2, 12);
  UpgradePlanner planner(views(history));
  EXPECT_THROW(planner.fold_plan(UpgradePlan{}), ValidationError);
}

TEST(UpgradePlanner, RejectsBadArguments) {
  const auto history = make_history(3, 8);
  UpgradePlanner planner(views(history));
  EXPECT_THROW(planner.plan(1, 1), ValidationError);
  EXPECT_THROW(planner.plan(2, 1), ValidationError);
  EXPECT_THROW(planner.plan(0, 3), ValidationError);
  PlannerOptions bad;
  bad.max_hop_span = 0;
  EXPECT_THROW(UpgradePlanner(views(history), bad), ValidationError);
}

TEST(UpgradePlanner, PicksChainWhenDirectDeltaIsBloated) {
  // Drift hard: after 6 heavy releases the direct delta is much larger
  // than the sum of adjacent deltas... verify the planner notices
  // whichever is cheaper and executes correctly either way.
  const auto history = make_history(7, 9, /*edits_per_release=*/120);
  PlannerOptions options;
  options.max_hop_span = 6;
  UpgradePlanner planner(views(history), options);
  const UpgradePlan plan = planner.plan(0, 6);

  std::uint64_t adjacent_total = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    adjacent_total +=
        Pipeline().build_inplace(history[i], history[i + 1]).delta.size() +
        options.per_hop_overhead;
  }
  EXPECT_LE(plan.total_bytes, adjacent_total);

  Bytes image = history[0];
  planner.execute(plan, image);
  EXPECT_TRUE(test::bytes_equal(history[6], image));
}

TEST(UpgradePlanner, ConcurrentPlansAreSafeAndBuildEachEdgeOnce) {
  // Regression test for the planner's lazy edge cache: the delta
  // distribution service shares one planner across request threads, so
  // concurrent plan() + execute() must neither race on the cache map nor
  // build an edge twice.
  const auto history = make_history(8, 13);
  UpgradePlanner serial(views(history));
  const UpgradePlan expected = serial.plan(0, 7);
  const std::size_t serial_builds = serial.deltas_built();

  UpgradePlanner planner(views(history));
  constexpr int kThreads = 8;
  std::vector<UpgradePlan> plans(kThreads);
  std::atomic<int> bad_executions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      plans[t] = planner.plan(0, 7);
      Bytes image = history[0];
      planner.execute(plans[t], image);
      if (image != history[7]) ++bad_executions;
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(bad_executions.load(), 0);
  for (const UpgradePlan& plan : plans) {
    ASSERT_EQ(plan.steps.size(), expected.steps.size());
    EXPECT_EQ(plan.total_bytes, expected.total_bytes);
  }
  // The shared lazy cache built exactly the serial planner's edge set —
  // once — despite eight threads racing to fill it.
  EXPECT_EQ(planner.deltas_built(), serial_builds);
}

}  // namespace
}  // namespace ipd
