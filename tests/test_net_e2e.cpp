// End-to-end acceptance tests (ctest label `net`): a DeltaServer on a
// real localhost TCP socket, upgraded against by a multi-threaded client
// fleet — clean links, fault-injected links, a client killed mid-transfer
// and resumed from its journal, the connection limit, and the device-mode
// power-failure story. Every path must end bit-identical to the release
// bytes reconstructed directly.
//
// Environments without localhost sockets (heavily sandboxed CI) make
// TcpListener::bind throw; these tests GTEST_SKIP in that case rather
// than fail.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "net/delta_server.hpp"
#include "net/faulty_transport.hpp"
#include "net/ota_client.hpp"
#include "net/tcp_transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

std::vector<Bytes> make_history(std::size_t releases, std::uint64_t seed,
                                std::size_t edits_per_release = 25,
                                length_t size = 24 << 10) {
  Rng rng(seed);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, size, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 48;
  for (std::size_t i = 1; i < releases; ++i) {
    history.push_back(mutate(history.back(), rng, edits_per_release, model));
  }
  return history;
}

/// A live TCP server over a published history, or skipped_ when the
/// sandbox forbids localhost sockets.
struct TcpRig {
  VersionStore store;
  std::unique_ptr<DeltaService> service;
  std::unique_ptr<DeltaServer> server;
  std::vector<Bytes> history;
  bool skipped = false;

  explicit TcpRig(std::size_t releases, std::uint64_t seed = 71,
                  ServerConfig net = {},
                  std::size_t edits_per_release = 25) {
    history = make_history(releases, seed, edits_per_release);
    for (const Bytes& body : history) store.publish(body);
    service = std::make_unique<DeltaService>(store, ServiceOptions{});
    server = std::make_unique<DeltaServer>(*service, net);
    try {
      server->start();
    } catch (const TransportError&) {
      skipped = true;
    }
  }

  OtaClient::TransportFactory factory() {
    return [port = server->port()] {
      return TcpTransport::connect("127.0.0.1", port);
    };
  }
};

#define SKIP_IF_NO_SOCKETS(rig)                              \
  if ((rig).skipped) {                                       \
    GTEST_SKIP() << "localhost sockets unavailable here";    \
  }

TEST(NetE2E, FleetUpgradesOverTcpBitIdentical) {
  TcpRig rig(5);
  SKIP_IF_NO_SOCKETS(rig);
  constexpr std::size_t kClients = 8;
  const ReleaseId target = static_cast<ReleaseId>(rig.history.size() - 1);

  std::vector<Bytes> images(kClients);
  std::vector<OtaReport> reports(kClients);
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> fleet;
  for (std::size_t i = 0; i < kClients; ++i) {
    fleet.emplace_back([&, i] {
      // Stragglers start at every release below the target.
      const ReleaseId start = static_cast<ReleaseId>(i % target);
      images[i] = rig.history[start];
      OtaClient client(rig.factory());
      try {
        reports[i] = client.update_streaming(images[i], start, target);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  EXPECT_EQ(failures.load(), 0u);
  for (std::size_t i = 0; i < kClients; ++i) {
    // Bit-identical to the release bytes reconstructed directly.
    EXPECT_TRUE(test::bytes_equal(rig.history[target], images[i]))
        << "client " << i;
    EXPECT_EQ(reports[i].final_release, target);
    EXPECT_EQ(reports[i].retries, 0u);
  }
  const ServiceMetrics& metrics = rig.service->metrics();
  EXPECT_GE(metrics.net_sessions.load(), kClients);
  EXPECT_GT(metrics.net_bytes_sent.load(), 0u);
  EXPECT_GT(metrics.net_frames_sent.load(), 0u);
}

TEST(NetE2E, FaultyFleetConvergesThroughRetryAndResume) {
  TcpRig rig(4);
  SKIP_IF_NO_SOCKETS(rig);
  constexpr std::size_t kClients = 6;
  const ReleaseId target = static_cast<ReleaseId>(rig.history.size() - 1);

  FaultStats stats;
  std::vector<Bytes> images(kClients);
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> fleet;
  for (std::size_t i = 0; i < kClients; ++i) {
    fleet.emplace_back([&, i] {
      images[i] = rig.history[0];
      std::atomic<std::uint64_t> attempt{0};
      OtaClientOptions options;
      options.max_chunk = 2048;  // more frames -> more fault exposure
      options.max_attempts = 128;
      options.backoff_initial_ms = 1;
      options.backoff_max_ms = 4;
      OtaClient client(
          [&rig, &stats, &attempt, i]() -> std::unique_ptr<Transport> {
            const std::uint64_t n = attempt.fetch_add(1);
            FaultOptions faults;
            faults.seed = 1000 * (i + 1) + n;
            if (n == 0) {
              // Every client's first link is guaranteed to die mid-
              // transfer; later links misbehave probabilistically.
              faults.kill_after_bytes = 900 + 100 * i;
            } else {
              faults.drop_rate = 0.05;
              faults.truncate_rate = 0.05;
              faults.flip_rate = 0.05;
              faults.grace_ops = 4;
            }
            return std::make_unique<FaultyTransport>(
                TcpTransport::connect("127.0.0.1", rig.server->port()),
                faults, &stats);
          },
          options, &rig.service->metrics());
      try {
        client.update_streaming(images[i], 0, target);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  EXPECT_EQ(failures.load(), 0u);
  for (std::size_t i = 0; i < kClients; ++i) {
    EXPECT_TRUE(test::bytes_equal(rig.history[target], images[i]))
        << "client " << i;
  }
  // The link really did misbehave, and every client still converged.
  EXPECT_GE(stats.total(), kClients) << "fault injection never fired";
  EXPECT_GE(rig.service->metrics().net_retries.load(), kClients);
}

TEST(NetE2E, KilledClientResumesFromJournaledOffset) {
  // Heavier edits -> a delta comfortably larger than the kill budget
  // below, so the first client always dies mid-transfer.
  TcpRig rig(2, /*seed=*/74, {}, /*edits_per_release=*/60);
  SKIP_IF_NO_SOCKETS(rig);
  constexpr std::size_t kImageArea = 64 << 10;
  constexpr JournalRegion kJournal{kImageArea, 16 << 10};
  FlashDevice device(kImageArea + kJournal.size, 512, 96 << 10);
  device.load_image(rig.history[0]);
  clear_journal(device, kJournal);

  // The journal lives with the caller (NVRAM), not the client.
  TransferJournal journal;

  // Client #1: its link dies a fixed number of bytes into the transfer
  // and never recovers (max_attempts = 1) — the "kill" is this client
  // being destroyed with the transfer incomplete.
  {
    OtaClientOptions options;
    options.max_chunk = 256;  // many small chunks before the link dies
    options.max_attempts = 1;
    OtaClient doomed(
        [&rig]() -> std::unique_ptr<Transport> {
          FaultOptions faults;
          faults.kill_after_bytes = 1500;  // handshake + a few chunks
          return std::make_unique<FaultyTransport>(
              TcpTransport::connect("127.0.0.1", rig.server->port()),
              faults, nullptr);
        },
        options);
    EXPECT_THROW(doomed.update_device(device, kJournal, 0, 1, channel_28k(),
                                      &journal),
                 Error);
  }
  ASSERT_TRUE(journal.active);
  ASSERT_GT(journal.received.size(), 0u);
  ASSERT_LT(journal.received.size(), journal.total_size)
      << "fault fired too late to test resume";
  const std::uint64_t journaled_offset = journal.received.size();
  const std::uint64_t artifact_size = journal.total_size;

  // Client #2 ("after reboot"): a fresh client, same journal, clean link.
  OtaClient revived(rig.factory());
  const OtaReport report =
      revived.update_device(device, kJournal, 0, 1, channel_28k(), &journal);
  EXPECT_EQ(report.final_release, 1u);
  EXPECT_EQ(report.resumes, 1u);
  EXPECT_GE(rig.service->metrics().net_resumes.load(), 1u);
  // Only the tail crossed the wire the second time: the journaled
  // prefix was not re-fetched.
  EXPECT_GT(journaled_offset, 512u);
  EXPECT_LT(report.bytes_received, artifact_size);
  EXPECT_TRUE(test::bytes_equal(
      rig.history[1], ByteView(device.inspect()).first(rig.history[1].size())));
}

TEST(NetE2E, StaleCurrentAfterRebootTrustsTheJournalForward) {
  // Regression: a device reboots between hops of a multi-hop upgrade.
  // Its caller re-invokes update_device with the *original* release id
  // (the boot firmware only knows what it shipped with), but the
  // transfer journal holds a later hop in flight. The journal must win
  // — requesting from the stale id would fetch a delta against bytes
  // the device no longer holds and corrupt the image.
  TcpRig rig(3, /*seed=*/75, {}, /*edits_per_release=*/60);
  SKIP_IF_NO_SOCKETS(rig);
  constexpr std::size_t kImageArea = 64 << 10;
  constexpr JournalRegion kJournal{kImageArea, 16 << 10};
  FlashDevice device(kImageArea + kJournal.size, 512, 96 << 10);
  device.load_image(rig.history[0]);
  clear_journal(device, kJournal);

  TransferJournal journal;

  // Hop 0 -> 1 completes cleanly.
  {
    OtaClient client(rig.factory());
    const OtaReport r =
        client.update_device(device, kJournal, 0, 1, channel_28k(), &journal);
    ASSERT_EQ(r.final_release, 1u);
  }

  // Hop 1 -> 2: the link dies mid-download, stranding the journal with
  // a partial artifact for from=1.
  {
    OtaClientOptions options;
    options.max_chunk = 256;
    options.max_attempts = 1;
    OtaClient doomed(
        [&rig]() -> std::unique_ptr<Transport> {
          FaultOptions faults;
          faults.kill_after_bytes = 1500;
          return std::make_unique<FaultyTransport>(
              TcpTransport::connect("127.0.0.1", rig.server->port()), faults,
              nullptr);
        },
        options);
    EXPECT_THROW(
        doomed.update_device(device, kJournal, 1, 2, channel_28k(), &journal),
        Error);
  }
  ASSERT_TRUE(journal.active);
  ASSERT_EQ(journal.from, 1u);
  ASSERT_LT(journal.received.size(), journal.total_size)
      << "fault fired too late to test the stale-current resume";

  // "Reboot": a fresh client is handed the STALE current = 0. The
  // journaled hop (from = 1) must be resumed and finished first.
  OtaClient revived(rig.factory());
  const OtaReport report =
      revived.update_device(device, kJournal, 0, 2, channel_28k(), &journal);
  EXPECT_EQ(report.final_release, 2u);
  EXPECT_GE(report.resumes, 1u);
  EXPECT_TRUE(test::bytes_equal(
      rig.history[2], ByteView(device.inspect()).first(rig.history[2].size())));
}

TEST(NetE2E, PowerFailureMidApplyResumesBothJournals) {
  TcpRig rig(2, /*seed=*/72);
  SKIP_IF_NO_SOCKETS(rig);
  constexpr std::size_t kImageArea = 64 << 10;
  constexpr JournalRegion kJournal{kImageArea, 16 << 10};
  FlashDevice device(kImageArea + kJournal.size, 512, 96 << 10);
  device.load_image(rig.history[0]);
  clear_journal(device, kJournal);

  TransferJournal journal;
  OtaClient client(rig.factory());

  // Cut the power a little into the apply. The download completes first
  // (it only reads), so the journal holds the whole artifact when the
  // failure hits.
  device.inject_power_failure_after(4096);
  try {
    client.update_device(device, kJournal, 0, 1, channel_28k(), &journal);
    FAIL() << "expected the injected power failure";
  } catch (const FlashDevice::PowerFailure&) {
  }
  ASSERT_TRUE(journal.active);
  EXPECT_EQ(journal.received.size(), journal.total_size);

  // Reboot: same device, same journals. The download is skipped (the
  // transfer journal is complete) and the flash journal resumes the
  // apply mid-delta.
  device.clear_power_failure();
  const std::uint64_t wire_before = rig.service->metrics().net_bytes_sent.load();
  const OtaReport report =
      client.update_device(device, kJournal, 0, 1, channel_28k(), &journal);
  EXPECT_EQ(report.final_release, 1u);
  EXPECT_EQ(rig.service->metrics().net_bytes_sent.load(), wire_before)
      << "resume after power failure re-downloaded the artifact";
  EXPECT_TRUE(test::bytes_equal(
      rig.history[1], ByteView(device.inspect()).first(rig.history[1].size())));
}

TEST(NetE2E, RestartedServerAcceptsConnectionsAgain) {
  TcpRig rig(2);
  SKIP_IF_NO_SOCKETS(rig);
  {
    OtaClient client(rig.factory());
    EXPECT_NE(client.fetch_metrics().find("net_sessions:"),
              std::string::npos);
  }
  rig.server->stop();
  rig.server->start();
  // stop() raises the internal stopping flag; a restarted server must
  // accept sessions again, not answer each with ERROR{kBusy}. The
  // factory is rebuilt because the ephemeral port may have changed.
  OtaClient client(rig.factory());
  EXPECT_NE(client.fetch_metrics().find("net_sessions:"),
            std::string::npos);
}

TEST(NetE2E, ConnectionLimitShedsWithTypedErrorAndRecovers) {
  ServerConfig net;
  net.max_connections = 1;
  TcpRig rig(2, /*seed=*/73, net);
  SKIP_IF_NO_SOCKETS(rig);

  // Occupy the only slot.
  auto holder = TcpTransport::connect("127.0.0.1", rig.server->port());
  FramedConnection held(*holder);
  held.send(HelloMsg{});
  ASSERT_TRUE(std::holds_alternative<HelloAckMsg>(*held.receive()));

  // Second connection: the reactor sheds it at accept with a typed
  // ERROR{kShed} and hangs up — never a silent stall.
  {
    auto second = TcpTransport::connect("127.0.0.1", rig.server->port());
    FramedConnection conn(*second);
    const std::optional<Message> reply = conn.receive();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(std::get<ErrorMsg>(*reply).code, ErrorCode::kShed);
  }
  EXPECT_GE(rig.service->metrics().net_rejected.load(), 1u);
  EXPECT_GE(rig.service->metrics().net_shed.load(), 1u);

  // Free the slot. The server notices the hang-up asynchronously, so
  // poll: fetch_metrics() throws retryable errors while the slot is
  // still occupied.
  holder->close();
  std::string text;
  for (int i = 0; i < 100 && text.empty(); ++i) {
    try {
      OtaClient client(rig.factory());
      text = client.fetch_metrics();
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_NE(text.find("net_sessions:"), std::string::npos);
}

TEST(NetE2E, StatsServedMidLoadNamesEveryMetric) {
  TcpRig rig(4);
  SKIP_IF_NO_SOCKETS(rig);
  const ReleaseId target = static_cast<ReleaseId>(rig.history.size() - 1);

  // A background fleet keeps the serve and transfer paths hot while the
  // scraper hits the STATS endpoint: the exposition must be servable
  // concurrently with real traffic, not only from a quiesced server.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> fleet;
  for (std::size_t i = 0; i < 3; ++i) {
    fleet.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Bytes image = rig.history[0];
        OtaClient client(rig.factory());
        try {
          client.update_streaming(image, 0, target);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }

  std::string text;
  for (int attempt = 0; attempt < 100 && text.empty(); ++attempt) {
    try {
      OtaClient scraper(rig.factory());
      text = scraper.fetch_stats();
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : fleet) t.join();

  ASSERT_FALSE(text.empty()) << "STATS never answered under load";
  EXPECT_EQ(failures.load(), 0u);
  // Every ServiceMetrics counter appears, by its registry name.
  rig.service->metrics().for_each([&](const char* name, std::uint64_t) {
    EXPECT_NE(text.find("ipdelta_" + std::string(name) + " "),
              std::string::npos)
        << name;
  });
  // Every registered histogram renders as a summary with quantiles.
  std::size_t summaries = 0;
  rig.service->histograms().for_each(
      [&](const char* name, const obs::Histogram&) {
        ++summaries;
        EXPECT_NE(
            text.find("ipdelta_" + std::string(name) + "{quantile=\"0.5\"}"),
            std::string::npos)
            << name;
      });
  EXPECT_GE(summaries, 4u);
  // The serve path really ran while we scraped, so its histogram and
  // the per-stage aggregates carry live data.
  EXPECT_NE(text.find("ipdelta_stage_ns{stage=\"serve\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ipdelta_cache_bytes_held"), std::string::npos);
}

// Regression: started_ used to sit outside the sessions mutex, so two
// threads racing start() could both pass the check and fight over the
// listener/pool/accept-thread members. start() is now exclusive under
// the lock: of N concurrent callers exactly one wins, the rest get
// "already started", and a stopped server starts again cleanly.
TEST(NetE2E, ConcurrentStartAdmitsExactlyOneCaller) {
  TcpRig rig(2);
  SKIP_IF_NO_SOCKETS(rig);
  rig.server->stop();

  for (int round = 0; round < 20; ++round) {
    constexpr int kCallers = 4;
    std::atomic<int> winners{0};
    std::atomic<int> refused{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kCallers; ++i) {
      threads.emplace_back([&] {
        try {
          rig.server->start();
          winners.fetch_add(1);
        } catch (const Error&) {
          refused.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    EXPECT_EQ(refused.load(), kCallers - 1) << "round " << round;
    rig.server->stop();
  }
}

// ---- distributed tracing over the wire ------------------------------

/// Every (stage name, args.trace hex) pair in a trace_events_json()
/// document — the events are serialized one object at a time, so the
/// trace id for a span (when present) sits between its "name" key and
/// the next event's.
std::vector<std::pair<std::string, std::string>> span_traces(
    const std::string& json) {
  std::vector<std::pair<std::string, std::string>> out;
  const std::string name_key = "\"name\":\"";
  for (std::size_t at = json.find(name_key); at != std::string::npos;) {
    const std::size_t name_begin = at + name_key.size();
    const std::size_t name_end = json.find('"', name_begin);
    const std::size_t next = json.find(name_key, name_end);
    const std::size_t tr = json.find("\"trace\":\"", name_end);
    std::string trace;
    if (tr != std::string::npos && (next == std::string::npos || tr < next)) {
      trace = json.substr(tr + 9, 32);
    }
    out.emplace_back(json.substr(name_begin, name_end - name_begin), trace);
    at = next;
  }
  return out;
}

std::string trace_of(
    const std::vector<std::pair<std::string, std::string>>& spans,
    const std::string& stage) {
  for (const auto& [name, trace] : spans) {
    if (name == stage && !trace.empty()) return trace;
  }
  return {};
}

TEST(NetE2E, RequestServeAndTransferSpansShareOneTraceId) {
  TcpRig rig(3);
  SKIP_IF_NO_SOCKETS(rig);
  const ReleaseId target = static_cast<ReleaseId>(rig.history.size() - 1);

  // Client and server live in one process here, so one collector sees
  // both sides; the genuinely-two-process version of this assertion
  // (separate exports joined by `ipdelta trace --merge`) runs in
  // tests/test_cli.sh.
  obs::set_tracing(true);
  obs::clear_trace_events();
  Bytes image = rig.history[0];
  OtaClient client(rig.factory());
  client.update_streaming(image, 0, target);
  obs::set_tracing(false);
  const std::string json = obs::trace_events_json();
  obs::clear_trace_events();
  ASSERT_TRUE(test::bytes_equal(rig.history[target], image));

  const auto spans = span_traces(json);
  const std::string request_trace = trace_of(spans, "net_request");
  ASSERT_EQ(request_trace.size(), 32u)
      << "client request span missing its trace id";
  // The server-side spans for this update carry the SAME trace id: the
  // context crossed the wire in the frame extension, not thread-locals.
  EXPECT_EQ(trace_of(spans, "serve"), request_trace);
  EXPECT_EQ(trace_of(spans, "net_transfer"), request_trace);
}

TEST(NetE2E, V2SessionEchoesTraceContextInReplies) {
  TcpRig rig(2);
  SKIP_IF_NO_SOCKETS(rig);
  auto transport = TcpTransport::connect("127.0.0.1", rig.server->port());
  FramedConnection conn(*transport);
  conn.send(HelloMsg{kProtocolVersionTraced, 4096});
  const auto ack = std::get<HelloAckMsg>(*conn.receive());
  EXPECT_EQ(ack.protocol_version, kProtocolVersionTraced);

  const obs::TraceContext ctx = obs::mint_trace();
  conn.set_outbound_trace(ctx);
  conn.send(GetDeltaMsg{0, 1});
  const std::optional<Message> begin = conn.receive();
  ASSERT_TRUE(begin && std::holds_alternative<DeltaBeginMsg>(*begin));
  // The reply frame carries the server's context for OUR trace: same
  // 128-bit id, a server-side span parented under the request.
  const obs::TraceContext echoed = conn.inbound_trace();
  ASSERT_TRUE(echoed.valid());
  EXPECT_EQ(echoed.trace_hi, ctx.trace_hi);
  EXPECT_EQ(echoed.trace_lo, ctx.trace_lo);
  EXPECT_NE(echoed.span_id, ctx.span_id);
  transport->close();
}

TEST(NetE2E, V1SessionInteroperatesWithNoTraceExtension) {
  TcpRig rig(2);
  SKIP_IF_NO_SOCKETS(rig);
  // An old client speaks protocol v1 and knows nothing of the frame
  // trace flag; the new server must answer v1 exactly as before.
  auto transport = TcpTransport::connect("127.0.0.1", rig.server->port());
  FramedConnection conn(*transport);
  conn.send(HelloMsg{kProtocolVersion, 4096});
  const auto ack = std::get<HelloAckMsg>(*conn.receive());
  EXPECT_EQ(ack.protocol_version, kProtocolVersion);
  conn.send(GetDeltaMsg{0, 1});
  const std::optional<Message> begin = conn.receive();
  ASSERT_TRUE(begin && std::holds_alternative<DeltaBeginMsg>(*begin));
  EXPECT_FALSE(conn.inbound_trace().valid())
      << "a v1 session must never see the trace extension";
  transport->close();
}

TEST(NetE2E, NewClientDowngradesStickilyAgainstAnOldServer) {
  // A pre-trace server: rejects any HELLO version it does not know with
  // ERROR{kProtocol} (exactly what the old serve_session did), acks v1,
  // and answers METRICS_REQ. The new client must downgrade, reconnect
  // speaking v1 — and remember the downgrade on later connections.
  std::unique_ptr<TcpListener> listener;
  try {
    listener = std::make_unique<TcpListener>(0);
  } catch (const TransportError&) {
    GTEST_SKIP() << "localhost sockets unavailable here";
  }
  std::atomic<int> hellos_seen{0};
  std::atomic<int> rejected{0};
  std::thread old_server([&] {
    while (std::unique_ptr<TcpTransport> t = listener->accept()) {
      try {
        FramedConnection conn(*t);
        const std::optional<Message> msg = conn.receive();
        const auto* hello = msg ? std::get_if<HelloMsg>(&*msg) : nullptr;
        if (hello == nullptr) continue;
        hellos_seen.fetch_add(1);
        if (hello->protocol_version != kProtocolVersion) {
          rejected.fetch_add(1);
          conn.send(ErrorMsg{ErrorCode::kProtocol,
                             "unsupported protocol version"});
          continue;
        }
        HelloAckMsg ack;
        ack.protocol_version = kProtocolVersion;
        ack.release_count = 2;
        ack.latest = 1;
        ack.chunk = 4096;
        conn.send(ack);
        const std::optional<Message> req = conn.receive();
        if (req && std::holds_alternative<MetricsReqMsg>(*req)) {
          conn.send(MetricsMsg{"net_sessions:         1\n"});
        }
      } catch (const Error&) {
        // a half-closed connection is the client's business
      }
    }
  });

  OtaClient client([port = listener->port()] {
    return TcpTransport::connect("127.0.0.1", port);
  });
  // First call: v2 offer refused, downgrade, v1 succeeds (2 connects).
  EXPECT_NE(client.fetch_metrics().find("net_sessions"), std::string::npos);
  // Second call: the downgrade stuck, so v1 straight away (1 connect).
  EXPECT_NE(client.fetch_metrics().find("net_sessions"), std::string::npos);
  listener->close();
  old_server.join();
  EXPECT_EQ(rejected.load(), 1);
  EXPECT_EQ(hellos_seen.load(), 3);
}

TEST(NetE2E, ExhaustedAttemptsDumpTheFlightRecorder) {
  TcpRig rig(2);
  SKIP_IF_NO_SOCKETS(rig);
  obs::clear_flight_dumps();
  OtaClientOptions options;
  options.max_attempts = 2;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 2;
  // Every link dies almost immediately: the update runs out of attempts
  // and the abort path must leave a flight record for the post-mortem.
  OtaClient doomed(
      [&rig]() -> std::unique_ptr<Transport> {
        FaultOptions faults;
        faults.kill_after_bytes = 64;
        return std::make_unique<FaultyTransport>(
            TcpTransport::connect("127.0.0.1", rig.server->port()), faults,
            nullptr);
      },
      options);
  Bytes image = rig.history[0];
  EXPECT_THROW(doomed.update_streaming(image, 0, 1), Error);
  const std::vector<obs::FlightDump> dumps = obs::flight_dumps();
  ASSERT_FALSE(dumps.empty()) << "transfer abort left no flight record";
  EXPECT_NE(dumps.back().reason.find("attempts exhausted"),
            std::string::npos);
  EXPECT_NE(dumps.back().label.find("ota:stream"), std::string::npos);
  // The dump is keyed by the update's trace id even with tracing off.
  EXPECT_EQ(dumps.back().trace_id.size(), 32u);
  obs::clear_flight_dumps();
}

}  // namespace
}  // namespace ipd
