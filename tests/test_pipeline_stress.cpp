// Concurrency hammering for ipd::Pipeline: many threads drive ONE
// handle — concurrent build_delta, build_inplace and apply calls, all
// fanning intra-build work onto the same lazily created pool. Run under
// IPDELTA_SANITIZE=thread via `ctest -L stress` (see README); the
// assertions double as a determinism check under real contention.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

TEST(PipelineStress, ConcurrentBuildsOnOneHandleAreIdentical) {
  Rng rng(0x5712e55);
  const Bytes ref = generate_file(rng, 160 << 10, FileProfile::kBinary);
  const Bytes ver = mutate(ref, rng, 192);

  PipelineOptions options;
  options.parallelism = 4;
  options.min_parallel_input = 32 << 10;
  options.parallel_segment_bytes = 16 << 10;
  const Pipeline pipeline(options);

  // Expected artifacts, built before any contention exists.
  const Bytes plain = pipeline.build_delta(ref, ver).delta;
  const Bytes inplace = pipeline.build_inplace(ref, ver).delta;
  ASSERT_GT(pipeline.build_delta(ref, ver).timing.diff_segments, 1u);

  constexpr int kThreads = 8;
  constexpr int kIterations = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        switch ((t + i) % 3) {
          case 0:
            if (pipeline.build_delta(ref, ver).delta != plain) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          case 1:
            if (pipeline.build_inplace(ref, ver).delta != inplace) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          default:
            if (pipeline.apply(inplace, ref) != ver) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(PipelineStress, SharedPoolWithConcurrentCallers) {
  // The DeltaService topology: builds run on pool workers and their
  // parallel_for helpers land on the same pool — no oversubscription,
  // no deadlock (caller participation), identical bytes.
  Rng rng(0xBADC0DE);
  const Bytes ref = generate_file(rng, 96 << 10, FileProfile::kText);
  const Bytes ver = mutate(ref, rng, 128);

  PipelineOptions options;
  options.parallelism = 0;  // hardware width, capped by the pool
  options.min_parallel_input = 32 << 10;
  options.parallel_segment_bytes = 16 << 10;
  ThreadPool pool(4);
  const Pipeline pipeline(options, &pool);
  const Bytes expected = pipeline.build_inplace(ref, ver).delta;

  std::atomic<int> mismatches{0};
  std::vector<std::future<void>> builds;
  builds.reserve(12);
  for (int i = 0; i < 12; ++i) {
    builds.push_back(pool.submit([&] {
      if (pipeline.build_inplace(ref, ver).delta != expected) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }));
  }
  for (std::future<void>& build : builds) {
    build.get();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ipd
