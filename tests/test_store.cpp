// Durable artifact store (src/store/): chain policy, record log, publish
// and reconstruct round trips, reopen/restart byte-identity, the
// VersionStore adapter, and the store-seeded UpgradePlanner.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "archive/upgrade_planner.hpp"
#include "core/checksum.hpp"
#include "server/delta_service.hpp"
#include "store/artifact_store.hpp"
#include "store/record_log.hpp"
#include "store/store_backed_version_store.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

/// Fresh per-test store directory under the system temp dir, removed on
/// teardown.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("ipd_store_" + std::to_string(::getpid()) + "_" +
            info->test_suite_name() + "_" + info->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

/// A history of drifting release bodies: each one mutates and grows its
/// predecessor, so adjacent deltas are small and distant ones are not.
std::vector<Bytes> make_history(std::size_t releases,
                                std::size_t base_size = 16 << 10,
                                std::uint64_t seed = 99) {
  std::vector<Bytes> history;
  Bytes body = random_bytes(seed, base_size);
  history.push_back(body);
  for (std::size_t i = 1; i < releases; ++i) {
    Rng rng(seed + i);
    for (int edit = 0; edit < 6; ++edit) {
      const std::size_t at = rng.below(body.size());
      const std::size_t len = std::min<std::size_t>(64, body.size() - at);
      for (std::size_t b = 0; b < len; ++b) {
        body[at + b] = static_cast<std::uint8_t>(rng.next());
      }
    }
    const Bytes tail = random_bytes(seed ^ i, 256);
    body.insert(body.end(), tail.begin(), tail.end());
    history.push_back(body);
  }
  return history;
}

// ---- chain policy ----------------------------------------------------

TEST(ChainPolicy, AppendsWhileChainIsHealthy) {
  ChainPolicy policy;
  const ChainDecision d = policy.decide({.chain_length = 3,
                                         .chain_bytes = 3000,
                                         .releases_since_baseline = 3},
                                        1000, 100000);
  EXPECT_EQ(d.action, ChainAction::kAppendDelta);
}

TEST(ChainPolicy, OversizedDeltaBecomesBaseline) {
  ChainPolicy policy;  // baseline_ratio = 0.7
  const ChainDecision d = policy.decide({}, 71, 100);
  EXPECT_EQ(d.action, ChainAction::kNewBaseline);
}

TEST(ChainPolicy, LengthCapTriggersFold) {
  ChainPolicy policy(ChainPolicyOptions{.max_chain_length = 4});
  const ChainDecision d = policy.decide({.chain_length = 4,
                                         .chain_bytes = 400,
                                         .releases_since_baseline = 4},
                                        50, 100000);
  EXPECT_EQ(d.action, ChainAction::kFoldToBaseline);
}

TEST(ChainPolicy, InflationCapTriggersFold) {
  ChainPolicy policy(ChainPolicyOptions{.max_inflation = 1.5});
  // Chain already carries 1.6x the body in delta bytes.
  const ChainDecision d = policy.decide({.chain_length = 3,
                                         .chain_bytes = 1500,
                                         .releases_since_baseline = 3},
                                        100, 1000);
  EXPECT_EQ(d.action, ChainAction::kFoldToBaseline);
}

TEST(ChainPolicy, PeriodicBaselineInterval) {
  ChainPolicy policy(ChainPolicyOptions{.baseline_interval = 5});
  const ChainDecision d = policy.decide({.chain_length = 4,
                                         .chain_bytes = 400,
                                         .releases_since_baseline = 4},
                                        50, 100000);
  EXPECT_EQ(d.action, ChainAction::kNewBaseline);
}

TEST(ChainPolicy, RejectsNonsenseOptions) {
  EXPECT_THROW(ChainPolicy(ChainPolicyOptions{.max_chain_length = 0}),
               ValidationError);
  EXPECT_THROW(ChainPolicy(ChainPolicyOptions{.baseline_ratio = 0.0}),
               ValidationError);
  EXPECT_THROW(ChainPolicy(ChainPolicyOptions{.max_inflation = -1.0}),
               ValidationError);
}

TEST(ChainPolicy, AcceptFoldRequiresRealWin) {
  ChainPolicy policy;  // baseline_ratio = 0.7
  EXPECT_TRUE(policy.accept_fold(69, 100));
  EXPECT_FALSE(policy.accept_fold(70, 100));
}

// ---- record log ------------------------------------------------------

TEST_F(StoreTest, RecordLogRoundTripsAcrossReopen) {
  std::filesystem::create_directories(dir_);
  const auto path = dir_ / "log";
  std::vector<Bytes> payloads;
  std::vector<std::uint64_t> offsets;
  {
    RecordLog log = RecordLog::create(path, "IPDTEST1");
    for (std::uint64_t i = 0; i < 10; ++i) {
      payloads.push_back(random_bytes(i, 100 + i * 37));
      offsets.push_back(log.append(payloads.back()));
    }
    log.sync();
  }
  RecordLog log = RecordLog::open(path, "IPDTEST1");
  std::size_t seen = 0;
  const RecoverStats stats = log.recover([&](std::uint64_t offset, Bytes p) {
    EXPECT_EQ(offset, offsets[seen]);
    EXPECT_EQ(p, payloads[seen]);
    ++seen;
  });
  EXPECT_EQ(stats.records, 10u);
  EXPECT_FALSE(stats.truncated);
  // Random access too.
  EXPECT_EQ(log.read_at(offsets[7]), payloads[7]);
}

TEST_F(StoreTest, RecordLogTruncatesTornTail) {
  std::filesystem::create_directories(dir_);
  const auto path = dir_ / "log";
  std::uint64_t durable = 0;
  {
    RecordLog log = RecordLog::create(path, "IPDTEST1");
    log.append(random_bytes(1, 500));
    durable = log.size();
    log.append(random_bytes(2, 500));
  }
  // Tear the second record's payload.
  std::filesystem::resize_file(path, durable + 8);
  RecordLog log = RecordLog::open(path, "IPDTEST1");
  std::size_t seen = 0;
  const RecoverStats stats = log.recover(
      [&](std::uint64_t, Bytes) { ++seen; });
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.durable_bytes, durable);
  EXPECT_EQ(std::filesystem::file_size(path), durable);
}

TEST_F(StoreTest, RecordLogRejectsForeignMagic) {
  std::filesystem::create_directories(dir_);
  const auto path = dir_ / "log";
  { RecordLog log = RecordLog::create(path, "IPDTEST1"); }
  EXPECT_THROW(RecordLog::open(path, "IPDOTHER"), StoreError);
}

// ---- artifact store --------------------------------------------------

TEST_F(StoreTest, PublishAndReconstructRoundTrip) {
  ArtifactStore::init(dir_);
  ArtifactStore store(dir_);
  const std::vector<Bytes> history = make_history(8);
  for (const Bytes& body : history) {
    store.publish(body);
  }
  ASSERT_EQ(store.release_count(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(*store.body(static_cast<ReleaseId>(i)), history[i])
        << "release " << i;
  }
  // Everything after the first release rode the chain.
  EXPECT_EQ(store.record(0).kind, StoredKind::kBaseline);
  EXPECT_GT(store.stored_edges().size(), 0u);
  EXPECT_LT(store.segment_bytes(),
            2 * history.front().size() + 64 * history.size());
}

TEST_F(StoreTest, HistorySurvivesReopenByteIdentical) {
  ArtifactStore::init(dir_);
  const std::vector<Bytes> history = make_history(6);
  {
    ArtifactStore store(dir_);
    for (const Bytes& body : history) store.publish(body);
  }  // hard stop: destructor closes the logs, nothing else persists

  ArtifactStore reopened(dir_);
  ASSERT_EQ(reopened.release_count(), history.size());
  EXPECT_EQ(reopened.recovery().releases, history.size());
  EXPECT_FALSE(reopened.recovery().manifest_truncated);
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(*reopened.body(static_cast<ReleaseId>(i)), history[i]);
  }
  reopened.check();
}

TEST_F(StoreTest, ChainPolicyBoundsChainLength) {
  ArtifactStore::init(dir_);
  StoreOptions options;
  options.chain.max_chain_length = 3;
  ArtifactStore store(dir_, options);
  const std::vector<Bytes> history = make_history(10);
  for (const Bytes& body : history) store.publish(body);
  for (ReleaseId id = 0; id < store.release_count(); ++id) {
    EXPECT_LE(store.chain_stats(id).chain_length, 3u) << "release " << id;
    EXPECT_EQ(*store.body(id), history[id]);
  }
  EXPECT_GT(store.metrics().folds.load(), 0u);
}

TEST_F(StoreTest, InitRefusesToEatAnExistingStore) {
  ArtifactStore::init(dir_);
  EXPECT_THROW(ArtifactStore::init(dir_), StoreError);
  EXPECT_THROW(ArtifactStore store(dir_ / "nothere"), StoreError);
}

TEST_F(StoreTest, DuplicateContentCountsAndLatestWins) {
  ArtifactStore::init(dir_);
  ArtifactStore store(dir_);
  const std::vector<Bytes> history = make_history(3);
  store.publish(history[0]);
  store.publish(history[1]);
  // Roll back: re-release the first body.
  const ReleaseId re = store.publish(history[0]);
  EXPECT_EQ(re, 2u);
  EXPECT_EQ(store.metrics().duplicate_publishes.load(), 1u);
  const ContentKey key{crc32c(history[0]), history[0].size()};
  EXPECT_EQ(store.find(key), re);  // newest shadows oldest
  EXPECT_EQ(*store.body(re), history[0]);
}

TEST_F(StoreTest, InMemoryStoreCountsDuplicatesToo) {
  VersionStore store;
  const Bytes a = random_bytes(1, 1000);
  const Bytes b = random_bytes(2, 1000);
  store.publish(a);
  store.publish(b);
  EXPECT_EQ(store.duplicate_publishes(), 0u);
  const ReleaseId re = store.publish(a);
  EXPECT_EQ(store.duplicate_publishes(), 1u);
  EXPECT_EQ(store.find(ContentKey{crc32c(a), a.size()}), re);
}

TEST_F(StoreTest, CompactShortensChainAndGcReclaims) {
  ArtifactStore::init(dir_);
  ArtifactStore store(dir_);
  const std::vector<Bytes> history = make_history(6);
  for (const Bytes& body : history) store.publish(body);
  const ReleaseId tip = store.latest();
  ASSERT_GT(store.chain_stats(tip).chain_length, 1u);
  EXPECT_TRUE(store.compact(tip));
  EXPECT_EQ(store.chain_stats(tip).chain_length, 1u);
  EXPECT_EQ(*store.body(tip), history.back());
  // The superseded chain artifact is dead segment weight until gc.
  const std::uint64_t before = store.segment_bytes();
  EXPECT_GT(store.gc(), 0u);
  EXPECT_LT(store.segment_bytes(), before);
  store.check();
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(*store.body(static_cast<ReleaseId>(i)), history[i]);
  }
}

TEST_F(StoreTest, GcSurvivesReopen) {
  ArtifactStore::init(dir_);
  const std::vector<Bytes> history = make_history(5);
  {
    ArtifactStore store(dir_);
    for (const Bytes& body : history) store.publish(body);
    store.compact(store.latest());
    store.gc();
  }
  ArtifactStore reopened(dir_);
  reopened.check();
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(*reopened.body(static_cast<ReleaseId>(i)), history[i]);
  }
}

TEST_F(StoreTest, DiskCacheServesRepeatReconstructs) {
  ArtifactStore::init(dir_);
  const std::vector<Bytes> history = make_history(5);
  {
    ArtifactStore store(dir_);
    for (const Bytes& body : history) store.publish(body);
  }
  ArtifactStore store(dir_);  // fresh process: RAM state gone, disk warm
  const ReleaseId tip = store.latest();
  EXPECT_EQ(*store.body(tip), history.back());
  const std::uint64_t hits = store.metrics().disk_cache_hits.load();
  EXPECT_GT(hits, 0u);  // publish-time cache files survived
}

// ---- VersionStore adapter + service ----------------------------------

TEST_F(StoreTest, AdapterServesThroughDeltaServiceAfterRestart) {
  ArtifactStore::init(dir_);
  const std::vector<Bytes> history = make_history(6);
  {
    ArtifactStore store(dir_);
    for (const Bytes& body : history) store.publish(body);
  }  // "process exit"

  // Restarted server over the same directory.
  auto artifacts = std::make_shared<ArtifactStore>(dir_);
  StoreBackedVersionStore store(artifacts);
  ASSERT_EQ(store.release_count(), history.size());
  DeltaService service(store);
  const std::size_t warmed = preload_stored_edges(*artifacts, service);
  EXPECT_GT(warmed, 0u);

  // Every upgrade pair must reconstruct byte-identically from disk.
  for (ReleaseId from = 0; from < history.size(); ++from) {
    for (ReleaseId to = from + 1; to < history.size(); ++to) {
      const ServeResult result = service.serve(from, to);
      const Bytes rebuilt = apply_served(result, history[from]);
      EXPECT_TRUE(test::bytes_equal(history[to], rebuilt))
          << from << " -> " << to;
    }
  }
  // Preloaded chain edges serve as cache hits (no build ran).
  const ServeResult hop = service.serve(0, 1);
  EXPECT_TRUE(hop.cache_hit);
}

TEST_F(StoreTest, AdapterForwardsDuplicateCounter) {
  ArtifactStore::init(dir_);
  auto artifacts = std::make_shared<ArtifactStore>(dir_);
  StoreBackedVersionStore store(artifacts);
  const Bytes a = random_bytes(5, 2000);
  const Bytes b = random_bytes(6, 2000);
  store.publish(Bytes(a));
  store.publish(Bytes(b));
  store.publish(Bytes(a));
  EXPECT_EQ(store.duplicate_publishes(), 1u);
  EXPECT_EQ(store.latest(), 2u);
  EXPECT_EQ(store.content_key(0), (ContentKey{crc32c(a), a.size()}));
}

// ---- store-seeded planner --------------------------------------------

TEST_F(StoreTest, PlannerSeedsFromStoredEdges) {
  ArtifactStore::init(dir_);
  ArtifactStore store(dir_);
  const std::vector<Bytes> history = make_history(6);
  std::vector<std::shared_ptr<const Bytes>> bodies;
  for (const Bytes& body : history) {
    store.publish(body);
    bodies.push_back(std::make_shared<const Bytes>(body));
  }

  PlannerOptions options;
  options.build_cost_penalty = 1 << 20;  // un-built edges are expensive
  UpgradePlanner planner(bodies, options);
  for (const StoredEdge& edge : store.stored_edges()) {
    planner.seed_edge(edge.from, edge.to, store.stored_artifact(edge.to));
    EXPECT_TRUE(planner.materialized(edge.from, edge.to));
  }
  const std::size_t built_before = planner.deltas_built();

  // With materialized chain hops free and fresh builds penalized a MiB,
  // the cheapest route 0 -> 5 is the stored chain: no new deltas built.
  const UpgradePlan plan = planner.plan(0, 5);
  EXPECT_EQ(planner.deltas_built(), built_before);
  for (const UpgradeStep& step : plan.steps) {
    EXPECT_FALSE(step.full_image);
    EXPECT_TRUE(planner.materialized(step.from, step.to));
  }
  Bytes image = history[0];
  planner.execute(plan, image);
  EXPECT_TRUE(test::bytes_equal(history[5], image));
}

TEST_F(StoreTest, PlannerRejectsMismatchedSeed) {
  const std::vector<Bytes> history = make_history(3);
  std::vector<std::shared_ptr<const Bytes>> bodies;
  for (const Bytes& body : history) {
    bodies.push_back(std::make_shared<const Bytes>(body));
  }
  UpgradePlanner planner(bodies);
  // A delta for 0 -> 2 offered as the 0 -> 1 edge: endpoint mismatch.
  const Bytes wrong = Pipeline().build_inplace(history[0], history[2]).delta;
  EXPECT_THROW(planner.seed_edge(0, 1, wrong), ValidationError);
  EXPECT_THROW(planner.seed_edge(0, 1, random_bytes(1, 64)),
               ValidationError);
  EXPECT_FALSE(planner.materialized(0, 1));
}

TEST_F(StoreTest, PlannerPrebuildMarksMaterialized) {
  const std::vector<Bytes> history = make_history(3);
  std::vector<std::shared_ptr<const Bytes>> bodies;
  for (const Bytes& body : history) {
    bodies.push_back(std::make_shared<const Bytes>(body));
  }
  UpgradePlanner planner(bodies);
  EXPECT_FALSE(planner.materialized(0, 1));
  const std::uint64_t bytes = planner.prebuild(0, 1);
  EXPECT_GT(bytes, 0u);
  EXPECT_TRUE(planner.materialized(0, 1));
  EXPECT_EQ(planner.deltas_built(), 1u);
}

TEST_F(StoreTest, PlannerOwnsBodiesBeyondCallerScope) {
  // The regression the shared_ptr rebase fixes: the caller's history
  // vanishes, the planner keeps planning.
  std::unique_ptr<UpgradePlanner> planner;
  Bytes first_body;
  Bytes last_body;
  {
    const std::vector<Bytes> history = make_history(4);
    first_body = history.front();
    last_body = history.back();
    std::vector<ByteView> views(history.begin(), history.end());
    planner = std::make_unique<UpgradePlanner>(views);
  }  // history destroyed — views dangle, owned copies must not
  const UpgradePlan plan = planner->plan(0, 3);
  EXPECT_FALSE(plan.steps.empty());
  Bytes image = first_body;
  planner->execute(plan, image);
  EXPECT_TRUE(test::bytes_equal(last_body, image));
}

TEST_F(StoreTest, PlannerAppendReleaseExtendsHistory) {
  const std::vector<Bytes> history = make_history(4);
  std::vector<std::shared_ptr<const Bytes>> bodies;
  for (std::size_t i = 0; i < 3; ++i) {
    bodies.push_back(std::make_shared<const Bytes>(history[i]));
  }
  UpgradePlanner planner(bodies);
  EXPECT_EQ(planner.release_count(), 3u);
  const std::size_t id =
      planner.append_release(std::make_shared<const Bytes>(history[3]));
  EXPECT_EQ(id, 3u);
  Bytes image = history[0];
  planner.execute(planner.plan(0, 3), image);
  EXPECT_TRUE(test::bytes_equal(history[3], image));
}

}  // namespace
}  // namespace ipd
