#include "device/resumable_updater.hpp"

#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "device/channel.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

constexpr std::size_t kImageArea = 64 << 10;
constexpr std::size_t kJournalSize = 16 << 10;
constexpr std::size_t kStorage = kImageArea + kJournalSize;
constexpr JournalRegion kJournal{kImageArea, kJournalSize};

struct Fixture {
  Bytes v1;
  Bytes v2;
  Bytes delta;
};

Fixture make_fixture(std::uint64_t seed = 31) {
  Fixture f;
  Rng rng(seed);
  f.v1 = generate_file(rng, 48 << 10, FileProfile::kBinary);
  f.v2 = f.v1;
  // Guarantee self-overlapping copies: shift a large region forward.
  std::copy(f.v2.begin() + 1000, f.v2.begin() + 30000, f.v2.begin() + 1500);
  f.v2 = mutate(f.v2, rng, 10);
  f.delta = Pipeline().build_inplace(f.v1, f.v2).delta;
  return f;
}

FlashDevice make_device(const Fixture& f) {
  FlashDevice dev(kStorage, 512, (96 << 10));
  dev.load_image(f.v1);
  clear_journal(dev, kJournal);
  return dev;
}

void expect_updated(const FlashDevice& dev, const Fixture& f) {
  EXPECT_TRUE(test::bytes_equal(
      f.v2, ByteView(dev.inspect()).first(f.v2.size())));
}

TEST(ResumableUpdater, CleanRunMatchesPlainUpdater) {
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f);
  const ResumableUpdateResult r =
      apply_update_resumable(dev, f.delta, channel_28k(), kJournal);
  EXPECT_FALSE(r.resumed);
  EXPECT_TRUE(r.update.crc_verified);
  EXPECT_GT(r.journal_records, 0u);
  expect_updated(dev, f);
}

TEST(ResumableUpdater, SecondRunAfterCompletionIsIdempotent) {
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f);
  apply_update_resumable(dev, f.delta, channel_28k(), kJournal);
  const ResumableUpdateResult again =
      apply_update_resumable(dev, f.delta, channel_28k(), kJournal);
  EXPECT_TRUE(again.resumed);
  EXPECT_TRUE(again.update.crc_verified);
  expect_updated(dev, f);
}

// The headline property: crash at EVERY byte-offset granularity bucket,
// resume, and always end with a byte-perfect v2.
TEST(ResumableUpdater, SurvivesPowerFailureAtManyPoints) {
  const Fixture f = make_fixture();

  // Measure an uninterrupted run to size the injection sweep.
  FlashDevice probe = make_device(f);
  const ResumableUpdateResult clean =
      apply_update_resumable(probe, f.delta, channel_28k(), kJournal);
  const std::uint64_t total_writes = probe.bytes_written();
  ASSERT_GT(total_writes, 0u);
  (void)clean;

  for (int i = 1; i <= 24; ++i) {
    const std::uint64_t crash_at = total_writes * i / 25;
    FlashDevice dev = make_device(f);
    dev.inject_power_failure_after(crash_at);
    bool crashed = false;
    try {
      apply_update_resumable(dev, f.delta, channel_28k(), kJournal);
    } catch (const FlashDevice::PowerFailure&) {
      crashed = true;
    }
    if (!crashed) {
      // Injection landed after the last write; the run completed.
      expect_updated(dev, f);
      continue;
    }
    // "Reboot" and resume.
    dev.clear_power_failure();
    const ResumableUpdateResult r =
        apply_update_resumable(dev, f.delta, channel_28k(), kJournal);
    EXPECT_TRUE(r.resumed) << "crash point " << crash_at;
    EXPECT_TRUE(r.update.crc_verified) << "crash point " << crash_at;
    expect_updated(dev, f);
  }
}

TEST(ResumableUpdater, SurvivesRepeatedCrashesInOneUpdate) {
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f);

  // Crash every ~20 KiB of writes until the update finally completes.
  int crashes = 0;
  for (;;) {
    dev.inject_power_failure_after(20 << 10);
    try {
      const ResumableUpdateResult r =
          apply_update_resumable(dev, f.delta, channel_28k(), kJournal);
      EXPECT_TRUE(r.update.crc_verified);
      break;
    } catch (const FlashDevice::PowerFailure&) {
      ++crashes;
      ASSERT_LT(crashes, 100) << "update not making progress";
    }
  }
  dev.clear_power_failure();
  EXPECT_GT(crashes, 1);
  expect_updated(dev, f);
}

TEST(ResumableUpdater, JournalRegionValidation) {
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f);
  // Overlapping the image area.
  EXPECT_THROW(apply_update_resumable(dev, f.delta, channel_28k(),
                                      JournalRegion{0, kJournalSize}),
               DeviceError);
  // Past the end of storage.
  EXPECT_THROW(
      apply_update_resumable(dev, f.delta, channel_28k(),
                             JournalRegion{kStorage - 16, kJournalSize}),
      DeviceError);
  // Too small for two slots.
  EXPECT_THROW(apply_update_resumable(dev, f.delta, channel_28k(),
                                      JournalRegion{kImageArea, 64}),
               DeviceError);
}

TEST(ResumableUpdater, RejectsNonInplaceDelta) {
  const Fixture f = make_fixture();
  const Bytes plain = Pipeline({.format = kPaperExplicit}).build_delta(f.v1, f.v2).delta;
  if (deserialize_delta(plain).in_place) {
    GTEST_SKIP() << "delta happened to be conflict-free";
  }
  FlashDevice dev = make_device(f);
  EXPECT_THROW(
      apply_update_resumable(dev, plain, channel_28k(), kJournal),
      ValidationError);
}

TEST(ResumableUpdater, StaleJournalFromOtherDeltaIsIgnored) {
  const Fixture f = make_fixture(31);
  const Fixture other = make_fixture(77);
  FlashDevice dev = make_device(f);

  // Crash mid-way through updating with f's delta...
  dev.inject_power_failure_after(10 << 10);
  EXPECT_THROW(apply_update_resumable(dev, f.delta, channel_28k(), kJournal),
               FlashDevice::PowerFailure);
  dev.clear_power_failure();

  // ...then try the OTHER delta: its checksum does not match the journal,
  // so no resume happens (and the update fails CRC because the image is
  // half-written — exactly the protection we want).
  bool resumed = true;
  try {
    const ResumableUpdateResult r =
        apply_update_resumable(dev, other.delta, channel_28k(), kJournal);
    resumed = r.resumed;
  } catch (const Error&) {
    resumed = false;  // CRC failure is acceptable here
  }
  EXPECT_FALSE(resumed);
}

TEST(ResumableUpdater, PowerFailureDuringJournalWriteIsRecoverable) {
  const Fixture f = make_fixture();

  // Find the byte offset of the first journal write by instrumenting a
  // clean run: journal writes target the journal region.
  FlashDevice dev = make_device(f);
  // Crash after very few bytes — almost certainly inside the first
  // journal record or first command.
  dev.inject_power_failure_after(16);
  EXPECT_THROW(apply_update_resumable(dev, f.delta, channel_28k(), kJournal),
               FlashDevice::PowerFailure);
  dev.clear_power_failure();
  const ResumableUpdateResult r =
      apply_update_resumable(dev, f.delta, channel_28k(), kJournal);
  EXPECT_TRUE(r.update.crc_verified);
  expect_updated(dev, f);
}

TEST(ResumableUpdater, FixtureActuallyExercisesSelfOverlap) {
  // Guard the fixture: the crash sweep above is only meaningful if the
  // delta contains self-overlapping copies (the non-idempotent case).
  const Fixture f = make_fixture();
  const DeltaFile file = deserialize_delta(f.delta);
  bool self_overlap = false;
  for (const CopyCommand& c : file.script.copies()) {
    self_overlap |= c.self_overlaps();
  }
  EXPECT_TRUE(self_overlap);
}

}  // namespace
}  // namespace ipd
