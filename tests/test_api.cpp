// Facade-level tests: the README's advertised three-line flow must work.
#include "ipdelta.hpp"

#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    ref_ = generate_file(rng, 30000, FileProfile::kText);
    ver_ = mutate(ref_, rng, 15);
  }
  Bytes ref_;
  Bytes ver_;
};

TEST_F(ApiTest, BuildAndApplyPlainDelta) {
  const Bytes delta = Pipeline().build_delta(ref_, ver_).delta;
  EXPECT_LT(delta.size(), ver_.size());
  EXPECT_TRUE(test::bytes_equal(ver_, apply_delta(delta, ref_)));
}

TEST_F(ApiTest, BuildAndApplyInplaceDelta) {
  const BuildResult built = Pipeline().build_inplace(ref_, ver_);
  EXPECT_LT(built.delta.size(), ver_.size());

  Bytes buffer = ref_;
  buffer.resize(std::max(ref_.size(), ver_.size()));
  const length_t n = apply_delta_inplace(built.delta, buffer);
  EXPECT_EQ(n, ver_.size());
  EXPECT_TRUE(test::bytes_equal(ver_, ByteView(buffer).first(n)));
}

TEST_F(ApiTest, InplaceDeltaIsFlagged) {
  const Bytes delta = Pipeline().build_inplace(ref_, ver_).delta;
  EXPECT_TRUE(deserialize_delta(delta).in_place);
}

TEST_F(ApiTest, AllDifferAndPolicyCombinations) {
  for (const DifferKind differ :
       {DifferKind::kGreedy, DifferKind::kOnePass}) {
    for (const BreakPolicy policy :
         {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin}) {
      PipelineOptions options;
      options.differ = differ;
      options.convert.policy = policy;
      const Bytes delta = Pipeline(options).build_inplace(ref_, ver_).delta;
      Bytes buffer = ref_;
      buffer.resize(std::max(ref_.size(), ver_.size()));
      const length_t n = apply_delta_inplace(delta, buffer);
      EXPECT_TRUE(test::bytes_equal(ver_, ByteView(buffer).first(n)))
          << differ_name(differ) << "/" << policy_name(policy);
    }
  }
}

TEST_F(ApiTest, VarintFormatWorksEndToEnd) {
  PipelineOptions options;
  options.format = kVarintExplicit;
  const Bytes delta = Pipeline(options).build_inplace(ref_, ver_).delta;
  Bytes buffer = ref_;
  buffer.resize(std::max(ref_.size(), ver_.size()));
  const length_t n = apply_delta_inplace(delta, buffer);
  EXPECT_TRUE(test::bytes_equal(ver_, ByteView(buffer).first(n)));
}

TEST_F(ApiTest, SequentialFormatIsSmallest) {
  // Table 1 ordering: no-write-offsets <= write-offsets <= in-place.
  const std::size_t no_offsets =
      Pipeline({.format = kPaperSequential}).build_delta(ref_, ver_)
          .delta.size();
  const std::size_t offsets =
      Pipeline({.format = kPaperExplicit}).build_delta(ref_, ver_)
          .delta.size();
  const std::size_t inplace =
      Pipeline().build_inplace(ref_, ver_).delta.size();
  EXPECT_LE(no_offsets, offsets);
  EXPECT_LE(offsets, inplace + 8);  // conversion may add nothing (no cycles)
}

TEST(Api, EmptyToEmpty) {
  const Bytes delta = Pipeline().build_inplace({}, {}).delta;
  Bytes buffer;
  EXPECT_EQ(apply_delta_inplace(delta, buffer), 0u);
}

TEST(Api, EmptyReferenceToContent) {
  const Bytes ver = test::random_bytes(5, 5000);
  const Bytes delta = Pipeline().build_inplace({}, ver).delta;
  Bytes buffer(ver.size());
  const length_t n = apply_delta_inplace(delta, buffer);
  EXPECT_TRUE(test::bytes_equal(ver, ByteView(buffer).first(n)));
}

TEST(Api, ContentToEmpty) {
  const Bytes ref = test::random_bytes(6, 5000);
  const Bytes delta = Pipeline().build_inplace(ref, {}).delta;
  Bytes buffer = ref;
  EXPECT_EQ(apply_delta_inplace(delta, buffer), 0u);
}

TEST(Api, ReportSurfacesConversionStats) {
  // Force cycles with a block-swapped version.
  const Bytes ref = test::random_bytes(7, 20000);
  Bytes ver(ref.begin() + 10000, ref.end());
  ver.insert(ver.end(), ref.begin(), ref.begin() + 10000);

  const BuildResult built = Pipeline().build_inplace(ref, ver);
  EXPECT_GT(built.report.copies_in, 0u);
  Bytes buffer = ref;
  const length_t n = apply_delta_inplace(built.delta, buffer);
  EXPECT_TRUE(test::bytes_equal(ver, ByteView(buffer).first(n)));
}

}  // namespace
}  // namespace ipd
