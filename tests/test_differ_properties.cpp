// Property sweep over both differencing algorithms: for every generated
// (reference, version) pair, the script must validate against the §3
// model and reconstruct the version exactly — invariant 1 of DESIGN.md.
#include <gtest/gtest.h>

#include <tuple>

#include "apply/apply.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "delta/differ.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

struct PropertyCase {
  DifferKind differ;
  FileProfile profile;
  std::size_t base_size;
  std::size_t edits;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& p = info.param;
  std::string name = std::string(differ_name(p.differ)) + "_" +
                     profile_name(p.profile) + "_" +
                     std::to_string(p.base_size) + "b_" +
                     std::to_string(p.edits) + "edits_s" +
                     std::to_string(p.seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class DifferProperty : public ::testing::TestWithParam<PropertyCase> {};

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  for (const DifferKind differ :
       {DifferKind::kGreedy, DifferKind::kOnePass,
        DifferKind::kSuffixGreedy, DifferKind::kBlockAligned}) {
    for (const FileProfile profile :
         {FileProfile::kText, FileProfile::kBinary,
          FileProfile::kRecords}) {
      // The exact-greedy differ is quadratic-era machinery: cap its sweep
      // so the suite stays fast.
      const std::size_t max_size =
          differ == DifferKind::kSuffixGreedy ? 4096ul : 65536ul;
      for (const std::size_t size : {0ul, 15ul, 256ul, 4096ul, 65536ul}) {
        if (size > max_size) continue;
        for (const std::size_t edits : {0ul, 1ul, 8ul, 64ul}) {
          cases.push_back({differ, profile, size, edits,
                           size * 31 + edits * 7 + 1});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferProperty,
                         ::testing::ValuesIn(make_cases()), case_name);

TEST_P(DifferProperty, ValidatesAndRoundTrips) {
  const PropertyCase& p = GetParam();
  Rng rng(p.seed);
  const Bytes ref = generate_file(rng, p.base_size, p.profile);
  const Bytes ver = mutate(ref, rng, p.edits);

  const Script script = diff_bytes(p.differ, ref, ver);
  ASSERT_NO_THROW(script.validate(ref.size(), ver.size()));
  EXPECT_TRUE(script.in_write_order());
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(script, ref)));
}

TEST_P(DifferProperty, DeterministicForSameInput) {
  const PropertyCase& p = GetParam();
  Rng rng(p.seed);
  const Bytes ref = generate_file(rng, p.base_size, p.profile);
  const Bytes ver = mutate(ref, rng, p.edits);
  EXPECT_EQ(diff_bytes(p.differ, ref, ver), diff_bytes(p.differ, ref, ver));
}

// Self-diff compresses to (almost) nothing for every differ and size.
class SelfDiff
    : public ::testing::TestWithParam<std::tuple<DifferKind, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelfDiff,
    ::testing::Combine(::testing::Values(DifferKind::kGreedy,
                                         DifferKind::kOnePass,
                                         DifferKind::kSuffixGreedy),
                       ::testing::Values(16, 1000, 100000)));

TEST_P(SelfDiff, SelfDiffIsAllCopy) {
  const auto [differ, size] = GetParam();
  const Bytes file = test::random_bytes(size, size);
  const Script script = diff_bytes(differ, file, file);
  EXPECT_TRUE(test::bytes_equal(file, apply_script(script, file)));
  EXPECT_EQ(script.summary().added_bytes, 0u);
}

TEST(ScriptBuilder, LiteralsAndCopiesInterleave) {
  ScriptBuilder b;
  b.literals(to_bytes("ab"));
  b.copy(100, 5);
  b.literal('z');
  EXPECT_EQ(b.pending_literals(), 1u);
  EXPECT_EQ(b.write_offset(), 8u);
  const Script s = b.finish();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(command_to(s.commands()[0]), 0u);
  EXPECT_EQ(command_to(s.commands()[1]), 2u);
  EXPECT_EQ(command_to(s.commands()[2]), 7u);
  EXPECT_TRUE(s.in_write_order());
}

TEST(ScriptBuilder, RetractShrinksPendingAdd) {
  ScriptBuilder b;
  b.literals(to_bytes("abcdef"));
  b.retract(4);
  b.copy(0, 10);  // backward-extended match re-claims 4 bytes
  const Script s = b.finish();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(std::get<AddCommand>(s.commands()[0]).data, to_bytes("ab"));
  EXPECT_EQ(std::get<CopyCommand>(s.commands()[1]).to, 2u);
}

TEST(ScriptBuilder, FinishWithOnlyLiterals) {
  ScriptBuilder b;
  b.literals(to_bytes("xyz"));
  const Script s = b.finish();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.summary().added_bytes, 3u);
}

TEST(ScriptBuilder, EmptyFinish) {
  ScriptBuilder b;
  EXPECT_TRUE(b.finish().empty());
}

TEST(DifferFactory, MakesAllKinds) {
  EXPECT_STREQ(make_differ(DifferKind::kGreedy)->name(), "greedy");
  EXPECT_STREQ(make_differ(DifferKind::kOnePass)->name(), "one-pass");
  EXPECT_STREQ(make_differ(DifferKind::kSuffixGreedy)->name(),
               "suffix-greedy");
  EXPECT_STREQ(make_differ(DifferKind::kBlockAligned)->name(),
               "block-aligned");
  EXPECT_STREQ(differ_name(DifferKind::kGreedy), "greedy");
  EXPECT_STREQ(differ_name(DifferKind::kOnePass), "one-pass");
  EXPECT_STREQ(differ_name(DifferKind::kSuffixGreedy), "suffix-greedy");
  EXPECT_STREQ(differ_name(DifferKind::kBlockAligned), "block-aligned");
}

TEST(DifferFactory, BlockSizeOptionReachesBlockDiffer) {
  DifferOptions options;
  options.block_size = 64;
  const Bytes ref = test::random_bytes(1, 640);
  const Script s = make_differ(DifferKind::kBlockAligned, options)
                       ->diff(ref, ref);
  EXPECT_EQ(s.summary().copy_count, 10u);  // 640 / 64 aligned copies
}

}  // namespace
}  // namespace ipd
