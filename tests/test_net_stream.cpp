// Satellite regression: the wire framing and the delta container must
// fail loudly, never half-apply. A deframed DELTA_DATA stream fed to the
// StreamingInplaceApplier byte-at-a-time reconstructs exactly; the raw
// framed byte stream (headers and CRC trailers still attached) is
// rejected; a truncated final frame is caught by FrameReader::finish()
// before the applier is ever declared done.
#include <gtest/gtest.h>

#include "apply/stream_applier.hpp"
#include "ipdelta.hpp"
#include "net/frame.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

struct Fixture {
  Bytes ref;
  Bytes ver;
  Bytes delta;
};

Fixture make_fixture(std::uint64_t seed = 21) {
  Fixture f;
  f.ref = test::random_bytes(seed, 20000);
  f.ver = f.ref;
  for (int i = 0; i < 3000; ++i) std::swap(f.ver[i], f.ver[i + 10000]);
  f.ver[4000] ^= 0xA5;
  f.delta = Pipeline().build_inplace(f.ref, f.ver).delta;
  return f;
}

/// Frame the delta the way DeltaServer does: a run of DELTA_DATA frames.
Bytes frame_stream(ByteView delta, std::size_t chunk) {
  Bytes wire;
  for (std::size_t pos = 0; pos < delta.size(); pos += chunk) {
    const Bytes frame = encode_frame(
        FrameType::kDeltaData, delta.subspan(pos, std::min(chunk, delta.size() - pos)));
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  return wire;
}

TEST(NetStream, DeframedPayloadsReconstructByteAtATime) {
  const Fixture f = make_fixture();
  const Bytes wire = frame_stream(f.delta, 513);

  Bytes buffer = f.ref;
  buffer.resize(std::max(f.ref.size(), f.ver.size()));
  StreamingInplaceApplier applier(buffer);
  FrameReader reader;
  // Byte-at-a-time off the wire: the worst-case chunking a network can
  // produce must still deframe and apply cleanly.
  for (const std::uint8_t byte : wire) {
    reader.feed(ByteView(&byte, 1));
    while (const std::optional<Frame> frame = reader.next()) {
      ASSERT_EQ(frame->type, FrameType::kDeltaData);
      applier.feed(frame->payload);
    }
  }
  reader.finish();
  ASSERT_TRUE(applier.finished());
  buffer.resize(f.ver.size());
  EXPECT_TRUE(test::bytes_equal(f.ver, buffer));
}

TEST(NetStream, RawFramedStreamIsRejectedByTheApplier) {
  // Feeding the framed bytes straight into the applier (i.e. forgetting
  // to deframe) must throw, not quietly corrupt the image.
  const Fixture f = make_fixture();
  const Bytes wire = frame_stream(f.delta, 4096);
  Bytes buffer = f.ref;
  buffer.resize(std::max(f.ref.size(), f.ver.size()));
  StreamingInplaceApplier applier(buffer);
  EXPECT_THROW(
      {
        applier.feed(wire);
        if (!applier.finished()) {
          throw FormatError("stream ended before the container finished");
        }
      },
      Error);
  EXPECT_FALSE(applier.finished());
}

TEST(NetStream, TruncatedFinalFrameThrowsAndApplierIsNotFinished) {
  const Fixture f = make_fixture();
  const Bytes wire = frame_stream(f.delta, 1024);

  Bytes buffer = f.ref;
  buffer.resize(std::max(f.ref.size(), f.ver.size()));
  StreamingInplaceApplier applier(buffer);
  FrameReader reader;
  // Drop the connection 5 bytes short of the final frame's CRC trailer.
  reader.feed(ByteView(wire).first(wire.size() - 5));
  while (const std::optional<Frame> frame = reader.next()) {
    applier.feed(frame->payload);
  }
  EXPECT_THROW(reader.finish(), FormatError);
  // The partial frame's payload never reached the applier, so the delta
  // container is incomplete — no silent half-apply.
  EXPECT_FALSE(applier.finished());
}

TEST(NetStream, FlippedBitInsideAChunkNeverReachesTheApplier) {
  const Fixture f = make_fixture();
  Bytes wire = frame_stream(f.delta, 2048);
  wire[wire.size() / 2] ^= 0x04;

  Bytes buffer = f.ref;
  buffer.resize(std::max(f.ref.size(), f.ver.size()));
  StreamingInplaceApplier applier(buffer);
  FrameReader reader;
  reader.feed(wire);
  EXPECT_THROW(
      {
        while (const std::optional<Frame> frame = reader.next()) {
          applier.feed(frame->payload);
        }
      },
      FormatError);
  EXPECT_FALSE(applier.finished());
}

}  // namespace
}  // namespace ipd
