// Corruption matrix for the on-disk artifact store: flip bits and
// truncate the manifest and segment files at systematic offsets, then
// assert the ONLY observable outcomes are (a) recovery to a durable
// prefix whose every body is byte-identical to the original history, or
// (b) a typed StoreError refusal. Never a crash, never wrong bytes,
// never a foreign exception type.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/io.hpp"
#include "store/artifact_store.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

class StoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = std::filesystem::temp_directory_path() /
            ("ipd_corrupt_" + std::to_string(::getpid()) + "_" +
             info->name());
    std::filesystem::remove_all(root_);
    pristine_ = root_ / "pristine";

    // A small store: 1 baseline + 4 chain deltas over 4 KiB bodies.
    ArtifactStore::init(pristine_);
    {
      ArtifactStore store(pristine_);
      Bytes body = random_bytes(11, 4 << 10);
      history_.push_back(body);
      store.publish(body);
      for (int i = 1; i < 5; ++i) {
        Rng rng(100 + i);
        for (int edit = 0; edit < 4; ++edit) {
          const std::size_t at = rng.below(body.size() - 32);
          for (std::size_t b = 0; b < 32; ++b) {
            body[at + b] = static_cast<std::uint8_t>(rng.next());
          }
        }
        history_.push_back(body);
        store.publish(body);
      }
      // Reconstruction must come from the chain, not the cache files —
      // leaving cached bodies around would let a corrupted chain hide
      // behind a clean cache.
      std::filesystem::remove_all(pristine_ / "cache");
    }
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// Fresh mutable copy of the pristine store.
  std::filesystem::path clone(const std::string& tag) {
    const std::filesystem::path dir = root_ / tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    for (const auto& entry :
         std::filesystem::directory_iterator(pristine_)) {
      if (entry.is_regular_file()) {
        std::filesystem::copy_file(entry.path(),
                                   dir / entry.path().filename());
      }
    }
    return dir;
  }

  /// Open `dir` with deep verification. Returns the number of releases
  /// recovered, or nullopt when the store (correctly) refused with
  /// StoreError. Any other outcome fails the test. Every recovered
  /// release must match the original history byte for byte.
  std::optional<std::size_t> open_and_audit(
      const std::filesystem::path& dir, const std::string& what) {
    StoreOptions options;
    options.verify_on_open = true;
    try {
      ArtifactStore store(dir, options);
      const std::size_t n = store.release_count();
      EXPECT_LE(n, history_.size()) << what;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(*store.body(static_cast<ReleaseId>(i)), history_[i])
            << what << " release " << i;
      }
      return n;
    } catch (const StoreError&) {
      return std::nullopt;  // typed refusal: acceptable
    } catch (const std::exception& e) {
      ADD_FAILURE() << what << ": foreign exception: " << e.what();
      return std::nullopt;
    }
  }

  std::filesystem::path root_;
  std::filesystem::path pristine_;
  std::vector<Bytes> history_;
};

void flip_bit(const std::filesystem::path& file, std::uint64_t offset) {
  Bytes data = read_file(file);
  ASSERT_LT(offset, data.size());
  data[offset] ^= static_cast<std::uint8_t>(1u << (offset % 8));
  write_file(file, data);
}

TEST_F(StoreCorruptionTest, ManifestBitFlips) {
  const std::uint64_t size =
      std::filesystem::file_size(pristine_ / "MANIFEST");
  // Every offset: the manifest is small and every byte of it is load-
  // bearing (file header, record headers, varint payloads).
  for (std::uint64_t offset = 0; offset < size; ++offset) {
    const std::string tag = "manifest+" + std::to_string(offset);
    const auto dir = clone("work");
    flip_bit(dir / "MANIFEST", offset);
    open_and_audit(dir, tag);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(StoreCorruptionTest, SegmentBitFlips) {
  std::filesystem::path segment;
  for (const auto& entry : std::filesystem::directory_iterator(pristine_)) {
    if (entry.path().filename().string().rfind("segments-", 0) == 0) {
      segment = entry.path();
    }
  }
  ASSERT_FALSE(segment.empty());
  const std::uint64_t size = std::filesystem::file_size(segment);
  // Prime-strided offsets cover headers and payloads without covering
  // every byte of a multi-KiB file.
  for (std::uint64_t offset = 0; offset < size; offset += 97) {
    const std::string tag = "segment+" + std::to_string(offset);
    const auto dir = clone("work");
    flip_bit(dir / segment.filename(), offset);
    open_and_audit(dir, tag);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(StoreCorruptionTest, ManifestTruncationRecoversDurablePrefix) {
  const std::uint64_t size =
      std::filesystem::file_size(pristine_ / "MANIFEST");
  std::size_t full = 0;
  {
    const auto dir = clone("work");
    const auto n = open_and_audit(dir, "untouched");
    ASSERT_TRUE(n.has_value());
    full = *n;
  }
  std::optional<std::size_t> prev;
  for (std::uint64_t keep = size; keep > 0;
       keep = keep < 13 ? 0 : keep - 13) {
    const std::string tag = "manifest-trunc@" + std::to_string(keep);
    const auto dir = clone("work");
    std::filesystem::resize_file(dir / "MANIFEST", keep);
    const auto n = open_and_audit(dir, tag);
    if (n) {
      EXPECT_LE(*n, full) << tag;
      // Shorter manifests can only yield shorter (or equal) histories.
      if (prev) {
        EXPECT_LE(*n, *prev) << tag;
      }
      prev = n;
    }
  }
}

TEST_F(StoreCorruptionTest, SegmentTruncationNeverServesWrongBytes) {
  std::filesystem::path segment;
  for (const auto& entry : std::filesystem::directory_iterator(pristine_)) {
    if (entry.path().filename().string().rfind("segments-", 0) == 0) {
      segment = entry.path();
    }
  }
  ASSERT_FALSE(segment.empty());
  const std::uint64_t size = std::filesystem::file_size(segment);
  for (std::uint64_t keep = 0; keep < size; keep += 211) {
    const std::string tag = "segment-trunc@" + std::to_string(keep);
    const auto dir = clone("work");
    std::filesystem::resize_file(dir / segment.filename(), keep);
    // The manifest references extents past `keep`: the store must refuse
    // (a real crash cannot produce this state — segment syncs first).
    const auto n = open_and_audit(dir, tag);
    if (n) {
      EXPECT_EQ(*n, history_.size()) << tag;
    }
  }
}

TEST_F(StoreCorruptionTest, MissingSegmentIsATypedRefusal) {
  const auto dir = clone("work");
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("segments-", 0) == 0) {
      std::filesystem::remove(entry.path());
    }
  }
  EXPECT_THROW(ArtifactStore store(dir), StoreError);
}

TEST_F(StoreCorruptionTest, StrayGcLeftoversAreCleaned) {
  const auto dir = clone("work");
  // A crashed gc leaves MANIFEST.tmp and a next-epoch segment; neither
  // must confuse (or survive) the next open.
  write_file(dir / "MANIFEST.tmp", random_bytes(1, 64));
  write_file(dir / "segments-000099.dat", random_bytes(2, 64));
  const auto n = open_and_audit(dir, "gc leftovers");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, history_.size());
  EXPECT_FALSE(std::filesystem::exists(dir / "MANIFEST.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir / "segments-000099.dat"));
}

TEST_F(StoreCorruptionTest, CorruptCacheFileIsDroppedNotServed) {
  const auto dir = clone("work");
  std::size_t releases = 0;
  {
    StoreOptions options;
    ArtifactStore store(dir, options);
    releases = store.release_count();
    // Warm the disk cache with every body, then corrupt the files.
    for (std::size_t i = 0; i < releases; ++i) {
      (void)store.body(static_cast<ReleaseId>(i));
    }
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(dir / "cache")) {
    Bytes data = read_file(entry.path());
    if (!data.empty()) data[data.size() / 2] ^= 0x40;
    write_file(entry.path(), data);
  }
  ArtifactStore store(dir);
  for (std::size_t i = 0; i < releases; ++i) {
    EXPECT_EQ(*store.body(static_cast<ReleaseId>(i)), history_[i])
        << "release " << i << " served from a corrupt cache file";
  }
}

}  // namespace
}  // namespace ipd
