// kill -9 matrix for the journaled streaming apply: cut power at every
// journal-record and command boundary (and mid-record offsets), reboot,
// resume via the journal, and require byte-identical recovery — the
// acceptance property for the power-loss-safe device path.
#include "device/stream_updater.hpp"

#include <gtest/gtest.h>

#include "core/checksum.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

constexpr std::size_t kImageArea = 64 << 10;
constexpr std::size_t kJournalSize = 16 << 10;
constexpr std::size_t kStorage = kImageArea + kJournalSize;
constexpr JournalRegion kJournal{kImageArea, kJournalSize};
constexpr std::size_t kChunk = 997;  // deliberately not a divisor of much

struct Fixture {
  Bytes v1;
  Bytes v2;
  Bytes delta;
  StreamArtifactInfo info;
};

Fixture make_fixture(std::uint64_t seed = 31) {
  Fixture f;
  Rng rng(seed);
  f.v1 = generate_file(rng, 48 << 10, FileProfile::kBinary);
  f.v2 = f.v1;
  // Guarantee self-overlapping copies: shift a large region forward.
  std::copy(f.v2.begin() + 1000, f.v2.begin() + 30000, f.v2.begin() + 1500);
  f.v2 = mutate(f.v2, rng, 10);
  f.delta = Pipeline().build_inplace(f.v1, f.v2).delta;
  f.info.artifact_crc = crc32c(f.delta);
  f.info.artifact_size = f.delta.size();
  f.info.full_image = false;
  f.info.meta_from = 1;
  f.info.meta_hop = 2;
  f.info.meta_target = 2;
  return f;
}

FlashDevice make_device(const Bytes& image) {
  FlashDevice dev(kStorage, 512, (96 << 10));
  dev.load_image(image);
  return dev;
}

StreamUpdaterOptions tight_options() {
  StreamUpdaterOptions opts;
  opts.checkpoint_commands = 2;  // many boundaries for the matrix
  opts.window_bytes = 1024;
  return opts;
}

/// Feed `artifact` from the updater's current position to the end.
void feed_rest(StreamingDeviceUpdater& u, ByteView artifact) {
  while (u.next_offset() < artifact.size()) {
    const std::size_t pos = static_cast<std::size_t>(u.next_offset());
    const std::size_t n = std::min(kChunk, artifact.size() - pos);
    u.feed(artifact.subspan(pos, n));
  }
}

void expect_image(const FlashDevice& dev, const Bytes& expected) {
  EXPECT_TRUE(test::bytes_equal(
      expected, ByteView(dev.inspect()).first(expected.size())));
}

/// One cut-at-`cut`-bytes-written run: apply until the power fails,
/// reboot, probe, resume, and verify byte-identical reconstruction.
void run_cut(const Fixture& f, const StreamUpdaterOptions& opts,
             std::uint64_t cut) {
  SCOPED_TRACE("cut at " + std::to_string(cut) + " bytes written");
  FlashDevice dev = make_device(f.v1);
  dev.inject_power_failure_after(cut);
  bool crashed = false;
  {
    StreamingDeviceUpdater u(dev, kJournal, f.info, opts);
    try {
      feed_rest(u, f.delta);
      EXPECT_TRUE(u.finished());
    } catch (const FlashDevice::PowerFailure&) {
      crashed = true;
    }
  }
  if (crashed) {
    dev.clear_power_failure();
    // Reboot: the journal alone tells the device what it was doing.
    const auto probe = StreamingDeviceUpdater::probe(dev, kJournal, opts);
    ASSERT_TRUE(probe.has_value());
    EXPECT_EQ(probe->info.artifact_crc, f.info.artifact_crc);
    EXPECT_EQ(probe->info.meta_hop, f.info.meta_hop);
    StreamingDeviceUpdater u(dev, kJournal, probe->info, opts);
    EXPECT_TRUE(u.resumed());
    if (!u.finished()) {
      EXPECT_EQ(u.next_offset(), probe->resume_offset);
      feed_rest(u, f.delta);
    }
    EXPECT_TRUE(u.finished());
  }
  expect_image(dev, f.v2);
}

TEST(StreamUpdater, CleanRunReconstructsAndJournals) {
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f.v1);
  StreamingDeviceUpdater u(dev, kJournal, f.info, tight_options());
  feed_rest(u, f.delta);
  ASSERT_TRUE(u.finished());
  EXPECT_FALSE(u.resumed());
  EXPECT_GT(u.journal_records(), 2u);
  EXPECT_GT(u.commands_applied(), 0u);
  expect_image(dev, f.v2);
  // The done record is durable: a probe (and a fresh updater) sees it.
  const auto probe = StreamingDeviceUpdater::probe(dev, kJournal,
                                                   tight_options());
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(probe->done);
  EXPECT_EQ(probe->info.meta_hop, f.info.meta_hop);
  EXPECT_EQ(probe->resume_offset, f.delta.size());
}

TEST(StreamUpdater, FixtureActuallyExercisesSelfOverlap) {
  const Fixture f = make_fixture();
  const DeltaFile file = deserialize_delta(f.delta);
  bool self_overlap = false;
  for (const CopyCommand& c : file.script.copies()) {
    self_overlap |= c.self_overlaps();
  }
  EXPECT_TRUE(self_overlap);
}

// The headline matrix: enumerate the bytes-written high-water mark at
// every journal record append and every applied command from a clean
// byte-at-a-time run, then cut exactly there, one byte after, and
// mid-journal-record (+17), requiring byte-identical recovery each time.
TEST(StreamUpdater, PowerCutMatrixAtEveryBoundary) {
  const Fixture f = make_fixture();
  const StreamUpdaterOptions opts = tight_options();

  std::vector<std::uint64_t> boundaries;
  std::uint64_t total_writes = 0;
  {
    FlashDevice dev = make_device(f.v1);
    StreamingDeviceUpdater u(dev, kJournal, f.info, opts);
    std::uint64_t records = 0;
    std::size_t cmds = 0;
    for (std::size_t pos = 0; pos < f.delta.size(); ++pos) {
      u.feed(ByteView(f.delta).subspan(pos, 1));
      if (u.journal_records() != records || u.commands_applied() != cmds) {
        records = u.journal_records();
        cmds = u.commands_applied();
        boundaries.push_back(dev.bytes_written());
      }
    }
    ASSERT_TRUE(u.finished());
    total_writes = dev.bytes_written();
    expect_image(dev, f.v2);
  }
  ASSERT_GT(boundaries.size(), 10u);

  std::size_t runs = 0;
  for (const std::uint64_t b : boundaries) {
    for (const std::uint64_t off : {std::uint64_t{0}, std::uint64_t{1},
                                    std::uint64_t{17}}) {
      if (b + off >= total_writes) continue;
      run_cut(f, opts, b + off);
      ++runs;
    }
  }
  EXPECT_GT(runs, 30u);
}

TEST(StreamUpdater, SurvivesRepeatedCutsUntilDone) {
  const Fixture f = make_fixture();
  const StreamUpdaterOptions opts = tight_options();
  FlashDevice dev = make_device(f.v1);
  int reboots = 0;
  for (;;) {
    dev.inject_power_failure_after(8 << 10);
    const auto probe = StreamingDeviceUpdater::probe(dev, kJournal, opts);
    if (probe && probe->done) break;
    try {
      StreamingDeviceUpdater u(dev, kJournal, f.info, opts);
      if (u.finished()) break;
      feed_rest(u, f.delta);
      EXPECT_TRUE(u.finished());
      break;
    } catch (const FlashDevice::PowerFailure&) {
      dev.clear_power_failure();
      ++reboots;
      ASSERT_LT(reboots, 200) << "update not making progress";
    }
  }
  dev.clear_power_failure();
  EXPECT_GT(reboots, 1);
  expect_image(dev, f.v2);
}

// Sparse sweep over a seeded corpus: different content profiles and
// mutation shapes, 24 cut points each.
TEST(StreamUpdater, PowerCutSweepOverSeededCorpus) {
  for (const std::uint64_t seed : {7ull, 77ull, 123ull}) {
    const Fixture f = make_fixture(seed);
    const StreamUpdaterOptions opts = tight_options();
    std::uint64_t total_writes = 0;
    {
      FlashDevice dev = make_device(f.v1);
      StreamingDeviceUpdater u(dev, kJournal, f.info, opts);
      feed_rest(u, f.delta);
      ASSERT_TRUE(u.finished());
      total_writes = dev.bytes_written();
    }
    for (int i = 1; i <= 24; ++i) {
      run_cut(f, opts, total_writes * i / 25);
    }
  }
}

TEST(StreamUpdater, FullImageModeStreamsWithCheckpoints) {
  const Fixture f = make_fixture();
  StreamArtifactInfo info;
  info.artifact_crc = crc32c(f.v2);
  info.artifact_size = f.v2.size();
  info.full_image = true;
  info.meta_from = 0;
  info.meta_hop = 2;
  info.meta_target = 2;
  StreamUpdaterOptions opts;
  opts.full_image_checkpoint_bytes = 4096;

  // Clean run.
  {
    FlashDevice dev = make_device(f.v1);
    StreamingDeviceUpdater u(dev, kJournal, info, opts);
    feed_rest(u, f.v2);
    ASSERT_TRUE(u.finished());
    EXPECT_GT(u.journal_records(), 5u);
    expect_image(dev, f.v2);
  }
  // Cut sweep.
  std::uint64_t total_writes = 0;
  {
    FlashDevice dev = make_device(f.v1);
    StreamingDeviceUpdater u(dev, kJournal, info, opts);
    feed_rest(u, f.v2);
    total_writes = dev.bytes_written();
  }
  for (int i = 1; i <= 12; ++i) {
    const std::uint64_t cut = total_writes * i / 13;
    SCOPED_TRACE("full-image cut at " + std::to_string(cut));
    FlashDevice dev = make_device(f.v1);
    dev.inject_power_failure_after(cut);
    bool crashed = false;
    {
      StreamingDeviceUpdater u(dev, kJournal, info, opts);
      try {
        feed_rest(u, f.v2);
      } catch (const FlashDevice::PowerFailure&) {
        crashed = true;
      }
    }
    if (crashed) {
      dev.clear_power_failure();
      const auto probe = StreamingDeviceUpdater::probe(dev, kJournal, opts);
      ASSERT_TRUE(probe.has_value());
      EXPECT_TRUE(probe->info.full_image);
      StreamingDeviceUpdater u(dev, kJournal, probe->info, opts);
      EXPECT_TRUE(u.resumed());
      if (!u.finished()) feed_rest(u, f.v2);
      EXPECT_TRUE(u.finished());
    }
    expect_image(dev, f.v2);
  }
}

TEST(StreamUpdater, DoneRecordSurvivesNextArtifactsTornFirstRecord) {
  // Crash-window regression: hop N completes (done record), hop N+1
  // starts and its very first checkpoint is torn by a power cut. The
  // done record must still be recoverable — it is the device's only
  // memory that hop N landed.
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f.v1);
  {
    StreamingDeviceUpdater u(dev, kJournal, f.info, tight_options());
    feed_rest(u, f.delta);
    ASSERT_TRUE(u.finished());
  }
  // Next hop: delta from v2 to v3.
  Rng rng(99);
  Bytes v3 = mutate(f.v2, rng, 6);
  const Bytes delta2 = Pipeline().build_inplace(f.v2, v3).delta;
  StreamArtifactInfo info2;
  info2.artifact_crc = crc32c(delta2);
  info2.artifact_size = delta2.size();
  info2.meta_from = 2;
  info2.meta_hop = 3;
  info2.meta_target = 3;
  dev.inject_power_failure_after(64);  // tear the first checkpoint write
  bool crashed = false;
  try {
    StreamingDeviceUpdater u(dev, kJournal, info2, tight_options());
    feed_rest(u, delta2);
  } catch (const FlashDevice::PowerFailure&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  dev.clear_power_failure();
  const auto probe = StreamingDeviceUpdater::probe(dev, kJournal,
                                                   tight_options());
  ASSERT_TRUE(probe.has_value());
  if (probe->done) {
    // Fell back to hop N's done record: the client re-requests hop N+1.
    EXPECT_EQ(probe->info.meta_hop, f.info.meta_hop);
    EXPECT_EQ(probe->info.artifact_crc, f.info.artifact_crc);
  } else {
    // The first checkpoint landed before the cut: resume hop N+1.
    EXPECT_EQ(probe->info.artifact_crc, info2.artifact_crc);
  }
  // Either way the device converges on v3.
  StreamingDeviceUpdater u(dev, kJournal, info2, tight_options());
  if (!u.finished()) feed_rest(u, delta2);
  EXPECT_TRUE(u.finished());
  expect_image(dev, v3);
}

TEST(StreamUpdater, RejectsBadArtifactsBeforeFlashWrites) {
  const Fixture f = make_fixture();
  // Not in-place.
  {
    const Bytes plain = Pipeline({.format = kPaperExplicit}).build_delta(f.v1, f.v2).delta;
    if (!deserialize_delta(plain).in_place) {
      FlashDevice dev = make_device(f.v1);
      StreamArtifactInfo info;
      info.artifact_crc = crc32c(plain);
      info.artifact_size = plain.size();
      StreamingDeviceUpdater u(dev, kJournal, info, tight_options());
      const std::uint64_t before = dev.bytes_written();
      EXPECT_THROW(u.feed(plain), ValidationError);
      EXPECT_EQ(dev.bytes_written(), before) << "no write before the gate";
      EXPECT_THROW(u.feed(plain), ValidationError) << "poisoned";
    }
  }
  // Implicit write offsets cannot resume (running write cursor).
  {
    const Bytes payload = test::random_bytes(4, 16);
    DeltaFile file;
    file.format = kVarintSequential;
    file.in_place = true;  // a single add really is conflict-free
    file.reference_length = 16;
    file.version_length = 16;
    file.version_crc = crc32c(payload);
    file.script = test::script_of({test::A(0, payload)});
    const Bytes implicit = serialize_delta(file);
    FlashDevice dev = make_device(f.v1);
    StreamArtifactInfo info;
    info.artifact_crc = crc32c(implicit);
    info.artifact_size = implicit.size();
    StreamingDeviceUpdater u(dev, kJournal, info, tight_options());
    EXPECT_THROW(u.feed(implicit), ValidationError);
  }
  // Artifact size mismatch between network metadata and container.
  {
    FlashDevice dev = make_device(f.v1);
    StreamArtifactInfo info = f.info;
    info.artifact_size = f.delta.size() + 5;
    StreamingDeviceUpdater u(dev, kJournal, info, tight_options());
    EXPECT_THROW(u.feed(f.delta), FormatError);
  }
}

TEST(StreamUpdater, JournalRegionValidation) {
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f.v1);
  // Too small for two slots.
  EXPECT_THROW(StreamingDeviceUpdater(dev, JournalRegion{kImageArea, 64},
                                      f.info, tight_options()),
               DeviceError);
  // Past the end of storage.
  EXPECT_THROW(
      StreamingDeviceUpdater(dev, JournalRegion{kStorage - 16, kJournalSize},
                             f.info, tight_options()),
      DeviceError);
  // Overlapping the image area: caught once the header announces the
  // image extent, before any flash write.
  StreamingDeviceUpdater u(dev, JournalRegion{0, kJournalSize}, f.info,
                           tight_options());
  const std::uint64_t before = dev.bytes_written();
  EXPECT_THROW(u.feed(f.delta), DeviceError);
  EXPECT_EQ(dev.bytes_written(), before);
}

TEST(StreamUpdater, HeaderCapacityIsEnforced) {
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f.v1);
  StreamUpdaterOptions opts = tight_options();
  opts.header_capacity = 8;  // far too small for any real container
  StreamingDeviceUpdater u(dev, kJournal, f.info, opts);
  EXPECT_THROW(u.feed(f.delta), DeviceError);
}

TEST(StreamUpdater, ClearForgetsTheJournal) {
  const Fixture f = make_fixture();
  FlashDevice dev = make_device(f.v1);
  {
    StreamingDeviceUpdater u(dev, kJournal, f.info, tight_options());
    feed_rest(u, f.delta);
  }
  ASSERT_TRUE(
      StreamingDeviceUpdater::probe(dev, kJournal, tight_options()));
  StreamingDeviceUpdater::clear(dev, kJournal, tight_options());
  EXPECT_FALSE(
      StreamingDeviceUpdater::probe(dev, kJournal, tight_options()));
}

}  // namespace
}  // namespace ipd
