#include "inplace/exact_fvs.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/constructions.hpp"
#include "inplace/topo_sort.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

CrwiGraph graph_from(const Script& script, length_t version_length) {
  auto copies = script.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  return CrwiGraph::build(copies, version_length);
}

bool acyclic_after_removal(const CrwiGraph& g,
                           const std::vector<std::uint32_t>& removed) {
  std::vector<bool> pre(g.vertex_count(), false);
  for (const std::uint32_t v : removed) pre[v] = true;
  const std::vector<std::uint64_t> costs(g.vertex_count(), 1);
  const TopoSortResult r = topo_sort_breaking_cycles(
      g, BreakPolicy::kConstantTime, costs, pre);
  return r.cycles_found == 0;
}

TEST(ExactFvs, AcyclicGraphNeedsNothing) {
  const Fig3Instance inst = make_fig3_quadratic(4);
  const CrwiGraph g = graph_from(inst.script, 16);
  const std::vector<std::uint64_t> costs(g.vertex_count(), 1);
  const ExactFvsResult r = exact_min_fvs(g, costs);
  EXPECT_TRUE(r.removed.empty());
  EXPECT_EQ(r.cost, 0u);
  EXPECT_TRUE(r.optimal);
}

TEST(ExactFvs, SingleCycleRemovesCheapestVertex) {
  const AdversaryInstance inst =
      make_block_permutation(4, single_cycle_permutation(5));
  const CrwiGraph g = graph_from(inst.script, 20);
  const std::vector<std::uint64_t> costs = {9, 9, 2, 9, 9};
  const ExactFvsResult r = exact_min_fvs(g, costs);
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0], 2u);
  EXPECT_EQ(r.cost, 2u);
  EXPECT_TRUE(acyclic_after_removal(g, r.removed));
}

TEST(ExactFvs, TwoDisjointCyclesRemoveOneEach) {
  // Permutation with cycles (0 1 2) and (3 4).
  const std::vector<std::uint32_t> perm = {1, 2, 0, 4, 3};
  const AdversaryInstance inst = make_block_permutation(4, perm);
  const CrwiGraph g = graph_from(inst.script, 20);
  const std::vector<std::uint64_t> costs = {5, 1, 5, 7, 3};
  const ExactFvsResult r = exact_min_fvs(g, costs);
  ASSERT_EQ(r.removed.size(), 2u);
  EXPECT_EQ(r.cost, 1u + 3u);
  EXPECT_TRUE(std::find(r.removed.begin(), r.removed.end(), 1u) !=
              r.removed.end());
  EXPECT_TRUE(std::find(r.removed.begin(), r.removed.end(), 4u) !=
              r.removed.end());
  EXPECT_TRUE(acyclic_after_removal(g, r.removed));
}

TEST(ExactFvs, Fig2OptimumIsTheRoot) {
  // The paper's Figure 2 point: every root->leaf cycle shares the root,
  // so the optimum deletes the root alone, beating local-min's k leaves.
  const Fig2Instance inst = make_fig2_tree(4);  // 8 leaves
  const CrwiGraph g = graph_from(inst.script, inst.version.size());
  auto copies = inst.script.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  std::vector<std::uint64_t> costs;
  for (const auto& c : copies) costs.push_back(c.length);

  const ExactFvsResult r = exact_min_fvs(g, costs);
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0], 0u);  // the root is vertex 0 in write order
  EXPECT_EQ(r.cost, inst.root_copy_length);
  EXPECT_LT(r.cost, inst.leaf_count * inst.leaf_copy_length);
  EXPECT_TRUE(acyclic_after_removal(g, r.removed));
}

TEST(ExactFvs, NeverWorseThanHeuristicsOnRandomGraphs) {
  Rng rng(222);
  for (int trial = 0; trial < 10; ++trial) {
    const auto perm = random_permutation(rng, 12);
    const AdversaryInstance inst = make_block_permutation(4, perm);
    const CrwiGraph g = graph_from(inst.script, 48);
    std::vector<std::uint64_t> costs;
    for (std::size_t i = 0; i < 12; ++i) costs.push_back(rng.range(1, 100));

    const ExactFvsResult exact = exact_min_fvs(g, costs);
    EXPECT_TRUE(exact.optimal);
    EXPECT_TRUE(acyclic_after_removal(g, exact.removed));

    for (const BreakPolicy policy :
         {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin}) {
      const TopoSortResult heur = topo_sort_breaking_cycles(g, policy, costs);
      std::uint64_t heur_cost = 0;
      for (const std::uint32_t v : heur.deleted) heur_cost += costs[v];
      EXPECT_LE(exact.cost, heur_cost) << policy_name(policy);
    }
  }
}

TEST(ExactFvs, RejectsOversizeGraph) {
  const AdversaryInstance inst =
      make_block_permutation(4, single_cycle_permutation(10));
  const CrwiGraph g = graph_from(inst.script, 40);
  const std::vector<std::uint64_t> costs(10, 1);
  ExactFvsOptions options;
  options.max_vertices = 5;
  EXPECT_THROW(exact_min_fvs(g, costs, options), ValidationError);
}

TEST(ExactFvs, RejectsMismatchedCosts) {
  const CrwiGraph g;
  EXPECT_NO_THROW(exact_min_fvs(g, {}));
  const AdversaryInstance inst =
      make_block_permutation(4, single_cycle_permutation(3));
  const CrwiGraph g3 = graph_from(inst.script, 12);
  EXPECT_THROW(exact_min_fvs(g3, std::vector<std::uint64_t>(2, 1)),
               ValidationError);
}

TEST(ExactFvs, BudgetExhaustionFlagsNonOptimal) {
  const AdversaryInstance inst =
      make_block_permutation(4, single_cycle_permutation(8));
  const CrwiGraph g = graph_from(inst.script, 32);
  const std::vector<std::uint64_t> costs(8, 1);
  ExactFvsOptions options;
  options.max_search_nodes = 1;  // allow almost no search
  const ExactFvsResult r = exact_min_fvs(g, costs, options);
  EXPECT_FALSE(r.optimal);
}

}  // namespace
}  // namespace ipd
