#include "inplace/converter.hpp"

#include <gtest/gtest.h>

#include "adversary/constructions.hpp"
#include "apply/apply.hpp"
#include "apply/inplace_apply.hpp"
#include "apply/oracle.hpp"
#include "delta/differ.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

// Full-fidelity check: the converted script must satisfy Equation 2, pass
// the oracle, and materialise the identical version when applied in the
// reference's own buffer.
void expect_inplace_equivalent(const Script& original,
                               const Script& converted, ByteView reference) {
  const Bytes expected = apply_script(original, reference);
  ASSERT_NO_THROW(converted.validate(reference.size(), expected.size()));
  EXPECT_TRUE(satisfies_equation2(converted));
  EXPECT_TRUE(analyze_conflicts(converted).in_place_safe());

  Bytes buffer(reference.begin(), reference.end());
  buffer.resize(std::max(reference.size(), expected.size()));
  apply_inplace(converted, buffer, reference.size(), expected.size());
  buffer.resize(expected.size());
  EXPECT_TRUE(test::bytes_equal(expected, buffer));
}

class ConverterPolicyTest : public ::testing::TestWithParam<BreakPolicy> {};
INSTANTIATE_TEST_SUITE_P(Policies, ConverterPolicyTest,
                         ::testing::Values(BreakPolicy::kConstantTime,
                                           BreakPolicy::kLocalMin,
                                           BreakPolicy::kExactOptimal,
                                           BreakPolicy::kSccGlobalMin),
                         [](const auto& info) {
                           std::string n = policy_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(ConverterPolicyTest, ConflictFreeScriptPassesThroughUnconverted) {
  const Bytes ref = test::ramp_bytes(100);
  // Pure left-shift copies: reads always ahead of writes.
  const Script script = script_of({C(50, 0, 25), C(80, 25, 20), A(45, "xyz")});
  const ConvertResult r =
      convert_to_inplace(script, ref, {.policy = GetParam()});
  EXPECT_EQ(r.report.copies_converted, 0u);
  EXPECT_EQ(r.report.cycles_found, 0u);
  EXPECT_EQ(r.script.summary().copy_count, 2u);
  expect_inplace_equivalent(script, r.script, ref);
}

TEST_P(ConverterPolicyTest, ReorderingAloneResolvesChains) {
  const Bytes ref = test::ramp_bytes(40);
  // In given order, command 0 writes [0,9] which command 1 then reads —
  // but applying 1 before 0 is conflict-free. No conversion needed.
  const Script script = script_of({C(20, 0, 10), C(0, 10, 10), C(20, 20, 20)});
  const ConvertResult r =
      convert_to_inplace(script, ref, {.policy = GetParam()});
  EXPECT_EQ(r.report.copies_converted, 0u);
  EXPECT_EQ(r.script.summary().copy_count, 3u);
  expect_inplace_equivalent(script, r.script, ref);
  // The emitted copy order must place the [0,*]-reading command first.
  const auto copies = r.script.copies();
  EXPECT_EQ(copies[0].from, 0u);
}

TEST_P(ConverterPolicyTest, RotationRequiresExactlyOneConversion) {
  const AdversaryInstance inst = make_rotation(1000, 400);
  const ConvertResult r =
      convert_to_inplace(inst.script, inst.reference, {.policy = GetParam()});
  EXPECT_EQ(r.report.copies_converted, 1u);
  expect_inplace_equivalent(inst.script, r.script, inst.reference);
  // The converted add carries real reference bytes.
  EXPECT_EQ(r.script.summary().added_bytes, r.report.bytes_converted);
}

TEST_P(ConverterPolicyTest, PermutationAdversaries) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const auto perm = random_permutation(rng, 40);
    const AdversaryInstance inst = make_block_permutation(16, perm);
    const ConvertResult r = convert_to_inplace(inst.script, inst.reference,
                                               {.policy = GetParam()});
    expect_inplace_equivalent(inst.script, r.script, inst.reference);
  }
}

TEST_P(ConverterPolicyTest, RealDiffOutputsConvertCleanly) {
  Rng rng(7);
  const Bytes ref = test::random_bytes(1, 40000);
  Bytes ver = ref;
  // Shuffle some blocks around to force conflicts and cycles.
  for (int i = 0; i < 6; ++i) {
    const std::size_t a = rng.below(ver.size() - 2000);
    const std::size_t b = rng.below(ver.size() - 2000);
    for (std::size_t k = 0; k < 1500; ++k) std::swap(ver[a + k], ver[b + k]);
  }
  for (const DifferKind differ :
       {DifferKind::kGreedy, DifferKind::kOnePass}) {
    const Script script = diff_bytes(differ, ref, ver);
    const ConvertResult r =
        convert_to_inplace(script, ref, {.policy = GetParam()});
    expect_inplace_equivalent(script, r.script, ref);
  }
}

TEST(Converter, LocalMinNeverCostsMoreThanConstantOnPermutations) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const auto perm = random_permutation(rng, 60);
    const AdversaryInstance inst = make_block_permutation(32, perm);
    const ConvertResult constant = convert_to_inplace(
        inst.script, inst.reference, {.policy = BreakPolicy::kConstantTime});
    const ConvertResult local = convert_to_inplace(
        inst.script, inst.reference, {.policy = BreakPolicy::kLocalMin});
    // Uniform costs here, so both should convert the same number; the
    // point is the report accounting stays consistent.
    EXPECT_EQ(local.report.copies_converted,
              constant.report.copies_converted);
  }
}

TEST(Converter, ExactBeatsLocalMinOnFig2) {
  const Fig2Instance inst = make_fig2_tree(5);
  const ConvertResult local = convert_to_inplace(
      inst.script, inst.reference, {.policy = BreakPolicy::kLocalMin});
  const ConvertResult exact = convert_to_inplace(
      inst.script, inst.reference, {.policy = BreakPolicy::kExactOptimal});
  EXPECT_EQ(local.report.copies_converted, inst.leaf_count);
  EXPECT_EQ(exact.report.copies_converted, 1u);
  EXPECT_LT(exact.report.conversion_cost, local.report.conversion_cost);
  EXPECT_TRUE(exact.report.exact_was_optimal);
  expect_inplace_equivalent(inst.script, exact.script, inst.reference);
  expect_inplace_equivalent(inst.script, local.script, inst.reference);
}

TEST(Converter, AddsAreEmittedAfterAllCopies) {
  const AdversaryInstance inst = make_rotation(500, 100);
  // A rotation variant with an add in front, to prove it moves to the back.
  Script input;
  input.push(AddCommand{0, Bytes(inst.version.begin(), inst.version.begin() + 7)});
  input.push(CopyCommand{107, 7, 393});
  input.push(CopyCommand{0, 400, 100});
  const Bytes expected = apply_script(input, inst.reference);

  const ConvertResult r = convert_to_inplace(input, inst.reference, {});
  bool seen_add = false;
  for (const Command& c : r.script.commands()) {
    if (is_add(c)) {
      seen_add = true;
    } else {
      EXPECT_FALSE(seen_add) << "copy after an add";
    }
  }
  expect_inplace_equivalent(input, r.script, inst.reference);
}

TEST(Converter, CoalescingMergesAdjacentAdds) {
  const Bytes ref = test::ramp_bytes(64);
  // Three adjacent adds plus a copy that must convert (self-swap cycle).
  const Script script = script_of({
      C(32, 0, 16),
      C(0, 32, 16),  // 2-cycle with the first copy
      A(16, "aaaaaaaa"),
      A(24, "bbbbbbbb"),
      C(48, 48, 16),
  });
  ConvertOptions merged_opts;
  merged_opts.coalesce_adds = true;
  ConvertOptions split_opts;
  split_opts.coalesce_adds = false;
  const ConvertResult merged = convert_to_inplace(script, ref, merged_opts);
  const ConvertResult split = convert_to_inplace(script, ref, split_opts);
  expect_inplace_equivalent(script, merged.script, ref);
  expect_inplace_equivalent(script, split.script, ref);
  EXPECT_LT(merged.script.summary().add_count,
            split.script.summary().add_count);
}

TEST(Converter, ReportAccountingIsExact) {
  const AdversaryInstance inst =
      make_block_permutation(64, single_cycle_permutation(8));
  const ConvertResult r = convert_to_inplace(inst.script, inst.reference, {});
  EXPECT_EQ(r.report.copies_in, 8u);
  EXPECT_EQ(r.report.adds_in, 0u);
  EXPECT_EQ(r.report.edges, 8u);
  EXPECT_EQ(r.report.cycles_found, 1u);
  EXPECT_EQ(r.report.copies_converted, 1u);
  EXPECT_EQ(r.report.bytes_converted, 64u);
  const CodewordCostModel model(kPaperExplicit, inst.version.size());
  EXPECT_EQ(r.report.conversion_cost,
            model.conversion_cost(CopyCommand{0, 0, 64}));
}

TEST(Converter, SccPolicyReportsRoundsAndMatchesExactOnSingleCycles) {
  const AdversaryInstance inst =
      make_block_permutation(64, single_cycle_permutation(12));
  ConvertOptions scc_opts;
  scc_opts.policy = BreakPolicy::kSccGlobalMin;
  const ConvertResult scc = convert_to_inplace(inst.script, inst.reference,
                                               scc_opts);
  ConvertOptions exact_opts;
  exact_opts.policy = BreakPolicy::kExactOptimal;
  const ConvertResult exact = convert_to_inplace(inst.script, inst.reference,
                                                 exact_opts);
  // One cycle, uniform costs: both delete exactly one copy.
  EXPECT_EQ(scc.report.copies_converted, 1u);
  EXPECT_EQ(scc.report.conversion_cost, exact.report.conversion_cost);
  EXPECT_GE(scc.report.scc_rounds, 2u);
  expect_inplace_equivalent(inst.script, scc.script, inst.reference);
}

TEST(Converter, InvalidInputRejected) {
  const Bytes ref = test::ramp_bytes(10);
  // Read past the reference.
  EXPECT_THROW(convert_to_inplace(script_of({C(5, 0, 10)}), ref, {}),
               ValidationError);
  // Overlapping writes.
  EXPECT_THROW(
      convert_to_inplace(script_of({C(0, 0, 5), C(0, 3, 5)}), ref, {}),
      ValidationError);
}

TEST(Converter, ConversionIsIdempotent) {
  // Running the converter on an already-converted script must find no
  // cycles and convert nothing further (the output order satisfies
  // Equation 2, so every conflict edge is already respected).
  Rng rng(44);
  for (int trial = 0; trial < 5; ++trial) {
    const auto perm = random_permutation(rng, 40);
    const AdversaryInstance inst = make_block_permutation(16, perm);
    const ConvertResult first =
        convert_to_inplace(inst.script, inst.reference, {});
    const ConvertResult second =
        convert_to_inplace(first.script, inst.reference, {});
    EXPECT_EQ(second.report.copies_converted, 0u) << "trial " << trial;
    EXPECT_EQ(second.report.cycles_found, 0u);
    expect_inplace_equivalent(inst.script, second.script, inst.reference);
  }
}

TEST(Converter, AllAddScriptPassesThrough) {
  const Script s = script_of({A(0, "abc"), A(3, "def")});
  const ConvertResult r = convert_to_inplace(s, {}, {});
  EXPECT_EQ(r.report.copies_in, 0u);
  EXPECT_EQ(r.report.edges, 0u);
  EXPECT_TRUE(satisfies_equation2(r.script));
  EXPECT_EQ(apply_script(r.script, {}), to_bytes("abcdef"));
}

TEST(Converter, SingleSelfOverlappingCopyNeedsNoConversion) {
  // Self-overlap is handled by copy direction, not conversion (§4.1).
  const Bytes ref = test::ramp_bytes(100);
  const Script s = script_of({C(10, 0, 50), C(5, 50, 50)});
  const ConvertResult r = convert_to_inplace(s, ref, {});
  EXPECT_EQ(r.report.copies_converted, 1u);  // the 2nd copy reads [5,54]
  // ... but a purely self-overlapping single copy converts nothing:
  const Script solo = script_of({C(10, 0, 60)});
  const ConvertResult r2 = convert_to_inplace(solo, ref, {});
  EXPECT_EQ(r2.report.copies_converted, 0u);
  expect_inplace_equivalent(solo, r2.script, ref);
}

TEST(Converter, EmptyScript) {
  const ConvertResult r = convert_to_inplace(Script{}, {}, {});
  EXPECT_TRUE(r.script.empty());
  EXPECT_EQ(r.report.copies_in, 0u);
}

TEST(Converter, Equation2CheckerCatchesViolations) {
  // Write [0,9] then read it: violation.
  EXPECT_FALSE(satisfies_equation2(script_of({C(20, 0, 10), C(5, 10, 10)})));
  // Read then write the same region: fine.
  EXPECT_TRUE(satisfies_equation2(script_of({C(5, 10, 10), C(20, 0, 10)})));
  // Adds never read.
  EXPECT_TRUE(satisfies_equation2(script_of({A(0, "abc"), A(3, "def")})));
  // A copy reading an interval written by an earlier add is a violation.
  EXPECT_FALSE(satisfies_equation2(script_of({A(0, "abc"), C(1, 10, 2)})));
  EXPECT_TRUE(satisfies_equation2(Script{}));
}

TEST(Converter, MakeInplaceDeltaEndToEnd) {
  const AdversaryInstance inst = make_rotation(2000, 500);
  ConvertReport report;
  const Bytes delta = make_inplace_delta(inst.script, inst.reference,
                                         inst.version, {}, &report);
  EXPECT_EQ(report.copies_converted, 1u);

  Bytes buffer = inst.reference;
  const length_t new_len = apply_delta_inplace(delta, buffer);
  EXPECT_EQ(new_len, inst.version.size());
  EXPECT_TRUE(test::bytes_equal(inst.version,
                                ByteView(buffer).first(new_len)));
}

TEST(Converter, MakeInplaceDeltaRejectsImplicitFormat) {
  const AdversaryInstance inst = make_rotation(100, 30);
  ConvertOptions options;
  options.format = kPaperSequential;
  EXPECT_THROW(make_inplace_delta(inst.script, inst.reference, inst.version,
                                  options),
               ValidationError);
}

}  // namespace
}  // namespace ipd
