#include "delta/script.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

TEST(Script, VersionLengthSumsCommandLengths) {
  const Script s = script_of({C(0, 0, 10), A(10, "abc"), C(5, 13, 7)});
  EXPECT_EQ(s.version_length(), 20u);
}

TEST(Script, SummaryCounts) {
  const Script s = script_of({C(0, 0, 10), A(10, "abc"), C(5, 13, 7)});
  const ScriptSummary sum = s.summary();
  EXPECT_EQ(sum.copy_count, 2u);
  EXPECT_EQ(sum.add_count, 1u);
  EXPECT_EQ(sum.copied_bytes, 17u);
  EXPECT_EQ(sum.added_bytes, 3u);
  EXPECT_EQ(sum.version_bytes(), 20u);
}

TEST(Script, CopiesAndAddsSplitPreservingOrder) {
  const Script s = script_of({A(0, "x"), C(0, 1, 2), A(3, "y"), C(9, 4, 1)});
  const auto copies = s.copies();
  const auto adds = s.adds();
  ASSERT_EQ(copies.size(), 2u);
  ASSERT_EQ(adds.size(), 2u);
  EXPECT_EQ(copies[0].to, 1u);
  EXPECT_EQ(copies[1].to, 4u);
  EXPECT_EQ(adds[0].to, 0u);
  EXPECT_EQ(adds[1].to, 3u);
}

TEST(Script, ValidateAcceptsExactTiling) {
  const Script s = script_of({C(0, 0, 4), A(4, "ab"), C(2, 6, 2)});
  EXPECT_NO_THROW(s.validate(/*reference_length=*/10, /*version_length=*/8));
}

TEST(Script, ValidateAcceptsEmptyScriptForEmptyVersion) {
  EXPECT_NO_THROW(Script{}.validate(10, 0));
}

TEST(Script, ValidateRejectsZeroLengthCommand) {
  const Script s = script_of({C(0, 0, 0)});
  EXPECT_THROW(s.validate(10, 0), ValidationError);
}

TEST(Script, ValidateRejectsReadPastReference) {
  const Script s = script_of({C(8, 0, 4)});
  EXPECT_THROW(s.validate(10, 4), ValidationError);
}

TEST(Script, ValidateRejectsWritePastVersion) {
  const Script s = script_of({C(0, 0, 4)});
  EXPECT_THROW(s.validate(10, 3), ValidationError);
}

TEST(Script, ValidateRejectsOverlappingWrites) {
  const Script s = script_of({C(0, 0, 4), C(0, 3, 4)});
  EXPECT_THROW(s.validate(10, 7), ValidationError);
}

TEST(Script, ValidateRejectsCoverageGap) {
  const Script s = script_of({C(0, 0, 4), C(0, 6, 4)});
  EXPECT_THROW(s.validate(10, 10), ValidationError);
}

TEST(Script, ValidateRejectsTrailingGap) {
  const Script s = script_of({C(0, 0, 4)});
  EXPECT_THROW(s.validate(10, 5), ValidationError);
}

TEST(Script, ValidateOrderIndependent) {
  // Valid scripts may list commands in any order (§3).
  const Script s = script_of({C(2, 6, 2), C(0, 0, 4), A(4, "ab")});
  EXPECT_NO_THROW(s.validate(10, 8));
}

TEST(Script, InWriteOrder) {
  EXPECT_TRUE(script_of({C(0, 0, 4), A(4, "ab")}).in_write_order());
  EXPECT_FALSE(script_of({A(4, "ab"), C(0, 0, 4)}).in_write_order());
  // A gap breaks write order even if offsets increase.
  EXPECT_FALSE(script_of({C(0, 0, 4), C(0, 5, 2)}).in_write_order());
  EXPECT_TRUE(Script{}.in_write_order());
}

TEST(Script, SortByWriteOffset) {
  Script s = script_of({C(2, 6, 2), A(4, "ab"), C(0, 0, 4)});
  s.sort_by_write_offset();
  EXPECT_TRUE(s.in_write_order());
  EXPECT_EQ(command_to(s.commands()[0]), 0u);
  EXPECT_EQ(command_to(s.commands()[1]), 4u);
  EXPECT_EQ(command_to(s.commands()[2]), 6u);
}

TEST(Script, SameEffectIgnoresOrder) {
  const Script a = script_of({C(0, 0, 4), A(4, "ab")});
  Script b = script_of({A(4, "ab"), C(0, 0, 4)});
  EXPECT_TRUE(same_effect(a, b));
  b.push(C(0, 6, 1));
  EXPECT_FALSE(same_effect(a, b));
}

TEST(Script, ToTextListsAndTruncates) {
  Script s;
  for (int i = 0; i < 10; ++i) {
    s.push(CopyCommand{0, static_cast<offset_t>(i), 1});
  }
  const std::string text = s.to_text(3);
  EXPECT_NE(text.find("0: copy"), std::string::npos);
  EXPECT_NE(text.find("(7 more commands)"), std::string::npos);
}

}  // namespace
}  // namespace ipd
