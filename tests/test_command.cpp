#include "delta/command.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace ipd {
namespace {

TEST(CopyCommand, Intervals) {
  const CopyCommand c{100, 200, 50};
  EXPECT_EQ(c.read_interval(), Interval::of(100, 50));
  EXPECT_EQ(c.write_interval(), Interval::of(200, 50));
}

TEST(CopyCommand, SelfOverlapDetection) {
  // Disjoint read/write.
  EXPECT_FALSE((CopyCommand{0, 100, 50}.self_overlaps()));
  // Forward-overlapping (f < t).
  EXPECT_TRUE((CopyCommand{0, 25, 50}.self_overlaps()));
  // Backward-overlapping (f > t).
  EXPECT_TRUE((CopyCommand{25, 0, 50}.self_overlaps()));
  // Identity copy.
  EXPECT_TRUE((CopyCommand{10, 10, 5}.self_overlaps()));
  // Exactly adjacent intervals do not overlap.
  EXPECT_FALSE((CopyCommand{0, 50, 50}.self_overlaps()));
}

TEST(AddCommand, LengthAndInterval) {
  const AddCommand a{10, to_bytes("abcde")};
  EXPECT_EQ(a.length(), 5u);
  EXPECT_EQ(a.write_interval(), Interval::of(10, 5));
}

TEST(Command, VariantAccessors) {
  const Command copy = CopyCommand{1, 2, 3};
  const Command add = AddCommand{7, to_bytes("xy")};

  EXPECT_TRUE(is_copy(copy));
  EXPECT_FALSE(is_add(copy));
  EXPECT_TRUE(is_add(add));
  EXPECT_FALSE(is_copy(add));

  EXPECT_EQ(command_to(copy), 2u);
  EXPECT_EQ(command_to(add), 7u);
  EXPECT_EQ(command_length(copy), 3u);
  EXPECT_EQ(command_length(add), 2u);
  EXPECT_EQ(command_write_interval(copy), Interval::of(2, 3));
  EXPECT_EQ(command_write_interval(add), Interval::of(7, 2));
}

TEST(Command, StreamFormatting) {
  std::ostringstream os;
  os << Command(CopyCommand{1, 2, 3}) << " " << Command(AddCommand{4, {9, 9}});
  EXPECT_EQ(os.str(), "copy<f=1, t=2, l=3> add<t=4, l=2>");
}

TEST(Command, Equality) {
  EXPECT_EQ(Command(CopyCommand{1, 2, 3}), Command(CopyCommand{1, 2, 3}));
  EXPECT_NE(Command(CopyCommand{1, 2, 3}), Command(CopyCommand{1, 2, 4}));
  EXPECT_NE(Command(CopyCommand{1, 2, 3}), Command(AddCommand{2, {0, 0, 0}}));
}

}  // namespace
}  // namespace ipd
