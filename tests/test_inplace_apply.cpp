#include "apply/inplace_apply.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "adversary/constructions.hpp"
#include "apply/apply.hpp"
#include "core/checksum.hpp"
#include "inplace/converter.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

TEST(OverlappingCopy, ForwardOverlapLeftToRight) {
  // f >= t: copy left-to-right is safe.
  Bytes buf = to_bytes("abcdefgh");
  overlapping_copy(buf, /*from=*/2, /*to=*/0, /*length=*/6);
  EXPECT_EQ(to_string(buf), "cdefghgh");
}

TEST(OverlappingCopy, BackwardOverlapRightToLeft) {
  // f < t: right-to-left avoids reading overwritten bytes.
  Bytes buf = to_bytes("abcdefgh");
  overlapping_copy(buf, /*from=*/0, /*to=*/2, /*length=*/6);
  EXPECT_EQ(to_string(buf), "ababcdef");
}

TEST(OverlappingCopy, IdentityAndZeroLengthAreNoOps) {
  Bytes buf = to_bytes("abcd");
  overlapping_copy(buf, 1, 1, 3);
  EXPECT_EQ(to_string(buf), "abcd");
  overlapping_copy(buf, 0, 2, 0);
  EXPECT_EQ(to_string(buf), "abcd");
}

TEST(OverlappingCopy, MatchesMemmoveSemanticsOnRandomCases) {
  Rng rng(88);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes buf = test::random_bytes(trial, 64);
    Bytes expect = buf;
    const offset_t from = rng.below(64);
    const offset_t to = rng.below(64);
    const length_t len = rng.below(64 - std::max(from, to) + 1);
    std::memmove(expect.data() + to, expect.data() + from, len);
    overlapping_copy(buf, from, to, len);
    ASSERT_TRUE(test::bytes_equal(expect, buf)) << "trial " << trial;
  }
}

TEST(ApplyInplace, GrowingVersionUsesBufferSlack) {
  const Bytes ref = to_bytes("0123456789");
  // Version: the reference with "XX" appended (12 bytes > 10).
  const Script s = script_of({C(0, 0, 10), A(10, "XX")});
  Bytes buffer = ref;
  buffer.resize(12);
  apply_inplace(s, buffer, 10, 12);
  EXPECT_EQ(to_string(buffer), "0123456789XX");
}

TEST(ApplyInplace, ShrinkingVersion) {
  const Bytes ref = to_bytes("0123456789");
  const Script s = script_of({C(5, 0, 5)});
  Bytes buffer = ref;
  apply_inplace(s, buffer, 10, 5);
  EXPECT_EQ(to_string(ByteView(buffer).first(5)), "56789");
}

TEST(ApplyInplace, BufferTooSmallThrows) {
  const Script s = script_of({C(0, 0, 4)});
  Bytes buffer(3);
  EXPECT_THROW(apply_inplace(s, buffer, 4, 4), ValidationError);
  Bytes buffer2(16);
  EXPECT_THROW(apply_inplace(s, buffer2, 2, 4), ValidationError);  // reads past ref
}

TEST(ApplyInplace, ConflictingScriptSilentlyCorrupts) {
  // The failure mode the paper opens with: apply a non-converted delta in
  // place and the output is wrong.
  const AdversaryInstance inst = make_rotation(100, 30);
  Bytes buffer = inst.reference;
  apply_inplace(inst.script, buffer, 100, 100);
  EXPECT_FALSE(test::bytes_equal(inst.version, buffer));
}

TEST(ApplyInplaceChecked, ThrowsOnTheConflictInstead) {
  const AdversaryInstance inst = make_rotation(100, 30);
  Bytes buffer = inst.reference;
  EXPECT_THROW(apply_inplace_checked(inst.script, buffer, 100, 100),
               ConflictError);
}

TEST(ApplyInplaceChecked, AcceptsConvertedScript) {
  const AdversaryInstance inst = make_rotation(100, 30);
  const ConvertResult r = convert_to_inplace(inst.script, inst.reference, {});
  Bytes buffer = inst.reference;
  ASSERT_NO_THROW(apply_inplace_checked(r.script, buffer, 100, 100));
  EXPECT_TRUE(test::bytes_equal(inst.version, buffer));
}

TEST(ApplyDeltaInplace, FullWireRoundTrip) {
  const AdversaryInstance inst = make_rotation(5000, 1234);
  const Bytes delta =
      make_inplace_delta(inst.script, inst.reference, inst.version, {});
  Bytes buffer = inst.reference;
  const length_t len = apply_delta_inplace(delta, buffer);
  EXPECT_EQ(len, 5000u);
  EXPECT_TRUE(test::bytes_equal(inst.version, buffer));
}

TEST(ApplyDeltaInplace, RejectsNonInplaceDelta) {
  DeltaFile file;
  file.format = kVarintExplicit;
  file.in_place = false;
  file.reference_length = 4;
  file.version_length = 4;
  const Bytes ver = to_bytes("abcd");
  file.version_crc = crc32c(ver);
  file.script = script_of({A(0, "abcd")});
  const Bytes wire = serialize_delta(file);
  Bytes buffer(4);
  EXPECT_THROW(apply_delta_inplace(wire, buffer), ValidationError);
}

TEST(ApplyDeltaInplace, RejectsTooSmallBuffer) {
  const AdversaryInstance inst = make_rotation(100, 10);
  const Bytes delta =
      make_inplace_delta(inst.script, inst.reference, inst.version, {});
  Bytes buffer(50);
  EXPECT_THROW(apply_delta_inplace(delta, buffer), ValidationError);
}

TEST(ApplyDeltaInplace, CrcCatchesWrongReferenceImage) {
  const AdversaryInstance inst = make_rotation(100, 10);
  const Bytes delta =
      make_inplace_delta(inst.script, inst.reference, inst.version, {});
  Bytes buffer = inst.reference;
  buffer[50] ^= 1;  // device image differs from the delta's reference
  EXPECT_THROW(apply_delta_inplace(delta, buffer), FormatError);
}

TEST(ApplyInplace, AgreesWithScratchApplyOnConvertedScripts) {
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    const auto perm = random_permutation(rng, 30);
    const AdversaryInstance inst = make_block_permutation(24, perm);
    const ConvertResult r =
        convert_to_inplace(inst.script, inst.reference, {});
    const Bytes scratch = apply_script(r.script, inst.reference);
    Bytes buffer = inst.reference;
    apply_inplace(r.script, buffer, inst.reference.size(),
                  inst.version.size());
    EXPECT_TRUE(test::bytes_equal(scratch, buffer));
    EXPECT_TRUE(test::bytes_equal(inst.version, buffer));
  }
}

}  // namespace
}  // namespace ipd
