// Unit tests for the delta distribution service components: version
// store, sharded LRU cache, singleflight, thread pool, metrics, and the
// single-threaded behaviour of DeltaService itself. The multi-threaded
// hammering lives in test_server_stress.cpp (ctest label: stress).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "server/delta_service.hpp"
#include "server/fingerprint.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

std::vector<Bytes> make_history(std::size_t releases, std::uint64_t seed,
                                std::size_t edits_per_release = 25,
                                length_t size = 24 << 10) {
  Rng rng(seed);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, size, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 48;
  for (std::size_t i = 1; i < releases; ++i) {
    history.push_back(mutate(history.back(), rng, edits_per_release, model));
  }
  return history;
}

void publish_all(VersionStore& store, const std::vector<Bytes>& history) {
  for (const Bytes& body : history) store.publish(body);
}

std::shared_ptr<const Bytes> bytes_of(std::string_view s) {
  return std::make_shared<const Bytes>(to_bytes(s));
}

// ---------------------------------------------------------------- store

TEST(VersionStore, PublishAssignsSequentialIds) {
  VersionStore store;
  EXPECT_EQ(store.publish(to_bytes("v0")), 0u);
  EXPECT_EQ(store.publish(to_bytes("v1")), 1u);
  EXPECT_EQ(store.release_count(), 2u);
  EXPECT_EQ(store.latest(), 1u);
  EXPECT_EQ(to_string(*store.body(0)), "v0");
  EXPECT_EQ(to_string(*store.body(1)), "v1");
}

TEST(VersionStore, ContentAddressingFindsLatestMatch) {
  VersionStore store;
  store.publish(to_bytes("alpha"));
  store.publish(to_bytes("beta"));
  store.publish(to_bytes("alpha"));  // re-released content
  const ContentKey key = store.content_key(0);
  EXPECT_EQ(store.content_key(2), key);
  const auto found = store.find(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 2u);  // newest release with that content wins
  EXPECT_FALSE(store.find(ContentKey{0xDEAD, 99}).has_value());
}

TEST(VersionStore, BadIdThrows) {
  VersionStore store;
  EXPECT_THROW(store.body(0), ValidationError);
  EXPECT_THROW(store.content_key(0), ValidationError);
  EXPECT_THROW(store.latest(), ValidationError);
}

TEST(VersionStore, BodiesSurviveConcurrentPublishes) {
  VersionStore store;
  const ReleaseId id = store.publish(test::random_bytes(1, 4096));
  const auto body = store.body(id);
  std::thread publisher([&store] {
    for (int i = 0; i < 64; ++i) store.publish(test::random_bytes(i, 512));
  });
  // The previously obtained body stays valid and unchanged throughout.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(body->size(), 4096u);
    EXPECT_TRUE(test::bytes_equal(*store.body(id), *body));
  }
  publisher.join();
  EXPECT_EQ(store.release_count(), 65u);
}

// ---------------------------------------------------------------- cache

TEST(DeltaCache, GetMissThenHit) {
  ServiceMetrics metrics;
  DeltaCache cache(1 << 20, 4, &metrics);
  const DeltaKey key{0, 1, 42};
  EXPECT_EQ(cache.get(key), nullptr);
  EXPECT_TRUE(cache.put(key, bytes_of("delta")));
  const auto hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(to_string(*hit), "delta");
  EXPECT_EQ(metrics.cache_misses.load(), 1u);
  EXPECT_EQ(metrics.cache_hits.load(), 1u);
}

TEST(DeltaCache, DistinctFingerprintsAreDistinctEntries) {
  DeltaCache cache(1 << 20, 1);
  cache.put(DeltaKey{0, 1, 1}, bytes_of("pipeline-a"));
  cache.put(DeltaKey{0, 1, 2}, bytes_of("pipeline-b"));
  EXPECT_EQ(to_string(*cache.get(DeltaKey{0, 1, 1})), "pipeline-a");
  EXPECT_EQ(to_string(*cache.get(DeltaKey{0, 1, 2})), "pipeline-b");
}

TEST(DeltaCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  ServiceMetrics metrics;
  // Single shard, 100-byte budget, 40-byte entries: holds two.
  DeltaCache cache(100, 1, &metrics);
  const auto forty = std::make_shared<const Bytes>(Bytes(40, 0xAB));
  cache.put(DeltaKey{0, 1, 0}, forty);
  cache.put(DeltaKey{1, 2, 0}, forty);
  EXPECT_NE(cache.get(DeltaKey{0, 1, 0}), nullptr);  // touch: 0->1 is MRU
  cache.put(DeltaKey{2, 3, 0}, forty);               // evicts 1->2
  EXPECT_NE(cache.get(DeltaKey{0, 1, 0}), nullptr);
  EXPECT_EQ(cache.get(DeltaKey{1, 2, 0}), nullptr);
  EXPECT_NE(cache.get(DeltaKey{2, 3, 0}), nullptr);
  EXPECT_EQ(metrics.evictions.load(), 1u);
  const DeltaCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes_held, 100u);
}

TEST(DeltaCache, RefusesEntriesLargerThanAShard) {
  ServiceMetrics metrics;
  DeltaCache cache(64, 1, &metrics);
  const DeltaKey small{0, 1, 0};
  cache.put(small, bytes_of("tiny"));
  const auto huge = std::make_shared<const Bytes>(Bytes(1000, 0xCD));
  EXPECT_FALSE(cache.put(DeltaKey{1, 2, 0}, huge));
  // The oversized insert neither cached itself nor disturbed residents.
  EXPECT_EQ(cache.get(DeltaKey{1, 2, 0}), nullptr);
  EXPECT_NE(cache.get(small), nullptr);
  EXPECT_EQ(metrics.rejected_inserts.load(), 1u);
}

TEST(DeltaCache, RefreshReplacesValueAndAccounting) {
  DeltaCache cache(1 << 10, 1);
  const DeltaKey key{3, 4, 0};
  cache.put(key, bytes_of("first"));
  cache.put(key, bytes_of("second-longer"));
  EXPECT_EQ(to_string(*cache.get(key)), "second-longer");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes_held, 13u);
}

TEST(DeltaCache, EvictionDoesNotInvalidateHandedOutValues) {
  DeltaCache cache(50, 1);
  const auto forty = std::make_shared<const Bytes>(Bytes(40, 0xEF));
  cache.put(DeltaKey{0, 1, 0}, forty);
  const auto held = cache.get(DeltaKey{0, 1, 0});
  cache.put(DeltaKey{1, 2, 0}, forty);  // evicts 0->1
  EXPECT_EQ(cache.get(DeltaKey{0, 1, 0}), nullptr);
  ASSERT_NE(held, nullptr);  // our reference is untouched
  EXPECT_EQ(held->size(), 40u);
  EXPECT_EQ((*held)[0], 0xEF);
}

TEST(DeltaCache, ZeroBudgetRejected) {
  EXPECT_THROW(DeltaCache(0, 4), ValidationError);
}

// ---------------------------------------------------------- singleflight

TEST(Singleflight, LeaderRunsOnceFollowersShareResult) {
  Singleflight<int, int> flight;
  std::atomic<int> builds{0};
  std::atomic<int> followers{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      bool leader = false;
      const int value = flight.run(
          7,
          [&] {
            ++builds;
            // Hold the flight open long enough for everyone to join.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return 123;
          },
          &leader);
      EXPECT_EQ(value, 123);
      if (!leader) ++followers;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(followers.load(), kThreads - 1);
  EXPECT_EQ(flight.inflight(), 0u);
}

TEST(Singleflight, DistinctKeysDoNotCoalesce) {
  Singleflight<int, int> flight;
  EXPECT_EQ(flight.run(1, [] { return 10; }), 10);
  EXPECT_EQ(flight.run(2, [] { return 20; }), 20);
}

TEST(Singleflight, LeaderExceptionReachesFollowersAndClearsFlight) {
  Singleflight<int, int> flight;
  std::atomic<int> throws{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      try {
        flight.run(9, [&]() -> int {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          throw Error("build failed");
        });
      } catch (const Error&) {
        ++throws;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(throws.load(), 4);
  // The failed flight is gone; the key is retryable.
  EXPECT_EQ(flight.run(9, [] { return 5; }), 5);
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(future.get(), Error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
  }  // destructor must finish all 16, not abandon the queue
  EXPECT_EQ(ran.load(), 16);
}

// ----------------------------------------------------------- fingerprint

TEST(Fingerprint, SensitiveToEveryPipelineKnob) {
  const PipelineOptions base;
  const std::uint64_t h = fingerprint_pipeline(base);
  EXPECT_EQ(h, fingerprint_pipeline(base));  // deterministic

  PipelineOptions differ = base;
  differ.differ = DifferKind::kGreedy;
  PipelineOptions seed = base;
  seed.differ_options.seed_length = 8;
  PipelineOptions policy = base;
  policy.convert.policy = BreakPolicy::kConstantTime;
  PipelineOptions codeword = base;
  codeword.format.codeword = Codeword::kVarint;
  PipelineOptions compress = base;
  compress.compress_payload = true;
  for (const PipelineOptions& variant :
       {differ, seed, policy, codeword, compress}) {
    EXPECT_NE(fingerprint_pipeline(variant), h);
  }
}

// --------------------------------------------------------------- service

TEST(DeltaService, ServesCorrectDeltaAndCountsMissThenHit) {
  const auto history = make_history(3, 11);
  VersionStore store;
  publish_all(store, history);
  DeltaService service(store, {});

  const ServeResult first = service.serve(0, 2);
  EXPECT_FALSE(first.cache_hit);
  ASSERT_EQ(first.steps.size(), 1u);
  EXPECT_FALSE(first.steps[0].full_image);
  EXPECT_TRUE(test::bytes_equal(history[2], apply_served(first, history[0])));

  const ServeResult second = service.serve(0, 2);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(test::bytes_equal(*first.steps[0].bytes,
                                *second.steps[0].bytes));

  const ServiceMetrics& m = service.metrics();
  EXPECT_EQ(m.requests.load(), 2u);
  EXPECT_EQ(m.builds.load(), 1u);
  EXPECT_GE(m.cache_hits.load(), 1u);
  EXPECT_EQ(m.bytes_served.load(), first.total_bytes + second.total_bytes);
}

TEST(DeltaService, ServedDeltaIsBitIdenticalToDirectBuild) {
  const auto history = make_history(2, 21);
  VersionStore store;
  publish_all(store, history);
  ServiceOptions options;
  options.pipeline.differ = DifferKind::kGreedy;
  DeltaService service(store, options);

  const ServeResult served = service.serve(0, 1);
  const Bytes direct =
      Pipeline(options.pipeline).build_inplace(history[0], history[1]).delta;
  ASSERT_EQ(served.steps.size(), 1u);
  EXPECT_TRUE(test::bytes_equal(direct, *served.steps[0].bytes));
}

TEST(DeltaService, UnrelatedReleasesFallBackToFullImage) {
  // Independent random bodies: every delta is ~file size, so no delta
  // route can beat shipping the image.
  VersionStore store;
  store.publish(test::random_bytes(1, 20000));
  store.publish(test::random_bytes(2, 20000));
  DeltaService service(store, {});
  const ServeResult result = service.serve(0, 1);
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_TRUE(result.steps[0].full_image);
  EXPECT_TRUE(test::bytes_equal(*store.body(1), *result.steps[0].bytes));
  EXPECT_EQ(service.metrics().full_images_served.load(), 1u);
}

TEST(DeltaService, DriftedHistoryServesChainOfHops) {
  // Heavy per-release churn makes the direct 0->6 delta bloated while
  // adjacent hops stay small — the planner-style fallback should pick
  // either the chain or the image, and the result must still apply.
  const auto history = make_history(7, 31, /*edits_per_release=*/150);
  VersionStore store;
  publish_all(store, history);
  ServiceOptions options;
  options.direct_gain_threshold = 0.1;  // force the fallback evaluation
  DeltaService service(store, options);

  const ServeResult result = service.serve(0, 6);
  EXPECT_TRUE(test::bytes_equal(history[6], apply_served(result, history[0])));
  if (result.steps.size() > 1) {
    // A real chain: steps are contiguous single hops.
    EXPECT_EQ(service.metrics().chains_served.load(), 1u);
    EXPECT_EQ(result.steps.front().from, 0u);
    EXPECT_EQ(result.steps.back().to, 6u);
    for (std::size_t i = 0; i < result.steps.size(); ++i) {
      EXPECT_EQ(result.steps[i].to, result.steps[i].from + 1);
    }
  }
}

TEST(DeltaService, RejectsBadRequests) {
  const auto history = make_history(2, 41);
  VersionStore store;
  publish_all(store, history);
  DeltaService service(store, {});
  EXPECT_THROW(service.serve(0, 0), ValidationError);
  EXPECT_THROW(service.serve(1, 0), ValidationError);
  EXPECT_THROW(service.serve(0, 2), ValidationError);
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(DeltaService, SnapshotNamesEveryCounterExactlyOnce) {
  const auto history = make_history(2, 51);
  VersionStore store;
  publish_all(store, history);
  DeltaService service(store, {});
  service.serve(0, 1);
  const std::string text = service.metrics_text();
  // snapshot() walks the same IPD_SERVICE_COUNTERS X-macro that declares
  // the members, so this loop covers any counter added later for free.
  // Exactly once each: a label that vanishes or gets duplicated breaks
  // dashboards scraping this text.
  service.metrics().for_each([&](const char* name, std::uint64_t) {
    EXPECT_EQ(count_occurrences(text, std::string(name) + ":"), 1u) << name;
  });
  // Derived lines worded so no raw counter label appears twice.
  for (const char* label : {"hit rate:", "mean build:", "bytes cached:"}) {
    EXPECT_EQ(count_occurrences(text, label), 1u) << label;
  }
}

TEST(DeltaService, ApplyServedRejectsEmptyResult) {
  EXPECT_THROW(apply_served(ServeResult{}, Bytes{}), ValidationError);
}

}  // namespace
}  // namespace ipd
