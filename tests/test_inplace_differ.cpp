#include "inplace/inplace_differ.hpp"

#include <gtest/gtest.h>

#include "adversary/constructions.hpp"
#include "apply/apply.hpp"
#include "apply/inplace_apply.hpp"
#include "apply/oracle.hpp"
#include "corpus/workload.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

TEST(InplaceDiffer, OutputIsDirectlyInplaceSafe) {
  for (const VersionPair& pair : small_corpus(51)) {
    const InplaceDiffer differ(DifferKind::kOnePass);
    const Script script = differ.diff(pair.reference, pair.version);
    ASSERT_TRUE(satisfies_equation2(script)) << pair.name;
    ASSERT_TRUE(analyze_conflicts(script).in_place_safe()) << pair.name;

    Bytes buffer = pair.reference;
    buffer.resize(std::max(pair.reference.size(), pair.version.size()));
    apply_inplace(script, buffer, pair.reference.size(),
                  pair.version.size());
    EXPECT_TRUE(test::bytes_equal(
        pair.version, ByteView(buffer).first(pair.version.size())))
        << pair.name;
  }
}

TEST(InplaceDiffer, MatchesTwoStepPipeline) {
  Rng rng(3);
  const Bytes ref = test::random_bytes(1, 30000);
  Bytes ver = ref;
  for (int i = 0; i < 1500; ++i) std::swap(ver[i], ver[i + 15000]);

  const InplaceDiffer integrated(DifferKind::kGreedy);
  const Script one_step = integrated.diff(ref, ver);

  const Script two_step =
      convert_to_inplace(diff_bytes(DifferKind::kGreedy, ref, ver), ref, {})
          .script;
  EXPECT_EQ(one_step, two_step);
}

TEST(InplaceDiffer, ReportIsObservable) {
  const AdversaryInstance inst = make_rotation(2000, 700);
  // The rotation instance is a script, not a byte pair the differ would
  // find — instead build a pair whose diff needs conversion.
  const InplaceDiffer differ(DifferKind::kOnePass);
  const Script script = differ.diff(inst.reference, inst.version);
  EXPECT_GT(differ.last_report().copies_in, 0u);
  EXPECT_TRUE(satisfies_equation2(script));
  // A full rotation forces at least one conversion or a reordering; the
  // report reflects whatever happened.
  EXPECT_TRUE(test::bytes_equal(inst.version,
                                apply_script(script, inst.reference)));
}

TEST(InplaceDiffer, WorksThroughDifferInterface) {
  // Polymorphic use, as the archive builder would.
  std::unique_ptr<Differ> differ = std::make_unique<InplaceDiffer>(
      DifferKind::kOnePass);
  EXPECT_STREQ(differ->name(), "in-place");
  const Bytes ref = test::random_bytes(9, 5000);
  const Bytes ver = test::random_bytes(10, 5000);
  const Script script = differ->diff(ref, ver);
  ASSERT_NO_THROW(script.validate(ref.size(), ver.size()));
  EXPECT_TRUE(satisfies_equation2(script));
}

TEST(InplaceDiffer, EmptyInputs) {
  const InplaceDiffer differ(DifferKind::kOnePass);
  EXPECT_TRUE(differ.diff({}, {}).empty());
  const Bytes ver = test::random_bytes(11, 100);
  const Script script = differ.diff({}, ver);
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(script, {})));
}

}  // namespace
}  // namespace ipd
