// Crash-recovery matrix: a child process publishes releases into a
// store and is SIGKILLed at a randomized point mid-stream; the parent
// reopens the directory and requires (1) recovery succeeds, (2) every
// recovered release is byte-identical to the deterministic history, and
// (3) the store accepts further publishes. The kill delays are seeded
// with bench::repetition_seed so every repetition samples a different
// point in the publish pipeline (during differencing, mid segment
// append, between segment sync and manifest append, ...), while any
// failing run stays reproducible from its printed seed.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_util.hpp"
#include "core/checksum.hpp"
#include "store/artifact_store.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

/// Deterministic release history shared by the publisher child and the
/// auditing parent: body i is derived from (seed, i) alone.
std::vector<Bytes> shared_history(std::uint64_t seed, std::size_t n) {
  std::vector<Bytes> history;
  Bytes body = random_bytes(seed, 8 << 10);
  history.push_back(body);
  for (std::size_t i = 1; i < n; ++i) {
    Rng rng(seed ^ (0xABCD + i));
    for (int edit = 0; edit < 5; ++edit) {
      const std::size_t at = rng.below(body.size() - 48);
      for (std::size_t b = 0; b < 48; ++b) {
        body[at + b] = static_cast<std::uint8_t>(rng.next());
      }
    }
    history.push_back(body);
  }
  return history;
}

constexpr std::uint64_t kBaseSeed = 0x5705;
constexpr std::size_t kHistorySize = 24;

class StoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ipd_recover_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    history_ = shared_history(kBaseSeed, kHistorySize);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Fork a publisher that appends the remaining history to the store,
  /// kill it after `delay_us`, and reap it. Returns false if the child
  /// finished the whole history before the kill landed.
  bool run_and_kill(std::uint64_t delay_us) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: publish everything the store does not yet have. Chains
      // are kept short so folds (the most write-heavy publish path) are
      // exercised by the kill matrix too.
      try {
        StoreOptions options;
        options.chain.max_chain_length = 4;
        ArtifactStore store(dir_, options);
        for (std::size_t i = store.release_count(); i < history_.size();
             ++i) {
          store.publish(history_[i]);
        }
      } catch (...) {
        ::_exit(9);  // a recovered store must always accept publishes
      }
      ::_exit(0);
    }
    ::usleep(static_cast<useconds_t>(delay_us));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFSIGNALED(status);  // false: exited before the kill
  }

  /// Reopen with deep verification; every recovered release must match
  /// the deterministic history.
  std::size_t audit(const std::string& what) {
    StoreOptions options;
    options.verify_on_open = true;
    ArtifactStore store(dir_, options);
    const std::size_t n = store.release_count();
    EXPECT_LE(n, history_.size()) << what;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(*store.body(static_cast<ReleaseId>(i)), history_[i])
          << what << " release " << i;
    }
    return n;
  }

  std::filesystem::path dir_;
  std::vector<Bytes> history_;
};

TEST_F(StoreRecoveryTest, KillNineMatrix) {
  ArtifactStore::init(dir_);
  std::size_t recovered = 0;
  std::size_t kills = 0;
  for (std::uint64_t rep = 0; rep < 12 && recovered < history_.size();
       ++rep) {
    // 0.5ms .. ~8.7ms: from "still differencing" to "several publishes
    // deep". Seeded, not hardcoded, so the matrix drifts across the
    // pipeline as the store grows between reps.
    const std::uint64_t seed = bench::repetition_seed(kBaseSeed, rep);
    const std::uint64_t delay_us = 500 + seed % 8192;
    if (run_and_kill(delay_us)) ++kills;

    const std::size_t now =
        audit("rep " + std::to_string(rep) + " delay " +
              std::to_string(delay_us) + "us");
    // Durability: recovery never loses a release an earlier audit saw.
    EXPECT_GE(now, recovered) << "rep " << rep;
    recovered = now;
  }
  // The matrix must actually have interrupted the publisher, and the
  // store must have made progress through the kills.
  EXPECT_GT(kills, 0u);
  EXPECT_GT(recovered, 1u);

  // A store that survived the matrix still takes publishes to the end.
  {
    StoreOptions options;
    options.chain.max_chain_length = 4;
    ArtifactStore store(dir_, options);
    for (std::size_t i = store.release_count(); i < history_.size(); ++i) {
      store.publish(history_[i]);
    }
  }
  EXPECT_EQ(audit("final"), history_.size());
}

TEST_F(StoreRecoveryTest, KillDuringGcKeepsOldEpoch) {
  ArtifactStore::init(dir_);
  {
    StoreOptions options;
    options.chain.max_chain_length = 4;
    ArtifactStore store(dir_, options);
    for (std::size_t i = 0; i < 8; ++i) store.publish(history_[i]);
    store.compact(store.latest());
  }
  for (std::uint64_t rep = 0; rep < 6; ++rep) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      try {
        ArtifactStore store(dir_);
        store.gc();
      } catch (...) {
        ::_exit(9);
      }
      ::_exit(0);
    }
    const std::uint64_t delay_us =
        200 + bench::repetition_seed(kBaseSeed ^ 0x6C, rep) % 8192;
    ::usleep(static_cast<useconds_t>(delay_us));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    audit("gc rep " + std::to_string(rep));
  }
}

}  // namespace
}  // namespace ipd
