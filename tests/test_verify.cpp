// The static delta-safety verifier (src/verify/): the malformed-delta
// corpus — every class of unsafe or ill-formed delta must produce its
// expected diagnostic — plus the other side of the coin: everything the
// pipeline produces verifies clean, and the verifier's in-place verdict
// agrees with the dynamic conflict oracle across the corpus. Also covers
// the trust-boundary gates (DeltaCache verifier gate, DeltaService
// preload).
#include <gtest/gtest.h>

#include <limits>

#include "apply/oracle.hpp"
#include "core/buffer.hpp"
#include "core/checksum.hpp"
#include "corpus/workload.hpp"
#include "ipdelta.hpp"
#include "server/delta_service.hpp"
#include "test_util.hpp"
#include "verify/verifier.hpp"

namespace ipd {
namespace {

constexpr offset_t kMaxOffset = std::numeric_limits<offset_t>::max();

/// Wrap raw payload bytes in a correct container (valid magic, lengths,
/// adler) so a test can malform exactly one layer at a time.
Bytes wrap_payload(DeltaFormat format, bool in_place, length_t ref_len,
                   length_t ver_len, const Bytes& payload) {
  ByteWriter w;
  w.write_string("IPD1");
  w.write_u8(static_cast<std::uint8_t>(
      (static_cast<unsigned>(format.codeword) << 4) |
      static_cast<unsigned>(format.offsets)));
  w.write_u8(in_place ? 1 : 0);
  w.write_varint(ref_len);
  w.write_varint(ver_len);
  w.write_u32le(0);  // version crc: not statically checkable
  w.write_varint(payload.size());
  w.write_u32le(adler32(payload));
  w.write_bytes(payload);
  return w.take();
}

/// Serialize an arbitrary (possibly hostile) script as a delta file.
Bytes make_delta(Script script, bool in_place, length_t ref_len,
                 length_t ver_len,
                 DeltaFormat format = kVarintExplicit) {
  DeltaFile file;
  file.format = format;
  file.in_place = in_place;
  file.reference_length = ref_len;
  file.version_length = ver_len;
  file.script = std::move(script);
  return serialize_delta(file);
}

/// The canonical Equation 2 violation: cmd#1 reads bytes cmd#0 wrote.
/// Tiles [0, ver_len) exactly, reads stay inside [0, ref_len).
Script conflicting_script(length_t ref_len, length_t ver_len) {
  const length_t h = std::min(ver_len, ref_len) / 2;
  Script s;
  s.push(CopyCommand{h, 0, h});                // writes [0, h)
  s.push(CopyCommand{0, h, ver_len - h});      // reads [0, ...) — conflict
  return s;
}

const Finding* find_check(const Report& report, Check check) {
  for (const Finding& f : report.findings) {
    if (f.check == check) return &f;
  }
  return nullptr;
}

// ------------------------------------------------ malformed-delta corpus

TEST(VerifyMalformed, TruncatedVarintFieldNamesTheField) {
  const Bytes payload = {0x02, 0x05, 0x81};  // copy; `from` never ends
  const Report r = Verifier().check(
      wrap_payload(kVarintExplicit, false, 64, 64, payload));
  EXPECT_FALSE(r.well_formed);
  EXPECT_FALSE(r.ok());
  const Finding* f = find_check(r, Check::kCodeword);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("copy source offset truncated"),
            std::string::npos)
      << f->message;
}

TEST(VerifyMalformed, OverlongVarintIsMalformedNotTruncated) {
  Bytes payload = {0x01};  // add; then an unterminated 10-byte varint
  payload.insert(payload.end(), 10, std::uint8_t{0x80});
  const Report r = Verifier().check(
      wrap_payload(kVarintExplicit, false, 64, 64, payload));
  EXPECT_FALSE(r.well_formed);
  const Finding* f = find_check(r, Check::kCodeword);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("malformed varint in delta stream"),
            std::string::npos)
      << f->message;
}

TEST(VerifyMalformed, AddPayloadShorterThanDeclared) {
  Bytes payload = {0x01, 0x00, 0x64};  // add at 0 declaring 100 bytes...
  payload.insert(payload.end(), {0xAA, 0xBB, 0xCC, 0xDD, 0xEE});  // ...5
  const Report r = Verifier().check(
      wrap_payload(kVarintExplicit, false, 64, 128, payload));
  EXPECT_FALSE(r.well_formed);
  const Finding* f = find_check(r, Check::kCodeword);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find(
                "add payload shorter than declared: need 100 bytes, have 5"),
            std::string::npos)
      << f->message;
}

TEST(VerifyMalformed, ZeroLengthCommandIsRejected) {
  const Bytes payload = {0x02, 0x00, 0x00, 0x00};  // copy <0,0,len 0>
  const Report r = Verifier().check(
      wrap_payload(kVarintExplicit, false, 64, 64, payload));
  EXPECT_FALSE(r.well_formed);
  const Finding* f = find_check(r, Check::kCodeword);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("copy command with zero length"),
            std::string::npos)
      << f->message;
}

TEST(VerifyMalformed, OverlappingWritesCiteBothCommands) {
  Script s;
  s.push(CopyCommand{0, 0, 10});   // writes [0, 9]
  s.push(CopyCommand{10, 5, 10});  // writes [5, 14] — double-writes [5, 9]
  const Report r = Verifier().check(make_delta(std::move(s), false, 20, 15));
  EXPECT_TRUE(r.well_formed);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.in_place_safe);
  const Finding* f = find_check(r, Check::kWriteOverlap);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->command, std::size_t{1});
  EXPECT_EQ(f->other, std::size_t{0});
  ASSERT_TRUE(f->bytes.has_value());
  EXPECT_EQ(*f->bytes, (Interval{5, 9}));
}

TEST(VerifyMalformed, OutOfBoundsCopySourceIsDiagnosed) {
  Script s;
  s.push(CopyCommand{100, 0, 10});  // reference is only 50 bytes
  const Report r = Verifier().check(make_delta(std::move(s), false, 50, 10));
  EXPECT_FALSE(r.ok());
  const Finding* f = find_check(r, Check::kReadBounds);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("copy reads [100, 109] outside the reference "
                            "file of 50 bytes"),
            std::string::npos)
      << f->message;
}

TEST(VerifyMalformed, OffsetPlusLengthWraparoundIsCaughtBeforeIntervalMath) {
  Script s;
  // to + length - 1 wraps around u64; Interval::of would "succeed" with
  // last < first and every downstream bound check would pass vacuously.
  s.push(CopyCommand{0, kMaxOffset - 4, 10});
  s.push(AddCommand{0, Bytes(10, 0x11)});
  const Report r = Verifier().check(make_delta(std::move(s), false, 64, 10));
  EXPECT_FALSE(r.ok());
  const Finding* f = find_check(r, Check::kOffsetOverflow);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->command, std::size_t{0});
  EXPECT_NE(f->message.find("overflows u64"), std::string::npos)
      << f->message;
}

TEST(VerifyMalformed, CoverageGapIsReportedWithTheMissingRange) {
  Script s;
  s.push(CopyCommand{0, 0, 10});  // version is 20 bytes; [10, 19] missing
  const Report r = Verifier().check(make_delta(std::move(s), false, 20, 20));
  EXPECT_FALSE(r.ok());
  const Finding* f = find_check(r, Check::kCoverage);
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->bytes.has_value());
  EXPECT_EQ(*f->bytes, (Interval{10, 19}));
}

TEST(VerifyMalformed, WrConflictEmitsTheCounterexampleTrace) {
  const Report r = Verifier().check(
      make_delta(conflicting_script(40, 40), true, 40, 40));
  EXPECT_TRUE(r.well_formed);
  EXPECT_FALSE(r.in_place_safe);
  EXPECT_FALSE(r.ok());
  const Finding* f = find_check(r, Check::kWriteBeforeRead);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->command, std::size_t{1});
  EXPECT_EQ(f->other, std::size_t{0});
  EXPECT_NE(f->message.find("conflict: cmd#1 reads [0, 19] after cmd#0 "
                            "wrote it"),
            std::string::npos)
      << f->message;
  // The header lied about in-place applicability — called out separately.
  EXPECT_NE(find_check(r, Check::kInPlaceFlag), nullptr);
}

TEST(VerifyMalformed, ContainerFaultsAreDiagnosedNotThrown) {
  Bytes good = make_delta(conflicting_script(40, 40), false, 40, 40);

  Bytes bad_magic = good;
  bad_magic[0] = 'X';
  Report r = Verifier().check(bad_magic);
  EXPECT_FALSE(r.well_formed);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].message.find("bad magic"), std::string::npos);

  Bytes flipped = good;
  flipped.back() ^= 0xFF;
  r = Verifier().check(flipped);
  EXPECT_FALSE(r.well_formed);
  const Finding* f = find_check(r, Check::kPayload);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("payload checksum mismatch"), std::string::npos);

  r = Verifier().check(ByteView(good).first(3));
  EXPECT_FALSE(r.well_formed);

  Bytes trailing = good;
  trailing.push_back(0x00);
  r = Verifier().check(trailing);
  EXPECT_FALSE(r.well_formed);
  EXPECT_NE(r.findings[0].message.find("trailing garbage"),
            std::string::npos);
}

TEST(VerifyMalformed, FindingEnumerationIsCappedButVerdictExact) {
  Script s;
  for (int i = 0; i < 32; ++i) {
    s.push(CopyCommand{0, 0, 4});  // 32 commands all writing [0, 3]
  }
  VerifyOptions options;
  options.max_findings = 4;
  const Report r =
      Verifier(options).check(make_delta(std::move(s), false, 16, 4));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.findings_truncated);
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_FALSE(r.in_place_safe);
}

// -------------------------------------------------- severity calibration

TEST(VerifySeverity, ConflictsInScratchDeltasAreNotErrors) {
  // A sequential scratch delta legitimately reads bytes it later writes
  // over; only in-place consumers must treat Equation 2 as fatal.
  const Bytes delta = make_delta(conflicting_script(40, 40), false, 40, 40);
  const Report relaxed = Verifier().check(delta);
  EXPECT_TRUE(relaxed.ok());
  EXPECT_FALSE(relaxed.in_place_safe);  // the verdict is still truthful

  VerifyOptions strict;
  strict.require_in_place = true;
  const Report required = Verifier(strict).check(delta);
  EXPECT_FALSE(required.ok());
  EXPECT_NE(find_check(required, Check::kWriteBeforeRead), nullptr);
}

TEST(VerifySeverity, CompressedPayloadDeclaringAbsurdSizeIsRefused) {
  DeltaFile file;
  file.format = kVarintExplicit;
  file.compress_payload = true;
  file.reference_length = 64;
  file.version_length = 20000;
  file.script.push(AddCommand{0, Bytes(20000, 0x41)});  // compresses well
  const Bytes delta = serialize_delta(file);
  ASSERT_TRUE(deserialize_delta(delta).compress_payload);  // lzss paid

  VerifyOptions limits;
  limits.max_payload_bytes = 16;  // pretend we are a tiny device
  const Report r = Verifier(limits).check(delta);
  EXPECT_FALSE(r.ok());
  const Finding* f = find_check(r, Check::kPayload);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("exceeds the 16-byte limit"), std::string::npos)
      << f->message;
}

// ------------------------------------------------ pipeline output: clean

TEST(VerifyClean, EveryPipelineMatrixDeltaVerifiesClean) {
  struct Load {
    Bytes ref, ver;
  };
  std::vector<Load> loads;
  Rng rng(0x3A3);
  {
    Bytes ref = generate_file(rng, 24000, FileProfile::kText);
    Bytes ver = ref;
    for (int i = 0; i < 4000; ++i) std::swap(ver[i], ver[i + 12000]);
    loads.push_back({std::move(ref), std::move(ver)});
  }
  {
    Bytes ref = generate_file(rng, 30000, FileProfile::kBinary);
    Bytes ver = mutate(ref, rng, 20);
    loads.push_back({std::move(ref), std::move(ver)});
  }

  const Verifier verifier;
  for (const DifferKind differ : {DifferKind::kGreedy, DifferKind::kOnePass}) {
    for (const BreakPolicy policy :
         {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin,
          BreakPolicy::kSccGlobalMin}) {
      for (const Codeword codeword :
           {Codeword::kPaperByte, Codeword::kVarint}) {
        for (const bool compress : {false, true}) {
          PipelineOptions options;
          options.differ = differ;
          options.convert.policy = policy;
          options.format = DeltaFormat{codeword, WriteOffsets::kExplicit};
          options.compress_payload = compress;
          for (const Load& load : loads) {
            const Bytes delta =
                Pipeline(options).build_inplace(load.ref, load.ver).delta;
            const Report r = verifier.check(delta);
            EXPECT_TRUE(r.well_formed);
            EXPECT_TRUE(r.in_place_safe);
            EXPECT_TRUE(r.ok());
            EXPECT_EQ(r.warning_count(), 0u) << r.to_text();
          }
        }
      }
    }
  }
}

TEST(VerifyClean, ScratchDeltasVerifyCleanToo) {
  Rng rng(0x51);
  const Bytes ref = generate_file(rng, 20000, FileProfile::kText);
  const Bytes ver = mutate(ref, rng, 15);
  for (const DeltaFormat format :
       {kPaperSequential, kPaperExplicit, kVarintSequential,
        kVarintExplicit}) {
    const Bytes delta = Pipeline({.format = format}).build_delta(ref, ver).delta;
    const Report r = Verifier().check(delta);
    EXPECT_TRUE(r.well_formed) << format_name(format);
    EXPECT_TRUE(r.ok()) << format_name(format) << "\n" << r.to_text();
    EXPECT_EQ(r.warning_count(), 0u)
        << format_name(format) << "\n" << r.to_text();
  }
}

TEST(VerifyClean, VerdictAgreesWithTheDynamicOracleAcrossTheCorpus) {
  const Verifier verifier;
  for (const VersionPair& pair : small_corpus(11)) {
    for (const bool in_place : {false, true}) {
      Bytes delta;
      if (in_place) {
        delta = Pipeline().build_inplace(pair.reference, pair.version).delta;
      } else {
        delta = Pipeline({.format = kVarintExplicit}).build_delta(pair.reference, pair.version).delta;
      }
      const Report r = verifier.check(delta);
      ASSERT_TRUE(r.well_formed) << pair.name;
      EXPECT_TRUE(r.ok()) << pair.name << "\n" << r.to_text();
      const DeltaFile parsed = deserialize_delta(delta);
      EXPECT_EQ(r.in_place_safe,
                analyze_conflicts(parsed.script).in_place_safe())
          << pair.name;
    }
  }
}

// -------------------------------------------------- reports render sanely

TEST(VerifyReport, JsonCarriesVerdictFindingsAndHeader) {
  const Report r = Verifier().check(
      make_delta(conflicting_script(40, 40), true, 40, 40));
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"in_place_safe\":false"), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"write-before-read\""), std::string::npos);
  EXPECT_NE(json.find("\"command\":1"), std::string::npos);
  EXPECT_NE(json.find("\"header\":{"), std::string::npos);
  EXPECT_NE(json.find("\"in_place\":true"), std::string::npos);

  const std::string text = r.to_text();
  EXPECT_NE(text.find("in-place safe: false"), std::string::npos) << text;
  EXPECT_NE(text.find("error [write-before-read]"), std::string::npos);
}

// ------------------------------------------------- trust-boundary gates

TEST(VerifyGates, DeltaCacheRefusesUnsafeArtifacts) {
  ServiceMetrics metrics;
  const Verifier gate(VerifyOptions{.require_in_place = true});
  DeltaCache cache(1 << 20, 4, &metrics, &gate);

  const DeltaKey key{0, 1, 42};
  auto evil = std::make_shared<const Bytes>(
      make_delta(conflicting_script(40, 40), true, 40, 40));
  EXPECT_FALSE(cache.put(key, evil));
  EXPECT_EQ(cache.get(key), nullptr);
  EXPECT_EQ(cache.stats().rejected_unsafe, 1u);
  EXPECT_EQ(metrics.verify_rejects.load(), 1u);

  Rng rng(0x77);
  const Bytes ref = generate_file(rng, 8000, FileProfile::kBinary);
  const Bytes ver = mutate(ref, rng, 10);
  auto good =
      std::make_shared<const Bytes>(Pipeline().build_inplace(ref, ver).delta);
  EXPECT_TRUE(cache.put(key, good));
  EXPECT_NE(cache.get(key), nullptr);
}

class VerifyPreload : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(0x90);
    Bytes base = generate_file(rng, 16000, FileProfile::kBinary);
    Bytes next = mutate(base, rng, 12);
    store_.publish(std::move(base));
    store_.publish(std::move(next));
    service_ = std::make_unique<DeltaService>(store_, ServiceOptions{});
  }

  /// A delta whose header matches the store's endpoints exactly but
  /// whose script violates Equation 2 — the injection the verifier gate
  /// exists to stop (endpoint checks alone would admit it).
  Bytes injected_conflicting_delta() const {
    DeltaFile file;
    file.format = kVarintExplicit;
    file.in_place = true;
    file.reference_length = store_.body(0)->size();
    file.version_length = store_.body(1)->size();
    file.version_crc = store_.content_key(1).crc;
    file.script =
        conflicting_script(file.reference_length, file.version_length);
    return serialize_delta(file);
  }

  VersionStore store_;
  std::unique_ptr<DeltaService> service_;
};

TEST_F(VerifyPreload, ConflictingInjectionIsRefusedAndCounted) {
  EXPECT_FALSE(service_->preload(0, 1, injected_conflicting_delta()));
  EXPECT_EQ(service_->metrics().verify_rejects.load(), 1u);
  // Nothing poisoned: the next request builds (cache miss) and serves a
  // safe artifact that reconstructs the release.
  const ServeResult result = service_->serve(0, 1);
  EXPECT_FALSE(result.cache_hit);
  const Bytes rebuilt = apply_served(result, *store_.body(0));
  EXPECT_TRUE(test::bytes_equal(*store_.body(1), rebuilt));
}

TEST_F(VerifyPreload, WrongEndpointsAreRefusedEvenWhenSafe) {
  // Structurally perfect delta for the REVERSE hop: header lengths/crc
  // do not match (0 -> 1), so it must not be admitted for that key.
  const Bytes reversed =
      Pipeline().build_inplace(*store_.body(1), *store_.body(0)).delta;
  EXPECT_FALSE(service_->preload(0, 1, reversed));
  EXPECT_EQ(service_->metrics().verify_rejects.load(), 1u);
}

TEST_F(VerifyPreload, GenuineOfflineArtifactIsAdmittedAndServedFromCache) {
  const Bytes offline = Pipeline(service_->options().pipeline).build_inplace(*store_.body(0), *store_.body(1)).delta;
  EXPECT_TRUE(service_->preload(0, 1, offline));
  EXPECT_EQ(service_->metrics().verify_rejects.load(), 0u);
  const ServeResult result = service_->serve(0, 1);
  EXPECT_TRUE(result.cache_hit);  // no build: served the preloaded bytes
  const Bytes rebuilt = apply_served(result, *store_.body(0));
  EXPECT_TRUE(test::bytes_equal(*store_.body(1), rebuilt));
}

}  // namespace
}  // namespace ipd
