// Robustness fuzzing (deterministic): the decoders and appliers must
// never crash, hang, or read out of bounds on hostile input — every
// malformed stream is rejected with an ipd::Error, and a stream that
// *decodes* must still reconstruct only through bounds-checked paths.
#include <gtest/gtest.h>

#include "apply/apply.hpp"
#include "apply/stream_applier.hpp"
#include "core/rng.hpp"
#include "corpus/generator.hpp"
#include "corpus_gen.hpp"
#include "delta/codec.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

// The fuzz corpus and these deterministic loops grow from the same
// generator (fuzz/corpus_gen.cpp), so a container-format change shifts
// every consumer at once. The reference file is regenerated here the
// same way the generator built it.
Bytes valid_delta(std::uint64_t seed) {
  return fuzzcorpus::valid_delta(seed, 5000);
}

Bytes reference_for(std::uint64_t seed) {
  Rng rng(seed);
  return generate_file(rng, 5000, FileProfile::kBinary);
}

TEST(FuzzCodec, RandomBytesNeverCrashDeserializer) {
  Rng rng(0xF002);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.below(200));
    rng.fill(junk);
    try {
      deserialize_delta(junk);
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST(FuzzCodec, RandomBytesWithValidMagicNeverCrash) {
  Rng rng(0xF003);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(4 + rng.below(200));
    rng.fill(junk);
    junk[0] = 'I'; junk[1] = 'P'; junk[2] = 'D'; junk[3] = '1';
    try {
      deserialize_delta(junk);
    } catch (const Error&) {
    }
  }
}

TEST(FuzzCodec, SingleByteCorruptionsAlwaysRejectedOrEquivalent) {
  const Bytes delta = valid_delta(1);
  const Bytes ref = reference_for(1);
  const Bytes expected = [&] {
    Bytes buffer = ref;
    apply_delta_inplace(delta, buffer);
    return buffer;
  }();

  Rng rng(0xF004);
  for (int trial = 0; trial < 400; ++trial) {
    Bytes mutated = delta;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    Bytes buffer = ref;
    try {
      apply_delta_inplace(mutated, buffer);
      // Survived every checksum: the flip must have been semantically
      // neutral (e.g. flag byte it didn't change) — the result must
      // still be the true version.
      EXPECT_TRUE(test::bytes_equal(expected, buffer)) << "trial " << trial;
    } catch (const Error&) {
      // rejected: fine (buffer may be garbage only for streaming paths;
      // the batch applier validates before touching it)
    }
  }
}

TEST(FuzzCodec, TruncationsAlwaysRejected) {
  const Bytes delta = valid_delta(2);
  const Bytes ref = reference_for(2);
  Rng rng(0xF005);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t keep = rng.below(delta.size());
    Bytes buffer = ref;
    EXPECT_THROW(apply_delta_inplace(ByteView(delta).first(keep), buffer),
                 Error)
        << "kept " << keep;
  }
}

TEST(FuzzCodec, StreamingApplierSurvivesCorruptionUnderAnyChunking) {
  const Bytes delta = valid_delta(3);
  const Bytes ref = reference_for(3);
  Rng rng(0xF006);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = delta;
    // 1-3 corruptions.
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    Bytes buffer = ref;
    buffer.resize(std::max<std::size_t>(buffer.size(), 5000));
    const std::size_t chunk = 1 + rng.below(300);
    try {
      apply_delta_inplace_streaming(mutated, buffer, chunk);
    } catch (const Error&) {
    }
  }
}

TEST(FuzzCodec, HeaderParserNeverOverreads) {
  // try_parse_header over every prefix of a valid delta: must return
  // nullopt or a header, never throw for pure truncation.
  const Bytes delta = valid_delta(4);
  bool parsed_once = false;
  for (std::size_t keep = 0; keep <= std::min<std::size_t>(delta.size(), 64);
       ++keep) {
    const auto r = try_parse_header(ByteView(delta).first(keep));
    if (r) {
      parsed_once = true;
      EXPECT_LE(r->second, keep);
    }
  }
  EXPECT_TRUE(parsed_once);
}

TEST(FuzzCodec, StreamingDecoderChunkInvariance) {
  // The command sequence must be identical regardless of chunk sizes.
  const Bytes delta = valid_delta(5);
  const DeltaFile file = deserialize_delta(delta);

  // Re-extract the payload.
  const auto header = try_parse_header(delta);
  ASSERT_TRUE(header.has_value());
  const ByteView payload = ByteView(delta).subspan(
      header->second, static_cast<std::size_t>(header->first.payload_length));

  Rng rng(0xF007);
  for (int trial = 0; trial < 20; ++trial) {
    StreamingCommandDecoder decoder(file.format, file.version_length);
    std::vector<Command> commands;
    std::size_t pos = 0;
    while (pos < payload.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.below(97), payload.size() - pos);
      decoder.feed(payload.subspan(pos, n));
      pos += n;
      while (auto cmd = decoder.next()) {
        commands.push_back(std::move(*cmd));
      }
    }
    EXPECT_EQ(commands, file.script.commands()) << "trial " << trial;
    EXPECT_EQ(decoder.consumed(), payload.size());
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

}  // namespace
}  // namespace ipd
