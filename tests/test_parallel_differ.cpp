// Segmented parallel differencing (delta/parallel_differ.hpp): the plan
// is a pure function of content, the stitcher repairs every junction
// shape without changing a byte, and diff_parallel is byte-identical at
// every parallelism — THE determinism contract of DESIGN.md §pipeline.
#include <gtest/gtest.h>

#include <memory>

#include "apply/apply.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "core/thread_pool.hpp"
#include "delta/greedy_differ.hpp"
#include "delta/onepass_differ.hpp"
#include "delta/parallel_differ.hpp"
#include "inplace/inplace_differ.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

// Small enough that tests segment 100-200 KiB inputs many ways.
SegmentPlanOptions small_plan() {
  SegmentPlanOptions plan;
  plan.min_input = 32 << 10;
  plan.segment_bytes = 16 << 10;
  plan.align_window = 2 << 10;
  return plan;
}

Bytes versioned_pair(std::uint64_t seed, std::size_t size, Bytes* ref_out) {
  Rng rng(seed);
  *ref_out = generate_file(rng, size, FileProfile::kBinary);
  return mutate(*ref_out, rng, size / 1024 + 8);
}

// ---- plan_segments ---------------------------------------------------

TEST(PlanSegments, SmallInputIsSingleSegment) {
  const Bytes version = test::random_bytes(1, 16 << 10);
  const std::vector<std::size_t> bounds = plan_segments(version, small_plan());
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), version.size());
}

TEST(PlanSegments, CoversInputMonotonically) {
  const Bytes version = test::random_bytes(2, 160 << 10);
  const std::vector<std::size_t> bounds = plan_segments(version, small_plan());
  ASSERT_GE(bounds.size(), 3u) << "a 160 KiB input must segment";
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), version.size());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(PlanSegments, PureFunctionOfContent) {
  const Bytes version = test::random_bytes(3, 200 << 10);
  EXPECT_EQ(plan_segments(version, small_plan()),
            plan_segments(version, small_plan()));
  // Appending content must not disturb cuts chosen far from the end is
  // NOT guaranteed (count changes) — but identical content always is.
  Bytes copy = version;
  EXPECT_EQ(plan_segments(version, small_plan()),
            plan_segments(copy, small_plan()));
}

TEST(PlanSegments, ZeroSegmentBytesDisablesSegmentation) {
  SegmentPlanOptions plan = small_plan();
  plan.segment_bytes = 0;
  const Bytes version = test::random_bytes(4, 160 << 10);
  EXPECT_EQ(plan_segments(version, plan).size(), 2u);
}

// ---- stitch_segments junction repair ---------------------------------

Script one_command(Command c) {
  Script s;
  s.push(std::move(c));
  return s;
}

TEST(StitchSegments, MergesAbuttingCopies) {
  const Bytes ref = test::ramp_bytes(8);
  std::vector<Script> parts;
  parts.push_back(one_command(test::C(0, 0, 4)));
  parts.push_back(one_command(test::C(4, 0, 4)));  // segment-relative to
  const Script out = stitch_segments(std::move(parts), {0, 4, 8}, ref);
  ASSERT_EQ(out.commands().size(), 1u);
  const auto& copy = std::get<CopyCommand>(out.commands()[0]);
  EXPECT_EQ(copy.from, 0u);
  EXPECT_EQ(copy.to, 0u);
  EXPECT_EQ(copy.length, 8u);
}

TEST(StitchSegments, ConcatenatesAbuttingAdds) {
  const Bytes ref;
  std::vector<Script> parts;
  parts.push_back(one_command(test::A(0, "abcd")));
  parts.push_back(one_command(test::A(0, "efgh")));
  const Script out = stitch_segments(std::move(parts), {0, 4, 8}, ref);
  ASSERT_EQ(out.commands().size(), 1u);
  const auto& add = std::get<AddCommand>(out.commands()[0]);
  EXPECT_EQ(add.to, 0u);
  EXPECT_TRUE(test::bytes_equal(to_bytes("abcdefgh"), add.data));
}

TEST(StitchSegments, CopyAbsorbsMatchingLiteralPrefix) {
  // Segment 1 emitted a literal whose bytes continue the reference run
  // segment 0's copy ended on: the copy extends forward over them.
  const Bytes ref = to_bytes("abcdefgh");
  std::vector<Script> parts;
  parts.push_back(one_command(test::C(0, 0, 4)));
  parts.push_back(one_command(test::A(0, "efgh")));
  const Script out = stitch_segments(std::move(parts), {0, 4, 8}, ref);
  ASSERT_EQ(out.commands().size(), 1u);
  const auto& copy = std::get<CopyCommand>(out.commands()[0]);
  EXPECT_EQ(copy.length, 8u);
  EXPECT_TRUE(test::bytes_equal(ref, apply_script(out, ref)));
}

TEST(StitchSegments, CopyAbsorbsMatchingLiteralTail) {
  // Mirror image: segment 0 ended on a literal whose tail precedes the
  // reference run segment 1's copy starts on; the copy extends backward
  // and the emptied add is dropped.
  const Bytes ref = to_bytes("abcdefgh");
  std::vector<Script> parts;
  parts.push_back(one_command(test::A(0, "abcd")));
  parts.push_back(one_command(test::C(4, 0, 4)));
  const Script out = stitch_segments(std::move(parts), {0, 4, 8}, ref);
  ASSERT_EQ(out.commands().size(), 1u);
  const auto& copy = std::get<CopyCommand>(out.commands()[0]);
  EXPECT_EQ(copy.from, 0u);
  EXPECT_EQ(copy.to, 0u);
  EXPECT_EQ(copy.length, 8u);
  EXPECT_TRUE(test::bytes_equal(ref, apply_script(out, ref)));
}

TEST(StitchSegments, RepairNeverChangesBytes) {
  // Property form: stitching real per-segment scripts reconstructs the
  // version exactly and stays a valid write-order script.
  Bytes ref;
  const Bytes ver = versioned_pair(5, 96 << 10, &ref);
  const OnePassDiffer differ;
  const auto index = differ.build_index(ref);
  const std::vector<std::size_t> bounds = plan_segments(ver, small_plan());
  ASSERT_GE(bounds.size(), 3u);
  std::vector<Script> parts;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    parts.push_back(differ.scan(
        *index, ref,
        ByteView(ver).subspan(bounds[i], bounds[i + 1] - bounds[i])));
  }
  const Script out = stitch_segments(std::move(parts), bounds, ref);
  ASSERT_NO_THROW(out.validate(ref.size(), ver.size()));
  EXPECT_TRUE(out.in_write_order());
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(out, ref)));
}

// ---- diff_parallel determinism ---------------------------------------

class DiffParallelDeterminism : public ::testing::TestWithParam<DifferKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllDiffers, DiffParallelDeterminism,
    ::testing::Values(DifferKind::kGreedy, DifferKind::kOnePass,
                      DifferKind::kSuffixGreedy, DifferKind::kBlockAligned),
    [](const auto& info) {
      std::string name = differ_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(DiffParallelDeterminism, ByteIdenticalAcrossParallelism) {
  // The quadratic-era exact differ gets a smaller input so the sweep
  // stays fast; everything else diffs ~160 KiB across ~10 segments.
  const std::size_t size =
      GetParam() == DifferKind::kSuffixGreedy ? (48 << 10) : (160 << 10);
  Bytes ref;
  const Bytes ver = versioned_pair(7, size, &ref);
  const std::unique_ptr<Differ> differ = make_differ(GetParam());

  const ParallelDiffResult serial =
      diff_parallel(*differ, ref, ver, small_plan());
  ASSERT_GT(serial.segments, 1u);
  ASSERT_NO_THROW(serial.script.validate(ref.size(), ver.size()));
  EXPECT_TRUE(test::bytes_equal(ver, apply_script(serial.script, ref)));

  ThreadPool pool(8);
  for (const std::size_t parallelism : {std::size_t{2}, std::size_t{8}}) {
    const ParallelDiffResult parallel = diff_parallel(
        *differ, ref, ver, small_plan(), ParallelContext{&pool, parallelism});
    EXPECT_EQ(parallel.segments, serial.segments);
    EXPECT_EQ(parallel.script, serial.script)
        << "parallelism=" << parallelism << " diverged from serial";
  }
}

TEST(DiffParallel, NonSegmentedDifferFallsBackToSerial) {
  Bytes ref;
  const Bytes ver = versioned_pair(9, 96 << 10, &ref);
  const InplaceDiffer differ(DifferKind::kOnePass);
  ThreadPool pool(4);
  const ParallelDiffResult result = diff_parallel(
      differ, ref, ver, small_plan(), ParallelContext{&pool, 4});
  EXPECT_EQ(result.segments, 1u);
  EXPECT_EQ(result.script, differ.diff(ref, ver));
}

TEST(DiffParallel, ForeignIndexIsRejected) {
  const Bytes ref = test::random_bytes(11, 4 << 10);
  const GreedyDiffer greedy;
  const OnePassDiffer onepass;
  const auto foreign = greedy.build_index(ref);
  EXPECT_THROW(onepass.scan(*foreign, ref, ref), ValidationError);
}

// ---- one-pass parallel index build -----------------------------------

TEST(OnePassIndex, ParallelTableBuildMatchesSerial) {
  // Above kParallelIndexMinPositions the table is built from per-chunk
  // locals merged lowest-position-first — provably the serial
  // first-occurrence table. Check the bits, not just the proof.
  const Bytes ref = test::random_bytes(13, (1 << 20) + (64 << 10));
  const OnePassDiffer differ;
  const auto serial = differ.build_index(ref);
  ThreadPool pool(4);
  const auto parallel =
      differ.build_index(ref, ParallelContext{&pool, 4});
  const auto& st = dynamic_cast<const OnePassIndex&>(*serial);
  const auto& pt = dynamic_cast<const OnePassIndex&>(*parallel);
  EXPECT_EQ(st.seed, pt.seed);
  EXPECT_EQ(st.table, pt.table);
}

}  // namespace
}  // namespace ipd
