// Epoll-reactor edge cases (ctest label `net`): the situations the
// thread-per-connection front end never had to survive and the reactor
// must — a slow reader pinning its bounded output queue while other
// connections make progress, a saturated build queue answering with a
// typed ERROR{kShed} instead of a silent stall, and a client hanging up
// mid-transfer while megabytes are still queued behind a writev.
//
// Every raw connection here sets a read timeout, so a regression that
// stalls a reply fails the test with a TransportError instead of
// hanging ctest. Environments without localhost sockets GTEST_SKIP.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "apply/inplace_apply.hpp"
#include "core/checksum.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "net/delta_server.hpp"
#include "net/ota_client.hpp"
#include "net/tcp_transport.hpp"
#include "obs/histogram.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

/// A live server over an explicit release history, or skipped_ when the
/// sandbox forbids localhost sockets.
struct ReactorRig {
  VersionStore store;
  std::unique_ptr<DeltaService> service;
  std::unique_ptr<DeltaServer> server;
  std::vector<Bytes> history;
  bool skipped = false;

  ReactorRig(std::vector<Bytes> releases, const ServerConfig& net,
             const ServiceOptions& service_options = {}) {
    history = std::move(releases);
    for (const Bytes& body : history) store.publish(body);
    service = std::make_unique<DeltaService>(store, service_options);
    server = std::make_unique<DeltaServer>(*service, net);
    try {
      server->start();
    } catch (const TransportError&) {
      skipped = true;
    }
  }

  std::unique_ptr<TcpTransport> connect(int read_timeout_ms = 20'000) {
    auto t = TcpTransport::connect("127.0.0.1", server->port());
    t->set_read_timeout(read_timeout_ms);
    return t;
  }

  OtaClient::TransportFactory factory() {
    return [port = server->port()] {
      return TcpTransport::connect("127.0.0.1", port);
    };
  }
};

#define SKIP_IF_NO_SOCKETS(rig)                           \
  if ((rig).skipped) {                                    \
    GTEST_SKIP() << "localhost sockets unavailable here"; \
  }

/// v0 plus a v1 that appends a megabyte of incompressible noise: the
/// served artifact dwarfs both the per-connection queue bound and the
/// kernel's loopback socket buffering, so a reader that stops reading
/// genuinely parks the transfer server-side.
std::vector<Bytes> big_tail_history(length_t tail_bytes = 1u << 20) {
  Rng rng(91);
  const Bytes reference = generate_file(rng, 16 << 10, FileProfile::kBinary);
  Bytes version = reference;
  const Bytes tail = test::random_bytes(7, tail_bytes);
  version.insert(version.end(), tail.begin(), tail.end());
  return {reference, version};
}

/// An adjacent-hop release chain with edits heavy enough that every
/// delta build occupies the (single) build worker for real milliseconds.
std::vector<Bytes> heavy_history(std::size_t releases) {
  Rng rng(92);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, 128 << 10, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 48;
  for (std::size_t i = 1; i < releases; ++i) {
    history.push_back(mutate(history.back(), rng, 300, model));
  }
  return history;
}

void hello(FramedConnection& conn, std::uint32_t max_chunk = 4096) {
  conn.send(HelloMsg{kProtocolVersion, max_chunk});
  const std::optional<Message> ack = conn.receive();
  ASSERT_TRUE(ack && std::holds_alternative<HelloAckMsg>(*ack));
}

/// One complete BEGIN..DATA*..END transfer read off the wire, its DATA
/// payloads reassembled at their stated offsets.
struct Download {
  DeltaBeginMsg begin;
  Bytes artifact;
  DeltaEndMsg end;
  std::size_t data_frames = 0;
  bool complete = false;
};

Download drain_transfer(FramedConnection& conn, const DeltaBeginMsg& begin) {
  Download d;
  d.begin = begin;
  d.artifact.resize(begin.total_size);
  for (;;) {
    const std::optional<Message> msg = conn.receive();
    if (!msg) return d;  // peer closed; complete stays false
    if (const auto* data = std::get_if<DeltaDataMsg>(&*msg)) {
      if (data->offset + data->data.size() > d.artifact.size()) return d;
      std::copy(data->data.begin(), data->data.end(),
                d.artifact.begin() + static_cast<std::ptrdiff_t>(data->offset));
      ++d.data_frames;
      continue;
    }
    if (const auto* end = std::get_if<DeltaEndMsg>(&*msg)) {
      d.end = *end;
      d.complete = true;
      return d;
    }
    return d;  // unexpected frame; complete stays false
  }
}

/// The downloaded artifact must be exactly what the server promised
/// (size and CRC-32C) and must reconstruct `expected` from `reference`
/// bit-identically, whether it was served as a delta or a full image.
void expect_reconstructs(const Download& d, const Bytes& reference,
                         const Bytes& expected) {
  ASSERT_TRUE(d.complete) << "transfer never reached DELTA_END";
  EXPECT_EQ(d.artifact.size(), d.end.total_size);
  EXPECT_EQ(crc32c(d.artifact), d.end.artifact_crc);
  if (d.begin.full_image != 0) {
    EXPECT_TRUE(test::bytes_equal(expected, d.artifact));
    return;
  }
  Bytes buffer = reference;
  buffer.resize(std::max<std::size_t>(reference.size(),
                                      d.begin.version_length));
  const length_t n = apply_delta_inplace(d.artifact, buffer);
  ASSERT_EQ(n, expected.size());
  EXPECT_TRUE(test::bytes_equal(expected, ByteView(buffer).first(n)));
}

// ---- slow reader / bounded output queue -----------------------------

TEST(Reactor, SlowReaderIsBoundedAndNeverBlocksOtherConnections) {
  ServerConfig net;
  net.chunk_bytes = 4096;
  net.max_queued_bytes = 16u << 10;
  net.idle_timeout_ms = 60'000;  // the stalled reader must not be reaped
  ReactorRig rig(big_tail_history(), net);
  SKIP_IF_NO_SOCKETS(rig);

  // Client A requests the megabyte artifact and then stops reading
  // entirely: its output queue tops out at max_queued_bytes and the
  // transfer parks until A drains.
  auto slow = rig.connect(/*read_timeout_ms=*/60'000);
  FramedConnection a(*slow);
  hello(a);
  a.send(GetDeltaMsg{0, 1});

  // Client B completes a whole update while A is parked. If the slow
  // reader held the event loop (or unbounded memory) hostage, this
  // would stall or OOM instead of finishing.
  Bytes image = rig.history[0];
  OtaClient b(rig.factory());
  const OtaReport report = b.update_streaming(image, 0, 1);
  EXPECT_EQ(report.final_release, 1u);
  EXPECT_TRUE(test::bytes_equal(rig.history[1], image));

  // Now A wakes up and drains: nothing was lost or reordered while the
  // queue was pinned at its bound.
  const std::optional<Message> first = a.receive();
  ASSERT_TRUE(first && std::holds_alternative<DeltaBeginMsg>(*first));
  const auto begin = std::get<DeltaBeginMsg>(*first);
  ASSERT_GT(begin.total_size, 4 * net.max_queued_bytes)
      << "artifact too small to exercise backpressure";
  const Download d = drain_transfer(a, begin);
  EXPECT_GT(d.data_frames, 1u);
  expect_reconstructs(d, rig.history[0], rig.history[1]);

  // The queue-depth histogram saw the transfer, and no sample ever
  // approached artifact size: the bound (max_queued_bytes plus one
  // in-flight chunk) held. Buckets are power-of-two, so the top
  // non-empty bucket proves every sample was under 2x the cap.
  const obs::HistogramSnapshot snap =
      rig.service->histograms().net_queue_depth.snapshot();
  ASSERT_GT(snap.count, 0u);
  std::size_t top = 0;
  for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
    if (snap.buckets[b] != 0) top = b;
  }
  const std::uint64_t cap = net.max_queued_bytes + net.chunk_bytes + 512;
  EXPECT_LT(obs::Histogram::bucket_high(top), 2 * cap)
      << "a queue-depth sample escaped the max_queued_bytes bound";
}

// ---- build-queue saturation sheds with a typed ERROR ----------------

TEST(Reactor, SaturatedBuildQueueShedsTypedErrorAndConnectionSurvives) {
  ServerConfig net;
  net.max_pending_builds = 1;
  ServiceOptions service_options;
  service_options.workers = 1;
  constexpr std::size_t kClients = 6;
  ReactorRig rig(heavy_history(kClients + 1), net, service_options);
  SKIP_IF_NO_SOCKETS(rig);

  // All clients handshake first, then fire their requests back to back:
  // distinct hops, so no cache hit absorbs the burst. With one build
  // slot, the reactor admits one and must shed the rest immediately —
  // the shed reply races a multi-millisecond build it cannot win.
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<std::unique_ptr<FramedConnection>> conns;
  for (std::size_t i = 0; i < kClients; ++i) {
    transports.push_back(rig.connect());
    conns.push_back(std::make_unique<FramedConnection>(*transports.back()));
    hello(*conns[i]);
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    conns[i]->send(GetDeltaMsg{static_cast<ReleaseId>(i),
                               static_cast<ReleaseId>(i + 1)});
  }

  // Every connection must reach DELTA_END eventually, retrying its
  // request on the SAME connection after each shed: a build-queue shed
  // refuses the request, not the session.
  std::size_t sheds = 0;
  for (std::size_t i = 0; i < kClients; ++i) {
    bool done = false;
    for (int attempt = 0; attempt < 1000 && !done; ++attempt) {
      const std::optional<Message> reply = conns[i]->receive();
      ASSERT_TRUE(reply.has_value()) << "server hung up on client " << i;
      if (const auto* err = std::get_if<ErrorMsg>(&*reply)) {
        // The one typed, retryable code — never kInternal, never a
        // dropped connection, and never (the old failure mode) a
        // request silently queued for seconds.
        ASSERT_EQ(err->code, ErrorCode::kShed) << err->message;
        ++sheds;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        conns[i]->send(GetDeltaMsg{static_cast<ReleaseId>(i),
                                   static_cast<ReleaseId>(i + 1)});
        continue;
      }
      ASSERT_TRUE(std::holds_alternative<DeltaBeginMsg>(*reply));
      const Download d =
          drain_transfer(*conns[i], std::get<DeltaBeginMsg>(*reply));
      expect_reconstructs(d, rig.history[i], rig.history[i + 1]);
      done = true;
    }
    EXPECT_TRUE(done) << "client " << i << " never completed";
  }

  // The burst genuinely overflowed the one-slot queue, and every shed
  // reply is accounted for in the metric the dashboards watch.
  EXPECT_GE(sheds, 1u);
  EXPECT_EQ(rig.service->metrics().net_shed.load(), sheds);
}

// ---- client disconnect mid-writev -----------------------------------

TEST(Reactor, ClientDisconnectMidTransferIsDroppedAndServingContinues) {
  ServerConfig net;
  net.chunk_bytes = 4096;
  net.max_queued_bytes = 16u << 10;
  ReactorRig rig(big_tail_history(), net);
  SKIP_IF_NO_SOCKETS(rig);

  // Read a BEGIN and a couple of DATA frames, then hang up abruptly
  // with ~a megabyte still queued: the server's next writev fails
  // (EPIPE/ECONNRESET — and must NOT be a SIGPIPE process kill) and the
  // connection is reclaimed.
  {
    auto doomed = rig.connect();
    FramedConnection conn(*doomed);
    hello(conn);
    conn.send(GetDeltaMsg{0, 1});
    const std::optional<Message> first = conn.receive();
    ASSERT_TRUE(first && std::holds_alternative<DeltaBeginMsg>(*first));
    for (int i = 0; i < 2; ++i) {
      const std::optional<Message> data = conn.receive();
      ASSERT_TRUE(data && std::holds_alternative<DeltaDataMsg>(*data));
    }
    doomed->close();
  }

  // The reactor notices asynchronously; the half-dead connection must
  // not linger as a session forever.
  bool reclaimed = false;
  for (int i = 0; i < 500 && !reclaimed; ++i) {
    reclaimed = rig.server->active_sessions() == 0;
    if (!reclaimed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(reclaimed) << "dead connection still counted as a session";

  // And the server is none the worse for it: a fresh client completes
  // the same update bit-identically (from cache — no rebuild needed).
  Bytes image = rig.history[0];
  OtaClient client(rig.factory());
  EXPECT_EQ(client.update_streaming(image, 0, 1).final_release, 1u);
  EXPECT_TRUE(test::bytes_equal(rig.history[1], image));
}

// ---- config validation ----------------------------------------------

TEST(Reactor, ServerConfigValidationNamesTheOffendingField) {
  const auto message_of = [](ServerConfig c) -> std::string {
    try {
      c.validated();
    } catch (const ValidationError& e) {
      return e.what();
    }
    return {};
  };

  ServerConfig c;
  EXPECT_NO_THROW(c.validated());

  c = {};
  c.max_connections = 0;
  EXPECT_NE(message_of(c).find("max_connections"), std::string::npos);

  c = {};
  c.chunk_bytes = 0;
  EXPECT_NE(message_of(c).find("chunk_bytes"), std::string::npos);

  c = {};
  c.chunk_bytes = 1u << 30;  // over the frame limit
  EXPECT_NE(message_of(c).find("chunk_bytes"), std::string::npos);

  c = {};
  c.idle_timeout_ms = -1;
  EXPECT_NE(message_of(c).find("idle_timeout_ms"), std::string::npos);

  c = {};
  c.max_queued_bytes = 0;
  EXPECT_NE(message_of(c).find("max_queued_bytes"), std::string::npos);
}

}  // namespace
}  // namespace ipd
