#include "adversary/constructions.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "apply/apply.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

TEST(Fig2, ScriptIsValidAndSized) {
  for (const std::size_t depth : {2ul, 3ul, 6ul}) {
    const Fig2Instance inst = make_fig2_tree(depth);
    const std::size_t nodes = (1ul << depth) - 1;
    EXPECT_EQ(inst.script.size(), nodes);
    EXPECT_EQ(inst.leaf_count, 1ul << (depth - 1));
    ASSERT_NO_THROW(inst.script.validate(inst.reference.size(),
                                         inst.version.size()));
    EXPECT_TRUE(test::bytes_equal(inst.version,
                                  apply_script(inst.script, inst.reference)));
  }
}

TEST(Fig2, CostOrderingLeafRootInner) {
  const Fig2Instance inst = make_fig2_tree(4);
  EXPECT_LT(inst.leaf_copy_length, inst.root_copy_length);
  for (const CopyCommand& c : inst.script.copies()) {
    if (c.length != inst.leaf_copy_length &&
        c.length != inst.root_copy_length) {
      EXPECT_GT(c.length, inst.root_copy_length);
    }
  }
}

TEST(Fig2, RejectsDepthBelowTwo) {
  EXPECT_THROW(make_fig2_tree(1), ValidationError);
}

TEST(Fig3, ScriptShape) {
  const Fig3Instance inst = make_fig3_quadratic(8);
  // 8 unit copies + 7 block copies.
  EXPECT_EQ(inst.script.size(), 15u);
  EXPECT_EQ(inst.expected_edges, 56u);
  ASSERT_NO_THROW(inst.script.validate(64, 64));
  EXPECT_TRUE(test::bytes_equal(inst.version,
                                apply_script(inst.script, inst.reference)));
}

TEST(Fig3, RejectsDegenerateBlock) {
  EXPECT_THROW(make_fig3_quadratic(1), ValidationError);
}

TEST(BlockPermutation, AppliesAsPermutation) {
  const std::vector<std::uint32_t> perm = {2, 0, 1};
  const AdversaryInstance inst = make_block_permutation(10, perm);
  ASSERT_EQ(inst.reference.size(), 30u);
  // Version block i = reference block perm[i].
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(test::bytes_equal(
        ByteView(inst.reference).subspan(perm[i] * 10, 10),
        ByteView(inst.version).subspan(i * 10, 10)));
  }
}

TEST(BlockPermutation, RejectsNonPermutations) {
  EXPECT_THROW(make_block_permutation(4, std::vector<std::uint32_t>{0, 0}),
               ValidationError);
  EXPECT_THROW(make_block_permutation(4, std::vector<std::uint32_t>{0, 5}),
               ValidationError);
  EXPECT_THROW(make_block_permutation(0, std::vector<std::uint32_t>{0}),
               ValidationError);
}

TEST(Rotation, VersionIsRotated) {
  const AdversaryInstance inst = make_rotation(10, 3);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(inst.version[i], inst.reference[(i + 3) % 10]);
  }
  ASSERT_NO_THROW(inst.script.validate(10, 10));
}

TEST(Rotation, RejectsDegenerateShifts) {
  EXPECT_THROW(make_rotation(10, 0), ValidationError);
  EXPECT_THROW(make_rotation(10, 10), ValidationError);
  EXPECT_THROW(make_rotation(1, 1), ValidationError);
}

TEST(Permutations, RandomPermutationIsPermutation) {
  Rng rng(1);
  for (const std::size_t n : {0ul, 1ul, 2ul, 100ul}) {
    const auto perm = random_permutation(rng, n);
    ASSERT_EQ(perm.size(), n);
    std::set<std::uint32_t> values(perm.begin(), perm.end());
    EXPECT_EQ(values.size(), n);
    if (n > 0) {
      EXPECT_EQ(*values.begin(), 0u);
      EXPECT_EQ(*values.rbegin(), n - 1);
    }
  }
}

TEST(Permutations, SingleCycleReallyIsOneCycle) {
  const auto perm = single_cycle_permutation(7);
  std::size_t steps = 0;
  std::uint32_t at = 0;
  do {
    at = perm[at];
    ++steps;
  } while (at != 0);
  EXPECT_EQ(steps, 7u);
}

}  // namespace
}  // namespace ipd
