#include "delta/codec.hpp"

#include <gtest/gtest.h>

#include "apply/apply.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

DeltaFile make_file(Script script, length_t ref_len, DeltaFormat format) {
  DeltaFile f;
  f.format = format;
  f.reference_length = ref_len;
  f.version_length = script.version_length();
  f.version_crc = 0;  // not checked by the codec itself
  f.script = std::move(script);
  return f;
}

class CodecFormatTest : public ::testing::TestWithParam<DeltaFormat> {};

INSTANTIATE_TEST_SUITE_P(AllFormats, CodecFormatTest,
                         ::testing::Values(kPaperSequential, kPaperExplicit,
                                           kVarintSequential, kVarintExplicit),
                         [](const auto& info) {
                           std::string n = format_name(info.param);
                           for (char& c : n) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(CodecFormatTest, RoundTripWriteOrderScript) {
  const Script script =
      script_of({C(5, 0, 10), A(10, "hello"), C(0, 15, 5), A(20, "!")});
  const DeltaFile file = make_file(script, 100, GetParam());
  const Bytes wire = serialize_delta(file);
  const DeltaFile back = deserialize_delta(wire);

  EXPECT_EQ(back.format, GetParam());
  EXPECT_EQ(back.reference_length, 100u);
  EXPECT_EQ(back.version_length, 21u);
  EXPECT_EQ(back.script, script);
}

TEST_P(CodecFormatTest, RoundTripEmptyScript) {
  const DeltaFile file = make_file(Script{}, 0, GetParam());
  const DeltaFile back = deserialize_delta(serialize_delta(file));
  EXPECT_TRUE(back.script.empty());
  EXPECT_EQ(back.version_length, 0u);
}

TEST_P(CodecFormatTest, RoundTripLargeOffsets) {
  // Offsets above 2^16 and 2^32 hit the wider PaperByte field classes.
  Script script;
  script.push(CopyCommand{0x1FFFF, 0, 100});
  script.push(AddCommand{100, test::random_bytes(1, 40)});
  script.push(CopyCommand{0x1'0000'0001ull, 140, 60});
  const DeltaFile file = make_file(script, 0x2'0000'0000ull, GetParam());
  const DeltaFile back = deserialize_delta(serialize_delta(file));
  EXPECT_EQ(back.script, script);
}

TEST_P(CodecFormatTest, InPlaceFlagSurvives) {
  DeltaFile file = make_file(script_of({A(0, "ab")}), 0, GetParam());
  file.in_place = true;
  EXPECT_TRUE(deserialize_delta(serialize_delta(file)).in_place);
  file.in_place = false;
  EXPECT_FALSE(deserialize_delta(serialize_delta(file)).in_place);
}

TEST(Codec, ImplicitFormatRejectsPermutedScript) {
  // Copies out of write order — fine with explicit offsets, impossible
  // without them (the paper's core encoding observation).
  const Script permuted = script_of({C(0, 5, 5), C(5, 0, 5)});
  EXPECT_NO_THROW(
      serialize_delta(make_file(permuted, 10, kPaperExplicit)));
  EXPECT_THROW(serialize_delta(make_file(permuted, 10, kPaperSequential)),
               ValidationError);
  EXPECT_THROW(serialize_delta(make_file(permuted, 10, kVarintSequential)),
               ValidationError);
}

TEST(Codec, PaperByteSplitsLongAdds) {
  // 1000-byte add exceeds the single-byte length field; the decoder sees
  // ceil(1000/255) = 4 adds with identical total effect.
  const Bytes payload = test::random_bytes(2, 1000);
  const Script script = script_of({A(0, payload)});
  const DeltaFile back = deserialize_delta(
      serialize_delta(make_file(script, 0, kPaperExplicit)));
  EXPECT_EQ(back.script.summary().add_count, 4u);
  EXPECT_EQ(back.script.summary().added_bytes, 1000u);
  EXPECT_TRUE(test::bytes_equal(payload, apply_script(back.script, {})));
}

TEST(Codec, VarintKeepsLongAddsWhole) {
  const Script script = script_of({A(0, test::random_bytes(3, 1000))});
  const DeltaFile back = deserialize_delta(
      serialize_delta(make_file(script, 0, kVarintExplicit)));
  EXPECT_EQ(back.script.summary().add_count, 1u);
}

TEST(Codec, VarintIsSmallerThanPaperByteOnShortAdds) {
  // The paper attributes its encoding loss to the byte codewords; the
  // varint redesign should beat them on add-heavy scripts.
  Script script;
  offset_t to = 0;
  for (int i = 0; i < 100; ++i) {
    script.push(AddCommand{to, test::random_bytes(i, 10)});
    to += 10;
  }
  const std::size_t paper =
      serialize_delta(make_file(script, 0, kPaperExplicit)).size();
  const std::size_t varint =
      serialize_delta(make_file(script, 0, kVarintExplicit)).size();
  EXPECT_LT(varint, paper);
}

TEST(Codec, ExplicitOffsetsCostMoreThanImplicit) {
  // Table 1's "encoding loss": same script, same codewords, the only
  // difference is carrying write offsets.
  Script script;
  offset_t to = 0;
  for (int i = 0; i < 50; ++i) {
    script.push(CopyCommand{static_cast<offset_t>(i * 100), to, 30});
    to += 30;
    script.push(AddCommand{to, test::random_bytes(i, 5)});
    to += 5;
  }
  const std::size_t implicit =
      serialize_delta(make_file(script, 10000, kPaperSequential)).size();
  const std::size_t explicit_size =
      serialize_delta(make_file(script, 10000, kPaperExplicit)).size();
  EXPECT_LT(implicit, explicit_size);
}

TEST(Codec, RejectsBadMagic) {
  Bytes wire = serialize_delta(make_file(script_of({A(0, "x")}), 0,
                                         kPaperExplicit));
  wire[0] = 'X';
  EXPECT_THROW(deserialize_delta(wire), FormatError);
}

TEST(Codec, RejectsUnknownFormatByte) {
  Bytes wire = serialize_delta(make_file(script_of({A(0, "x")}), 0,
                                         kPaperExplicit));
  wire[4] = 0xFF;
  EXPECT_THROW(deserialize_delta(wire), FormatError);
}

TEST(Codec, RejectsUnknownFlags) {
  Bytes wire = serialize_delta(make_file(script_of({A(0, "x")}), 0,
                                         kPaperExplicit));
  wire[5] = 0x80;
  EXPECT_THROW(deserialize_delta(wire), FormatError);
}

TEST(Codec, RejectsCorruptPayload) {
  Bytes wire = serialize_delta(make_file(script_of({A(0, "hello")}), 0,
                                         kPaperExplicit));
  wire.back() ^= 0x01;  // flip a payload byte -> adler mismatch
  EXPECT_THROW(deserialize_delta(wire), FormatError);
}

TEST(Codec, RejectsTruncation) {
  const Bytes wire = serialize_delta(make_file(script_of({A(0, "hello")}), 0,
                                               kPaperExplicit));
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    EXPECT_THROW(deserialize_delta(ByteView(wire).first(keep)), FormatError)
        << "kept " << keep << " of " << wire.size();
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  Bytes wire = serialize_delta(make_file(script_of({A(0, "x")}), 0,
                                         kPaperExplicit));
  wire.push_back(0);
  EXPECT_THROW(deserialize_delta(wire), FormatError);
}

TEST(Codec, RejectsScriptViolations) {
  // Payload decodes but the script reads past the declared reference.
  const Script script = script_of({C(80, 0, 20)});
  const Bytes wire =
      serialize_delta(make_file(script, /*ref_len=*/100, kPaperExplicit));
  // Same commands, smaller declared reference.
  DeltaFile f = make_file(script, /*ref_len=*/50, kPaperExplicit);
  EXPECT_THROW(deserialize_delta(serialize_delta(f)), ValidationError);
  EXPECT_NO_THROW(deserialize_delta(wire));
}

TEST_P(CodecFormatTest, CompressedPayloadRoundTrips) {
  // Compressible script: repetitive add data plus a run of copies.
  Script script;
  offset_t to = 0;
  for (int i = 0; i < 20; ++i) {
    script.push(CopyCommand{static_cast<offset_t>(i * 64), to, 32});
    to += 32;
    script.push(AddCommand{to, Bytes(100, static_cast<std::uint8_t>(i))});
    to += 100;
  }
  DeltaFile file = make_file(script, 4096, GetParam());
  file.compress_payload = true;
  const Bytes compressed_wire = serialize_delta(file);
  file.compress_payload = false;
  const Bytes plain_wire = serialize_delta(file);

  EXPECT_LT(compressed_wire.size(), plain_wire.size());
  const DeltaFile back = deserialize_delta(compressed_wire);
  EXPECT_TRUE(back.compress_payload);
  EXPECT_EQ(back.script, script);
}

TEST_P(CodecFormatTest, CompressedEmptyScript) {
  DeltaFile file = make_file(Script{}, 0, GetParam());
  file.compress_payload = true;
  const DeltaFile back = deserialize_delta(serialize_delta(file));
  EXPECT_TRUE(back.script.empty());
}

TEST(Codec, CompressionAutoFallbackNeverGrowsFile) {
  // Incompressible payload: requesting compression must not add a byte.
  Script script;
  script.push(AddCommand{0, test::random_bytes(77, 3000)});
  DeltaFile file = make_file(script, 0, kVarintExplicit);
  const std::size_t plain_size = serialize_delta(file).size();
  file.compress_payload = true;
  const Bytes wire = serialize_delta(file);
  EXPECT_EQ(wire.size(), plain_size);
  const DeltaFile back = deserialize_delta(wire);
  EXPECT_FALSE(back.compress_payload);  // fallback reflected on the wire
  EXPECT_EQ(back.script, script);
}

TEST(Codec, CompressedCorruptionRejected) {
  Script script;
  script.push(AddCommand{0, Bytes(1000, 7)});
  DeltaFile file = make_file(script, 0, kVarintExplicit);
  file.compress_payload = true;
  Bytes wire = serialize_delta(file);
  for (const std::size_t at : {5ul, wire.size() / 2, wire.size() - 1}) {
    Bytes bad = wire;
    bad[at] ^= 0x08;
    EXPECT_THROW(deserialize_delta(bad), Error) << "at " << at;
  }
}

TEST(Codec, HeaderReportsCompressedAndUncompressedSizes) {
  Script script;
  script.push(AddCommand{0, Bytes(5000, 9)});
  DeltaFile file = make_file(script, 0, kVarintExplicit);
  file.compress_payload = true;
  const Bytes wire = serialize_delta(file);
  const auto header = try_parse_header(wire);
  ASSERT_TRUE(header.has_value());
  EXPECT_TRUE(header->first.compress_payload);
  EXPECT_LT(header->first.payload_length, header->first.payload_uncompressed);
  // Uncompressed size equals the plain payload's length.
  file.compress_payload = false;
  const auto plain_header = try_parse_header(serialize_delta(file));
  ASSERT_TRUE(plain_header.has_value());
  EXPECT_EQ(header->first.payload_uncompressed,
            plain_header->first.payload_length);
}

TEST(Codec, FormatNames) {
  EXPECT_STREQ(format_name(kPaperSequential), "paper/no-write-offsets");
  EXPECT_STREQ(format_name(kPaperExplicit), "paper/write-offsets");
  EXPECT_STREQ(format_name(kVarintSequential), "varint/no-write-offsets");
  EXPECT_STREQ(format_name(kVarintExplicit), "varint/write-offsets");
}

}  // namespace
}  // namespace ipd
