#include "inplace/interval_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace ipd {
namespace {

std::vector<CopyCommand> make_copies(
    std::initializer_list<std::pair<offset_t, length_t>> writes) {
  std::vector<CopyCommand> out;
  for (const auto& [to, len] : writes) {
    out.push_back(CopyCommand{0, to, len});
  }
  return out;
}

TEST(IntervalIndex, EmptySet) {
  const IntervalIndex index({});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.overlapping({0, 100}).empty());
}

TEST(IntervalIndex, SingleInterval) {
  const IntervalIndex index(make_copies({{10, 5}}));  // [10,14]
  EXPECT_TRUE(index.overlapping({0, 9}).empty());
  EXPECT_TRUE(index.overlapping({15, 20}).empty());
  EXPECT_EQ(index.overlapping({0, 10}).size(), 1u);
  EXPECT_EQ(index.overlapping({14, 14}).size(), 1u);
  EXPECT_EQ(index.overlapping({12, 13}).size(), 1u);
}

TEST(IntervalIndex, FindsContiguousRun) {
  // [0,9] [10,19] [20,29] [40,49]
  const IntervalIndex index(make_copies({{0, 10}, {10, 10}, {20, 10},
                                         {40, 10}}));
  const auto hits = index.overlapping({5, 22});
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
  EXPECT_EQ(hits[2], 2u);
  EXPECT_EQ(index.overlapping({30, 39}).size(), 0u);  // falls in the gap
  EXPECT_EQ(index.overlapping({30, 45}).size(), 1u);
}

TEST(IntervalIndex, QueryCoveringEverything) {
  const IntervalIndex index(make_copies({{0, 10}, {10, 10}, {25, 5}}));
  EXPECT_EQ(index.overlapping({0, 1000}).size(), 3u);
}

TEST(IntervalIndex, RejectsUnsortedInput) {
  EXPECT_THROW(IntervalIndex(make_copies({{10, 5}, {0, 5}})),
               ValidationError);
}

TEST(IntervalIndex, RejectsOverlappingWrites) {
  EXPECT_THROW(IntervalIndex(make_copies({{0, 10}, {5, 10}})),
               ValidationError);
}

TEST(IntervalIndex, RejectsZeroLength) {
  EXPECT_THROW(IntervalIndex({CopyCommand{0, 0, 0}}), ValidationError);
}

TEST(IntervalIndex, MatchesBruteForceOnRandomLayout) {
  Rng rng(77);
  std::vector<CopyCommand> copies;
  offset_t cursor = 0;
  for (int i = 0; i < 200; ++i) {
    cursor += rng.below(20);  // random gaps
    const length_t len = rng.range(1, 30);
    copies.push_back(CopyCommand{0, cursor, len});
    cursor += len;
  }
  const IntervalIndex index(copies);

  for (int q = 0; q < 500; ++q) {
    const offset_t first = rng.below(cursor + 50);
    const Interval query{first, first + rng.below(100)};
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < copies.size(); ++i) {
      if (copies[i].write_interval().intersects(query)) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(index.overlapping(query), expected);
  }
}

TEST(IntervalIndex, ForEachEarlyTermination) {
  const IntervalIndex index(make_copies({{0, 10}, {10, 10}, {20, 10}}));
  int count = 0;
  index.for_each_overlapping({0, 100}, [&](std::uint32_t) { ++count; });
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace ipd
