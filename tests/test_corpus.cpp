#include <gtest/gtest.h>

#include <set>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "corpus/workload.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

TEST(Generator, ProducesRequestedSize) {
  Rng rng(1);
  for (const length_t size : {0ull, 1ull, 100ull, 65536ull}) {
    EXPECT_EQ(generate_file(rng, size, FileProfile::kText).size(), size);
    EXPECT_EQ(generate_file(rng, size, FileProfile::kBinary).size(), size);
  }
}

TEST(Generator, DeterministicForSeed) {
  Rng a(5), b(5);
  EXPECT_EQ(generate_file(a, 10000, FileProfile::kText),
            generate_file(b, 10000, FileProfile::kText));
}

TEST(Generator, TextProfileIsPrintableAndRepetitive) {
  Rng rng(2);
  const Bytes text = generate_file(rng, 50000, FileProfile::kText);
  std::size_t printable = 0;
  for (const std::uint8_t b : text) {
    if (b == '\n' || (b >= 0x20 && b < 0x7F)) ++printable;
  }
  EXPECT_EQ(printable, text.size());
  // Token reuse: noticeably fewer distinct 8-grams than samples (random
  // bytes would make essentially all of them unique).
  std::set<std::string> grams;
  std::size_t samples = 0;
  for (std::size_t i = 0; i + 8 <= text.size(); i += 8, ++samples) {
    grams.insert(std::string(text.begin() + i, text.begin() + i + 8));
  }
  EXPECT_LT(grams.size(), samples * 9 / 10);
}

TEST(Generator, BinaryProfileHasZerosAndHighBytes) {
  Rng rng(3);
  const Bytes bin = generate_file(rng, 50000, FileProfile::kBinary);
  EXPECT_GT(std::count(bin.begin(), bin.end(), 0), 100);
  EXPECT_GT(std::count_if(bin.begin(), bin.end(),
                          [](std::uint8_t b) { return b >= 0x80; }),
            1000);
}

TEST(Generator, RecordsProfileIsRecordStructured) {
  Rng rng(4);
  const Bytes records = generate_file(rng, 64 * kRecordSize,
                                      FileProfile::kRecords);
  ASSERT_EQ(records.size(), 64 * kRecordSize);
  // Keys ascend record to record.
  std::uint64_t prev_key = 0;
  for (std::size_t r = 0; r < 64; ++r) {
    std::uint64_t key = 0;
    for (int i = 7; i >= 0; --i) {
      key = (key << 8) | records[r * kRecordSize + static_cast<std::size_t>(i)];
    }
    if (r > 0) {
      EXPECT_EQ(key, prev_key + 1) << "record " << r;
    }
    prev_key = key;
  }
}

TEST(Generator, RecordAlignedMutationsPreserveLength) {
  Rng rng(5);
  const Bytes base = generate_file(rng, 100 * kRecordSize,
                                   FileProfile::kRecords);
  const Bytes mutated = mutate(base, rng, 30, record_aligned_model());
  EXPECT_EQ(mutated.size(), base.size());
  EXPECT_FALSE(test::bytes_equal(base, mutated));
  // Most records must survive untouched (edits are localized).
  std::size_t identical = 0;
  for (std::size_t r = 0; r < 100; ++r) {
    if (std::equal(base.begin() + r * kRecordSize,
                   base.begin() + (r + 1) * kRecordSize,
                   mutated.begin() + r * kRecordSize)) {
      ++identical;
    }
  }
  EXPECT_GT(identical, 30u);
}

TEST(Mutation, InsertGrowsFile) {
  const Bytes base = test::random_bytes(1, 1000);
  const Mutation m{MutationKind::kInsert, 500, 100, 0, 7};
  EXPECT_EQ(apply_mutation(base, m).size(), 1100u);
}

TEST(Mutation, DeleteShrinksFile) {
  const Bytes base = test::random_bytes(2, 1000);
  const Mutation m{MutationKind::kDelete, 500, 100, 0, 0};
  const Bytes out = apply_mutation(base, m);
  EXPECT_EQ(out.size(), 900u);
  // Prefix and suffix survive.
  EXPECT_TRUE(test::bytes_equal(ByteView(base).first(500),
                                ByteView(out).first(500)));
  EXPECT_TRUE(test::bytes_equal(ByteView(base).subspan(600),
                                ByteView(out).subspan(500)));
}

TEST(Mutation, ReplaceKeepsLength) {
  const Bytes base = test::random_bytes(3, 1000);
  const Mutation m{MutationKind::kReplace, 100, 50, 0, 9};
  const Bytes out = apply_mutation(base, m);
  EXPECT_EQ(out.size(), base.size());
  EXPECT_FALSE(test::bytes_equal(base, out));
}

TEST(Mutation, MovePreservesMultiset) {
  const Bytes base = test::random_bytes(4, 400);
  const Mutation m{MutationKind::kMoveBlock, 100, 50, 300, 0};
  const Bytes out = apply_mutation(base, m);
  EXPECT_EQ(out.size(), base.size());
  Bytes a = base, b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_TRUE(test::bytes_equal(a, b));
}

TEST(Mutation, DuplicateGrowsByBlock) {
  const Bytes base = test::random_bytes(5, 400);
  const Mutation m{MutationKind::kDuplicateBlock, 100, 50, 200, 0};
  EXPECT_EQ(apply_mutation(base, m).size(), 450u);
}

TEST(Mutation, TweakChangesFewBytes) {
  const Bytes base = test::random_bytes(6, 1000);
  const Mutation m{MutationKind::kByteTweak, 0, 8, 0, 77};
  const Bytes out = apply_mutation(base, m);
  ASSERT_EQ(out.size(), base.size());
  std::size_t diff = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i] != out[i]) ++diff;
  }
  EXPECT_GE(diff, 1u);
  EXPECT_LE(diff, 8u);
}

TEST(Mutation, ClampsOutOfRangeOffsets) {
  const Bytes base = test::random_bytes(7, 100);
  for (const MutationKind kind :
       {MutationKind::kDelete, MutationKind::kReplace,
        MutationKind::kMoveBlock, MutationKind::kDuplicateBlock}) {
    const Mutation m{kind, 5000, 50, 9999, 3};
    EXPECT_NO_THROW(apply_mutation(base, m)) << mutation_name(kind);
  }
}

TEST(Mutation, EmptyInputHandled) {
  const Mutation ins{MutationKind::kInsert, 0, 10, 0, 1};
  EXPECT_EQ(apply_mutation({}, ins).size(), 10u);
  const Mutation del{MutationKind::kDelete, 0, 10, 0, 0};
  EXPECT_TRUE(apply_mutation({}, del).empty());
}

TEST(Mutation, MutateAppliesRequestedCount) {
  Rng rng(8);
  const Bytes base = test::random_bytes(9, 10000);
  const Bytes out = mutate(base, rng, 20);
  EXPECT_FALSE(test::bytes_equal(base, out));
  // Versions stay similar in size (edits are bounded fractions).
  EXPECT_GT(out.size(), base.size() / 2);
  EXPECT_LT(out.size(), base.size() * 2);
}

TEST(Workload, StandardCorpusShape) {
  CorpusOptions options;
  options.packages = 4;
  options.releases_per_package = 3;
  options.min_file_size = 1 << 10;
  options.max_file_size = 8 << 10;
  const auto pairs = standard_corpus(options);
  EXPECT_EQ(pairs.size(), 4u * 2u);
  for (const VersionPair& p : pairs) {
    EXPECT_FALSE(p.reference.empty());
    EXPECT_FALSE(p.version.empty());
    EXPECT_FALSE(test::bytes_equal(p.reference, p.version));
    EXPECT_FALSE(p.name.empty());
  }
}

TEST(Workload, ConsecutiveReleasesChain) {
  CorpusOptions options;
  options.packages = 1;
  options.releases_per_package = 4;
  options.min_file_size = 1 << 10;
  options.max_file_size = 2 << 10;
  const auto pairs = standard_corpus(options);
  ASSERT_EQ(pairs.size(), 3u);
  // v(n)'s version is v(n+1)'s reference.
  EXPECT_TRUE(test::bytes_equal(pairs[0].version, pairs[1].reference));
  EXPECT_TRUE(test::bytes_equal(pairs[1].version, pairs[2].reference));
}

TEST(Workload, DeterministicInSeed) {
  const auto a = small_corpus(42);
  const auto b = small_corpus(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(test::bytes_equal(a[i].reference, b[i].reference));
    EXPECT_TRUE(test::bytes_equal(a[i].version, b[i].version));
  }
  const auto c = small_corpus(43);
  EXPECT_FALSE(test::bytes_equal(a[0].reference, c[0].reference));
}

TEST(Workload, MixesProfiles) {
  const auto pairs = small_corpus();
  bool text = false, binary = false;
  for (const VersionPair& p : pairs) {
    text |= p.profile == FileProfile::kText;
    binary |= p.profile == FileProfile::kBinary;
  }
  EXPECT_TRUE(text);
  EXPECT_TRUE(binary);
}

}  // namespace
}  // namespace ipd
