#include "core/checksum.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace ipd {
namespace {

using test::random_bytes;

TEST(Adler32, KnownVectors) {
  // RFC 1950 initial value: empty input hashes to 1.
  EXPECT_EQ(adler32(ByteView{}), 1u);
  // "Wikipedia" is the classic reference vector.
  const Bytes wiki = to_bytes("Wikipedia");
  EXPECT_EQ(adler32(wiki), 0x11E60398u);
}

TEST(Adler32, DetectsSingleByteChange) {
  Bytes data = random_bytes(1, 4096);
  const std::uint32_t before = adler32(data);
  data[2048] ^= 1;
  EXPECT_NE(adler32(data), before);
}

TEST(Adler32, LargeInputExercisesDeferredModulo) {
  // > 5552 bytes forces the chunked modulo path.
  const Bytes data(100000, 0xFF);
  const std::uint32_t fast = adler32(data);
  // Naive reference computation.
  std::uint32_t a = 1, b = 0;
  for (const std::uint8_t byte : data) {
    a = (a + byte) % 65521;
    b = (b + a) % 65521;
  }
  EXPECT_EQ(fast, (b << 16) | a);
}

TEST(Adler32, SeedChainsAcrossChunks) {
  const Bytes data = random_bytes(2, 1000);
  const std::uint32_t whole = adler32(data);
  const std::uint32_t part1 = adler32(ByteView(data).first(400));
  const std::uint32_t chained = adler32(ByteView(data).subspan(400), part1);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(crc32c(ByteView{}), 0u);
  // RFC 3720 test vector: 32 bytes of zeros.
  const Bytes zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  // RFC 3720: 32 bytes of 0xFF.
  const Bytes ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
  // "123456789" — the classic check value for CRC-32C is 0xE3069283.
  EXPECT_EQ(crc32c(to_bytes("123456789")), 0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const Bytes data = random_bytes(3, 10000);
  Crc32c crc;
  std::size_t pos = 0;
  Rng rng(4);
  while (pos < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(rng.range(1, 700), data.size() - pos);
    crc.update(ByteView(data).subspan(pos, n));
    pos += n;
  }
  EXPECT_EQ(crc.value(), crc32c(data));
}

TEST(Crc32c, ResetStartsFresh) {
  Crc32c crc;
  crc.update(to_bytes("junk"));
  crc.reset();
  crc.update(to_bytes("123456789"));
  EXPECT_EQ(crc.value(), 0xE3069283u);
}

TEST(Crc32c, OrderSensitive) {
  const Bytes ab = to_bytes("ab");
  const Bytes ba = to_bytes("ba");
  EXPECT_NE(crc32c(ab), crc32c(ba));
}

}  // namespace
}  // namespace ipd
