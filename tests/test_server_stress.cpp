// Multi-threaded stress tests for the delta distribution service —
// many client threads, few distinct (from, to) pairs, so every
// concurrency guard (sharded cache, singleflight, worker pool, planner
// mutex) gets hammered on purpose. Labeled `stress` in CTest; run under
// IPDELTA_SANITIZE=thread to race-test (see README).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "server/delta_service.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

// Small bodies keep each build cheap: the point is contention volume,
// not differencer throughput (TSan slows everything ~10x).
std::vector<Bytes> make_history(std::size_t releases, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> history;
  history.push_back(generate_file(rng, 8 << 10, FileProfile::kBinary));
  MutationModel model;
  model.length_scale = 32;
  for (std::size_t i = 1; i < releases; ++i) {
    history.push_back(mutate(history.back(), rng, 15, model));
  }
  return history;
}

void publish_all(VersionStore& store, const std::vector<Bytes>& history) {
  for (const Bytes& body : history) store.publish(body);
}

TEST(ServerStress, FewPairsManyThreadsBuildExactlyOnce) {
  const auto history = make_history(5, 101);
  VersionStore store;
  publish_all(store, history);
  ServiceOptions options;
  options.cache_budget = 32 << 20;  // ample: nothing evicts
  options.workers = 4;
  DeltaService service(store, options);

  // 16 threads hammer 4 distinct adjacent pairs, 64 serves each.
  constexpr std::size_t kThreads = 16;
  constexpr std::size_t kServesPerThread = 64;
  const std::vector<std::pair<ReleaseId, ReleaseId>> pairs = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}};

  // Reference artifacts, built independently of the service.
  std::vector<Bytes> expected;
  for (const auto& [from, to] : pairs) {
    expected.push_back(
        Pipeline(options.pipeline).build_inplace(history[from], history[to]).delta);
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kServesPerThread; ++i) {
        const std::size_t p = (t + i) % pairs.size();
        const ServeResult result =
            service.serve(pairs[p].first, pairs[p].second);
        if (result.steps.size() != 1 || result.steps[0].full_image ||
            result.steps[0].bytes == nullptr ||
            *result.steps[0].bytes != expected[p]) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Bit-identical with a direct Pipeline::build_inplace on every serve.
  EXPECT_EQ(mismatches.load(), 0u);

  const ServiceMetrics& m = service.metrics();
  EXPECT_EQ(m.requests.load(), kThreads * kServesPerThread);
  // Exactly-once builds: one per distinct pair, no matter the contention
  // (singleflight + double-check; the budget guarantees no eviction).
  EXPECT_EQ(m.builds.load(), pairs.size());
  EXPECT_EQ(m.evictions.load(), 0u);
  // Every request resolves exactly one way: a cache hit (first lookup or
  // the leader's double-check), a coalesced wait, or a build.
  EXPECT_EQ(m.cache_hits.load() + m.coalesced_waits.load() + m.builds.load(),
            m.requests.load());
}

TEST(ServerStress, ByteBudgetHoldsUnderConcurrentEviction) {
  const auto history = make_history(8, 202);
  VersionStore store;
  publish_all(store, history);
  ServiceOptions options;
  // A budget sized to hold only a few artifacts forces constant eviction
  // while 8 threads cycle through every (from, to) pair.
  options.cache_budget = 8 << 10;
  options.cache_shards = 4;
  options.workers = 2;
  DeltaService service(store, options);

  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> failures{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (std::size_t i = 0; i < 24; ++i) {
        const ReleaseId from =
            static_cast<ReleaseId>(rng.below(history.size() - 1));
        const ReleaseId to =
            from + 1 +
            static_cast<ReleaseId>(rng.below(history.size() - 1 - from));
        const ServeResult result = service.serve(from, to);
        const Bytes reconstructed = apply_served(result, history[from]);
        if (!(reconstructed == history[to])) ++failures;
        // The budget is a hard cap at every instant we can observe.
        if (service.cache().stats().bytes_held > options.cache_budget) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  const DeltaCache::Stats stats = service.cache().stats();
  EXPECT_LE(stats.bytes_held, options.cache_budget);
  // The tiny budget genuinely churned (else this test proves nothing).
  EXPECT_GT(stats.evictions + stats.rejected, 0u);
}

TEST(ServerStress, MixedPairsReconstructBitIdenticalUnderLoad) {
  const auto history = make_history(6, 303);
  VersionStore store;
  publish_all(store, history);
  ServiceOptions options;
  options.workers = 4;
  DeltaService service(store, options);

  constexpr std::size_t kThreads = 12;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7000 + t);
      for (std::size_t i = 0; i < 20; ++i) {
        const ReleaseId from =
            static_cast<ReleaseId>(rng.below(history.size() - 1));
        const ReleaseId to =
            from + 1 +
            static_cast<ReleaseId>(rng.below(history.size() - 1 - from));
        const ServeResult result = service.serve(from, to);
        if (!(apply_served(result, history[from]) == history[to])) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(service.metrics().requests.load(), kThreads * 20);
}

}  // namespace
}  // namespace ipd
