// Campaign simulator acceptance (ctest label `campaign`): wave planning
// units, a clean fleet, the 500-device deterministic campaign with
// flaky links AND power cuts at arbitrary apply offsets (the PR's
// zero-brick acceptance gate at test scale), and the abort-on-failure
// rollout gate.
#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include "campaign/rollout.hpp"

namespace ipd {
namespace {

TEST(PlanWaves, CanaryRampOverAFleet) {
  const std::vector<std::size_t> waves =
      plan_waves(500, {0.01, 0.10, 0.50, 1.00});
  EXPECT_EQ(waves, (std::vector<std::size_t>{5, 50, 250, 500}));
}

TEST(PlanWaves, DegeneratesToOneWave) {
  EXPECT_EQ(plan_waves(42, {}), std::vector<std::size_t>{42});
  EXPECT_TRUE(plan_waves(0, {0.5, 1.0}).empty());
  EXPECT_EQ(plan_waves(1, {0.01, 0.5, 1.0}), std::vector<std::size_t>{1});
}

TEST(PlanWaves, TinyFleetStaysStrictlyIncreasing) {
  // Four fractions over three devices: every wave must add at least one
  // device, equal-rounding waves collapse, and the ramp ends at fleet.
  const std::vector<std::size_t> waves =
      plan_waves(3, {0.01, 0.10, 0.50, 1.00});
  EXPECT_EQ(waves, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(PlanWaves, FinalFractionBelowOneStillCoversTheFleet) {
  const std::vector<std::size_t> waves = plan_waves(100, {0.10, 0.50});
  EXPECT_EQ(waves, (std::vector<std::size_t>{10, 50, 100}));
}

TEST(PlanWaves, RejectsBadFractions) {
  EXPECT_THROW(plan_waves(10, {0.0, 1.0}), ValidationError);
  EXPECT_THROW(plan_waves(10, {1.5}), ValidationError);
  EXPECT_THROW(plan_waves(10, {0.5, 0.2}), ValidationError);
  EXPECT_THROW(plan_waves(10, {-0.1, 1.0}), ValidationError);
}

TEST(Campaign, RejectsNonsenseOptions) {
  CampaignOptions o;
  o.releases = 1;
  EXPECT_THROW(run_campaign(o), ValidationError);
  o.releases = 2;
  o.drop_rate = 1.5;
  EXPECT_THROW(run_campaign(o), ValidationError);
}

TEST(Campaign, CleanFleetConvergesEverywhere) {
  CampaignOptions o;
  o.devices = 40;
  o.releases = 3;
  o.image_bytes = 12u << 10;
  o.seed = 11;
  o.staged_fraction = 0.25;
  const CampaignReport report = run_campaign(o);
  EXPECT_EQ(report.updated, 40u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.bricked, 0u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_FALSE(report.aborted);
  EXPECT_GE(report.hops, 40u);
  EXPECT_GT(report.staged_devices, 0u);
  EXPECT_GT(report.bytes_received, 0u);
  // The whole fleet shares the server's delta cache: far fewer builds
  // than sessions.
  EXPECT_GT(report.server_sessions, 0u);
  EXPECT_GT(report.server_cache_hits, report.server_builds);
  EXPECT_EQ(report.device_update_ns.count, 40u);
  // Report plumbing: both renderings carry the headline numbers.
  EXPECT_NE(report.render().find("bricked 0"), std::string::npos);
  EXPECT_NE(report.json().find("\"bricked\":0"), std::string::npos);
}

TEST(Campaign, FiveHundredDevicesWithFaultsAndPowerCutsZeroBricks) {
  // The PR's acceptance property at test scale: flaky links, power cuts
  // at arbitrary apply offsets on a third of the fleet, a staged-path
  // minority — and every single device converges with zero bricks,
  // deterministically from the seed.
  CampaignOptions o;
  o.devices = 500;
  o.releases = 4;
  o.image_bytes = 12u << 10;
  o.seed = 20260809;
  o.drop_rate = 0.02;
  o.truncate_rate = 0.02;
  o.flip_rate = 0.02;
  // Loopback links batch aggressively: one read can drain a whole queued
  // response, so a connection may be as few as four transport ops. Keep
  // only the HELLO write fault-free or the faults barely get a turn.
  o.grace_ops = 1;
  o.power_cut_rate = 0.3;
  o.max_power_cuts = 2;
  o.staged_fraction = 0.2;
  o.client.max_attempts = 64;
  o.rollout.max_concurrency = 8;
  const CampaignReport report = run_campaign(o);
  EXPECT_EQ(report.updated, 500u) << report.render();
  EXPECT_EQ(report.failed, 0u) << report.render();
  EXPECT_EQ(report.bricked, 0u) << report.render();
  EXPECT_FALSE(report.aborted);
  // The chaos actually happened.
  EXPECT_GT(report.link_faults, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(report.resumes, 0u);
  EXPECT_GT(report.reboots, 0u);
  EXPECT_GT(report.staged_devices, 0u);
  EXPECT_EQ(report.waves.back(), 500u);
}

TEST(Campaign, AbortGateStopsTheRampAndStrandsNobody) {
  // Every link is dead on arrival: the canary wave fails outright and
  // the rollout must stop there — with every device, attempted or not,
  // still holding a bootable release.
  CampaignOptions o;
  o.devices = 60;
  o.releases = 2;
  o.image_bytes = 8u << 10;
  o.seed = 5;
  o.drop_rate = 1.0;
  o.grace_ops = 0;
  o.client.max_attempts = 2;
  o.rollout.waves = {0.1, 0.5, 1.0};
  o.rollout.min_failures_to_abort = 3;
  o.rollout.abort_failure_rate = 0.5;
  o.rollout.max_attempts_per_device = 2;
  const CampaignReport report = run_campaign(o);
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.attempted, 6u);
  EXPECT_EQ(report.failed, 6u);
  EXPECT_EQ(report.skipped, 54u);
  EXPECT_EQ(report.updated, 0u);
  EXPECT_EQ(report.bricked, 0u) << "a dead link must never brick a device";
  EXPECT_NE(report.json().find("\"aborted\":true"), std::string::npos);
}

// ---- SLO layer ------------------------------------------------------

TEST(Slo, BurnRateMeasuresBudgetConsumption) {
  SloSpec spec;
  spec.target_success_rate = 0.99;  // 1% error budget
  WaveHealth w;
  w.wave = 1;
  w.attempted = 100;
  w.failed = 2;
  // 2% failures against a 1% budget: burning 2x.
  EXPECT_DOUBLE_EQ(w.failure_rate(), 0.02);
  EXPECT_NEAR(w.burn_rate(spec), 2.0, 1e-9);
  // A zero-budget SLO with any failure burns "infinitely".
  spec.target_success_rate = 1.0;
  EXPECT_GE(w.burn_rate(spec), 1e9);
  w.failed = 0;
  EXPECT_DOUBLE_EQ(w.burn_rate(spec), 0.0);
}

TEST(Slo, EvaluationSkipsSmallWavesAndRejectsBadSpecs) {
  SloSpec spec;
  spec.enabled = true;
  spec.min_attempts = 20;
  WaveHealth tiny;
  tiny.attempted = 5;
  tiny.failed = 5;  // 100% failure, but too small to judge
  const SloEval eval = evaluate_slo(spec, tiny);
  EXPECT_FALSE(eval.evaluated);
  EXPECT_FALSE(eval.breached);

  SloSpec bad = spec;
  bad.target_success_rate = 0.0;
  EXPECT_THROW(bad.validate(), ValidationError);
  bad.target_success_rate = 1.5;
  EXPECT_THROW(bad.validate(), ValidationError);
  bad = spec;
  bad.max_burn_rate = 0.0;
  EXPECT_THROW(bad.validate(), ValidationError);
}

TEST(Campaign, SloBurnRateBreachAbortsTheRamp) {
  // Dead links, flat-rate gate effectively off: only the SLO burn-rate
  // gate can stop this rollout — and it must, at the first judged wave.
  CampaignOptions o;
  o.devices = 60;
  o.releases = 2;
  o.image_bytes = 8u << 10;
  o.seed = 5;
  o.drop_rate = 1.0;
  o.grace_ops = 0;
  o.client.max_attempts = 2;
  o.rollout.waves = {0.5, 1.0};
  o.rollout.min_failures_to_abort = 1'000;  // flat gate disabled
  o.rollout.max_attempts_per_device = 2;
  o.slo.enabled = true;
  o.slo.target_success_rate = 0.99;
  o.slo.max_burn_rate = 2.0;
  o.slo.min_attempts = 20;
  const CampaignReport report = run_campaign(o);
  EXPECT_TRUE(report.aborted);
  EXPECT_TRUE(report.slo_aborted);
  EXPECT_GE(report.slo_burn_rate, 2.0);
  EXPECT_NE(report.slo_reason.find("burn rate"), std::string::npos);
  // Only the first wave ran: 30 attempted, 30 skipped untouched.
  ASSERT_EQ(report.wave_health.size(), 1u);
  EXPECT_EQ(report.wave_health[0].attempted, 30u);
  EXPECT_EQ(report.wave_health[0].failed, 30u);
  EXPECT_EQ(report.skipped, 30u);
  EXPECT_EQ(report.bricked, 0u);
  EXPECT_NE(report.render().find("SLO BREACH"), std::string::npos);
  EXPECT_NE(report.json().find("\"slo_aborted\":true"), std::string::npos);
  EXPECT_NE(report.json().find("\"wave_health\":["), std::string::npos);
}

TEST(Campaign, SloCanaryWaveBelowMinAttemptsIsNotJudged) {
  // A 3-device canary fails outright, but min_attempts shields it from
  // SLO judgement (a canary of 3 has no statistics); the breach fires
  // at the next, large-enough wave instead.
  CampaignOptions o;
  o.devices = 60;
  o.releases = 2;
  o.image_bytes = 8u << 10;
  o.seed = 5;
  o.drop_rate = 1.0;
  o.grace_ops = 0;
  o.client.max_attempts = 2;
  o.rollout.waves = {0.05, 0.5, 1.0};
  o.rollout.min_failures_to_abort = 1'000;
  o.rollout.max_attempts_per_device = 2;
  o.slo.enabled = true;
  o.slo.min_attempts = 20;
  const CampaignReport report = run_campaign(o);
  EXPECT_TRUE(report.slo_aborted);
  ASSERT_EQ(report.wave_health.size(), 2u);
  EXPECT_EQ(report.wave_health[0].attempted, 3u);
  EXPECT_EQ(report.wave_health[1].attempted, 27u);
  EXPECT_NE(report.slo_reason.find("wave 2"), std::string::npos);
}

TEST(Campaign, SloHealthyFleetReportsPerWaveLatencyQuantiles) {
  CampaignOptions o;
  o.devices = 40;
  o.releases = 3;
  o.image_bytes = 12u << 10;
  o.seed = 11;
  o.rollout.waves = {0.25, 1.0};
  o.slo.enabled = true;
  o.slo.target_success_rate = 0.99;
  o.slo.max_burn_rate = 2.0;
  o.slo.min_attempts = 5;
  const CampaignReport report = run_campaign(o);
  EXPECT_FALSE(report.aborted);
  EXPECT_FALSE(report.slo_aborted);
  EXPECT_EQ(report.updated, 40u);
  ASSERT_EQ(report.wave_health.size(), 2u);
  std::size_t attempted_total = 0;
  for (const WaveHealth& w : report.wave_health) {
    attempted_total += w.attempted;
    // Per-wave latency really was recorded: one sample per attempt and
    // a nonzero p99 an operator can read off the wave line.
    EXPECT_EQ(w.latency.count, w.attempted);
    EXPECT_GT(w.latency.quantile(0.99), 0.0);
    EXPECT_NE(w.render().find("p99"), std::string::npos);
    EXPECT_NE(w.json().find("\"p99_ns\":"), std::string::npos);
  }
  EXPECT_EQ(attempted_total, 40u);
  EXPECT_NE(report.render().find("slo: healthy"), std::string::npos);
}

TEST(Campaign, SloP99BudgetBreachAborts) {
  // A 1 ns latency budget is unmeetable: the first judged wave breaches
  // on p99 even though every update succeeds.
  CampaignOptions o;
  o.devices = 30;
  o.releases = 2;
  o.image_bytes = 8u << 10;
  o.seed = 11;
  o.rollout.waves = {1.0};
  o.slo.enabled = true;
  o.slo.p99_latency_budget_ns = 1;
  o.slo.min_attempts = 5;
  const CampaignReport report = run_campaign(o);
  EXPECT_TRUE(report.slo_aborted);
  EXPECT_NE(report.slo_reason.find("p99"), std::string::npos);
  EXPECT_EQ(report.failed, 0u) << "p99 breach is not a device failure";
}

TEST(Campaign, SloSpecIsValidatedUpFront) {
  CampaignOptions o;
  o.devices = 4;
  o.releases = 2;
  o.slo.enabled = true;
  o.slo.target_success_rate = 2.0;
  EXPECT_THROW(run_campaign(o), ValidationError);
}

}  // namespace
}  // namespace ipd
