#include "delta/compose.hpp"

#include <gtest/gtest.h>

#include "apply/apply.hpp"
#include "apply/inplace_apply.hpp"
#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "inplace/converter.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

using test::A;
using test::C;
using test::script_of;

void expect_composes(const Bytes& a, const Bytes& b, const Bytes& c,
                     const Script& d1, const Script& d2) {
  const Script composed = compose_scripts(d1, d2);
  ASSERT_NO_THROW(composed.validate(a.size(), c.size()));
  EXPECT_TRUE(test::bytes_equal(c, apply_script(composed, a)));
  (void)b;
}

TEST(Compose, HandBuiltChain) {
  const Bytes a = to_bytes("AAAABBBBCCCC");
  // B = "CCCCxxAAAA": copy A[8..12) to 0, add "xx", copy A[0..4) to 6.
  const Script d1 = script_of({C(8, 0, 4), A(4, "xx"), C(0, 6, 4)});
  const Bytes b = apply_script(d1, a);
  ASSERT_EQ(to_string(b), "CCCCxxAAAA");
  // C = "xAAAACC": copy B[5..10) to 0, copy B[0..2) to 5.
  const Script d2 = script_of({C(5, 0, 5), C(0, 5, 2)});
  const Bytes c = apply_script(d2, b);
  ASSERT_EQ(to_string(c), "xAAAACC");

  ComposeReport report;
  const Script composed = compose_scripts(d1, d2, &report);
  EXPECT_TRUE(test::bytes_equal(c, apply_script(composed, a)));
  // B[5] is δ₁-add data; B[6..10) is a δ₁ copy; B[0..2) is a δ₁ copy:
  // 3 pieces, 1 literal byte.
  EXPECT_EQ(report.pieces, 3u);
  EXPECT_EQ(report.literal_bytes, 1u);
}

TEST(Compose, RealDiffChain) {
  Rng rng(1);
  const Bytes a = generate_file(rng, 30000, FileProfile::kText);
  const Bytes b = mutate(a, rng, 15);
  const Bytes c = mutate(b, rng, 15);
  for (const DifferKind differ :
       {DifferKind::kGreedy, DifferKind::kOnePass}) {
    const Script d1 = diff_bytes(differ, a, b);
    const Script d2 = diff_bytes(differ, b, c);
    expect_composes(a, b, c, d1, d2);
  }
}

TEST(Compose, ComposedIsNoLargerThanChainLiterals) {
  // Composition never invents literal data: its adds come from δ₂'s adds
  // plus slices of δ₁'s adds.
  Rng rng(2);
  const Bytes a = generate_file(rng, 20000, FileProfile::kBinary);
  const Bytes b = mutate(a, rng, 10);
  const Bytes c = mutate(b, rng, 10);
  const Script d1 = diff_bytes(DifferKind::kOnePass, a, b);
  const Script d2 = diff_bytes(DifferKind::kOnePass, b, c);
  const Script composed = compose_scripts(d1, d2);
  EXPECT_LE(composed.summary().added_bytes,
            d1.summary().added_bytes + d2.summary().added_bytes);
}

TEST(Compose, AssociativeInEffect) {
  Rng rng(3);
  const Bytes v0 = generate_file(rng, 10000, FileProfile::kText);
  const Bytes v1 = mutate(v0, rng, 8);
  const Bytes v2 = mutate(v1, rng, 8);
  const Bytes v3 = mutate(v2, rng, 8);
  const Script d01 = diff_bytes(DifferKind::kOnePass, v0, v1);
  const Script d12 = diff_bytes(DifferKind::kOnePass, v1, v2);
  const Script d23 = diff_bytes(DifferKind::kOnePass, v2, v3);

  const Script left = compose_scripts(compose_scripts(d01, d12), d23);
  const Script right = compose_scripts(d01, compose_scripts(d12, d23));
  EXPECT_TRUE(test::bytes_equal(apply_script(left, v0),
                                apply_script(right, v0)));
  EXPECT_TRUE(test::bytes_equal(v3, apply_script(left, v0)));
}

TEST(Compose, LongChainFold) {
  // Fold a 6-release chain into one delta and verify against the direct
  // reconstruction.
  Rng rng(4);
  std::vector<Bytes> history{generate_file(rng, 15000, FileProfile::kBinary)};
  for (int i = 0; i < 5; ++i) {
    history.push_back(mutate(history.back(), rng, 10));
  }
  Script folded =
      diff_bytes(DifferKind::kOnePass, history[0], history[1]);
  for (std::size_t i = 1; i + 1 < history.size(); ++i) {
    folded = compose_scripts(
        folded, diff_bytes(DifferKind::kOnePass, history[i], history[i + 1]));
  }
  EXPECT_TRUE(
      test::bytes_equal(history.back(), apply_script(folded, history[0])));
}

TEST(Compose, SecondMayBeInplaceConverted) {
  // δ₂ in topological (non-write) order still composes; the result is a
  // plain delta that must be re-converted for in-place use.
  Rng rng(5);
  const Bytes a = test::random_bytes(6, 8000);
  Bytes b = a;
  for (int i = 0; i < 1000; ++i) std::swap(b[i], b[i + 4000]);
  Bytes c = b;
  for (int i = 2000; i < 3000; ++i) c[i] ^= 0x5A;

  const Script d1 = diff_bytes(DifferKind::kOnePass, a, b);
  const Script d2_inplace =
      convert_to_inplace(diff_bytes(DifferKind::kOnePass, b, c), b, {})
          .script;
  const Script composed = compose_scripts(d1, d2_inplace);
  EXPECT_TRUE(test::bytes_equal(c, apply_script(composed, a)));

  // And the composed result itself converts for in-place application.
  const ConvertResult converted = convert_to_inplace(composed, a, {});
  Bytes buffer = a;
  buffer.resize(std::max(a.size(), c.size()));
  apply_inplace(converted.script, buffer, a.size(), c.size());
  EXPECT_TRUE(test::bytes_equal(c, ByteView(buffer).first(c.size())));
}

TEST(Compose, AllAddSecondPassesThrough) {
  const Script d1 = script_of({C(0, 0, 4)});
  const Script d2 = script_of({A(0, "xyz")});
  const Script composed = compose_scripts(d1, d2);
  EXPECT_EQ(composed.summary().copy_count, 0u);
  EXPECT_EQ(apply_script(composed, to_bytes("abcd")), to_bytes("xyz"));
}

TEST(Compose, EmptyScripts) {
  EXPECT_TRUE(compose_scripts(Script{}, Script{}).empty());
  // Empty second: C is empty regardless of B.
  const Script d1 = script_of({C(0, 0, 4)});
  EXPECT_TRUE(compose_scripts(d1, Script{}).empty());
}

TEST(Compose, RejectsNonTilingFirst) {
  // δ₁ with a gap cannot answer "what wrote B[4]?".
  const Script gappy = script_of({C(0, 0, 4), C(0, 6, 2)});
  const Script d2 = script_of({C(0, 0, 2)});
  EXPECT_THROW(compose_scripts(gappy, d2), ValidationError);
}

TEST(Compose, RejectsSecondReadingPastB) {
  const Script d1 = script_of({C(0, 0, 4)});  // B is 4 bytes
  const Script d2 = script_of({C(2, 0, 4)});  // reads B[2..6)
  EXPECT_THROW(compose_scripts(d1, d2), ValidationError);
}

TEST(Compose, FragmentsMergeBackTogether) {
  // δ₁ splits A into two abutting copies; a δ₂ copy spanning both must
  // come out as ONE copy, not two.
  const Script d1 = script_of({C(0, 0, 4), C(4, 4, 4)});
  const Script d2 = script_of({C(0, 0, 8)});
  const Script composed = compose_scripts(d1, d2);
  ASSERT_EQ(composed.size(), 1u);
  EXPECT_EQ(std::get<CopyCommand>(composed.commands()[0]).length, 8u);
}

}  // namespace
}  // namespace ipd
