#include "inplace/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "adversary/constructions.hpp"
#include "inplace/topo_sort.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

CrwiGraph graph_from(const Script& script, length_t version_length) {
  auto copies = script.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  return CrwiGraph::build(copies, version_length);
}

TEST(Scc, EmptyGraph) {
  const SccResult r = strongly_connected_components(CrwiGraph{});
  EXPECT_EQ(r.component_count, 0u);
  EXPECT_EQ(cyclic_vertex_count(r), 0u);
}

TEST(Scc, AcyclicGraphAllTrivial) {
  const Fig3Instance inst = make_fig3_quadratic(8);
  const CrwiGraph g = graph_from(inst.script, 64);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, g.vertex_count());
  EXPECT_EQ(cyclic_vertex_count(r), 0u);
  for (std::uint32_t c = 0; c < r.component_count; ++c) {
    EXPECT_TRUE(r.is_trivial(c));
  }
}

TEST(Scc, PermutationCyclesBecomeComponents) {
  // Permutation (0 1 2)(3 4)(5): components of sizes 3, 2, 1.
  const std::vector<std::uint32_t> perm = {1, 2, 0, 4, 3, 5};
  const AdversaryInstance inst = make_block_permutation(4, perm);
  const CrwiGraph g = graph_from(inst.script, 24);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, 3u);
  EXPECT_EQ(cyclic_vertex_count(r), 5u);

  std::multiset<std::size_t> sizes;
  for (const auto& members : r.members) {
    sizes.insert(members.size());
  }
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 2, 3}));
  // Vertices 0,1,2 share a component; 3,4 share another.
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_EQ(r.component[3], r.component[4]);
  EXPECT_NE(r.component[0], r.component[3]);
  EXPECT_NE(r.component[5], r.component[0]);
}

TEST(Scc, Fig2TreeIsOneBigComponent) {
  const Fig2Instance inst = make_fig2_tree(4);
  const CrwiGraph g = graph_from(inst.script, inst.version.size());
  const SccResult r = strongly_connected_components(g);
  // Every vertex lies on some root->leaf->root cycle.
  EXPECT_EQ(r.component_count, 1u);
  EXPECT_EQ(cyclic_vertex_count(r), g.vertex_count());
}

TEST(Scc, ComponentIdsAreReverseTopological) {
  // Chain 0 -> 1 -> 2: Tarjan numbers sinks first.
  const std::vector<CopyCommand> copies = {
      {10, 0, 10}, {20, 10, 10}, {40, 20, 10}};
  const CrwiGraph g = CrwiGraph::build(copies, 50);
  const SccResult r = strongly_connected_components(g);
  ASSERT_EQ(r.component_count, 3u);
  // Edge u->v implies comp[u] > comp[v].
  EXPECT_GT(r.component[0], r.component[1]);
  EXPECT_GT(r.component[1], r.component[2]);
}

TEST(Scc, DeletedVerticesAreExcluded) {
  const AdversaryInstance inst =
      make_block_permutation(4, single_cycle_permutation(5));
  const CrwiGraph g = graph_from(inst.script, 20);
  std::vector<bool> deleted(5, false);
  deleted[2] = true;
  const SccResult r = strongly_connected_components(g, deleted);
  // Breaking the 5-cycle leaves a path: all alive components trivial.
  EXPECT_EQ(cyclic_vertex_count(r), 0u);
  EXPECT_EQ(r.component_count, 4u);
}

TEST(SccGreedyFvs, SingleCycleOneDeletion) {
  const AdversaryInstance inst =
      make_block_permutation(4, single_cycle_permutation(6));
  const CrwiGraph g = graph_from(inst.script, 24);
  const std::vector<std::uint64_t> costs = {5, 4, 3, 9, 8, 7};
  std::size_t rounds = 0;
  const auto removed = scc_greedy_fvs(g, costs, &rounds);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 2u);  // global min of the component
  EXPECT_EQ(rounds, 2u);      // one deleting round + one clean round
}

TEST(SccGreedyFvs, DeletesCheapestOfWholeComponent) {
  // On the Figure-2 tree the whole graph is one SCC. When the root is
  // the component's cheapest vertex, SCC-greedy deletes exactly it —
  // seeing the whole component where local-min only ever sees one cycle
  // (and would delete a leaf per cycle).
  const Fig2Instance inst = make_fig2_tree(4);
  const CrwiGraph g = graph_from(inst.script, inst.version.size());
  std::vector<std::uint64_t> costs(g.vertex_count(), 10);
  costs[0] = 1;  // root (vertex 0 in write order)
  const auto removed = scc_greedy_fvs(g, costs);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 0u);
}

TEST(SccGreedyFvs, PaysPerLeafWithPaperCostsOnFig2) {
  // With the paper's cost structure (leaf < root < inner), the cheapest
  // component vertex is a leaf, deleting it leaves the rest strongly
  // connected, and the greedy ends up paying per leaf too — Figure 2
  // defeats this heuristic as well, just over more rounds.
  const Fig2Instance inst = make_fig2_tree(3);  // 4 leaves
  const CrwiGraph g = graph_from(inst.script, inst.version.size());
  auto copies = inst.script.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });
  std::vector<std::uint64_t> costs;
  for (const auto& c : copies) costs.push_back(c.length);
  const auto removed = scc_greedy_fvs(g, costs);
  EXPECT_EQ(removed.size(), inst.leaf_count);
}

TEST(SccGreedyFvs, ResultIsAFeedbackSetOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const auto perm = random_permutation(rng, 40);
    const AdversaryInstance inst = make_block_permutation(4, perm);
    const CrwiGraph g = graph_from(inst.script, 160);
    std::vector<std::uint64_t> costs;
    for (int i = 0; i < 40; ++i) costs.push_back(rng.range(1, 50));

    const auto removed = scc_greedy_fvs(g, costs);
    std::vector<bool> deleted(40, false);
    for (const auto v : removed) deleted[v] = true;
    const SccResult after = strongly_connected_components(g, deleted);
    EXPECT_EQ(cyclic_vertex_count(after), 0u) << "trial " << trial;
  }
}

TEST(SccGreedyFvs, RejectsBadCostSize) {
  const AdversaryInstance inst =
      make_block_permutation(4, single_cycle_permutation(3));
  const CrwiGraph g = graph_from(inst.script, 12);
  EXPECT_THROW(scc_greedy_fvs(g, std::vector<std::uint64_t>(2, 1)),
               ValidationError);
}

}  // namespace
}  // namespace ipd
