// Shared helpers for the ipdelta test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "delta/script.hpp"

namespace ipd::test {

/// Deterministic random buffer.
inline Bytes random_bytes(std::uint64_t seed, std::size_t size) {
  Rng rng(seed);
  Bytes out(size);
  rng.fill(out);
  return out;
}

/// Buffer of `size` filled with a repeating 0..255 ramp — handy when a
/// test failure needs recognisable content.
inline Bytes ramp_bytes(std::size_t size) {
  Bytes out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>(i & 0xFF);
  }
  return out;
}

/// Shorthand copy/add constructors.
inline Command C(offset_t from, offset_t to, length_t len) {
  return CopyCommand{from, to, len};
}
inline Command A(offset_t to, std::string_view data) {
  return AddCommand{to, to_bytes(data)};
}
inline Command A(offset_t to, Bytes data) {
  return AddCommand{to, std::move(data)};
}

/// Build a Script from an initializer list of commands.
inline Script script_of(std::initializer_list<Command> commands) {
  Script s;
  for (const Command& c : commands) {
    s.push(c);
  }
  return s;
}

/// Gtest helper: assert two byte buffers equal with a useful message.
inline ::testing::AssertionResult bytes_equal(ByteView expected,
                                              ByteView actual) {
  if (expected.size() != actual.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: expected " << expected.size() << ", got "
           << actual.size();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] != actual[i]) {
      return ::testing::AssertionFailure()
             << "byte " << i << " differs: expected "
             << static_cast<int>(expected[i]) << ", got "
             << static_cast<int>(actual[i]);
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace ipd::test
