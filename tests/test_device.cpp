#include <gtest/gtest.h>

#include <cstring>

#include "corpus/generator.hpp"
#include "corpus/mutation.hpp"
#include "device/channel.hpp"
#include "device/flash_device.hpp"
#include "device/updater.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

TEST(Channel, TransferTimeScalesWithBytes) {
  const ChannelModel ch = channel_28k();
  const double t1 = ch.transfer_seconds(1000);
  const double t2 = ch.transfer_seconds(2000);
  EXPECT_GT(t2, t1);
  // Latency floor.
  EXPECT_GE(ch.transfer_seconds(0), ch.latency_s);
}

TEST(Channel, FasterLinksAreFaster) {
  const std::uint64_t bytes = 100000;
  EXPECT_GT(channel_9600().transfer_seconds(bytes),
            channel_28k().transfer_seconds(bytes));
  EXPECT_GT(channel_28k().transfer_seconds(bytes),
            channel_56k().transfer_seconds(bytes));
  EXPECT_GT(channel_56k().transfer_seconds(bytes),
            channel_isdn().transfer_seconds(bytes));
  EXPECT_GT(channel_isdn().transfer_seconds(bytes),
            channel_t1().transfer_seconds(bytes));
}

TEST(RamArena, TracksUsageAndHighWater) {
  RamArena arena(1000);
  EXPECT_EQ(arena.in_use(), 0u);
  {
    auto a = arena.allocate(400);
    EXPECT_EQ(arena.in_use(), 400u);
    {
      auto b = arena.allocate(500);
      EXPECT_EQ(arena.in_use(), 900u);
    }
    EXPECT_EQ(arena.in_use(), 400u);
  }
  EXPECT_EQ(arena.in_use(), 0u);
  EXPECT_EQ(arena.high_water(), 900u);
}

TEST(RamArena, ThrowsOverBudget) {
  RamArena arena(100);
  auto a = arena.allocate(80);
  EXPECT_THROW(arena.allocate(21), DeviceError);
  EXPECT_NO_THROW(arena.allocate(20));
}

TEST(RamArena, MoveTransfersOwnership) {
  RamArena arena(100);
  {
    RamArena::Allocation a = arena.allocate(50);
    RamArena::Allocation b = std::move(a);
    EXPECT_EQ(arena.in_use(), 50u);
    EXPECT_EQ(b.size(), 50u);
  }
  EXPECT_EQ(arena.in_use(), 0u);
}

TEST(FlashDevice, ReadWriteRoundTrip) {
  FlashDevice dev(1024, 256, 1 << 16);
  const Bytes data = test::random_bytes(1, 300);
  dev.write(100, data);
  Bytes back(300);
  dev.read(100, back);
  EXPECT_TRUE(test::bytes_equal(data, back));
}

TEST(FlashDevice, CountsPagesTouched) {
  FlashDevice dev(4096, 256, 1 << 16);
  dev.write(0, Bytes(256, 1));  // exactly page 0
  EXPECT_EQ(dev.pages_touched_write(), 1u);
  dev.write(250, Bytes(12, 2));  // straddles pages 0 and 1
  EXPECT_EQ(dev.pages_touched_write(), 3u);
  Bytes buf(512);
  dev.read(256, buf);  // pages 1-2
  EXPECT_EQ(dev.pages_touched_read(), 2u);
  EXPECT_EQ(dev.bytes_written(), 268u);
  dev.reset_stats();
  EXPECT_EQ(dev.bytes_written(), 0u);
}

TEST(FlashDevice, OutOfRangeThrows) {
  FlashDevice dev(100, 16, 1000);
  Bytes buf(50);
  EXPECT_THROW(dev.read(60, buf), DeviceError);
  EXPECT_THROW(dev.write(60, buf), DeviceError);
  EXPECT_THROW(dev.load_image(Bytes(101, 0)), DeviceError);
}

TEST(FlashDevice, PowerFailureTearsWrite) {
  FlashDevice dev(100, 16, 1000);
  dev.load_image(Bytes(100, 0xAA));
  dev.inject_power_failure_after(4);
  EXPECT_THROW(dev.write(10, Bytes(10, 0xBB)), FlashDevice::PowerFailure);
  // The first 4 bytes landed, the rest did not.
  Bytes back(10);
  dev.clear_power_failure();
  dev.read(10, back);
  EXPECT_EQ(std::count(back.begin(), back.end(), 0xBB), 4);
  EXPECT_EQ(std::count(back.begin(), back.end(), 0xAA), 6);
}

TEST(FlashDevice, PowerFailureCountsAcrossWrites) {
  FlashDevice dev(100, 16, 1000);
  dev.inject_power_failure_after(10);
  dev.write(0, Bytes(6, 1));   // 6 of 10
  dev.write(6, Bytes(4, 2));   // exactly exhausts the budget, no tear
  EXPECT_THROW(dev.write(10, Bytes(1, 3)), FlashDevice::PowerFailure);
}

TEST(FlashDevice, ClearPowerFailureDisarms) {
  FlashDevice dev(100, 16, 1000);
  dev.inject_power_failure_after(1);
  dev.clear_power_failure();
  EXPECT_NO_THROW(dev.write(0, Bytes(50, 1)));
}

TEST(DeviceWindowedCopy, MatchesMemmoveInBothDirections) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    FlashDevice dev(256, 32, 1 << 16);
    Bytes content = test::random_bytes(trial, 256);
    dev.load_image(content);

    const offset_t from = rng.below(200);
    const offset_t to = rng.below(200);
    const length_t len = rng.below(256 - std::max(from, to) + 1);
    Bytes expect = content;
    std::memmove(expect.data() + to, expect.data() + from, len);

    Bytes window(1 + rng.below(16));
    device_windowed_copy(dev, window, from, to, len);
    ASSERT_TRUE(test::bytes_equal(expect, dev.inspect())) << "trial "
                                                          << trial;
  }
}

class UpdaterTest : public ::testing::Test {
 protected:
  // A firmware-style pair: 48 KiB image with scattered edits.
  void SetUp() override {
    Rng rng(11);
    old_image_ = generate_file(rng, 48 << 10, FileProfile::kBinary);
    new_image_ = mutate(old_image_, rng, 25);
    delta_ = Pipeline().build_inplace(old_image_, new_image_).delta;
  }

  Bytes old_image_;
  Bytes new_image_;
  Bytes delta_;
};

TEST_F(UpdaterTest, EndToEndUpdateSucceeds) {
  FlashDevice dev(64 << 10, 4096, 64 << 10);
  dev.load_image(old_image_);
  const UpdateResult r = apply_update(dev, delta_, channel_28k());
  EXPECT_EQ(r.new_image_length, new_image_.size());
  EXPECT_TRUE(r.crc_verified);
  EXPECT_GT(r.download_seconds, 0.0);
  EXPECT_TRUE(test::bytes_equal(
      new_image_, ByteView(dev.inspect()).first(new_image_.size())));
  // RAM never exceeded delta + window (plus nothing hidden).
  EXPECT_LE(r.ram_high_water, delta_.size() + 4096);
}

TEST_F(UpdaterTest, RamBudgetIsEnforced) {
  // Budget too small to stage the delta: must throw, not swap to hidden
  // memory.
  FlashDevice dev(64 << 10, 4096, delta_.size() / 2);
  dev.load_image(old_image_);
  EXPECT_THROW(apply_update(dev, delta_, channel_28k()), DeviceError);
}

TEST_F(UpdaterTest, TinyWindowStillCorrect) {
  FlashDevice dev(64 << 10, 4096, 64 << 10);
  dev.load_image(old_image_);
  UpdaterOptions options;
  options.window_bytes = 64;  // pathologically small working buffer
  const UpdateResult r = apply_update(dev, delta_, channel_28k(), options);
  EXPECT_TRUE(r.crc_verified);
  EXPECT_TRUE(test::bytes_equal(
      new_image_, ByteView(dev.inspect()).first(new_image_.size())));
}

TEST_F(UpdaterTest, WrongBaseImageFailsCrc) {
  FlashDevice dev(64 << 10, 4096, 64 << 10);
  Bytes tampered = old_image_;
  tampered[1234] ^= 0xFF;
  dev.load_image(tampered);
  EXPECT_THROW(apply_update(dev, delta_, channel_28k()), FormatError);
}

TEST_F(UpdaterTest, NonInplaceDeltaRejected) {
  const Bytes plain = Pipeline({.format = kPaperExplicit}).build_delta(old_image_, new_image_).delta;
  FlashDevice dev(64 << 10, 4096, 64 << 10);
  dev.load_image(old_image_);
  // A delta that merely *happens* to be conflict-free would carry the
  // flag; this one was not converted and (with these edits) is unsafe.
  const DeltaFile parsed = deserialize_delta(plain);
  if (!parsed.in_place) {
    EXPECT_THROW(apply_update(dev, plain, channel_28k()), ValidationError);
  }
}

TEST_F(UpdaterTest, ImageTooLargeForStorage) {
  FlashDevice dev(8 << 10, 4096, 64 << 10);
  EXPECT_THROW(apply_update(dev, delta_, channel_28k()), DeviceError);
}

TEST_F(UpdaterTest, SkippingCrcSkipsVerification) {
  FlashDevice dev(64 << 10, 4096, 64 << 10);
  dev.load_image(old_image_);
  UpdaterOptions options;
  options.verify_crc = false;
  const UpdateResult r = apply_update(dev, delta_, channel_28k(), options);
  EXPECT_FALSE(r.crc_verified);
}

TEST(Updater, GrowingImageUpdatesInPlace) {
  // New version larger than the old one — the buffer slack case.
  Rng rng(21);
  const Bytes old_image = generate_file(rng, 10 << 10, FileProfile::kBinary);
  Bytes new_image = old_image;
  const Bytes extra = test::random_bytes(5, 4 << 10);
  new_image.insert(new_image.end(), extra.begin(), extra.end());

  const Bytes delta = Pipeline().build_inplace(old_image, new_image).delta;
  FlashDevice dev(16 << 10, 1024, 64 << 10);
  dev.load_image(old_image);
  const UpdateResult r = apply_update(dev, delta, channel_56k());
  EXPECT_EQ(r.new_image_length, new_image.size());
  EXPECT_TRUE(test::bytes_equal(
      new_image, ByteView(dev.inspect()).first(new_image.size())));
}

}  // namespace
}  // namespace ipd
