#include "core/lzss.hpp"

#include <gtest/gtest.h>

#include "apply/stream_applier.hpp"
#include "corpus/generator.hpp"
#include "ipdelta.hpp"
#include "test_util.hpp"

namespace ipd {
namespace {

void expect_roundtrip(ByteView input) {
  const Bytes encoded = lzss_encode(input);
  const Bytes decoded = lzss_decode(encoded, input.size());
  EXPECT_TRUE(test::bytes_equal(input, decoded));
}

TEST(Lzss, EmptyInput) {
  EXPECT_TRUE(lzss_encode({}).empty());
  EXPECT_TRUE(lzss_decode({}, 0).empty());
}

TEST(Lzss, ShortInputs) {
  for (std::size_t n = 1; n <= 16; ++n) {
    expect_roundtrip(test::random_bytes(n, n));
  }
}

TEST(Lzss, HighlyRepetitiveCompressesHard) {
  const Bytes zeros(100000, 0);
  const Bytes encoded = lzss_encode(zeros);
  EXPECT_LT(encoded.size(), zeros.size() / 50);
  EXPECT_TRUE(test::bytes_equal(zeros, lzss_decode(encoded, zeros.size())));
}

TEST(Lzss, OverlappingMatchReplicates) {
  // "abcabcabc..." forces matches with dist < len.
  Bytes input;
  for (int i = 0; i < 1000; ++i) {
    input.push_back(static_cast<std::uint8_t>('a' + i % 3));
  }
  expect_roundtrip(input);
  EXPECT_LT(lzss_encode(input).size(), 64u);
}

TEST(Lzss, IncompressibleGrowsBounded) {
  const Bytes noise = test::random_bytes(1, 50000);
  const Bytes encoded = lzss_encode(noise);
  // 1 flag byte per 8 literals + O(1).
  EXPECT_LE(encoded.size(), noise.size() + noise.size() / 8 + 2);
  expect_roundtrip(noise);
}

TEST(Lzss, TextCompresses) {
  Rng rng(2);
  const Bytes text = generate_file(rng, 65536, FileProfile::kText);
  const Bytes encoded = lzss_encode(text);
  EXPECT_LT(encoded.size(), text.size() * 7 / 10);
  expect_roundtrip(text);
}

TEST(Lzss, RandomRoundTripSweep) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t size = rng.below(5000);
    Bytes input(size);
    // Mix of runs and noise.
    std::size_t i = 0;
    while (i < size) {
      if (rng.chance(0.5)) {
        const std::size_t run = std::min<std::size_t>(rng.range(1, 100),
                                                      size - i);
        const std::uint8_t b = static_cast<std::uint8_t>(rng.below(8));
        std::fill_n(input.begin() + static_cast<std::ptrdiff_t>(i), run, b);
        i += run;
      } else {
        input[i++] = static_cast<std::uint8_t>(rng.below(256));
      }
    }
    expect_roundtrip(input);
  }
}

TEST(Lzss, DecodeRejectsWrongExpectedSize) {
  const Bytes input = test::random_bytes(4, 1000);
  const Bytes encoded = lzss_encode(input);
  EXPECT_THROW(lzss_decode(encoded, 999), FormatError);
  EXPECT_THROW(lzss_decode(encoded, 1001), FormatError);
}

TEST(Lzss, DecodeRejectsTruncation) {
  const Bytes input = test::random_bytes(5, 1000);
  const Bytes encoded = lzss_encode(input);
  for (std::size_t keep = 0; keep < encoded.size();
       keep += 1 + encoded.size() / 37) {
    EXPECT_THROW(lzss_decode(ByteView(encoded).first(keep), input.size()),
                 FormatError)
        << keep;
  }
}

TEST(Lzss, DecodeRejectsBadDistance) {
  // Flag byte: first token is a match; distance 5 but no prior output.
  const Bytes bad = {0x01, 5, 0, 0};
  EXPECT_THROW(lzss_decode(bad, 10), FormatError);
}

TEST(Lzss, DecodeRejectsSizeBombBeforeAllocating) {
  // Regression: fuzz/corpus/codec/crash-01-lzss-size-bomb.bin. A hostile
  // expected_size used to flow straight into reserve(), turning a
  // 30-byte input into an exabyte allocation whose bad_alloc bypassed
  // the FormatError reject contract. The expansion bound must fire
  // before any allocation.
  const Bytes tiny = {0x00, 'A', 'B', 'C'};
  EXPECT_THROW(lzss_decode(tiny, std::size_t{1} << 56), FormatError);
  EXPECT_THROW(lzss_decode({}, 1), FormatError);
  // Exactly at the bound is not rejected by the pre-check (the stream
  // itself still decides).
  EXPECT_THROW(lzss_decode(tiny, tiny.size() * kLzssMaxMatch), FormatError);
}

TEST(Lzss, DeserializeRejectsSizeBombDelta) {
  // The same attack through the container: compress flag set, declared
  // uncompressed size of 64 PiB, valid adler — deserialize_delta must
  // reject with an ipd::Error, not die in the allocator.
  const Bytes bomb = {0x49, 0x50, 0x44, 0x31, 0x00, 0x02, 0x00, 0x01,
                      0x00, 0x00, 0x00, 0x00, 0x04, 0x80, 0x80, 0x80,
                      0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0xc7, 0x00,
                      0x8e, 0x01, 0x00, 0x41, 0x42, 0x43};
  EXPECT_THROW(deserialize_delta(bomb), FormatError);
}

TEST(Lzss, DecodeNeverCrashesOnRandomInput) {
  Rng rng(6);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes junk(rng.below(100));
    rng.fill(junk);
    try {
      lzss_decode(junk, rng.below(200));
    } catch (const FormatError&) {
    }
  }
}

TEST(LzssCodec, CompressedDeltaRoundTrips) {
  Rng rng(7);
  const Bytes ref = generate_file(rng, 30000, FileProfile::kText);
  Bytes ver = ref;
  for (int i = 0; i < 2000; ++i) std::swap(ver[i], ver[i + 15000]);

  PipelineOptions options;
  options.compress_payload = true;
  const Bytes compressed = Pipeline(options).build_inplace(ref, ver).delta;
  options.compress_payload = false;
  const Bytes plain = Pipeline(options).build_inplace(ref, ver).delta;

  // Swapped text regions mean literal-free deltas can be tiny; compare
  // against a delta with real add data instead.
  Bytes buffer = ref;
  buffer.resize(std::max(ref.size(), ver.size()));
  const length_t n = apply_delta_inplace(compressed, buffer);
  EXPECT_TRUE(test::bytes_equal(ver, ByteView(buffer).first(n)));

  // The flag reflects the wire (auto-fallback may store uncompressed
  // when the payload is copy-dominated); the script always round-trips.
  const DeltaFile parsed = deserialize_delta(compressed);
  EXPECT_EQ(parsed.script, deserialize_delta(plain).script);
  EXPECT_LE(compressed.size(), plain.size());
}

TEST(LzssCodec, CompressionShrinksAddHeavyDeltas) {
  // All-add delta over compressible text: secondary compression must pay.
  Rng rng(8);
  const Bytes ver = generate_file(rng, 50000, FileProfile::kText);
  PipelineOptions options;
  options.compress_payload = true;
  const Bytes compressed = Pipeline(options).build_inplace({}, ver).delta;
  options.compress_payload = false;
  const Bytes plain = Pipeline(options).build_inplace({}, ver).delta;
  EXPECT_LT(compressed.size(), plain.size() * 8 / 10);

  Bytes buffer(ver.size());
  const length_t n = apply_delta_inplace(compressed, buffer);
  EXPECT_TRUE(test::bytes_equal(ver, ByteView(buffer).first(n)));
}

TEST(LzssCodec, StreamingApplierRejectsCompressedPayload) {
  Rng rng(9);
  const Bytes ver = generate_file(rng, 5000, FileProfile::kText);
  PipelineOptions options;
  options.compress_payload = true;
  const Bytes delta = Pipeline(options).build_inplace({}, ver).delta;
  Bytes buffer(ver.size());
  EXPECT_THROW(apply_delta_inplace_streaming(delta, buffer, 64),
               ValidationError);
}

TEST(LzssCodec, CorruptCompressedPayloadRejected) {
  Rng rng(10);
  const Bytes ver = generate_file(rng, 5000, FileProfile::kText);
  PipelineOptions options;
  options.compress_payload = true;
  Bytes delta = Pipeline(options).build_inplace({}, ver).delta;
  delta[delta.size() / 2] ^= 0x10;
  Bytes buffer(ver.size());
  EXPECT_THROW(apply_delta_inplace(delta, buffer), FormatError);
}

}  // namespace
}  // namespace ipd
