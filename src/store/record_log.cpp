#include "store/record_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/checksum.hpp"
#include "core/io.hpp"

namespace ipd {

namespace {

constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x52445049;  // "IPDR" little-endian
constexpr std::size_t kFileHeaderSize = 16;
constexpr std::size_t kRecordHeaderSize = 16;

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

[[noreturn]] void throw_errno(const std::string& what,
                              const std::filesystem::path& path) {
  throw StoreError("store: " + what + " " + path.string() + ": " +
                   errno_message(errno));
}

/// pread the full range or return the bytes actually available.
std::size_t read_fully(int fd, std::uint8_t* out, std::size_t n,
                       std::uint64_t offset,
                       const std::filesystem::path& path) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::pread(fd, out + got, n - got,
                              static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("read", path);
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_fully(int fd, const std::uint8_t* data, std::size_t n,
                 std::uint64_t offset, const std::filesystem::path& path) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t r = ::pwrite(fd, data + put, n - put,
                               static_cast<off_t>(offset + put));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path);
    }
    put += static_cast<std::size_t>(r);
  }
}

}  // namespace

RecordLog::~RecordLog() { close(); }

RecordLog::RecordLog(RecordLog&& other) noexcept
    : fd_(other.fd_), end_(other.end_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.end_ = 0;
}

RecordLog& RecordLog::operator=(RecordLog&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    end_ = other.end_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.end_ = 0;
  }
  return *this;
}

void RecordLog::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t RecordLog::framed_size(std::uint64_t payload_bytes) noexcept {
  return kRecordHeaderSize + payload_bytes;
}

std::uint64_t RecordLog::first_record_offset() noexcept {
  return kFileHeaderSize;
}

RecordLog RecordLog::create(const std::filesystem::path& path,
                            const char (&magic)[9]) {
  RecordLog log;
  log.path_ = path;
  log.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (log.fd_ < 0) throw_errno("create", path);

  std::uint8_t header[kFileHeaderSize];
  std::memcpy(header, magic, 8);
  put_u32(header + 8, kFormatVersion);
  put_u32(header + 12, crc32c(ByteView(header, 12)));
  write_fully(log.fd_, header, kFileHeaderSize, 0, path);
  log.end_ = kFileHeaderSize;
  log.sync();
  return log;
}

RecordLog RecordLog::open(const std::filesystem::path& path,
                          const char (&magic)[9]) {
  RecordLog log;
  log.path_ = path;
  log.fd_ = ::open(path.c_str(), O_RDWR, 0644);
  if (log.fd_ < 0) throw_errno("open", path);

  std::uint8_t header[kFileHeaderSize];
  const std::size_t got =
      read_fully(log.fd_, header, kFileHeaderSize, 0, path);
  if (got < kFileHeaderSize) {
    throw StoreError("store: " + path.string() +
                     " is shorter than a file header");
  }
  if (std::memcmp(header, magic, 8) != 0) {
    throw StoreError("store: " + path.string() + " has the wrong magic");
  }
  if (get_u32(header + 8) != kFormatVersion) {
    throw StoreError("store: " + path.string() +
                     " has unsupported format version " +
                     std::to_string(get_u32(header + 8)));
  }
  if (get_u32(header + 12) != crc32c(ByteView(header, 12))) {
    throw StoreError("store: " + path.string() + " file header CRC mismatch");
  }

  struct stat st {};
  if (::fstat(log.fd_, &st) != 0) throw_errno("stat", path);
  log.end_ = static_cast<std::uint64_t>(st.st_size);
  return log;
}

RecoverStats RecordLog::recover(
    const std::function<void(std::uint64_t, Bytes)>& fn) {
  RecoverStats stats;
  std::uint64_t at = kFileHeaderSize;
  const std::uint64_t file_size = end_;
  while (at < file_size) {
    std::uint8_t header[kRecordHeaderSize];
    const std::size_t got = read_fully(fd_, header, kRecordHeaderSize, at,
                                       path_);
    if (got < kRecordHeaderSize) break;  // torn header
    if (get_u32(header) != kRecordMagic) break;
    if (get_u32(header + 12) != crc32c(ByteView(header, 12))) break;
    const std::uint32_t len = get_u32(header + 4);
    if (at + kRecordHeaderSize + len > file_size) break;  // torn payload
    Bytes payload(len);
    if (read_fully(fd_, payload.data(), len, at + kRecordHeaderSize,
                   path_) < len) {
      break;
    }
    if (crc32c(payload) != get_u32(header + 8)) break;  // corrupt payload
    fn(at, std::move(payload));
    ++stats.records;
    at += kRecordHeaderSize + len;
  }
  if (at < file_size) {
    stats.truncated = true;
    stats.truncated_bytes = file_size - at;
    if (::ftruncate(fd_, static_cast<off_t>(at)) != 0) {
      throw_errno("truncate torn tail of", path_);
    }
    sync();
  }
  end_ = at;
  stats.durable_bytes = at;
  return stats;
}

std::uint64_t RecordLog::append(ByteView payload) {
  if (payload.size() > 0xFFFFFFFFull) {
    throw StoreError("store: record payload over 4 GiB");
  }
  const std::uint64_t offset = end_;
  Bytes frame(kRecordHeaderSize + payload.size());
  put_u32(frame.data(), kRecordMagic);
  put_u32(frame.data() + 4, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame.data() + 8, crc32c(payload));
  put_u32(frame.data() + 12, crc32c(ByteView(frame.data(), 12)));
  std::memcpy(frame.data() + kRecordHeaderSize, payload.data(),
              payload.size());
  write_fully(fd_, frame.data(), frame.size(), offset, path_);
  end_ = offset + frame.size();
  return offset;
}

void RecordLog::truncate_to(std::uint64_t end) {
  if (end > end_) {
    throw StoreError("store: truncate_to beyond end of " + path_.string());
  }
  if (::ftruncate(fd_, static_cast<off_t>(end)) != 0) {
    throw_errno("truncate", path_);
  }
  end_ = end;
}

void RecordLog::sync() {
  if (::fdatasync(fd_) != 0) throw_errno("sync", path_);
}

Bytes RecordLog::read_at(std::uint64_t offset) const {
  if (offset + kRecordHeaderSize > end_) {
    throw StoreError("store: record offset " + std::to_string(offset) +
                     " out of bounds in " + path_.string());
  }
  std::uint8_t header[kRecordHeaderSize];
  if (read_fully(fd_, header, kRecordHeaderSize, offset, path_) <
      kRecordHeaderSize) {
    throw StoreError("store: short record header in " + path_.string());
  }
  if (get_u32(header) != kRecordMagic ||
      get_u32(header + 12) != crc32c(ByteView(header, 12))) {
    throw StoreError("store: record header corrupt at offset " +
                     std::to_string(offset) + " in " + path_.string());
  }
  const std::uint32_t len = get_u32(header + 4);
  if (offset + kRecordHeaderSize + len > end_) {
    throw StoreError("store: record payload out of bounds at offset " +
                     std::to_string(offset) + " in " + path_.string());
  }
  Bytes payload(len);
  if (read_fully(fd_, payload.data(), len, offset + kRecordHeaderSize,
                 path_) < len) {
    throw StoreError("store: short record payload in " + path_.string());
  }
  if (crc32c(payload) != get_u32(header + 8)) {
    throw StoreError("store: record payload CRC mismatch at offset " +
                     std::to_string(offset) + " in " + path_.string());
  }
  return payload;
}

}  // namespace ipd
