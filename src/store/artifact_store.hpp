// Durable artifact store: a release history persisted as delta chains
// against periodic full baselines.
//
// The paper's devices cannot hold two versions at once; the server has
// the dual problem — a long release history is too big to hold as full
// images, so it is kept the way fossil keeps its blobs: each release is
// either a full *baseline* body or an in-place *delta* against an
// earlier release, forming linear chains rooted at baselines. A chain
// policy (store/chain_policy.hpp) bounds chain length and cumulative
// inflation, folding a chain back onto its baseline with
// delta/compose.hpp when it grows long — at command-stream cost, never
// re-differencing the full bodies — and re-selecting a fresh baseline
// when deltas stop pulling their weight.
//
// On disk (see docs/STORE.md for the byte-level formats):
//
//   <dir>/MANIFEST             append-only log of release records
//   <dir>/segments-NNNNNN.dat  append-only artifact payloads
//   <dir>/cache/               reconstructed-version disk cache (soft)
//
// Both logs use the CRC-32C record framing of store/record_log.hpp.
// Durability invariant: the segment append is synced *before* the
// manifest record that references it, so a recovered manifest never
// points past the durable segment prefix; recovery truncates torn tails
// and refuses (typed StoreError) anything CRC-valid but inconsistent.
// Every delta loaded from disk passes verify::Verifier before it is
// applied or handed out — the store trusts its own files no more than
// the server trusts the wire.
//
// Thread-safety: publish/compact/gc take an exclusive lock; body() and
// the read accessors take a shared one, so a fleet of request threads
// reconstructs concurrently while publishes serialize.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/sync.hpp"
#include "ipdelta.hpp"
#include "server/version_store.hpp"
#include "store/chain_policy.hpp"
#include "store/record_log.hpp"
#include "store/store_metrics.hpp"
#include "store/version_cache.hpp"
#include "verify/verifier.hpp"

namespace ipd {

struct StoreOptions {
  ChainPolicyOptions chain;
  /// How chain deltas are built (and how folded chains are re-converted
  /// for in-place application).
  PipelineOptions pipeline;
  /// Byte budget of the reconstructed-version disk cache.
  std::uint64_t cache_budget = 256ull << 20;
  /// Deep-verify every referenced segment record (CRC + delta verifier)
  /// during open instead of lazily on first use. Slower cold start,
  /// used by the crash-recovery tests and `store check`.
  bool verify_on_open = false;
  /// fsync segment and manifest appends in publish order. Leave on for
  /// durability; benches may turn it off to measure the CPU path.
  bool sync_writes = true;
};

/// How one release is stored.
enum class StoredKind : std::uint8_t {
  kBaseline = 0,  ///< full body in the segment file
  kDelta = 1,     ///< serialized in-place delta against `base`
};

struct StoredRelease {
  ReleaseId id = 0;
  ContentKey key;  ///< content address of the *body* (not the artifact)
  StoredKind kind = StoredKind::kBaseline;
  ReleaseId base = 0;  ///< parent release for kDelta; == id for baselines
  std::uint64_t segment_offset = 0;  ///< record frame offset of artifact
  std::uint64_t stored_bytes = 0;    ///< artifact payload size
};

/// One materialized chain edge: the stored in-place delta `from -> to`.
/// What the rebased UpgradePlanner seeds its route graph with and what
/// `serve --store-dir` preloads into the DeltaCache.
struct StoredEdge {
  ReleaseId from = 0;
  ReleaseId to = 0;
  std::uint64_t bytes = 0;
};

/// What open() found on disk.
struct RecoveryReport {
  std::size_t releases = 0;
  std::size_t manifest_records = 0;
  bool manifest_truncated = false;       ///< torn manifest tail cut
  std::uint64_t manifest_bytes_dropped = 0;
  std::uint64_t segment_orphan_bytes = 0;  ///< unreferenced tail cut
};

class ArtifactStore {
 public:
  /// Create an empty store in `dir` (the directory is created; an
  /// existing store there is an error — init must never eat history).
  static void init(const std::filesystem::path& dir);

  /// Open an existing store, running recovery. Throws StoreError when
  /// `dir` holds no store or holds one that is inconsistent beyond the
  /// torn-tail repairs recovery is allowed to make.
  explicit ArtifactStore(const std::filesystem::path& dir,
                         const StoreOptions& options = {});

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Append a release. Builds the delta against the current tip, asks
  /// the chain policy for the layout, persists (segment synced before
  /// manifest), and returns the new id (== prior count).
  ReleaseId publish(Bytes body);

  std::size_t release_count() const;

  /// Reconstruct the body of release `id`: nearest cached ancestor (or
  /// the chain's baseline) plus verifier-gated delta applications,
  /// validated against the release's content key before anything is
  /// returned. Results are cached in the disk cache.
  std::shared_ptr<const Bytes> body(ReleaseId id) const;

  /// Storage-level record of release `id`.
  StoredRelease record(ReleaseId id) const;
  std::vector<StoredRelease> releases() const;

  ContentKey content_key(ReleaseId id) const;
  std::optional<ReleaseId> find(const ContentKey& key) const;
  ReleaseId latest() const;

  /// Every stored chain-delta artifact as a (from, to) edge.
  std::vector<StoredEdge> stored_edges() const;

  /// Raw stored artifact bytes of release `id` (the serialized in-place
  /// delta for kDelta, the body for kBaseline). CRC-validated.
  Bytes stored_artifact(ReleaseId id) const;

  /// Chain statistics of the chain ending at `id` (walks base links).
  ChainStats chain_stats(ReleaseId id) const;

  /// Fold release `id`'s chain into one direct delta from its baseline
  /// (delta/compose.hpp — no re-differencing) and persist the re-pointed
  /// artifact. No-op for baselines and length-1 chains. Returns true
  /// when the chain was shortened.
  bool compact(ReleaseId id);

  /// Rewrite the segment file keeping only referenced artifacts and
  /// rewrite the manifest to match (atomic rename; a crash mid-gc leaves
  /// the old epoch intact). Returns bytes reclaimed.
  std::uint64_t gc();

  /// Deep integrity check: every artifact CRC, every delta through the
  /// verifier, every body reconstructed and matched against its content
  /// key. Throws StoreError on the first violation.
  void check() const;

  const RecoveryReport& recovery() const noexcept { return recovery_; }
  const StoreMetrics& metrics() const noexcept { return metrics_; }
  StoreMetrics& metrics() noexcept { return metrics_; }
  const StoreOptions& options() const noexcept { return options_; }
  const std::filesystem::path& dir() const noexcept { return dir_; }
  /// Current segment-file size (cold-start and gc observability).
  std::uint64_t segment_bytes() const;

 private:
  struct PendingArtifact;

  void load_locked() REQUIRES(mutex_);
  std::shared_ptr<const Bytes> reconstruct_locked(ReleaseId id) const
      REQUIRES_SHARED(mutex_);
  Bytes artifact_locked(ReleaseId id) const REQUIRES_SHARED(mutex_);
  /// Verifier gate for a disk-loaded delta artifact (once per release
  /// per process; artifacts are immutable).
  void gate_delta_locked(ReleaseId id, ByteView artifact) const
      REQUIRES_SHARED(mutex_) EXCLUDES(verified_mutex_);
  ChainStats chain_stats_locked(ReleaseId id) const REQUIRES_SHARED(mutex_);
  /// Compose the chain scripts baseline -> ... -> id (inclusive) into
  /// one script, returning it with the chain's baseline id.
  std::pair<Script, ReleaseId> fold_chain_locked(ReleaseId id) const
      REQUIRES_SHARED(mutex_);
  ReleaseId append_release_locked(StoredKind kind, ReleaseId base,
                                  const ContentKey& key, ByteView artifact)
      REQUIRES(mutex_);
  void append_manifest_locked(std::uint8_t type, const StoredRelease& r)
      REQUIRES(mutex_);
  std::filesystem::path segment_path(std::uint64_t epoch) const;

  std::filesystem::path dir_;
  StoreOptions options_;
  ChainPolicy policy_;
  Pipeline pipeline_;
  Verifier verifier_;
  mutable StoreMetrics metrics_;  // stats, updated from const read paths

  mutable SharedMutex mutex_{"ArtifactStore"};
  RecordLog manifest_ GUARDED_BY(mutex_);
  RecordLog segment_ GUARDED_BY(mutex_);
  std::uint64_t epoch_ GUARDED_BY(mutex_) = 0;
  std::vector<StoredRelease> releases_ GUARDED_BY(mutex_);
  /// Latest id per content address.
  std::map<ContentKey, ReleaseId> by_content_ GUARDED_BY(mutex_);
  mutable VersionDiskCache cache_;  // internally synchronized
  /// Leaf lock (acquired inside mutex_, never the other way around).
  mutable Mutex verified_mutex_{"ArtifactStore::verified"};
  mutable std::unordered_set<ReleaseId> verified_
      GUARDED_BY(verified_mutex_);
  RecoveryReport recovery_;
};

}  // namespace ipd
