#include "store/artifact_store.hpp"

#include <algorithm>
#include <cstdio>

#include "core/checksum.hpp"
#include "core/varint.hpp"
#include "delta/compose.hpp"
#include "obs/trace.hpp"

namespace ipd {

namespace {

constexpr char kManifestMagic[9] = "IPDMANI1";
constexpr char kSegmentMagic[9] = "IPDSEG01";

// Manifest record types.
constexpr std::uint8_t kRecEpoch = 3;    ///< names the live segment file
constexpr std::uint8_t kRecPublish = 1;  ///< one release appended
constexpr std::uint8_t kRecRepoint = 2;  ///< a chain fold re-parented one

/// Cursor over a manifest record payload; throws StoreError (not
/// FormatError) so a malformed-but-CRC-valid record surfaces as the
/// store inconsistency it is.
struct Reader {
  ByteView data;
  std::size_t at = 0;

  std::uint8_t u8() {
    if (at >= data.size()) {
      throw StoreError("store: manifest record truncated");
    }
    return data[at++];
  }
  std::uint64_t uv() {
    const auto r = try_decode_varint(data.subspan(at));
    if (!r) throw StoreError("store: manifest record truncated");
    at += r->consumed;
    return r->value;
  }
  bool done() const noexcept { return at == data.size(); }
};

}  // namespace

std::filesystem::path ArtifactStore::segment_path(
    std::uint64_t epoch) const {
  char name[32];
  std::snprintf(name, sizeof name, "segments-%06llu.dat",
                static_cast<unsigned long long>(epoch));
  return dir_ / name;
}

void ArtifactStore::init(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw StoreError("store: cannot create " + dir.string() + ": " +
                     ec.message());
  }
  if (std::filesystem::exists(dir / "MANIFEST")) {
    throw StoreError("store: " + dir.string() +
                     " already holds a store (init must not eat history)");
  }
  // Segment before manifest: an existing manifest implies its segment.
  {
    char name[32];
    std::snprintf(name, sizeof name, "segments-%06u.dat", 0u);
    RecordLog segment = RecordLog::create(dir / name, kSegmentMagic);
  }
  RecordLog manifest = RecordLog::create(dir / "MANIFEST", kManifestMagic);
  Bytes epoch_record;
  epoch_record.push_back(kRecEpoch);
  append_varint(epoch_record, 0);
  manifest.append(epoch_record);
  manifest.sync();
}

ArtifactStore::ArtifactStore(const std::filesystem::path& dir,
                             const StoreOptions& options)
    : dir_(dir),
      options_(options),
      policy_(options.chain),
      pipeline_(options.pipeline),
      // Served straight to in-place appliers, so conflicts are fatal.
      verifier_(VerifyOptions{.require_in_place = true}),
      cache_(dir / "cache", options.cache_budget, &metrics_) {
  const std::uint64_t t0 = obs::now_ns();
  const WriterLock lock(mutex_);
  load_locked();
  metrics_.open_ns.record(obs::now_ns() - t0);
}

void ArtifactStore::load_locked() {
  if (!std::filesystem::exists(dir_ / "MANIFEST")) {
    throw StoreError("store: " + dir_.string() +
                     " holds no store (run `ipdelta store init` first)");
  }
  // A crashed gc may have left a half-written replacement manifest; the
  // rename never happened, so the old epoch is still the truth.
  std::error_code ec;
  std::filesystem::remove(dir_ / "MANIFEST.tmp", ec);

  manifest_ = RecordLog::open(dir_ / "MANIFEST", kManifestMagic);
  std::vector<Bytes> records;
  const RecoverStats scan = manifest_.recover(
      [&](std::uint64_t, Bytes payload) {
        records.push_back(std::move(payload));
      });
  recovery_.manifest_records = scan.records;
  recovery_.manifest_truncated = scan.truncated;
  recovery_.manifest_bytes_dropped = scan.truncated_bytes;
  if (scan.truncated) {
    metrics_.torn_records_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  if (records.empty()) {
    throw StoreError("store: " + dir_.string() +
                     " manifest has no durable records");
  }

  // Record 0 names the live segment epoch.
  {
    Reader r{records[0]};
    if (r.u8() != kRecEpoch) {
      throw StoreError("store: manifest does not start with an epoch record");
    }
    epoch_ = r.uv();
  }
  segment_ = RecordLog::open(segment_path(epoch_), kSegmentMagic);

  // Stray segment files from a crashed gc (either direction) are not
  // referenced by this manifest; drop them.
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("segments-", 0) == 0 &&
        entry.path() != segment_path(epoch_)) {
      std::filesystem::remove(entry.path(), ec);
    }
  }

  // Replay. Semantic violations in CRC-valid records are refusals, not
  // recoveries: silent repair here could resurrect the wrong history.
  std::uint64_t referenced_end = RecordLog::first_record_offset();
  const auto check_extent = [&](const StoredRelease& r) {
    const std::uint64_t end =
        r.segment_offset + RecordLog::framed_size(r.stored_bytes);
    if (r.segment_offset < RecordLog::first_record_offset() ||
        end > segment_.size()) {
      throw StoreError(
          "store: release " + std::to_string(r.id) +
          " references segment bytes beyond the durable prefix");
    }
    referenced_end = std::max(referenced_end, end);
  };

  for (std::size_t i = 1; i < records.size(); ++i) {
    Reader r{records[i]};
    const std::uint8_t type = r.u8();
    if (type == kRecPublish) {
      StoredRelease rel;
      rel.id = static_cast<ReleaseId>(r.uv());
      rel.kind = static_cast<StoredKind>(r.u8());
      rel.base = static_cast<ReleaseId>(r.uv());
      rel.key.crc = static_cast<std::uint32_t>(r.uv());
      rel.key.length = r.uv();
      rel.segment_offset = r.uv();
      rel.stored_bytes = r.uv();
      if (!r.done() || rel.id != releases_.size() ||
          (rel.kind != StoredKind::kBaseline &&
           rel.kind != StoredKind::kDelta) ||
          (rel.kind == StoredKind::kDelta && rel.base >= rel.id) ||
          (rel.kind == StoredKind::kBaseline && rel.base != rel.id)) {
        throw StoreError("store: malformed publish record for release " +
                         std::to_string(rel.id));
      }
      check_extent(rel);
      if (by_content_.contains(rel.key)) {
        metrics_.duplicate_publishes.fetch_add(1,
                                               std::memory_order_relaxed);
      }
      by_content_[rel.key] = rel.id;
      releases_.push_back(rel);
    } else if (type == kRecRepoint) {
      const auto id = static_cast<ReleaseId>(r.uv());
      const auto base = static_cast<ReleaseId>(r.uv());
      const std::uint64_t offset = r.uv();
      const std::uint64_t bytes = r.uv();
      if (!r.done() || id >= releases_.size() || base >= id ||
          releases_[id].kind != StoredKind::kDelta) {
        throw StoreError("store: malformed repoint record for release " +
                         std::to_string(id));
      }
      releases_[id].base = base;
      releases_[id].segment_offset = offset;
      releases_[id].stored_bytes = bytes;
      check_extent(releases_[id]);
    } else {
      throw StoreError("store: unknown manifest record type " +
                       std::to_string(type));
    }
  }
  metrics_.releases_recovered.fetch_add(releases_.size(),
                                        std::memory_order_relaxed);
  recovery_.releases = releases_.size();

  // A crash between a segment append and its manifest record leaves an
  // orphan segment tail no record references — cut it so the file is
  // exactly the referenced extents again. (Superseded fold artifacts
  // before the tail stay until gc; they are referenced history.)
  if (segment_.size() > referenced_end) {
    recovery_.segment_orphan_bytes = segment_.size() - referenced_end;
    metrics_.orphan_bytes_truncated.fetch_add(
        recovery_.segment_orphan_bytes, std::memory_order_relaxed);
    segment_.truncate_to(referenced_end);
    if (options_.sync_writes) segment_.sync();
  }

  if (options_.verify_on_open) {
    for (const StoredRelease& rel : releases_) {
      if (rel.kind == StoredKind::kDelta) {
        gate_delta_locked(rel.id, artifact_locked(rel.id));
      }
      (void)reconstruct_locked(rel.id);
    }
  }
}

std::size_t ArtifactStore::release_count() const {
  const ReaderLock lock(mutex_);
  return releases_.size();
}

StoredRelease ArtifactStore::record(ReleaseId id) const {
  const ReaderLock lock(mutex_);
  if (id >= releases_.size()) {
    throw ValidationError("store: no release " + std::to_string(id));
  }
  return releases_[id];
}

std::vector<StoredRelease> ArtifactStore::releases() const {
  const ReaderLock lock(mutex_);
  return releases_;
}

ContentKey ArtifactStore::content_key(ReleaseId id) const {
  return record(id).key;
}

std::optional<ReleaseId> ArtifactStore::find(const ContentKey& key) const {
  const ReaderLock lock(mutex_);
  const auto it = by_content_.find(key);
  if (it == by_content_.end()) return std::nullopt;
  return it->second;
}

ReleaseId ArtifactStore::latest() const {
  const ReaderLock lock(mutex_);
  if (releases_.empty()) {
    throw ValidationError("store: empty history has no latest");
  }
  return static_cast<ReleaseId>(releases_.size() - 1);
}

std::vector<StoredEdge> ArtifactStore::stored_edges() const {
  const ReaderLock lock(mutex_);
  std::vector<StoredEdge> edges;
  for (const StoredRelease& rel : releases_) {
    if (rel.kind == StoredKind::kDelta) {
      edges.push_back(StoredEdge{rel.base, rel.id, rel.stored_bytes});
    }
  }
  return edges;
}

Bytes ArtifactStore::stored_artifact(ReleaseId id) const {
  const ReaderLock lock(mutex_);
  if (id >= releases_.size()) {
    throw ValidationError("store: no release " + std::to_string(id));
  }
  return artifact_locked(id);
}

std::uint64_t ArtifactStore::segment_bytes() const {
  const ReaderLock lock(mutex_);
  return segment_.size();
}

Bytes ArtifactStore::artifact_locked(ReleaseId id) const {
  return segment_.read_at(releases_[id].segment_offset);
}

void ArtifactStore::gate_delta_locked(ReleaseId id,
                                      ByteView artifact) const {
  {
    const MutexLock guard(verified_mutex_);
    if (verified_.contains(id)) return;
  }
  const Report report = verifier_.check(artifact);
  if (!report.ok()) {
    metrics_.verify_rejects.fetch_add(1, std::memory_order_relaxed);
    std::string why = "store: delta artifact for release " +
                      std::to_string(id) + " failed static verification";
    for (const Finding& f : report.findings) {
      if (f.severity == Severity::kError) {
        why += ": " + f.message;
        break;
      }
    }
    throw StoreError(why);
  }
  const MutexLock guard(verified_mutex_);
  verified_.insert(id);
}

ChainStats ArtifactStore::chain_stats_locked(ReleaseId id) const {
  ChainStats stats;
  ReleaseId at = id;
  while (releases_[at].kind == StoredKind::kDelta) {
    ++stats.chain_length;
    stats.chain_bytes += releases_[at].stored_bytes;
    at = releases_[at].base;
  }
  stats.releases_since_baseline = id - at;
  return stats;
}

ChainStats ArtifactStore::chain_stats(ReleaseId id) const {
  const ReaderLock lock(mutex_);
  if (id >= releases_.size()) {
    throw ValidationError("store: no release " + std::to_string(id));
  }
  return chain_stats_locked(id);
}

std::shared_ptr<const Bytes> ArtifactStore::body(ReleaseId id) const {
  const ReaderLock lock(mutex_);
  if (id >= releases_.size()) {
    throw ValidationError("store: no release " + std::to_string(id));
  }
  return reconstruct_locked(id);
}

std::shared_ptr<const Bytes> ArtifactStore::reconstruct_locked(
    ReleaseId id) const {
  const StoredRelease& rel = releases_[id];

  // Baselines read straight from the segment; the record CRC plus the
  // content-key check below make the read trustworthy.
  if (rel.kind == StoredKind::kBaseline) {
    Bytes body = artifact_locked(id);
    if (body.size() != rel.key.length || crc32c(body) != rel.key.crc) {
      throw StoreError("store: baseline " + std::to_string(id) +
                       " does not match its content key");
    }
    return std::make_shared<const Bytes>(std::move(body));
  }

  const std::uint64_t t0 = obs::now_ns();

  // Walk up the chain until a disk-cached ancestor or the baseline.
  std::vector<ReleaseId> hops;  // deltas to apply, deepest first
  ReleaseId at = id;
  std::optional<Bytes> start;
  while (true) {
    const StoredRelease& r = releases_[at];
    if (auto cached = cache_.get(r.key)) {
      start = std::move(*cached);
      break;
    }
    if (r.kind == StoredKind::kBaseline) {
      Bytes body = artifact_locked(at);
      if (body.size() != r.key.length || crc32c(body) != r.key.crc) {
        throw StoreError("store: baseline " + std::to_string(at) +
                         " does not match its content key");
      }
      start = std::move(body);
      break;
    }
    hops.push_back(at);
    at = r.base;
  }
  if (hops.empty()) {
    // Cache hit on `id` itself (already validated by the cache).
    return std::make_shared<const Bytes>(std::move(*start));
  }

  metrics_.reconstructs.fetch_add(1, std::memory_order_relaxed);
  Bytes image = std::move(*start);
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    const Bytes artifact = artifact_locked(*it);
    // Trust boundary: bytes from disk prove themselves before they run.
    gate_delta_locked(*it, artifact);
    const DeltaFile parsed = deserialize_delta(artifact);
    if (parsed.reference_length != image.size()) {
      throw StoreError("store: chain delta for release " +
                       std::to_string(*it) +
                       " does not chain from its parent body");
    }
    image.resize(std::max<std::size_t>(parsed.reference_length,
                                       parsed.version_length));
    const length_t new_len = apply_delta_inplace(artifact, image);
    image.resize(static_cast<std::size_t>(new_len));
    metrics_.chain_hops_applied.fetch_add(1, std::memory_order_relaxed);
  }
  if (image.size() != rel.key.length || crc32c(image) != rel.key.crc) {
    throw StoreError("store: reconstruction of release " +
                     std::to_string(id) +
                     " does not match its content key");
  }
  cache_.put(rel.key, image);
  metrics_.reconstruct_ns.record(obs::now_ns() - t0);
  return std::make_shared<const Bytes>(std::move(image));
}

void ArtifactStore::append_manifest_locked(std::uint8_t type,
                                           const StoredRelease& r) {
  Bytes payload;
  payload.push_back(type);
  if (type == kRecPublish) {
    append_varint(payload, r.id);
    payload.push_back(static_cast<std::uint8_t>(r.kind));
    append_varint(payload, r.base);
    append_varint(payload, r.key.crc);
    append_varint(payload, r.key.length);
    append_varint(payload, r.segment_offset);
    append_varint(payload, r.stored_bytes);
  } else {  // kRecRepoint
    append_varint(payload, r.id);
    append_varint(payload, r.base);
    append_varint(payload, r.segment_offset);
    append_varint(payload, r.stored_bytes);
  }
  metrics_.bytes_appended.fetch_add(RecordLog::framed_size(payload.size()),
                                    std::memory_order_relaxed);
  manifest_.append(payload);
  if (options_.sync_writes) manifest_.sync();
}

ReleaseId ArtifactStore::append_release_locked(StoredKind kind,
                                               ReleaseId base,
                                               const ContentKey& key,
                                               ByteView artifact) {
  StoredRelease rel;
  rel.id = static_cast<ReleaseId>(releases_.size());
  rel.key = key;
  rel.kind = kind;
  rel.base = kind == StoredKind::kBaseline ? rel.id : base;
  rel.stored_bytes = artifact.size();

  // Durability order: the artifact must be durable before the manifest
  // record that makes it reachable.
  rel.segment_offset = segment_.append(artifact);
  metrics_.bytes_appended.fetch_add(RecordLog::framed_size(artifact.size()),
                                    std::memory_order_relaxed);
  if (options_.sync_writes) segment_.sync();
  append_manifest_locked(kRecPublish, rel);

  if (by_content_.contains(key)) {
    metrics_.duplicate_publishes.fetch_add(1, std::memory_order_relaxed);
  }
  by_content_[key] = rel.id;
  releases_.push_back(rel);
  metrics_.artifact_bytes.record(artifact.size());
  metrics_.chain_length.record(chain_stats_locked(rel.id).chain_length);
  return rel.id;
}

std::pair<Script, ReleaseId> ArtifactStore::fold_chain_locked(
    ReleaseId id) const {
  // Chain hops baseline -> ... -> id, oldest first.
  std::vector<ReleaseId> hops;
  ReleaseId at = id;
  while (releases_[at].kind == StoredKind::kDelta) {
    hops.push_back(at);
    at = releases_[at].base;
  }
  std::reverse(hops.begin(), hops.end());
  if (hops.empty()) {
    throw ValidationError("store: release " + std::to_string(id) +
                          " is a baseline; nothing to fold");
  }
  Script folded;
  bool first = true;
  for (const ReleaseId hop : hops) {
    const Bytes artifact = artifact_locked(hop);
    gate_delta_locked(hop, artifact);
    Script script = deserialize_delta(artifact).script;
    metrics_.fold_commands.fetch_add(script.size(),
                                     std::memory_order_relaxed);
    if (first) {
      folded = std::move(script);
      first = false;
    } else {
      folded = compose_scripts(folded, script);
    }
  }
  return {std::move(folded), at};
}

ReleaseId ArtifactStore::publish(Bytes body) {
  const std::uint64_t t0 = obs::now_ns();
  const ContentKey key{crc32c(body), body.size()};
  const WriterLock lock(mutex_);
  metrics_.publishes.fetch_add(1, std::memory_order_relaxed);

  if (releases_.empty()) {
    metrics_.baselines_stored.fetch_add(1, std::memory_order_relaxed);
    const ReleaseId id =
        append_release_locked(StoredKind::kBaseline, 0, key, body);
    cache_.put(key, body);
    metrics_.publish_ns.record(obs::now_ns() - t0);
    return id;
  }

  const auto tip = static_cast<ReleaseId>(releases_.size() - 1);
  const std::shared_ptr<const Bytes> tip_body = reconstruct_locked(tip);
  BuildResult built = pipeline_.build_inplace(*tip_body, body);

  const ChainStats stats = chain_stats_locked(tip);
  ChainDecision decision =
      policy_.decide(stats, built.delta.size(), body.size());

  if (decision.action == ChainAction::kFoldToBaseline) {
    // Re-anchor on the baseline by composing the chain's scripts with
    // the fresh tip delta — command-stream cost only, no differencing
    // over the full bodies.
    auto [chain_script, baseline] = fold_chain_locked(tip);
    const Script new_script = deserialize_delta(built.delta).script;
    Script direct = compose_scripts(chain_script, new_script);
    const std::shared_ptr<const Bytes> base_body =
        reconstruct_locked(baseline);
    Bytes folded = make_inplace_delta(direct, *base_body, body,
                                      options_.pipeline.convert, nullptr,
                                      options_.pipeline.compress_payload);
    if (policy_.accept_fold(folded.size(), body.size())) {
      metrics_.folds.fetch_add(1, std::memory_order_relaxed);
      metrics_.deltas_stored.fetch_add(1, std::memory_order_relaxed);
      const ReleaseId id =
          append_release_locked(StoredKind::kDelta, baseline, key, folded);
      cache_.put(key, body);
      metrics_.publish_ns.record(obs::now_ns() - t0);
      return id;
    }
    decision.action = ChainAction::kNewBaseline;  // fold did not pay
  }

  if (decision.action == ChainAction::kNewBaseline) {
    metrics_.baselines_stored.fetch_add(1, std::memory_order_relaxed);
    const ReleaseId id =
        append_release_locked(StoredKind::kBaseline, 0, key, body);
    cache_.put(key, body);
    metrics_.publish_ns.record(obs::now_ns() - t0);
    return id;
  }

  metrics_.deltas_stored.fetch_add(1, std::memory_order_relaxed);
  const ReleaseId id =
      append_release_locked(StoredKind::kDelta, tip, key, built.delta);
  cache_.put(key, body);
  metrics_.publish_ns.record(obs::now_ns() - t0);
  return id;
}

bool ArtifactStore::compact(ReleaseId id) {
  const WriterLock lock(mutex_);
  if (id >= releases_.size()) {
    throw ValidationError("store: no release " + std::to_string(id));
  }
  if (releases_[id].kind != StoredKind::kDelta) return false;
  if (chain_stats_locked(id).chain_length < 2) return false;

  const std::shared_ptr<const Bytes> target = reconstruct_locked(id);
  auto [script, baseline] = fold_chain_locked(id);
  const std::shared_ptr<const Bytes> base_body =
      reconstruct_locked(baseline);
  const Bytes folded = make_inplace_delta(
      script, *base_body, *target, options_.pipeline.convert, nullptr,
      options_.pipeline.compress_payload);

  StoredRelease& rel = releases_[id];
  rel.base = baseline;
  rel.stored_bytes = folded.size();
  rel.segment_offset = segment_.append(folded);
  metrics_.bytes_appended.fetch_add(RecordLog::framed_size(folded.size()),
                                    std::memory_order_relaxed);
  if (options_.sync_writes) segment_.sync();
  append_manifest_locked(kRecRepoint, rel);
  metrics_.folds.fetch_add(1, std::memory_order_relaxed);
  {
    // The artifact changed; the old verification verdict is stale.
    const MutexLock guard(verified_mutex_);
    verified_.erase(id);
  }
  return true;
}

std::uint64_t ArtifactStore::gc() {
  const WriterLock lock(mutex_);
  const std::uint64_t before =
      segment_.size() + manifest_.size();

  const std::uint64_t new_epoch = epoch_ + 1;
  RecordLog new_segment =
      RecordLog::create(segment_path(new_epoch), kSegmentMagic);
  std::vector<StoredRelease> rewritten = releases_;
  for (StoredRelease& rel : rewritten) {
    const Bytes artifact = segment_.read_at(rel.segment_offset);
    rel.segment_offset = new_segment.append(artifact);
  }
  new_segment.sync();

  {
    RecordLog new_manifest =
        RecordLog::create(dir_ / "MANIFEST.tmp", kManifestMagic);
    Bytes epoch_record;
    epoch_record.push_back(kRecEpoch);
    append_varint(epoch_record, new_epoch);
    new_manifest.append(epoch_record);
    for (const StoredRelease& rel : rewritten) {
      Bytes payload;
      payload.push_back(kRecPublish);
      append_varint(payload, rel.id);
      payload.push_back(static_cast<std::uint8_t>(rel.kind));
      append_varint(payload, rel.base);
      append_varint(payload, rel.key.crc);
      append_varint(payload, rel.key.length);
      append_varint(payload, rel.segment_offset);
      append_varint(payload, rel.stored_bytes);
      new_manifest.append(payload);
    }
    new_manifest.sync();
  }

  // The commit point: one atomic rename. Before it the old epoch is the
  // store; after it the new one is. Either crash outcome is a valid
  // store plus stray files the next open deletes.
  const std::filesystem::path old_segment = segment_path(epoch_);
  manifest_ = RecordLog();  // close before replacing the file
  segment_ = RecordLog();
  std::filesystem::rename(dir_ / "MANIFEST.tmp", dir_ / "MANIFEST");
  std::error_code ec;
  std::filesystem::remove(old_segment, ec);

  manifest_ = RecordLog::open(dir_ / "MANIFEST", kManifestMagic);
  segment_ = RecordLog::open(segment_path(new_epoch), kSegmentMagic);
  epoch_ = new_epoch;
  releases_ = std::move(rewritten);

  const std::uint64_t after = segment_.size() + manifest_.size();
  const std::uint64_t reclaimed = before > after ? before - after : 0;
  metrics_.gc_runs.fetch_add(1, std::memory_order_relaxed);
  metrics_.gc_bytes_reclaimed.fetch_add(reclaimed,
                                        std::memory_order_relaxed);
  return reclaimed;
}

void ArtifactStore::check() const {
  const ReaderLock lock(mutex_);
  for (const StoredRelease& rel : releases_) {
    const Bytes artifact = artifact_locked(rel.id);  // frame CRCs
    if (rel.kind == StoredKind::kDelta) {
      gate_delta_locked(rel.id, artifact);
    }
    (void)reconstruct_locked(rel.id);  // content-key validated inside
  }
}

}  // namespace ipd
