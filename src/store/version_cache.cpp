#include "store/version_cache.hpp"

#include <cinttypes>
#include <cstdio>

#include "core/checksum.hpp"
#include "core/io.hpp"
#include "store/record_log.hpp"

namespace ipd {

namespace {

void count(StoreMetrics* metrics,
           std::atomic<std::uint64_t> StoreMetrics::* counter,
           std::uint64_t n = 1) noexcept {
  if (metrics != nullptr) {
    (metrics->*counter).fetch_add(n, std::memory_order_relaxed);
  }
}

/// Parse "<crc08x>-<len016x>.body" back into a ContentKey.
std::optional<ContentKey> key_from_name(const std::string& name) {
  std::uint32_t crc = 0;
  std::uint64_t length = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "%8" SCNx32 "-%16" SCNx64 ".bod%c", &crc,
                  &length, &tail) != 3 ||
      tail != 'y') {
    return std::nullopt;
  }
  return ContentKey{crc, length};
}

}  // namespace

VersionDiskCache::VersionDiskCache(std::filesystem::path dir,
                                   std::uint64_t byte_budget,
                                   StoreMetrics* metrics)
    : dir_(std::move(dir)), budget_(byte_budget), metrics_(metrics) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw StoreError("store cache: cannot create " + dir_.string() + ": " +
                     ec.message());
  }
  // Re-index survivors from a previous run. Arrival order is arbitrary
  // (LRU history did not survive), which only costs eviction accuracy.
  // The lock covers the whole scan: nothing else can see a half-built
  // object, but guarded fields are written under their mutex everywhere
  // — a constructor is not an excuse the analysis has to take on faith.
  MutexLock lock(mutex_);
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto key = key_from_name(entry.path().filename().string());
    if (!key) continue;
    const std::uint64_t size = entry.file_size(ec);
    if (ec) continue;
    lru_.push_back(Entry{*key, size});
    index_[*key] = std::prev(lru_.end());
    bytes_ += size;
  }
  evict_to_fit_locked(0);
}

std::filesystem::path VersionDiskCache::file_for(
    const ContentKey& key) const {
  char name[40];
  std::snprintf(name, sizeof name, "%08x-%016llx.body", key.crc,
                static_cast<unsigned long long>(key.length));
  return dir_ / name;
}

std::optional<Bytes> VersionDiskCache::get(const ContentKey& key) {
  {
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      count(metrics_, &StoreMetrics::disk_cache_misses);
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
  }
  Bytes body;
  try {
    body = read_file(file_for(key));
  } catch (const IoError&) {
    body.clear();
  }
  if (body.size() != key.length || crc32c(body) != key.crc) {
    // Corrupt / truncated soft state: drop the file, report a miss.
    MutexLock lock(mutex_);
    erase_locked(key);
    count(metrics_, &StoreMetrics::disk_cache_misses);
    return std::nullopt;
  }
  count(metrics_, &StoreMetrics::disk_cache_hits);
  return body;
}

void VersionDiskCache::put(const ContentKey& key, ByteView body) {
  if (body.size() > budget_) return;
  MutexLock lock(mutex_);
  if (index_.contains(key)) return;  // immutable content, already cached
  evict_to_fit_locked(body.size());
  const std::filesystem::path target = file_for(key);
  // Write-then-rename so a crash mid-write leaves no half file under a
  // valid cache name (the name IS the validation contract).
  const std::filesystem::path tmp = target.string() + ".tmp";
  try {
    write_file(tmp, body);
  } catch (const IoError&) {
    return;  // cache writes are best-effort
  }
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  lru_.push_front(Entry{key, body.size()});
  index_[key] = lru_.begin();
  bytes_ += body.size();
}

void VersionDiskCache::clear() {
  MutexLock lock(mutex_);
  while (!lru_.empty()) {
    erase_locked(lru_.back().key);
  }
}

VersionDiskCache::Stats VersionDiskCache::stats() const {
  MutexLock lock(mutex_);
  return Stats{bytes_, index_.size()};
}

void VersionDiskCache::evict_to_fit_locked(std::uint64_t incoming) {
  while (!lru_.empty() && bytes_ + incoming > budget_) {
    count(metrics_, &StoreMetrics::disk_cache_evictions);
    erase_locked(lru_.back().key);
  }
}

void VersionDiskCache::erase_locked(const ContentKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
  std::error_code ec;
  std::filesystem::remove(file_for(key), ec);
}

}  // namespace ipd
