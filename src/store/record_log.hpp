// Append-only record log: the durability primitive under the artifact
// store's manifest and segment files.
//
// Both files share one framing so one recovery scan serves both: a
// 16-byte file header (magic, format version, CRC) followed by records,
// each wrapped as
//
//     u32 record magic | u32 payload length | u32 payload crc32c
//     | u32 header crc32c | payload bytes...
//
// The header CRC covers the first twelve bytes, so a torn header and a
// torn payload are both detectable without trusting any length field.
// Recovery scans from the front and truncates the file at the first
// record that is short or fails either CRC — everything before that
// point is the durable prefix, everything after is a torn tail from a
// crashed writer. Writers append records and explicitly sync(); the
// artifact store orders segment sync before the manifest record that
// references it, so a recovered manifest never points past the durable
// segment prefix.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>

#include "core/types.hpp"

namespace ipd {

/// The artifact store's typed failure: corrupt or inconsistent on-disk
/// state that recovery could not (or must not) silently repair. Callers
/// get this instead of unverified bytes — never both.
class StoreError : public Error {
 public:
  explicit StoreError(const std::string& what) : Error(what) {}
};

/// What a recovery scan found and did.
struct RecoverStats {
  std::size_t records = 0;          ///< intact records in the durable prefix
  std::uint64_t durable_bytes = 0;  ///< file size after any truncation
  std::uint64_t truncated_bytes = 0;  ///< torn-tail bytes dropped
  bool truncated = false;             ///< a torn tail was cut
};

class RecordLog {
 public:
  RecordLog() = default;
  ~RecordLog();
  RecordLog(RecordLog&& other) noexcept;
  RecordLog& operator=(RecordLog&& other) noexcept;
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Create a fresh log (truncating any existing file) with the given
  /// 8-byte magic. Throws StoreError on I/O failure.
  static RecordLog create(const std::filesystem::path& path,
                          const char (&magic)[9]);

  /// Open an existing log, validating the file header against `magic`.
  /// Throws StoreError when the file is missing, unreadable, or carries
  /// the wrong magic/version (a foreign file must never be "recovered"
  /// into an empty store).
  static RecordLog open(const std::filesystem::path& path,
                        const char (&magic)[9]);

  /// Scan every record from the front, invoking `fn(offset, payload)`
  /// for each intact one (offset = start of the record frame). Stops at
  /// the first short or CRC-failing record and truncates the file there.
  /// The durable prefix is exactly the records `fn` saw.
  RecoverStats recover(
      const std::function<void(std::uint64_t, Bytes)>& fn);

  /// Append one record; returns the offset of its frame. Not synced —
  /// call sync() to make the append durable.
  std::uint64_t append(ByteView payload);

  /// fsync the file (fdatasync semantics are enough: record framing is
  /// self-validating, so metadata-only loss truncates, never corrupts).
  void sync();

  /// Read and validate the record at `offset`. Throws StoreError when
  /// the frame is out of bounds or fails a CRC.
  Bytes read_at(std::uint64_t offset) const;

  /// Current end offset (== file size).
  std::uint64_t size() const noexcept { return end_; }

  /// Cut the file to `end` (recovery of unreferenced tail bytes and gc).
  /// `end` must not exceed the current size.
  void truncate_to(std::uint64_t end);

  bool is_open() const noexcept { return fd_ >= 0; }
  const std::filesystem::path& path() const noexcept { return path_; }

  /// Bytes one record with `payload_bytes` of payload occupies on disk.
  static std::uint64_t framed_size(std::uint64_t payload_bytes) noexcept;

  /// Offset of the first record in any log (just past the file header).
  static std::uint64_t first_record_offset() noexcept;

 private:
  void close() noexcept;

  int fd_ = -1;
  std::uint64_t end_ = 0;
  std::filesystem::path path_;
};

}  // namespace ipd
