// On-disk cache of reconstructed release bodies.
//
// A delta-chain store trades space for reconstruct time: a hot release
// deep in a chain costs one baseline read plus N delta applications per
// request. fossil's unversioned cache answers this with a bounded disk
// cache of materialized artifacts, and we do the same: bodies live as
// files named by their content address ("<crc32c>-<length>.body"), so a
// cached file self-describes its expected checksum and every read is
// validated against the name before a byte is trusted — a corrupt or
// truncated cache file is deleted and reported as a miss, never served.
//
// Bounded by bytes with LRU eviction (same accounting discipline as the
// server's DeltaCache: budget bytes, not entries; eviction only unlinks
// the file, callers holding a loaded body keep their copy). The cache is
// soft state: destroying the directory loses nothing but warm-up time.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <optional>
#include <unordered_map>

#include "core/sync.hpp"
#include "core/types.hpp"
#include "server/version_store.hpp"
#include "store/store_metrics.hpp"

namespace ipd {

class VersionDiskCache {
 public:
  struct Stats {
    std::uint64_t bytes_held = 0;
    std::size_t entries = 0;
  };

  /// Opens (creating if needed) `dir` and indexes any surviving cache
  /// files — a reopened store starts with its hot set warm. `metrics`,
  /// when non-null, must outlive the cache.
  VersionDiskCache(std::filesystem::path dir, std::uint64_t byte_budget,
                   StoreMetrics* metrics = nullptr);

  /// Load and validate the cached body for `key`. Returns std::nullopt
  /// on miss; a file that fails validation is unlinked and counts as a
  /// miss (soft state must never surface corrupt bytes).
  std::optional<Bytes> get(const ContentKey& key);

  /// Cache `body` under `key` (callers pass the key they verified the
  /// body against). Evicts LRU entries until the budget fits; a body
  /// larger than the whole budget is not cached.
  void put(const ContentKey& key, ByteView body);

  /// Drop every cached body (CLI `store gc --drop-cache`).
  void clear();

  std::uint64_t byte_budget() const noexcept { return budget_; }
  Stats stats() const;

 private:
  struct Entry {
    ContentKey key;
    std::uint64_t bytes = 0;
  };

  std::filesystem::path file_for(const ContentKey& key) const;
  void evict_to_fit_locked(std::uint64_t incoming) REQUIRES(mutex_);
  void erase_locked(const ContentKey& key) REQUIRES(mutex_);

  std::filesystem::path dir_;
  std::uint64_t budget_;
  StoreMetrics* metrics_;

  mutable Mutex mutex_{"VersionDiskCache"};
  /// Front = most recently used.
  std::list<Entry> lru_ GUARDED_BY(mutex_);
  struct KeyHash {
    std::size_t operator()(const ContentKey& k) const noexcept {
      std::uint64_t x =
          (static_cast<std::uint64_t>(k.crc) << 32) ^ k.length;
      x += 0x9E3779B97F4A7C15ull;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };
  std::unordered_map<ContentKey, std::list<Entry>::iterator, KeyHash> index_
      GUARDED_BY(mutex_);
  std::uint64_t bytes_ GUARDED_BY(mutex_) = 0;
};

}  // namespace ipd
