// VersionStore adapter over the durable ArtifactStore.
//
// DeltaService and DeltaServer speak the VersionStore interface; this
// subclass routes every call to an on-disk ArtifactStore, so a server
// pointed at a store directory (`serve --store-dir`) serves the same
// history across restarts. body() reconstructs from the stored delta
// chain (baseline + verifier-gated hops); a small in-RAM memo keeps the
// hottest reconstructed bodies pinned so repeated requests for the same
// release do not re-read the disk cache.
//
// preload_stored_edges() warms a DeltaService with every delta artifact
// the store already holds: those chain edges cost the server nothing to
// serve (the delta exists on disk), which is exactly the asymmetry the
// rebased UpgradePlanner models with its build-cost penalty.
#pragma once

#include <list>
#include <memory>
#include <unordered_map>

#include "core/sync.hpp"
#include "server/delta_service.hpp"
#include "store/artifact_store.hpp"

namespace ipd {

class StoreBackedVersionStore final : public VersionStore {
 public:
  /// `ram_budget` bounds the in-memory memo of reconstructed bodies
  /// (0 disables it; every body() then goes to the artifact store).
  explicit StoreBackedVersionStore(std::shared_ptr<ArtifactStore> store,
                                   std::uint64_t ram_budget = 64ull << 20);

  ReleaseId publish(Bytes body) override;
  std::size_t release_count() const override;
  std::shared_ptr<const Bytes> body(ReleaseId id) const override;
  ContentKey content_key(ReleaseId id) const override;
  std::optional<ReleaseId> find(const ContentKey& key) const override;
  ReleaseId latest() const override;

  ArtifactStore& store() noexcept { return *store_; }
  const ArtifactStore& store() const noexcept { return *store_; }

 private:
  std::shared_ptr<const Bytes> memo_get(ReleaseId id) const;
  void memo_put(ReleaseId id, std::shared_ptr<const Bytes> body) const;

  std::shared_ptr<ArtifactStore> store_;
  std::uint64_t ram_budget_;

  mutable Mutex memo_mutex_{"StoreBackedVersionStore::memo"};
  /// Front = most recently used.
  mutable std::list<ReleaseId> memo_lru_ GUARDED_BY(memo_mutex_);
  mutable std::unordered_map<
      ReleaseId, std::pair<std::shared_ptr<const Bytes>,
                           std::list<ReleaseId>::iterator>>
      memo_ GUARDED_BY(memo_mutex_);
  mutable std::uint64_t memo_bytes_ GUARDED_BY(memo_mutex_) = 0;
};

/// Admit every stored chain-delta artifact into `service`'s delta cache
/// (store/artifact_store.hpp stored_edges()). Returns how many edges the
/// service accepted — each one passed the service's verifier gate and
/// now serves at zero build cost. Call after constructing the service
/// over the same store so a restarted server starts warm.
std::size_t preload_stored_edges(const ArtifactStore& store,
                                 DeltaService& service);

}  // namespace ipd
