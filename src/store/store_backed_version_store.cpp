#include "store/store_backed_version_store.hpp"

namespace ipd {

StoreBackedVersionStore::StoreBackedVersionStore(
    std::shared_ptr<ArtifactStore> store, std::uint64_t ram_budget)
    : store_(std::move(store)), ram_budget_(ram_budget) {
  if (!store_) {
    throw ValidationError("store adapter: null artifact store");
  }
}

ReleaseId StoreBackedVersionStore::publish(Bytes body) {
  const std::uint64_t before =
      store_->metrics().duplicate_publishes.load(std::memory_order_relaxed);
  auto shared = std::make_shared<const Bytes>(std::move(body));
  const ReleaseId id = store_->publish(*shared);
  if (store_->metrics().duplicate_publishes.load(
          std::memory_order_relaxed) > before) {
    count_duplicate_publish();
  }
  memo_put(id, std::move(shared));
  return id;
}

std::size_t StoreBackedVersionStore::release_count() const {
  return store_->release_count();
}

std::shared_ptr<const Bytes> StoreBackedVersionStore::body(
    ReleaseId id) const {
  if (auto memo = memo_get(id)) return memo;
  std::shared_ptr<const Bytes> reconstructed = store_->body(id);
  memo_put(id, reconstructed);
  return reconstructed;
}

ContentKey StoreBackedVersionStore::content_key(ReleaseId id) const {
  return store_->content_key(id);
}

std::optional<ReleaseId> StoreBackedVersionStore::find(
    const ContentKey& key) const {
  return store_->find(key);
}

ReleaseId StoreBackedVersionStore::latest() const {
  return store_->latest();
}

std::shared_ptr<const Bytes> StoreBackedVersionStore::memo_get(
    ReleaseId id) const {
  const MutexLock lock(memo_mutex_);
  const auto it = memo_.find(id);
  if (it == memo_.end()) return nullptr;
  memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second.second);
  return it->second.first;
}

void StoreBackedVersionStore::memo_put(
    ReleaseId id, std::shared_ptr<const Bytes> body) const {
  if (body->size() > ram_budget_) return;
  const MutexLock lock(memo_mutex_);
  if (memo_.contains(id)) return;  // releases are immutable
  memo_bytes_ += body->size();
  memo_lru_.push_front(id);
  memo_[id] = {std::move(body), memo_lru_.begin()};
  while (memo_bytes_ > ram_budget_ && !memo_lru_.empty()) {
    const ReleaseId victim = memo_lru_.back();
    memo_lru_.pop_back();
    const auto vit = memo_.find(victim);
    memo_bytes_ -= vit->second.first->size();
    memo_.erase(vit);
  }
}

std::size_t preload_stored_edges(const ArtifactStore& store,
                                 DeltaService& service) {
  std::size_t accepted = 0;
  for (const StoredEdge& edge : store.stored_edges()) {
    Bytes artifact = store.stored_artifact(edge.to);
    if (service.preload(edge.from, edge.to, std::move(artifact))) {
      ++accepted;
    }
  }
  return accepted;
}

}  // namespace ipd
