#include "store/chain_policy.hpp"

#include "core/types.hpp"

namespace ipd {

ChainPolicy::ChainPolicy(const ChainPolicyOptions& options)
    : options_(options) {
  if (options_.max_chain_length == 0) {
    throw ValidationError("chain policy: max_chain_length must be >= 1");
  }
  if (options_.max_inflation <= 0.0) {
    throw ValidationError("chain policy: max_inflation must be > 0");
  }
  if (options_.baseline_ratio <= 0.0 || options_.baseline_ratio > 1.0) {
    throw ValidationError("chain policy: baseline_ratio must be in (0, 1]");
  }
}

ChainDecision ChainPolicy::decide(const ChainStats& chain,
                                  std::uint64_t delta_bytes,
                                  std::uint64_t body_bytes) const {
  // A delta near the body's size buys nothing and costs a chain hop at
  // every future reconstruction — the gate fossil applies per artifact.
  if (static_cast<double>(delta_bytes) >=
      options_.baseline_ratio * static_cast<double>(body_bytes)) {
    return {ChainAction::kNewBaseline,
            "delta " + std::to_string(delta_bytes) + "B >= " +
                std::to_string(options_.baseline_ratio) + " of body " +
                std::to_string(body_bytes) + "B"};
  }
  if (options_.baseline_interval != 0 &&
      chain.releases_since_baseline + 1 >= options_.baseline_interval) {
    return {ChainAction::kNewBaseline,
            "baseline interval " +
                std::to_string(options_.baseline_interval) + " reached"};
  }
  if (chain.chain_length + 1 > options_.max_chain_length) {
    return {ChainAction::kFoldToBaseline,
            "chain length " + std::to_string(chain.chain_length + 1) +
                " > cap " + std::to_string(options_.max_chain_length)};
  }
  const double inflation =
      body_bytes == 0
          ? 0.0
          : static_cast<double>(chain.chain_bytes + delta_bytes) /
                static_cast<double>(body_bytes);
  if (inflation > options_.max_inflation) {
    return {ChainAction::kFoldToBaseline,
            "chain inflation " + std::to_string(inflation) + " > cap " +
                std::to_string(options_.max_inflation)};
  }
  return {ChainAction::kAppendDelta,
          "chain length " + std::to_string(chain.chain_length + 1) +
              ", inflation " + std::to_string(inflation)};
}

bool ChainPolicy::accept_fold(std::uint64_t folded_bytes,
                              std::uint64_t body_bytes) const {
  return static_cast<double>(folded_bytes) <
         options_.baseline_ratio * static_cast<double>(body_bytes);
}

const char* chain_action_name(ChainAction action) noexcept {
  switch (action) {
    case ChainAction::kAppendDelta: return "delta";
    case ChainAction::kFoldToBaseline: return "fold";
    case ChainAction::kNewBaseline: return "baseline";
  }
  return "?";
}

}  // namespace ipd
