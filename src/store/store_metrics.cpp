#include "store/store_metrics.hpp"

#include <cstdio>

namespace ipd {

std::string StoreMetrics::snapshot() const {
  std::string out;
  char label[48];
  char line[160];
  for_each([&](const char* name, std::uint64_t value) {
    std::snprintf(label, sizeof label, "%s:", name);
    std::snprintf(line, sizeof line, "%-25s %llu\n", label,
                  static_cast<unsigned long long>(value));
    out += line;
  });
  for_each_histogram([&](const char* name, const obs::Histogram& h) {
    const obs::HistogramSnapshot s = h.snapshot();
    if (s.count == 0) return;
    std::snprintf(label, sizeof label, "%s:", name);
    std::snprintf(line, sizeof line, "%-25s n=%llu mean=%.1f\n", label,
                  static_cast<unsigned long long>(s.count), s.mean());
    out += line;
  });
  return out;
}

}  // namespace ipd
