// Chain layout policy for the artifact store: when does a new release
// ride the existing delta chain, when does the chain get folded back
// onto its baseline, and when does the release become a fresh baseline?
//
// fossil keeps its history exactly this way (a chain-length cap plus
// baseline re-selection as chains grow), and the erasure-coding work on
// delta-based versioning systems shows why the layout must be a
// first-class tunable: chain length trades publish-time bytes against
// reconstruct-time cost, and cumulative chain inflation is what decides
// whether a chain is still cheaper than a full image. The policy here is
// deliberately pure — a function from chain statistics to a decision —
// so tests can table-drive it and the store can log the reason string
// for every layout choice it makes.
#pragma once

#include <cstdint>
#include <string>

namespace ipd {

struct ChainPolicyOptions {
  /// Longest run of deltas between a baseline and a chain tip. A publish
  /// that would exceed it triggers fold-to-baseline (or a new baseline).
  std::size_t max_chain_length = 12;
  /// Cumulative stored chain bytes (all deltas from the baseline to the
  /// tip, inclusive of the candidate) may not exceed this multiple of
  /// the new body's size — past that, reconstruction reads more delta
  /// bytes than a full image would cost, so the chain has gone cold.
  double max_inflation = 1.5;
  /// A single delta at least this fraction of the body it encodes is
  /// not pulling its weight; store the body as a baseline instead.
  double baseline_ratio = 0.7;
  /// Force a full baseline every N releases regardless of delta sizes
  /// (0 = never force; policy-driven only). Periodic baselines bound
  /// the blast radius of a damaged chain record.
  std::size_t baseline_interval = 0;
};

/// What the store should do with one incoming release.
enum class ChainAction : std::uint8_t {
  kAppendDelta = 0,      ///< chain the delta on the current tip
  kFoldToBaseline = 1,   ///< compose the chain into one direct delta
                         ///< from the baseline (chain length resets to 1)
  kNewBaseline = 2,      ///< store the full body; start a fresh chain
};

struct ChainDecision {
  ChainAction action = ChainAction::kNewBaseline;
  std::string reason;  ///< human-readable, logged and shown by `store list`
};

/// Statistics of the chain the candidate would extend.
struct ChainStats {
  std::size_t chain_length = 0;        ///< deltas tip is away from baseline
  std::uint64_t chain_bytes = 0;       ///< stored bytes of those deltas
  std::size_t releases_since_baseline = 0;  ///< releases after the baseline
};

class ChainPolicy {
 public:
  ChainPolicy() = default;
  explicit ChainPolicy(const ChainPolicyOptions& options);

  /// Decide the layout for a release of `body_bytes` whose delta against
  /// the current tip came out at `delta_bytes`, extending `chain`.
  ChainDecision decide(const ChainStats& chain, std::uint64_t delta_bytes,
                       std::uint64_t body_bytes) const;

  /// Second-stage decision after a fold: the folded direct delta came
  /// out at `folded_bytes`. True = keep it as a length-1 chain; false =
  /// it is no better than a baseline, store the full body.
  bool accept_fold(std::uint64_t folded_bytes,
                   std::uint64_t body_bytes) const;

  const ChainPolicyOptions& options() const noexcept { return options_; }

 private:
  ChainPolicyOptions options_;
};

const char* chain_action_name(ChainAction action) noexcept;

}  // namespace ipd
