// Artifact-store observability: counters and histograms in the same
// X-macro discipline as server/metrics.hpp — one list generates the
// members, the iteration, the text snapshot, and the Prometheus
// exposition, so a metric cannot be added to one and missed by another.
//
// Counters are relaxed atomics (statistics, not synchronization);
// histograms are the lock-free obs::Histogram used everywhere else.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace ipd {

// Every StoreMetrics counter exactly once: X(name).
#define IPD_STORE_COUNTERS(X)                                              \
  X(publishes)              /* releases accepted                        */ \
  X(baselines_stored)       /* releases stored as full bodies           */ \
  X(deltas_stored)          /* releases stored as chain deltas          */ \
  X(folds)                  /* chains folded back onto their baseline   */ \
  X(fold_commands)          /* script commands composed while folding   */ \
  X(duplicate_publishes)    /* content republished under a newer id     */ \
  X(bytes_appended)         /* segment + manifest bytes written         */ \
  X(reconstructs)           /* bodies rebuilt from chains               */ \
  X(chain_hops_applied)     /* deltas applied across all reconstructs   */ \
  X(disk_cache_hits)        /* reconstructed-version cache hits         */ \
  X(disk_cache_misses)      /* ... and misses                           */ \
  X(disk_cache_evictions)   /* cached bodies evicted for the budget     */ \
  X(verify_rejects)         /* disk-loaded deltas refused by the gate   */ \
  X(releases_recovered)     /* releases reloaded at open                */ \
  X(torn_records_dropped)   /* torn-tail records truncated at open      */ \
  X(orphan_bytes_truncated) /* segment bytes no manifest record claims  */ \
  X(gc_runs)                /* segment compactions                      */ \
  X(gc_bytes_reclaimed)     /* garbage segment bytes dropped            */

struct StoreMetrics {
#define IPD_DECLARE_COUNTER(name) std::atomic<std::uint64_t> name{0};
  IPD_STORE_COUNTERS(IPD_DECLARE_COUNTER)
#undef IPD_DECLARE_COUNTER

  template <typename Fn>
  void for_each(Fn&& fn) const {
#define IPD_VISIT_COUNTER(name) \
  fn(#name, name.load(std::memory_order_relaxed));
    IPD_STORE_COUNTERS(IPD_VISIT_COUNTER)
#undef IPD_VISIT_COUNTER
  }

  /// Multi-line human-readable snapshot (CLI `store list`, benches).
  std::string snapshot() const;

  void reset() noexcept {
#define IPD_RESET_COUNTER(name) name.store(0, std::memory_order_relaxed);
    IPD_STORE_COUNTERS(IPD_RESET_COUNTER)
#undef IPD_RESET_COUNTER
    histograms_reset();
  }

  // Every StoreHistograms member exactly once: X(name).
#define IPD_STORE_HISTOGRAMS(X)                                           \
  X(publish_ns)      /* publish wall time (build + policy + append)   */  \
  X(reconstruct_ns)  /* body() wall time on a disk-cache miss         */  \
  X(open_ns)         /* recovery scan + index build at open           */  \
  X(artifact_bytes)  /* stored artifact size per publish              */  \
  X(chain_length)    /* chain length at each publish                  */

#define IPD_DECLARE_HISTOGRAM(name) obs::Histogram name;
  IPD_STORE_HISTOGRAMS(IPD_DECLARE_HISTOGRAM)
#undef IPD_DECLARE_HISTOGRAM

  template <typename Fn>
  void for_each_histogram(Fn&& fn) const {
#define IPD_VISIT_HISTOGRAM(name) fn(#name, name);
    IPD_STORE_HISTOGRAMS(IPD_VISIT_HISTOGRAM)
#undef IPD_VISIT_HISTOGRAM
  }

  void histograms_reset() noexcept {
#define IPD_RESET_HISTOGRAM(name) name.reset();
    IPD_STORE_HISTOGRAMS(IPD_RESET_HISTOGRAM)
#undef IPD_RESET_HISTOGRAM
  }
};

}  // namespace ipd
