// Delta composition: given δ₁ encoding B from A and δ₂ encoding C from B,
// produce a single script encoding C directly from A — without ever
// materializing B.
//
// This is the server-side primitive behind delta chains: a publisher who
// keeps per-release deltas can mint a direct old→new delta for any pair
// by folding the chain, at command-stream cost instead of re-running the
// differencer over the full files. Every δ₂ copy that reads B is resolved
// through δ₁'s write map: the piece lands either in a δ₁ copy (becoming a
// copy from A with a shifted offset) or in a δ₁ add (becoming a literal
// sliced out of δ₁'s data).
//
// The composed script is a plain (scratch-space) delta; pass it through
// convert_to_inplace — which needs the real A bytes — if the device needs
// in-place application.
#pragma once

#include "delta/script.hpp"

namespace ipd {

struct ComposeReport {
  std::size_t second_commands = 0;  ///< commands in δ₂
  std::size_t pieces = 0;           ///< fragments after resolution
  length_t literal_bytes = 0;       ///< bytes carried as adds in the result
};

/// Compose `first` (A→B) with `second` (B→C). `first` must be a valid
/// script whose writes tile [0, L_B) where L_B covers every read of
/// `second`; throws ValidationError otherwise. The result reads only A
/// and tiles [0, L_C) exactly. Commands in the result follow `second`'s
/// order with fragments merged where adjacent.
Script compose_scripts(const Script& first, const Script& second,
                       ComposeReport* report_out = nullptr);

}  // namespace ipd
