// Linear-time, constant-space differencer, after Burns & Long (IPCCC '97,
// the paper's reference [5]) and Ajtai et al. [1].
//
// Space is constant because the only data structure is a fingerprint table
// of fixed size 2^table_bits, independent of input length: one pass over
// the reference populates it (first-come-keeps-slot, so earlier — and for
// versioned data, usually aligned — positions win), then one pass over the
// version probes it, verifies candidates byte-for-byte, and extends
// matches in both directions. Collisions and evictions only cost
// compression, never correctness, which is exactly the trade [5] makes to
// reach linear time.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "delta/differ.hpp"

namespace ipd {

/// The fixed-size fingerprint table, exposed so tests can assert the
/// parallel construction path produces the exact serial table.
struct OnePassIndex final : public DifferIndex {
  static constexpr std::uint64_t kEmpty =
      std::numeric_limits<std::uint64_t>::max();

  std::size_t seed = 0;
  std::size_t mask = 0;
  /// slot -> first reference position with that fingerprint; empty()
  /// when the reference is shorter than one seed (nothing can match).
  std::vector<std::uint64_t> table;
};

class OnePassDiffer final : public SegmentedDiffer {
 public:
  explicit OnePassDiffer(const DifferOptions& options = {});

  /// Table construction parallelizes cleanly: each chunk of reference
  /// positions fills a private table with its own first occurrences,
  /// and a lowest-position merge reproduces the serial
  /// first-occurrence-wins table bit for bit.
  std::unique_ptr<DifferIndex> build_index(
      ByteView reference, const ParallelContext& ctx = {}) const override;

  Script scan(const DifferIndex& index, ByteView reference,
              ByteView version) const override;

  const char* name() const noexcept override { return "one-pass"; }

 private:
  DifferOptions options_;
};

}  // namespace ipd
