// Linear-time, constant-space differencer, after Burns & Long (IPCCC '97,
// the paper's reference [5]) and Ajtai et al. [1].
//
// Space is constant because the only data structure is a fingerprint table
// of fixed size 2^table_bits, independent of input length: one pass over
// the reference populates it (first-come-keeps-slot, so earlier — and for
// versioned data, usually aligned — positions win), then one pass over the
// version probes it, verifies candidates byte-for-byte, and extends
// matches in both directions. Collisions and evictions only cost
// compression, never correctness, which is exactly the trade [5] makes to
// reach linear time.
#pragma once

#include "delta/differ.hpp"

namespace ipd {

class OnePassDiffer final : public Differ {
 public:
  explicit OnePassDiffer(const DifferOptions& options);

  Script diff(ByteView reference, ByteView version) const override;
  const char* name() const noexcept override { return "one-pass"; }

 private:
  DifferOptions options_;
};

}  // namespace ipd
