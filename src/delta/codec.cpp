#include "delta/codec.hpp"

#include <algorithm>

#include "core/buffer.hpp"
#include "core/checksum.hpp"
#include "core/lzss.hpp"
#include "core/varint.hpp"

namespace ipd {
namespace {

constexpr char kMagic[4] = {'I', 'P', 'D', '1'};

// PaperByte opcodes.
constexpr std::uint8_t kOpAdd = 0x01;
constexpr std::uint8_t kOpCopyBase = 0x10;  // + f_class*3 + l_class
// Varint opcodes.
constexpr std::uint8_t kOpVarAdd = 0x01;
constexpr std::uint8_t kOpVarCopy = 0x02;

constexpr length_t kPaperMaxAdd = 255;
constexpr length_t kPaperMaxCopy = 0xFFFFFFFFull;

// Width classes for PaperByte copy fields: f in {2,4,8}, l in {1,2,4}.
unsigned f_class(offset_t f) noexcept {
  if (f <= 0xFFFF) return 0;
  if (f <= 0xFFFFFFFFull) return 1;
  return 2;
}
unsigned f_width(unsigned cls) noexcept { return cls == 0 ? 2u : cls == 1 ? 4u : 8u; }

unsigned l_class(length_t l) noexcept {
  if (l <= 0xFF) return 0;
  if (l <= 0xFFFF) return 1;
  return 2;
}
unsigned l_width(unsigned cls) noexcept { return cls == 0 ? 1u : cls == 1 ? 2u : 4u; }

void write_fixed(ByteWriter& w, std::uint64_t v, unsigned width) {
  switch (width) {
    case 1: w.write_u8(static_cast<std::uint8_t>(v)); break;
    case 2: w.write_u16le(static_cast<std::uint16_t>(v)); break;
    case 4: w.write_u32le(static_cast<std::uint32_t>(v)); break;
    default: w.write_u64le(v); break;
  }
}

std::uint64_t read_fixed(ByteReader& r, unsigned width) {
  switch (width) {
    case 1: return r.read_u8();
    case 2: return r.read_u16le();
    case 4: return r.read_u32le();
    default: return r.read_u64le();
  }
}

unsigned paper_offset_width(length_t version_length) noexcept {
  return version_length <= 0xFFFFFFFFull ? 4u : 8u;
}

class PayloadEncoder {
 public:
  PayloadEncoder(DeltaFormat fmt, unsigned offset_width)
      : fmt_(fmt), offset_width_(offset_width) {}

  void encode(ByteWriter& w, const Command& cmd) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      encode_copy(w, *copy);
    } else {
      encode_add(w, std::get<AddCommand>(cmd));
    }
  }

 private:
  bool explicit_offsets() const noexcept {
    return fmt_.offsets == WriteOffsets::kExplicit;
  }

  void encode_copy(ByteWriter& w, const CopyCommand& c) {
    // Split copies whose length exceeds the PaperByte 4-byte length field.
    CopyCommand rest = c;
    while (rest.length > 0) {
      const length_t chunk =
          fmt_.codeword == Codeword::kPaperByte
              ? std::min(rest.length, kPaperMaxCopy)
              : rest.length;
      emit_copy_chunk(w, CopyCommand{rest.from, rest.to, chunk});
      rest.from += chunk;
      rest.to += chunk;
      rest.length -= chunk;
    }
  }

  void emit_copy_chunk(ByteWriter& w, const CopyCommand& c) {
    if (fmt_.codeword == Codeword::kPaperByte) {
      const unsigned fc = f_class(c.from);
      const unsigned lc = l_class(c.length);
      w.write_u8(static_cast<std::uint8_t>(kOpCopyBase + fc * 3 + lc));
      if (explicit_offsets()) write_fixed(w, c.to, offset_width_);
      write_fixed(w, c.from, f_width(fc));
      write_fixed(w, c.length, l_width(lc));
    } else {
      w.write_u8(kOpVarCopy);
      if (explicit_offsets()) w.write_varint(c.to);
      w.write_varint(c.from);
      w.write_varint(c.length);
    }
  }

  void encode_add(ByteWriter& w, const AddCommand& a) {
    if (fmt_.codeword == Codeword::kVarint) {
      w.write_u8(kOpVarAdd);
      if (explicit_offsets()) w.write_varint(a.to);
      w.write_varint(a.length());
      w.write_bytes(a.data);
      return;
    }
    // PaperByte: single-byte length, so long adds split into <=255-byte
    // chunks — the encoding inefficiency §7 of the paper discusses.
    offset_t to = a.to;
    std::size_t pos = 0;
    while (pos < a.data.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(kPaperMaxAdd, a.data.size() - pos);
      w.write_u8(kOpAdd);
      if (explicit_offsets()) write_fixed(w, to, offset_width_);
      w.write_u8(static_cast<std::uint8_t>(chunk));
      w.write_bytes(ByteView(a.data).subspan(pos, chunk));
      pos += chunk;
      to += chunk;
    }
  }

  DeltaFormat fmt_;
  unsigned offset_width_;
};

class PayloadDecoder {
 public:
  PayloadDecoder(DeltaFormat fmt, unsigned offset_width)
      : fmt_(fmt), offset_width_(offset_width) {}

  Script decode(ByteView payload) {
    ByteReader r(payload);
    Script script;
    offset_t running_to = 0;
    while (!r.exhausted()) {
      const std::uint8_t op = r.read_u8();
      if (fmt_.codeword == Codeword::kPaperByte) {
        decode_paper(r, op, running_to, script);
      } else {
        decode_varint_cw(r, op, running_to, script);
      }
    }
    return script;
  }

 private:
  bool explicit_offsets() const noexcept {
    return fmt_.offsets == WriteOffsets::kExplicit;
  }

  offset_t read_to(ByteReader& r, offset_t& running_to, bool paper) {
    if (explicit_offsets()) {
      return paper ? read_fixed(r, offset_width_) : r.read_varint();
    }
    return running_to;
  }

  void decode_paper(ByteReader& r, std::uint8_t op, offset_t& running_to,
                    Script& script) {
    if (op == kOpAdd) {
      const offset_t to = read_to(r, running_to, /*paper=*/true);
      const length_t len = r.read_u8();
      if (len == 0) throw FormatError("add command with zero length");
      const ByteView data = r.read_bytes(len);
      script.push(AddCommand{to, Bytes(data.begin(), data.end())});
      running_to = to + len;
      return;
    }
    if (op >= kOpCopyBase && op < kOpCopyBase + 9) {
      const unsigned fc = (op - kOpCopyBase) / 3;
      const unsigned lc = (op - kOpCopyBase) % 3;
      const offset_t to = read_to(r, running_to, /*paper=*/true);
      const offset_t from = read_fixed(r, f_width(fc));
      const length_t len = read_fixed(r, l_width(lc));
      if (len == 0) throw FormatError("copy command with zero length");
      script.push(CopyCommand{from, to, len});
      running_to = to + len;
      return;
    }
    throw FormatError("unknown PaperByte opcode " + std::to_string(op));
  }

  void decode_varint_cw(ByteReader& r, std::uint8_t op, offset_t& running_to,
                        Script& script) {
    if (op == kOpVarAdd) {
      const offset_t to = read_to(r, running_to, /*paper=*/false);
      const length_t len = r.read_varint();
      if (len == 0) throw FormatError("add command with zero length");
      if (len > r.remaining()) {
        throw FormatError("add command data truncated");
      }
      const ByteView data = r.read_bytes(static_cast<std::size_t>(len));
      script.push(AddCommand{to, Bytes(data.begin(), data.end())});
      running_to = to + len;
      return;
    }
    if (op == kOpVarCopy) {
      const offset_t to = read_to(r, running_to, /*paper=*/false);
      const offset_t from = r.read_varint();
      const length_t len = r.read_varint();
      if (len == 0) throw FormatError("copy command with zero length");
      script.push(CopyCommand{from, to, len});
      running_to = to + len;
      return;
    }
    throw FormatError("unknown Varint opcode " + std::to_string(op));
  }

  DeltaFormat fmt_;
  unsigned offset_width_;
};

// Non-throwing cursor for incremental parsing: every read reports
// "not enough bytes yet" instead of failing, so streaming callers can
// distinguish incomplete from malformed.
class TryReader {
 public:
  explicit TryReader(ByteView data) noexcept : data_(data) {}

  std::size_t position() const noexcept { return pos_; }

  bool u8(std::uint8_t& out) noexcept {
    if (pos_ + 1 > data_.size()) return false;
    out = data_[pos_++];
    return true;
  }

  bool fixed(unsigned width, std::uint64_t& out) noexcept {
    if (pos_ + width > data_.size()) return false;
    out = 0;
    for (unsigned i = width; i > 0; --i) {
      out = (out << 8) | data_[pos_ + i - 1];
    }
    pos_ += width;
    return true;
  }

  /// False when truncated; throws FormatError when definitely malformed
  /// (overlong encoding that no further bytes could fix).
  bool varint(std::uint64_t& out) {
    const auto r = try_decode_varint(data_.subspan(pos_));
    if (!r) {
      if (data_.size() - pos_ >= kMaxVarintBytes) {
        throw FormatError("malformed varint in delta stream");
      }
      return false;
    }
    out = r->value;
    pos_ += r->consumed;
    return true;
  }

  bool bytes(std::size_t n, ByteView& out) noexcept {
    if (pos_ + n > data_.size()) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

/// Core single-command decode with field-precise failure reporting; the
/// throwing/streaming entry points below are thin wrappers. `running_to`
/// is committed only on kOk, so a truncated probe can be retried after
/// more bytes arrive.
CommandProbe probe_impl(ByteView data, DeltaFormat fmt, unsigned offset_width,
                        offset_t& running_to) {
  CommandProbe probe;
  const auto truncated = [&](const char* field) {
    probe.status = CommandProbe::Status::kTruncated;
    probe.detail = std::string(field) + " truncated: stream ends mid-codeword";
    return probe;
  };
  const auto malformed = [&](std::string why) {
    probe.status = CommandProbe::Status::kMalformed;
    probe.detail = std::move(why);
    return probe;
  };
  const auto ok = [&](Command command, std::size_t consumed, offset_t next_to) {
    probe.status = CommandProbe::Status::kOk;
    probe.command = std::move(command);
    probe.consumed = consumed;
    running_to = next_to;
    return probe;
  };

  TryReader r(data);
  std::uint8_t op = 0;
  if (!r.u8(op)) return truncated("opcode");
  const bool exp = fmt.offsets == WriteOffsets::kExplicit;
  const bool paper = fmt.codeword == Codeword::kPaperByte;

  // TryReader::varint throws on an overlong encoding no suffix can fix;
  // fold that into the malformed status so probing never raises.
  enum class Field { kOk, kTruncated, kMalformed };
  const auto read_varint = [&](std::uint64_t& out) {
    try {
      return r.varint(out) ? Field::kOk : Field::kTruncated;
    } catch (const FormatError&) {
      return Field::kMalformed;
    }
  };
  const auto read_to = [&](std::uint64_t& to) {
    if (!exp) {
      to = running_to;
      return Field::kOk;
    }
    if (paper) return r.fixed(offset_width, to) ? Field::kOk : Field::kTruncated;
    return read_varint(to);
  };
  const auto field = [&](Field got, const char* name,
                         CommandProbe& out) -> bool {
    if (got == Field::kOk) return true;
    out = got == Field::kTruncated
              ? truncated(name)
              : malformed("malformed varint in delta stream");
    return false;
  };

  if (paper) {
    if (op == kOpAdd) {
      std::uint64_t to = 0, len = 0;
      std::uint8_t len8 = 0;
      CommandProbe fail;
      if (!field(read_to(to), "add write offset", fail)) return fail;
      if (!r.u8(len8)) return truncated("add length");
      len = len8;
      if (len == 0) return malformed("add command with zero length");
      ByteView body;
      if (!r.bytes(static_cast<std::size_t>(len), body)) {
        probe.status = CommandProbe::Status::kTruncated;
        probe.detail = "add payload shorter than declared: need " +
                       std::to_string(len) + " bytes, have " +
                       std::to_string(data.size() - r.position());
        return probe;
      }
      return ok(Command(AddCommand{to, Bytes(body.begin(), body.end())}),
                r.position(), to + len);
    }
    if (op >= kOpCopyBase && op < kOpCopyBase + 9) {
      const unsigned fc = (op - kOpCopyBase) / 3;
      const unsigned lc = (op - kOpCopyBase) % 3;
      std::uint64_t to = 0, from = 0, len = 0;
      CommandProbe fail;
      if (!field(read_to(to), "copy write offset", fail)) return fail;
      if (!r.fixed(f_width(fc), from)) return truncated("copy source offset");
      if (!r.fixed(l_width(lc), len)) return truncated("copy length");
      if (len == 0) return malformed("copy command with zero length");
      return ok(Command(CopyCommand{from, to, len}), r.position(), to + len);
    }
    return malformed("unknown PaperByte opcode " + std::to_string(op));
  }

  if (op == kOpVarAdd) {
    std::uint64_t to = 0, len = 0;
    CommandProbe fail;
    if (!field(read_to(to), "add write offset", fail)) return fail;
    if (!field(read_varint(len), "add length", fail)) return fail;
    if (len == 0) return malformed("add command with zero length");
    ByteView body;
    if (!r.bytes(static_cast<std::size_t>(len), body)) {
      probe.status = CommandProbe::Status::kTruncated;
      probe.detail = "add payload shorter than declared: need " +
                     std::to_string(len) + " bytes, have " +
                     std::to_string(data.size() - r.position());
      return probe;
    }
    return ok(Command(AddCommand{to, Bytes(body.begin(), body.end())}),
              r.position(), to + len);
  }
  if (op == kOpVarCopy) {
    std::uint64_t to = 0, from = 0, len = 0;
    CommandProbe fail;
    if (!field(read_to(to), "copy write offset", fail)) return fail;
    if (!field(read_varint(from), "copy source offset", fail)) return fail;
    if (!field(read_varint(len), "copy length", fail)) return fail;
    if (len == 0) return malformed("copy command with zero length");
    return ok(Command(CopyCommand{from, to, len}), r.position(), to + len);
  }
  return malformed("unknown Varint opcode " + std::to_string(op));
}

/// Try to decode one command at the front of `data`. Returns the command
/// and bytes consumed, or nullopt when more bytes are needed. Throws
/// FormatError for malformed content. `running_to` supplies and receives
/// the implicit write offset.
std::optional<std::pair<Command, std::size_t>> try_decode_command(
    ByteView data, DeltaFormat fmt, unsigned offset_width,
    offset_t& running_to) {
  CommandProbe probe = probe_impl(data, fmt, offset_width, running_to);
  switch (probe.status) {
    case CommandProbe::Status::kOk:
      return std::make_pair(std::move(*probe.command), probe.consumed);
    case CommandProbe::Status::kTruncated:
      return std::nullopt;
    case CommandProbe::Status::kMalformed:
      break;
  }
  throw FormatError(probe.detail);
}

}  // namespace

CommandProbe probe_command(ByteView data, DeltaFormat format,
                           length_t version_length, offset_t& running_to) {
  return probe_impl(data, format, paper_offset_width(version_length),
                    running_to);
}

std::optional<std::pair<DeltaHeader, std::size_t>> try_parse_header(
    ByteView data) {
  TryReader r(data);
  ByteView magic;
  if (!r.bytes(4, magic)) return std::nullopt;
  if (!std::equal(magic.begin(), magic.end(), kMagic)) {
    throw FormatError("bad magic: not an ipdelta file");
  }
  std::uint8_t fmt_byte = 0, flags = 0;
  if (!r.u8(fmt_byte) || !r.u8(flags)) return std::nullopt;
  const unsigned cw = fmt_byte >> 4;
  const unsigned off = fmt_byte & 0x0F;
  if (cw > 1 || off > 1) {
    throw FormatError("unknown format byte " + std::to_string(fmt_byte));
  }
  if (flags > 3) {
    throw FormatError("unknown flags byte " + std::to_string(flags));
  }
  DeltaHeader header;
  header.format = DeltaFormat{static_cast<Codeword>(cw),
                              static_cast<WriteOffsets>(off)};
  header.in_place = (flags & 1) != 0;
  header.compress_payload = (flags & 2) != 0;
  std::uint64_t crc = 0, adler = 0;
  if (!r.varint(header.reference_length) ||
      !r.varint(header.version_length) || !r.fixed(4, crc) ||
      !r.varint(header.payload_length)) {
    return std::nullopt;
  }
  if (header.compress_payload) {
    if (!r.varint(header.payload_uncompressed)) return std::nullopt;
  } else {
    header.payload_uncompressed = header.payload_length;
  }
  if (!r.fixed(4, adler)) return std::nullopt;
  header.version_crc = static_cast<std::uint32_t>(crc);
  header.payload_adler = static_cast<std::uint32_t>(adler);
  return std::make_pair(header, r.position());
}

StreamingCommandDecoder::StreamingCommandDecoder(DeltaFormat format,
                                                 length_t version_length)
    : format_(format), offset_width_(paper_offset_width(version_length)) {}

void StreamingCommandDecoder::feed(ByteView chunk) {
  // Compact the consumed prefix before growing the buffer.
  if (pending_pos_ > 0 && pending_pos_ >= pending_.size() / 2) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(pending_pos_));
    pending_pos_ = 0;
  }
  pending_.insert(pending_.end(), chunk.begin(), chunk.end());
}

std::optional<Command> StreamingCommandDecoder::next() {
  const ByteView avail = ByteView(pending_).subspan(pending_pos_);
  if (avail.empty()) return std::nullopt;
  auto decoded =
      try_decode_command(avail, format_, offset_width_, running_to_);
  if (!decoded) return std::nullopt;
  pending_pos_ += decoded->second;
  consumed_ += decoded->second;
  return std::move(decoded->first);
}

std::size_t StreamingCommandDecoder::buffered() const noexcept {
  return pending_.size() - pending_pos_;
}

const char* format_name(DeltaFormat f) noexcept {
  if (f == kPaperSequential) return "paper/no-write-offsets";
  if (f == kPaperExplicit) return "paper/write-offsets";
  if (f == kVarintSequential) return "varint/no-write-offsets";
  return "varint/write-offsets";
}

Bytes serialize_delta(const DeltaFile& file) {
  if (file.format.offsets == WriteOffsets::kImplicit &&
      !file.script.in_write_order()) {
    throw ValidationError(
        "implicit-offset format requires commands in write order with no "
        "gaps; permuted (in-place) scripts need explicit write offsets");
  }

  const unsigned offw = paper_offset_width(file.version_length);
  PayloadEncoder enc(file.format, offw);
  ByteWriter payload;
  for (const Command& c : file.script.commands()) {
    enc.encode(payload, c);
  }
  Bytes body = payload.take();
  const std::size_t uncompressed = body.size();
  bool compressed = file.compress_payload;
  if (compressed) {
    Bytes packed = lzss_encode(body);
    // Auto-fallback: store uncompressed when compression does not pay
    // (tiny or copy-dominated payloads), so requesting compression never
    // grows the file.
    if (packed.size() + varint_size(uncompressed) < body.size()) {
      body = std::move(packed);
    } else {
      compressed = false;
    }
  }

  ByteWriter w;
  w.write_string(std::string_view(kMagic, 4));
  w.write_u8(static_cast<std::uint8_t>(
      (static_cast<unsigned>(file.format.codeword) << 4) |
      static_cast<unsigned>(file.format.offsets)));
  w.write_u8(static_cast<std::uint8_t>((file.in_place ? 1 : 0) |
                                       (compressed ? 2 : 0)));
  w.write_varint(file.reference_length);
  w.write_varint(file.version_length);
  w.write_u32le(file.version_crc);
  w.write_varint(body.size());
  if (compressed) {
    w.write_varint(uncompressed);
  }
  w.write_u32le(adler32(body));
  w.write_bytes(body);
  return w.take();
}

DeltaFile deserialize_delta(ByteView data) {
  const auto parsed = try_parse_header(data);
  if (!parsed) {
    throw FormatError("truncated delta header");
  }
  const DeltaHeader& header = parsed->first;
  const std::size_t header_bytes = parsed->second;

  if (header.payload_length > data.size() - header_bytes) {
    throw FormatError("payload truncated");
  }
  const ByteView payload = data.subspan(
      header_bytes, static_cast<std::size_t>(header.payload_length));
  if (header_bytes + header.payload_length != data.size()) {
    throw FormatError("trailing garbage after payload");
  }
  if (adler32(payload) != header.payload_adler) {
    throw FormatError("payload checksum mismatch");
  }

  DeltaFile file;
  file.format = header.format;
  file.in_place = header.in_place;
  file.compress_payload = header.compress_payload;
  file.reference_length = header.reference_length;
  file.version_length = header.version_length;
  file.version_crc = header.version_crc;

  Bytes decompressed;
  ByteView commands = payload;
  if (header.compress_payload) {
    decompressed = lzss_decode(
        payload, static_cast<std::size_t>(header.payload_uncompressed));
    commands = decompressed;
  }

  PayloadDecoder dec(file.format, paper_offset_width(file.version_length));
  file.script = dec.decode(commands);
  file.script.validate(file.reference_length, file.version_length);
  return file;
}

CodewordCostModel::CodewordCostModel(DeltaFormat format,
                                     length_t version_length) noexcept
    : format_(format), offset_width_(paper_offset_width(version_length)) {}

std::size_t CodewordCostModel::copy_size(const CopyCommand& c) const noexcept {
  const bool exp = format_.offsets == WriteOffsets::kExplicit;
  if (format_.codeword == Codeword::kVarint) {
    return 1 + (exp ? varint_size(c.to) : 0) + varint_size(c.from) +
           varint_size(c.length);
  }
  std::size_t total = 0;
  CopyCommand rest = c;
  while (rest.length > 0) {
    const length_t chunk = std::min(rest.length, kPaperMaxCopy);
    total += 1 + (exp ? offset_width_ : 0) + f_width(f_class(rest.from)) +
             l_width(l_class(chunk));
    rest.from += chunk;
    rest.to += chunk;
    rest.length -= chunk;
  }
  return total;
}

std::size_t CodewordCostModel::add_size(offset_t to,
                                        length_t length) const noexcept {
  const bool exp = format_.offsets == WriteOffsets::kExplicit;
  if (format_.codeword == Codeword::kVarint) {
    return 1 + (exp ? varint_size(to) : 0) + varint_size(length) +
           static_cast<std::size_t>(length);
  }
  const std::uint64_t chunks = (length + kPaperMaxAdd - 1) / kPaperMaxAdd;
  return static_cast<std::size_t>(chunks * (2 + (exp ? offset_width_ : 0)) +
                                  length);
}

std::uint64_t CodewordCostModel::conversion_cost(
    const CopyCommand& c) const noexcept {
  const std::size_t add = add_size(c.to, c.length);
  const std::size_t copy = copy_size(c);
  return add > copy ? add - copy : 1;
}

}  // namespace ipd
