#include "delta/parallel_differ.hpp"

#include <algorithm>
#include <cassert>

#include "core/rolling_hash.hpp"
#include "obs/trace.hpp"

namespace ipd {
namespace {

/// Fingerprint window for cut alignment. Small enough that every
/// candidate range contains many windows, large enough that the
/// minimum is a real content feature and not a single byte value.
constexpr std::size_t kCutWindow = 16;

/// Shift every write offset in `script` by `delta` (segment-local to
/// whole-version coordinates).
void shift_writes(Script& script, offset_t delta) {
  if (delta == 0) return;
  for (Command& c : script.commands()) {
    if (auto* copy = std::get_if<CopyCommand>(&c)) {
      copy->to += delta;
    } else {
      std::get<AddCommand>(c).to += delta;
    }
  }
}

}  // namespace

std::vector<std::size_t> plan_segments(ByteView version,
                                       const SegmentPlanOptions& options) {
  const std::size_t n = version.size();
  std::vector<std::size_t> bounds{0};
  if (options.segment_bytes == 0 || n < options.min_input ||
      n < 2 * options.segment_bytes || n < 2 * kCutWindow) {
    bounds.push_back(n);
    return bounds;
  }
  const std::size_t count = n / options.segment_bytes;  // >= 2
  // Clamp the search half-width so windows around consecutive ideal
  // cuts can never overlap (ideals are >= segment_bytes apart).
  const std::size_t half =
      std::min(options.align_window, options.segment_bytes / 4);

  RollingHash rh(kCutWindow);
  for (std::size_t k = 1; k < count; ++k) {
    const std::size_t ideal = k * n / count;
    std::size_t lo = ideal > half ? ideal - half : 1;
    std::size_t hi = std::min(ideal + half, n - kCutWindow);
    lo = std::max(lo, bounds.back() + 1);
    std::size_t cut = std::min(std::max(ideal, lo), hi);
    if (lo < hi) {
      // The content-minimal window start in [lo, hi), lowest position
      // winning ties — a deterministic function of the bytes alone.
      std::uint64_t h = rh.init(version.subspan(lo));
      std::uint64_t best = RollingHash::mix(h);
      cut = lo;
      for (std::size_t pos = lo + 1; pos < hi; ++pos) {
        h = rh.roll(h, version[pos - 1], version[pos - 1 + kCutWindow]);
        const std::uint64_t mixed = RollingHash::mix(h);
        if (mixed < best) {
          best = mixed;
          cut = pos;
        }
      }
    }
    if (cut > bounds.back() && cut < n) {
      bounds.push_back(cut);
    }
  }
  bounds.push_back(n);
  return bounds;
}

Script stitch_segments(std::vector<Script> parts,
                       const std::vector<std::size_t>& bounds,
                       ByteView reference) {
  assert(bounds.size() == parts.size() + 1);
  std::vector<Command> out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    shift_writes(parts[i], static_cast<offset_t>(bounds[i]));
    std::vector<Command>& cmds = parts[i].commands();
    std::size_t j = 0;
    // Junction repair: the commands straddling the cut are merged /
    // re-extended until no rule applies. Every rule moves bytes between
    // abutting commands without changing what any version byte holds,
    // so the tiling invariant survives by construction.
    while (i > 0 && j < cmds.size() && !out.empty()) {
      Command& prev_cmd = out.back();
      Command& next_cmd = cmds[j];
      if (auto* p = std::get_if<CopyCommand>(&prev_cmd)) {
        if (auto* nc = std::get_if<CopyCommand>(&next_cmd)) {
          // copy|copy — one match the cut split in two.
          if (p->from + p->length == nc->from &&
              p->to + p->length == nc->to) {
            p->length += nc->length;
            ++j;
            continue;
          }
          break;
        }
        // copy|add — forward-extend the copy over literals matching
        // the bytes after its read interval.
        auto& na = std::get<AddCommand>(next_cmd);
        std::size_t k = 0;
        while (k < na.data.size() &&
               p->from + p->length + k < reference.size() &&
               reference[static_cast<std::size_t>(p->from + p->length + k)] ==
                   na.data[k]) {
          ++k;
        }
        if (k == 0) break;
        p->length += k;
        na.to += k;
        na.data.erase(na.data.begin(),
                      na.data.begin() + static_cast<std::ptrdiff_t>(k));
        if (na.data.empty()) {
          ++j;  // the whole add was really the match continuing
          continue;
        }
        break;
      }
      auto& pa = std::get<AddCommand>(prev_cmd);
      if (auto* nc = std::get_if<CopyCommand>(&next_cmd)) {
        // add|copy — extend the copy backwards over literal bytes that
        // match the reference (the backward extension the cut denied
        // the right-hand scan).
        std::size_t k = 0;
        while (k < pa.data.size() && nc->from > k &&
               reference[static_cast<std::size_t>(nc->from) - 1 - k] ==
                   pa.data[pa.data.size() - 1 - k]) {
          ++k;
        }
        if (k == 0) break;
        nc->from -= k;
        nc->to -= k;
        nc->length += k;
        pa.data.resize(pa.data.size() - k);
        if (pa.data.empty()) {
          out.pop_back();  // may expose a copy|copy merge — loop again
          continue;
        }
        break;
      }
      // add|add — always abutting at a junction; concatenate.
      auto& na = std::get<AddCommand>(next_cmd);
      pa.data.insert(pa.data.end(), na.data.begin(), na.data.end());
      ++j;
    }
    for (; j < cmds.size(); ++j) {
      out.push_back(std::move(cmds[j]));
    }
  }
  return Script(std::move(out));
}

ParallelDiffResult diff_parallel(const Differ& differ, ByteView reference,
                                 ByteView version,
                                 const SegmentPlanOptions& plan,
                                 const ParallelContext& ctx) {
  const auto* segmented = dynamic_cast<const SegmentedDiffer*>(&differ);
  if (segmented == nullptr) {
    return {differ.diff(reference, version), 1};
  }
  const std::vector<std::size_t> bounds = plan_segments(version, plan);
  const std::size_t segments = bounds.size() - 1;
  const std::unique_ptr<DifferIndex> index =
      segmented->build_index(reference, ctx);
  if (segments <= 1) {
    return {segmented->scan(*index, reference, version), 1};
  }
  std::vector<Script> parts(segments);
  parallel_for(ctx, segments, [&](std::size_t k) {
    const std::size_t begin = bounds[k];
    const std::size_t length = bounds[k + 1] - begin;
    obs::Span span(obs::Stage::kDiffParallel, length);
    parts[k] = segmented->scan(*index, reference,
                               version.subspan(begin, length));
  });
  return {stitch_segments(std::move(parts), bounds, reference), segments};
}

}  // namespace ipd
