// Differencing algorithms: given reference R and version V, produce a
// Script of copy/add commands that rebuilds V from R (§2/§3).
//
// The paper's delta files come from the linear-time constant-space
// algorithm of Burns & Long [5] / Ajtai et al. [1]; our `kOnePass`
// differencer follows that design (fixed-size seed-fingerprint table, one
// scan per file). `kGreedy` is the Reichenberger [11]-style hash-chain
// greedy algorithm: better compression, quadratic worst case — the classic
// trade the paper's §2 describes. The in-place converter is differencer-
// agnostic; every experiment can run under either.
#pragma once

#include <memory>
#include <string>

#include "core/parallel.hpp"
#include "delta/script.hpp"

namespace ipd {

struct DifferOptions {
  /// Fingerprinted substring ("seed") length; also the minimum match the
  /// matcher can detect. 16 bytes works well on binary and text alike.
  std::size_t seed_length = 16;
  /// Minimum copy length worth emitting; shorter matches become literals.
  std::size_t min_match = 16;
  /// Greedy only: maximum hash-chain positions probed per version offset.
  /// Bounds the quadratic blow-up on repetitive inputs.
  std::size_t max_chain = 64;
  /// One-pass only: log2 of the fingerprint table size. The table is this
  /// size regardless of input length — the algorithm's "constant space".
  std::size_t table_bits = 18;
  /// Block-aligned only: the alignment granularity.
  std::size_t block_size = 512;
};

enum class DifferKind {
  kGreedy,        ///< hash chains, longest match, near-optimal encodings
  kOnePass,       ///< linear time, constant space, paper-faithful substrate
  kSuffixGreedy,  ///< suffix-array exact longest match — the §2 optimum
  kBlockAligned,  ///< fixed-block baseline (§2 pre-history); worst
};

const char* differ_name(DifferKind kind) noexcept;

class Differ {
 public:
  virtual ~Differ() = default;

  /// Compute a delta script. The result is in write order, tiles
  /// [0, version.size()) exactly, and every copy reads inside the
  /// reference — i.e. Script::validate() passes by construction.
  virtual Script diff(ByteView reference, ByteView version) const = 0;

  virtual const char* name() const noexcept = 0;
};

/// Opaque reference index a SegmentedDiffer builds once and scans many
/// times. Indexes may hold views into the reference bytes, so the
/// reference must outlive the index. Indexes are immutable after
/// construction — concurrent scan() calls against one index are safe.
class DifferIndex {
 public:
  virtual ~DifferIndex() = default;

 protected:
  DifferIndex() = default;
};

/// A differ whose work splits into "index the reference" and "scan a
/// version against that index". The split is what makes segmented
/// parallel differencing possible (delta/parallel_differ.hpp): the
/// index is built once — itself parallel when a ParallelContext is
/// supplied — and version segments are scanned concurrently against it.
///
/// Contract: scan(*build_index(R), R, V) == diff(R, V), and scan's
/// output depends only on (index contents, R, V) — never on which
/// thread runs it.
class SegmentedDiffer : public Differ {
 public:
  /// diff() via the split: build the index, scan the whole version.
  Script diff(ByteView reference, ByteView version) const override;

  /// Build the reference index. `ctx` parallelizes construction where
  /// the index structure permits; the resulting index is byte-identical
  /// at any parallelism.
  virtual std::unique_ptr<DifferIndex> build_index(
      ByteView reference, const ParallelContext& ctx = {}) const = 0;

  /// Scan `version` (typically a segment of a larger file) against an
  /// index previously built for `reference`. Write offsets in the
  /// result are relative to the start of `version`. Throws
  /// ValidationError when handed another differ's index.
  virtual Script scan(const DifferIndex& index, ByteView reference,
                      ByteView version) const = 0;
};

std::unique_ptr<Differ> make_differ(DifferKind kind,
                                    const DifferOptions& options = {});

/// One-shot convenience wrapper.
Script diff_bytes(DifferKind kind, ByteView reference, ByteView version,
                  const DifferOptions& options = {});

/// Incremental script assembly in write order: literals accumulate into a
/// pending add; copies flush it. Used by both differencers and handy for
/// building test fixtures.
class ScriptBuilder {
 public:
  /// Append one literal version byte at the current write offset.
  void literal(std::uint8_t byte);

  /// Append `data` as literal bytes.
  void literals(ByteView data);

  /// Remove the last `n` pending literal bytes (used when a match extends
  /// backwards over bytes previously classed as literals).
  /// Precondition: n <= pending_literals().
  void retract(std::size_t n);

  /// Emit copy of `length` reference bytes starting at `from`.
  void copy(offset_t from, length_t length);

  std::size_t pending_literals() const noexcept { return pending_.size(); }
  offset_t write_offset() const noexcept {
    return cursor_ + pending_.size();
  }

  /// Flush pending literals and return the finished script.
  Script finish();

 private:
  void flush();

  Script script_;
  Bytes pending_;
  offset_t cursor_ = 0;  // write offset at the start of `pending_`
};

}  // namespace ipd
