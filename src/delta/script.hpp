// Script: an ordered sequence of delta commands plus the structural
// invariants the paper relies on (§3): write intervals of all commands are
// pairwise disjoint, and together they exactly tile the version file
// [0, L_V). Commands are applied in sequence order.
#pragma once

#include <string>
#include <vector>

#include "delta/command.hpp"

namespace ipd {

/// Aggregate counts over a script, used by stats and the benches.
struct ScriptSummary {
  std::size_t copy_count = 0;
  std::size_t add_count = 0;
  length_t copied_bytes = 0;  ///< version bytes produced by copies
  length_t added_bytes = 0;   ///< version bytes carried literally

  length_t version_bytes() const noexcept { return copied_bytes + added_bytes; }
};

class Script {
 public:
  Script() = default;
  explicit Script(std::vector<Command> commands)
      : commands_(std::move(commands)) {}

  const std::vector<Command>& commands() const noexcept { return commands_; }
  std::vector<Command>& commands() noexcept { return commands_; }
  std::size_t size() const noexcept { return commands_.size(); }
  bool empty() const noexcept { return commands_.empty(); }

  void push(CopyCommand c) { commands_.emplace_back(std::move(c)); }
  void push(AddCommand a) { commands_.emplace_back(std::move(a)); }
  void push(Command c) { commands_.emplace_back(std::move(c)); }

  /// Length of the version file this script materialises: the sum of all
  /// command lengths (== max write end + 1 for a valid script; this
  /// overload does not require validity).
  length_t version_length() const noexcept;

  ScriptSummary summary() const noexcept;

  /// Copies and adds split into separate vectors, preserving order.
  std::vector<CopyCommand> copies() const;
  std::vector<AddCommand> adds() const;

  /// Validate against the §3 model:
  ///  * every command length >= 1;
  ///  * copy read intervals lie inside [0, reference_length);
  ///  * write intervals are pairwise disjoint;
  ///  * write intervals tile [0, version_length) exactly.
  /// Throws ValidationError with a diagnostic on the first violation.
  void validate(length_t reference_length, length_t version_length) const;

  /// True iff commands appear in strictly increasing write-offset order
  /// with no gaps — the precondition for the implicit-write-offset
  /// ("no write offsets", Table 1 column 1) codeword format.
  bool in_write_order() const noexcept;

  /// Stable-sort all commands by write offset. Any valid script can be
  /// reordered freely (§3: "any permutation ... materializes the same
  /// output"), so this never changes the encoded version.
  void sort_by_write_offset();

  /// Human-readable listing (one command per line) for debugging/CLI.
  std::string to_text(std::size_t max_commands = 64) const;

  bool operator==(const Script&) const = default;

 private:
  std::vector<Command> commands_;
};

/// Apply-order-independence helper: scripts that contain the same command
/// multiset encode the same version. Compares write-offset-sorted copies.
bool same_effect(const Script& a, const Script& b);

}  // namespace ipd
