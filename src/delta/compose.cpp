#include "delta/compose.hpp"

#include <algorithm>

namespace ipd {
namespace {

/// δ₁'s commands sorted by write offset — the "what wrote B[x]?" map.
struct WriteMap {
  std::vector<const Command*> commands;  // sorted by write offset
  std::vector<offset_t> starts;

  explicit WriteMap(const Script& first) {
    commands.reserve(first.size());
    for (const Command& c : first.commands()) {
      if (command_length(c) > 0) {
        commands.push_back(&c);
      }
    }
    std::sort(commands.begin(), commands.end(),
              [](const Command* a, const Command* b) {
                return command_to(*a) < command_to(*b);
              });
    starts.reserve(commands.size());
    offset_t expected = 0;
    for (const Command* c : commands) {
      if (command_to(*c) != expected) {
        throw ValidationError(
            "compose: first script's writes must tile B contiguously");
      }
      starts.push_back(expected);
      expected += command_length(*c);
    }
    total = expected;
  }

  length_t total = 0;

  /// Index of the command that writes B[offset].
  std::size_t locate(offset_t offset) const {
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), offset);
    return static_cast<std::size_t>(it - starts.begin()) - 1;
  }
};

/// Merges output fragments: adjacent copies that continue each other and
/// adjacent adds fuse back together, so composition does not fragment the
/// stream more than necessary.
class Emitter {
 public:
  void copy(offset_t from, offset_t to, length_t length) {
    if (auto* prev = last_copy();
        prev != nullptr && prev->to + prev->length == to &&
        prev->from + prev->length == from) {
      prev->length += length;
      return;
    }
    commands_.emplace_back(CopyCommand{from, to, length});
  }

  void add(offset_t to, ByteView data) {
    if (auto* prev = last_add();
        prev != nullptr && prev->to + prev->length() == to) {
      prev->data.insert(prev->data.end(), data.begin(), data.end());
      return;
    }
    commands_.emplace_back(AddCommand{to, Bytes(data.begin(), data.end())});
  }

  Script finish() { return Script(std::move(commands_)); }

 private:
  CopyCommand* last_copy() {
    return commands_.empty() ? nullptr
                             : std::get_if<CopyCommand>(&commands_.back());
  }
  AddCommand* last_add() {
    return commands_.empty() ? nullptr
                             : std::get_if<AddCommand>(&commands_.back());
  }
  std::vector<Command> commands_;
};

}  // namespace

Script compose_scripts(const Script& first, const Script& second,
                       ComposeReport* report_out) {
  const WriteMap map(first);
  ComposeReport report;
  report.second_commands = second.size();

  Emitter out;
  for (const Command& cmd : second.commands()) {
    if (const auto* add = std::get_if<AddCommand>(&cmd)) {
      if (!add->data.empty()) {
        out.add(add->to, add->data);
        report.literal_bytes += add->data.size();
        ++report.pieces;
      }
      continue;
    }
    const CopyCommand& copy = std::get<CopyCommand>(cmd);
    if (copy.length == 0) continue;
    if (copy.from + copy.length > map.total) {
      throw ValidationError("compose: second script reads past B's end");
    }
    // Resolve B[from, from+length) through δ₁, piece by piece.
    offset_t b_pos = copy.from;
    offset_t c_pos = copy.to;
    length_t remaining = copy.length;
    std::size_t idx = map.locate(b_pos);
    while (remaining > 0) {
      const Command& writer = *map.commands[idx];
      const offset_t writer_start = map.starts[idx];
      const length_t writer_len = command_length(writer);
      const offset_t offset_in_writer = b_pos - writer_start;
      const length_t n =
          std::min<length_t>(remaining, writer_len - offset_in_writer);

      if (const auto* wcopy = std::get_if<CopyCommand>(&writer)) {
        out.copy(wcopy->from + offset_in_writer, c_pos, n);
      } else {
        const AddCommand& wadd = std::get<AddCommand>(writer);
        out.add(c_pos,
                ByteView(wadd.data)
                    .subspan(static_cast<std::size_t>(offset_in_writer),
                             static_cast<std::size_t>(n)));
        report.literal_bytes += n;
      }
      ++report.pieces;
      b_pos += n;
      c_pos += n;
      remaining -= n;
      ++idx;
    }
  }

  if (report_out != nullptr) {
    *report_out = report;
  }
  return out.finish();
}

}  // namespace ipd
