// Block-partitioned parallel differencing.
//
// The version file is split into content-aligned segments, every segment
// is scanned concurrently against ONE shared reference index, and the
// per-segment scripts are stitched back together with boundary-match
// repair (a copy reaching a cut is re-extended across it, so a cut in
// the middle of a long match costs a few bytes at worst, not a broken
// command).
//
// THE DETERMINISM CONTRACT: the segment plan is a pure function of
// (version content, options) — never of the parallelism, the pool, or
// scheduling — and each segment's scan is a pure function of (index,
// reference, segment). parallelism=1 runs the identical segmented
// computation inline, so the output is byte-identical at every thread
// count by construction; the pipeline test matrix enforces this for
// every differ × format × cycle policy.
#pragma once

#include <vector>

#include "core/parallel.hpp"
#include "delta/differ.hpp"

namespace ipd {

struct SegmentPlanOptions {
  /// Versions smaller than this are never split (one segment): the
  /// fork/join and stitch overhead only pays off on large inputs.
  std::size_t min_input = std::size_t{4} << 20;
  /// Target segment size. The actual count is version_size /
  /// segment_bytes, with cuts drifting up to align_window bytes from
  /// the equal-size ideal to land on content features.
  std::size_t segment_bytes = std::size_t{1} << 20;
  /// Half-width of the window searched around each ideal cut for the
  /// content-minimal position (clamped to segment_bytes / 4 so
  /// neighbouring searches can never cross).
  std::size_t align_window = std::size_t{4} << 10;
};

/// Segment boundaries for `version`: a strictly increasing sequence
/// starting at 0 and ending at version.size() (so bounds.size() - 1
/// segments). Each interior cut is the position in a window around the
/// equal-size ideal whose content fingerprint is minimal — cuts follow
/// content, so an edit in one segment does not move the others' cuts.
/// Deterministic: depends only on (version, options).
std::vector<std::size_t> plan_segments(ByteView version,
                                       const SegmentPlanOptions& options);

/// Concatenate per-segment scripts (parts[k] scanned from
/// version[bounds[k], bounds[k+1])) into one whole-version script,
/// repairing each junction:
///   * copies whose reads abut in the reference merge into one;
///   * adjacent adds concatenate;
///   * a copy right of the cut extends backwards over literal bytes
///     that match the reference (reproducing the serial differ's
///     backward extension the cut interrupted);
///   * a copy left of the cut extends forwards over matching literals.
/// Pure function — no parallelism involved. Exposed for tests.
Script stitch_segments(std::vector<Script> parts,
                       const std::vector<std::size_t>& bounds,
                       ByteView reference);

struct ParallelDiffResult {
  Script script;
  /// Segments actually scanned (1 == unsegmented path). This is the
  /// diff fan-out the service histograms record.
  std::size_t segments = 1;
};

/// Diff `version` against `reference` with segment-level parallelism.
/// Falls back to a plain serial diff() for differs that cannot split
/// index construction from scanning.
ParallelDiffResult diff_parallel(const Differ& differ, ByteView reference,
                                 ByteView version,
                                 const SegmentPlanOptions& plan,
                                 const ParallelContext& ctx = {});

}  // namespace ipd
