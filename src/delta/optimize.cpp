#include "delta/optimize.hpp"

#include <algorithm>

namespace ipd {

Script optimize_script(const Script& script, ByteView reference,
                       const OptimizeOptions& options,
                       OptimizeReport* report_out) {
  OptimizeReport report;
  const CodewordCostModel model(options.format, script.version_length());

  Script sorted = script;
  sorted.sort_by_write_offset();

  std::vector<Command> out;
  out.reserve(sorted.size());

  const auto last_add = [&]() -> AddCommand* {
    return out.empty() ? nullptr : std::get_if<AddCommand>(&out.back());
  };
  const auto last_copy = [&]() -> CopyCommand* {
    return out.empty() ? nullptr : std::get_if<CopyCommand>(&out.back());
  };

  const auto append_add = [&](AddCommand add) {
    if (options.merge_adds) {
      if (AddCommand* prev = last_add();
          prev != nullptr && prev->to + prev->length() == add.to) {
        // Two codewords become one: save the second command's overhead.
        report.bytes_saved +=
            model.add_size(add.to, add.length()) - add.data.size();
        ++report.adds_merged;
        prev->data.insert(prev->data.end(), add.data.begin(),
                          add.data.end());
        return;
      }
    }
    out.emplace_back(std::move(add));
  };

  for (const Command& cmd : sorted.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      if (copy->length == 0) continue;
      if (options.merge_copies) {
        if (CopyCommand* prev = last_copy();
            prev != nullptr && prev->to + prev->length == copy->to &&
            prev->from + prev->length == copy->from) {
          report.bytes_saved += model.copy_size(*copy);
          ++report.copies_merged;
          prev->length += copy->length;
          continue;
        }
      }
      if (options.demote_short_copies && !reference.empty() &&
          copy->from + copy->length <= reference.size()) {
        const std::size_t as_copy = model.copy_size(*copy);
        const std::size_t as_add = model.add_size(copy->to, copy->length);
        if (as_add < as_copy) {
          report.bytes_saved += as_copy - as_add;
          ++report.copies_demoted;
          const auto begin =
              reference.begin() + static_cast<std::ptrdiff_t>(copy->from);
          append_add(AddCommand{
              copy->to,
              Bytes(begin, begin + static_cast<std::ptrdiff_t>(copy->length))});
          continue;
        }
      }
      out.emplace_back(*copy);
    } else {
      const AddCommand& add = std::get<AddCommand>(cmd);
      if (add.data.empty()) continue;
      append_add(add);
    }
  }

  if (report_out != nullptr) {
    *report_out = report;
  }
  return Script(std::move(out));
}

}  // namespace ipd
