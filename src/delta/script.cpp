#include "delta/script.hpp"

#include <algorithm>
#include <sstream>

namespace ipd {

length_t Script::version_length() const noexcept {
  length_t total = 0;
  for (const Command& c : commands_) {
    total += command_length(c);
  }
  return total;
}

ScriptSummary Script::summary() const noexcept {
  ScriptSummary s;
  for (const Command& c : commands_) {
    if (const auto* copy = std::get_if<CopyCommand>(&c)) {
      ++s.copy_count;
      s.copied_bytes += copy->length;
    } else {
      ++s.add_count;
      s.added_bytes += std::get<AddCommand>(c).length();
    }
  }
  return s;
}

std::vector<CopyCommand> Script::copies() const {
  std::vector<CopyCommand> out;
  for (const Command& c : commands_) {
    if (const auto* copy = std::get_if<CopyCommand>(&c)) {
      out.push_back(*copy);
    }
  }
  return out;
}

std::vector<AddCommand> Script::adds() const {
  std::vector<AddCommand> out;
  for (const Command& c : commands_) {
    if (const auto* add = std::get_if<AddCommand>(&c)) {
      out.push_back(*add);
    }
  }
  return out;
}

void Script::validate(length_t reference_length,
                      length_t version_length) const {
  struct Write {
    Interval interval;
    std::size_t index;
  };
  std::vector<Write> writes;
  writes.reserve(commands_.size());

  for (std::size_t i = 0; i < commands_.size(); ++i) {
    const Command& c = commands_[i];
    const length_t len = command_length(c);
    if (len == 0) {
      throw ValidationError("command " + std::to_string(i) +
                            " has zero length");
    }
    if (const auto* copy = std::get_if<CopyCommand>(&c)) {
      if (copy->from + copy->length > reference_length) {
        std::ostringstream msg;
        msg << "command " << i << " (" << *copy
            << ") reads past reference end " << reference_length;
        throw ValidationError(msg.str());
      }
    }
    const Interval w = command_write_interval(c);
    if (w.last >= version_length) {
      std::ostringstream msg;
      msg << "command " << i << " writes " << w << " past version end "
          << version_length;
      throw ValidationError(msg.str());
    }
    writes.push_back({w, i});
  }

  std::sort(writes.begin(), writes.end(),
            [](const Write& a, const Write& b) {
              return a.interval.first < b.interval.first;
            });

  offset_t expected = 0;
  for (const Write& w : writes) {
    if (w.interval.first < expected) {
      std::ostringstream msg;
      msg << "command " << w.index << " write " << w.interval
          << " overlaps a previous write ending at " << expected - 1;
      throw ValidationError(msg.str());
    }
    if (w.interval.first > expected) {
      std::ostringstream msg;
      msg << "coverage gap: version bytes [" << expected << ", "
          << w.interval.first - 1 << "] are written by no command";
      throw ValidationError(msg.str());
    }
    expected = w.interval.last + 1;
  }
  if (expected != version_length) {
    std::ostringstream msg;
    msg << "coverage gap: version bytes [" << expected << ", "
        << version_length - 1 << "] are written by no command";
    if (version_length == 0 && !commands_.empty()) {
      msg.str("script is non-empty but version length is 0");
    }
    throw ValidationError(msg.str());
  }
}

bool Script::in_write_order() const noexcept {
  offset_t expected = 0;
  for (const Command& c : commands_) {
    if (command_to(c) != expected) {
      return false;
    }
    expected += command_length(c);
  }
  return true;
}

void Script::sort_by_write_offset() {
  std::stable_sort(commands_.begin(), commands_.end(),
                   [](const Command& a, const Command& b) {
                     return command_to(a) < command_to(b);
                   });
}

std::string Script::to_text(std::size_t max_commands) const {
  std::ostringstream os;
  const std::size_t shown = std::min(commands_.size(), max_commands);
  for (std::size_t i = 0; i < shown; ++i) {
    os << i << ": " << commands_[i] << '\n';
  }
  if (shown < commands_.size()) {
    os << "... (" << commands_.size() - shown << " more commands)\n";
  }
  return os.str();
}

bool same_effect(const Script& a, const Script& b) {
  Script sa = a;
  Script sb = b;
  sa.sort_by_write_offset();
  sb.sort_by_write_offset();
  return sa.commands() == sb.commands();
}

}  // namespace ipd
