#include "delta/greedy_differ.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

#include "core/rolling_hash.hpp"

namespace ipd {
namespace {

constexpr std::uint32_t kNil = std::numeric_limits<std::uint32_t>::max();
constexpr std::size_t kMaxBucketBits = 22;

/// Bucketed hash chains over every seed position of the reference,
/// zlib-style: heads[bucket] is the most recent position, next[pos] chains
/// to the previous position with the same bucket.
class ChainIndex {
 public:
  ChainIndex(ByteView reference, std::size_t seed_length)
      : ref_(reference), seed_(seed_length) {
    if (ref_.size() < seed_) {
      bucket_mask_ = 0;
      return;
    }
    const std::size_t positions = ref_.size() - seed_ + 1;
    const std::size_t want_bits = std::min<std::size_t>(
        kMaxBucketBits, std::bit_width(positions) + 1);
    bucket_mask_ = (std::size_t{1} << want_bits) - 1;
    heads_.assign(bucket_mask_ + 1, kNil);
    next_.assign(positions, kNil);

    RollingHash rh(seed_);
    std::uint64_t h = rh.init(ref_);
    for (std::size_t pos = 0;; ++pos) {
      const std::size_t b = RollingHash::mix(h) & bucket_mask_;
      next_[pos] = heads_[b];
      heads_[b] = static_cast<std::uint32_t>(pos);
      if (pos + 1 >= positions) break;
      h = rh.roll(h, ref_[pos], ref_[pos + seed_]);
    }
  }

  bool empty() const noexcept { return heads_.empty(); }

  std::uint32_t head(std::uint64_t hash) const noexcept {
    return heads_[RollingHash::mix(hash) & bucket_mask_];
  }

  std::uint32_t next(std::uint32_t pos) const noexcept { return next_[pos]; }

 private:
  ByteView ref_;
  std::size_t seed_;
  std::size_t bucket_mask_ = 0;
  std::vector<std::uint32_t> heads_;
  std::vector<std::uint32_t> next_;
};

struct GreedyIndex final : public DifferIndex {
  GreedyIndex(ByteView reference, std::size_t seed_length)
      : chains(reference, seed_length) {}
  ChainIndex chains;
};

std::size_t match_forward(ByteView a, std::size_t ai, ByteView b,
                          std::size_t bi) noexcept {
  const std::size_t limit = std::min(a.size() - ai, b.size() - bi);
  std::size_t n = 0;
  while (n < limit && a[ai + n] == b[bi + n]) ++n;
  return n;
}

std::size_t match_backward(ByteView a, std::size_t ai, ByteView b,
                           std::size_t bi, std::size_t limit) noexcept {
  std::size_t n = 0;
  while (n < limit && n < ai && n < bi && a[ai - n - 1] == b[bi - n - 1]) ++n;
  return n;
}

}  // namespace

GreedyDiffer::GreedyDiffer(const DifferOptions& options) : options_(options) {
  assert(options_.seed_length >= 4);
  assert(options_.min_match >= options_.seed_length);
}

std::unique_ptr<DifferIndex> GreedyDiffer::build_index(
    ByteView reference, const ParallelContext& /*ctx*/) const {
  if (reference.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw ValidationError("greedy differ: reference larger than 4 GiB");
  }
  return std::make_unique<GreedyIndex>(reference, options_.seed_length);
}

Script GreedyDiffer::scan(const DifferIndex& index, ByteView reference,
                          ByteView version) const {
  const auto* greedy = dynamic_cast<const GreedyIndex*>(&index);
  if (greedy == nullptr) {
    throw ValidationError("greedy differ: foreign index");
  }
  ScriptBuilder builder;
  const std::size_t seed = options_.seed_length;
  if (version.empty()) {
    return builder.finish();
  }
  if (reference.size() < seed || version.size() < seed) {
    builder.literals(version);
    return builder.finish();
  }

  const ChainIndex& chains = greedy->chains;
  RollingHash rh(seed);

  std::size_t pos = 0;                   // version scan cursor
  std::uint64_t h = rh.init(version);    // hash of version[pos, pos+seed)
  bool hash_valid = true;

  const auto advance_to = [&](std::size_t target) {
    // Move the scan cursor to `target`, keeping the rolling hash in sync
    // when cheap, recomputing when the jump is long.
    if (target + seed > version.size()) {
      pos = target;
      hash_valid = false;
      return;
    }
    if (hash_valid && target - pos <= seed) {
      while (pos < target) {
        h = rh.roll(h, version[pos], version[pos + seed]);
        ++pos;
      }
    } else {
      pos = target;
      h = rh.init(version.subspan(pos));
      hash_valid = true;
    }
  };

  while (pos < version.size()) {
    if (pos + seed > version.size()) {
      // Tail shorter than a seed can never match; flush as literals.
      builder.literals(version.subspan(pos));
      break;
    }

    std::size_t best_len = 0;
    std::size_t best_back = 0;
    std::size_t best_from = 0;
    std::size_t probes = 0;
    const std::size_t max_back = builder.pending_literals();

    for (std::uint32_t cand = chains.head(h);
         cand != kNil && probes < options_.max_chain;
         cand = chains.next(cand), ++probes) {
      // Verify the seed (hash buckets collide), then extend.
      if (!std::equal(version.begin() + static_cast<std::ptrdiff_t>(pos),
                      version.begin() + static_cast<std::ptrdiff_t>(pos + seed),
                      reference.begin() + cand)) {
        continue;
      }
      const std::size_t fwd =
          seed + match_forward(reference, cand + seed, version, pos + seed);
      const std::size_t back =
          match_backward(reference, cand, version, pos, max_back);
      if (fwd + back > best_len + best_back ||
          (fwd + back == best_len + best_back && best_len == 0)) {
        best_len = fwd;
        best_back = back;
        best_from = cand;
      }
    }

    if (best_len + best_back >= options_.min_match && best_len > 0) {
      builder.retract(best_back);
      builder.copy(best_from - best_back, best_len + best_back);
      advance_to(pos + best_len);
    } else {
      builder.literal(version[pos]);
      advance_to(pos + 1);
    }
  }

  return builder.finish();
}

}  // namespace ipd
