#include "delta/differ.hpp"

#include <cassert>

#include "delta/block_differ.hpp"
#include "delta/greedy_differ.hpp"
#include "delta/onepass_differ.hpp"
#include "delta/suffix_differ.hpp"

namespace ipd {

const char* differ_name(DifferKind kind) noexcept {
  switch (kind) {
    case DifferKind::kGreedy: return "greedy";
    case DifferKind::kOnePass: return "one-pass";
    case DifferKind::kSuffixGreedy: return "suffix-greedy";
    case DifferKind::kBlockAligned: return "block-aligned";
  }
  return "?";
}

std::unique_ptr<Differ> make_differ(DifferKind kind,
                                    const DifferOptions& options) {
  switch (kind) {
    case DifferKind::kGreedy:
      return std::make_unique<GreedyDiffer>(options);
    case DifferKind::kOnePass:
      return std::make_unique<OnePassDiffer>(options);
    case DifferKind::kSuffixGreedy:
      return std::make_unique<SuffixDiffer>(options);
    case DifferKind::kBlockAligned:
      return std::make_unique<BlockDiffer>(options);
  }
  throw ValidationError("unknown differ kind");
}

Script SegmentedDiffer::diff(ByteView reference, ByteView version) const {
  return scan(*build_index(reference), reference, version);
}

Script diff_bytes(DifferKind kind, ByteView reference, ByteView version,
                  const DifferOptions& options) {
  return make_differ(kind, options)->diff(reference, version);
}

void ScriptBuilder::literal(std::uint8_t byte) { pending_.push_back(byte); }

void ScriptBuilder::literals(ByteView data) {
  pending_.insert(pending_.end(), data.begin(), data.end());
}

void ScriptBuilder::retract(std::size_t n) {
  assert(n <= pending_.size());
  pending_.resize(pending_.size() - n);
}

void ScriptBuilder::copy(offset_t from, length_t length) {
  assert(length > 0);
  flush();
  script_.push(CopyCommand{from, cursor_, length});
  cursor_ += length;
}

void ScriptBuilder::flush() {
  if (!pending_.empty()) {
    const length_t len = pending_.size();
    script_.push(AddCommand{cursor_, std::move(pending_)});
    cursor_ += len;
    pending_.clear();
  }
}

Script ScriptBuilder::finish() {
  flush();
  return std::move(script_);
}

}  // namespace ipd
