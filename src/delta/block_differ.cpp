#include "delta/block_differ.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/rolling_hash.hpp"

namespace ipd {
namespace {

struct BlockIndex final : public DifferIndex {
  /// Whole reference blocks by content hash (block-aligned on both
  /// sides — the defining restriction of this baseline).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> blocks;
};

std::uint64_t block_hash(ByteView content) noexcept {
  std::uint64_t h = 0;
  for (const std::uint8_t byte : content) {
    h = h * RollingHash::kMultiplier + byte;
  }
  return RollingHash::mix(h);
}

}  // namespace

BlockDiffer::BlockDiffer(const DifferOptions& options) : options_(options) {
  if (options_.block_size == 0) {
    throw ValidationError("block differ: block_size must be >= 1");
  }
}

std::unique_ptr<DifferIndex> BlockDiffer::build_index(
    ByteView reference, const ParallelContext& /*ctx*/) const {
  const std::size_t block = options_.block_size;
  auto index = std::make_unique<BlockIndex>();
  const std::size_t ref_blocks = reference.size() / block;
  for (std::size_t b = 0; b < ref_blocks; ++b) {
    index->blocks[block_hash(reference.subspan(b * block, block))].push_back(
        static_cast<std::uint32_t>(b));
  }
  return index;
}

Script BlockDiffer::scan(const DifferIndex& index, ByteView reference,
                         ByteView version) const {
  const auto* aligned = dynamic_cast<const BlockIndex*>(&index);
  if (aligned == nullptr) {
    throw ValidationError("block differ: foreign index");
  }
  const std::size_t block = options_.block_size;
  ScriptBuilder builder;

  std::size_t pos = 0;
  while (pos < version.size()) {
    const std::size_t remaining = version.size() - pos;
    if (remaining < block) {
      builder.literals(version.subspan(pos));
      break;
    }
    const ByteView candidate = version.subspan(pos, block);
    bool matched = false;
    if (const auto it = aligned->blocks.find(block_hash(candidate));
        it != aligned->blocks.end()) {
      for (const std::uint32_t b : it->second) {
        const ByteView ref_block = reference.subspan(b * block, block);
        if (std::equal(candidate.begin(), candidate.end(),
                       ref_block.begin())) {
          builder.copy(static_cast<offset_t>(b) * block, block);
          matched = true;
          break;
        }
      }
    }
    if (matched) {
      pos += block;
    } else {
      // Alignment restriction: no partial or shifted matches — the whole
      // version block goes into the delta literally.
      builder.literals(candidate);
      pos += block;
    }
  }
  return builder.finish();
}

}  // namespace ipd
