#include "delta/block_differ.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/rolling_hash.hpp"

namespace ipd {

BlockDiffer::BlockDiffer(const BlockDifferOptions& options)
    : options_(options) {
  if (options_.block_size == 0) {
    throw ValidationError("block differ: block_size must be >= 1");
  }
}

Script BlockDiffer::diff(ByteView reference, ByteView version) const {
  const std::size_t block = options_.block_size;
  ScriptBuilder builder;

  // Index whole reference blocks by content hash (block-aligned on both
  // sides — the defining restriction of this baseline).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
  const std::size_t ref_blocks = reference.size() / block;
  for (std::size_t b = 0; b < ref_blocks; ++b) {
    const ByteView content = reference.subspan(b * block, block);
    std::uint64_t h = 0;
    for (const std::uint8_t byte : content) {
      h = h * RollingHash::kMultiplier + byte;
    }
    index[RollingHash::mix(h)].push_back(static_cast<std::uint32_t>(b));
  }

  std::size_t pos = 0;
  while (pos < version.size()) {
    const std::size_t remaining = version.size() - pos;
    if (remaining < block) {
      builder.literals(version.subspan(pos));
      break;
    }
    const ByteView candidate = version.subspan(pos, block);
    std::uint64_t h = 0;
    for (const std::uint8_t byte : candidate) {
      h = h * RollingHash::kMultiplier + byte;
    }
    bool matched = false;
    if (const auto it = index.find(RollingHash::mix(h)); it != index.end()) {
      for (const std::uint32_t b : it->second) {
        const ByteView ref_block = reference.subspan(b * block, block);
        if (std::equal(candidate.begin(), candidate.end(),
                       ref_block.begin())) {
          builder.copy(static_cast<offset_t>(b) * block, block);
          matched = true;
          break;
        }
      }
    }
    if (matched) {
      pos += block;
    } else {
      // Alignment restriction: no partial or shifted matches — the whole
      // version block goes into the delta literally.
      builder.literals(candidate);
      pos += block;
    }
  }
  return builder.finish();
}

}  // namespace ipd
