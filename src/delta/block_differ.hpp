// Block-aligned differencer — the §2 related-work baseline.
//
// Source-control systems of the paper's era (SCCS/RCS [12,15]) and
// record-oriented databases [13] diff at a fixed granularity with
// alignment: the version is scanned in fixed-size blocks and each block
// either matches a whole reference block verbatim or is emitted
// literally. This is the strawman the string-to-string work [14] and the
// byte-granularity algorithms [1,5,9,11] improved on; we implement it so
// the benches can quantify the §2 claim that alignment costs real
// compression (a single inserted byte destroys every downstream match).
#pragma once

#include "delta/differ.hpp"

namespace ipd {

class BlockDiffer final : public SegmentedDiffer {
 public:
  /// Only options.block_size is consulted — the alignment granularity.
  /// (The separate BlockDifferOptions struct is gone; every differ now
  /// configures from the one DifferOptions.)
  explicit BlockDiffer(const DifferOptions& options = {});

  std::unique_ptr<DifferIndex> build_index(
      ByteView reference, const ParallelContext& ctx = {}) const override;

  Script scan(const DifferIndex& index, ByteView reference,
              ByteView version) const override;

  const char* name() const noexcept override { return "block-aligned"; }

 private:
  DifferOptions options_;
};

}  // namespace ipd
