// The delta command model from §3 of the paper.
//
// A delta file is an ordered sequence of two command kinds:
//   copy <f, t, l> — copy reference bytes [f, f+l-1] to version [t, t+l-1];
//   add  <t, l>    — write l literal bytes (carried in the delta) at t.
//
// Commands always carry their write offset `t` in memory; whether `t` is
// *encoded* is a property of the codeword format (delta/codec.hpp), which
// is exactly the paper's "write offsets" distinction in Table 1.
#pragma once

#include <ostream>
#include <variant>

#include "core/interval.hpp"
#include "core/types.hpp"

namespace ipd {

/// copy <f, t, l>: move bytes from the reference into the version.
struct CopyCommand {
  offset_t from = 0;  ///< f — offset read in the reference file
  offset_t to = 0;    ///< t — offset written in the version file
  length_t length = 0;

  /// [f, f+l-1], the bytes this command reads from the reference.
  Interval read_interval() const noexcept {
    return Interval::of(from, length);
  }
  /// [t, t+l-1], the bytes this command writes in the version.
  Interval write_interval() const noexcept {
    return Interval::of(to, length);
  }

  /// True when the command's own read and write ranges overlap — legal for
  /// in-place application, but the copy direction matters (§4.1).
  bool self_overlaps() const noexcept {
    return read_interval().intersects(write_interval());
  }

  bool operator==(const CopyCommand&) const noexcept = default;
};

/// add <t, l> + data: write literal bytes at t.
struct AddCommand {
  offset_t to = 0;
  Bytes data;

  length_t length() const noexcept { return data.size(); }
  Interval write_interval() const noexcept {
    return Interval::of(to, data.size());
  }

  bool operator==(const AddCommand&) const noexcept = default;
};

using Command = std::variant<CopyCommand, AddCommand>;

/// Write offset of either command kind.
offset_t command_to(const Command& c) noexcept;
/// Number of version bytes either command kind produces.
length_t command_length(const Command& c) noexcept;
/// Write interval of either command kind. Precondition: length >= 1.
Interval command_write_interval(const Command& c) noexcept;

bool is_copy(const Command& c) noexcept;
bool is_add(const Command& c) noexcept;

std::ostream& operator<<(std::ostream& os, const CopyCommand& c);
std::ostream& operator<<(std::ostream& os, const AddCommand& a);
std::ostream& operator<<(std::ostream& os, const Command& c);

}  // namespace ipd
