// Compression accounting in the units the paper reports: delta size as a
// percentage of the version size ("compressed data, on average, to 15.3%
// its original size"), aggregated over a corpus of file pairs.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace ipd {

/// One (reference, version, delta) measurement.
struct CompressionSample {
  length_t reference_size = 0;
  length_t version_size = 0;
  std::uint64_t delta_size = 0;

  /// Delta as a percentage of the version file (lower is better).
  double percent() const noexcept {
    return version_size == 0
               ? 0.0
               : 100.0 * static_cast<double>(delta_size) /
                     static_cast<double>(version_size);
  }
};

/// Corpus-level aggregate. The paper aggregates by total bytes (a single
/// corpus-wide ratio), which weights large files more — we report both
/// that and the unweighted mean-of-ratios.
class CompressionAggregate {
 public:
  void add(const CompressionSample& s) noexcept {
    total_version_ += s.version_size;
    total_delta_ += s.delta_size;
    ratio_sum_ += s.percent();
    ++count_;
  }

  std::size_t count() const noexcept { return count_; }
  std::uint64_t total_version_bytes() const noexcept { return total_version_; }
  std::uint64_t total_delta_bytes() const noexcept { return total_delta_; }

  /// Corpus-wide ratio, percent (paper's headline metric).
  double weighted_percent() const noexcept {
    return total_version_ == 0
               ? 0.0
               : 100.0 * static_cast<double>(total_delta_) /
                     static_cast<double>(total_version_);
  }

  /// Unweighted mean of per-pair ratios, percent.
  double mean_percent() const noexcept {
    return count_ == 0 ? 0.0 : ratio_sum_ / static_cast<double>(count_);
  }

 private:
  std::uint64_t total_version_ = 0;
  std::uint64_t total_delta_ = 0;
  double ratio_sum_ = 0.0;
  std::size_t count_ = 0;
};

/// "12.34%"-style fixed-point rendering used by bench tables.
std::string format_percent(double percent, int decimals = 1);

/// Human-readable byte count ("1.25 MiB") for reports.
std::string format_bytes(std::uint64_t bytes);

}  // namespace ipd
