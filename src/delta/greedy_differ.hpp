// Greedy hash-chain differencer (Reichenberger [11] style).
//
// Every seed-length substring of the reference is fingerprinted into a
// bucketed hash-chain index. The version is scanned left to right; at each
// offset the chain for the current seed is probed (up to max_chain
// candidates), each candidate is extended forwards as far as it matches
// and backwards over pending literal bytes, and the longest extension is
// taken greedily. This yields near-optimal encodings at quadratic worst
// case — the classic trade §2 of the paper describes against the
// linear-time one-pass algorithm.
#pragma once

#include "delta/differ.hpp"

namespace ipd {

class GreedyDiffer final : public SegmentedDiffer {
 public:
  explicit GreedyDiffer(const DifferOptions& options = {});

  /// Chain construction stays serial: each link records the previous
  /// head, so chain order — and with it probe order and output — is a
  /// strictly sequential property. Scans parallelize instead.
  std::unique_ptr<DifferIndex> build_index(
      ByteView reference, const ParallelContext& ctx = {}) const override;

  Script scan(const DifferIndex& index, ByteView reference,
              ByteView version) const override;

  const char* name() const noexcept override { return "greedy"; }

 private:
  DifferOptions options_;
};

}  // namespace ipd
