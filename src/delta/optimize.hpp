// Command-stream optimizer: canonicalizations that shrink a script
// without changing the version it encodes.
//
// Differencers and the in-place converter both emit command streams with
// avoidable overhead — abutting adds, copies that continue each other,
// copies so short their add encoding is cheaper. The optimizer fixes
// these mechanically; §7 of the paper attributes most of its encoding
// loss to exactly this kind of codeword overhead.
#pragma once

#include "delta/codec.hpp"
#include "delta/script.hpp"

namespace ipd {

struct OptimizeOptions {
  /// Merge adds whose write intervals abut (in write order).
  bool merge_adds = true;
  /// Merge copies that continue each other: <f,t,l> followed by
  /// <f+l, t+l, l'> becomes <f, t, l+l'>.
  bool merge_copies = true;
  /// Convert copies to adds when the add encodes smaller under `format`
  /// (e.g. very short copies with wide offsets). Needs the reference to
  /// materialise the bytes; skipped if the caller passes none.
  bool demote_short_copies = true;
  /// Codeword format used for the demotion size comparison.
  DeltaFormat format = kPaperExplicit;
};

struct OptimizeReport {
  std::size_t adds_merged = 0;
  std::size_t copies_merged = 0;
  std::size_t copies_demoted = 0;
  /// Estimated encoded-size reduction in bytes under `format`.
  std::uint64_t bytes_saved = 0;
};

/// Optimize `script` (commands may be in any order; the result is in
/// write order). `reference` may be empty, which disables demotion.
/// The returned script encodes exactly the same version file.
///
/// NOTE: reordering into write order is only sound for scratch-space
/// deltas. Do not run this on an in-place (converted) script — it would
/// destroy the topological command order; run it on the differ output
/// *before* conversion instead (the converter preserves add merging via
/// its own coalescing).
Script optimize_script(const Script& script, ByteView reference,
                       const OptimizeOptions& options = {},
                       OptimizeReport* report_out = nullptr);

}  // namespace ipd
