#include "delta/suffix_differ.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace ipd {

SuffixMatcher::SuffixMatcher(ByteView reference) : ref_(reference) {
  const std::size_t n = ref_.size();
  if (n > std::numeric_limits<std::uint32_t>::max() / 2) {
    throw ValidationError("suffix matcher: reference larger than 2 GiB");
  }
  sa_.resize(n);
  std::iota(sa_.begin(), sa_.end(), 0);
  if (n == 0) return;

  // Doubling construction: rank[i] is the sort key of suffix i over the
  // current prefix width; pairs (rank[i], rank[i+width]) refine it.
  std::vector<std::uint32_t> rank(n), next_rank(n);
  for (std::size_t i = 0; i < n; ++i) {
    rank[i] = ref_[i];
  }
  for (std::size_t width = 1;; width *= 2) {
    const auto key = [&](std::uint32_t i) {
      return std::make_pair(rank[i],
                            i + width < n ? rank[i + width] + 1 : 0u);
    };
    std::sort(sa_.begin(), sa_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return key(a) < key(b);
              });
    next_rank[sa_[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      next_rank[sa_[i]] = next_rank[sa_[i - 1]] +
                          (key(sa_[i - 1]) < key(sa_[i]) ? 1 : 0);
    }
    rank.swap(next_rank);
    if (rank[sa_[n - 1]] == n - 1) break;  // all ranks distinct
  }
}

std::size_t SuffixMatcher::prefix_length(std::uint32_t suffix,
                                         ByteView query) const {
  const std::size_t limit = std::min<std::size_t>(ref_.size() - suffix,
                                                  query.size());
  std::size_t k = 0;
  while (k < limit && ref_[suffix + k] == query[k]) ++k;
  return k;
}

SuffixMatcher::Match SuffixMatcher::longest_match(ByteView query) const {
  if (sa_.empty() || query.empty()) {
    return {};
  }
  // Lower bound of `query` among the suffixes; the best match is at one
  // of the two lexicographic neighbours.
  const auto less_than_query = [&](std::uint32_t suffix) {
    const std::size_t limit = std::min<std::size_t>(ref_.size() - suffix,
                                                    query.size());
    for (std::size_t k = 0; k < limit; ++k) {
      if (ref_[suffix + k] != query[k]) {
        return ref_[suffix + k] < query[k];
      }
    }
    // Proper prefix of query sorts before it.
    return ref_.size() - suffix < query.size();
  };
  const auto it =
      std::partition_point(sa_.begin(), sa_.end(), less_than_query);

  Match best;
  const auto consider = [&](std::vector<std::uint32_t>::const_iterator pos) {
    if (pos < sa_.begin() || pos >= sa_.end()) return;
    const std::size_t len = prefix_length(*pos, query);
    if (len > best.length) {
      best.length = len;
      best.position = *pos;
    }
  };
  consider(it);
  consider(it == sa_.begin() ? sa_.end() : it - 1);
  return best;
}

namespace {

struct SuffixIndex final : public DifferIndex {
  explicit SuffixIndex(ByteView reference) : matcher(reference) {}
  SuffixMatcher matcher;
};

}  // namespace

SuffixDiffer::SuffixDiffer(const DifferOptions& options) : options_(options) {
  assert(options_.min_match >= 1);
}

std::unique_ptr<DifferIndex> SuffixDiffer::build_index(
    ByteView reference, const ParallelContext& /*ctx*/) const {
  return std::make_unique<SuffixIndex>(reference);
}

Script SuffixDiffer::scan(const DifferIndex& index, ByteView reference,
                          ByteView version) const {
  const auto* suffix = dynamic_cast<const SuffixIndex*>(&index);
  if (suffix == nullptr) {
    throw ValidationError("suffix differ: foreign index");
  }
  ScriptBuilder builder;
  if (version.empty()) {
    return builder.finish();
  }
  if (reference.empty()) {
    builder.literals(version);
    return builder.finish();
  }

  const SuffixMatcher& matcher = suffix->matcher;
  std::size_t pos = 0;
  while (pos < version.size()) {
    const SuffixMatcher::Match match =
        matcher.longest_match(version.subspan(pos));
    if (match.length >= options_.min_match) {
      builder.copy(match.position, match.length);
      pos += match.length;
    } else {
      builder.literal(version[pos]);
      ++pos;
    }
  }
  return builder.finish();
}

}  // namespace ipd
