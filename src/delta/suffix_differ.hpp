// Suffix-array greedy differencer — the §2 "greedy method [11]" done
// exactly: at every version offset, find the LONGEST match anywhere in
// the reference (no hash table approximation, no chain caps) and take it.
//
// Greedy longest-match is provably optimal for copy/add encodings with
// uniform command costs, so this differencer is the benches' compression
// upper bound: it quantifies how much the linear-time one-pass algorithm
// gives up for its speed — the very trade §2 describes. Construction is
// O(n log n) (doubling suffix array + LCP), each lookup O(log n) via
// binary search over the suffix array extended with LCP refinement.
#pragma once

#include <vector>

#include "delta/differ.hpp"

namespace ipd {

/// Suffix array + longest-match queries over an immutable reference.
/// Exposed separately so tests can hit the matcher directly.
class SuffixMatcher {
 public:
  explicit SuffixMatcher(ByteView reference);

  struct Match {
    offset_t position = 0;  ///< start in the reference
    length_t length = 0;    ///< 0 when nothing matches
  };

  /// Longest reference substring matching a prefix of `query`.
  Match longest_match(ByteView query) const;

  /// The suffix array itself (test observability).
  const std::vector<std::uint32_t>& suffix_array() const noexcept {
    return sa_;
  }

 private:
  /// Length of the common prefix of reference[sa..] and query.
  std::size_t prefix_length(std::uint32_t suffix, ByteView query) const;

  ByteView ref_;
  std::vector<std::uint32_t> sa_;
};

class SuffixDiffer final : public SegmentedDiffer {
 public:
  explicit SuffixDiffer(const DifferOptions& options = {});

  /// The suffix array is built once per reference (the expensive part);
  /// longest_match() queries against it are read-only and scan freely
  /// from many threads.
  std::unique_ptr<DifferIndex> build_index(
      ByteView reference, const ParallelContext& ctx = {}) const override;

  Script scan(const DifferIndex& index, ByteView reference,
              ByteView version) const override;

  const char* name() const noexcept override { return "suffix-greedy"; }

 private:
  DifferOptions options_;
};

}  // namespace ipd
