// Delta file serialization: codeword formats and the container format.
//
// Table 1 of the paper hinges on a codeword distinction:
//
//  * "Δ Compress, No Write Offsets"  — commands are applied in write order,
//    so `t` is implicit (add = <l>, copy = <f,l>). Densest, but the file
//    cannot be permuted, hence not in-place reconstructible.
//  * "Δ Compress, Write Offsets"     — every command carries `t`
//    (add = <t,l>, copy = <f,t,l>). ~1.9 % compression loss in the paper;
//    this is the format the in-place converter consumes and emits.
//
// Orthogonally we provide two codeword families:
//
//  * PaperByte — faithful to the encoder the paper borrowed from
//    Reichenberger [11] / Ajtai et al. [1]: fixed-width binary fields and a
//    single-byte add length (1..255), which is precisely the encoding
//    inefficiency §7 calls out ("many short add commands").
//  * Varint    — a modern LEB128 encoding of the same commands, provided as
//    the "redesign of the delta compression codewords" the paper suggests
//    would reduce the loss; benches quantify that claim.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "core/types.hpp"
#include "delta/script.hpp"

namespace ipd {

enum class Codeword : std::uint8_t {
  kPaperByte = 0,  ///< fixed-width fields, 1-byte add length (paper §7)
  kVarint = 1,     ///< LEB128 fields, unbounded add length
};

enum class WriteOffsets : std::uint8_t {
  kImplicit = 0,  ///< `t` defined by the end of the previous command
  kExplicit = 1,  ///< `t` encoded in every codeword
};

struct DeltaFormat {
  Codeword codeword = Codeword::kPaperByte;
  WriteOffsets offsets = WriteOffsets::kExplicit;

  bool operator==(const DeltaFormat&) const noexcept = default;
};

/// The four named formats used across benches and docs.
inline constexpr DeltaFormat kPaperSequential{Codeword::kPaperByte,
                                              WriteOffsets::kImplicit};
inline constexpr DeltaFormat kPaperExplicit{Codeword::kPaperByte,
                                            WriteOffsets::kExplicit};
inline constexpr DeltaFormat kVarintSequential{Codeword::kVarint,
                                               WriteOffsets::kImplicit};
inline constexpr DeltaFormat kVarintExplicit{Codeword::kVarint,
                                             WriteOffsets::kExplicit};

const char* format_name(DeltaFormat f) noexcept;

/// A decoded delta file: header metadata plus the command script.
struct DeltaFile {
  DeltaFormat format;
  /// Producer's assertion that the script satisfies Equation 2 (no
  /// write-before-read conflicts) and may be applied in place.
  bool in_place = false;
  /// Secondary (LZSS) compression of the encoded payload — what real
  /// delta tools do by piping through a general compressor. Incompatible
  /// with the streaming applier, which cannot decompress incrementally;
  /// batch paths handle it transparently. The serializer silently falls
  /// back to uncompressed storage when compression would not shrink the
  /// payload, so after a round trip this flag reports what is actually
  /// on the wire.
  bool compress_payload = false;
  length_t reference_length = 0;
  length_t version_length = 0;
  /// CRC-32C of the version file the script materialises; lets a device
  /// verify a reconstruction before committing it.
  std::uint32_t version_crc = 0;
  Script script;
};

/// Serialize to the on-wire container (header + checksummed payload).
///
/// Implicit-offset formats require `file.script.in_write_order()`; a
/// permuted (in-place) script cannot drop its write offsets — throws
/// ValidationError, mirroring the paper's observation that in-place
/// reconstruction inherently pays for explicit offsets.
///
/// PaperByte adds longer than 255 bytes and copies of 4 GiB or more are
/// split into multiple commands, preserving the encoded version exactly.
Bytes serialize_delta(const DeltaFile& file);

/// Parse and verify a container produced by serialize_delta().
/// Throws FormatError on corruption (bad magic, checksum, truncation) and
/// ValidationError if the decoded script violates the §3 model.
DeltaFile deserialize_delta(ByteView data);

/// Container header fields, available before any payload byte arrives —
/// what a streaming consumer needs to provision its buffer.
struct DeltaHeader {
  DeltaFormat format;
  bool in_place = false;
  bool compress_payload = false;
  length_t reference_length = 0;
  length_t version_length = 0;
  std::uint32_t version_crc = 0;
  /// On-wire payload bytes (compressed size when compress_payload).
  std::uint64_t payload_length = 0;
  /// Decoded command-stream bytes (== payload_length when uncompressed).
  std::uint64_t payload_uncompressed = 0;
  std::uint32_t payload_adler = 0;
};

/// Try to parse the container header from the front of `data`.
/// Returns {header, bytes consumed} once enough bytes are present,
/// std::nullopt if more bytes are needed; throws FormatError on
/// malformed input (bad magic / unknown format byte).
std::optional<std::pair<DeltaHeader, std::size_t>> try_parse_header(
    ByteView data);

/// Incremental command decoder for streaming consumers: feed payload
/// bytes as they arrive, pop commands as they complete. Malformed input
/// throws FormatError; incomplete input just returns nothing yet.
class StreamingCommandDecoder {
 public:
  StreamingCommandDecoder(DeltaFormat format, length_t version_length);

  /// Append payload bytes to the internal buffer.
  void feed(ByteView chunk);

  /// Decode the next complete command, or std::nullopt if the buffered
  /// bytes do not yet contain one.
  std::optional<Command> next();

  /// Bytes buffered but not yet consumed by a completed command.
  std::size_t buffered() const noexcept;
  /// Total payload bytes consumed by completed commands.
  std::uint64_t consumed() const noexcept { return consumed_; }

 private:
  DeltaFormat format_;
  unsigned offset_width_;
  offset_t running_to_ = 0;
  std::uint64_t consumed_ = 0;
  Bytes pending_;
  std::size_t pending_pos_ = 0;
};

/// Outcome of probing one command at the front of a payload view — the
/// delta verifier's well-formedness primitive. Unlike the throwing
/// decoders above it never raises on bad input; instead it reports
/// *which* field failed and why, so a static analyzer can turn the
/// failure into a precise diagnostic ("add payload shorter than
/// declared", "copy length field truncated", ...).
struct CommandProbe {
  enum class Status : std::uint8_t {
    kOk = 0,         ///< one complete command decoded
    kTruncated = 1,  ///< stream ends mid-codeword (field named in detail)
    kMalformed = 2,  ///< invalid regardless of any further bytes
  };
  Status status = Status::kMalformed;
  std::optional<Command> command;  ///< set when kOk
  std::size_t consumed = 0;        ///< bytes this command occupies (kOk)
  std::string detail;              ///< empty when kOk; else the failure
};

/// Probe one command at the front of `data`. `running_to` supplies and
/// (only on kOk) receives the implicit write offset. Never throws.
CommandProbe probe_command(ByteView data, DeltaFormat format,
                           length_t version_length, offset_t& running_to);

/// Exact encoded payload size of one command under a format, given the
/// version length (which fixes the explicit-offset field width for
/// PaperByte). This is the paper's |command| used in the cycle-breaking
/// cost function: converting copy c to an add costs
///     add_size(t, l) - copy_size(c)   (≈ l - |f|).
class CodewordCostModel {
 public:
  CodewordCostModel(DeltaFormat format, length_t version_length) noexcept;

  /// Payload bytes to encode this copy (including opcode and offsets).
  std::size_t copy_size(const CopyCommand& c) const noexcept;

  /// Payload bytes to encode an add of `length` at `to` (opcode, offsets,
  /// length field, and the literal data itself).
  std::size_t add_size(offset_t to, length_t length) const noexcept;

  /// Bytes gained by the delta file when copy `c` is converted to an add
  /// (the paper's deletion cost, always >= 0 in practice; clamped at 1 so
  /// policies have a strictly positive cost to minimise).
  std::uint64_t conversion_cost(const CopyCommand& c) const noexcept;

  DeltaFormat format() const noexcept { return format_; }
  unsigned offset_width() const noexcept { return offset_width_; }

 private:
  DeltaFormat format_;
  unsigned offset_width_;  // PaperByte explicit `t` field width: 4 or 8
};

}  // namespace ipd
