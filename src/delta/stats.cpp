#include "delta/stats.hpp"

#include <cstdio>

namespace ipd {

std::string format_percent(double percent, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, percent);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace ipd
