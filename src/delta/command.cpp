#include "delta/command.hpp"

namespace ipd {

offset_t command_to(const Command& c) noexcept {
  return std::visit([](const auto& cmd) { return cmd.to; }, c);
}

length_t command_length(const Command& c) noexcept {
  return std::visit(
      [](const auto& cmd) -> length_t {
        if constexpr (std::is_same_v<std::decay_t<decltype(cmd)>,
                                     CopyCommand>) {
          return cmd.length;
        } else {
          return cmd.length();
        }
      },
      c);
}

Interval command_write_interval(const Command& c) noexcept {
  return std::visit([](const auto& cmd) { return cmd.write_interval(); }, c);
}

bool is_copy(const Command& c) noexcept {
  return std::holds_alternative<CopyCommand>(c);
}

bool is_add(const Command& c) noexcept {
  return std::holds_alternative<AddCommand>(c);
}

std::ostream& operator<<(std::ostream& os, const CopyCommand& c) {
  return os << "copy<f=" << c.from << ", t=" << c.to << ", l=" << c.length
            << '>';
}

std::ostream& operator<<(std::ostream& os, const AddCommand& a) {
  return os << "add<t=" << a.to << ", l=" << a.length() << '>';
}

std::ostream& operator<<(std::ostream& os, const Command& c) {
  std::visit([&os](const auto& cmd) { os << cmd; }, c);
  return os;
}

}  // namespace ipd
