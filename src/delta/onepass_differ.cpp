#include "delta/onepass_differ.hpp"

#include <algorithm>
#include <cassert>

#include "core/rolling_hash.hpp"

namespace ipd {
namespace {

// Below this many reference positions a parallel table build costs more
// in fork/join than the fill saves.
constexpr std::size_t kParallelIndexMinPositions = std::size_t{1} << 20;

std::size_t match_forward(ByteView a, std::size_t ai, ByteView b,
                          std::size_t bi) noexcept {
  const std::size_t limit = std::min(a.size() - ai, b.size() - bi);
  std::size_t n = 0;
  while (n < limit && a[ai + n] == b[bi + n]) ++n;
  return n;
}

std::size_t match_backward(ByteView a, std::size_t ai, ByteView b,
                           std::size_t bi, std::size_t limit) noexcept {
  std::size_t n = 0;
  while (n < limit && n < ai && n < bi && a[ai - n - 1] == b[bi - n - 1]) ++n;
  return n;
}

/// Fill `table` with the first occurrence of each fingerprint over
/// reference positions [begin, end).
void fill_first_occurrences(ByteView reference, std::size_t seed,
                            std::size_t mask, std::size_t begin,
                            std::size_t end, std::vector<std::uint64_t>& table) {
  if (begin >= end) return;
  RollingHash rh(seed);
  std::uint64_t h = rh.init(reference.subspan(begin));
  for (std::size_t pos = begin;; ++pos) {
    std::uint64_t& slot = table[RollingHash::mix(h) & mask];
    if (slot == OnePassIndex::kEmpty) {
      slot = pos;  // first occurrence wins, as in [5]
    }
    if (pos + 1 >= end) break;
    h = rh.roll(h, reference[pos], reference[pos + seed]);
  }
}

}  // namespace

OnePassDiffer::OnePassDiffer(const DifferOptions& options)
    : options_(options) {
  assert(options_.seed_length >= 4);
  assert(options_.min_match >= options_.seed_length);
  assert(options_.table_bits >= 8 && options_.table_bits <= 28);
}

std::unique_ptr<DifferIndex> OnePassDiffer::build_index(
    ByteView reference, const ParallelContext& ctx) const {
  auto index = std::make_unique<OnePassIndex>();
  const std::size_t seed = options_.seed_length;
  index->seed = seed;
  if (reference.size() < seed) {
    return index;  // nothing can match; scan() emits pure literals
  }
  const std::size_t table_size = std::size_t{1} << options_.table_bits;
  index->mask = table_size - 1;
  const std::size_t positions = reference.size() - seed + 1;

  std::size_t chunks = 1;
  if (ctx.enabled() && positions >= kParallelIndexMinPositions) {
    chunks = std::min({ctx.parallelism, std::size_t{16},
                       positions / (kParallelIndexMinPositions / 4)});
    chunks = std::max<std::size_t>(chunks, 1);
  }

  if (chunks <= 1) {
    index->table.assign(table_size, OnePassIndex::kEmpty);
    fill_first_occurrences(reference, seed, index->mask, 0, positions,
                           index->table);
    return index;
  }

  // Parallel build: private per-chunk tables over ascending position
  // ranges, then keep the first non-empty slot in range order — i.e.
  // the lowest position, exactly what the serial pass would have kept.
  std::vector<std::vector<std::uint64_t>> local(chunks);
  parallel_for(ctx, chunks, [&](std::size_t k) {
    local[k].assign(table_size, OnePassIndex::kEmpty);
    fill_first_occurrences(reference, seed, index->mask,
                           k * positions / chunks,
                           (k + 1) * positions / chunks, local[k]);
  });
  index->table.assign(table_size, OnePassIndex::kEmpty);
  for (std::size_t s = 0; s < table_size; ++s) {
    for (std::size_t k = 0; k < chunks; ++k) {
      if (local[k][s] != OnePassIndex::kEmpty) {
        index->table[s] = local[k][s];
        break;
      }
    }
  }
  return index;
}

Script OnePassDiffer::scan(const DifferIndex& index, ByteView reference,
                           ByteView version) const {
  const auto* fp = dynamic_cast<const OnePassIndex*>(&index);
  if (fp == nullptr) {
    throw ValidationError("one-pass differ: foreign index");
  }
  ScriptBuilder builder;
  const std::size_t seed = options_.seed_length;
  if (version.empty()) {
    return builder.finish();
  }
  if (fp->table.empty() || version.size() < seed) {
    builder.literals(version);
    return builder.finish();
  }
  const std::size_t mask = fp->mask;
  const std::vector<std::uint64_t>& table = fp->table;

  // Scan the version, probing the table.
  RollingHash rh(seed);
  std::size_t pos = 0;
  std::uint64_t h = rh.init(version);
  bool hash_valid = true;

  const auto advance_to = [&](std::size_t target) {
    if (target + seed > version.size()) {
      pos = target;
      hash_valid = false;
      return;
    }
    if (hash_valid && target - pos <= seed) {
      while (pos < target) {
        h = rh.roll(h, version[pos], version[pos + seed]);
        ++pos;
      }
    } else {
      pos = target;
      h = rh.init(version.subspan(pos));
      hash_valid = true;
    }
  };

  while (pos < version.size()) {
    if (pos + seed > version.size()) {
      builder.literals(version.subspan(pos));
      break;
    }

    const std::uint64_t cand = table[RollingHash::mix(h) & mask];
    if (cand != OnePassIndex::kEmpty) {
      const std::size_t from = static_cast<std::size_t>(cand);
      if (std::equal(
              version.begin() + static_cast<std::ptrdiff_t>(pos),
              version.begin() + static_cast<std::ptrdiff_t>(pos + seed),
              reference.begin() + static_cast<std::ptrdiff_t>(from))) {
        const std::size_t fwd =
            seed + match_forward(reference, from + seed, version, pos + seed);
        const std::size_t back = match_backward(reference, from, version, pos,
                                                builder.pending_literals());
        if (fwd + back >= options_.min_match) {
          builder.retract(back);
          builder.copy(from - back, fwd + back);
          advance_to(pos + fwd);
          continue;
        }
      }
    }
    builder.literal(version[pos]);
    advance_to(pos + 1);
  }

  return builder.finish();
}

}  // namespace ipd
