#include "delta/onepass_differ.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "core/rolling_hash.hpp"

namespace ipd {
namespace {

constexpr std::uint64_t kEmptySlot = std::numeric_limits<std::uint64_t>::max();

std::size_t match_forward(ByteView a, std::size_t ai, ByteView b,
                          std::size_t bi) noexcept {
  const std::size_t limit = std::min(a.size() - ai, b.size() - bi);
  std::size_t n = 0;
  while (n < limit && a[ai + n] == b[bi + n]) ++n;
  return n;
}

std::size_t match_backward(ByteView a, std::size_t ai, ByteView b,
                           std::size_t bi, std::size_t limit) noexcept {
  std::size_t n = 0;
  while (n < limit && n < ai && n < bi && a[ai - n - 1] == b[bi - n - 1]) ++n;
  return n;
}

}  // namespace

OnePassDiffer::OnePassDiffer(const DifferOptions& options)
    : options_(options) {
  assert(options_.seed_length >= 4);
  assert(options_.min_match >= options_.seed_length);
  assert(options_.table_bits >= 8 && options_.table_bits <= 28);
}

Script OnePassDiffer::diff(ByteView reference, ByteView version) const {
  ScriptBuilder builder;
  const std::size_t seed = options_.seed_length;
  if (version.empty()) {
    return builder.finish();
  }
  if (reference.size() < seed || version.size() < seed) {
    builder.literals(version);
    return builder.finish();
  }

  // Pass 1 — fingerprint the reference into the fixed-size table.
  const std::size_t table_size = std::size_t{1} << options_.table_bits;
  const std::size_t mask = table_size - 1;
  std::vector<std::uint64_t> table(table_size, kEmptySlot);

  RollingHash rh(seed);
  {
    std::uint64_t h = rh.init(reference);
    const std::size_t positions = reference.size() - seed + 1;
    for (std::size_t pos = 0;; ++pos) {
      std::uint64_t& slot = table[RollingHash::mix(h) & mask];
      if (slot == kEmptySlot) {
        slot = pos;  // first occurrence wins, as in [5]
      }
      if (pos + 1 >= positions) break;
      h = rh.roll(h, reference[pos], reference[pos + seed]);
    }
  }

  // Pass 2 — scan the version, probing the table.
  std::size_t pos = 0;
  std::uint64_t h = rh.init(version);
  bool hash_valid = true;

  const auto advance_to = [&](std::size_t target) {
    if (target + seed > version.size()) {
      pos = target;
      hash_valid = false;
      return;
    }
    if (hash_valid && target - pos <= seed) {
      while (pos < target) {
        h = rh.roll(h, version[pos], version[pos + seed]);
        ++pos;
      }
    } else {
      pos = target;
      h = rh.init(version.subspan(pos));
      hash_valid = true;
    }
  };

  while (pos < version.size()) {
    if (pos + seed > version.size()) {
      builder.literals(version.subspan(pos));
      break;
    }

    const std::uint64_t cand = table[RollingHash::mix(h) & mask];
    if (cand != kEmptySlot) {
      const std::size_t from = static_cast<std::size_t>(cand);
      if (std::equal(
              version.begin() + static_cast<std::ptrdiff_t>(pos),
              version.begin() + static_cast<std::ptrdiff_t>(pos + seed),
              reference.begin() + static_cast<std::ptrdiff_t>(from))) {
        const std::size_t fwd =
            seed + match_forward(reference, from + seed, version, pos + seed);
        const std::size_t back = match_backward(reference, from, version, pos,
                                                builder.pending_literals());
        if (fwd + back >= options_.min_match) {
          builder.retract(back);
          builder.copy(from - back, fwd + back);
          advance_to(pos + fwd);
          continue;
        }
      }
    }
    builder.literal(version[pos]);
    advance_to(pos + 1);
  }

  return builder.finish();
}

}  // namespace ipd
