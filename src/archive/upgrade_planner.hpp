// Upgrade planning across a release history.
//
// A publisher's fleet runs many old versions; for a device at release i
// that must reach release j, the cheapest download is not always the
// direct delta i->j. Long-lived histories drift: the direct delta can be
// nearly the full file, while hopping i -> i+1 -> ... -> j rides small
// per-release deltas. The planner models releases as a DAG whose edge
// weights are actual in-place delta sizes (computed lazily and cached —
// building all O(n²) deltas eagerly is the naive alternative) plus the
// full-image fallback, and finds the byte-cheapest path with Dijkstra.
//
// Edges can also be *seeded* from a durable artifact store
// (store/artifact_store.hpp): a chain delta that already exists on disk
// costs the server nothing to serve, while an un-built edge charges the
// server a differencing pass before the first byte moves. Following the
// delta-compression-network observation that routing must price server
// build cost alongside bytes on the wire, un-materialized edges carry
// PlannerOptions::build_cost_penalty in the route weight, steering plans
// along stored chains unless a fresh delta genuinely pays for itself.
//
// Every edge artifact is an in-place delta, so the device needs only the
// storage for one version at every hop of the chosen path.
//
// Lifetime: the planner holds shared ownership of every release body
// (shared_ptr<const Bytes>), so a caller may publish new releases —
// append_release() — or drop its own references while plans are being
// computed on other threads; bodies a plan is using cannot go away under
// it. (The planner once borrowed ByteViews and made destruction of the
// history a use-after-free hazard; the view constructor now copies.)
//
// Thread-safety: the release list and the lazy edge/delta cache share an
// internal mutex, so concurrent plan() / step_artifact() / execute() /
// fold_plan() / append_release() calls are safe. Cache fills serialize —
// two threads that both need a missing edge build it one after the
// other, not twice; for parallel *builds* use the service's singleflight
// + worker pool instead.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/sync.hpp"
#include "device/channel.hpp"
#include "ipdelta.hpp"

namespace ipd {

struct PlannerOptions {
  PipelineOptions pipeline;
  /// Per-hop fixed overhead in bytes (request/response, flash erase
  /// bookkeeping); discourages absurdly long chains.
  std::uint64_t per_hop_overhead = 512;
  /// Consider direct deltas between releases at most this far apart
  /// (bounds the lazy O(n²) edge set; adjacent releases always exist).
  std::size_t max_hop_span = 8;
  /// Extra route weight (in bytes-equivalent) for an edge whose delta is
  /// not already materialized — the server must run a differencing pass
  /// to serve it. Edges seeded from a store, prebuilt, or built by an
  /// earlier plan are exempt. When set, un-built candidate edges are NOT
  /// built just to be priced: they are estimated pessimistically at the
  /// full target body plus this penalty, so planning over a fully
  /// materialized chain builds nothing, and only the chosen route's
  /// missing deltas are ever built. 0 = plan on measured wire bytes
  /// alone (every candidate edge is built lazily, the original mode).
  std::uint64_t build_cost_penalty = 0;
};

struct UpgradeStep {
  std::size_t from = 0;
  std::size_t to = 0;
  bool full_image = false;  ///< literal body instead of a delta
  std::uint64_t bytes = 0;  ///< artifact size
};

struct UpgradePlan {
  std::vector<UpgradeStep> steps;
  std::uint64_t total_bytes = 0;

  double download_seconds(const ChannelModel& channel) const {
    double total = 0;
    for (const UpgradeStep& step : steps) {
      total += channel.transfer_seconds(step.bytes);
    }
    return total;
  }
};

class UpgradePlanner {
 public:
  /// `releases` is the full ordered history (index 0 oldest), shared
  /// with the caller — the planner keeps each body alive as long as it
  /// needs it.
  UpgradePlanner(std::vector<std::shared_ptr<const Bytes>> releases,
                 const PlannerOptions& options = {});

  /// Convenience for callers holding views: each body is COPIED into
  /// owned storage (views may dangle the moment this returns).
  UpgradePlanner(const std::vector<ByteView>& releases,
                 const PlannerOptions& options = {});

  std::size_t release_count() const;

  /// Extend the history with a new newest release (id == prior count).
  /// Safe to call while other threads plan over the existing prefix.
  std::size_t append_release(std::shared_ptr<const Bytes> body);

  /// Byte-cheapest plan from release `from` to release `to` (from < to).
  UpgradePlan plan(std::size_t from, std::size_t to);

  /// Admit an externally built in-place delta artifact as the edge
  /// from -> to (e.g. a chain delta the artifact store already holds).
  /// The container header must match the endpoint bodies (reference
  /// length; version length + CRC) — throws ValidationError otherwise.
  /// The edge is marked materialized: plans treat it as free to serve.
  void seed_edge(std::size_t from, std::size_t to, Bytes artifact);

  /// Build (and mark materialized) the edge from -> to now — pre-warming
  /// for pairs known to be hot, so later plans neither pay the build nor
  /// charge the penalty. Returns the artifact size.
  std::uint64_t prebuild(std::size_t from, std::size_t to);

  /// True when the edge's artifact already exists (seeded, prebuilt, or
  /// built by an earlier plan) and serves without a differencing pass.
  bool materialized(std::size_t from, std::size_t to) const;

  /// The serialized artifact for one step (in-place delta, or the raw
  /// image for a full_image step). Cached.
  Bytes step_artifact(const UpgradeStep& step);

  /// Execute a plan against a device image buffer holding release
  /// `plan.steps.front().from`; the buffer is resized as needed and ends
  /// holding the target release. Verifies every hop.
  void execute(const UpgradePlan& plan, Bytes& image);

  /// Fold a multi-step plan into ONE direct in-place delta by composing
  /// the cached per-hop scripts (delta/compose.hpp) — no differencing
  /// over the endpoint files. Plans whose cheapest route is a full image
  /// or a single hop are returned as that artifact directly.
  Bytes fold_plan(const UpgradePlan& plan);

  /// Deltas actually built so far (lazy-cache observability for tests).
  std::size_t deltas_built() const noexcept {
    return deltas_built_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t edge_bytes_locked(std::size_t from, std::size_t to)
      REQUIRES(mutex_);
  /// Shared reference to one body (locks internally).
  std::shared_ptr<const Bytes> body_ref(std::size_t id) const
      EXCLUDES(mutex_);

  mutable Mutex mutex_{"UpgradePlanner"};
  std::vector<std::shared_ptr<const Bytes>> releases_ GUARDED_BY(mutex_);
  PlannerOptions options_;
  std::map<std::pair<std::size_t, std::size_t>, Bytes> delta_cache_
      GUARDED_BY(mutex_);
  std::atomic<std::size_t> deltas_built_{0};
};

}  // namespace ipd
