// Upgrade planning across a release history.
//
// A publisher's fleet runs many old versions; for a device at release i
// that must reach release j, the cheapest download is not always the
// direct delta i->j. Long-lived histories drift: the direct delta can be
// nearly the full file, while hopping i -> i+1 -> ... -> j rides small
// per-release deltas. The planner models releases as a DAG whose edge
// weights are actual in-place delta sizes (computed lazily and cached —
// building all O(n²) deltas eagerly is the naive alternative) plus the
// full-image fallback, and finds the byte-cheapest path with Dijkstra.
//
// Every edge artifact is an in-place delta, so the device needs only the
// storage for one version at every hop of the chosen path.
//
// Thread-safety: the lazy edge/delta cache is guarded by an internal
// mutex, so concurrent plan() / step_artifact() / execute() / fold_plan()
// calls are safe (the delta distribution service shares one planner
// across request threads). Cache fills serialize — two threads that both
// need a missing edge build it one after the other, not twice; for
// parallel *builds* use the service's singleflight + worker pool instead.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "device/channel.hpp"
#include "ipdelta.hpp"

namespace ipd {

struct PlannerOptions {
  PipelineOptions pipeline;
  /// Per-hop fixed overhead in bytes (request/response, flash erase
  /// bookkeeping); discourages absurdly long chains.
  std::uint64_t per_hop_overhead = 512;
  /// Consider direct deltas between releases at most this far apart
  /// (bounds the lazy O(n²) edge set; adjacent releases always exist).
  std::size_t max_hop_span = 8;
};

struct UpgradeStep {
  std::size_t from = 0;
  std::size_t to = 0;
  bool full_image = false;  ///< literal body instead of a delta
  std::uint64_t bytes = 0;  ///< artifact size
};

struct UpgradePlan {
  std::vector<UpgradeStep> steps;
  std::uint64_t total_bytes = 0;

  double download_seconds(const ChannelModel& channel) const {
    double total = 0;
    for (const UpgradeStep& step : steps) {
      total += channel.transfer_seconds(step.bytes);
    }
    return total;
  }
};

class UpgradePlanner {
 public:
  /// `releases` is the full ordered history (index 0 oldest). Bodies are
  /// borrowed views — the caller keeps them alive.
  UpgradePlanner(std::vector<ByteView> releases,
                 const PlannerOptions& options = {});

  std::size_t release_count() const noexcept { return releases_.size(); }

  /// Byte-cheapest plan from release `from` to release `to` (from < to).
  UpgradePlan plan(std::size_t from, std::size_t to);

  /// The serialized artifact for one step (in-place delta, or the raw
  /// image for a full_image step). Cached.
  Bytes step_artifact(const UpgradeStep& step);

  /// Execute a plan against a device image buffer holding release
  /// `plan.steps.front().from`; the buffer is resized as needed and ends
  /// holding the target release. Verifies every hop.
  void execute(const UpgradePlan& plan, Bytes& image);

  /// Fold a multi-step plan into ONE direct in-place delta by composing
  /// the cached per-hop scripts (delta/compose.hpp) — no differencing
  /// over the endpoint files. Plans whose cheapest route is a full image
  /// or a single hop are returned as that artifact directly.
  Bytes fold_plan(const UpgradePlan& plan);

  /// Deltas actually built so far (lazy-cache observability for tests).
  std::size_t deltas_built() const noexcept {
    return deltas_built_.load(std::memory_order_relaxed);
  }

 private:
  /// Caller must hold mutex_.
  std::uint64_t edge_bytes_locked(std::size_t from, std::size_t to);

  std::vector<ByteView> releases_;
  PlannerOptions options_;
  std::mutex mutex_;  ///< guards delta_cache_
  std::map<std::pair<std::size_t, std::size_t>, Bytes> delta_cache_;
  std::atomic<std::size_t> deltas_built_{0};
};

}  // namespace ipd
