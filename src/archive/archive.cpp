#include "archive/archive.hpp"

#include <algorithm>

#include "apply/inplace_apply.hpp"
#include "core/buffer.hpp"
#include "core/checksum.hpp"
#include "verify/verifier.hpp"

namespace ipd {
namespace {

constexpr char kArchiveMagic[4] = {'I', 'P', 'D', 'A'};
constexpr std::uint8_t kArchiveVersion = 1;

}  // namespace

Archive build_archive(const FileSet& old_release, const FileSet& new_release,
                      const ArchiveBuildOptions& options,
                      ArchiveBuildReport* report_out) {
  Archive archive;
  ArchiveBuildReport report;
  // One pipeline for the whole archive: the differ and (lazy) pool are
  // reused across every entry instead of rebuilt per file.
  const Pipeline pipeline(options.pipeline);

  for (const auto& [name, content] : new_release) {
    report.new_release_bytes += content.size();
    const auto old_it = old_release.find(name);
    if (old_it == old_release.end()) {
      ++report.literal_entries;
      archive.entries.push_back(
          ArchiveEntry{EntryKind::kLiteral, name, content});
      continue;
    }
    Bytes delta = pipeline.build_inplace(old_it->second, content).delta;
    const double gain_threshold =
        static_cast<double>(content.size()) * (1.0 - options.min_delta_gain);
    if (static_cast<double>(delta.size()) <= gain_threshold) {
      ++report.delta_entries;
      archive.entries.push_back(
          ArchiveEntry{EntryKind::kDelta, name, std::move(delta)});
    } else {
      // Delta not worth it (unrelated contents): ship the file whole.
      ++report.literal_entries;
      archive.entries.push_back(
          ArchiveEntry{EntryKind::kLiteral, name, content});
    }
  }
  for (const auto& [name, content] : old_release) {
    (void)content;
    if (new_release.find(name) == new_release.end()) {
      ++report.delete_entries;
      archive.entries.push_back(ArchiveEntry{EntryKind::kDelete, name, {}});
    }
  }

  if (report_out != nullptr) {
    *report_out = report;
  }
  return archive;
}

Bytes serialize_archive(const Archive& archive) {
  ByteWriter w;
  w.write_string(std::string_view(kArchiveMagic, 4));
  w.write_u8(kArchiveVersion);
  w.write_varint(archive.entries.size());
  for (const ArchiveEntry& entry : archive.entries) {
    w.write_u8(static_cast<std::uint8_t>(entry.kind));
    w.write_varint(entry.name.size());
    w.write_string(entry.name);
    switch (entry.kind) {
      case EntryKind::kDelta:
        w.write_varint(entry.body.size());
        w.write_bytes(entry.body);
        break;
      case EntryKind::kLiteral:
        w.write_varint(entry.body.size());
        w.write_bytes(entry.body);
        w.write_u32le(crc32c(entry.body));
        break;
      case EntryKind::kDelete:
        if (!entry.body.empty()) {
          throw ValidationError("delete entry must carry no body");
        }
        break;
    }
  }
  w.write_u32le(crc32c(w.bytes()));
  return w.take();
}

Archive deserialize_archive(ByteView data) {
  if (data.size() < 4 + 1 + 4) {
    throw FormatError("archive truncated");
  }
  // Trailer first: reject corruption before parsing anything.
  const ByteView body = data.first(data.size() - 4);
  ByteReader trailer(data.subspan(data.size() - 4));
  if (crc32c(body) != trailer.read_u32le()) {
    throw FormatError("archive checksum mismatch");
  }

  ByteReader r(body);
  const ByteView magic = r.read_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kArchiveMagic)) {
    throw FormatError("bad magic: not an ipdelta archive");
  }
  if (r.read_u8() != kArchiveVersion) {
    throw FormatError("unsupported archive version");
  }

  Archive archive;
  const std::uint64_t count = r.read_varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    ArchiveEntry entry;
    const std::uint8_t kind = r.read_u8();
    if (kind > static_cast<std::uint8_t>(EntryKind::kDelete)) {
      throw FormatError("unknown archive entry kind");
    }
    entry.kind = static_cast<EntryKind>(kind);
    const std::uint64_t name_len = r.read_varint();
    if (name_len > 4096) {
      throw FormatError("entry name implausibly long");
    }
    const ByteView name = r.read_bytes(static_cast<std::size_t>(name_len));
    entry.name.assign(name.begin(), name.end());
    switch (entry.kind) {
      case EntryKind::kDelta: {
        const std::uint64_t len = r.read_varint();
        const ByteView bytes = r.read_bytes(static_cast<std::size_t>(len));
        entry.body.assign(bytes.begin(), bytes.end());
        // Archives cross machines; the archive CRC only proves transit
        // integrity, not that the embedded delta is safe to apply.
        // Statically verify on load so a poisoned archive is refused
        // here, naming the entry, instead of corrupting an apply later.
        const Report verdict = Verifier().check(ByteView(entry.body));
        if (!verdict.ok()) {
          std::string why =
              "delta entry failed static verification: " + entry.name;
          for (const Finding& f : verdict.findings) {
            if (f.severity == Severity::kError) {
              why += ": " + f.message;
              break;
            }
          }
          throw FormatError(why);
        }
        break;
      }
      case EntryKind::kLiteral: {
        const std::uint64_t len = r.read_varint();
        const ByteView bytes = r.read_bytes(static_cast<std::size_t>(len));
        entry.body.assign(bytes.begin(), bytes.end());
        if (crc32c(entry.body) != r.read_u32le()) {
          throw FormatError("literal entry checksum mismatch: " + entry.name);
        }
        break;
      }
      case EntryKind::kDelete:
        break;
    }
    archive.entries.push_back(std::move(entry));
  }
  if (!r.exhausted()) {
    throw FormatError("trailing garbage inside archive body");
  }
  return archive;
}

void apply_archive(const Archive& archive, FileSet& release) {
  for (const ArchiveEntry& entry : archive.entries) {
    switch (entry.kind) {
      case EntryKind::kDelta: {
        const auto it = release.find(entry.name);
        if (it == release.end()) {
          throw ValidationError("archive delta targets missing file: " +
                                entry.name);
        }
        // Rebuild the file in its own buffer, exactly as a device would.
        const DeltaFile header = deserialize_delta(entry.body);
        Bytes& buffer = it->second;
        if (buffer.size() != header.reference_length) {
          throw ValidationError("file size mismatch for " + entry.name);
        }
        buffer.resize(static_cast<std::size_t>(std::max(
            header.reference_length, header.version_length)));
        const length_t new_len = apply_delta_inplace(entry.body, buffer);
        buffer.resize(static_cast<std::size_t>(new_len));
        break;
      }
      case EntryKind::kLiteral:
        release[entry.name] = entry.body;
        break;
      case EntryKind::kDelete:
        if (release.erase(entry.name) == 0) {
          throw ValidationError("archive deletes missing file: " +
                                entry.name);
        }
        break;
    }
  }
}

Bytes build_archive_bytes(const FileSet& old_release,
                          const FileSet& new_release,
                          const ArchiveBuildOptions& options,
                          ArchiveBuildReport* report_out) {
  const Archive archive = build_archive(old_release, new_release, options,
                                        report_out);
  Bytes bytes = serialize_archive(archive);
  if (report_out != nullptr) {
    report_out->archive_bytes = bytes.size();
  }
  return bytes;
}

}  // namespace ipd
