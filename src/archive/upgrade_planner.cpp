#include "archive/upgrade_planner.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/checksum.hpp"
#include "delta/compose.hpp"

namespace ipd {

UpgradePlanner::UpgradePlanner(
    std::vector<std::shared_ptr<const Bytes>> releases,
    const PlannerOptions& options)
    : releases_(std::move(releases)), options_(options) {
  if (options_.max_hop_span == 0) {
    throw ValidationError("planner: max_hop_span must be >= 1");
  }
  const MutexLock lock(mutex_);
  for (const auto& body : releases_) {
    if (!body) throw ValidationError("planner: null release body");
  }
}

namespace {

std::vector<std::shared_ptr<const Bytes>> copy_views(
    const std::vector<ByteView>& releases) {
  std::vector<std::shared_ptr<const Bytes>> owned;
  owned.reserve(releases.size());
  for (const ByteView view : releases) {
    owned.push_back(
        std::make_shared<const Bytes>(view.begin(), view.end()));
  }
  return owned;
}

}  // namespace

UpgradePlanner::UpgradePlanner(const std::vector<ByteView>& releases,
                               const PlannerOptions& options)
    : UpgradePlanner(copy_views(releases), options) {}

std::size_t UpgradePlanner::release_count() const {
  const MutexLock lock(mutex_);
  return releases_.size();
}

std::size_t UpgradePlanner::append_release(
    std::shared_ptr<const Bytes> body) {
  if (!body) throw ValidationError("planner: null release body");
  const MutexLock lock(mutex_);
  releases_.push_back(std::move(body));
  return releases_.size() - 1;
}

std::shared_ptr<const Bytes> UpgradePlanner::body_ref(
    std::size_t id) const {
  const MutexLock lock(mutex_);
  if (id >= releases_.size()) {
    throw ValidationError("planner: no release " + std::to_string(id));
  }
  return releases_[id];
}

std::uint64_t UpgradePlanner::edge_bytes_locked(std::size_t from,
                                                std::size_t to) {
  const auto key = std::make_pair(from, to);
  auto it = delta_cache_.find(key);
  if (it == delta_cache_.end()) {
    it = delta_cache_
             .emplace(key, Pipeline(options_.pipeline)
                               .build_inplace(*releases_[from],
                                              *releases_[to])
                               .delta)
             .first;
    deltas_built_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second.size();
}

void UpgradePlanner::seed_edge(std::size_t from, std::size_t to,
                               Bytes artifact) {
  const MutexLock lock(mutex_);
  if (from >= to || to >= releases_.size()) {
    throw ValidationError("planner: need from < to < release_count");
  }
  std::optional<std::pair<DeltaHeader, std::size_t>> parsed;
  try {
    parsed = try_parse_header(artifact);
  } catch (const FormatError&) {
    parsed.reset();
  }
  if (!parsed) {
    throw ValidationError("planner: seeded edge is not a delta container");
  }
  const DeltaHeader& header = parsed->first;
  const Bytes& reference = *releases_[from];
  const Bytes& version = *releases_[to];
  if (header.reference_length != reference.size() ||
      header.version_length != version.size() ||
      header.version_crc != crc32c(version)) {
    throw ValidationError(
        "planner: seeded edge " + std::to_string(from) + " -> " +
        std::to_string(to) + " does not match the release bodies");
  }
  delta_cache_[{from, to}] = std::move(artifact);
}

std::uint64_t UpgradePlanner::prebuild(std::size_t from, std::size_t to) {
  const MutexLock lock(mutex_);
  if (from >= to || to >= releases_.size()) {
    throw ValidationError("planner: need from < to < release_count");
  }
  return edge_bytes_locked(from, to);
}

bool UpgradePlanner::materialized(std::size_t from,
                                  std::size_t to) const {
  const MutexLock lock(mutex_);
  return delta_cache_.contains({from, to});
}

UpgradePlan UpgradePlanner::plan(std::size_t from, std::size_t to) {
  const MutexLock lock(mutex_);
  if (from >= to || to >= releases_.size()) {
    throw ValidationError("planner: need from < to < release_count");
  }

  // Edges materialized before this plan serve without a differencing
  // pass. With a build-cost penalty configured, an un-built edge is not
  // built just to learn its weight — it is priced pessimistically at the
  // full target body (a delta never serves worse than the image) plus
  // the penalty, and only the edges of the CHOSEN route get built below.
  // With no penalty the planner measures lazily, as it always has.
  std::set<std::pair<std::size_t, std::size_t>> pre_built;
  for (const auto& [key, artifact] : delta_cache_) pre_built.insert(key);
  const auto edge_weight = [&](std::size_t a, std::size_t b) {
    if (pre_built.contains({a, b})) {
      return edge_bytes_locked(a, b) + options_.per_hop_overhead;
    }
    if (options_.build_cost_penalty != 0) {
      return releases_[b]->size() + options_.per_hop_overhead +
             options_.build_cost_penalty;
    }
    return edge_bytes_locked(a, b) + options_.per_hop_overhead;
  };

  // Dijkstra over releases from..to; edges (i, j) for j-i <= max_hop_span
  // weighted by delta size + per-hop overhead (+ build penalty). The
  // full-image fallback is an edge from anywhere straight to `to`.
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  const std::size_t n = to - from + 1;
  std::vector<std::uint64_t> dist(n, kInf);
  std::vector<std::size_t> prev(n, 0);
  std::vector<bool> prev_full(n, false);
  std::vector<bool> done(n, false);
  dist[0] = 0;

  using QueueEntry = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  queue.emplace(0, 0);

  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (done[u]) continue;
    done[u] = true;
    if (u == n - 1) break;
    const std::size_t u_abs = from + u;

    const std::size_t span =
        std::min(options_.max_hop_span, n - 1 - u);
    for (std::size_t hop = 1; hop <= span; ++hop) {
      const std::size_t v = u + hop;
      const std::uint64_t w = edge_weight(u_abs, from + v);
      if (d + w < dist[v]) {
        dist[v] = d + w;
        prev[v] = u;
        prev_full[v] = false;
        queue.emplace(dist[v], v);
      }
    }
    // Full-image jump straight to the target (nothing to build).
    const std::uint64_t w_full =
        releases_[to]->size() + options_.per_hop_overhead;
    if (d + w_full < dist[n - 1]) {
      dist[n - 1] = d + w_full;
      prev[n - 1] = u;
      prev_full[n - 1] = true;
      queue.emplace(dist[n - 1], n - 1);
    }
  }

  if (dist[n - 1] == kInf) {
    throw Error("planner: no path found (internal error)");
  }

  UpgradePlan plan;
  std::vector<std::size_t> order;
  std::vector<bool> full;
  for (std::size_t v = n - 1; v != 0; v = prev[v]) {
    order.push_back(v);
    full.push_back(prev_full[v]);
  }
  std::reverse(order.begin(), order.end());
  std::reverse(full.begin(), full.end());

  std::size_t at = from;
  for (std::size_t i = 0; i < order.size(); ++i) {
    UpgradeStep step;
    step.from = at;
    step.to = from + order[i];
    step.full_image = full[i];
    step.bytes = step.full_image ? releases_[step.to]->size()
                                 : edge_bytes_locked(step.from, step.to);
    plan.total_bytes += step.bytes;
    plan.steps.push_back(step);
    at = step.to;
  }
  return plan;
}

Bytes UpgradePlanner::step_artifact(const UpgradeStep& step) {
  if (step.full_image) {
    return *body_ref(step.to);  // copy of the shared body
  }
  const MutexLock lock(mutex_);
  if (step.to >= releases_.size() || step.from >= step.to) {
    throw ValidationError("planner: bad step");
  }
  edge_bytes_locked(step.from, step.to);  // ensure cached
  return delta_cache_.at({step.from, step.to});
}

Bytes UpgradePlanner::fold_plan(const UpgradePlan& plan) {
  if (plan.steps.empty()) {
    throw ValidationError("fold_plan: empty plan");
  }
  if (plan.steps.size() == 1) {
    return step_artifact(plan.steps.front());
  }
  // Any full-image step makes everything before it irrelevant.
  for (const UpgradeStep& step : plan.steps) {
    if (step.full_image) {
      return step_artifact(plan.steps.back());
    }
  }
  Script folded =
      deserialize_delta(step_artifact(plan.steps.front())).script;
  for (std::size_t i = 1; i < plan.steps.size(); ++i) {
    const Script next =
        deserialize_delta(step_artifact(plan.steps[i])).script;
    folded = compose_scripts(folded, next);
  }
  // Shared refs keep both endpoint bodies alive without the lock.
  const std::shared_ptr<const Bytes> reference =
      body_ref(plan.steps.front().from);
  const std::shared_ptr<const Bytes> version =
      body_ref(plan.steps.back().to);
  return make_inplace_delta(folded, *reference, *version,
                            options_.pipeline.convert, nullptr,
                            options_.pipeline.compress_payload);
}

void UpgradePlanner::execute(const UpgradePlan& plan, Bytes& image) {
  for (const UpgradeStep& step : plan.steps) {
    const std::shared_ptr<const Bytes> target = body_ref(step.to);
    if (step.full_image) {
      image = *target;
      continue;
    }
    const Bytes delta = step_artifact(step);
    image.resize(std::max(image.size(), target->size()));
    const length_t new_len = apply_delta_inplace(delta, image);
    image.resize(static_cast<std::size_t>(new_len));
  }
}

}  // namespace ipd
