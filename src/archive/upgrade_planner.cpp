#include "archive/upgrade_planner.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "delta/compose.hpp"

namespace ipd {

UpgradePlanner::UpgradePlanner(std::vector<ByteView> releases,
                               const PlannerOptions& options)
    : releases_(std::move(releases)), options_(options) {
  if (options_.max_hop_span == 0) {
    throw ValidationError("planner: max_hop_span must be >= 1");
  }
}

std::uint64_t UpgradePlanner::edge_bytes_locked(std::size_t from,
                                                std::size_t to) {
  const auto key = std::make_pair(from, to);
  auto it = delta_cache_.find(key);
  if (it == delta_cache_.end()) {
    it = delta_cache_
             .emplace(key, create_inplace_delta(releases_[from],
                                                releases_[to],
                                                options_.pipeline))
             .first;
    deltas_built_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second.size();
}

UpgradePlan UpgradePlanner::plan(std::size_t from, std::size_t to) {
  if (from >= to || to >= releases_.size()) {
    throw ValidationError("planner: need from < to < release_count");
  }
  std::lock_guard lock(mutex_);

  // Dijkstra over releases from..to; edges (i, j) for j-i <= max_hop_span
  // weighted by delta size + per-hop overhead. The full-image fallback is
  // an edge from anywhere straight to `to`.
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  const std::size_t n = to - from + 1;
  std::vector<std::uint64_t> dist(n, kInf);
  std::vector<std::size_t> prev(n, 0);
  std::vector<bool> prev_full(n, false);
  std::vector<bool> done(n, false);
  dist[0] = 0;

  using QueueEntry = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue;
  queue.emplace(0, 0);

  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (done[u]) continue;
    done[u] = true;
    if (u == n - 1) break;
    const std::size_t u_abs = from + u;

    const std::size_t span =
        std::min(options_.max_hop_span, n - 1 - u);
    for (std::size_t hop = 1; hop <= span; ++hop) {
      const std::size_t v = u + hop;
      const std::uint64_t w =
          edge_bytes_locked(u_abs, from + v) + options_.per_hop_overhead;
      if (d + w < dist[v]) {
        dist[v] = d + w;
        prev[v] = u;
        prev_full[v] = false;
        queue.emplace(dist[v], v);
      }
    }
    // Full-image jump straight to the target.
    const std::uint64_t w_full =
        releases_[to].size() + options_.per_hop_overhead;
    if (d + w_full < dist[n - 1]) {
      dist[n - 1] = d + w_full;
      prev[n - 1] = u;
      prev_full[n - 1] = true;
      queue.emplace(dist[n - 1], n - 1);
    }
  }

  if (dist[n - 1] == kInf) {
    throw Error("planner: no path found (internal error)");
  }

  UpgradePlan plan;
  std::vector<std::size_t> order;
  std::vector<bool> full;
  for (std::size_t v = n - 1; v != 0; v = prev[v]) {
    order.push_back(v);
    full.push_back(prev_full[v]);
  }
  std::reverse(order.begin(), order.end());
  std::reverse(full.begin(), full.end());

  std::size_t at = from;
  for (std::size_t i = 0; i < order.size(); ++i) {
    UpgradeStep step;
    step.from = at;
    step.to = from + order[i];
    step.full_image = full[i];
    step.bytes = step.full_image ? releases_[step.to].size()
                                 : edge_bytes_locked(step.from, step.to);
    plan.total_bytes += step.bytes;
    plan.steps.push_back(step);
    at = step.to;
  }
  return plan;
}

Bytes UpgradePlanner::step_artifact(const UpgradeStep& step) {
  if (step.full_image) {
    return Bytes(releases_[step.to].begin(), releases_[step.to].end());
  }
  std::lock_guard lock(mutex_);
  edge_bytes_locked(step.from, step.to);  // ensure cached
  return delta_cache_.at({step.from, step.to});
}

Bytes UpgradePlanner::fold_plan(const UpgradePlan& plan) {
  if (plan.steps.empty()) {
    throw ValidationError("fold_plan: empty plan");
  }
  if (plan.steps.size() == 1) {
    return step_artifact(plan.steps.front());
  }
  // Any full-image step makes everything before it irrelevant.
  for (const UpgradeStep& step : plan.steps) {
    if (step.full_image) {
      return step_artifact(plan.steps.back());
    }
  }
  Script folded =
      deserialize_delta(step_artifact(plan.steps.front())).script;
  for (std::size_t i = 1; i < plan.steps.size(); ++i) {
    const Script next =
        deserialize_delta(step_artifact(plan.steps[i])).script;
    folded = compose_scripts(folded, next);
  }
  const ByteView reference = releases_[plan.steps.front().from];
  const ByteView version = releases_[plan.steps.back().to];
  return make_inplace_delta(folded, reference, version,
                            options_.pipeline.convert, nullptr,
                            options_.pipeline.compress_payload);
}

void UpgradePlanner::execute(const UpgradePlan& plan, Bytes& image) {
  for (const UpgradeStep& step : plan.steps) {
    const ByteView target = releases_[step.to];
    if (step.full_image) {
      image.assign(target.begin(), target.end());
      continue;
    }
    const Bytes delta = step_artifact(step);
    image.resize(std::max(image.size(), target.size()));
    const length_t new_len = apply_delta_inplace(delta, image);
    image.resize(static_cast<std::size_t>(new_len));
  }
}

}  // namespace ipd
