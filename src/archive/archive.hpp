// Update archive: one downloadable artifact that carries a whole release
// upgrade — in-place deltas for changed files, literal bodies for new
// files, and deletions — plus a manifest.
//
// This is the distribution container the paper's motivation implies: a
// vendor ships "release N -> N+1" to a fleet of devices/mirrors as one
// file. Every delta inside is in-place reconstructible, so a receiver
// upgrades file-by-file in the storage the old release occupies.
//
// Wire format:
//   magic "IPDA" | version u8 | entry count varint | entries...
// entry:
//   kind u8 | name (varint length + bytes) | body per kind:
//     kDelta:   varint length + serialized in-place delta file
//     kLiteral: varint length + raw new-file bytes + crc32c
//     kDelete:  (empty)
// trailer: crc32c of everything before it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "delta/codec.hpp"
#include "ipdelta.hpp"

namespace ipd {

enum class EntryKind : std::uint8_t {
  kDelta = 0,    ///< file exists in both releases; body is an in-place delta
  kLiteral = 1,  ///< file is new; body is its full content
  kDelete = 2,   ///< file no longer exists
};

struct ArchiveEntry {
  EntryKind kind = EntryKind::kDelta;
  std::string name;
  Bytes body;  ///< delta file (kDelta) or raw content (kLiteral)
};

struct Archive {
  std::vector<ArchiveEntry> entries;
};

/// A "release" as a named file set; stands in for a directory tree.
using FileSet = std::map<std::string, Bytes>;

struct ArchiveBuildOptions {
  PipelineOptions pipeline;
  /// Emit kLiteral instead of kDelta when the delta would not be at
  /// least this much smaller than the file (deltas between unrelated
  /// contents can exceed the file itself).
  double min_delta_gain = 0.05;
};

struct ArchiveBuildReport {
  std::size_t delta_entries = 0;
  std::size_t literal_entries = 0;
  std::size_t delete_entries = 0;
  std::uint64_t new_release_bytes = 0;  ///< total size of the new release
  std::uint64_t archive_bytes = 0;      ///< size of the serialized archive
};

/// Diff two releases into an archive.
Archive build_archive(const FileSet& old_release, const FileSet& new_release,
                      const ArchiveBuildOptions& options = {},
                      ArchiveBuildReport* report_out = nullptr);

/// Serialize / parse the container. deserialize_archive throws
/// FormatError on corruption (trailer CRC, per-entry checks).
Bytes serialize_archive(const Archive& archive);
Archive deserialize_archive(ByteView data);

/// Apply an archive to a release in place: kDelta entries rebuild each
/// file inside its own buffer, kLiteral entries are installed verbatim,
/// kDelete entries are removed. Throws on any mismatch (missing file,
/// CRC failure); `release` is left partially upgraded in that case —
/// device-grade atomicity is the journaled updater's job, per file.
void apply_archive(const Archive& archive, FileSet& release);

/// Convenience: serialize(build(...)).
Bytes build_archive_bytes(const FileSet& old_release,
                          const FileSet& new_release,
                          const ArchiveBuildOptions& options = {},
                          ArchiveBuildReport* report_out = nullptr);

}  // namespace ipd
