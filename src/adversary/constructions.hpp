// Analytic constructions from the paper, as real (reference, script)
// instances the rest of the library can run end to end:
//
//  * Figure 2 — a CRWI digraph shaped like a binary tree with an edge
//    from every leaf back to the root. Every root→leaf path closes a
//    cycle whose cheapest vertex is the leaf, so the locally-minimum
//    policy deletes all k leaves (cost ≈ k·C) while deleting the root
//    alone (cost ≈ C) is globally optimal — local-min is arbitrarily far
//    from optimal.
//  * Figure 3 — a file pair whose CRWI digraph realises the Ω(|C|²) edge
//    bound: √L big copies all read the block that √L unit copies write.
//    Together with Lemma 1 (|E| ≤ L_V) this pins the digraph size.
//  * Permutation deltas — version = a block permutation of the reference;
//    the CRWI digraph is exactly the permutation's cycle structure, giving
//    precise control over cycle count and length for tests and benches.
#pragma once

#include <span>

#include "core/rng.hpp"
#include "delta/script.hpp"

namespace ipd {

/// A self-contained adversarial instance: a valid delta script plus the
/// reference it reads and the version it encodes.
struct AdversaryInstance {
  Script script;
  Bytes reference;
  Bytes version;
};

/// Figure 2: complete binary tree of `depth` levels (depth >= 2; the tree
/// has 2^depth - 1 vertices and 2^(depth-1) leaves).
///
/// Copy lengths are tuned so conversion costs order as
/// leaf < root < inner, making the leaf the locally-minimum choice on
/// every cycle while the root remains the global optimum.
struct Fig2Instance {
  Script script;  ///< copies only; writes tile the version contiguously
  Bytes reference;
  Bytes version;
  std::size_t leaf_count = 0;
  length_t leaf_copy_length = 0;  ///< C, cost scale of one leaf deletion
  length_t root_copy_length = 0;  ///< cost scale of the optimal deletion
};
Fig2Instance make_fig2_tree(std::size_t depth);

/// Figure 3: version file of length L = block² built from √L unit copies
/// (block b₁) plus √L − 1 block-sized copies of reference block b₁.
/// The CRWI digraph has (√L − 1)·√L ≈ L edges — Θ(|C|²) — and is acyclic.
struct Fig3Instance {
  Script script;
  Bytes reference;
  Bytes version;
  std::size_t expected_edges = 0;
};
Fig3Instance make_fig3_quadratic(length_t block);

/// Version = block permutation of the reference. The CRWI digraph of the
/// resulting copy set is exactly the functional graph of `permutation`
/// (minus fixed points): one digraph cycle per permutation cycle.
AdversaryInstance make_block_permutation(length_t block_size,
                                         std::span<const std::uint32_t> permutation,
                                         std::uint64_t content_seed = 42);

/// Cyclic rotation of the whole file by `shift` bytes — the minimal
/// two-command script with an unavoidable WR cycle.
AdversaryInstance make_rotation(length_t file_size, length_t shift,
                                std::uint64_t content_seed = 42);

/// Uniformly random permutation of {0..n-1}.
std::vector<std::uint32_t> random_permutation(Rng& rng, std::size_t n);

/// A permutation of {0..n-1} that is a single n-cycle (worst case for
/// cycle length).
std::vector<std::uint32_t> single_cycle_permutation(std::size_t n);

}  // namespace ipd
