#include "adversary/constructions.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "apply/apply.hpp"

namespace ipd {
namespace {

Bytes random_bytes(std::uint64_t seed, length_t size) {
  Rng rng(seed);
  Bytes out(static_cast<std::size_t>(size));
  rng.fill(out);
  return out;
}

}  // namespace

Fig2Instance make_fig2_tree(std::size_t depth) {
  if (depth < 2) {
    throw ValidationError("fig2 tree needs depth >= 2");
  }
  // Heap-numbered complete binary tree, nodes 1 .. 2^depth - 1; write
  // intervals laid out in BFS order so siblings are adjacent, which lets
  // a parent's contiguous read interval straddle exactly its two
  // children's writes.
  const std::size_t node_count = (std::size_t{1} << depth) - 1;
  const std::size_t first_leaf = std::size_t{1} << (depth - 1);

  // Copy lengths tuned so costs order leaf < root < inner (see header).
  // The parent-read constraint is l_parent/2 <= min(child lengths).
  constexpr length_t kLeaf = 16;
  constexpr length_t kRoot = 24;
  constexpr length_t kLastInner = 32;  // parents of leaves
  constexpr length_t kInner = 64;

  const auto node_length = [&](std::size_t node) -> length_t {
    if (node == 1) return kRoot;
    if (node >= first_leaf) return kLeaf;
    if (node * 2 >= first_leaf) return kLastInner;
    return kInner;
  };

  // BFS layout: node i writes [pos[i], pos[i] + len[i] - 1].
  std::vector<offset_t> pos(node_count + 1, 0);
  offset_t cursor = 0;
  for (std::size_t i = 1; i <= node_count; ++i) {
    pos[i] = cursor;
    cursor += node_length(i);
  }
  const length_t total = cursor;

  Fig2Instance instance;
  instance.leaf_count = first_leaf;  // 2^(depth-1) leaves
  instance.leaf_copy_length = kLeaf;
  instance.root_copy_length = kRoot;

  for (std::size_t i = 1; i <= node_count; ++i) {
    const length_t len = node_length(i);
    offset_t from;
    if (i >= first_leaf) {
      // Leaf: read inside the root's write interval -> edge leaf→root.
      from = pos[1];
      assert(len <= node_length(1));
    } else {
      // Inner (and root): read straddles the boundary between the two
      // children's writes -> edges parent→left, parent→right.
      const std::size_t right = 2 * i + 1;
      assert(len / 2 <= node_length(2 * i) && len / 2 <= node_length(right));
      from = pos[right] - len / 2;
    }
    instance.script.push(CopyCommand{from, pos[i], len});
  }

  instance.reference = random_bytes(0xF162, total);
  instance.version = apply_script(instance.script, instance.reference);
  return instance;
}

Fig3Instance make_fig3_quadratic(length_t block) {
  if (block < 2) {
    throw ValidationError("fig3 needs block >= 2");
  }
  const length_t total = block * block;  // L, with sqrt(L) = block

  Fig3Instance instance;
  // Block b1 of the version: `block` unit copies. Reading its own write
  // position keeps each unit copy free of incidental edges.
  for (length_t i = 0; i < block; ++i) {
    instance.script.push(CopyCommand{i, i, 1});
  }
  // Blocks b2..b_sqrt(L): whole-block copies of reference block b1; each
  // reads [0, block) and therefore conflicts with every unit copy.
  for (length_t j = 1; j < block; ++j) {
    instance.script.push(CopyCommand{0, j * block, block});
  }
  instance.expected_edges =
      static_cast<std::size_t>((block - 1) * block);

  instance.reference = random_bytes(0xF163, total);
  instance.version = apply_script(instance.script, instance.reference);
  return instance;
}

AdversaryInstance make_block_permutation(
    length_t block_size, std::span<const std::uint32_t> permutation,
    std::uint64_t content_seed) {
  if (block_size == 0) {
    throw ValidationError("block permutation needs block_size >= 1");
  }
  const std::size_t n = permutation.size();
  std::vector<bool> seen(n, false);
  for (const std::uint32_t p : permutation) {
    if (p >= n || seen[p]) {
      throw ValidationError("not a permutation of 0..n-1");
    }
    seen[p] = true;
  }

  AdversaryInstance instance;
  for (std::size_t i = 0; i < n; ++i) {
    instance.script.push(CopyCommand{permutation[i] * block_size,
                                     i * block_size, block_size});
  }
  instance.reference = random_bytes(content_seed, n * block_size);
  instance.version = apply_script(instance.script, instance.reference);
  return instance;
}

AdversaryInstance make_rotation(length_t file_size, length_t shift,
                                std::uint64_t content_seed) {
  if (file_size < 2 || shift == 0 || shift >= file_size) {
    throw ValidationError("rotation needs 0 < shift < file_size");
  }
  AdversaryInstance instance;
  // version[0 .. L-shift) = reference[shift .. L); version tail wraps.
  instance.script.push(CopyCommand{shift, 0, file_size - shift});
  instance.script.push(CopyCommand{0, file_size - shift, shift});
  instance.reference = random_bytes(content_seed, file_size);
  instance.version = apply_script(instance.script, instance.reference);
  return instance;
}

std::vector<std::uint32_t> random_permutation(Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  return perm;
}

std::vector<std::uint32_t> single_cycle_permutation(std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = static_cast<std::uint32_t>((i + 1) % n);
  }
  return perm;
}

}  // namespace ipd
