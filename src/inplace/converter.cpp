#include "inplace/converter.hpp"

#include <algorithm>
#include <map>

#include "core/checksum.hpp"
#include "inplace/scc.hpp"
#include "obs/trace.hpp"

namespace ipd {
namespace {

/// Sort adds by write offset and merge runs that abut exactly.
std::vector<AddCommand> coalesce(std::vector<AddCommand> adds) {
  std::sort(adds.begin(), adds.end(),
            [](const AddCommand& a, const AddCommand& b) {
              return a.to < b.to;
            });
  std::vector<AddCommand> merged;
  for (AddCommand& a : adds) {
    if (!merged.empty() &&
        merged.back().to + merged.back().length() == a.to) {
      merged.back().data.insert(merged.back().data.end(), a.data.begin(),
                                a.data.end());
    } else {
      merged.push_back(std::move(a));
    }
  }
  return merged;
}

}  // namespace

ConvertResult convert_to_inplace(const Script& input, ByteView reference,
                                 const ConvertOptions& options,
                                 const ParallelContext& ctx) {
  const length_t version_length = input.version_length();
  input.validate(reference.size(), version_length);

  // Steps 1–2: partition and sort the copies by write offset.
  std::vector<CopyCommand> copies = input.copies();
  std::vector<AddCommand> adds = input.adds();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& a, const CopyCommand& b) {
              return a.to < b.to;
            });

  ConvertResult result;
  ConvertReport& report = result.report;
  report.copies_in = copies.size();
  report.adds_in = adds.size();

  // Step 3: the CRWI digraph.
  const CrwiGraph graph = [&] {
    obs::Span span(obs::Stage::kCrwiGraph, reference.size());
    return CrwiGraph::build(copies, version_length, ctx,
                            &report.crwi_parallel_chunks);
  }();
  report.edges = graph.edge_count();

  const CodewordCostModel cost_model(options.format, version_length);
  const std::vector<std::uint64_t> costs = conversion_costs(copies, cost_model);

  // Step 4: topological sort with cycle breaking.
  TopoSortResult topo;
  if (options.policy == BreakPolicy::kExactOptimal ||
      options.policy == BreakPolicy::kSccGlobalMin) {
    std::vector<std::uint32_t> feedback_set;
    if (options.policy == BreakPolicy::kExactOptimal) {
      obs::Span span(obs::Stage::kCycleBreakExact);
      ExactFvsResult fvs = exact_min_fvs(graph, costs, options.exact);
      report.exact_was_optimal = fvs.optimal;
      feedback_set = std::move(fvs.removed);
    } else {
      obs::Span span(obs::Stage::kCycleBreakScc);
      feedback_set = scc_greedy_fvs(graph, costs, &report.scc_rounds);
    }
    std::vector<bool> pre_deleted(graph.vertex_count(), false);
    for (const std::uint32_t v : feedback_set) {
      pre_deleted[v] = true;
    }
    // The remainder is acyclic; constant-time policy never fires.
    obs::Span span(obs::Stage::kTopoSort);
    topo = topo_sort_breaking_cycles(graph, BreakPolicy::kConstantTime, costs,
                                     pre_deleted);
    topo.deleted.assign(feedback_set.begin(), feedback_set.end());
    report.cycles_found = topo.cycles_found;  // 0 expected
  } else {
    // The constant-time and local-min policies break cycles inside the
    // sort itself, so their cost shows up under this span.
    obs::Span span(obs::Stage::kTopoSort);
    topo = topo_sort_breaking_cycles(graph, options.policy, costs);
    report.cycles_found = topo.cycles_found;
    report.cycles_already_broken = topo.cycles_already_broken;
  }
  report.passes = topo.passes;
  report.cycle_length_sum = topo.cycle_length_sum;

  obs::Span emit_span(obs::Stage::kConvertEmit);
  // Deleted vertices: re-encode their copies as adds, fetching the bytes
  // from the reference (Equation 2 makes this the same data the copy
  // would have read at reconstruction time).
  for (const std::uint32_t v : topo.deleted) {
    const CopyCommand& c = copies[v];
    const auto begin =
        reference.begin() + static_cast<std::ptrdiff_t>(c.from);
    adds.push_back(AddCommand{
        c.to, Bytes(begin, begin + static_cast<std::ptrdiff_t>(c.length))});
    ++report.copies_converted;
    report.bytes_converted += c.length;
    report.conversion_cost += costs[v];
  }

  // Steps 5–6: surviving copies in topological order, then all adds.
  Script& out = result.script;
  for (const std::uint32_t v : topo.order) {
    out.push(copies[v]);
  }
  if (options.coalesce_adds) {
    adds = coalesce(std::move(adds));
  }
  for (AddCommand& a : adds) {
    out.push(std::move(a));
  }
  return result;
}

bool satisfies_equation2(const Script& script) {
  // Maintain the union of prior write intervals as a map from interval
  // start to interval end (disjoint, since valid scripts never overlap
  // writes). Each command's read interval is checked against it before
  // the command's write interval is inserted.
  std::map<offset_t, offset_t> written;  // first -> last

  const auto intersects_written = [&](const Interval& read) {
    // Candidate: the last interval starting at or before read.last.
    auto it = written.upper_bound(read.last);
    if (it == written.begin()) return false;
    --it;
    return it->second >= read.first;
  };

  for (const Command& cmd : script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      if (copy->length == 0) continue;
      if (intersects_written(copy->read_interval())) {
        return false;
      }
    }
    const length_t len = command_length(cmd);
    if (len == 0) continue;
    const Interval w = command_write_interval(cmd);
    written[w.first] = w.last;
  }
  return true;
}

Bytes serialize_inplace(Script script, const DeltaFormat& format,
                        ByteView reference, ByteView version,
                        bool compress_payload) {
  DeltaFile file;
  file.format = format;
  if (file.format.offsets != WriteOffsets::kExplicit) {
    throw ValidationError(
        "in-place delta files require explicit write offsets");
  }
  file.in_place = true;
  file.compress_payload = compress_payload;
  file.reference_length = reference.size();
  file.version_length = version.size();
  file.version_crc = crc32c(version);
  file.script = std::move(script);
  obs::Span span(obs::Stage::kEncode);
  Bytes out = serialize_delta(file);
  span.add_bytes(out.size());
  return out;
}

Bytes make_inplace_delta(const Script& input, ByteView reference,
                         ByteView version, const ConvertOptions& options,
                         ConvertReport* report_out, bool compress_payload,
                         const ParallelContext& ctx) {
  ConvertResult converted = convert_to_inplace(input, reference, options, ctx);
  if (report_out != nullptr) {
    *report_out = converted.report;
  }
  return serialize_inplace(std::move(converted.script), options.format,
                           reference, version, compress_payload);
}

}  // namespace ipd
