// Structural analysis of a delta script: command-length histograms, the
// CRWI conflict structure (§4-§6 of the paper made observable), and a
// dry-run projection of what in-place conversion would cost under each
// cycle-breaking policy — all computable from the script alone, no
// reference bytes needed.
//
// Consumers: `ipdelta info --deep`, the benches, and anyone deciding
// whether a delta is worth converting before shipping.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "delta/codec.hpp"
#include "delta/script.hpp"
#include "inplace/cycle_policy.hpp"

namespace ipd {

/// Power-of-two length histogram: bucket i counts lengths in
/// [2^i, 2^(i+1)).
struct LengthHistogram {
  std::array<std::size_t, 33> buckets{};
  length_t max_length = 0;
  std::size_t count = 0;

  void add(length_t length) noexcept;
  /// Index of the last non-empty bucket (0 when empty).
  std::size_t top_bucket() const noexcept;
};

/// Projected effect of one cycle-breaking policy (dry run — copies are
/// not actually re-encoded).
struct PolicyProjection {
  BreakPolicy policy = BreakPolicy::kLocalMin;
  std::size_t copies_converted = 0;
  length_t bytes_converted = 0;
  std::uint64_t conversion_cost = 0;  ///< encoded-size growth, bytes
};

struct DeltaAnalysis {
  ScriptSummary summary;
  LengthHistogram copy_lengths;
  LengthHistogram add_lengths;

  // Conflict structure (the CRWI digraph of §4.2).
  std::size_t edges = 0;
  std::size_t conflicting_copies = 0;  ///< vertices with any edge
  std::size_t nontrivial_sccs = 0;
  std::size_t largest_scc = 0;
  std::size_t cyclic_vertices = 0;
  /// Script is already in-place safe in its given command order.
  bool inplace_safe_as_ordered = false;

  /// Dry-run projections for the on-line policies.
  std::vector<PolicyProjection> projections;

  /// Encoded payload+container size under each named format (same script;
  /// implicit-offset formats are 0 when the script is not in write
  /// order).
  std::uint64_t size_paper_sequential = 0;
  std::uint64_t size_paper_explicit = 0;
  std::uint64_t size_varint_sequential = 0;
  std::uint64_t size_varint_explicit = 0;
};

/// Analyze `script` (any valid delta script) against a reference of
/// `reference_length` bytes. Runs in O(n log n + |E|).
DeltaAnalysis analyze_delta(const Script& script, length_t reference_length);

/// Multi-line human-readable report.
std::string render_analysis(const DeltaAnalysis& analysis);

}  // namespace ipd
