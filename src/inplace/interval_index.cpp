#include "inplace/interval_index.hpp"

#include <algorithm>

namespace ipd {

IntervalIndex::IntervalIndex(const std::vector<CopyCommand>& copies) {
  writes_.reserve(copies.size());
  for (const CopyCommand& c : copies) {
    if (c.length == 0) {
      throw ValidationError("interval index: zero-length copy");
    }
    writes_.push_back(c.write_interval());
  }
  for (std::size_t i = 1; i < writes_.size(); ++i) {
    if (writes_[i].first <= writes_[i - 1].last) {
      throw ValidationError(
          "interval index requires copies sorted by write offset with "
          "disjoint write intervals");
    }
  }
}

std::size_t IntervalIndex::first_candidate(
    const Interval& query) const noexcept {
  // Disjoint sorted intervals: ends are increasing too, so partition on
  // `last < query.first`.
  const auto it = std::partition_point(
      writes_.begin(), writes_.end(),
      [&](const Interval& w) { return w.last < query.first; });
  return static_cast<std::size_t>(it - writes_.begin());
}

std::vector<std::uint32_t> IntervalIndex::overlapping(
    const Interval& query) const {
  std::vector<std::uint32_t> out;
  for_each_overlapping(query, [&](std::uint32_t i) { out.push_back(i); });
  return out;
}

}  // namespace ipd
