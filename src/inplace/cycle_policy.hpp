// Cycle-breaking policies (§5 of the paper).
//
// Minimum-cost vertex deletion (feedback vertex set on CRWI digraphs) is
// NP-hard, so the paper studies two heuristics; we add an exact
// exponential solver for small graphs to measure the optimality gap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "delta/codec.hpp"

namespace ipd {

enum class BreakPolicy : std::uint8_t {
  /// Delete the vertex at which the cycle was detected ("the last node in
  /// sort order before the cycle was found"). O(1) per cycle.
  kConstantTime,
  /// Walk the detected cycle and delete its minimum-cost vertex. Extra
  /// work proportional to the total length of cycles found.
  kLocalMin,
  /// Exact minimum-cost feedback vertex set via branch & bound; only
  /// feasible for small digraphs (tests, ablation benches).
  kExactOptimal,
  /// SCC-scoped greedy (not in the paper; ablation): repeatedly delete
  /// the cheapest vertex of each strongly connected component until the
  /// digraph is acyclic. Sees whole components instead of single cycles,
  /// so it solves the paper's Figure 2 adversary that defeats kLocalMin,
  /// at the price of SCC recomputation rounds.
  kSccGlobalMin,
};

const char* policy_name(BreakPolicy p) noexcept;

/// Per-vertex deletion costs for a copy set under a codeword format: the
/// paper's cost(v_i) = l_i - |f_i|, computed exactly from the encoding.
std::vector<std::uint64_t> conversion_costs(
    const std::vector<CopyCommand>& copies, const CodewordCostModel& model);

}  // namespace ipd
