// The CRWI (conflicting read/write interval) digraph of §4.2/§5.
//
// One vertex per copy command; a directed edge u→v whenever copy u's read
// interval intersects copy v's write interval (u ≠ v), meaning u must be
// applied before v to avoid a write-before-read conflict. Stored in
// compressed-sparse-row form.
//
// Lemma 1 of the paper bounds |E| ≤ L_V (each read byte can conflict with
// at most the one copy that writes it); build() asserts that bound.
#pragma once

#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "delta/command.hpp"

namespace ipd {

class CrwiGraph {
 public:
  /// Build from copies sorted by write offset (disjoint writes).
  /// `version_length` is L_V, used to verify the Lemma 1 edge bound.
  static CrwiGraph build(const std::vector<CopyCommand>& copies,
                         length_t version_length);

  /// Parallel edge discovery: copy vertices are partitioned into
  /// contiguous ranges, each range probes the (immutable) IntervalIndex
  /// concurrently, and the per-range adjacency lists are concatenated
  /// in range order — every vertex's successor list is the one the
  /// serial probe produces, so the CSR arrays are bit-identical at any
  /// parallelism. The chunking is a function of copies.size() alone,
  /// never of the context. `chunks_out` (optional) reports the fan-out
  /// actually used (1 == serial path).
  static CrwiGraph build(const std::vector<CopyCommand>& copies,
                         length_t version_length, const ParallelContext& ctx,
                         std::size_t* chunks_out = nullptr);

  std::size_t vertex_count() const noexcept { return offsets_.size() - 1; }
  std::size_t edge_count() const noexcept { return targets_.size(); }

  /// Successors of `v` (vertices whose write interval v's read overlaps),
  /// in increasing write-offset order.
  std::span<const std::uint32_t> successors(std::uint32_t v) const noexcept {
    return std::span<const std::uint32_t>(targets_)
        .subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }

  std::size_t out_degree(std::uint32_t v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// True if the graph contains any directed cycle (self-loops cannot
  /// occur by construction). Used by tests and the converter fast path.
  bool has_cycle() const;

  /// Empty graph (zero vertices).
  CrwiGraph() : offsets_{0} {}

 private:
  std::vector<std::size_t> offsets_;     // vertex_count()+1 entries
  std::vector<std::uint32_t> targets_;   // edge targets, CSR
};

}  // namespace ipd
