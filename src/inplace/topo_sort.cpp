#include "inplace/topo_sort.hpp"

#include <algorithm>
#include <cassert>

namespace ipd {
namespace {

enum Color : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };

struct Frame {
  std::uint32_t vertex;
  std::size_t next_edge;
};

/// One DFS pass over the surviving vertices. Appends reverse postorder to
/// nothing — instead returns postorder; deletes vertices per policy.
/// Returns the number of deletions performed this pass.
class Pass {
 public:
  Pass(const CrwiGraph& g, BreakPolicy policy,
       std::span<const std::uint64_t> costs, std::vector<bool>& deleted,
       TopoSortResult& result)
      : g_(g),
        policy_(policy),
        costs_(costs),
        deleted_(deleted),
        result_(result),
        color_(g.vertex_count(), kWhite),
        stack_pos_(g.vertex_count(), 0) {}

  std::size_t run(std::vector<std::uint32_t>& postorder) {
    const std::size_t n = g_.vertex_count();
    postorder.clear();
    postorder.reserve(n);
    for (std::uint32_t root = 0; root < n; ++root) {
      if (color_[root] == kWhite && !deleted_[root]) {
        dfs(root, postorder);
      }
    }
    return deletions_;
  }

 private:
  void push(std::uint32_t v) {
    color_[v] = kGray;
    stack_pos_[v] = stack_.size();
    stack_.push_back(Frame{v, 0});
  }

  void dfs(std::uint32_t root, std::vector<std::uint32_t>& postorder) {
    push(root);
    while (!stack_.empty()) {
      Frame& frame = stack_.back();
      const std::uint32_t u = frame.vertex;

      if (deleted_[u]) {
        // u was chosen as a cycle victim (either just now at the top, or
        // earlier as an interior vertex and we have unwound back to it).
        color_[u] = kBlack;
        stack_.pop_back();
        continue;
      }

      const auto succ = g_.successors(u);
      if (frame.next_edge >= succ.size()) {
        color_[u] = kBlack;
        postorder.push_back(u);
        stack_.pop_back();
        continue;
      }

      const std::uint32_t v = succ[frame.next_edge++];
      if (deleted_[v] || color_[v] == kBlack) {
        continue;
      }
      if (color_[v] == kWhite) {
        push(v);
        continue;
      }
      // Back edge u→v: the gray stack segment stack_[pos(v)..top] is a
      // directed cycle v → … → u → v.
      handle_cycle(stack_pos_[v]);
    }
  }

  void handle_cycle(std::size_t cycle_begin) {
    const std::size_t cycle_len = stack_.size() - cycle_begin;

    if (policy_ == BreakPolicy::kConstantTime) {
      // Delete the source of the back edge — the current vertex — without
      // examining the cycle (O(1)).
      ++result_.cycles_found;
      remove(stack_.back().vertex);
      return;
    }

    // Locally minimum: walk the cycle. If an earlier interior deletion
    // already broke it, this back edge needs no action.
    result_.cycle_length_sum += cycle_len;
    std::uint32_t victim = stack_[cycle_begin].vertex;
    bool already_broken = false;
    std::uint64_t best_cost = 0;
    bool first = true;
    for (std::size_t i = cycle_begin; i < stack_.size(); ++i) {
      const std::uint32_t w = stack_[i].vertex;
      if (deleted_[w]) {
        already_broken = true;
        break;
      }
      if (first || costs_[w] < best_cost) {
        best_cost = costs_[w];
        victim = w;
        first = false;
      }
    }
    if (already_broken) {
      ++result_.cycles_already_broken;
      return;
    }
    ++result_.cycles_found;
    remove(victim);
  }

  void remove(std::uint32_t v) {
    deleted_[v] = true;
    ++deletions_;
    result_.deleted.push_back(v);
  }

  const CrwiGraph& g_;
  BreakPolicy policy_;
  std::span<const std::uint64_t> costs_;
  std::vector<bool>& deleted_;
  TopoSortResult& result_;

  std::vector<std::uint8_t> color_;
  std::vector<std::size_t> stack_pos_;
  std::vector<Frame> stack_;
  std::size_t deletions_ = 0;
};

}  // namespace

TopoSortResult topo_sort_breaking_cycles(const CrwiGraph& g,
                                         BreakPolicy policy,
                                         std::span<const std::uint64_t> costs,
                                         const std::vector<bool>& pre_deleted) {
  const std::size_t n = g.vertex_count();
  if (policy != BreakPolicy::kConstantTime &&
      policy != BreakPolicy::kLocalMin) {
    throw ValidationError(
        "kExactOptimal/kSccGlobalMin are driven via a precomputed feedback "
        "set + pre_deleted; topo_sort_breaking_cycles accepts only the "
        "on-line policies");
  }
  if (costs.size() != n) {
    throw ValidationError("topo sort: costs size != vertex count");
  }
  if (!pre_deleted.empty() && pre_deleted.size() != n) {
    throw ValidationError("topo sort: pre_deleted size != vertex count");
  }

  TopoSortResult result;
  std::vector<bool> deleted(n, false);
  for (std::size_t i = 0; i < pre_deleted.size(); ++i) {
    deleted[i] = pre_deleted[i];
  }

  std::vector<std::uint32_t> postorder;
  for (;;) {
    ++result.passes;
    Pass pass(g, policy, costs, deleted, result);
    const std::size_t deletions = pass.run(postorder);
    if (deletions == 0) {
      break;
    }
    // Passes strictly shrink the surviving set, so this terminates after
    // at most n iterations; two passes are typical (see header).
    assert(result.passes <= n + 1);
  }

  result.order.assign(postorder.rbegin(), postorder.rend());
  return result;
}

bool is_topological_order(const CrwiGraph& g,
                          std::span<const std::uint32_t> order,
                          std::span<const std::uint32_t> deleted) {
  const std::size_t n = g.vertex_count();
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> position(n, kUnset);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= n || position[order[i]] != kUnset) {
      return false;  // out of range or duplicate
    }
    position[order[i]] = i;
  }
  std::vector<bool> is_deleted(n, false);
  for (const std::uint32_t v : deleted) {
    if (v >= n || position[v] != kUnset) {
      return false;  // deleted vertex must not appear in the order
    }
    is_deleted[v] = true;
  }
  // Every vertex is either ordered or deleted.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (position[v] == kUnset && !is_deleted[v]) {
      return false;
    }
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    if (is_deleted[u]) continue;
    for (const std::uint32_t v : g.successors(u)) {
      if (is_deleted[v]) continue;
      if (position[u] >= position[v]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace ipd
