// Binary-search index over the (disjoint) write intervals of a set of
// copy commands sorted by write offset.
//
// This is the data structure behind §4.3's O(|C| log |C| + |E|) digraph
// construction: for a query read interval, the first overlapping write is
// found by binary search and the rest follow contiguously, so each edge is
// discovered in O(1) after an O(log |C|) start.
#pragma once

#include <vector>

#include "delta/command.hpp"

namespace ipd {

class IntervalIndex {
 public:
  /// Build over `copies`, which MUST be sorted by write offset with
  /// pairwise-disjoint write intervals (throws ValidationError otherwise).
  explicit IntervalIndex(const std::vector<CopyCommand>& copies);

  /// Indices (into the constructor's vector) of every copy whose write
  /// interval intersects `query`, in increasing write-offset order.
  std::vector<std::uint32_t> overlapping(const Interval& query) const;

  /// Streaming variant: invoke fn(index) per overlap; avoids allocation
  /// on the digraph-construction hot path.
  template <typename Fn>
  void for_each_overlapping(const Interval& query, Fn&& fn) const {
    for (std::size_t i = first_candidate(query); i < writes_.size(); ++i) {
      if (writes_[i].first > query.last) break;
      fn(static_cast<std::uint32_t>(i));
    }
  }

  std::size_t size() const noexcept { return writes_.size(); }

 private:
  /// Index of the first write interval whose end reaches `query.first`.
  std::size_t first_candidate(const Interval& query) const noexcept;

  std::vector<Interval> writes_;
};

}  // namespace ipd
