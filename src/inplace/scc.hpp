// Strongly connected components (Tarjan, iterative) over CRWI digraphs.
//
// An alternative lens on cycle breaking (§5): every cycle lives inside
// one SCC, the condensation is a DAG, and only non-trivial SCCs ever need
// vertex deletion. The SCC converter strategy built on top of this
// (converter.hpp, kSccLocalMin) repeatedly deletes the globally cheapest
// vertex of each non-trivial component — a different greedy trade than
// the DFS policies, measured in bench_ablation.
#pragma once

#include <span>
#include <vector>

#include "inplace/crwi_graph.hpp"

namespace ipd {

struct SccResult {
  /// component id per vertex; ids are in REVERSE topological order of the
  /// condensation (Tarjan's natural output: if u's component has an edge
  /// to v's component, then comp[u] > comp[v]).
  std::vector<std::uint32_t> component;
  std::size_t component_count = 0;
  /// Vertices of each component, grouped (indexed by component id).
  std::vector<std::vector<std::uint32_t>> members;

  /// A component is trivial iff it has one vertex (CRWI digraphs have no
  /// self-loops, so trivial components are acyclic).
  bool is_trivial(std::uint32_t comp_id) const {
    return members[comp_id].size() <= 1;
  }
};

/// Tarjan's algorithm, iterative (no recursion — CRWI digraphs reach
/// hundreds of thousands of vertices). O(|V| + |E|).
///
/// `deleted`, when non-empty, marks vertices to treat as absent.
SccResult strongly_connected_components(
    const CrwiGraph& g, const std::vector<bool>& deleted = {});

/// Number of vertices sitting in non-trivial SCCs — the only candidates
/// for copy->add conversion. Used by benches to size exact search.
std::size_t cyclic_vertex_count(const SccResult& scc);

/// Feedback vertex set via the kSccGlobalMin strategy: per round, delete
/// the cheapest vertex of every non-trivial SCC, recompute components,
/// repeat until acyclic. Returns the deleted vertices; `rounds_out`
/// (optional) receives the number of SCC recomputation rounds.
std::vector<std::uint32_t> scc_greedy_fvs(const CrwiGraph& g,
                                          std::span<const std::uint64_t> costs,
                                          std::size_t* rounds_out = nullptr);

}  // namespace ipd
