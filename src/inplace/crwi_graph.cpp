#include "inplace/crwi_graph.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "inplace/interval_index.hpp"
#include "obs/trace.hpp"

namespace ipd {
namespace {

// Below this many copy vertices, forking costs more than the probes.
constexpr std::size_t kParallelCrwiMinCopies = 2048;

/// Probe the index for vertices [u0, u1), appending successor lists to
/// `targets` and per-vertex end positions (relative to the start of
/// `targets`) to `ends`. Exactly the serial loop over a subrange.
void discover_edges(const std::vector<CopyCommand>& copies,
                    const IntervalIndex& index, std::uint32_t u0,
                    std::uint32_t u1, std::vector<std::uint32_t>& targets,
                    std::vector<std::size_t>& ends) {
  for (std::uint32_t u = u0; u < u1; ++u) {
    const Interval read = copies[u].read_interval();
    index.for_each_overlapping(read, [&](std::uint32_t v) {
      if (v != u) {  // a command does not conflict with itself (§4.1)
        targets.push_back(v);
      }
    });
    ends.push_back(targets.size());
  }
}

}  // namespace

CrwiGraph CrwiGraph::build(const std::vector<CopyCommand>& copies,
                           length_t version_length) {
  return build(copies, version_length, ParallelContext{});
}

CrwiGraph CrwiGraph::build(const std::vector<CopyCommand>& copies,
                           length_t version_length, const ParallelContext& ctx,
                           std::size_t* chunks_out) {
  if (copies.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw ValidationError("CRWI graph: more than 2^32 copy commands");
  }
  const IntervalIndex index(copies);
  const std::size_t n = copies.size();

  std::size_t chunks = 1;
  if (ctx.enabled() && n >= kParallelCrwiMinCopies) {
    chunks = std::min({ctx.parallelism, std::size_t{32},
                       n / (kParallelCrwiMinCopies / 2)});
    chunks = std::max<std::size_t>(chunks, 1);
  }
  if (chunks_out != nullptr) *chunks_out = chunks;

  CrwiGraph g;
  g.offsets_.clear();
  g.offsets_.reserve(n + 1);
  g.offsets_.push_back(0);

  if (chunks <= 1) {
    std::vector<std::size_t> ends;
    ends.reserve(n);
    discover_edges(copies, index, 0, static_cast<std::uint32_t>(n),
                   g.targets_, ends);
    g.offsets_.insert(g.offsets_.end(), ends.begin(), ends.end());
  } else {
    // Each vertex range probes the immutable index into private
    // buffers; concatenating them in range order reproduces the serial
    // CSR arrays exactly.
    std::vector<std::vector<std::uint32_t>> targets(chunks);
    std::vector<std::vector<std::size_t>> ends(chunks);
    parallel_for(ctx, chunks, [&](std::size_t c) {
      const auto u0 = static_cast<std::uint32_t>(c * n / chunks);
      const auto u1 = static_cast<std::uint32_t>((c + 1) * n / chunks);
      obs::Span span(obs::Stage::kCrwiParallel, u1 - u0);
      ends[c].reserve(u1 - u0);
      discover_edges(copies, index, u0, u1, targets[c], ends[c]);
    });
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t base = g.targets_.size();
      g.targets_.insert(g.targets_.end(), targets[c].begin(),
                        targets[c].end());
      for (const std::size_t end : ends[c]) {
        g.offsets_.push_back(base + end);
      }
    }
  }

  // Lemma 1: a copy of length l conflicts with at most l writers, and the
  // read lengths sum to at most L_V, so |E| <= L_V.
  assert(g.targets_.size() <= version_length);
  (void)version_length;
  return g;
}

bool CrwiGraph::has_cycle() const {
  // Iterative three-colour DFS.
  enum : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };
  const std::size_t n = vertex_count();
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [v, edge] = stack.back();
      const auto succ = successors(v);
      if (edge < succ.size()) {
        const std::uint32_t w = succ[edge++];
        if (color[w] == kGray) return true;
        if (color[w] == kWhite) {
          color[w] = kGray;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace ipd
