#include "inplace/crwi_graph.hpp"

#include <cassert>
#include <limits>

#include "inplace/interval_index.hpp"

namespace ipd {

CrwiGraph CrwiGraph::build(const std::vector<CopyCommand>& copies,
                           length_t version_length) {
  if (copies.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw ValidationError("CRWI graph: more than 2^32 copy commands");
  }
  const IntervalIndex index(copies);

  CrwiGraph g;
  g.offsets_.clear();
  g.offsets_.reserve(copies.size() + 1);
  g.offsets_.push_back(0);

  for (std::uint32_t u = 0; u < copies.size(); ++u) {
    const Interval read = copies[u].read_interval();
    index.for_each_overlapping(read, [&](std::uint32_t v) {
      if (v != u) {  // a command does not conflict with itself (§4.1)
        g.targets_.push_back(v);
      }
    });
    g.offsets_.push_back(g.targets_.size());
  }

  // Lemma 1: a copy of length l conflicts with at most l writers, and the
  // read lengths sum to at most L_V, so |E| <= L_V.
  assert(g.targets_.size() <= version_length);
  (void)version_length;
  return g;
}

bool CrwiGraph::has_cycle() const {
  // Iterative three-colour DFS.
  enum : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };
  const std::size_t n = vertex_count();
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [v, edge] = stack.back();
      const auto succ = successors(v);
      if (edge < succ.size()) {
        const std::uint32_t w = succ[edge++];
        if (color[w] == kGray) return true;
        if (color[w] == kWhite) {
          color[w] = kGray;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace ipd
