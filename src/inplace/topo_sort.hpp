// Topological sort with on-line cycle breaking (§4.2 step 4, §5).
//
// A standard iterative three-colour DFS, modified: when a back edge u→v
// closes a cycle (the gray stack path v…u), the policy chooses a victim
// vertex to delete; its copy command will be re-encoded as an add.
//
// Correctness strategy: deleting an *interior* cycle vertex (locally-
// minimum policy) breaks the cycle but can leave the surviving back edge
// ordered wrongly by this DFS's reverse postorder. We therefore run DFS
// passes over the surviving vertices until a pass completes with no
// deletions; that pass's reverse postorder is a true topological order of
// the survivors (it witnessed no back edges). The constant-time policy
// always deletes the back edge's source, so it converges in at most two
// passes; locally-minimum typically does too, and the pass count is
// reported for the benches.
#pragma once

#include <span>

#include "inplace/crwi_graph.hpp"
#include "inplace/cycle_policy.hpp"

namespace ipd {

struct TopoSortResult {
  /// Surviving vertices in topological order: for every surviving edge
  /// u→v, u precedes v.
  std::vector<std::uint32_t> order;
  /// Vertices deleted to break cycles (→ copy-to-add conversion).
  std::vector<std::uint32_t> deleted;
  /// Cycles on which the policy acted.
  std::size_t cycles_found = 0;
  /// Back edges whose gray path already contained a deleted vertex (cycle
  /// broken for free by an earlier deletion in the same pass).
  std::size_t cycles_already_broken = 0;
  /// DFS passes run (1 when the digraph was already acyclic).
  std::size_t passes = 0;
  /// Total vertices walked while scanning cycles (the locally-minimum
  /// policy's extra work, §5).
  std::size_t cycle_length_sum = 0;
};

/// Sort `g` topologically, breaking cycles with `policy`.
///
/// `costs[v]` is the compression lost by deleting v (used by kLocalMin;
/// must have g.vertex_count() entries). `pre_deleted` (optional, may be
/// empty) marks vertices removed before the sort starts — the exact-
/// optimal driver computes a feedback vertex set up front and passes it
/// here. kExactOptimal itself is not accepted (use exact_min_fvs +
/// pre_deleted); throws ValidationError.
TopoSortResult topo_sort_breaking_cycles(
    const CrwiGraph& g, BreakPolicy policy,
    std::span<const std::uint64_t> costs,
    const std::vector<bool>& pre_deleted = {});

/// Check that `order` (a permutation of surviving vertices) respects every
/// edge of `g` between survivors. Test helper.
bool is_topological_order(const CrwiGraph& g,
                          std::span<const std::uint32_t> order,
                          std::span<const std::uint32_t> deleted);

}  // namespace ipd
