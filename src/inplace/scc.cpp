#include "inplace/scc.hpp"

#include <limits>

namespace ipd {
namespace {

constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

}  // namespace

SccResult strongly_connected_components(const CrwiGraph& g,
                                        const std::vector<bool>& deleted) {
  const std::size_t n = g.vertex_count();
  if (!deleted.empty() && deleted.size() != n) {
    throw ValidationError("scc: deleted size != vertex count");
  }
  const auto alive = [&](std::uint32_t v) {
    return deleted.empty() || !deleted[v];
  };

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> scc_stack;
  std::uint32_t next_index = 0;

  // Explicit DFS frames: (vertex, next edge offset).
  struct Frame {
    std::uint32_t v;
    std::size_t edge;
  };
  std::vector<Frame> dfs;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (!alive(root) || index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const std::uint32_t v = frame.v;
      const auto succ = g.successors(v);
      bool descended = false;

      while (frame.edge < succ.size()) {
        const std::uint32_t w = succ[frame.edge++];
        if (!alive(w)) continue;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;

      // v is finished: pop a component if v is a root.
      if (lowlink[v] == index[v]) {
        std::vector<std::uint32_t> members;
        for (;;) {
          const std::uint32_t w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          result.component[w] =
              static_cast<std::uint32_t>(result.component_count);
          members.push_back(w);
          if (w == v) break;
        }
        result.members.push_back(std::move(members));
        ++result.component_count;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
      }
    }
  }
  return result;
}

std::size_t cyclic_vertex_count(const SccResult& scc) {
  std::size_t count = 0;
  for (const auto& members : scc.members) {
    if (members.size() > 1) count += members.size();
  }
  return count;
}

std::vector<std::uint32_t> scc_greedy_fvs(const CrwiGraph& g,
                                          std::span<const std::uint64_t> costs,
                                          std::size_t* rounds_out) {
  if (costs.size() != g.vertex_count()) {
    throw ValidationError("scc_greedy_fvs: costs size != vertex count");
  }
  std::vector<bool> deleted(g.vertex_count(), false);
  std::vector<std::uint32_t> removed;
  std::size_t rounds = 0;

  for (;;) {
    ++rounds;
    const SccResult scc = strongly_connected_components(g, deleted);
    bool any = false;
    for (const auto& members : scc.members) {
      if (members.size() <= 1) continue;
      std::uint32_t victim = members.front();
      for (const std::uint32_t v : members) {
        if (costs[v] < costs[victim]) victim = v;
      }
      deleted[victim] = true;
      removed.push_back(victim);
      any = true;
    }
    if (!any) break;
  }
  if (rounds_out != nullptr) {
    *rounds_out = rounds;
  }
  return removed;
}

}  // namespace ipd
