#include "inplace/exact_fvs.hpp"

#include <algorithm>
#include <limits>

namespace ipd {
namespace {

/// Branch & bound: find any cycle among the alive vertices; every feedback
/// set must contain at least one of its vertices, so branch on each,
/// cheapest first, pruning against the best cost found so far.
class Solver {
 public:
  Solver(const CrwiGraph& g, std::span<const std::uint64_t> costs,
         const ExactFvsOptions& options)
      : g_(g), costs_(costs), options_(options),
        alive_(g.vertex_count(), true) {}

  ExactFvsResult solve() {
    best_cost_ = std::numeric_limits<std::uint64_t>::max();
    // Seed the incumbent with "delete every vertex on some cycle", found
    // greedily, so pruning has a finite bound immediately.
    search(0);
    ExactFvsResult result;
    result.removed = best_set_;
    result.cost = best_cost_ == std::numeric_limits<std::uint64_t>::max()
                      ? 0
                      : best_cost_;
    result.optimal = !budget_exhausted_;
    std::sort(result.removed.begin(), result.removed.end());
    return result;
  }

 private:
  /// Iterative DFS over alive vertices; returns a directed cycle as a
  /// vertex list, or empty if the alive subgraph is acyclic.
  std::vector<std::uint32_t> find_cycle() const {
    enum : std::uint8_t { kWhite, kGray, kBlack };
    const std::size_t n = g_.vertex_count();
    std::vector<std::uint8_t> color(n, kWhite);
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;

    for (std::uint32_t root = 0; root < n; ++root) {
      if (!alive_[root] || color[root] != kWhite) continue;
      stack.emplace_back(root, 0);
      color[root] = kGray;
      while (!stack.empty()) {
        const std::uint32_t u = stack.back().first;
        const auto succ = g_.successors(u);
        if (stack.back().second >= succ.size()) {
          color[u] = kBlack;
          stack.pop_back();
          continue;
        }
        const std::uint32_t v = succ[stack.back().second++];
        if (!alive_[v] || color[v] == kBlack) continue;
        if (color[v] == kGray) {
          // Cycle: stack segment from v (inclusive) to u.
          std::vector<std::uint32_t> cycle;
          std::size_t i = stack.size();
          while (i > 0 && stack[i - 1].first != v) --i;
          for (i = i - 1; i < stack.size(); ++i) {
            cycle.push_back(stack[i].first);
          }
          return cycle;
        }
        color[v] = kGray;
        stack.emplace_back(v, 0);
      }
    }
    return {};
  }

  void search(std::uint64_t current_cost) {
    if (++nodes_ > options_.max_search_nodes) {
      budget_exhausted_ = true;
      return;
    }
    if (current_cost >= best_cost_) {
      return;  // prune
    }
    std::vector<std::uint32_t> cycle = find_cycle();
    if (cycle.empty()) {
      best_cost_ = current_cost;
      best_set_ = current_set_;
      return;
    }
    // Branch on deleting each cycle vertex, cheapest first.
    std::sort(cycle.begin(), cycle.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return costs_[a] < costs_[b];
              });
    for (const std::uint32_t v : cycle) {
      if (budget_exhausted_) return;
      alive_[v] = false;
      current_set_.push_back(v);
      search(current_cost + costs_[v]);
      current_set_.pop_back();
      alive_[v] = true;
    }
  }

  const CrwiGraph& g_;
  std::span<const std::uint64_t> costs_;
  const ExactFvsOptions& options_;

  std::vector<bool> alive_;
  std::vector<std::uint32_t> current_set_;
  std::vector<std::uint32_t> best_set_;
  std::uint64_t best_cost_ = 0;
  std::uint64_t nodes_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

ExactFvsResult exact_min_fvs(const CrwiGraph& g,
                             std::span<const std::uint64_t> costs,
                             const ExactFvsOptions& options) {
  if (g.vertex_count() > options.max_vertices) {
    throw ValidationError(
        "exact_min_fvs: graph too large for exponential search (" +
        std::to_string(g.vertex_count()) + " > " +
        std::to_string(options.max_vertices) + " vertices)");
  }
  if (costs.size() != g.vertex_count()) {
    throw ValidationError("exact_min_fvs: costs size != vertex count");
  }
  Solver solver(g, costs, options);
  return solver.solve();
}

}  // namespace ipd
