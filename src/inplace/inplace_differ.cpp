#include "inplace/inplace_differ.hpp"

namespace ipd {

InplaceDiffer::InplaceDiffer(DifferKind inner,
                             const DifferOptions& differ_options,
                             const ConvertOptions& convert_options)
    : inner_(make_differ(inner, differ_options)),
      convert_options_(convert_options) {}

Script InplaceDiffer::diff(ByteView reference, ByteView version) const {
  ConvertResult converted = convert_to_inplace(
      inner_->diff(reference, version), reference, convert_options_);
  report_ = converted.report;
  return std::move(converted.script);
}

}  // namespace ipd
