// The integrated producer the paper describes in §4: "While our
// algorithm can most easily be described as a post-processing step on an
// existing delta file ... it also integrates easily into a compression
// algorithm so that an in-place reconstructible file may be output
// directly."
//
// InplaceDiffer is that integration: one object that goes straight from
// (reference, version) to an in-place-safe script. It implements the
// Differ interface, so everything written against differencers — tests,
// benches, the archive builder — can produce in-place output by swapping
// the differ, with the conversion report still observable.
#pragma once

#include "delta/differ.hpp"
#include "inplace/converter.hpp"

namespace ipd {

class InplaceDiffer final : public Differ {
 public:
  InplaceDiffer(DifferKind inner, const DifferOptions& differ_options = {},
                const ConvertOptions& convert_options = {});

  /// Returns a script that satisfies Equation 2 — apply it with
  /// apply_inplace() directly. (The Differ contract's "write order"
  /// clause is intentionally traded for topological order here.)
  Script diff(ByteView reference, ByteView version) const override;

  const char* name() const noexcept override { return "in-place"; }

  /// Conversion statistics of the most recent diff() call.
  const ConvertReport& last_report() const noexcept { return report_; }

 private:
  std::unique_ptr<Differ> inner_;
  ConvertOptions convert_options_;
  mutable ConvertReport report_;
};

}  // namespace ipd
