// Exact minimum-cost feedback vertex set, by branch & bound.
//
// §5 of the paper proves the global problem NP-hard (reduction from
// Karp's feedback vertex set restricted to CRWI digraphs); this solver is
// exponential and exists so tests and ablation benches can measure how far
// the constant-time and locally-minimum heuristics sit from the optimum on
// small graphs — e.g. the Figure 2 adversary, where locally-minimum pays
// k·C against an optimal ~C.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "inplace/crwi_graph.hpp"

namespace ipd {

struct ExactFvsOptions {
  /// Refuse graphs with more vertices than this (search is exponential).
  std::size_t max_vertices = 64;
  /// Abort branch & bound after this many search nodes; the result is
  /// then best-found, flagged non-optimal.
  std::uint64_t max_search_nodes = 5'000'000;
};

struct ExactFvsResult {
  /// Vertices to delete; the remaining digraph is acyclic.
  std::vector<std::uint32_t> removed;
  /// Total cost of `removed`.
  std::uint64_t cost = 0;
  /// True when the search completed (the result is a global optimum).
  bool optimal = true;
};

/// Find a minimum-cost vertex set whose removal makes `g` acyclic.
/// Throws ValidationError if g.vertex_count() > options.max_vertices.
ExactFvsResult exact_min_fvs(const CrwiGraph& g,
                             std::span<const std::uint64_t> costs,
                             const ExactFvsOptions& options = {});

}  // namespace ipd
