#include "inplace/analysis.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "inplace/converter.hpp"
#include "inplace/scc.hpp"
#include "inplace/topo_sort.hpp"

namespace ipd {

void LengthHistogram::add(length_t length) noexcept {
  const unsigned bucket =
      length == 0 ? 0u : static_cast<unsigned>(std::bit_width(length) - 1);
  ++buckets[std::min<unsigned>(bucket, buckets.size() - 1)];
  max_length = std::max(max_length, length);
  ++count;
}

std::size_t LengthHistogram::top_bucket() const noexcept {
  for (std::size_t i = buckets.size(); i > 0; --i) {
    if (buckets[i - 1] > 0) return i - 1;
  }
  return 0;
}

DeltaAnalysis analyze_delta(const Script& script,
                            length_t reference_length) {
  const length_t version_length = script.version_length();
  script.validate(reference_length, version_length);

  DeltaAnalysis a;
  a.summary = script.summary();
  for (const Command& cmd : script.commands()) {
    if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
      a.copy_lengths.add(copy->length);
    } else {
      a.add_lengths.add(std::get<AddCommand>(cmd).length());
    }
  }

  // Conflict structure.
  std::vector<CopyCommand> copies = script.copies();
  std::sort(copies.begin(), copies.end(),
            [](const CopyCommand& x, const CopyCommand& y) {
              return x.to < y.to;
            });
  const CrwiGraph graph = CrwiGraph::build(copies, version_length);
  a.edges = graph.edge_count();

  std::vector<bool> has_edge(graph.vertex_count(), false);
  for (std::uint32_t v = 0; v < graph.vertex_count(); ++v) {
    if (graph.out_degree(v) > 0) {
      has_edge[v] = true;
      for (const std::uint32_t w : graph.successors(v)) {
        has_edge[w] = true;
      }
    }
  }
  a.conflicting_copies = static_cast<std::size_t>(
      std::count(has_edge.begin(), has_edge.end(), true));

  const SccResult scc = strongly_connected_components(graph);
  for (const auto& members : scc.members) {
    if (members.size() > 1) {
      ++a.nontrivial_sccs;
      a.largest_scc = std::max(a.largest_scc, members.size());
    }
  }
  a.cyclic_vertices = cyclic_vertex_count(scc);
  a.inplace_safe_as_ordered = satisfies_equation2(script);

  // Policy projections (dry: topological sort only).
  const CodewordCostModel model(kPaperExplicit, version_length);
  const std::vector<std::uint64_t> costs = conversion_costs(copies, model);
  for (const BreakPolicy policy :
       {BreakPolicy::kConstantTime, BreakPolicy::kLocalMin}) {
    const TopoSortResult topo =
        topo_sort_breaking_cycles(graph, policy, costs);
    PolicyProjection proj;
    proj.policy = policy;
    proj.copies_converted = topo.deleted.size();
    for (const std::uint32_t v : topo.deleted) {
      proj.bytes_converted += copies[v].length;
      proj.conversion_cost += costs[v];
    }
    a.projections.push_back(proj);
  }

  // Encoded sizes.
  DeltaFile file;
  file.reference_length = reference_length;
  file.version_length = version_length;
  file.script = script;
  const auto size_of = [&](DeltaFormat fmt) -> std::uint64_t {
    file.format = fmt;
    return serialize_delta(file).size();
  };
  if (script.in_write_order()) {
    a.size_paper_sequential = size_of(kPaperSequential);
    a.size_varint_sequential = size_of(kVarintSequential);
  }
  a.size_paper_explicit = size_of(kPaperExplicit);
  a.size_varint_explicit = size_of(kVarintExplicit);
  return a;
}

std::string render_analysis(const DeltaAnalysis& a) {
  std::ostringstream os;
  os << "commands: " << a.summary.copy_count << " copies ("
     << a.summary.copied_bytes << " B), " << a.summary.add_count << " adds ("
     << a.summary.added_bytes << " B)\n";

  const auto hist_line = [&](const char* label, const LengthHistogram& h) {
    os << label << " length histogram (log2 buckets):";
    if (h.count == 0) {
      os << " (none)\n";
      return;
    }
    for (std::size_t i = 0; i <= h.top_bucket(); ++i) {
      os << ' ' << h.buckets[i];
    }
    os << "  (max " << h.max_length << ")\n";
  };
  hist_line("copy", a.copy_lengths);
  hist_line("add ", a.add_lengths);

  os << "CRWI digraph: " << a.summary.copy_count << " vertices, " << a.edges
     << " edges; " << a.conflicting_copies << " copies in conflict; "
     << a.nontrivial_sccs << " non-trivial SCCs (largest " << a.largest_scc
     << ", " << a.cyclic_vertices << " cyclic vertices)\n";
  os << "in-place safe as ordered: "
     << (a.inplace_safe_as_ordered ? "yes" : "no") << '\n';

  for (const PolicyProjection& p : a.projections) {
    os << "conversion projection [" << policy_name(p.policy)
       << "]: " << p.copies_converted << " copies -> adds, "
       << p.bytes_converted << " B re-encoded, +" << p.conversion_cost
       << " B delta growth\n";
  }

  os << "encoded sizes:";
  if (a.size_paper_sequential > 0) {
    os << " paper/seq=" << a.size_paper_sequential;
  }
  os << " paper/explicit=" << a.size_paper_explicit;
  if (a.size_varint_sequential > 0) {
    os << " varint/seq=" << a.size_varint_sequential;
  }
  os << " varint/explicit=" << a.size_varint_explicit << '\n';
  return os.str();
}

}  // namespace ipd
