// The in-place conversion algorithm (§4 of the paper).
//
// Input: any valid delta script plus the reference file it reads from.
// Output: a script that materialises the identical version file when the
// commands are applied serially *in the same buffer that holds the
// reference* — the paper's Equation 2 holds: no command reads a byte an
// earlier command wrote.
//
// The six algorithm steps map one-to-one onto this module:
//   1. partition commands into copies C and adds A;
//   2. sort C by write offset;
//   3. build the CRWI digraph over C                 (crwi_graph.hpp);
//   4. topologically sort, breaking cycles per policy (topo_sort.hpp,
//      cycle_policy.hpp, exact_fvs.hpp) — each deleted copy is re-encoded
//      as an add whose bytes are fetched from the reference;
//   5. emit surviving copies in topological order;
//   6. emit all adds (original + converted) at the end.
#pragma once

#include "delta/codec.hpp"
#include "delta/script.hpp"
#include "inplace/exact_fvs.hpp"
#include "inplace/topo_sort.hpp"

namespace ipd {

struct ConvertOptions {
  BreakPolicy policy = BreakPolicy::kLocalMin;
  /// Codeword format the output will be encoded in; fixes the deletion
  /// cost function (the paper's l - |f|).
  DeltaFormat format = kPaperExplicit;
  /// Merge adjacent adds (by write offset) after conversion. Saves the
  /// per-command overhead the paper attributes to "many short add
  /// commands"; off to ablate.
  bool coalesce_adds = true;
  /// Settings for BreakPolicy::kExactOptimal.
  ExactFvsOptions exact;
};

struct ConvertReport {
  std::size_t copies_in = 0;
  std::size_t adds_in = 0;
  std::size_t edges = 0;              ///< |E| of the CRWI digraph
  std::size_t cycles_found = 0;
  std::size_t cycles_already_broken = 0;
  std::size_t passes = 0;
  std::size_t cycle_length_sum = 0;   ///< locally-minimum extra work
  std::size_t copies_converted = 0;   ///< vertices deleted
  length_t bytes_converted = 0;       ///< version bytes moved into adds
  /// Encoded-size growth from the conversions, in bytes, under
  /// ConvertOptions::format (sum of the paper's per-vertex costs).
  std::uint64_t conversion_cost = 0;
  bool exact_was_optimal = true;      ///< kExactOptimal search completed
  std::size_t scc_rounds = 0;         ///< kSccGlobalMin recomputation rounds
  std::size_t crwi_parallel_chunks = 1;  ///< CRWI edge-discovery fan-out
};

struct ConvertResult {
  Script script;
  ConvertReport report;
};

/// Convert `input` (validated against `reference`) into an in-place
/// reconstructible script. Deleted copies pull their literal bytes out of
/// `reference` — safe precisely because Equation 2 guarantees every copy
/// in the output reads original reference data.
///
/// `ctx` parallelizes CRWI edge discovery (crwi_graph.hpp); the output
/// is byte-identical at any parallelism.
ConvertResult convert_to_inplace(const Script& input, ByteView reference,
                                 const ConvertOptions& options = {},
                                 const ParallelContext& ctx = {});

/// Directly verify the paper's Equation 2 on a script: no command's read
/// interval intersects the union of the write intervals of the commands
/// before it. O(n log n). This is the definition the converter's output
/// must satisfy; tests check both this and actual byte-level equality.
bool satisfies_equation2(const Script& script);

/// End-to-end convenience: diff-script → in-place script → serialized
/// in-place delta file (explicit-offset format, in_place flag set).
/// `compress_payload` applies the container's secondary LZSS compression
/// (incompatible with streaming application; see delta/codec.hpp).
Bytes make_inplace_delta(const Script& input, ByteView reference,
                         ByteView version, const ConvertOptions& options = {},
                         ConvertReport* report_out = nullptr,
                         bool compress_payload = false,
                         const ParallelContext& ctx = {});

/// Serialize an already-converted in-place script into a delta file
/// (explicit-offset format, in_place flag, version CRC). Shared by
/// make_inplace_delta and Pipeline::build_inplace.
Bytes serialize_inplace(Script script, const DeltaFormat& format,
                        ByteView reference, ByteView version,
                        bool compress_payload);

}  // namespace ipd
