#include "inplace/cycle_policy.hpp"

namespace ipd {

const char* policy_name(BreakPolicy p) noexcept {
  switch (p) {
    case BreakPolicy::kConstantTime: return "constant-time";
    case BreakPolicy::kLocalMin: return "locally-minimum";
    case BreakPolicy::kExactOptimal: return "exact-optimal";
    case BreakPolicy::kSccGlobalMin: return "scc-global-min";
  }
  return "?";
}

std::vector<std::uint64_t> conversion_costs(
    const std::vector<CopyCommand>& copies, const CodewordCostModel& model) {
  std::vector<std::uint64_t> costs;
  costs.reserve(copies.size());
  for (const CopyCommand& c : copies) {
    costs.push_back(model.conversion_cost(c));
  }
  return costs;
}

}  // namespace ipd
