// LEB128-style variable-length integer codec.
//
// The modern ("varint") codeword format of the delta codec stores offsets
// and lengths with this encoding; the paper-faithful byte format does not
// use it. Encoding is little-endian base-128 with the high bit of each
// byte as a continuation flag, identical to protobuf varints.
#pragma once

#include <cstdint>
#include <optional>

#include "core/types.hpp"

namespace ipd {

/// Maximum encoded size of a 64-bit varint.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Number of bytes encode_varint() will emit for `value`.
std::size_t varint_size(std::uint64_t value) noexcept;

/// Append the varint encoding of `value` to `out`.
void append_varint(Bytes& out, std::uint64_t value);

/// Encode `value` into `out` (must have room for kMaxVarintBytes).
/// Returns the number of bytes written.
std::size_t encode_varint(std::uint8_t* out, std::uint64_t value) noexcept;

/// Result of a varint decode: the value and the number of bytes consumed.
struct VarintResult {
  std::uint64_t value = 0;
  std::size_t consumed = 0;
};

/// Decode a varint from the front of `in`.
/// Throws FormatError on truncated or overlong (>10 byte) input.
VarintResult decode_varint(ByteView in);

/// Non-throwing decode; std::nullopt on malformed input.
std::optional<VarintResult> try_decode_varint(ByteView in) noexcept;

}  // namespace ipd
