// Self-contained LZSS codec for delta payload compression.
//
// Delta command streams still contain entropy a general-purpose
// compressor can remove — literal add data above all. Production delta
// tools (vcdiff, xdelta, bsdiff) pipe their output through a secondary
// compressor; we provide a dependency-free LZSS so the container can
// offer the same (delta/codec.hpp `compress_payload`).
//
// Format: groups of 8 tokens prefixed by a flag byte (LSB first;
// bit set = match). Literal token: 1 byte. Match token: 3 bytes —
// 16-bit little-endian backward distance (1..65535) and a length byte
// encoding lengths kMinMatch..kMinMatch+255.
#pragma once

#include "core/types.hpp"

namespace ipd {

inline constexpr std::size_t kLzssMinMatch = 4;
inline constexpr std::size_t kLzssMaxMatch = kLzssMinMatch + 255;
inline constexpr std::size_t kLzssWindow = 65535;

/// Compress `input`. Always succeeds; incompressible data grows by at
/// most 1/8 + O(1).
Bytes lzss_encode(ByteView input);

/// Decompress `input`, which must expand to exactly `expected_size`
/// bytes. Throws FormatError on malformed or mismatched input.
Bytes lzss_decode(ByteView input, std::size_t expected_size);

}  // namespace ipd
