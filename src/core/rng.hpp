// Deterministic pseudo-random generator for corpus generation and tests.
//
// xoshiro256** seeded via splitmix64: fast, high quality, and — unlike
// std::mt19937 across standard libraries — bit-for-bit reproducible, so
// corpus workloads and property tests are stable across platforms.
#pragma once

#include <array>
#include <cstdint>

#include "core/types.hpp"

namespace ipd {

/// splitmix64 finalizer: a fast, high-quality 64-bit mixing function.
/// The shared primitive behind Rng seeding and derive_seed(); exposed so
/// every "hash these integers into a seed" site uses one implementation.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Distinct deterministic seed for stream `n` of a base seed. Derived
/// streams (per device, per repetition, per attempt) must not replay the
/// identical byte sequence — a cache warmed by stream 1 would answer
/// stream 2 — while staying reproducible across runs and platforms.
constexpr std::uint64_t derive_seed(std::uint64_t base,
                                    std::uint64_t n) noexcept {
  return mix64(base + 0x9E3779B97F4A7C15ull * (n + 1));
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Geometric-ish heavy-tailed length in [1, cap]: each doubling survives
  /// with probability 1/2. Models the power-law edit sizes seen in real
  /// software revisions.
  length_t power_law_length(length_t cap) noexcept;

  /// Fill `out` with uniform random bytes.
  void fill(MutByteView out) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace ipd
