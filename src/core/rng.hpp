// Deterministic pseudo-random generator for corpus generation and tests.
//
// xoshiro256** seeded via splitmix64: fast, high quality, and — unlike
// std::mt19937 across standard libraries — bit-for-bit reproducible, so
// corpus workloads and property tests are stable across platforms.
#pragma once

#include <array>
#include <cstdint>

#include "core/types.hpp"

namespace ipd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Geometric-ish heavy-tailed length in [1, cap]: each doubling survives
  /// with probability 1/2. Models the power-law edit sizes seen in real
  /// software revisions.
  length_t power_law_length(length_t cap) noexcept;

  /// Fill `out` with uniform random bytes.
  void fill(MutByteView out) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace ipd
