// Human-readable hex dump, used by the CLI `info` subcommand and the
// quickstart example's Figure-1 walk-through.
#pragma once

#include <string>

#include "core/types.hpp"

namespace ipd {

/// Classic 16-bytes-per-row hex + ASCII dump of `data`, offsets starting
/// at `base`. At most `max_rows` rows are emitted; a trailing ellipsis
/// line marks truncation.
std::string hexdump(ByteView data, offset_t base = 0,
                    std::size_t max_rows = 32);

}  // namespace ipd
