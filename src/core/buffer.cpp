#include "core/buffer.hpp"

namespace ipd {

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw FormatError("truncated input: need " + std::to_string(n) +
                      " bytes at offset " + std::to_string(pos_) + ", have " +
                      std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16le() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32le() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64le() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::read_varint() {
  const VarintResult r = decode_varint(data_.subspan(pos_));
  pos_ += r.consumed;
  return r.value;
}

ByteView ByteReader::read_bytes(std::size_t n) {
  require(n);
  const ByteView v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

void ByteWriter::write_u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::write_u16le(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32le(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::write_u64le(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::write_varint(std::uint64_t v) { append_varint(out_, v); }

void ByteWriter::write_bytes(ByteView data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::write_string(std::string_view s) {
  out_.insert(out_.end(), s.begin(), s.end());
}

}  // namespace ipd
