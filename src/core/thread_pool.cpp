#include "core/thread_pool.hpp"

namespace ipd {

namespace {
/// Which pool (if any) owns the current thread; set once per worker at
/// loop entry and never cleared — the thread dies with the pool.
thread_local const ThreadPool* t_owning_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const noexcept {
  return t_owning_pool == this;
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

std::size_t ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      throw Error("thread pool: submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_owning_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      UniqueLock lock(mutex_);
      while (!runnable_locked()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures any exception in its future
  }
}

}  // namespace ipd
