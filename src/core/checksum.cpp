#include "core/checksum.hpp"

#include <array>

namespace ipd {
namespace {

constexpr std::uint32_t kAdlerMod = 65521;

// Build the CRC-32C lookup table at compile time.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);  // reflected 0x1EDC6F41
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc32cTable = make_crc32c_table();

}  // namespace

std::uint32_t adler32(ByteView data, std::uint32_t seed) noexcept {
  std::uint32_t a = seed & 0xFFFF;
  std::uint32_t b = (seed >> 16) & 0xFFFF;
  std::size_t i = 0;
  while (i < data.size()) {
    // 5552 is the largest n such that 255*n*(n+1)/2 + (n+1)*(kAdlerMod-1)
    // fits in 32 bits; defer the expensive modulo until then.
    const std::size_t chunk = std::min<std::size_t>(5552, data.size() - i);
    for (std::size_t j = 0; j < chunk; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kAdlerMod;
    b %= kAdlerMod;
    i += chunk;
  }
  return (b << 16) | a;
}

std::uint32_t crc32c(ByteView data, std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = kCrc32cTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ipd
