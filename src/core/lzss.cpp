#include "core/lzss.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace ipd {
namespace {

constexpr std::uint32_t kNil = std::numeric_limits<std::uint32_t>::max();
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kMaxChain = 32;

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  v = static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
      (static_cast<std::uint32_t>(p[2]) << 16) |
      (static_cast<std::uint32_t>(p[3]) << 24);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes lzss_encode(ByteView input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);

  std::vector<std::uint32_t> heads(std::size_t{1} << kHashBits, kNil);
  std::vector<std::uint32_t> chain(input.size(), kNil);

  std::size_t flag_pos = 0;  // index of the current flag byte in `out`
  unsigned tokens_in_group = 8;  // force a fresh flag byte immediately

  const auto begin_token = [&](bool is_match) {
    if (tokens_in_group == 8) {
      flag_pos = out.size();
      out.push_back(0);
      tokens_in_group = 0;
    }
    if (is_match) {
      out[flag_pos] |= static_cast<std::uint8_t>(1u << tokens_in_group);
    }
    ++tokens_in_group;
  };

  std::size_t pos = 0;
  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;

    if (pos + kLzssMinMatch <= input.size()) {
      const std::uint32_t h = hash4(input.data() + pos);
      std::size_t probes = 0;
      for (std::uint32_t cand = heads[h];
           cand != kNil && probes < kMaxChain; cand = chain[cand], ++probes) {
        const std::size_t dist = pos - cand;
        if (dist > kLzssWindow) break;
        const std::size_t limit =
            std::min(kLzssMaxMatch, input.size() - pos);
        std::size_t len = 0;
        while (len < limit && input[cand + len] == input[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == limit) break;
        }
      }
      chain[pos] = heads[h];
      heads[h] = static_cast<std::uint32_t>(pos);
    }

    if (best_len >= kLzssMinMatch) {
      begin_token(true);
      out.push_back(static_cast<std::uint8_t>(best_dist));
      out.push_back(static_cast<std::uint8_t>(best_dist >> 8));
      out.push_back(static_cast<std::uint8_t>(best_len - kLzssMinMatch));
      // Insert the skipped positions into the dictionary too (cheap and
      // helps repetitive inputs).
      const std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1;
           p < end && p + kLzssMinMatch <= input.size(); ++p) {
        const std::uint32_t h = hash4(input.data() + p);
        chain[p] = heads[h];
        heads[h] = static_cast<std::uint32_t>(p);
      }
      pos = end;
    } else {
      begin_token(false);
      out.push_back(input[pos]);
      ++pos;
    }
  }
  return out;
}

Bytes lzss_decode(ByteView input, std::size_t expected_size) {
  // Expansion bound before the reserve(): one input byte contributes at
  // most kLzssMaxMatch output bytes (a match token is 3 bytes plus its
  // flag bit), so a header declaring more than that is unsatisfiable.
  // `expected_size` comes from untrusted container headers; without this
  // check a 30-byte delta can demand an exabyte allocation and the
  // resulting bad_alloc bypasses every FormatError reject path
  // (fuzz/corpus/codec/crash-01-lzss-size-bomb.bin).
  if (expected_size / kLzssMaxMatch > input.size()) {
    throw FormatError("lzss: declared size exceeds maximum expansion");
  }
  Bytes out;
  out.reserve(expected_size);

  std::size_t pos = 0;
  std::uint8_t flags = 0;
  unsigned tokens_left = 0;

  while (out.size() < expected_size) {
    if (tokens_left == 0) {
      if (pos >= input.size()) {
        throw FormatError("lzss: truncated stream (missing flag byte)");
      }
      flags = input[pos++];
      tokens_left = 8;
    }
    const bool is_match = (flags & 1) != 0;
    flags >>= 1;
    --tokens_left;

    if (is_match) {
      if (pos + 3 > input.size()) {
        throw FormatError("lzss: truncated match token");
      }
      const std::size_t dist = static_cast<std::size_t>(input[pos]) |
                               (static_cast<std::size_t>(input[pos + 1]) << 8);
      const std::size_t len = kLzssMinMatch + input[pos + 2];
      pos += 3;
      if (dist == 0 || dist > out.size()) {
        throw FormatError("lzss: match distance out of range");
      }
      if (out.size() + len > expected_size) {
        throw FormatError("lzss: output overruns expected size");
      }
      // Byte-by-byte: overlapping matches (dist < len) are legal and
      // replicate, exactly like the in-place left-to-right copy of §4.1.
      const std::size_t start = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(out[start + i]);
      }
    } else {
      if (pos >= input.size()) {
        throw FormatError("lzss: truncated literal token");
      }
      out.push_back(input[pos++]);
    }
  }
  if (pos != input.size()) {
    throw FormatError("lzss: trailing bytes after expected output");
  }
  return out;
}

}  // namespace ipd
