#include "core/rolling_hash.hpp"

#include <cassert>

namespace ipd {

RollingHash::RollingHash(std::size_t window) : window_(window), top_power_(1) {
  assert(window >= 1);
  for (std::size_t i = 0; i + 1 < window; ++i) {
    top_power_ *= kMultiplier;
  }
}

std::uint64_t RollingHash::init(ByteView data) noexcept {
  assert(data.size() >= window_);
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < window_; ++i) {
    h = h * kMultiplier + data[i];
  }
  return h;
}

std::uint64_t RollingHash::roll(std::uint64_t hash, std::uint8_t outgoing,
                                std::uint8_t incoming) const noexcept {
  return (hash - outgoing * top_power_) * kMultiplier + incoming;
}

std::uint64_t RollingHash::mix(std::uint64_t h) noexcept {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

}  // namespace ipd
