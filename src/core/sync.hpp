// Annotated synchronization primitives: the one place in the tree that
// is allowed to name std::mutex.
//
// Every lock in the codebase goes through ipd::Mutex / ipd::SharedMutex
// so that two orthogonal checkers can see it:
//
//  1. Clang Thread Safety Analysis (compile time). The CAPABILITY /
//     GUARDED_BY / REQUIRES macros below expand to Clang's
//     thread-safety attributes under Clang and to nothing elsewhere, so
//     a GCC build is byte-identical to before while a Clang build with
//     -Werror=thread-safety *proves* lock discipline: a guarded field
//     touched without its mutex, a REQUIRES helper called unlocked, or
//     a lock leaked out of scope is a compile error. Conventions are
//     documented in docs/ANALYSIS.md.
//
//  2. A runtime lock-order validator (IPDELTA_SANITIZE=lockorder).
//     Each thread keeps a stack of held locks; each acquisition while
//     holding another lock records a directed edge in a global
//     lock-order graph. A cycle — i.e. some thread has ever taken the
//     locks in the opposite order, a latent deadlock even if the two
//     threads never collided yet — aborts immediately and prints both
//     acquisition stacks. The check runs at acquisition time, before
//     blocking, so a would-be deadlock reports instead of hanging. When
//     IPDELTA_LOCK_ORDER is off (the default) every hook compiles away
//     and Mutex is exactly std::mutex.
//
// Waiting on a condition is done through ipd::UniqueLock +
// ipd::ConditionVariable. Use the loop form with a REQUIRES-annotated
// predicate helper, not the predicate overload of std::condition_variable
// — a lambda body is a separate function to the analysis and cannot see
// that the lock is held:
//
//   UniqueLock lock(mutex_);
//   while (!ready_locked()) cv_.wait(lock);   // ready_locked REQUIRES(mutex_)
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --- Clang Thread Safety Analysis attribute macros -------------------
// Names follow the canonical mutex.h from the Clang TSA documentation;
// they annotate declarations only and expand to nothing on non-Clang
// compilers (and under SWIG-style tooling that chokes on attributes).
#if defined(__clang__) && (!defined(SWIG))
#define IPD_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define IPD_THREAD_ANNOTATION__(x)  // no-op
#endif

#define CAPABILITY(x) IPD_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY IPD_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) IPD_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) IPD_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  IPD_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  IPD_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  IPD_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  IPD_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) IPD_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  IPD_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) IPD_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  IPD_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  IPD_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  IPD_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  IPD_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) IPD_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) IPD_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  IPD_THREAD_ANNOTATION__(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) IPD_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  IPD_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace ipd {

#if defined(IPDELTA_LOCK_ORDER)
namespace lockorder {
// Validator hooks, defined in sync.cpp. `pre_acquire` runs the
// self-deadlock and cycle checks and records the new ordering edge
// *before* the caller blocks on the native lock, so an inversion aborts
// with a report instead of deadlocking. `acquired` pushes onto the
// per-thread held stack; `released` pops (from anywhere in the stack —
// unlock order need not mirror lock order).
void pre_acquire(const void* mutex, const char* name);
void acquired(const void* mutex, const char* name);
void released(const void* mutex);
void destroyed(const void* mutex);
}  // namespace lockorder
#define IPD_LOCKORDER_PRE_ACQUIRE(m, n) ::ipd::lockorder::pre_acquire(m, n)
#define IPD_LOCKORDER_ACQUIRED(m, n) ::ipd::lockorder::acquired(m, n)
#define IPD_LOCKORDER_RELEASED(m) ::ipd::lockorder::released(m)
#define IPD_LOCKORDER_DESTROYED(m) ::ipd::lockorder::destroyed(m)
#else
#define IPD_LOCKORDER_PRE_ACQUIRE(m, n) (void)0
#define IPD_LOCKORDER_ACQUIRED(m, n) (void)0
#define IPD_LOCKORDER_RELEASED(m) (void)0
#define IPD_LOCKORDER_DESTROYED(m) (void)0
#endif

/// A std::mutex with a capability annotation and (optionally) a name
/// that the lock-order validator prints in its reports. Prefer the
/// scoped guards below; call lock()/unlock() directly only where a
/// guard genuinely cannot express the flow.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { IPD_LOCKORDER_DESTROYED(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    IPD_LOCKORDER_PRE_ACQUIRE(this, name_);
    m_.lock();
    IPD_LOCKORDER_ACQUIRED(this, name_);
  }
  void unlock() RELEASE() {
    IPD_LOCKORDER_RELEASED(this);
    m_.unlock();
  }
  /// try_lock cannot deadlock (it fails instead of blocking), so it is
  /// exempt from the ordering check; a successful try_lock still joins
  /// the held stack so later blocking acquisitions order against it.
  bool try_lock() TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    IPD_LOCKORDER_ACQUIRED(this, name_);
    return true;
  }

  const char* name() const { return name_; }
  /// The wrapped handle, for ConditionVariable only. Going around the
  /// wrapper loses both the analysis and the validator bookkeeping.
  std::mutex& native_handle() { return m_; }

 private:
  std::mutex m_;
  const char* name_ = "mutex";
};

/// std::shared_mutex with a capability annotation. Shared (reader)
/// acquisitions participate in lock-order validation exactly like
/// exclusive ones: reader/writer does not change deadlock order.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}
  ~SharedMutex() { IPD_LOCKORDER_DESTROYED(this); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    IPD_LOCKORDER_PRE_ACQUIRE(this, name_);
    m_.lock();
    IPD_LOCKORDER_ACQUIRED(this, name_);
  }
  void unlock() RELEASE() {
    IPD_LOCKORDER_RELEASED(this);
    m_.unlock();
  }
  void lock_shared() ACQUIRE_SHARED() {
    IPD_LOCKORDER_PRE_ACQUIRE(this, name_);
    m_.lock_shared();
    IPD_LOCKORDER_ACQUIRED(this, name_);
  }
  void unlock_shared() RELEASE_SHARED() {
    IPD_LOCKORDER_RELEASED(this);
    m_.unlock_shared();
  }

  const char* name() const { return name_; }

 private:
  std::shared_mutex m_;
  const char* name_ = "shared_mutex";
};

/// RAII exclusive lock (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// RAII exclusive lock over a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~WriterLock() RELEASE() { m_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& m_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& m) ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~ReaderLock() RELEASE_GENERIC() { m_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& m_;
};

/// RAII exclusive lock that supports mid-scope unlock()/lock() and is
/// the handle ConditionVariable waits on (std::unique_lock equivalent).
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) ACQUIRE(m) : mutex_(m), lock_(m.native_handle(), std::defer_lock) {
    IPD_LOCKORDER_PRE_ACQUIRE(&mutex_, mutex_.name());
    lock_.lock();
    IPD_LOCKORDER_ACQUIRED(&mutex_, mutex_.name());
  }
  ~UniqueLock() RELEASE() {
    if (lock_.owns_lock()) IPD_LOCKORDER_RELEASED(&mutex_);
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() RELEASE() {
    IPD_LOCKORDER_RELEASED(&mutex_);
    lock_.unlock();
  }
  void lock() ACQUIRE() {
    IPD_LOCKORDER_PRE_ACQUIRE(&mutex_, mutex_.name());
    lock_.lock();
    IPD_LOCKORDER_ACQUIRED(&mutex_, mutex_.name());
  }

  Mutex& mutex() RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  friend class ConditionVariable;
  Mutex& mutex_;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over an ipd::Mutex via UniqueLock. The wait
/// calls keep the validator's held-stack truthful across the internal
/// unlock/relock. To the static analysis the lock is held for the whole
/// wait — which is exactly the caller-visible contract.
class ConditionVariable {
 public:
  ConditionVariable() = default;
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  void wait(UniqueLock& lk) {
    IPD_LOCKORDER_RELEASED(&lk.mutex_);
    cv_.wait(lk.lock_);
    IPD_LOCKORDER_ACQUIRED(&lk.mutex_, lk.mutex_.name());
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    IPD_LOCKORDER_RELEASED(&lk.mutex_);
    std::cv_status status = cv_.wait_until(lk.lock_, tp);
    IPD_LOCKORDER_ACQUIRED(&lk.mutex_, lk.mutex_.name());
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lk,
                          const std::chrono::duration<Rep, Period>& dur) {
    IPD_LOCKORDER_RELEASED(&lk.mutex_);
    std::cv_status status = cv_.wait_for(lk.lock_, dur);
    IPD_LOCKORDER_ACQUIRED(&lk.mutex_, lk.mutex_.name());
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ipd
