// Core type aliases and the library's exception hierarchy.
//
// All byte offsets and lengths in file bodies are 64-bit unsigned values:
// the paper's delta model addresses arbitrary file offsets, and 32 bits is
// not enough for the version files a modern user feeds a delta tool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ipd {

/// Offset into a file (reference or version), in bytes.
using offset_t = std::uint64_t;
/// Length of a byte range.
using length_t = std::uint64_t;

/// Owning byte sequence used throughout the library for file bodies.
using Bytes = std::vector<std::uint8_t>;
/// Non-owning read-only view of a byte sequence.
using ByteView = std::span<const std::uint8_t>;
/// Non-owning mutable view of a byte sequence.
using MutByteView = std::span<std::uint8_t>;

/// Root of the ipdelta exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed delta file or codeword stream.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// A command script violates a structural invariant (overlapping writes,
/// out-of-bounds reads, coverage gaps, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

/// Filesystem-level failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A reconstruction read a byte that an earlier command already overwrote
/// (the paper's write-before-read conflict, §4.1). Thrown by the conflict
/// oracle, never by a correctly converted delta.
class ConflictError : public Error {
 public:
  explicit ConflictError(const std::string& what) : Error(what) {}
};

/// A device-model constraint (RAM budget, storage bounds) was violated.
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

/// Convert a string literal/std::string into Bytes (test & example helper).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Convert Bytes back into a std::string (test & example helper).
inline std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

}  // namespace ipd
