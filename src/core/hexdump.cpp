#include "core/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace ipd {

std::string hexdump(ByteView data, offset_t base, std::size_t max_rows) {
  std::string out;
  const std::size_t rows = (data.size() + 15) / 16;
  const std::size_t shown = std::min(rows, max_rows);
  char line[96];
  for (std::size_t r = 0; r < shown; ++r) {
    const std::size_t begin = r * 16;
    const std::size_t end = std::min(begin + 16, data.size());
    int n = std::snprintf(line, sizeof line, "%08llx  ",
                          static_cast<unsigned long long>(base + begin));
    out.append(line, static_cast<std::size_t>(n));
    for (std::size_t i = begin; i < begin + 16; ++i) {
      if (i < end) {
        n = std::snprintf(line, sizeof line, "%02x ", data[i]);
        out.append(line, static_cast<std::size_t>(n));
      } else {
        out.append("   ");
      }
      if ((i - begin) == 7) out.push_back(' ');
    }
    out.append(" |");
    for (std::size_t i = begin; i < end; ++i) {
      const int c = data[i];
      out.push_back(std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out.append("|\n");
  }
  if (shown < rows) {
    out.append("... (");
    out.append(std::to_string(data.size() - shown * 16));
    out.append(" more bytes)\n");
  }
  return out;
}

}  // namespace ipd
