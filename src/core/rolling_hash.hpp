// Karp–Rabin rolling hash over fixed-size windows ("seeds").
//
// Both differencing algorithms fingerprint every seed-length substring of
// the reference file. The rolling property — O(1) update when the window
// slides one byte — is what makes the one-pass differencer linear time
// (Burns & Long, IPCCC '97, the paper's reference [5]).
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace ipd {

/// Polynomial rolling hash: H(w) = sum b_i * M^(n-1-i) mod 2^64, with a
/// fixed odd multiplier. Wraparound arithmetic in 64 bits serves as the
/// modulus; the table layer mixes the result before bucketing.
class RollingHash {
 public:
  /// Multiplier; any odd constant with good bit dispersion works.
  static constexpr std::uint64_t kMultiplier = 0x9E3779B97F4A7C15ull;

  /// Create a hash for windows of exactly `window` bytes. window >= 1.
  explicit RollingHash(std::size_t window);

  /// Hash the first `window()` bytes of `data` from scratch.
  /// Precondition: data.size() >= window().
  std::uint64_t init(ByteView data) noexcept;

  /// Slide the window one byte: remove `outgoing`, append `incoming`.
  std::uint64_t roll(std::uint64_t hash, std::uint8_t outgoing,
                     std::uint8_t incoming) const noexcept;

  std::size_t window() const noexcept { return window_; }

  /// Final avalanche mix (splitmix64 finalizer); use before bucketing so
  /// that low bits depend on all input bytes.
  static std::uint64_t mix(std::uint64_t h) noexcept;

 private:
  std::size_t window_;
  std::uint64_t top_power_;  // kMultiplier^(window-1), for removal
};

}  // namespace ipd
