// Fixed-size worker pool shared by whole delta builds and the
// intra-build parallelism inside them.
//
// Request threads are cheap — they mostly wait on caches and sockets —
// but a delta build is a full differencer + conversion pass over two
// release bodies. Running builds on an unbounded number of request
// threads would let a burst of distinct cache misses oversubscribe the
// machine; funnelling them through a pool sized to the hardware caps
// build parallelism while singleflight caps build *redundancy*. The
// same pool also absorbs the per-segment work `parallel_for` fans out
// (core/parallel.hpp), so one machine-sized pool bounds every thread
// the library creates.
//
// Deliberately minimal: FIFO queue, std::future results, no priorities.
// The destructor finishes every queued task before joining (a submitted
// build owns shared_ptrs into the store; dropping it would be safe but
// wasteful — and deterministic drain makes tests simple).
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/sync.hpp"
#include "core/types.hpp"

namespace ipd {

class ThreadPool {
 public:
  /// `workers` == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Tasks queued but not yet started.
  std::size_t pending() const;

  /// True when the calling thread is one of THIS pool's workers. A task
  /// that would submit(...).get() against its own pool must run the work
  /// inline instead: with every worker blocked in get(), the queued task
  /// never starts (the deadlock the async serve path would otherwise
  /// hit).
  bool on_worker_thread() const noexcept;

  /// Enqueue `fn`; the returned future carries its result or exception.
  /// Throws Error after shutdown has begun.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    // std::function requires copyability; packaged_task is move-only, so
    // it rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Fire-and-forget submit for jobs whose completion is tracked out of
  /// band (parallel_for counts chunks itself). Throws Error after
  /// shutdown has begun, exactly like submit().
  void post(std::function<void()> job) { enqueue(std::move(job)); }

 private:
  void enqueue(std::function<void()> job) EXCLUDES(mutex_);
  void worker_loop() EXCLUDES(mutex_);
  bool runnable_locked() const REQUIRES(mutex_) {
    return stopping_ || !queue_.empty();
  }

  mutable Mutex mutex_{"ThreadPool"};
  ConditionVariable cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace ipd
