// Whole-file read/write helpers for the CLI tool and examples.
#pragma once

#include <filesystem>
#include <string>

#include "core/types.hpp"

namespace ipd {

/// Thread-safe strerror: every subsystem that reports an errno goes
/// through here instead of std::strerror, whose shared static buffer
/// races under concurrent failures (clang-tidy concurrency-mt-unsafe).
std::string errno_message(int err);

/// Read an entire file into memory. Throws IoError on failure.
Bytes read_file(const std::filesystem::path& path);

/// Write `data` to `path`, replacing any existing file. Throws IoError.
void write_file(const std::filesystem::path& path, ByteView data);

}  // namespace ipd
