// Whole-file read/write helpers for the CLI tool and examples.
#pragma once

#include <filesystem>

#include "core/types.hpp"

namespace ipd {

/// Read an entire file into memory. Throws IoError on failure.
Bytes read_file(const std::filesystem::path& path);

/// Write `data` to `path`, replacing any existing file. Throws IoError.
void write_file(const std::filesystem::path& path, ByteView data);

}  // namespace ipd
